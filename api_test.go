package pathrank_test

import (
	"math"
	"testing"

	"pathrank"
	"pathrank/internal/node2vec"
)

// TestPublicAPIEndToEnd drives the complete documented workflow through
// the module-root facade: network generation, trip simulation, pipeline
// training, evaluation, and query-time ranking.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := pathrank.DefaultNetworkConfig()
	cfg.Rows, cfg.Cols = 10, 10
	g, err := pathrank.GenerateNetwork(cfg)
	if err != nil {
		t.Fatalf("GenerateNetwork: %v", err)
	}
	pop := pathrank.NewPopulation(pathrank.PopulationConfig{NumDrivers: 10, Seed: 1})
	trips, err := pathrank.GenerateTrips(g, pop, pathrank.TripConfig{TripsPerDriver: 3, MinHops: 4, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateTrips: %v", err)
	}

	pcfg := pathrank.DefaultPipelineConfig(12)
	pcfg.Model.Hidden = 10
	pcfg.Train.Epochs = 4
	pcfg.Walk = node2vec.WalkConfig{WalksPerVertex: 3, WalkLength: 10, P: 1, Q: 0.5, Seed: 3}
	pcfg.SGNS = node2vec.TrainConfig{Dim: 12, Window: 3, Negatives: 3, Epochs: 1, LR: 0.05, Seed: 4}
	pipe, err := pathrank.BuildPipeline(g, trips, pcfg)
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	rep := pipe.Model.Evaluate(pipe.Test)
	if math.IsNaN(rep.MAE) || rep.NQueries == 0 {
		t.Fatalf("bad evaluation report: %v", rep)
	}

	ranker := pathrank.NewRanker(g, pipe.Model)
	ranked, err := ranker.Query(0, pathrank.VertexID(g.NumVertices()-1))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked candidates")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score+1e-12 {
			t.Fatal("ranked candidates not in descending score order")
		}
	}
}

// TestPublicAPIPathPrimitives exercises the shortest-path and similarity
// helpers on the facade.
func TestPublicAPIPathPrimitives(t *testing.T) {
	cfg := pathrank.DefaultNetworkConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := pathrank.GenerateNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := pathrank.VertexID(0), pathrank.VertexID(g.NumVertices()-1)
	sp, err := pathrank.ShortestPath(g, src, dst, pathrank.ByLength)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	topk, err := pathrank.TopKPaths(g, src, dst, 3, pathrank.ByLength)
	if err != nil || len(topk) == 0 {
		t.Fatalf("TopKPaths: %d paths, err=%v", len(topk), err)
	}
	if math.Abs(topk[0].Cost-sp.Cost) > 1e-9 {
		t.Fatal("first top-k path should equal the shortest path cost")
	}
	div, err := pathrank.DiversifiedTopKPaths(g, src, dst, 3, 0.8)
	if err != nil || len(div) == 0 {
		t.Fatalf("DiversifiedTopKPaths: %d paths, err=%v", len(div), err)
	}
	if s := pathrank.WeightedJaccard(g, sp, sp); s != 1 {
		t.Fatalf("WeightedJaccard(p,p) = %v, want 1", s)
	}
	fast, err := pathrank.ShortestPath(g, src, dst, pathrank.ByTime)
	if err != nil {
		t.Fatal(err)
	}
	if s := pathrank.WeightedJaccard(g, sp, fast); s < 0 || s > 1 {
		t.Fatalf("similarity %v outside [0,1]", s)
	}
}

// TestPublicAPIMapMatch exercises GPS sampling and map matching through
// the facade.
func TestPublicAPIMapMatch(t *testing.T) {
	cfg := pathrank.DefaultNetworkConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := pathrank.GenerateNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pathrank.ShortestPath(g, 0, pathrank.VertexID(g.NumVertices()/2), pathrank.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	recs := pathrank.SampleGPS(g, p, pathrank.GPSConfig{IntervalSec: 1, NoiseStdM: 8, Seed: 5})
	if len(recs) < 2 {
		t.Fatalf("only %d GPS records", len(recs))
	}
	m := pathrank.NewMatcher(g, pathrank.MatchConfig{Candidates: 4, SigmaM: 40, BetaM: 25, StrideSec: 10})
	got, err := m.Match(recs)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if s := pathrank.WeightedJaccard(g, got, p); s < 0.5 {
		t.Fatalf("matched overlap %.3f too low", s)
	}
}
