// Benchmarks regenerating every table and figure of the paper's evaluation
// (macro benchmarks over internal/experiments; one iteration = one full
// table/figure) plus micro benchmarks for the substrates. Each macro bench
// prints the same rows as `cmd/experiments` and reports the headline
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the complete evaluation. Set PATHRANK_BENCH_QUICK=1 to run
// the scaled-down world (for smoke runs).
package pathrank_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"pathrank"

	"pathrank/internal/experiments"
	"pathrank/internal/geo"
	"pathrank/internal/nn"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

var (
	worldOnce sync.Once
	world     *experiments.World
	worldErr  error
)

func benchWorld(b *testing.B) *experiments.World {
	b.Helper()
	worldOnce.Do(func() {
		cfg := experiments.DefaultWorldConfig()
		if os.Getenv("PATHRANK_BENCH_QUICK") != "" {
			cfg = experiments.QuickWorldConfig()
		}
		world, worldErr = experiments.NewWorld(cfg)
	})
	if worldErr != nil {
		b.Fatalf("world: %v", worldErr)
	}
	return world
}

func benchMs() []int {
	if os.Getenv("PATHRANK_BENCH_QUICK") != "" {
		return []int{8, 16}
	}
	return []int{64, 128}
}

func benchRefM() int {
	if os.Getenv("PATHRANK_BENCH_QUICK") != "" {
		return 8
	}
	return 64
}

// reportRows prints experiment rows and pushes the mean tau/MAE into the
// benchmark metrics so regressions are visible in bench output diffs.
func reportRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	var tau, mae float64
	for _, r := range rows {
		fmt.Printf("    %s\n", r)
		tau += r.Report.Tau
		mae += r.Report.MAE
	}
	n := float64(len(rows))
	b.ReportMetric(tau/n, "mean_tau")
	b.ReportMetric(mae/n, "mean_mae")
}

// BenchmarkTable1 regenerates Table 1: training strategies x M, PR-A1.
func BenchmarkTable1(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(w, benchMs())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable2 regenerates Table 2: training strategies x M, PR-A2.
func BenchmarkTable2(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(w, benchMs())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFigureK sweeps the candidate-set size k (F1).
func BenchmarkFigureK(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SweepK(w, nil, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFigureDiversity sweeps the D-TkDI similarity threshold (F2).
func BenchmarkFigureDiversity(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SweepDiversity(w, nil, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFigureM sweeps the embedding dimensionality (F3).
func BenchmarkFigureM(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		ms := []int{16, 32, 64, 128}
		if os.Getenv("PATHRANK_BENCH_QUICK") != "" {
			ms = []int{8, 16}
		}
		rows, err := experiments.SweepM(w, ms)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFigureTrainSize sweeps the training-set fraction (F4).
func BenchmarkFigureTrainSize(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SweepTrainSize(w, nil, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkBaselines compares PathRank with the non-learned and
// shallow-learned rankers (B1).
func BenchmarkBaselines(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Baselines(w, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkAblationBody swaps the sequence model (A1).
func BenchmarkAblationBody(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBody(w, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkAblationMultiTask varies the auxiliary-loss weight (A2).
func BenchmarkAblationMultiTask(b *testing.B) {
	w := benchWorld(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMultiTask(w, nil, benchRefM())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// --- Substrate micro benchmarks ---

func microGraph(b *testing.B) *roadnet.Graph {
	b.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 20, Cols: 25, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkDijkstra measures one shortest-path query on the experiment
// network.
func BenchmarkDijkstra(b *testing.B) {
	g := microGraph(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = spath.Dijkstra(g, src, dst, spath.ByLength)
	}
}

// BenchmarkBidirectionalDijkstra measures the bidirectional variant.
func BenchmarkBidirectionalDijkstra(b *testing.B) {
	g := microGraph(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = spath.BidirectionalDijkstra(g, src, dst, spath.ByLength)
	}
}

// BenchmarkTopK5 measures Yen's algorithm for k=5 (TkDI generation cost).
func BenchmarkTopK5(b *testing.B) {
	g := microGraph(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = spath.TopK(g, src, dst, 5, spath.ByLength)
	}
}

// BenchmarkDiversifiedTopK5 measures D-TkDI generation cost.
func BenchmarkDiversifiedTopK5(b *testing.B) {
	g := microGraph(b)
	sim := pathsim.WeightedJaccardSim(g)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = spath.DiversifiedTopK(g, src, dst, 5, spath.ByLength, sim, 0.8, 50)
	}
}

// BenchmarkWeightedJaccard measures the ground-truth label function in its
// hot-path form: the scratch-owning Similarity closure that candidate
// generation and labeling use (zero allocations per call by construction —
// the one-shot WeightedJaccard function adds only a scratch-pool
// round-trip).
func BenchmarkWeightedJaccard(b *testing.B) {
	g := microGraph(b)
	p1, err := spath.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), spath.ByLength)
	if err != nil {
		b.Fatal(err)
	}
	p2, err := spath.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), spath.ByTime)
	if err != nil {
		b.Fatal(err)
	}
	sim := pathsim.WeightedJaccardSim(g)
	sim(p1, p2) // size the scratch outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim(p1, p2)
	}
}

// BenchmarkNode2vecWalks measures biased-walk generation.
func BenchmarkNode2vecWalks(b *testing.B) {
	g := microGraph(b)
	cfg := node2vec.WalkConfig{WalksPerVertex: 1, WalkLength: 20, P: 1, Q: 0.5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = node2vec.GenerateWalks(g, cfg)
	}
}

// BenchmarkGRUForwardBackward measures one training step of the recurrent
// body at paper scale (M=128 inputs, 20-step sequence).
func BenchmarkGRUForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gru := nn.NewGRU("bench", 128, 32, rng)
	xs := make([]nn.Vec, 20)
	for t := range xs {
		xs[t] = make(nn.Vec, 128)
		for i := range xs[t] {
			xs[t][i] = rng.NormFloat64() * 0.1
		}
	}
	dhs := make([]nn.Vec, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs, cache := gru.Forward(xs)
		dhs[len(hs)-1] = hs[len(hs)-1]
		gru.Backward(cache, dhs)
		cache.Release()
		for _, p := range gru.Params() {
			p.ZeroGrad()
		}
	}
}

// BenchmarkCHBuild measures contraction-hierarchy preprocessing of the
// experiment network — the one-time cost pathrank-train pays (and
// pathrank-serve skips when the artifact embeds the prep).
func BenchmarkCHBuild(b *testing.B) {
	g := microGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := spath.BuildCH(g, spath.ByLength)
		if ch.NumShortcuts() == 0 {
			b.Fatal("no shortcuts built")
		}
	}
}

// BenchmarkCHQuery measures one point-to-point query on a prebuilt
// hierarchy (the engine behind served candidate generation).
func BenchmarkCHQuery(b *testing.B) {
	g := microGraph(b)
	ch := spath.BuildCH(g, spath.ByLength)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = ch.Query(src, dst)
	}
}

// BenchmarkCHManyToMany measures a bounded 4x4 bucket many-to-many — the
// per-step transition query of HMM map matching.
func BenchmarkCHManyToMany(b *testing.B) {
	g := microGraph(b)
	ch := spath.BuildCH(g, spath.ByLength)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	sources := make([]roadnet.VertexID, 4)
	targets := make([]roadnet.VertexID, 4)
	out := make([][]float64, len(sources))
	for i := range out {
		out[i] = make([]float64, len(targets))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sources {
			sources[j] = roadnet.VertexID(rng.Intn(n))
			targets[j] = roadnet.VertexID(rng.Intn(n))
		}
		ch.ManyToMany(sources, targets, 4000, out)
	}
}

// BenchmarkDiversifiedTopK5CH measures D-TkDI generation on the CH engine —
// the serving path's candidate generator.
func BenchmarkDiversifiedTopK5CH(b *testing.B) {
	g := microGraph(b)
	eng := spath.NewEngine(spath.EngineCH, g, spath.ByLength, spath.EngineConfig{})
	sim := pathsim.WeightedJaccardSim(g)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		_, _ = spath.DiversifiedTopKEngine(eng, src, dst, 5, sim, 0.8, 50)
	}
}

// --- Query API v2 guard benchmarks ---

var (
	queryRankerOnce sync.Once
	queryRanker     *pathrank.Ranker
)

// benchQueryRanker builds a ranker over the experiment network with a
// seeded (untrained) model — scoring cost is weight-independent, so the
// ctx-overhead comparison below does not need a training run.
func benchQueryRanker(b *testing.B) *pathrank.Ranker {
	b.Helper()
	queryRankerOnce.Do(func() {
		g := microGraph(b)
		m, err := pathrank.NewModel(g.NumVertices(), pathrank.ModelConfig{
			EmbeddingDim: 32, Hidden: 16, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		queryRanker = pathrank.NewRanker(g, m)
		queryRanker.Candidates = pathrank.DataConfig{
			Strategy: pathrank.DTkDI, K: 5, Threshold: 0.8, MaxProbe: 50,
		}
	})
	return queryRanker
}

// BenchmarkRankQuery measures the legacy entry point Ranker.Query —
// the no-context baseline of the pair below.
func BenchmarkRankQuery(b *testing.B) {
	r := benchQueryRanker(b)
	n := r.Graph.NumVertices()
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := pathrank.VertexID(rng.Intn(n))
		dst := pathrank.VertexID(rng.Intn(n))
		_, _ = r.Query(src, dst)
	}
}

// BenchmarkRankWithContext measures Ranker.Rank with a live cancelable
// context — the v2 hot path with amortized cancellation checks armed.
// Guard: ns/op within 2% of BenchmarkRankQuery and identical allocs/op
// (the ctx plumbing must be free when the context never fires); compare
// against BenchmarkServeRankUncached across BENCH_*.json for the
// end-to-end serving cost.
func BenchmarkRankWithContext(b *testing.B) {
	r := benchQueryRanker(b)
	n := r.Graph.NumVertices()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := pathrank.VertexID(rng.Intn(n))
		dst := pathrank.VertexID(rng.Intn(n))
		_, _ = r.Rank(ctx, pathrank.RankRequest{Src: src, Dst: dst})
	}
}

// BenchmarkMapMatch measures HMM map matching of one noisy 1 Hz trace.
func BenchmarkMapMatch(b *testing.B) {
	g := microGraph(b)
	p, err := spath.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()/2), spath.ByLength)
	if err != nil {
		b.Fatal(err)
	}
	recs := traj.SampleGPS(g, p, traj.GPSConfig{IntervalSec: 1, NoiseStdM: 8, Seed: 1})
	m := traj.NewMatcher(g, traj.DefaultMatchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(recs); err != nil {
			b.Fatal(err)
		}
	}
}
