package pathrank

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"pathrank/internal/api"
)

// Wire types of the HTTP query API (POST /v2/rank), shared verbatim by the
// server and this client so the two cannot drift apart.
type (
	// RankQuery is one origin-destination query as it travels over HTTP;
	// zero-valued fields select the serving snapshot's defaults.
	RankQuery = api.RankQuery
	// RankResult is one successful ranking as returned by the server.
	RankResult = api.RankResult
	// RankedPathWire is one ranked path of a RankResult.
	RankedPathWire = api.RankedPath
	// BatchItem is one entry of a batch response: a RankResult or a typed
	// per-item error.
	BatchItem = api.BatchItem
	// APIError is the typed failure the client returns for non-2xx
	// responses; its Code is one of the Code* constants and Status the
	// HTTP status it traveled with.
	APIError = api.Error
)

// Client is a Go SDK for a running pathrank-serve instance. The zero value
// plus a BaseURL is usable; all methods are safe for concurrent use.
//
//	c := &pathrank.Client{BaseURL: "http://localhost:8080"}
//	res, err := c.Rank(ctx, pathrank.RankQuery{Src: 12, Dst: 431, K: 8})
//
// Failed requests return an *APIError carrying the server's typed code;
// transport failures and 5xx backlog responses are retried (bounded by
// MaxRetries, honoring Retry-After and ctx). A deadline on ctx propagates
// to the server: unless the query names its own timeout_ms, the remaining
// time budget is sent so the server stops computing when the client stops
// waiting.
type Client struct {
	// BaseURL locates the server, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds retry attempts after the first try (default 2).
	// Only transport errors and 502/503/504 responses are retried — rank
	// queries are read-only, so retrying is always safe.
	MaxRetries int
	// Backoff is the base delay between retries (default 100ms), doubled
	// per attempt with full jitter: each delay is drawn uniformly from
	// [d/2, d], so a fleet of clients retrying a recovering server spreads
	// out instead of thundering in lockstep. A 503 Retry-After header
	// overrides the computed delay (jitter and cap do not apply to an
	// explicit server instruction).
	Backoff time.Duration
	// BackoffCap bounds a single computed delay (default 2s), so a long
	// retry budget backs off steadily instead of exponentially forever.
	BackoffCap time.Duration
	// MaxElapsed, when positive, is the total retry budget measured from
	// the first attempt: once it is spent, the last error is returned
	// instead of sleeping again, and a final delay never overshoots it.
	MaxElapsed time.Duration
}

// Rank answers one ranking query.
func (c *Client) Rank(ctx context.Context, q RankQuery) (*RankResult, error) {
	c.propagateDeadline(ctx, &q)
	var res RankResult
	if err := c.post(ctx, "/v2/rank", api.RankRequest{RankQuery: q}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RankBatch answers a batch of queries in one request: per-item errors,
// shared snapshot, and one NN scoring sweep server-side. timeout bounds
// the whole batch on the server (0 sends the ctx deadline, when any). An
// empty batch returns nil without a round-trip.
func (c *Client) RankBatch(ctx context.Context, queries []RankQuery, timeout time.Duration) ([]BatchItem, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	req := api.RankRequest{Queries: queries}
	if timeout > 0 {
		req.TimeoutMs = timeout.Milliseconds()
	} else {
		c.propagateDeadline(ctx, &req.RankQuery)
	}
	var res api.BatchResponse
	if err := c.post(ctx, "/v2/rank", req, &res); err != nil {
		return nil, err
	}
	return res.Results, nil
}

// Provenance reports the server's data-provenance state: the serving
// generation's Merkle commitments and, when the server runs a trajectory
// WAL, the health of the log.
func (c *Client) Provenance(ctx context.Context) (ProvenanceInfo, error) {
	var info ProvenanceInfo
	if err := c.get(ctx, "/v1/provenance", &info); err != nil {
		return ProvenanceInfo{}, err
	}
	return info, nil
}

// ProveTrajectory fetches the inclusion proof for ingested trajectory seq
// in the serving generation's training batch. Verify it offline with
// VerifyInclusionProof; a 404 (trajectory not in the committed batch, or
// no live pipeline) arrives as an *APIError.
func (c *Client) ProveTrajectory(ctx context.Context, seq int64) (InclusionProof, error) {
	var proof InclusionProof
	if err := c.get(ctx, "/v1/provenance?seq="+strconv.FormatInt(seq, 10), &proof); err != nil {
		return InclusionProof{}, err
	}
	return proof, nil
}

// propagateDeadline fills q.TimeoutMs from ctx's deadline when the query
// does not name its own timeout, so the server abandons work the client
// will never read.
func (c *Client) propagateDeadline(ctx context.Context, q *RankQuery) {
	if q.TimeoutMs > 0 {
		return
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			q.TimeoutMs = ms
		}
	}
}

// post sends body and decodes a 200 response into out, retrying transient
// failures.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("pathrank: encode request: %w", err)
	}
	return c.do(ctx, http.MethodPost, path, payload, out)
}

// get fetches path and decodes a 200 response into out, retrying transient
// failures (all GET endpoints are read-only, so retrying is always safe).
func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// do runs one request with the shared retry loop.
func (c *Client) do(ctx context.Context, method, path string, payload []byte, out any) error {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 2
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxDelay := c.BackoffCap
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	if maxDelay < backoff {
		maxDelay = backoff
	}
	start := time.Now()

	var lastErr error
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
		if err != nil {
			return fmt.Errorf("pathrank: build request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}

		resp, err := hc.Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			lastErr = fmt.Errorf("pathrank: %s: %w", path, err)
		default:
			apiErr, decodeErr := consumeResponse(resp, out)
			if decodeErr != nil {
				// A 200 with an undecodable body is deterministic
				// (proxy error page, server bug) — retrying re-sends
				// the identical request for the identical failure.
				return decodeErr
			}
			if apiErr == nil {
				return nil
			}
			if !retryableStatus(apiErr.Status) {
				return apiErr
			}
			lastErr = apiErr
			retryAfter = retryAfterOf(resp)
		}
		if attempt >= retries || ctx.Err() != nil {
			return lastErr
		}
		// Exponential backoff, capped, with full jitter in [d/2, d]. The
		// shift is clamped so a generous retry budget cannot overflow the
		// doubling into a negative duration.
		delay := maxDelay
		if attempt < 20 {
			if d := backoff << attempt; d < maxDelay {
				delay = d
			}
		}
		delay = delay/2 + rand.N(delay/2+1)
		if retryAfter > 0 {
			delay = retryAfter
		}
		if c.MaxElapsed > 0 {
			remaining := c.MaxElapsed - time.Since(start)
			if remaining <= 0 {
				return lastErr
			}
			if delay > remaining {
				delay = remaining
			}
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(delay):
		}
	}
}

// consumeResponse decodes resp: a 2xx body into out (returning nil, nil),
// or an error body into a typed *APIError.
func consumeResponse(resp *http.Response, out any) (*APIError, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("pathrank: read response: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("pathrank: decode response: %w", err)
		}
		return nil, nil
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil {
		env.Error.Status = resp.StatusCode
		return env.Error, nil
	}
	// Not a v2 envelope (proxy error page, v1 body): synthesize a code
	// from the status so callers still get a typed error.
	return &APIError{
		Status:  resp.StatusCode,
		Code:    codeFromStatus(resp.StatusCode),
		Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, truncate(string(raw), 200)),
	}, nil
}

// codeFromStatus maps a bare (non-envelope) HTTP status onto the nearest
// typed code. 404 deliberately maps to internal, not unroutable: a real
// unroutable pair always arrives as a typed envelope, while a bare 404 is
// a wrong BaseURL or path — reporting it as a routing verdict would point
// the user at their graph instead of their URL.
func codeFromStatus(status int) string {
	switch status {
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		return api.CodeInvalid
	case http.StatusRequestTimeout:
		return api.CodeCanceled
	case http.StatusGatewayTimeout:
		return api.CodeDeadline
	case http.StatusServiceUnavailable:
		return api.CodeBacklog
	default:
		return api.CodeInternal
	}
}

// retryableStatus reports whether a response status is worth retrying:
// transient gateway/backlog failures, never client errors.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterOf parses a Retry-After delay in seconds, when present.
func retryAfterOf(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
