// Mapmatch: the preprocessing pipeline of the paper. Raw GPS records
// (sampled at 1 Hz with realistic noise from simulated vehicles) are
// recovered into network paths with the HMM map matcher, and the recovered
// paths are compared to the ground-truth driven paths — demonstrating that
// the trajectory substrate produces training data of the quality PathRank
// assumes.
package main

import (
	"fmt"
	"log"

	"pathrank/internal/geo"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

func main() {
	log.SetFlags(0)

	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 14, Cols: 14, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.1, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 10, Seed: 22})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: 3, MinHops: 6, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}

	matcher := traj.NewMatcher(g, traj.DefaultMatchConfig())
	fmt.Printf("map-matching %d trips at three noise levels:\n\n", len(trips))
	for _, noise := range []float64{0, 8, 20} {
		var simSum float64
		var records int
		matched := 0
		for i, tr := range trips {
			recs := traj.SampleGPS(g, tr.Path, traj.GPSConfig{
				IntervalSec: 1, NoiseStdM: noise, Seed: int64(1000 + i),
			})
			records += len(recs)
			got, err := matcher.Match(recs)
			if err != nil {
				continue
			}
			matched++
			simSum += pathsim.WeightedJaccard(g, got, tr.Path)
		}
		fmt.Printf("  noise %4.0f m: %d/%d trips matched, %d GPS records, mean overlap %.3f\n",
			noise, matched, len(trips), records, simSum/float64(matched))
	}

	// Walk through one trip in detail.
	tr := trips[0]
	recs := traj.SampleGPS(g, tr.Path, traj.GPSConfig{IntervalSec: 1, NoiseStdM: 8, Seed: 99})
	got, err := matcher.Match(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample trip %d -> %d:\n", tr.Path.Source(), tr.Path.Destination())
	fmt.Printf("  driven:    %2d edges, %6.0f m\n", tr.Path.Len(), tr.Path.Length(g))
	fmt.Printf("  GPS:       %d records over %.0f s\n", len(recs), recs[len(recs)-1].TimeOffset)
	fmt.Printf("  recovered: %2d edges, %6.0f m (overlap %.3f)\n",
		got.Len(), got.Length(g), pathsim.WeightedJaccard(g, got, tr.Path))
}
