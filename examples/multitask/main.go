// Multitask: the PR-M extension. PathRank's recurrent body is shared with
// two auxiliary heads that regress each candidate's length ratio and
// travel-time ratio. The example trains the single-task and multi-task
// models on identical data and compares held-out ranking quality —
// illustrating how auxiliary supervision regularizes the path
// representation.
package main

import (
	"fmt"
	"log"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

func main() {
	log.SetFlags(0)

	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 14, Cols: 14, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.1, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 40, Seed: 32})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: 5, MinHops: 5, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}

	const m = 32
	emb := node2vec.Embed(g, node2vec.DefaultWalkConfig(), node2vec.DefaultTrainConfig(m))
	queries, err := dataset.Generate(g, trips, dataset.Config{
		Strategy: dataset.DTkDI, K: 5, Threshold: 0.8, IncludeTruth: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := dataset.Split(queries, 0.25, 34)
	fmt.Printf("train %d queries / test %d queries\n\n", len(train), len(test))

	for _, lambda := range []float64{0, 0.5} {
		model, err := pathrank.New(g.NumVertices(), pathrank.Config{
			EmbeddingDim: m, Hidden: 24, Variant: pathrank.PRA2,
			Body: pathrank.GRUBody, MultiTaskLambda: lambda, Seed: 35,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := model.InitEmbeddings(emb); err != nil {
			log.Fatal(err)
		}
		losses, err := model.Train(train, pathrank.TrainConfig{
			Epochs: 8, LR: 0.003, ClipNorm: 5, Seed: 36,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "single-task (lambda=0)  "
		if lambda > 0 {
			name = fmt.Sprintf("multi-task (lambda=%.1f)", lambda)
		}
		fmt.Printf("%s final train loss %.4f\n", name, losses[len(losses)-1])
		fmt.Printf("%s held-out: %v\n\n", name, model.Evaluate(test))
	}
}
