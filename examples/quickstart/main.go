// Quickstart: build a small road network, simulate local-driver
// trajectories, train PathRank end to end, and rank candidate paths for a
// query — the complete workflow of the paper in one file.
package main

import (
	"fmt"
	"log"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic regional road network (substitute for the paper's
	//    North Jutland OSM extract).
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 14, Cols: 14, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.1, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. Simulated drivers with shared local conventions produce trips
	//    that are often neither shortest nor fastest.
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 40, Seed: 2})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: 5, MinHops: 5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ns, nf := traj.NonOptimalFraction(g, trips)
	fmt.Printf("trips: %d (%.0f%% not shortest, %.0f%% not fastest)\n", len(trips), ns*100, nf*100)

	// 3. Train PathRank (PR-A2: node2vec init + fine-tuning) on D-TkDI
	//    candidates labeled with weighted Jaccard similarity.
	const m = 32
	wc := node2vec.DefaultWalkConfig()
	sc := node2vec.DefaultTrainConfig(m)
	pipe, err := pathrank.BuildPipeline(g, trips, pathrank.PipelineConfig{
		Walk: wc, SGNS: sc,
		Data: dataset.Config{Strategy: dataset.DTkDI, K: 5, Threshold: 0.8, IncludeTruth: true},
		Model: pathrank.Config{
			EmbeddingDim: m, Hidden: 24, Variant: pathrank.PRA2,
			Body: pathrank.GRUBody, Seed: 4,
		},
		Train:     pathrank.TrainConfig{Epochs: 8, LR: 0.003, ClipNorm: 5, Seed: 5},
		TestFrac:  0.25,
		SplitSeed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("held-out metrics:", pipe.Model.Evaluate(pipe.Test))

	// 4. Rank candidates for a fresh query like a navigation service.
	ranker := pathrank.NewRanker(g, pipe.Model)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	ranked, err := ranker.Query(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %d -> %d:\n", src, dst)
	for i, r := range ranked {
		fmt.Printf("  #%d score=%.3f length=%.0fm time=%.0fs\n",
			i+1, r.Score, r.Path.Length(g), r.Path.Time(g))
	}
}
