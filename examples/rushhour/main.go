// Rushhour: the time-dependent extension. Road categories get rush-hour
// speed profiles; time-dependent Dijkstra computes earliest-arrival paths
// for departures across the day, showing how the best route and its
// duration shift with traffic — the travel-time-variability setting the
// paper's trajectory data comes from.
package main

import (
	"fmt"
	"log"

	"pathrank/internal/geo"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traffic"
)

func main() {
	log.SetFlags(0)

	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 14, Cols: 14, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.1, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := traffic.DefaultModel()
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}

	// Opposite corners of the 14x14 grid (the trailing vertex IDs belong to
	// the motorway ring, so NumVertices()-1 would be a ring vertex next to
	// the grid).
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(14*14 - 1)
	static, err := spath.Dijkstra(g, src, dst, spath.ByTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %d -> %d, free-flow fastest: %.0f s over %.0f m\n\n",
		src, dst, static.Cost, static.Length(g))

	fmt.Println("departure   travel   vs free   route change vs free-flow path")
	for _, h := range []float64{2, 6, 7.5, 9, 12, 16, 18} {
		p, err := model.EarliestArrival(g, src, dst, h*3600)
		if err != nil {
			log.Fatal(err)
		}
		overlap := pathsim.WeightedJaccard(g, p, static)
		marker := ""
		if overlap < 0.999 {
			marker = fmt.Sprintf("reroutes (overlap %.2f)", overlap)
		} else {
			marker = "same route"
		}
		fmt.Printf("  %05.2fh    %5.0f s   %+5.0f%%   %s\n",
			h, p.Cost, (p.Cost/static.Cost-1)*100, marker)
	}
}
