// Commuter: the scenario from the paper's introduction. A commuter drives
// the same origin-destination pair every day, preferring arterial roads
// over the literal shortest path. Classic routing (shortest / fastest)
// keeps proposing paths the commuter does not take; PathRank, trained on
// the region's trajectories, learns to put the commuter's actual choice
// first.
//
// The example prints, for a held-out set of commuter trips, where each
// ranker places the path the driver actually drove (mean rank, lower is
// better).
package main

import (
	"fmt"
	"log"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

func main() {
	log.SetFlags(0)

	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 16, Cols: 16, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.1, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 50, Seed: 12})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: 5, MinHops: 6, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	const m = 32
	pipe, err := pathrank.BuildPipeline(g, trips, pathrank.PipelineConfig{
		Walk: node2vec.DefaultWalkConfig(),
		SGNS: node2vec.DefaultTrainConfig(m),
		Data: dataset.Config{Strategy: dataset.DTkDI, K: 5, Threshold: 0.8, IncludeTruth: true},
		Model: pathrank.Config{
			EmbeddingDim: m, Hidden: 24, Variant: pathrank.PRA2,
			Body: pathrank.GRUBody, Seed: 14,
		},
		Train:     pathrank.TrainConfig{Epochs: 8, LR: 0.003, ClipNorm: 5, Seed: 15},
		TestFrac:  0.25,
		SplitSeed: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// For each held-out commute, rank the candidates three ways and find
	// the position of the path most similar to the driver's actual choice.
	rankOfTruth := func(scores []float64, cands []dataset.Instance) int {
		bestLabel, bestIdx := -1.0, 0
		for i, c := range cands {
			if c.Label > bestLabel {
				bestLabel, bestIdx = c.Label, i
			}
		}
		rank := 1
		for i, s := range scores {
			if i != bestIdx && s > scores[bestIdx] {
				rank++
			}
		}
		return rank
	}

	var prSum, lenSum, timeSum float64
	for _, q := range pipe.Test {
		n := len(q.Candidates)
		pr := make([]float64, n)
		byLen := make([]float64, n)
		byTime := make([]float64, n)
		for i, c := range q.Candidates {
			pr[i] = pipe.Model.Score(c.Path)
			byLen[i] = -c.Path.Length(g)
			byTime[i] = -c.Path.Time(g)
		}
		prSum += float64(rankOfTruth(pr, q.Candidates))
		lenSum += float64(rankOfTruth(byLen, q.Candidates))
		timeSum += float64(rankOfTruth(byTime, q.Candidates))
	}
	nq := float64(len(pipe.Test))
	fmt.Printf("held-out commutes: %d\n", len(pipe.Test))
	fmt.Printf("mean rank of the driver's actual path (1 = proposed first):\n")
	fmt.Printf("  PathRank (PR-A2):   %.2f\n", prSum/nq)
	fmt.Printf("  shortest-distance:  %.2f\n", lenSum/nq)
	fmt.Printf("  fastest-time:       %.2f\n", timeSum/nq)

	// Show one concrete commute.
	q := pipe.Test[0]
	fmt.Printf("\nexample commute %d -> %d (driver's path: %.0fm, %.0fs):\n",
		q.Source, q.Destination, q.Truth.Length(g), q.Truth.Time(g))
	sp, _ := spath.Dijkstra(g, q.Source, q.Destination, spath.ByLength)
	fmt.Printf("  shortest path overlap with driver's choice: %.2f\n",
		pathsim.WeightedJaccard(g, sp, q.Truth))
	ranked := pipe.Model.Rank(pathsFrom(q))
	fmt.Println("  PathRank ordering:")
	for i, r := range ranked {
		fmt.Printf("    #%d score=%.3f overlap=%.2f length=%.0fm\n",
			i+1, r.Score, pathsim.WeightedJaccard(g, r.Path, q.Truth), r.Path.Length(g))
	}
}

func pathsFrom(q dataset.Query) []spath.Path {
	out := make([]spath.Path, len(q.Candidates))
	for i, c := range q.Candidates {
		out[i] = c.Path
	}
	return out
}
