module pathrank

go 1.24.0
