module pathrank

go 1.23.0
