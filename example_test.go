package pathrank_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"pathrank"
)

// ExampleRankRequest builds a fully overridden query for the context-aware
// core entry point. Zero-valued fields keep the ranker's configured
// defaults, so RankRequest{Src: s, Dst: d} reproduces Ranker.Query(s, d)
// exactly; here every knob of the candidate regime is set per request.
func ExampleRankRequest() {
	req := pathrank.RankRequest{
		Src:       12,
		Dst:       431,
		K:         8,                      // candidate-set size
		Strategy:  pathrank.StrategyDTkDI, // diversified top-k (D-TkDI)
		Threshold: 0.6,                    // diversity threshold
		Weight:    pathrank.WeightTime,    // rank fastest, not shortest
		Engine:    pathrank.EngineNone,    // plain Dijkstra, no prepared engine
		Explain:   true,                   // fill RankStats in the response
	}
	// With a trained ranker this would run:
	//   resp, err := ranker.Rank(ctx, req)
	// and ctx cancellation would stop the candidate enumeration mid-search.
	fmt.Printf("%d->%d k=%d strategy=%s weight=%s engine=%s\n",
		req.Src, req.Dst, req.K, req.Strategy, req.Weight, req.Engine)
	// Output:
	// 12->431 k=8 strategy=dtkdi weight=time engine=dijkstra
}

// ExampleClient queries a pathrank-serve instance through the Go SDK. The
// handler here stands in for a real server (run `pathrank-serve -artifact
// model.prart` and point BaseURL at it); the request and response shapes
// are exactly the POST /v2/rank wire format.
func ExampleClient() {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// One ranked path for query 0 -> 9.
		fmt.Fprint(w, `{"src":0,"dst":9,"k":2,"cached":false,"paths":[`+
			`{"rank":1,"score":0.91,"length_m":1250,"time_s":96,"hops":5,"vertices":[0,3,5,7,8,9]}]}`)
	}))
	defer ts.Close()

	client := &pathrank.Client{BaseURL: ts.URL}
	res, err := client.Rank(context.Background(), pathrank.RankQuery{Src: 0, Dst: 9, K: 2})
	if err != nil {
		// Failures carry typed codes: pathrank.ErrorCodeOf(err) is one of
		// CodeInvalid, CodeUnroutable, CodeDeadline, CodeCanceled,
		// CodeBacklog, CodeInternal.
		fmt.Println("rank failed:", pathrank.ErrorCodeOf(err))
		return
	}
	best := res.Paths[0]
	fmt.Printf("%d paths; best score %.2f over %.0f m\n", len(res.Paths), best.Score, best.LengthM)
	// Output:
	// 1 paths; best score 0.91 over 1250 m
}
