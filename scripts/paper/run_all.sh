#!/usr/bin/env bash
# run_all.sh — the paper-grade experiment grid: build the binaries, train
# a model on a synthetic world, then drive every configuration in
# experiments.json with pathrank-load, repeating each one N times, and
# aggregate the runs into CSV plus Markdown/LaTeX summary tables with
# mean and sample standard deviation.
#
# Usage: scripts/paper/run_all.sh [output-dir]
#
#   output-dir   where the per-run JSON reports and the aggregated
#                results.csv / summary.{csv,md,tex} land
#                (default: paper-results/ in the repo root)
#
# Environment overrides (CI smoke uses these to shrink the run):
#   PAPER_REPEATS    repeats per configuration (default: experiments.json)
#   PAPER_DURATION   load duration per run     (default: experiments.json)
#   PAPER_RATE       target request rate       (default: experiments.json)
#   PAPER_ROWS/PAPER_COLS/PAPER_DRIVERS  synthetic world size (default 12/12/30)
#   PAPER_EPOCHS     training epochs for the served model (default 3)
#
# Each run restarts pathrank-serve from the same artifact, so repeats are
# independent cold starts; pathrank-load's seed advances per repeat, so
# the repeats sample different arrival realizations of the same mix.
set -euo pipefail

cd "$(dirname "$0")/../.."
OUT="${1:-paper-results}"
CONFIG="scripts/paper/experiments.json"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "paper: building binaries..."
go build -o "$WORK/netgen" ./cmd/netgen
go build -o "$WORK/pathrank-train" ./cmd/pathrank-train
go build -o "$WORK/pathrank-serve" ./cmd/pathrank-serve
go build -o "$WORK/pathrank-load" ./cmd/pathrank-load
go build -o "$WORK/analyze" ./scripts/paper/analyze

# The grid definition is the single source of truth; the shell only
# orchestrates what analyze -plan tells it to.
PLAN="$WORK/plan.tsv"
"$WORK/analyze" -config "$CONFIG" -plan > "$PLAN"
read -r _ REPEATS DURATION RATE SEED < <(grep '^settings' "$PLAN" | cut -f2-)
REPEATS="${PAPER_REPEATS:-$REPEATS}"
DURATION="${PAPER_DURATION:-$DURATION}"
RATE="${PAPER_RATE:-$RATE}"

echo "paper: generating world and training the served model..."
"$WORK/netgen" -rows "${PAPER_ROWS:-12}" -cols "${PAPER_COLS:-12}" \
    -drivers "${PAPER_DRIVERS:-30}" -trips 4 -seed 1 \
    -out "$WORK/net.gob" -trips-out "$WORK/trips.gob"
"$WORK/pathrank-train" -net "$WORK/net.gob" -trips "$WORK/trips.gob" \
    -epochs "${PAPER_EPOCHS:-3}" -seed 1 \
    -out "$WORK/model.gob" -artifact "$WORK/model.prart"

mkdir -p "$OUT"

# wait_listen LOGFILE prints the server's bound address once it appears.
wait_listen() {
    local logfile="$1" addr="" i
    for i in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \(.*\)/\1/p' "$logfile" | head -1)"
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        if [[ -n "$SERVER_PID" ]] && ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "paper: server died during startup:" >&2
            cat "$logfile" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "paper: server never reported its listen address" >&2
    cat "$logfile" >&2
    return 1
}

while IFS=$'\t' read -r tag NAME SERVE_ARGS LOAD_ARGS; do
    [[ "$tag" == "exp" ]] || continue
    for rep in $(seq 0 $((REPEATS - 1))); do
        LOG="$WORK/serve-$NAME-$rep.log"
        # shellcheck disable=SC2086 — the flag lists are word-split on purpose
        "$WORK/pathrank-serve" -artifact "$WORK/model.prart" -addr 127.0.0.1:0 \
            $SERVE_ARGS >"$LOG" 2>&1 &
        SERVER_PID=$!
        ADDR="$(wait_listen "$LOG")"
        echo "paper: $NAME repeat $rep on $ADDR (${RATE} req/s for $DURATION)"
        # shellcheck disable=SC2086
        "$WORK/pathrank-load" -addr "http://$ADDR" -rate "$RATE" \
            -duration "$DURATION" -seed $((SEED + rep)) -json \
            $LOAD_ARGS > "$OUT/${NAME}_rep${rep}.json" 2>"$WORK/load-$NAME-$rep.log" \
            || { cat "$WORK/load-$NAME-$rep.log" >&2; exit 1; }
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
        SERVER_PID=""
    done
done < "$PLAN"

"$WORK/analyze" -config "$CONFIG" -results "$OUT" -repeats "$REPEATS"
echo "paper: done — see $OUT/summary.md"
