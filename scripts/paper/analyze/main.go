// Command analyze is the plumbing behind scripts/paper/run_all.sh: it
// parses the experiments.json grid and aggregates pathrank-load reports
// into the paper-grade artifacts.
//
// Two modes:
//
//	analyze -config experiments.json -plan
//	  prints the grid as tab-delimited lines for the shell driver:
//	  a "settings" line (repeats, duration, rate, seed) and one "exp"
//	  line per experiment (name, serve flags, load flags).
//
//	analyze -config experiments.json -results DIR -repeats N
//	  reads DIR/<name>_rep<i>.json (one pathrank-load -json report per
//	  repeat) and writes DIR/results.csv (per-run rows), DIR/summary.csv,
//	  DIR/summary.md and DIR/summary.tex (per-experiment mean and sample
//	  standard deviation over the repeats). Any missing or malformed
//	  report, or an implausible one (zero requests, non-monotone
//	  quantiles), fails the run with a non-zero exit.
//
// It uses only the standard library, so the grid runner needs nothing
// beyond the Go toolchain that builds the repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// gridConfig mirrors experiments.json.
type gridConfig struct {
	Repeats     int          `json:"repeats"`
	Duration    string       `json:"duration"`
	Rate        float64      `json:"rate"`
	Seed        int64        `json:"seed"`
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	Name  string   `json:"name"`
	Serve []string `json:"serve"`
	Load  []string `json:"load"`
}

// loadReport is the subset of the pathrank-load -json report the
// analysis consumes.
type loadReport struct {
	Requests int64            `json:"requests"`
	Dropped  int64            `json:"dropped_arrivals"`
	Errors   map[string]int64 `json:"errors"`
	RPS      float64          `json:"achieved_rps"`
	Latency  struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		P999 float64 `json:"p999"`
	} `json:"latency_ms"`
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")

	config := flag.String("config", "experiments.json", "experiment grid definition")
	plan := flag.Bool("plan", false, "print the grid for the shell driver and exit")
	results := flag.String("results", "", "aggregate pathrank-load reports from this directory")
	repeats := flag.Int("repeats", 0, "repeats actually run (overrides the config; for -results)")
	flag.Parse()

	grid, err := loadGrid(*config)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *plan:
		printPlan(grid)
	case *results != "":
		n := grid.Repeats
		if *repeats > 0 {
			n = *repeats
		}
		if err := aggregate(grid, *results, n); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("nothing to do: pass -plan or -results DIR")
	}
}

// loadGrid reads and validates the experiment grid.
func loadGrid(path string) (*gridConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var grid gridConfig
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&grid); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if grid.Repeats < 1 {
		return nil, fmt.Errorf("%s: repeats must be >= 1", path)
	}
	if _, err := time.ParseDuration(grid.Duration); err != nil {
		return nil, fmt.Errorf("%s: duration: %w", path, err)
	}
	if grid.Rate <= 0 {
		return nil, fmt.Errorf("%s: rate must be positive", path)
	}
	if len(grid.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments", path)
	}
	seen := make(map[string]bool)
	for _, e := range grid.Experiments {
		if !nameRe.MatchString(e.Name) {
			return nil, fmt.Errorf("%s: experiment name %q (want lowercase letters, digits, dashes)", path, e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("%s: duplicate experiment %q", path, e.Name)
		}
		seen[e.Name] = true
		for _, arg := range append(append([]string{}, e.Serve...), e.Load...) {
			if strings.ContainsAny(arg, " \t\n") {
				return nil, fmt.Errorf("%s: experiment %q: flag token %q contains whitespace", path, e.Name, arg)
			}
		}
	}
	return &grid, nil
}

// printPlan emits the tab-delimited grid for the shell driver.
func printPlan(grid *gridConfig) {
	fmt.Printf("settings\t%d\t%s\t%g\t%d\n", grid.Repeats, grid.Duration, grid.Rate, grid.Seed)
	for _, e := range grid.Experiments {
		fmt.Printf("exp\t%s\t%s\t%s\n", e.Name, strings.Join(e.Serve, " "), strings.Join(e.Load, " "))
	}
}

// column describes one aggregated metric.
type column struct {
	name string
	get  func(*loadReport) float64
}

var columns = []column{
	{"rps", func(r *loadReport) float64 { return r.RPS }},
	{"mean_ms", func(r *loadReport) float64 { return r.Latency.Mean }},
	{"p50_ms", func(r *loadReport) float64 { return r.Latency.P50 }},
	{"p95_ms", func(r *loadReport) float64 { return r.Latency.P95 }},
	{"p99_ms", func(r *loadReport) float64 { return r.Latency.P99 }},
	{"p999_ms", func(r *loadReport) float64 { return r.Latency.P999 }},
}

// aggregate reads every repeat of every experiment and writes the CSVs
// and summary tables.
func aggregate(grid *gridConfig, dir string, repeats int) error {
	perRun := &strings.Builder{}
	fmt.Fprintf(perRun, "experiment,repeat,requests,dropped,errors,%s\n", joinNames(","))
	summaryCSV := &strings.Builder{}
	fmt.Fprintf(summaryCSV, "experiment,repeats")
	for _, c := range columns {
		fmt.Fprintf(summaryCSV, ",%s_mean,%s_std", c.name, c.name)
	}
	summaryCSV.WriteByte('\n')

	type aggRow struct {
		name      string
		mean, std []float64
	}
	var rows []aggRow

	for _, e := range grid.Experiments {
		samples := make([][]float64, len(columns))
		for rep := 0; rep < repeats; rep++ {
			path := filepath.Join(dir, fmt.Sprintf("%s_rep%d.json", e.Name, rep))
			rpt, err := readReport(path)
			if err != nil {
				return err
			}
			var nerr int64
			for _, n := range rpt.Errors {
				nerr += n
			}
			fmt.Fprintf(perRun, "%s,%d,%d,%d,%d", e.Name, rep, rpt.Requests, rpt.Dropped, nerr)
			for i, c := range columns {
				v := c.get(rpt)
				samples[i] = append(samples[i], v)
				fmt.Fprintf(perRun, ",%.4f", v)
			}
			perRun.WriteByte('\n')
		}
		row := aggRow{name: e.Name}
		fmt.Fprintf(summaryCSV, "%s,%d", e.Name, repeats)
		for _, s := range samples {
			m, sd := meanStd(s)
			row.mean = append(row.mean, m)
			row.std = append(row.std, sd)
			fmt.Fprintf(summaryCSV, ",%.4f,%.4f", m, sd)
		}
		summaryCSV.WriteByte('\n')
		rows = append(rows, row)
	}

	md := &strings.Builder{}
	fmt.Fprintf(md, "# Experiment grid summary\n\n")
	fmt.Fprintf(md, "%d repeats per configuration; cells are mean ± sample std.\n\n", repeats)
	fmt.Fprintf(md, "| experiment |")
	for _, c := range columns {
		fmt.Fprintf(md, " %s |", c.name)
	}
	fmt.Fprintf(md, "\n|---|")
	for range columns {
		fmt.Fprintf(md, "---|")
	}
	md.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(md, "| %s |", row.name)
		for i := range columns {
			fmt.Fprintf(md, " %.2f ± %.2f |", row.mean[i], row.std[i])
		}
		md.WriteByte('\n')
	}

	tex := &strings.Builder{}
	fmt.Fprintf(tex, "%% generated by scripts/paper — %d repeats, mean $\\pm$ sample std\n", repeats)
	fmt.Fprintf(tex, "\\begin{tabular}{l%s}\n\\toprule\n", strings.Repeat("r", len(columns)))
	fmt.Fprintf(tex, "experiment")
	for _, c := range columns {
		fmt.Fprintf(tex, " & %s", strings.ReplaceAll(c.name, "_", "\\_"))
	}
	fmt.Fprintf(tex, " \\\\\n\\midrule\n")
	for _, row := range rows {
		fmt.Fprintf(tex, "%s", row.name)
		for i := range columns {
			fmt.Fprintf(tex, " & $%.2f \\pm %.2f$", row.mean[i], row.std[i])
		}
		fmt.Fprintf(tex, " \\\\\n")
	}
	fmt.Fprintf(tex, "\\bottomrule\n\\end{tabular}\n")

	for name, content := range map[string]string{
		"results.csv": perRun.String(),
		"summary.csv": summaryCSV.String(),
		"summary.md":  md.String(),
		"summary.tex": tex.String(),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote results.csv, summary.csv, summary.md, summary.tex to %s\n", dir)
	return nil
}

// readReport loads one pathrank-load report and sanity-checks it.
func readReport(path string) (*loadReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("missing run artifact: %w", err)
	}
	var rpt loadReport
	if err := json.Unmarshal(raw, &rpt); err != nil {
		return nil, fmt.Errorf("%s: malformed report: %w", path, err)
	}
	if rpt.Requests <= 0 {
		return nil, fmt.Errorf("%s: report has zero completed requests", path)
	}
	l := rpt.Latency
	if l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 || l.P999 < l.P99 {
		return nil, fmt.Errorf("%s: implausible quantiles: %+v", path, l)
	}
	return &rpt, nil
}

// meanStd returns the mean and sample standard deviation (0 for n < 2).
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

func joinNames(sep string) string {
	names := make([]string, len(columns))
	for i, c := range columns {
		names[i] = c.name
	}
	return strings.Join(names, sep)
}
