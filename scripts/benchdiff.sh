#!/usr/bin/env bash
# benchdiff.sh — the CI bench-regression gate: compare a benchmark run
# against the committed BENCH_*.json baseline and fail on regressions in
# the tracked hot-path benchmarks.
#
# Usage: scripts/benchdiff.sh [current.json]
#
#   current.json  a bench.sh-format result file; when omitted, the tracked
#                 benchmarks are run now (via scripts/bench.sh) into a temp
#                 file with the same methodology as the baseline.
#
# Environment:
#   BENCHDIFF_BASELINE   baseline file (default: newest BENCH_*.json)
#   BENCHDIFF_THRESHOLD  allowed regression in percent (default: 20)
#   BENCHDIFF_TRACKED    space-separated benchmark names to gate
#   BENCHDIFF_METRICS    metrics to gate (default: "allocs_per_op bytes_per_op")
#
# Why allocations, not nanoseconds, by default: the committed baseline was
# recorded on a different machine than the CI runner, so absolute ns/op is
# not comparable — but allocs/op and B/op are deterministic properties of
# the code path and identical on any machine. A hot-path change that breaks
# the zero-alloc workspace or scratch-arena invariants from the perf PRs
# shows up as an alloc regression. For same-machine A/B runs, add ns_per_op:
#   BENCHDIFF_METRICS="allocs_per_op bytes_per_op ns_per_op" scripts/benchdiff.sh old.json
#
# Noise guard: when either file was recorded with repeats (bench.sh
# BENCHCOUNT > 1), a metric only counts as regressed if it exceeds the
# threshold AND the absolute delta is larger than the two runs' combined
# sample standard deviations — a spread the repeats themselves produced
# is not a verdict. Files without _std keys (single-run baselines) get
# std 0 and behave exactly as before.
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${BENCHDIFF_THRESHOLD:-20}"
METRICS="${BENCHDIFF_METRICS:-allocs_per_op bytes_per_op}"
# The tracked hot paths: the search/scoring kernels the perf PRs optimized.
# Macro table benchmarks and parallel HTTP load tests are excluded — their
# single-iteration numbers are workload-level and noisy by design.
# Benchmarks newer than the committed baseline (e.g. the CH engine ones
# right after they land) are skipped with a note until a baseline that
# contains them is recorded — see the "not in baseline" branch below.
TRACKED="${BENCHDIFF_TRACKED:-BenchmarkDijkstra BenchmarkBidirectionalDijkstra BenchmarkTopK5 BenchmarkDiversifiedTopK5 BenchmarkDiversifiedTopK5CH BenchmarkCHQuery BenchmarkCHManyToMany BenchmarkWeightedJaccard BenchmarkNode2vecWalks BenchmarkGRUForwardBackward BenchmarkMapMatch BenchmarkRankQuery BenchmarkRankWithContext BenchmarkGemmNT BenchmarkScoreBatchFused BenchmarkRouterRankCoShard BenchmarkRouterRankCrossShard}"

BASELINE="${BENCHDIFF_BASELINE:-}"
if [[ -z "$BASELINE" ]]; then
    BASELINE="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
fi
if [[ -z "$BASELINE" || ! -f "$BASELINE" ]]; then
    echo "benchdiff: no baseline BENCH_*.json found" >&2
    exit 2
fi

CURRENT="${1:-}"
CLEANUP=""
if [[ -z "$CURRENT" ]]; then
    # Re-run only the tracked benchmarks, with bench.sh's methodology
    # (quick world, 1 iteration) so the comparison is apples to apples —
    # including the baseline's repeat count: repeats after the first run
    # against warm sync.Pools, so a cold single run and a repeats-mean
    # baseline disagree on allocs/op by construction, not regression.
    BASECOUNT="$(grep -o '"runs": [0-9]*' "$BASELINE" | head -1 | tr -dc 0-9 || true)"
    PATTERN="^($(echo "$TRACKED" | tr ' ' '|'))$"
    CURRENT="$(mktemp)"
    CLEANUP="$CURRENT"
    trap 'rm -f "$CLEANUP"' EXIT
    echo "benchdiff: running tracked benchmarks (count=${BENCHCOUNT:-${BASECOUNT:-1}})..." >&2
    BENCHCOUNT="${BENCHCOUNT:-${BASECOUNT:-1}}" scripts/bench.sh "$CURRENT" "$PATTERN" >&2
fi

echo "benchdiff: baseline=$BASELINE current=$CURRENT threshold=${THRESHOLD}% metrics=[$METRICS]"

awk -v tracked="$TRACKED" -v metrics="$METRICS" -v threshold="$THRESHOLD" \
    -v basefile="$BASELINE" -v curfile="$CURRENT" '
function parse(file, dest,    line, name, i, key, val, rest) {
    while ((getline line < file) > 0) {
        if (line !~ /"name"/) continue
        # Lines look like: {"name": "BenchmarkX", "iterations": 1, "ns_per_op": 123, ...}
        if (match(line, /"name": "[^"]+"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            sub(/-[0-9]+$/, "", name)   # strip any -GOMAXPROCS suffix
        } else continue
        rest = line
        while (match(rest, /"[A-Za-z_][A-Za-z0-9_]*": *[-0-9.eE+]+/)) {
            kv = substr(rest, RSTART, RLENGTH)
            rest = substr(rest, RSTART + RLENGTH)
            split(kv, parts, /": */)
            key = parts[1]; gsub(/"/, "", key)
            val = parts[2] + 0
            dest[name "." key] = val
            dest["has." name] = 1
        }
    }
    close(file)
}
BEGIN {
    parse(basefile, base)
    parse(curfile, cur)
    nt = split(tracked, T, /[ \t]+/)
    nm = split(metrics, M, /[ \t]+/)
    fails = 0; compared = 0
    printf "%-34s %-16s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta"
    for (i = 1; i <= nt; i++) {
        name = T[i]
        if (!(("has." name) in base)) {
            printf "%-34s %-16s %14s\n", name, "-", "not in baseline (skipped)"
            continue
        }
        if (!(("has." name) in cur)) {
            printf "%-34s %-16s %14s\n", name, "-", "MISSING FROM CURRENT RUN"
            fails++
            continue
        }
        for (j = 1; j <= nm; j++) {
            m = M[j]
            bkey = name "." m
            if (!(bkey in base) || !(bkey in cur)) continue
            b = base[bkey]; c = cur[bkey]
            bstd = ((bkey "_std") in base) ? base[bkey "_std"] : 0
            cstd = ((bkey "_std") in cur) ? cur[bkey "_std"] : 0
            compared++
            if (b == 0) { delta = (c == 0 ? 0 : 1e9) } else { delta = (c - b) / b * 100 }
            verdict = ""
            if (delta > threshold + 0) {
                if (c - b > bstd + cstd) {
                    verdict = "  REGRESSION"; fails++
                } else {
                    verdict = "  within noise (std " sprintf("%g", bstd + cstd) ")"
                }
            }
            printf "%-34s %-16s %14g %14g %+8.1f%%%s\n", name, m, b, c, delta, verdict
        }
    }
    if (compared == 0) {
        print "benchdiff: nothing compared — tracked benchmarks missing from both files" > "/dev/stderr"
        exit 2
    }
    if (fails > 0) {
        printf "benchdiff: FAIL — %d metric(s) regressed more than %s%%\n", fails, threshold > "/dev/stderr"
        exit 1
    }
    print "benchdiff: OK"
}'
