#!/usr/bin/env bash
# bench.sh — run the full benchmark suite on the quick world and record
# machine-readable results, seeding the repository's perf trajectory.
#
# Usage: scripts/bench.sh [output.json] [bench-regex]
#
#   output.json  destination file (default: BENCH_1.json in the repo root)
#   bench-regex  go test -bench pattern (default: . — everything)
#
# PATHRANK_BENCH_QUICK=1 selects the scaled-down experiment world so the
# macro benchmarks (full paper tables) finish in seconds; unset it in the
# environment-variable override below for paper-scale numbers.
#
# BENCHCOUNT=N repeats every benchmark N times (go test -count): each
# metric is then recorded as its mean across the repeats plus a
# "<metric>_std" sample standard deviation, so a single noisy iteration
# can no longer masquerade as a regression (or an improvement). Baselines
# recorded with BENCHCOUNT=1 simply carry no _std keys, which downstream
# tooling treats as std 0.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
PATTERN="${2:-.}"
QUICK="${PATHRANK_BENCH_QUICK:-1}"
# One iteration keeps the macro table benchmarks cheap; override with e.g.
# BENCHTIME=1s for stable micro-benchmark numbers.
BENCHTIME="${BENCHTIME:-1x}"
BENCHCOUNT="${BENCHCOUNT:-1}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

PATHRANK_BENCH_QUICK="$QUICK" go test -run '^$' -bench "$PATTERN" -benchmem \
    -benchtime="$BENCHTIME" -count="$BENCHCOUNT" ./... | tee "$RAW"

awk -v quick="$QUICK" '
function record(name, key, val,    ck) {
    ck = name SUBSEP key
    if (!(ck in cnt)) {
        keys[name, nkeys[name]++] = key
    }
    cnt[ck]++
    sum[ck] += val
    sumsq[ck] += val * val
}
/^Benchmark/ {
    name = $1
    if (!(name in runs)) {
        order[n++] = name
    }
    runs[name]++
    record(name, "iterations", $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        key = unit
        if (unit == "ns/op") key = "ns_per_op"
        else if (unit == "B/op") key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "MB/s") key = "mb_per_s"
        gsub(/[^A-Za-z0-9_]/, "_", key)
        record(name, key, $i)
    }
}
END {
    print "{"
    print "  \"quick\": " (quick != "" ? "true" : "false") ","
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) {
        name = order[i]
        line = "    {\"name\": \"" name "\", \"runs\": " runs[name]
        for (k = 0; k < nkeys[name]; k++) {
            key = keys[name, k]
            ck = name SUBSEP key
            mean = sum[ck] / cnt[ck]
            line = line ", \"" key "\": " sprintf("%.6g", mean)
            if (cnt[ck] > 1) {
                var = (sumsq[ck] - sum[ck] * sum[ck] / cnt[ck]) / (cnt[ck] - 1)
                if (var < 0) var = 0
                line = line ", \"" key "_std\": " sprintf("%.6g", sqrt(var))
            }
        }
        line = line "}"
        printf "%s%s\n", line, (i < n - 1 ? "," : "")
    }
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
