#!/usr/bin/env bash
# bench.sh — run the full benchmark suite on the quick world and record
# machine-readable results, seeding the repository's perf trajectory.
#
# Usage: scripts/bench.sh [output.json] [bench-regex]
#
#   output.json  destination file (default: BENCH_1.json in the repo root)
#   bench-regex  go test -bench pattern (default: . — everything)
#
# PATHRANK_BENCH_QUICK=1 selects the scaled-down experiment world so the
# macro benchmarks (full paper tables) finish in seconds; unset it in the
# environment-variable override below for paper-scale numbers.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
PATTERN="${2:-.}"
QUICK="${PATHRANK_BENCH_QUICK:-1}"
# One iteration keeps the macro table benchmarks cheap; override with e.g.
# BENCHTIME=1s for stable micro-benchmark numbers.
BENCHTIME="${BENCHTIME:-1x}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

PATHRANK_BENCH_QUICK="$QUICK" go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCHTIME" ./... | tee "$RAW"

awk -v quick="$QUICK" '
BEGIN {
    n = 0
}
/^Benchmark/ {
    name = $1
    iters = $2
    line = "    {\"name\": \"" name "\", \"iterations\": " iters
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i
        unit = $(i + 1)
        key = unit
        if (unit == "ns/op") key = "ns_per_op"
        else if (unit == "B/op") key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "MB/s") key = "mb_per_s"
        gsub(/[^A-Za-z0-9_]/, "_", key)
        line = line ", \"" key "\": " val
    }
    line = line "}"
    rows[n++] = line
}
END {
    print "{"
    print "  \"quick\": " (quick != "" ? "true" : "false") ","
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) {
        printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    }
    print "  ]"
    print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
