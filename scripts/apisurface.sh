#!/usr/bin/env bash
# apisurface.sh — the CI gate for the public facade: diff the full godoc
# of the module-root `pathrank` package against the committed golden
# surface file, so an accidental breaking change (removed symbol, changed
# signature, altered doc contract) fails CI instead of shipping.
#
# Usage:
#   scripts/apisurface.sh           check (exit 1 on drift)
#   scripts/apisurface.sh -update   regenerate API_SURFACE.txt after an
#                                   intentional API change
#
# Environment:
#   APISURFACE_UPDATE=1   same as -update
#
# The golden file is the exact `go doc -all .` output: declarations AND
# doc comments. Doc comments are deliberately part of the gate — for this
# facade they carry behavioral contracts (bit-identical rankings, error
# codes, cancellation semantics), and silently weakening one is as much a
# break as removing a symbol. Intentional changes are one -update away.
set -euo pipefail

cd "$(dirname "$0")/.."

GOLDEN="API_SURFACE.txt"
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

go doc -all . > "$CURRENT"

if [[ "${1:-}" == "-update" || "${APISURFACE_UPDATE:-}" == "1" ]]; then
    cp "$CURRENT" "$GOLDEN"
    echo "apisurface: updated $GOLDEN ($(wc -l < "$GOLDEN") lines)"
    exit 0
fi

if [[ ! -f "$GOLDEN" ]]; then
    echo "apisurface: missing $GOLDEN — run scripts/apisurface.sh -update and commit it" >&2
    exit 2
fi

if ! diff -u "$GOLDEN" "$CURRENT"; then
    cat >&2 <<'EOF'
apisurface: FAIL — the public pathrank API surface drifted from the
committed golden file. If the change is intentional, regenerate it with

    scripts/apisurface.sh -update

and commit API_SURFACE.txt together with the API change.
EOF
    exit 1
fi
echo "apisurface: OK"
