// Package pathrank is a Go implementation of "Learning to Rank Paths in
// Spatial Networks" (Sean Bin Yang and Bin Yang, ICDE 2020): a data-driven
// framework that learns from vehicle trajectories to rank candidate paths
// between an origin and a destination the way local drivers would.
//
// The module root re-exports the user-facing workflow; implementation lives
// under internal/:
//
//	g, _   := pathrank.GenerateNetwork(pathrank.DefaultNetworkConfig())
//	pop    := pathrank.NewPopulation(pathrank.PopulationConfig{NumDrivers: 60, Seed: 1})
//	trips, _ := pathrank.GenerateTrips(g, pop, pathrank.TripConfig{TripsPerDriver: 6, MinHops: 5, Seed: 2})
//	pipe, _  := pathrank.BuildPipeline(g, trips, pathrank.DefaultPipelineConfig(64))
//	ranker   := pathrank.NewRanker(g, pipe.Model)
//	ranked, _ := ranker.Query(src, dst)
//
// Interactive queries go through the Query API v2: a first-class
// RankRequest with per-request overrides of the candidate regime and full
// context support (cancellation stops an in-flight enumeration), either in
// process or over HTTP through the Client SDK:
//
//	resp, _ := ranker.Rank(ctx, pathrank.RankRequest{Src: src, Dst: dst, K: 8})
//
//	c := &pathrank.Client{BaseURL: "http://localhost:8080"}
//	res, _ := c.Rank(ctx, pathrank.RankQuery{Src: 12, Dst: 431, Strategy: "dtkdi"})
//
// A trained pipeline can be persisted as a single versioned artifact bundle
// and served over HTTP:
//
//	art := &pathrank.Artifact{Graph: g, Embeddings: pipe.Embeddings, Model: pipe.Model}
//	_ = pathrank.SaveArtifactFile("model.prart", art)   // training side
//	art, _ = pathrank.LoadArtifactFile("model.prart")   // serving side (pathrank-serve)
//
// See README.md ("Architecture") for the full system inventory, README.md
// ("Running the evaluation") for the reproduction of the paper's tables,
// README.md ("Serving") for the online ranking service and the artifact
// format, and README.md ("Query API v2") for the request/response schema,
// typed error codes, and client examples.
package pathrank

import (
	"fmt"
	"io"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/merkle"
	"pathrank/internal/metrics"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// Road-network substrate.
type (
	// Graph is a spatial road network.
	Graph = roadnet.Graph
	// NetworkConfig parameterizes synthetic network generation.
	NetworkConfig = roadnet.GenConfig
	// VertexID identifies a network vertex.
	VertexID = roadnet.VertexID
	// EdgeID identifies a network edge.
	EdgeID = roadnet.EdgeID
)

// GenerateNetwork builds a synthetic road network.
func GenerateNetwork(cfg NetworkConfig) (*Graph, error) { return roadnet.Generate(cfg) }

// DefaultNetworkConfig returns a medium regional network configuration.
func DefaultNetworkConfig() NetworkConfig { return roadnet.DefaultGenConfig() }

// LoadNetwork reads a network written with (*Graph).SaveFile.
func LoadNetwork(path string) (*Graph, error) { return roadnet.LoadFile(path) }

// Shortest-path engine.
type (
	// Path is a connected edge sequence through a Graph.
	Path = spath.Path
	// Weight maps an edge to a traversal cost.
	Weight = spath.Weight
)

// Edge weight functions.
var (
	// ByLength weights edges by length in meters.
	ByLength = spath.ByLength
	// ByTime weights edges by free-flow travel time in seconds.
	ByTime = spath.ByTime
)

// Prepared shortest-path engines (ALT landmarks, contraction hierarchies).
type (
	// Engine is an exact shortest-path backend over one (graph, weight)
	// pair; see NewRoutingEngine.
	Engine = spath.Engine
	// EngineKind selects an Engine backend.
	EngineKind = spath.EngineKind
)

// Engine backends: plain Dijkstra, A* with landmarks, contraction
// hierarchies. All exact; they trade preprocessing for query speed.
const (
	EngineDijkstra = spath.EngineDijkstra
	EngineALT      = spath.EngineALT
	EngineCH       = spath.EngineCH
)

// NewRoutingEngine preprocesses g under w into an engine of the given
// kind. Engines are immutable and safe for concurrent queries.
func NewRoutingEngine(kind EngineKind, g *Graph, w Weight) Engine {
	return spath.NewEngine(kind, g, w, spath.EngineConfig{})
}

// ShortestPath returns a minimum-cost path (Dijkstra).
func ShortestPath(g *Graph, src, dst VertexID, w Weight) (Path, error) {
	return spath.Dijkstra(g, src, dst, w)
}

// TopKPaths returns up to k loopless shortest paths (Yen), the paper's TkDI
// candidate generator.
func TopKPaths(g *Graph, src, dst VertexID, k int, w Weight) ([]Path, error) {
	return spath.TopK(g, src, dst, k, w)
}

// DiversifiedTopKPaths returns up to k mutually dissimilar shortest paths,
// the paper's D-TkDI candidate generator, using weighted Jaccard as the
// similarity measure.
func DiversifiedTopKPaths(g *Graph, src, dst VertexID, k int, threshold float64) ([]Path, error) {
	return spath.DiversifiedTopK(g, src, dst, k, spath.ByLength,
		pathsim.WeightedJaccardSim(g), threshold, 10*k)
}

// WeightedJaccard is the paper's ground-truth ranking score: length-weighted
// edge-set overlap of two paths in [0,1].
func WeightedJaccard(g *Graph, a, b Path) float64 { return pathsim.WeightedJaccard(g, a, b) }

// Trajectory substrate.
type (
	// Driver is a simulated driver with latent route preferences.
	Driver = traj.Driver
	// PopulationConfig parameterizes driver sampling.
	PopulationConfig = traj.PopulationConfig
	// Trip is one driven journey.
	Trip = traj.Trip
	// TripConfig parameterizes trip simulation.
	TripConfig = traj.TripConfig
	// GPSRecord is one raw positioning sample.
	GPSRecord = traj.GPSRecord
	// GPSConfig parameterizes GPS sampling.
	GPSConfig = traj.GPSConfig
	// Matcher recovers network paths from GPS streams (HMM + Viterbi).
	Matcher = traj.Matcher
	// MatchConfig parameterizes the map matcher.
	MatchConfig = traj.MatchConfig
)

// NewPopulation samples a driver population with shared local conventions.
func NewPopulation(cfg PopulationConfig) []*Driver { return traj.NewPopulation(cfg) }

// GenerateTrips simulates preference-optimal trips for every driver.
func GenerateTrips(g *Graph, drivers []*Driver, cfg TripConfig) ([]Trip, error) {
	return traj.GenerateTrips(g, drivers, cfg)
}

// SampleGPS emits noisy GPS records along a driven path.
func SampleGPS(g *Graph, p Path, cfg GPSConfig) []GPSRecord { return traj.SampleGPS(g, p, cfg) }

// NewMatcher builds an HMM map matcher over g.
func NewMatcher(g *Graph, cfg MatchConfig) *Matcher { return traj.NewMatcher(g, cfg) }

// Training data.
type (
	// DataConfig selects and sizes the candidate-generation strategy.
	DataConfig = dataset.Config
	// Query is one trajectory's labeled candidate set.
	Query = dataset.Query
	// Instance is one labeled candidate path.
	Instance = dataset.Instance
	// Strategy selects TkDI or D-TkDI candidate generation.
	Strategy = dataset.Strategy
)

// Candidate-generation strategies.
const (
	// TkDI is plain top-k shortest paths.
	TkDI = dataset.TkDI
	// DTkDI is diversified top-k shortest paths.
	DTkDI = dataset.DTkDI
)

// GenerateDataset labels candidate sets for every trip.
func GenerateDataset(g *Graph, trips []Trip, cfg DataConfig) ([]Query, error) {
	return dataset.Generate(g, trips, cfg)
}

// SplitDataset partitions queries into train and test sets.
func SplitDataset(queries []Query, testFrac float64, seed int64) (train, test []Query) {
	return dataset.Split(queries, testFrac, seed)
}

// Model and training.
type (
	// Model is the PathRank scorer (embedding + GRU + regression head).
	// Score evaluates one path; ScoreBatch scores a candidate set through
	// the batched (fused) kernels — bit-identical to per-path scoring but
	// several times faster — with ScoreBatchPerPath as the pinnable
	// reference implementation (PATHRANK_FUSED_SCORING=0).
	Model = pathrank.Model
	// ModelConfig parameterizes a Model.
	ModelConfig = pathrank.Config
	// TrainConfig parameterizes the training loop.
	TrainConfig = pathrank.TrainConfig
	// Variant selects frozen (PR-A1) or fine-tuned (PR-A2) embeddings.
	Variant = pathrank.Variant
	// Body selects the sequence model (GRU is the paper's).
	Body = pathrank.Body
	// Ranked pairs a path with its model score.
	Ranked = pathrank.Ranked
	// Ranker answers origin-destination ranking queries.
	Ranker = pathrank.Ranker
	// Pipeline bundles the artifacts of an end-to-end build.
	Pipeline = pathrank.Pipeline
	// PipelineConfig configures an end-to-end build.
	PipelineConfig = pathrank.PipelineConfig
	// Report aggregates MAE, MARE, Kendall tau and Spearman rho.
	Report = metrics.Report
	// Embeddings holds node2vec vertex vectors.
	Embeddings = node2vec.Embeddings
)

// Model variants and bodies.
const (
	// PRA1 freezes node2vec embeddings.
	PRA1 = pathrank.PRA1
	// PRA2 fine-tunes embeddings end to end.
	PRA2 = pathrank.PRA2
	// GRUBody is the paper's recurrent body.
	GRUBody = pathrank.GRUBody
	// BiGRUBody is a bidirectional variant.
	BiGRUBody = pathrank.BiGRUBody
	// LSTMBody is an ablation body.
	LSTMBody = pathrank.LSTMBody
	// MeanPoolBody is a non-recurrent ablation body.
	MeanPoolBody = pathrank.MeanPoolBody
)

// NewModel builds an untrained PathRank model.
func NewModel(numVertices int, cfg ModelConfig) (*Model, error) {
	return pathrank.New(numVertices, cfg)
}

// BuildPipeline runs the full construction: node2vec, candidate generation,
// labeling, split, and training.
func BuildPipeline(g *Graph, trips []Trip, cfg PipelineConfig) (*Pipeline, error) {
	return pathrank.BuildPipeline(g, trips, cfg)
}

// DefaultPipelineConfig returns a complete configuration with embedding
// size m.
func DefaultPipelineConfig(m int) PipelineConfig { return pathrank.DefaultPipelineConfig(m) }

// NewRanker wraps a trained model for query-time use.
func NewRanker(g *Graph, m *Model) *Ranker { return pathrank.NewRanker(g, m) }

// Query API v2: a first-class, context-aware request object.
//
// Ranker.Rank(ctx, RankRequest) is the core query entry point: every field
// of the request except Src and Dst is optional, zero values select the
// ranker's configured defaults, and a RankRequest{Src: s, Dst: d} ranking
// is bit-identical to Ranker.Query(s, d). Canceling ctx stops an in-flight
// candidate enumeration. The same request shape travels over HTTP as
// POST /v2/rank (see Client).
type (
	// RankRequest is one origin-destination ranking query with optional
	// per-request overrides (k, strategy, diversity threshold, weight
	// metric, engine, explain).
	RankRequest = pathrank.RankRequest
	// RankResponse pairs the ranked paths with generation statistics.
	RankResponse = pathrank.RankResponse
	// RankStats describes how a ranking was produced.
	RankStats = pathrank.RankStats
	// RankError is a typed ranking failure; its Code is one of the Code*
	// constants and maps onto an HTTP status in the serving layer.
	RankError = pathrank.RankError
	// StrategyChoice optionally overrides the candidate strategy.
	StrategyChoice = pathrank.StrategyChoice
	// WeightKind optionally overrides the edge metric.
	WeightKind = pathrank.WeightKind
	// EngineChoice optionally overrides the shortest-path backend.
	EngineChoice = pathrank.EngineChoice
)

// Per-request override values; the *Auto zero values keep the ranker's
// configured defaults.
const (
	StrategyAuto  = pathrank.StrategyAuto
	StrategyTkDI  = pathrank.StrategyTkDI
	StrategyDTkDI = pathrank.StrategyDTkDI

	WeightAuto   = pathrank.WeightAuto
	WeightLength = pathrank.WeightLength
	WeightTime   = pathrank.WeightTime

	EngineAuto     = pathrank.EngineAuto
	EngineNone     = pathrank.EngineNone
	EngineChoiceCH = pathrank.EngineCH
	// EngineChoiceALT requires the ranker's prepared ALT engine.
	EngineChoiceALT = pathrank.EngineALT
)

// Typed error codes of the query API; ErrorCodeOf classifies any error
// returned by Rank or Client into one of them.
const (
	CodeInvalid    = api.CodeInvalid
	CodeUnroutable = api.CodeUnroutable
	CodeDeadline   = api.CodeDeadline
	CodeCanceled   = api.CodeCanceled
	CodeBacklog    = api.CodeBacklog
	CodeInternal   = api.CodeInternal
)

// ErrorCodeOf classifies err into one of the Code* constants.
func ErrorCodeOf(err error) string { return pathrank.ErrorCodeOf(err) }

// ParseStrategyChoice parses "tkdi" or "dtkdi" ("", "auto" = default).
func ParseStrategyChoice(s string) (StrategyChoice, error) { return pathrank.ParseStrategyChoice(s) }

// ParseWeightKind parses "length" or "time" ("", "auto" = default).
func ParseWeightKind(s string) (WeightKind, error) { return pathrank.ParseWeightKind(s) }

// ParseEngineChoice parses "dijkstra", "alt" or "ch" ("", "auto" = default).
func ParseEngineChoice(s string) (EngineChoice, error) { return pathrank.ParseEngineChoice(s) }

// Artifact persistence: a complete trained pipeline (network, embeddings,
// model) as one versioned, checksummed bundle.
type (
	// Artifact bundles a trained pipeline for persistence and serving.
	Artifact = pathrank.Artifact
)

// Artifact error sentinels, matchable with errors.Is.
var (
	// ErrArtifactFormat reports a file that is not a pathrank artifact.
	ErrArtifactFormat = pathrank.ErrArtifactFormat
	// ErrArtifactVersion reports an artifact written by an incompatible
	// format version.
	ErrArtifactVersion = pathrank.ErrArtifactVersion
	// ErrArtifactCorrupt reports a checksum mismatch or truncated payload.
	ErrArtifactCorrupt = pathrank.ErrArtifactCorrupt
)

// SaveArtifact writes a versioned, checksummed bundle of the artifact to w.
func SaveArtifact(w io.Writer, a *Artifact) error { return pathrank.SaveArtifact(w, a) }

// LoadArtifact reads a bundle written by SaveArtifact, verifying version
// and checksum; the reloaded model ranks bit-identically to the saved one.
func LoadArtifact(r io.Reader) (*Artifact, error) { return pathrank.LoadArtifact(r) }

// SaveArtifactFile writes the artifact to the named file.
func SaveArtifactFile(path string, a *Artifact) error { return pathrank.SaveArtifactFile(path, a) }

// LoadArtifactFile reads an artifact from the named file.
func LoadArtifactFile(path string) (*Artifact, error) { return pathrank.LoadArtifactFile(path) }

// Data provenance: the live pipeline (pathrank-serve -wal-dir) commits
// every training batch into an RFC 6962 Merkle tree and chains the batch
// roots across generations; the serving artifact's lineage carries both
// commitments and the server hands out per-trajectory inclusion proofs.
type (
	// ProvenanceInfo describes the serving generation's data commitments
	// and, when a WAL is configured, the health of the trajectory log.
	ProvenanceInfo = api.ProvenanceInfo
	// InclusionProof proves that one ingested trajectory is part of the
	// training batch committed by a generation's DataRoot.
	InclusionProof = api.InclusionProof
	// WALStatus reports trajectory write-ahead-log health.
	WALStatus = api.WALStatus
)

// VerifyInclusionProof checks p offline: it parses the hex-encoded leaf
// hash, audit path, and data root, and verifies that the leaf at p.Index
// rolls up to p.DataRoot in a batch of p.BatchSize leaves. A nil return
// means the trajectory is provably part of the committed training batch;
// the caller is responsible for trusting p.DataRoot (e.g. matching it
// against the lineage reported by /healthz or GET /v1/provenance).
func VerifyInclusionProof(p InclusionProof) error {
	leaf, err := merkle.ParseHash(p.LeafHash)
	if err != nil {
		return fmt.Errorf("pathrank: inclusion proof leaf hash: %w", err)
	}
	root, err := merkle.ParseHash(p.DataRoot)
	if err != nil {
		return fmt.Errorf("pathrank: inclusion proof data root: %w", err)
	}
	path := make([]merkle.Hash, len(p.Path))
	for i, s := range p.Path {
		if path[i], err = merkle.ParseHash(s); err != nil {
			return fmt.Errorf("pathrank: inclusion proof path[%d]: %w", i, err)
		}
	}
	proof := merkle.Proof{Index: p.Index, Leaves: p.BatchSize, Path: path}
	if !proof.Verify(leaf, root) {
		return fmt.Errorf("pathrank: inclusion proof for trajectory %d does not verify against data root %.12s", p.Seq, p.DataRoot)
	}
	return nil
}

// EmbedNetwork trains node2vec embeddings for g.
func EmbedNetwork(g *Graph, wc node2vec.WalkConfig, tc node2vec.TrainConfig) *Embeddings {
	return node2vec.Embed(g, wc, tc)
}
