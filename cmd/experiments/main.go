// Command experiments regenerates the paper's tables and figure-style
// sweeps on the synthetic substrate and prints them as aligned text tables.
//
// Usage:
//
//	experiments [-quick] [table1|table2|sweep-k|sweep-diversity|sweep-m|
//	             sweep-trainsize|baselines|ablation-body|ablation-multitask|all]
//
// With no arguments it runs "all". -quick shrinks the world for smoke runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pathrank/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	quick := flag.Bool("quick", false, "use the small smoke-test world")
	flag.Parse()

	cfg := experiments.DefaultWorldConfig()
	ms := []int{64, 128}
	sweepMs := []int{16, 32, 64, 128}
	mRef := 64
	if *quick {
		cfg = experiments.QuickWorldConfig()
		ms = []int{8, 16}
		sweepMs = []int{8, 16}
		mRef = 8
	}

	start := time.Now()
	w, err := experiments.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d vertices, %d edges, %d trips (built in %v)\n\n",
		w.G.NumVertices(), w.G.NumEdges(), len(w.Trips), time.Since(start).Round(time.Millisecond))

	type experiment struct {
		name string
		run  func() ([]experiments.Row, error)
	}
	all := []experiment{
		{"table1", func() ([]experiments.Row, error) { return experiments.Table1(w, ms) }},
		{"table2", func() ([]experiments.Row, error) { return experiments.Table2(w, ms) }},
		{"sweep-k", func() ([]experiments.Row, error) { return experiments.SweepK(w, nil, mRef) }},
		{"sweep-diversity", func() ([]experiments.Row, error) { return experiments.SweepDiversity(w, nil, mRef) }},
		{"sweep-m", func() ([]experiments.Row, error) { return experiments.SweepM(w, sweepMs) }},
		{"sweep-trainsize", func() ([]experiments.Row, error) { return experiments.SweepTrainSize(w, nil, mRef) }},
		{"baselines", func() ([]experiments.Row, error) { return experiments.Baselines(w, mRef) }},
		{"ablation-body", func() ([]experiments.Row, error) { return experiments.AblationBody(w, mRef) }},
		{"ablation-multitask", func() ([]experiments.Row, error) { return experiments.AblationMultiTask(w, nil, mRef) }},
	}

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range all {
			want = append(want, e.name)
		}
	}
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		t0 := time.Now()
		rows, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("== %s (%v) ==\n", e.name, time.Since(t0).Round(time.Second))
		for _, r := range rows {
			fmt.Println("  " + r.String())
		}
		fmt.Println()
	}
}
