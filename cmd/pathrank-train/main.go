// Command pathrank-train runs the full PathRank training pipeline on a
// generated network and trip log: node2vec embedding, candidate generation
// (TkDI or D-TkDI), training, evaluation on a held-out split, and model
// export.
//
// Usage:
//
//	pathrank-train -net net.gob -trips trips.gob -m 64 -strategy d-tkdi -out model.gob
//
// With -replay it instead re-executes the retrains recorded in a
// trajectory write-ahead log (written by pathrank-serve -wal-dir) against
// a base artifact, verifying that every reconstructed generation matches
// the model fingerprint and Merkle roots the live run committed — exiting
// non-zero on any divergence:
//
//	pathrank-train -replay wal/ -base base.prart -artifact rebuilt.prart
//
// With -partition P it partitions an artifact's road network into P
// shards and writes a complete sharded serving bundle — per-shard
// mappable artifacts, the router's shard map with precomputed boundary
// distance tables, and a JSON manifest (see docs/SHARDING.md). Either
// standalone from an existing artifact, or straight after training:
//
//	pathrank-train -partition 4 -base model.prart -partition-out bundle/
//	pathrank-train -net net.gob -trips trips.gob -artifact model.prart -partition 4
package main

import (
	"bufio"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pathrank/internal/dataset"
	"pathrank/internal/node2vec"
	"pathrank/internal/partition"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/stream"
	"pathrank/internal/traj"
)

// TripsFile mirrors the netgen output format.
type TripsFile struct {
	Trips []traj.Trip
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-train: ")

	netPath := flag.String("net", "net.gob", "road network file from netgen")
	tripsPath := flag.String("trips", "trips.gob", "trip log file from netgen")
	m := flag.Int("m", 64, "embedding dimensionality M")
	hidden := flag.Int("hidden", 32, "GRU hidden size")
	strategy := flag.String("strategy", "d-tkdi", "candidate strategy: tkdi or d-tkdi")
	k := flag.Int("k", 5, "candidate-set size")
	threshold := flag.Float64("threshold", 0.8, "D-TkDI similarity threshold")
	variant := flag.String("variant", "a2", "embedding variant: a1 (frozen) or a2 (fine-tuned)")
	lambda := flag.Float64("lambda", 0, "multi-task auxiliary loss weight (0 = off)")
	epochs := flag.Int("epochs", 10, "training epochs")
	lr := flag.Float64("lr", 0.003, "Adam learning rate")
	testFrac := flag.Float64("test-frac", 0.25, "held-out query fraction")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "model.gob", "output path for the trained model")
	artifactOut := flag.String("artifact", "", "also write a complete serving artifact (network + embeddings + model) to this path")
	resume := flag.String("resume", "", "warm-start from this artifact bundle instead of training from scratch (incremental fine-tune; ignores -net/-m/-hidden/-variant)")
	prep := flag.Bool("prep", true, "embed precomputed speedup structures (contraction hierarchy + ALT landmarks) in the artifact so pathrank-serve cold-starts without preprocessing")
	prepLandmarks := flag.Int("prep-landmarks", 0, "ALT landmark count for -prep (0 = default)")
	replay := flag.String("replay", "", "replay the trajectory WAL in this directory instead of training (requires -base)")
	replayBase := flag.String("base", "", "base artifact for -replay (the WAL's first generation's parent) or for standalone -partition")
	replayGen := flag.Int("replay-gen", 0, "stop the replay after this generation (0 = replay the whole log)")
	partitionP := flag.Int("partition", 0, "partition the artifact into this many shards and write a sharded serving bundle (0 = off)")
	partitionOut := flag.String("partition-out", "bundle", "output directory for the -partition bundle")
	flag.Parse()

	if *replay != "" {
		if err := replayWAL(*replay, *replayBase, *replayGen, *artifactOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Standalone partitioning: shard an already-trained artifact without
	// re-running the pipeline.
	if *partitionP > 0 && *replayBase != "" {
		art, err := pathrank.LoadArtifactFile(*replayBase)
		if err != nil {
			log.Fatal(err)
		}
		if err := partitionBundle(art, *partitionOut, *partitionP); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *resume != "" {
		// -epochs/-lr default to the offline schedule, which is too hot for
		// a warm start. Unless the user set them explicitly, pass zero so
		// FineTune applies DefaultFineTuneConfig — the same settings the
		// streaming retrainer uses, keeping -resume its offline twin.
		ftEpochs, ftLR := 0, 0.0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "epochs":
				ftEpochs = *epochs
			case "lr":
				ftLR = *lr
			}
		})
		if err := resumeTrain(*resume, *tripsPath, ftEpochs, ftLR, *seed, *out, *artifactOut, *prep, *prepLandmarks); err != nil {
			log.Fatal(err)
		}
		return
	}

	g, err := roadnet.LoadFile(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	trips, err := loadTrips(*tripsPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d vertices, %d edges, %d trips\n", g.NumVertices(), g.NumEdges(), len(trips))

	dcfg := dataset.Config{K: *k, Threshold: *threshold, IncludeTruth: true}
	switch strings.ToLower(*strategy) {
	case "tkdi":
		dcfg.Strategy = dataset.TkDI
	case "d-tkdi", "dtkdi":
		dcfg.Strategy = dataset.DTkDI
	default:
		log.Fatalf("unknown strategy %q (want tkdi or d-tkdi)", *strategy)
	}
	mcfg := pathrank.Config{
		EmbeddingDim: *m, Hidden: *hidden, Body: pathrank.GRUBody,
		MultiTaskLambda: *lambda, Seed: *seed,
	}
	switch strings.ToLower(*variant) {
	case "a1":
		mcfg.Variant = pathrank.PRA1
	case "a2":
		mcfg.Variant = pathrank.PRA2
	default:
		log.Fatalf("unknown variant %q (want a1 or a2)", *variant)
	}

	wc := node2vec.DefaultWalkConfig()
	wc.Seed = *seed + 1
	sc := node2vec.DefaultTrainConfig(*m)
	sc.Seed = *seed + 2

	start := time.Now()
	pipe, err := pathrank.BuildPipeline(g, trips, pathrank.PipelineConfig{
		Walk: wc, SGNS: sc, Data: dcfg, Model: mcfg,
		Train: pathrank.TrainConfig{
			Epochs: *epochs, LR: *lr, ClipNorm: 5, Seed: *seed + 3,
			Logf: func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
		},
		TestFrac: *testFrac, SplitSeed: *seed + 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s %s M=%d in %v (%d params)\n",
		dcfg.Strategy, mcfg.Variant, *m, time.Since(start).Round(time.Second), pipe.Model.NumParams())
	fmt.Println("train:", pipe.Model.Evaluate(pipe.Train))
	fmt.Println("test: ", pipe.Model.Evaluate(pipe.Test))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := pipe.Model.Save(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model -> %s\n", *out)

	if *artifactOut != "" || *partitionP > 0 {
		art := &pathrank.Artifact{
			Graph:      g,
			Embeddings: pipe.Embeddings,
			Model:      pipe.Model,
			Candidates: dcfg,
			Lineage:    pathrank.Lineage{TrainedOn: len(pipe.Train), TotalObserved: len(pipe.Train), Note: "offline"},
		}
		if *prep {
			art.Prep = buildPrep(g, *prepLandmarks)
		}
		if *artifactOut != "" {
			if err := pathrank.SaveArtifactFile(*artifactOut, art); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("artifact -> %s (serve with: pathrank-serve -artifact %s)\n", *artifactOut, *artifactOut)
		}
		if *partitionP > 0 {
			if err := partitionBundle(art, *partitionOut, *partitionP); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// partitionBundle implements -partition: shard the artifact's network and
// write the complete serving bundle.
func partitionBundle(art *pathrank.Artifact, dir string, parts int) error {
	start := time.Now()
	man, err := partition.BuildBundle(art, dir, parts, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("bundle -> %s in %v: %d shards, %d boundary vertices, %d cut edges, imbalance %.3f\n",
		dir, time.Since(start).Round(time.Millisecond),
		man.Parts, man.BoundaryVertices, man.CutEdges, man.Imbalance)
	fmt.Printf("serve with: pathrank-serve -bundle %s -shard <i>  +  pathrank-serve -bundle %s -router -shards <urls>\n", dir, dir)
	return nil
}

// replayWAL implements -replay: deterministically reconstruct the model
// generations recorded in a trajectory WAL and verify them against the
// fingerprints and Merkle roots the live run committed.
func replayWAL(walDir, basePath string, targetGen int, artifactOut string) error {
	if basePath == "" {
		return fmt.Errorf("-replay requires -base <artifact> (the artifact the log's first generation was trained from)")
	}
	base, err := pathrank.LoadArtifactFile(basePath)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s from gen %d artifact %s\n", walDir, base.Lineage.Generation, basePath)
	start := time.Now()
	res, err := stream.Replay(walDir, base, targetGen, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fp, err := res.Artifact.Model.FingerprintHex()
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d generations (%d observations, %d markers skipped) in %v\n",
		res.Generations, res.Observations, res.SkippedMarkers, time.Since(start).Round(time.Millisecond))
	fmt.Printf("final: gen %d fingerprint %s\n", res.Artifact.Lineage.Generation, fp)

	if artifactOut != "" {
		if err := pathrank.SaveArtifactFileAtomic(artifactOut, res.Artifact); err != nil {
			return err
		}
		fmt.Printf("artifact -> %s\n", artifactOut)
	}
	if !res.Verified {
		for _, m := range res.Mismatches {
			fmt.Printf("MISMATCH: %s\n", m)
		}
		return fmt.Errorf("replay diverged from the live run in %d place(s): the WAL does not reproduce the committed generations", len(res.Mismatches))
	}
	fmt.Println("verified: every replayed generation matches its recorded fingerprint and Merkle roots bit-for-bit")
	return nil
}

// buildPrep preprocesses the road network into the speedup structures the
// serving and map-matching hot paths query (CH + ALT landmark tables).
func buildPrep(g *roadnet.Graph, landmarks int) *spath.Prep {
	start := time.Now()
	p := spath.BuildPrep(g, spath.PrepConfig{Landmarks: landmarks})
	fmt.Printf("prep: %d shortcuts, %d landmarks in %v\n",
		p.CH.NumShortcuts(), p.ALT.NumLandmarks(), time.Since(start).Round(time.Millisecond))
	return p
}

// resumeTrain implements -resume: load an artifact, fine-tune its model on
// a new trip log (warm start), bump the lineage, and write the results —
// the offline twin of the streaming retrainer.
func resumeTrain(artPath, tripsPath string, epochs int, lr float64, seed int64, out, artifactOut string, prep bool, prepLandmarks int) error {
	art, err := pathrank.LoadArtifactFile(artPath)
	if err != nil {
		return err
	}
	trips, err := loadTrips(tripsPath)
	if err != nil {
		return err
	}
	fmt.Printf("resuming gen %d artifact: %d vertices, %d params, %d new trips\n",
		art.Lineage.Generation, art.Graph.NumVertices(), art.Model.NumParams(), len(trips))

	dcfg := art.Candidates
	if dcfg.K <= 0 {
		dcfg = dataset.DefaultConfig()
	}
	queries, err := dataset.Generate(art.Graph, trips, dcfg)
	if err != nil {
		return err
	}
	parent, err := art.Model.FingerprintHex()
	if err != nil {
		return err
	}
	model, err := art.Model.Clone()
	if err != nil {
		return err
	}
	start := time.Now()
	// Zero Epochs/LR fall back to DefaultFineTuneConfig inside FineTune.
	tcfg := pathrank.TrainConfig{
		Epochs: epochs, LR: lr, ClipNorm: 5, Seed: seed + int64(art.Lineage.Generation) + 1,
		Logf: func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
	}
	if _, err := model.FineTune(queries, tcfg); err != nil {
		return err
	}
	fmt.Printf("fine-tuned on %d queries in %v\n", len(queries), time.Since(start).Round(time.Second))
	fmt.Println("window:", model.Evaluate(queries))

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := model.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model -> %s\n", out)

	if artifactOut != "" {
		next := &pathrank.Artifact{
			Graph:      art.Graph,
			Embeddings: art.Embeddings,
			Model:      model,
			Candidates: art.Candidates,
			// The road network is unchanged by a fine-tune, so the parent's
			// speedup structures carry forward as-is.
			Prep:    art.Prep,
			Lineage: art.Lineage.Child(parent, len(queries), "resume"),
		}
		if next.Prep == nil && prep {
			next.Prep = buildPrep(art.Graph, prepLandmarks)
		}
		if err := pathrank.SaveArtifactFileAtomic(artifactOut, next); err != nil {
			return err
		}
		fmt.Printf("artifact -> %s (gen %d, parent %.12s)\n", artifactOut, next.Lineage.Generation, parent)
	}
	return nil
}

func loadTrips(path string) ([]traj.Trip, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tf TripsFile
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&tf); err != nil {
		return nil, fmt.Errorf("decode trips: %w", err)
	}
	return tf.Trips, nil
}
