package main

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// mockRank answers /v2/rank and /v1/rank instantly with a minimal valid
// body, counting requests.
func mockRank(hits *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	rank := func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		var req struct {
			Src     int64 `json:"src"`
			Dst     int64 `json:"dst"`
			Queries []any `json:"queries"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		if len(req.Queries) > 0 {
			items := make([]map[string]any, len(req.Queries))
			for i := range items {
				items[i] = map[string]any{"index": i, "response": map[string]any{"paths": []any{}}}
			}
			_ = json.NewEncoder(w).Encode(map[string]any{"results": items})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"src": req.Src, "dst": req.Dst, "paths": []any{}})
	}
	mux.HandleFunc("POST /v2/rank", rank)
	mux.HandleFunc("POST /v1/rank", rank)
	return mux
}

// TestPoissonSchedulerHitsTargetRate drives the generator against an
// instant mock server: the achieved rate must land within tolerance of
// the target, and the arrival count must match what a Poisson process at
// that rate would produce.
func TestPoissonSchedulerHitsTargetRate(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(mockRank(&hits))
	defer ts.Close()

	const rate, durS = 400.0, 2.0
	rep, err := runLoad(context.Background(), genConfig{
		BaseURL:  ts.URL,
		Rate:     rate,
		Duration: time.Duration(durS * float64(time.Second)),
		Seed:     7,
		Vertices: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rate * durS
	// Poisson noise at n=800 is ~28 (sqrt n); 20% tolerance also absorbs
	// scheduler jitter on a loaded test machine.
	if math.Abs(float64(rep.Requests)-want) > 0.20*want {
		t.Fatalf("requests = %d, want %.0f +/- 20%%", rep.Requests, want)
	}
	if math.Abs(rep.AchievedRPS-rate) > 0.20*rate {
		t.Fatalf("achieved rate = %.1f, want %.0f +/- 20%%", rep.AchievedRPS, rate)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d arrivals against an instant server", rep.Dropped)
	}
	if got := hits.Load(); got != rep.Requests {
		t.Fatalf("server saw %d requests, report says %d", got, rep.Requests)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Fatalf("implausible latency report: %+v", rep.Latency)
	}
}

// TestMixAndDeterminism checks the v1/batch shares and that a seed
// replays the identical request sequence.
func TestMixAndDeterminism(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(mockRank(&hits))
	defer ts.Close()

	run := func() *report {
		rep, err := runLoad(context.Background(), genConfig{
			BaseURL:    ts.URL,
			Rate:       300,
			Duration:   time.Second,
			Seed:       42,
			Vertices:   50,
			V1Ratio:    0.3,
			BatchRatio: 0.5,
			BatchSize:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Requests != b.Requests || a.Queries != b.Queries {
		t.Fatalf("same seed diverged: %d/%d requests, %d/%d queries",
			a.Requests, b.Requests, a.Queries, b.Queries)
	}
	// ~70% of requests are v2, half of those are 4-query batches, so
	// queries/requests should be around 0.3 + 0.35 + 0.35*4 = 2.05.
	ratio := float64(a.Queries) / float64(a.Requests)
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("queries/request = %.2f, want ~2.05 for this mix", ratio)
	}
}

// TestHistogramQuantiles checks the HDR histogram's bounded relative
// error on a known distribution.
func TestHistogramQuantiles(t *testing.T) {
	h := newHdrHist()
	// 1..1000 microseconds, uniform: p50 = 500us, p99 = 990us.
	for us := 1; us <= 1000; us++ {
		h.observe(time.Duration(us) * time.Microsecond)
	}
	check := func(q, wantUs float64) {
		t.Helper()
		got := h.quantile(q) / 1e3 // ns -> us
		if math.Abs(got-wantUs) > 0.05*wantUs {
			t.Fatalf("q%.3f = %.1fus, want %.0fus +/- 5%%", q, got, wantUs)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.99, 990)
	if h.quantile(1) < h.quantile(0.999) {
		t.Fatal("quantiles not monotone")
	}
	if mean := h.mean() / 1e3; math.Abs(mean-500.5) > 1 {
		t.Fatalf("mean = %.1fus, want 500.5us", mean)
	}
}

// TestRejectsBadConfig covers the argument guards.
func TestRejectsBadConfig(t *testing.T) {
	if _, err := runLoad(context.Background(), genConfig{Rate: 0, Vertices: 10}); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := runLoad(context.Background(), genConfig{Rate: 1, Vertices: 1}); err == nil {
		t.Fatal("1-vertex world accepted")
	}
}
