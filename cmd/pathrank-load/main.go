// Command pathrank-load is an open-loop load generator for a running
// pathrank-serve instance. It schedules request arrivals from a seeded
// Poisson process at a fixed target rate — server latency never feeds
// back into the arrival clock, so the measured tail is free of
// coordinated omission — and reports throughput plus p50/p95/p99/p999
// latency from a log-bucketed HDR-style histogram.
//
// The request mix is configurable: OD pairs sampled uniformly from the
// serving graph, per-request k / candidate strategy / engine drawn from
// the given lists, a share of legacy /v1/rank traffic, and a share of
// /v2/rank batches. A given -seed always replays the same sequence.
//
//	pathrank-load -addr http://localhost:8080 -rate 200 -duration 30s
//	pathrank-load -rate 500 -strategy tkdi,dtkdi -batch-ratio 0.2 -json
//
// With -json the report is a single machine-readable JSON object on
// stdout (scripts/paper consumes it); the human-readable summary goes to
// stderr either way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-load: ")

	addr := flag.String("addr", "http://localhost:8080", "base URL of the pathrank-serve instance")
	rate := flag.Float64("rate", 100, "target arrival rate in requests/second")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	seed := flag.Int64("seed", 1, "seed for arrivals and request mix (same seed = same sequence)")
	vertices := flag.Int64("vertices", 0, "OD sample space (0 = read the vertex count from /healthz)")
	k := flag.Int("k", 0, "per-request candidate-set size (0 = server default)")
	strategies := flag.String("strategy", "", "comma-separated candidate strategies to mix (empty = server default)")
	engines := flag.String("engine", "", "comma-separated engines to mix: ch, alt, dijkstra (empty = snapshot engine)")
	v1Ratio := flag.Float64("v1-ratio", 0, "fraction of requests sent to the legacy /v1/rank adapter")
	batchRatio := flag.Float64("batch-ratio", 0, "fraction of v2 requests sent as batches")
	batchSize := flag.Int("batch-size", 8, "queries per batch request")
	explainRatio := flag.Float64("explain-ratio", 0, "fraction of single v2 requests sent with explain=true; against a sharded router the report then includes the per-shard latency breakdown")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline (propagated to the server)")
	maxInFlight := flag.Int("max-inflight", 256, "open-request cap; arrivals past it are dropped, not delayed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cfg := genConfig{
		BaseURL:      strings.TrimRight(*addr, "/"),
		Rate:         *rate,
		Duration:     *duration,
		Seed:         *seed,
		Vertices:     *vertices,
		K:            *k,
		Strategies:   splitList(*strategies),
		Engines:      splitList(*engines),
		V1Ratio:      *v1Ratio,
		BatchRatio:   *batchRatio,
		BatchSize:    *batchSize,
		ExplainRatio: *explainRatio,
		Timeout:      *timeout,
		MaxInFlight:  *maxInFlight,
	}
	if cfg.Vertices == 0 {
		n, err := fetchVertices(ctx, cfg.BaseURL)
		if err != nil {
			log.Fatalf("read vertex count from %s/healthz: %v (or pass -vertices)", cfg.BaseURL, err)
		}
		cfg.Vertices = n
	}

	log.Printf("driving %s: %.1f req/s for %v over %d vertices (seed %d)",
		cfg.BaseURL, cfg.Rate, cfg.Duration, cfg.Vertices, cfg.Seed)
	rep, err := runLoad(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stderr, rep.text())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}

// fetchVertices reads the serving graph's vertex count from /healthz.
func fetchVertices(ctx context.Context, baseURL string) (int64, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var health struct {
		Vertices int64 `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, err
	}
	if health.Vertices < 2 {
		return 0, fmt.Errorf("server reports %d vertices", health.Vertices)
	}
	return health.Vertices, nil
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
