package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"pathrank"
	"pathrank/internal/api"
)

// hdrHist is a log-bucketed latency histogram in the spirit of HDR
// histograms: values share an octave (power of two) split into subCount
// linear sub-buckets, bounding the relative error of any recorded value —
// and so of any reported quantile — to 1/subCount. That keeps p999 honest
// without storing every sample.
type hdrHist struct {
	counts []uint64
	total  uint64
	sum    float64
	max    float64
}

const (
	histOctaves  = 40 // covers 1ns .. ~4.8 hours in nanoseconds
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 sub-buckets: <= ~3% relative error
)

func newHdrHist() *hdrHist {
	return &hdrHist{counts: make([]uint64, histOctaves*histSubCount)}
}

// bucketOf maps a nanosecond value onto its bucket index.
func bucketOf(ns uint64) int {
	if ns < histSubCount {
		return int(ns) // the first octaves are exact
	}
	octave := bits.Len64(ns) - histSubBits // >= 1
	sub := ns >> uint(octave-1)            // top histSubBits+1 bits; high bit set
	idx := octave*histSubCount + int(sub) - histSubCount
	if idx >= len(bucketMids) {
		idx = len(bucketMids) - 1
	}
	return idx
}

// bucketMids caches each bucket's representative value (its midpoint).
var bucketMids = func() []float64 {
	mids := make([]float64, histOctaves*histSubCount)
	for i := range mids {
		lo, hi := bucketBounds(i)
		mids[i] = (lo + hi) / 2
	}
	return mids
}()

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i < histSubCount {
		return float64(i), float64(i + 1)
	}
	octave := i / histSubCount
	sub := i % histSubCount
	width := math.Exp2(float64(octave - 1)) // sub-bucket width in this octave
	lo = (float64(histSubCount) + float64(sub)) * width
	return lo, lo + width
}

// observe records one latency.
func (h *hdrHist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.counts[bucketOf(ns)]++
	h.total++
	h.sum += float64(ns)
	if f := float64(ns); f > h.max {
		h.max = f
	}
}

// quantile returns the q-quantile (0 < q <= 1) in nanoseconds, 0 when
// empty.
func (h *hdrHist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketMids[i]
		}
	}
	return h.max
}

// mean returns the mean latency in nanoseconds.
func (h *hdrHist) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// genConfig parameterizes one load run.
type genConfig struct {
	BaseURL  string
	Rate     float64 // target arrival rate in requests/second
	Duration time.Duration
	Seed     int64
	Vertices int64 // OD pairs are sampled uniformly from [0, Vertices)

	K          int
	Strategies []string // sampled uniformly per request; empty = server default
	Engines    []string // sampled uniformly per request; empty = server default

	V1Ratio    float64 // fraction of requests sent to the legacy /v1/rank
	BatchRatio float64 // fraction of v2 requests that are batches
	BatchSize  int
	// ExplainRatio is the fraction of single v2 requests sent with
	// explain=true; against a sharded router the returned stats carry the
	// per-shard latency breakdown the report aggregates.
	ExplainRatio float64

	Timeout     time.Duration // per-request deadline
	MaxInFlight int           // arrivals past this many open requests are dropped, not delayed

	HTTP *http.Client // nil uses http.DefaultClient
}

// report is the machine-readable outcome of one load run.
type report struct {
	TargetRate  float64 `json:"target_rate"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Queries     int64   `json:"queries"` // batch requests count each query
	AchievedRPS float64 `json:"achieved_rps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// Dropped counts arrivals discarded because MaxInFlight requests were
	// already open. Dropping — instead of delaying the arrival process —
	// keeps the generator open-loop: a slow server cannot slow the clock
	// down and flatter its own latency numbers (coordinated omission).
	Dropped int64            `json:"dropped_arrivals"`
	Errors  map[string]int64 `json:"errors,omitempty"` // by typed api code
	Latency latencyReport    `json:"latency_ms"`
	// Routes and ShardLatency are populated from explain-sampled requests
	// (ExplainRatio > 0) against a sharded router: how queries routed
	// (co_shard vs cross_shard) and each shard's contribution by role.
	Routes       map[string]int64     `json:"routes,omitempty"`
	ShardLatency []shardLatencyReport `json:"shard_latency,omitempty"`
}

// shardLatencyReport aggregates one shard's contribution to the sampled
// queries in one role (proxy, boundary, or corridor).
type shardLatencyReport struct {
	Shard    int     `json:"shard"`
	Role     string  `json:"role"`
	Requests int64   `json:"requests"` // sampled queries this shard served in this role
	Calls    int64   `json:"calls"`    // HTTP calls, counting hedged duplicates
	MeanMs   float64 `json:"mean_ms"`  // mean summed shard wall time per query
	Hedged   int64   `json:"hedged"`   // sampled queries where the hedge fired
}

type latencyReport struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// outcome is one completed request as seen by the collector.
type outcome struct {
	latency time.Duration
	queries int64
	errors  map[string]int64
	route   string          // explain-sampled route kind, "" when unsampled
	shards  []api.ShardStat // explain-sampled per-shard breakdown
}

// runLoad drives an open-loop Poisson arrival process against the server
// until cfg.Duration elapses or ctx is canceled, then waits for in-flight
// requests and reports. Arrivals are scheduled from a seeded source —
// inter-arrival gaps are exponential with mean 1/Rate — and each request
// runs in its own goroutine, so server latency never feeds back into the
// arrival clock.
func runLoad(ctx context.Context, cfg genConfig) (*report, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Vertices < 2 {
		return nil, fmt.Errorf("need at least 2 vertices to sample OD pairs, got %d", cfg.Vertices)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	// MaxRetries -1 really means zero attempts after the first: a load
	// generator must report backlog and timeouts, not paper over them.
	client := &pathrank.Client{BaseURL: cfg.BaseURL, HTTP: cfg.HTTP, MaxRetries: -1}

	rng := rand.New(rand.NewSource(cfg.Seed))
	results := make(chan outcome, cfg.MaxInFlight)
	sem := make(chan struct{}, cfg.MaxInFlight)

	rep := &report{TargetRate: cfg.Rate, Errors: make(map[string]int64)}
	hist := newHdrHist()
	routes := make(map[string]int64)
	type shardKey struct {
		shard int
		role  string
	}
	type shardAgg struct {
		reqs, calls, hedged, ns int64
	}
	shardAggs := make(map[shardKey]*shardAgg)
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for o := range results {
			rep.Requests++
			rep.Queries += o.queries
			hist.observe(o.latency)
			for code, n := range o.errors {
				rep.Errors[code] += n
			}
			if o.route != "" {
				routes[o.route]++
			}
			for _, s := range o.shards {
				k := shardKey{s.Shard, s.Role}
				a := shardAggs[k]
				if a == nil {
					a = &shardAgg{}
					shardAggs[k] = a
				}
				a.reqs++
				a.calls += int64(s.Calls)
				a.ns += s.TotalNs
				if s.Hedged {
					a.hedged++
				}
			}
		}
	}()

	var inflight sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for {
		// Exponential inter-arrival gap: a Poisson process in the limit.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		// The mix is decided on the scheduler goroutine with the seeded
		// source, so a given seed always produces the same request sequence.
		spec := nextSpec(rng, cfg)
		select {
		case sem <- struct{}{}:
		default:
			rep.Dropped++
			continue
		}
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			defer func() { <-sem }()
			results <- execute(ctx, client, cfg, spec)
		}()
	}
	inflight.Wait()
	close(results)
	collect.Wait()

	elapsed := time.Since(start).Seconds()
	rep.DurationS = elapsed
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed
		rep.AchievedQPS = float64(rep.Queries) / elapsed
	}
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	ms := func(ns float64) float64 { return ns / 1e6 }
	rep.Latency = latencyReport{
		Mean: ms(hist.mean()),
		P50:  ms(hist.quantile(0.50)),
		P90:  ms(hist.quantile(0.90)),
		P95:  ms(hist.quantile(0.95)),
		P99:  ms(hist.quantile(0.99)),
		P999: ms(hist.quantile(0.999)),
		Max:  ms(hist.max),
	}
	if len(routes) > 0 {
		rep.Routes = routes
	}
	for k, a := range shardAggs {
		rep.ShardLatency = append(rep.ShardLatency, shardLatencyReport{
			Shard: k.shard, Role: k.role,
			Requests: a.reqs, Calls: a.calls,
			MeanMs: float64(a.ns) / float64(a.reqs) / 1e6,
			Hedged: a.hedged,
		})
	}
	sort.Slice(rep.ShardLatency, func(i, j int) bool {
		a, b := rep.ShardLatency[i], rep.ShardLatency[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Role < b.Role
	})
	return rep, nil
}

// requestSpec is one scheduled request, fully decided before dispatch.
type requestSpec struct {
	queries []pathrank.RankQuery
	v1      bool // send to /v1/rank instead of /v2/rank
	batch   bool
}

// nextSpec samples the next request from the configured mix.
func nextSpec(rng *rand.Rand, cfg genConfig) requestSpec {
	spec := requestSpec{}
	if rng.Float64() < cfg.V1Ratio {
		spec.v1 = true
	} else if rng.Float64() < cfg.BatchRatio {
		spec.batch = true
	}
	n := 1
	if spec.batch {
		n = cfg.BatchSize
	}
	spec.queries = make([]pathrank.RankQuery, n)
	for i := range spec.queries {
		q := pathrank.RankQuery{K: cfg.K}
		q.Src = rng.Int63n(cfg.Vertices)
		q.Dst = rng.Int63n(cfg.Vertices - 1)
		if q.Dst >= q.Src { // uniform over pairs with src != dst
			q.Dst++
		}
		if len(cfg.Strategies) > 0 {
			q.Strategy = cfg.Strategies[rng.Intn(len(cfg.Strategies))]
		}
		if len(cfg.Engines) > 0 {
			q.Engine = cfg.Engines[rng.Intn(len(cfg.Engines))]
		}
		// Explain sampling applies to single v2 requests only, and draws
		// from the source only when enabled so existing seeds keep their
		// request sequences.
		if cfg.ExplainRatio > 0 && !spec.v1 && !spec.batch {
			q.Explain = rng.Float64() < cfg.ExplainRatio
		}
		spec.queries[i] = q
	}
	return spec
}

// execute runs one request and classifies its outcome. Latency is wall
// time of the whole HTTP exchange, including a batch's every query.
func execute(ctx context.Context, client *pathrank.Client, cfg genConfig, spec requestSpec) outcome {
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	o := outcome{queries: int64(len(spec.queries))}
	start := time.Now()
	switch {
	case spec.v1:
		o.errors = execV1(rctx, client, cfg, spec.queries[0])
	case spec.batch:
		items, err := client.RankBatch(rctx, spec.queries, 0)
		o.errors = classify(err)
		for _, it := range items {
			if it.Error != nil {
				o.errors = addErr(o.errors, it.Error.Code)
			}
		}
	default:
		res, err := client.Rank(rctx, spec.queries[0])
		o.errors = classify(err)
		if err == nil && res.Stats != nil {
			o.route = res.Stats.Route
			o.shards = res.Stats.Shards
		}
	}
	o.latency = time.Since(start)
	return o
}

// execV1 posts the legacy v1 body directly — the SDK is v2-only, and the
// point of the v1 share is exercising the adapter path.
func execV1(ctx context.Context, client *pathrank.Client, cfg genConfig, q pathrank.RankQuery) map[string]int64 {
	body, err := json.Marshal(map[string]any{"src": q.Src, "dst": q.Dst, "k": q.K})
	if err != nil {
		return addErr(nil, "transport")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/rank", bytes.NewReader(body))
	if err != nil {
		return addErr(nil, "transport")
	}
	req.Header.Set("Content-Type", "application/json")
	hc := cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return addErr(nil, "transport")
	}
	defer resp.Body.Close()
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return addErr(nil, fmt.Sprintf("http_%d", resp.StatusCode))
	}
	return nil
}

// classify maps a request error onto an error-code key.
func classify(err error) map[string]int64 {
	if err == nil {
		return nil
	}
	var apiErr *pathrank.APIError
	if errors.As(err, &apiErr) {
		return addErr(nil, apiErr.Code)
	}
	return addErr(nil, "transport")
}

func addErr(m map[string]int64, code string) map[string]int64 {
	if m == nil {
		m = make(map[string]int64)
	}
	m[code]++
	return m
}

// text renders the report for humans, one stable line per fact.
func (r *report) text() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "target      %.1f req/s for %.1fs\n", r.TargetRate, r.DurationS)
	fmt.Fprintf(&b, "achieved    %.1f req/s (%.1f queries/s, %d requests)\n", r.AchievedRPS, r.AchievedQPS, r.Requests)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "dropped     %d arrivals (in-flight cap hit; raise -max-inflight or lower -rate)\n", r.Dropped)
	}
	if len(r.Errors) > 0 {
		codes := make([]string, 0, len(r.Errors))
		for c := range r.Errors {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "errors      %-18s %d\n", c, r.Errors[c])
		}
	}
	l := r.Latency
	fmt.Fprintf(&b, "latency ms  mean %.3f  p50 %.3f  p90 %.3f  p95 %.3f  p99 %.3f  p999 %.3f  max %.3f\n",
		l.Mean, l.P50, l.P90, l.P95, l.P99, l.P999, l.Max)
	if len(r.Routes) > 0 {
		kinds := make([]string, 0, len(r.Routes))
		for k := range r.Routes {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "routed      %-12s %d sampled\n", k, r.Routes[k])
		}
	}
	for _, s := range r.ShardLatency {
		fmt.Fprintf(&b, "shard %-3d   %-9s %5d queries  %5d calls  mean %.3f ms  %d hedged\n",
			s.Shard, s.Role, s.Requests, s.Calls, s.MeanMs, s.Hedged)
	}
	return b.String()
}
