// Command pathrank-rank loads a trained model and ranks candidate paths
// for an origin-destination query, mimicking a navigation service that
// proposes ranked alternatives.
//
// Usage:
//
//	pathrank-rank -net net.gob -model model.gob -m 64 -src 12 -dst 431
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-rank: ")

	netPath := flag.String("net", "net.gob", "road network file")
	modelPath := flag.String("model", "model.gob", "trained model file")
	m := flag.Int("m", 64, "embedding dimensionality the model was trained with")
	hidden := flag.Int("hidden", 32, "hidden size the model was trained with")
	variant := flag.String("variant", "a2", "variant the model was trained with (a1/a2)")
	lambda := flag.Float64("lambda", 0, "multi-task lambda the model was trained with")
	src := flag.Int("src", 0, "source vertex ID")
	dst := flag.Int("dst", -1, "destination vertex ID (-1 = farthest corner)")
	k := flag.Int("k", 5, "candidates to generate")
	flag.Parse()

	g, err := roadnet.LoadFile(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pathrank.Config{
		EmbeddingDim: *m, Hidden: *hidden, Body: pathrank.GRUBody,
		MultiTaskLambda: *lambda,
	}
	if *variant == "a1" {
		cfg.Variant = pathrank.PRA1
	} else {
		cfg.Variant = pathrank.PRA2
	}
	model, err := pathrank.New(g.NumVertices(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Load(bufio.NewReader(f)); err != nil {
		log.Fatal(err)
	}
	f.Close()

	source := roadnet.VertexID(*src)
	dest := roadnet.VertexID(*dst)
	if *dst < 0 {
		dest = roadnet.VertexID(g.NumVertices() - 1)
	}
	if int(source) >= g.NumVertices() || int(dest) >= g.NumVertices() {
		log.Fatalf("vertex out of range: graph has %d vertices", g.NumVertices())
	}

	r := pathrank.NewRanker(g, model)
	r.Candidates = dataset.Config{Strategy: dataset.DTkDI, K: *k, Threshold: 0.8}
	ranked, err := r.Query(source, dest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %d -> %d: %d candidates\n", source, dest, len(ranked))
	for i, rk := range ranked {
		fmt.Printf("#%d score=%.4f length=%.0fm time=%.0fs hops=%d\n",
			i+1, rk.Score, rk.Path.Length(g), rk.Path.Time(g), rk.Path.Len())
	}
}
