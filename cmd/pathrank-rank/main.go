// Command pathrank-rank answers one origin-destination ranking query,
// mimicking a navigation service that proposes ranked alternatives. It
// speaks the Query API v2 request shape in both of its modes:
//
// Local mode loads a trained artifact bundle (written by pathrank-train
// -artifact) and ranks in process:
//
//	pathrank-rank -artifact model.prart -src 12 -dst 431 -k 8 -strategy dtkdi
//
// Server mode sends the same query to a running pathrank-serve through the
// pathrank.Client SDK:
//
//	pathrank-rank -server http://localhost:8080 -src 12 -dst 431 -k 8
//
// Either way the candidate regime is per-request configurable (-k,
// -strategy, -threshold, -weight, -engine) and -timeout bounds the
// computation: an expiring deadline cancels the in-flight enumeration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"pathrank"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-rank: ")

	artifactPath := flag.String("artifact", "model.prart", "trained artifact bundle (local mode)")
	server := flag.String("server", "", "pathrank-serve base URL; set to query a running server instead of loading the artifact")
	src := flag.Int64("src", 0, "source vertex ID")
	dst := flag.Int64("dst", -1, "destination vertex ID (-1 = last vertex, local mode only)")
	k := flag.Int("k", 0, "candidate-set size override (0 = artifact default)")
	strategy := flag.String("strategy", "", "candidate strategy override: tkdi or dtkdi (empty = artifact default)")
	threshold := flag.Float64("threshold", 0, "D-TkDI similarity threshold override in (0,1]")
	weight := flag.String("weight", "", "edge metric override: length or time")
	engineName := flag.String("engine", "", "shortest-path backend override: dijkstra, alt or ch (empty = artifact default)")
	explain := flag.Bool("explain", false, "print candidate-generation statistics")
	timeout := flag.Duration("timeout", 0, "query deadline (0 = none)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *server != "" {
		rankRemote(ctx, *server, *src, *dst, *k, *strategy, *threshold, *weight, *engineName, *explain)
		return
	}
	rankLocal(ctx, *artifactPath, *src, *dst, *k, *strategy, *threshold, *weight, *engineName, *explain)
}

// rankLocal loads the artifact bundle and ranks in process through the
// core Ranker.Rank entry point.
func rankLocal(ctx context.Context, artifactPath string, src, dst int64, k int, strategy string, threshold float64, weight, engineName string, explain bool) {
	// Validate the choice flags before paying for the artifact load —
	// a typo should fail instantly, not after reading a large bundle.
	req := pathrank.RankRequest{K: k, Threshold: threshold, Explain: explain}
	var err error
	if req.Strategy, err = pathrank.ParseStrategyChoice(strategy); err != nil {
		log.Fatal(err)
	}
	if req.Weight, err = pathrank.ParseWeightKind(weight); err != nil {
		log.Fatal(err)
	}
	if req.Engine, err = pathrank.ParseEngineChoice(engineName); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	art, err := pathrank.LoadArtifactFile(artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	ranker := art.NewRanker()
	fmt.Printf("loaded %s in %v: %d vertices, %d edges, %d params\n",
		artifactPath, time.Since(start).Round(time.Millisecond),
		art.Graph.NumVertices(), art.Graph.NumEdges(), art.Model.NumParams())

	if dst < 0 {
		dst = int64(art.Graph.NumVertices() - 1)
	}
	req.Src = pathrank.VertexID(src)
	req.Dst = pathrank.VertexID(dst)

	resp, err := ranker.Rank(ctx, req)
	if err != nil {
		log.Fatalf("%v (code %s)", err, pathrank.ErrorCodeOf(err))
	}
	fmt.Printf("query %d -> %d: %d candidates\n", src, dst, len(resp.Paths))
	for i, rk := range resp.Paths {
		fmt.Printf("#%d score=%.4f length=%.0fm time=%.0fs hops=%d\n",
			i+1, rk.Score, rk.Path.Length(art.Graph), rk.Path.Time(art.Graph), rk.Path.Len())
	}
	if explain {
		st := resp.Stats
		fmt.Printf("stats: strategy=%s k=%d threshold=%g weight=%s engine=%s gen=%v score=%v\n",
			st.Strategy, st.K, st.Threshold, st.Weight, st.Engine,
			time.Duration(st.GenNanos).Round(time.Microsecond),
			time.Duration(st.ScoreNanos).Round(time.Microsecond))
	}
}

// rankRemote sends the query to a running pathrank-serve over HTTP.
func rankRemote(ctx context.Context, server string, src, dst int64, k int, strategy string, threshold float64, weight, engineName string, explain bool) {
	if dst < 0 {
		log.Fatal("server mode needs an explicit -dst")
	}
	client := &pathrank.Client{BaseURL: server}
	res, err := client.Rank(ctx, pathrank.RankQuery{
		Src: src, Dst: dst, K: k,
		Strategy: strategy, Threshold: threshold,
		Weight: weight, Engine: engineName, Explain: explain,
	})
	if err != nil {
		var apiErr *pathrank.APIError
		if errors.As(err, &apiErr) {
			log.Fatalf("%s (code %s, HTTP %d)", apiErr.Message, apiErr.Code, apiErr.Status)
		}
		log.Fatal(err)
	}
	cached := ""
	if res.Cached {
		cached = " (cached)"
	}
	fmt.Printf("query %d -> %d: %d candidates%s\n", res.Src, res.Dst, len(res.Paths), cached)
	for _, p := range res.Paths {
		fmt.Printf("#%d score=%.4f length=%.0fm time=%.0fs hops=%d\n",
			p.Rank, p.Score, p.LengthM, p.TimeS, p.Hops)
	}
	if res.Stats != nil {
		st := res.Stats
		fmt.Printf("stats: strategy=%s k=%d threshold=%g weight=%s engine=%s candidates=%d gen=%v score=%v\n",
			st.Strategy, st.K, st.Threshold, st.Weight, st.Engine, st.Candidates,
			time.Duration(st.GenNs).Round(time.Microsecond),
			time.Duration(st.ScoreNs).Round(time.Microsecond))
	}
}
