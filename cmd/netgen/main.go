// Command netgen generates a synthetic road network and a simulated trip
// log, writing both to gob files for use by pathrank-train and the
// examples.
//
// Usage:
//
//	netgen -rows 20 -cols 25 -drivers 60 -trips 6 -out net.gob -trips-out trips.gob
package main

import (
	"bufio"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

// TripsFile is the on-disk format of a trip log.
type TripsFile struct {
	Trips []traj.Trip
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("netgen: ")

	rows := flag.Int("rows", 20, "grid rows")
	cols := flag.Int("cols", 25, "grid columns")
	spacing := flag.Float64("spacing", 250, "mean vertex spacing in meters")
	drivers := flag.Int("drivers", 60, "number of simulated drivers")
	trips := flag.Int("trips", 6, "trips per driver")
	minHops := flag.Int("min-hops", 5, "minimum path hops per trip")
	metro := flag.Bool("metro", false, "metro-scale preset: a ~25k-vertex grid with denser spacing (explicit -rows/-cols/-spacing/-drivers still win)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "net.gob", "output path for the road network")
	tripsOut := flag.String("trips-out", "trips.gob", "output path for the trip log")
	csvDir := flag.String("csv", "", "also export the network as vertices.csv/edges.csv into this directory (the roadnet.ImportCSV format)")
	flag.Parse()

	if *metro {
		// Presets only fill in what the user did not set explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["rows"] {
			*rows = 160
		}
		if !set["cols"] {
			*cols = 160
		}
		if !set["spacing"] {
			*spacing = 120
		}
		if !set["drivers"] {
			*drivers = 200
		}
	}

	cfg := roadnet.GenConfig{
		Rows: *rows, Cols: *cols, SpacingM: *spacing, JitterFrac: 0.25,
		RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: *seed,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges -> %s\n", g.NumVertices(), g.NumEdges(), *out)
	if *csvDir != "" {
		if err := exportCSV(g, *csvDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("csv: vertices.csv, edges.csv -> %s\n", *csvDir)
	}

	pop := traj.NewPopulation(traj.PopulationConfig{NumDrivers: *drivers, Seed: *seed + 1})
	tr, err := traj.GenerateTrips(g, pop, traj.TripConfig{
		TripsPerDriver: *trips, MinHops: *minHops, Seed: *seed + 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := saveTrips(*tripsOut, tr); err != nil {
		log.Fatal(err)
	}
	ns, nf := traj.NonOptimalFraction(g, tr)
	fmt.Printf("trips: %d (%.0f%% not-shortest, %.0f%% not-fastest) -> %s\n",
		len(tr), ns*100, nf*100, *tripsOut)
}

// exportCSV writes the network in the two-file CSV interchange format
// that roadnet.ImportCSV streams back in.
func exportCSV(g *roadnet.Graph, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	vf, err := os.Create(filepath.Join(dir, "vertices.csv"))
	if err != nil {
		return err
	}
	ef, err := os.Create(filepath.Join(dir, "edges.csv"))
	if err != nil {
		vf.Close()
		return err
	}
	vw, ew := bufio.NewWriter(vf), bufio.NewWriter(ef)
	if err := g.ExportCSV(vw, ew); err != nil {
		vf.Close()
		ef.Close()
		return err
	}
	for _, w := range []*bufio.Writer{vw, ew} {
		if err := w.Flush(); err != nil {
			vf.Close()
			ef.Close()
			return err
		}
	}
	if err := vf.Close(); err != nil {
		ef.Close()
		return err
	}
	return ef.Close()
}

func saveTrips(path string, trips []traj.Trip) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(TripsFile{Trips: trips}); err != nil {
		f.Close()
		return fmt.Errorf("encode trips: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
