// Command mapmatch demonstrates the GPS-preprocessing pipeline on a
// generated network: it simulates trips, samples noisy 1 Hz GPS traces,
// recovers network paths with the HMM map matcher, and reports recovery
// quality against the ground-truth driven paths.
//
// Usage:
//
//	mapmatch -net net.gob -trips 20 -noise 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mapmatch: ")

	netPath := flag.String("net", "net.gob", "road network file from netgen")
	nTrips := flag.Int("trips", 20, "number of trips to simulate and match")
	noise := flag.Float64("noise", 8, "GPS noise standard deviation in meters")
	interval := flag.Float64("interval", 1, "GPS sampling interval in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	engineName := flag.String("engine", "ch", "shortest-path engine for matching: ch, alt or dijkstra")
	flag.Parse()

	kind, err := spath.ParseEngineKind(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	g, err := roadnet.LoadFile(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: *nTrips, Seed: *seed})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: 1, MinHops: 5, Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	prepStart := time.Now()
	engine := spath.NewEngine(kind, g, spath.ByLength, spath.EngineConfig{})
	fmt.Printf("engine: %s (preprocessed in %v)\n", engine.Kind(), time.Since(prepStart).Round(time.Millisecond))
	matcher := traj.NewMatcherEngine(g, traj.DefaultMatchConfig(), engine)

	// Ctrl-C aborts an in-flight Viterbi decode via the matcher's context
	// instead of waiting the trace out.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var simSum float64
	var records, matched int
	worst := 1.0
	for i, tr := range trips {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		recs := traj.SampleGPS(g, tr.Path, traj.GPSConfig{
			IntervalSec: *interval, NoiseStdM: *noise, Seed: *seed + int64(100+i),
		})
		records += len(recs)
		got, err := matcher.MatchCtx(ctx, recs)
		if err != nil {
			if ctx.Err() != nil {
				log.Fatal("interrupted")
			}
			fmt.Printf("trip %d: match failed: %v\n", i, err)
			continue
		}
		matched++
		sim := pathsim.WeightedJaccard(g, got, tr.Path)
		simSum += sim
		if sim < worst {
			worst = sim
		}
	}
	if matched == 0 {
		log.Fatal("no trips matched")
	}
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("matched %d/%d trips from %d GPS records (noise %.0f m @ %.0f s)\n",
		matched, len(trips), records, *noise, *interval)
	fmt.Printf("weighted-Jaccard recovery: mean %.3f, worst %.3f\n",
		simSum/float64(matched), worst)
}
