// Command pathrank-serve exposes a trained PathRank artifact as an online
// ranking service over HTTP, optionally running the live pipeline: GPS
// trajectory ingestion, incremental retraining, and hot model swaps.
//
// It loads an artifact bundle (written by pathrank-train -artifact or
// pathrank.SaveArtifactFile) at startup and answers ranking queries until
// terminated, draining in-flight requests on SIGINT/SIGTERM:
//
//	pathrank-serve -artifact model.prart -addr :8080
//
// With -retrain-interval the server becomes self-improving: ingested
// trajectories are map-matched in the background, the model is fine-tuned
// on the accumulated window, and each new generation is written back to
// the artifact path and hot-swapped in with zero downtime:
//
//	pathrank-serve -artifact model.prart -retrain-interval 5m -retrain-min 32
//
// API:
//
//	POST /v2/rank    {"src": 12, "dst": 431, "k": 8, "strategy": "dtkdi", "timeout_ms": 200}
//	                 or a batch: {"queries": [{...}, ...]} -> per-item results/errors
//	POST /v1/rank    {"src": 12, "dst": 431, "k": 5}  -> ranked paths, best first (adapter over v2)
//	POST /v1/ingest  {"records": [{"lon": 9.91, "lat": 57.04, "t": 0}, ...]} -> 202
//	POST /v1/reload  {"artifact": "other.prart"}  (empty body = configured path)
//	GET  /v1/provenance        Merkle commitments of the serving generation + WAL health
//	GET  /v1/provenance?seq=N  inclusion proof for ingested trajectory N
//	GET  /healthz    liveness, artifact shape, fingerprint, lineage, provenance roots
//	GET  /metrics    Prometheus text format (latency histograms, cache, batching, swaps, retrains, WAL)
//	GET  /metrics.json  legacy expvar counters (compat alias)
//
// With -wal-dir the live pipeline becomes durable: every accepted
// trajectory is logged before it can influence training, the observation
// window survives restarts, and any logged generation can be reproduced
// bit-for-bit with pathrank-train -replay. -wal-fsync trades ingest
// latency for crash durability (always | batch | interval).
//
// /v2/rank errors are typed ({"error": {"code": "unroutable", ...}}): 400
// invalid, 404 unroutable, 408 canceled, 504 deadline, 503 backlog with
// Retry-After. The pathrank.Client SDK (and pathrank-rank -server) speak
// this API.
//
// Sharded deployments (see docs/SHARDING.md) run one process per shard of
// a partitioned bundle (pathrank-train -partition) plus one router:
//
//	pathrank-serve -bundle bundle/ -shard 0 -addr :8081
//	pathrank-serve -bundle bundle/ -shard 1 -addr :8082
//	pathrank-serve -bundle bundle/ -router -shards http://localhost:8081,http://localhost:8082
//
// A shard worker is this same server over the shard's artifact, plus the
// /shard/* sub-query endpoints the router stitches cross-shard answers
// from. The router speaks plain /v2/rank, so clients need no changes.
// -mmap memory-maps the artifact's raw arrays (format v3) instead of
// deserializing them, making cold start O(open).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pathrank/internal/fault"
	"pathrank/internal/obsv"
	"pathrank/internal/partition"
	"pathrank/internal/pathrank"
	"pathrank/internal/router"
	"pathrank/internal/serve"
	"pathrank/internal/shardserve"
	"pathrank/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-serve: ")

	artifactPath := flag.String("artifact", "model.prart", "trained artifact bundle")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	cacheSize := flag.Int("cache", 4096, "LRU result-cache entries (negative disables)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch gather window (0 disables batching)")
	batchMax := flag.Int("batch-max-paths", 256, "max paths per micro-batched scoring sweep")
	noFused := flag.Bool("no-fused-scoring", false, "score candidates per path instead of with the batched (fused) kernels; results are bit-identical")
	maxK := flag.Int("max-k", 32, "largest per-request candidate-set override")
	maxBatch := flag.Int("max-batch", 64, "largest /v2/rank batch in queries")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent rank-request cap; excess sheds with 503 backlog (0 = unlimited)")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on per-request timeout_ms deadlines")
	engine := flag.String("engine", "ch", "shortest-path engine for candidate generation: ch, alt or dijkstra")
	drain := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain timeout")
	flag.DurationVar(drain, "drain", 5*time.Second, "deprecated alias for -drain-timeout")
	watch := flag.Duration("watch", 0, "artifact-file watch interval (0 disables the watcher)")
	canaryQueries := flag.Int("canary-queries", 8, "golden queries the canary gate scores before publishing a swap (0 disables the gate)")
	canaryDivergence := flag.Float64("canary-divergence", 0, "max rank divergence vs the live snapshot before a swap is refused (0 = default 0.9)")
	ingestQueue := flag.Int("ingest-queue", 256, "bounded ingest queue size in trajectories")
	ingestWorkers := flag.Int("ingest-workers", 2, "map-matching workers")
	ingestMaxRecords := flag.Int("ingest-max-records", 20000, "max GPS records per ingested trajectory")
	retrainEvery := flag.Duration("retrain-interval", 0, "incremental retrain cadence (0 disables the live loop)")
	retrainMin := flag.Int("retrain-min", 16, "new observations required before a periodic retrain")
	retrainWindow := flag.Int("retrain-window", 1024, "observation window size in matched paths")
	retrainEpochs := flag.Int("retrain-epochs", 3, "fine-tune epochs per retrain")
	retrainLR := flag.Float64("retrain-lr", 0.001, "fine-tune learning rate")
	retrainSeed := flag.Int64("retrain-seed", 1, "base seed for deterministic incremental training")
	walDir := flag.String("wal-dir", "", "trajectory write-ahead-log directory (enables durable ingest + deterministic replay)")
	walFsync := flag.String("wal-fsync", "batch", "WAL fsync policy: always (every record), batch (retrain boundaries), interval")
	walSyncEvery := flag.Duration("wal-sync-interval", 200*time.Millisecond, "fsync cadence for -wal-fsync interval")
	walSegBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation threshold in bytes")
	walRetain := flag.Int("wal-retain", 0, "sealed WAL segments to keep (0 keeps all; pruning limits replay depth)")
	bundleDir := flag.String("bundle", "", "partitioned bundle directory from pathrank-train -partition (for -shard and -router)")
	shardIdx := flag.Int("shard", -1, "serve shard N of the -bundle as a shard worker (adds the /shard/* sub-query endpoints)")
	routerMode := flag.Bool("router", false, "run the fan-out router over the -bundle's shard map; requires -shards")
	shardURLs := flag.String("shards", "", "comma-separated shard worker base URLs in shard order (router mode)")
	useMmap := flag.Bool("mmap", false, "memory-map the artifact's raw arrays (format v3) instead of deserializing them")
	hedgeAfter := flag.Duration("hedge-after", 150*time.Millisecond, "router: duplicate a shard call unanswered for this long (negative disables hedging)")
	flag.Parse()

	// Fault injection for fire drills: PATHRANK_FAULTS holds a fault.ParseSpec
	// schedule, PATHRANK_FAULT_SEED the deterministic seed. Off (a nil
	// pointer check on every site) unless explicitly set.
	if spec := os.Getenv("PATHRANK_FAULTS"); spec != "" {
		var seed int64 = 1
		if v := os.Getenv("PATHRANK_FAULT_SEED"); v != "" {
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				log.Fatalf("PATHRANK_FAULT_SEED: %v", err)
			}
			seed = s
		}
		plan, err := fault.ParseSpec(spec, seed)
		if err != nil {
			log.Fatalf("PATHRANK_FAULTS: %v", err)
		}
		fault.Enable(plan)
		log.Printf("WARNING: fault injection ACTIVE (seed %d): %s — do not run this configuration in production", seed, plan)
	}

	if *routerMode {
		if err := runRouter(*bundleDir, *shardURLs, *addr, *hedgeAfter, *maxK, *maxBatch, *maxTimeout); err != nil {
			log.Fatal(err)
		}
		fmt.Println("shut down cleanly")
		return
	}
	if *shardIdx >= 0 {
		if *bundleDir == "" {
			log.Fatal("-shard requires -bundle")
		}
		if *retrainEvery > 0 || *walDir != "" {
			log.Fatal("-shard is incompatible with -retrain-interval/-wal-dir: every worker must keep serving the bundle's model, a shard retraining alone would fork the fingerprint")
		}
		*artifactPath = filepath.Join(*bundleDir, partition.ShardArtifactName(*shardIdx))
	}

	start := time.Now()
	loadArtifact := pathrank.LoadArtifactFile
	if *useMmap {
		loadArtifact = pathrank.LoadArtifactFileMapped
	}
	art, err := loadArtifact(*artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	fpHex, err := art.Model.FingerprintHex()
	if err != nil {
		log.Fatal(err)
	}
	prepNote := "no prep embedded (preprocessing on demand)"
	if art.Prep != nil {
		prepNote = "prep embedded (cold start skips preprocessing)"
	}
	log.Printf("loaded %s in %v: %d vertices, %d edges, %d params, strategy %s k=%d, gen %d fingerprint %.12s, engine %s, %s",
		*artifactPath, time.Since(start).Round(time.Millisecond),
		art.Graph.NumVertices(), art.Graph.NumEdges(), art.Model.NumParams(),
		art.Candidates.Strategy, art.Candidates.K, art.Lineage.Generation, fpHex, *engine, prepNote)

	// One registry for the whole process: the server and the live pipeline
	// both register on it, so GET /metrics is the single scrape surface.
	registry := obsv.NewRegistry()

	cfg := serve.Config{
		Addr:                *addr,
		Metrics:             registry,
		CacheSize:           *cacheSize,
		BatchWindow:         *batchWindow,
		BatchMaxPaths:       *batchMax,
		DisableFusedScoring: *noFused,
		MaxK:                *maxK,
		MaxBatch:            *maxBatch,
		MaxInFlight:         *maxInFlight,
		MaxTimeout:          *maxTimeout,
		Engine:              *engine,
		ShutdownTimeout:     *drain,
		ArtifactPath:        *artifactPath,
		WatchInterval:       *watch,
		CanaryQueries:       *canaryQueries,
		CanaryMaxDivergence: *canaryDivergence,
		MaxIngestRecords:    *ingestMaxRecords,
		Logf:                log.Printf,
		OnListen: func(a net.Addr) {
			log.Printf("listening on %s", a)
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *serve.Server
	var svc *stream.Service
	// The live pipeline runs when periodic retraining is requested, or when
	// a WAL directory is given (durable ingest with manual/replayed
	// retraining still wants trajectories logged).
	if *retrainEvery > 0 || *walDir != "" {
		svc, err = stream.New(art, stream.Config{
			QueueSize:       *ingestQueue,
			Workers:         *ingestWorkers,
			Window:          *retrainWindow,
			MinObservations: *retrainMin,
			Interval:        *retrainEvery,
			Engine:          *engine,
			Train: pathrank.TrainConfig{
				Epochs: *retrainEpochs, LR: *retrainLR, ClipNorm: 5, Seed: *retrainSeed,
			},
			ArtifactPath:    *artifactPath,
			WALDir:          *walDir,
			WALFsync:        *walFsync,
			WALSyncInterval: *walSyncEvery,
			WALSegmentBytes: *walSegBytes,
			WALRetain:       *walRetain,
			Metrics:         registry,
			Publish: func(a *pathrank.Artifact) error {
				_, err := srv.Swap(a)
				return err
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Ingest = svc
		cfg.Provenance = svc
		cfg.Pipeline = svc
	}

	srv, err = serve.New(art, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *shardIdx >= 0 {
		ss, err := shardserve.New(srv)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shard worker %d/%d: %d owned boundary vertices",
			art.Shard.Index, art.Shard.Parts, len(art.Shard.Boundary))
		if err := ss.Run(ctx, *addr, cfg.OnListen); err != nil {
			log.Fatal(err)
		}
		fmt.Println("shut down cleanly")
		return
	}
	var svcDone chan struct{}
	if svc != nil {
		// Started only after srv exists: the publish hook swaps through it.
		// The retrainer publishes swaps directly, so the file watcher is
		// only needed for artifacts replaced by external tooling.
		svcDone = make(chan struct{})
		go func() {
			defer close(svcDone)
			_ = svc.Run(ctx)
		}()
	}
	if err := srv.Run(ctx); err != nil {
		log.Fatal(err)
	}
	// Shutdown order: the HTTP server has drained (no new ingest), so the
	// pipeline workers can finish their queue items; only once they have
	// stopped is the WAL closed — Close flushes the unsynced tail, and no
	// append may race it.
	if svc != nil {
		<-svcDone
		if err := svc.Close(); err != nil {
			log.Printf("close pipeline: %v", err)
		} else {
			log.Printf("pipeline stopped, WAL flushed")
		}
	}
	fmt.Println("shut down cleanly")
}

// runRouter implements -router: load the bundle's shard map and fan
// /v2/rank out over the shard workers until terminated.
func runRouter(bundleDir, shardURLs, addr string, hedgeAfter time.Duration, maxK, maxBatch int, maxTimeout time.Duration) error {
	if bundleDir == "" {
		return fmt.Errorf("-router requires -bundle")
	}
	urls := splitList(shardURLs)
	if len(urls) == 0 {
		return fmt.Errorf("-router requires -shards (comma-separated worker URLs in shard order)")
	}
	start := time.Now()
	sm, err := partition.LoadShardMapFile(bundleDir)
	if err != nil {
		return err
	}
	log.Printf("loaded shard map in %v: %d shards, %d vertices, %d boundary vertices, %d cut edges, fingerprint %.12s",
		time.Since(start).Round(time.Millisecond), sm.Parts, sm.NumVertices,
		len(sm.GlobalBoundary()), len(sm.CutEdges), sm.Fingerprint)
	rt, err := router.New(sm, router.Config{
		Addr: addr, Shards: urls, HedgeAfter: hedgeAfter,
		MaxK: maxK, MaxBatch: maxBatch, MaxTimeout: maxTimeout,
		Metrics: obsv.NewRegistry(), Logf: log.Printf,
		OnListen: func(a net.Addr) {
			log.Printf("router listening on %s over %d shards", a, len(urls))
		},
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return rt.Run(ctx)
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
