// Command pathrank-serve exposes a trained PathRank artifact as an online
// ranking service over HTTP.
//
// It loads an artifact bundle (written by pathrank-train -artifact or
// pathrank.SaveArtifactFile) at startup and answers ranking queries until
// terminated, draining in-flight requests on SIGINT/SIGTERM:
//
//	pathrank-serve -artifact model.prart -addr :8080
//
// API:
//
//	POST /v1/rank    {"src": 12, "dst": 431, "k": 5}  -> ranked paths, best first
//	GET  /healthz    liveness and artifact shape
//	GET  /metrics    expvar counters (requests, cache, singleflight, batching)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"pathrank/internal/pathrank"
	"pathrank/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathrank-serve: ")

	artifactPath := flag.String("artifact", "model.prart", "trained artifact bundle")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	cacheSize := flag.Int("cache", 4096, "LRU result-cache entries (negative disables)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch gather window (0 disables batching)")
	batchMax := flag.Int("batch-max-paths", 256, "max paths per micro-batched scoring sweep")
	maxK := flag.Int("max-k", 32, "largest per-request candidate-set override")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	start := time.Now()
	art, err := pathrank.LoadArtifactFile(*artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s in %v: %d vertices, %d edges, %d params, strategy %s k=%d",
		*artifactPath, time.Since(start).Round(time.Millisecond),
		art.Graph.NumVertices(), art.Graph.NumEdges(), art.Model.NumParams(),
		art.Candidates.Strategy, art.Candidates.K)

	srv, err := serve.New(art, serve.Config{
		Addr:            *addr,
		CacheSize:       *cacheSize,
		BatchWindow:     *batchWindow,
		BatchMaxPaths:   *batchMax,
		MaxK:            *maxK,
		ShutdownTimeout: *drain,
		OnListen: func(a net.Addr) {
			log.Printf("listening on %s", a)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
