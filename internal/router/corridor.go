package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/pathrank"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// This file implements cross-shard queries: boundary-set stitching.
//
// Correctness rests on the separator property of the geometric partition
// (every path between vertices of different shards passes through
// boundary vertices) and three facts, each mirrored by a property test:
//
//  1. dS(b) = min over u in B_i of d_i(s→u) + D(u,b) is the EXACT
//     full-graph distance d(s,b) for every boundary vertex b, where
//     d_i is the within-shard distance from the /shard/boundary call and
//     D the precomputed full-graph boundary table (first-exit
//     decomposition of an optimal path). Symmetrically for dT(b).
//  2. A shard's corridor — owned vertices v with fwd(v)+rev(v) <= C
//     where the sweeps are seeded with (b, dS(b)) / (b, dT(b)) — is a
//     superset of the owned vertices on ANY loopless s→t path of cost at
//     most C (last-entry decomposition; the seeded sweep computes the
//     exact full-graph d(s,v) and d(v,t) for owned vertices).
//  3. A cut edge u→v on a path of cost at most C has
//     dS(u)+dT(u) <= C and dS(v)+dT(v) <= C, and cut-edge endpoints are
//     always boundary vertices, so the router can test this locally.
//
// The fused subgraph (shard corridors + qualifying cut edges) therefore
// contains every loopless s→t path of cost <= C. Enumeration on it is
// accepted only under a certificate that the answer cannot involve any
// path of cost beyond C: either the run never consumed a path of cost
// close to C and did not exhaust the restricted path set, or the bound
// has grown past the total edge weight (an upper bound on any loopless
// path's cost), making the restricted enumeration the complete one.
// Otherwise C doubles and the corridor is re-extracted.

// boundaryOut is one shard's boundary distance vector, Inf-decoded.
type boundaryOut struct {
	dist []float64
	meta callMeta
}

// shardBoundary fetches the boundary distance vector of shard's owned
// endpoint: d(v → each boundary vertex) for dir "fwd", d(each boundary
// vertex → v) for "rev".
func (rt *Router) shardBoundary(ctx context.Context, shard int, v int64, dir, weightName string) (boundaryOut, *api.Error) {
	body, _ := json.Marshal(api.BoundaryRequest{V: v, Dir: dir, Weight: weightName})
	rt.obs.shardCalls.With(fmt.Sprint(shard), "boundary").Inc()
	status, respBody, meta, err := rt.callShard(ctx, shard, http.MethodPost, "/shard/boundary", body)
	out := boundaryOut{meta: meta}
	if err != nil {
		return out, shardUnavailable(shard, err)
	}
	if status != http.StatusOK {
		return out, shardHTTPError(shard, status, respBody)
	}
	var resp api.BoundaryResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return out, shardProtocolError(shard, fmt.Sprintf("unreadable boundary response: %v", err))
	}
	if resp.Fingerprint != rt.sm.Fingerprint {
		return out, shardProtocolError(shard, fmt.Sprintf(
			"serves fingerprint %.12s, bundle is %.12s", resp.Fingerprint, rt.sm.Fingerprint))
	}
	if len(resp.Dist) != len(rt.sm.Boundary[shard]) {
		return out, shardProtocolError(shard, fmt.Sprintf(
			"boundary vector has %d entries, shard map says %d", len(resp.Dist), len(rt.sm.Boundary[shard])))
	}
	for i, d := range resp.Dist {
		if d < 0 {
			resp.Dist[i] = math.Inf(1)
		}
	}
	out.dist = resp.Dist
	return out, nil
}

// shardHTTPError relays a shard's own typed error; an unreadable body
// degrades to shard_unavailable.
func shardHTTPError(shard, status int, body []byte) *api.Error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		env.Error.Status = status
		return env.Error
	}
	return &api.Error{
		Status: http.StatusServiceUnavailable, Code: api.CodeShardUnavailable,
		Message: fmt.Sprintf("shard %d: HTTP %d with unreadable error body", shard, status),
	}
}

// shardProtocolError reports a shard answering outside the bundle's
// contract (wrong generation, malformed payload) as shard_unavailable:
// retrying may reach a recovered or re-deployed worker.
func shardProtocolError(shard int, msg string) *api.Error {
	return &api.Error{
		Status: http.StatusServiceUnavailable, Code: api.CodeShardUnavailable,
		Message: fmt.Sprintf("shard %d: %s", shard, msg),
	}
}

// fusedGraph is the corridor subgraph re-assembled under dense local IDs,
// with the translations back to global vertex and edge IDs.
type fusedGraph struct {
	g       *roadnet.Graph
	globalV []roadnet.VertexID
	globalE []roadnet.EdgeID
	local   map[int64]roadnet.VertexID
}

// crossShard answers a query whose endpoints live on different shards.
func (rt *Router) crossShard(ctx context.Context, q api.RankQuery, rs resolved, i, j int) (*api.RankResult, *api.Error) {
	genStart := time.Now()
	weightName := "length"
	D, total := rt.sm.DLen, rt.sm.TotalLen
	if rs.wk == pathrank.WeightTime {
		weightName = "time"
		D, total = rt.sm.DTime, rt.sm.TotalTime
	}

	// Boundary fan-out: the two endpoint shards, in parallel.
	var bi, bj boundaryOut
	var errI, errJ *api.Error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); bi, errI = rt.shardBoundary(ctx, i, rs.src, "fwd", weightName) }()
	go func() { defer wg.Done(); bj, errJ = rt.shardBoundary(ctx, j, rs.dst, "rev", weightName) }()
	wg.Wait()
	if errI != nil {
		return nil, errI
	}
	if errJ != nil {
		return nil, errJ
	}

	// Stitch: exact full-graph source/destination distances at every
	// separator vertex, via the precomputed boundary-to-boundary table.
	nb := len(rt.boundary)
	dS := make([]float64, nb)
	dT := make([]float64, nb)
	for b := range dS {
		dS[b] = math.Inf(1)
		dT[b] = math.Inf(1)
	}
	for ui, pu := range rt.shardBPos[i] {
		du := bi.dist[ui]
		if math.IsInf(du, 1) {
			continue
		}
		row := D[int(pu)*nb : (int(pu)+1)*nb]
		for b := 0; b < nb; b++ {
			if v := du + row[b]; v < dS[b] {
				dS[b] = v
			}
		}
	}
	for wi, pw := range rt.shardBPos[j] {
		dw := bj.dist[wi]
		if math.IsInf(dw, 1) {
			continue
		}
		for b := 0; b < nb; b++ {
			if v := D[b*nb+int(pw)] + dw; v < dT[b] {
				dT[b] = v
			}
		}
	}
	dstar := math.Inf(1)
	for b := 0; b < nb; b++ {
		if v := dS[b] + dT[b]; v < dstar {
			dstar = v
		}
	}
	if math.IsInf(dstar, 1) {
		return nil, &api.Error{
			Status: http.StatusNotFound, Code: api.CodeUnroutable,
			Message: fmt.Sprintf("no path from %d to %d", q.Src, q.Dst),
		}
	}

	// Corridor rounds: grow the bound until the enumeration certifies.
	// totalCap exceeds the cost of any loopless path, so the last round
	// always certifies (the corridor then holds the whole relevant
	// component and the restricted enumeration is the complete one).
	totalCap := total*(1+1e-6) + 1
	C := 2 * dstar
	if C <= 0 {
		C = 1
	}
	if C > totalCap {
		C = totalCap
	}
	corridorStats := make(map[int]*api.ShardStat)
	var fg *fusedGraph
	var cands []spath.Path
	accepted := false
	rounds := 0
	for r := 0; r < rt.cfg.MaxRounds && !accepted; r++ {
		rounds++
		if r == rt.cfg.MaxRounds-1 {
			C = totalCap
		}
		var apiErr *api.Error
		fg, apiErr = rt.extractCorridor(ctx, rs, dS, dT, C, weightName, i, j, corridorStats)
		if apiErr != nil {
			return nil, apiErr
		}
		var st spath.EnumStats
		var err error
		cands, st, err = rt.enumerate(ctx, fg, rs)
		if err != nil {
			return nil, apiErrorFrom(err)
		}
		switch {
		case !st.Exhausted && st.MaxCost*(1+1e-6) <= C:
			// The run never consumed a path near the bound: the corridor
			// could not have hidden anything it would have looked at.
			accepted = true
		case st.Exhausted && C >= total:
			// Every loopless path costs at most the total edge weight, so
			// the corridor holds all of them: the enumeration genuinely
			// ran dry, exactly as it would on the full graph.
			accepted = true
		default:
			C = math.Max(2*C, 2*st.MaxCost)
			if C > totalCap {
				C = totalCap
			}
		}
	}
	rt.obs.rounds.With().Observe(float64(rounds))
	if !accepted {
		return nil, &api.Error{
			Status: http.StatusInternalServerError, Code: api.CodeInternal,
			Message: fmt.Sprintf("corridor enumeration did not certify after %d rounds", rounds),
		}
	}
	genNs := time.Since(genStart).Nanoseconds()

	// Translate candidates to global IDs and score with the bundle model.
	// Lengths and times are computed on the corridor graph, whose edge
	// records are bit-for-bit the full graph's.
	scoreStart := time.Now()
	globalPaths := make([]spath.Path, len(cands))
	wire := make([]api.RankedPath, len(cands))
	for ci, p := range cands {
		gv := make([]roadnet.VertexID, len(p.Vertices))
		verts := make([]int64, len(p.Vertices))
		for vi, v := range p.Vertices {
			gv[vi] = fg.globalV[v]
			verts[vi] = int64(fg.globalV[v])
		}
		ge := make([]roadnet.EdgeID, len(p.Edges))
		for ei, e := range p.Edges {
			ge[ei] = fg.globalE[e]
		}
		globalPaths[ci] = spath.Path{Vertices: gv, Edges: ge, Cost: p.Cost}
		wire[ci] = api.RankedPath{
			LengthM:  p.Length(fg.g),
			TimeS:    p.Time(fg.g),
			Hops:     p.Len(),
			Vertices: verts,
		}
	}
	scores := rt.model.ScoreBatch(globalPaths)
	scoreNs := time.Since(scoreStart).Nanoseconds()
	// Order exactly as pathrank.RankScored does: stable sort, descending
	// score, so ties keep enumeration (cost) order.
	idx := make([]int, len(cands))
	for ci := range idx {
		idx[ci] = ci
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	paths := make([]api.RankedPath, len(cands))
	for rank, ci := range idx {
		p := wire[ci]
		p.Rank = rank + 1
		p.Score = scores[ci]
		paths[rank] = p
	}

	res := &api.RankResult{Src: q.Src, Dst: q.Dst, K: q.K, Paths: paths}
	if q.Explain {
		stats := &api.RankStats{
			Strategy:   rs.cfg.Strategy.String(),
			K:          rs.cfg.K,
			Threshold:  rs.cfg.Threshold,
			MaxProbe:   rs.cfg.MaxProbe,
			Weight:     rs.wk.String(),
			Engine:     spath.EngineDijkstra.String(),
			Candidates: len(cands),
			GenNs:      genNs,
			ScoreNs:    scoreNs,
			Route:      "cross_shard",
			Shards: []api.ShardStat{
				{Shard: i, Role: "boundary", Calls: bi.meta.calls, TotalNs: bi.meta.totalNs, Hedged: bi.meta.hedged},
				{Shard: j, Role: "boundary", Calls: bj.meta.calls, TotalNs: bj.meta.totalNs, Hedged: bj.meta.hedged},
			},
		}
		corr := make([]api.ShardStat, 0, len(corridorStats))
		for _, st := range corridorStats {
			corr = append(corr, *st)
		}
		sort.Slice(corr, func(a, b int) bool { return corr[a].Shard < corr[b].Shard })
		stats.Shards = append(stats.Shards, corr...)
		res.Stats = stats
	}
	return res, nil
}

// extractCorridor fans a corridor extraction at bound C out to every
// participating shard and fuses the responses with the qualifying cut
// edges into one sub-road-network.
func (rt *Router) extractCorridor(ctx context.Context, rs resolved, dS, dT []float64, C float64, weightName string, i, j int, stats map[int]*api.ShardStat) (*fusedGraph, *api.Error) {
	// A shard participates when some boundary vertex of it can lie on a
	// path within the bound; the endpoint shards always do.
	var parts []int
	for m := 0; m < rt.sm.Parts; m++ {
		if m == i || m == j {
			parts = append(parts, m)
			continue
		}
		for _, p := range rt.shardBPos[m] {
			if dS[p]+dT[p] <= C {
				parts = append(parts, m)
				break
			}
		}
	}

	responses := make([]*api.CorridorResponse, len(parts))
	errs := make([]*api.Error, len(parts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for pi, m := range parts {
		wg.Add(1)
		go func(pi, m int) {
			defer wg.Done()
			req := api.CorridorRequest{Bound: C, Weight: weightName}
			for bi, p := range rt.shardBPos[m] {
				if d := dS[p]; d <= C {
					req.Seeds = append(req.Seeds, api.ShardSeed{V: int64(rt.sm.Boundary[m][bi]), Dist: d})
				}
				if d := dT[p]; d <= C {
					req.RSeeds = append(req.RSeeds, api.ShardSeed{V: int64(rt.sm.Boundary[m][bi]), Dist: d})
				}
			}
			if m == i {
				req.Seeds = append(req.Seeds, api.ShardSeed{V: rs.src, Dist: 0})
			}
			if m == j {
				req.RSeeds = append(req.RSeeds, api.ShardSeed{V: rs.dst, Dist: 0})
			}
			body, _ := json.Marshal(req)
			rt.obs.shardCalls.With(fmt.Sprint(m), "corridor").Inc()
			status, respBody, meta, err := rt.callShard(ctx, m, http.MethodPost, "/shard/corridor", body)
			mu.Lock()
			st := stats[m]
			if st == nil {
				st = &api.ShardStat{Shard: m, Role: "corridor"}
				stats[m] = st
			}
			st.Calls += meta.calls
			st.TotalNs += meta.totalNs
			st.Hedged = st.Hedged || meta.hedged
			mu.Unlock()
			if err != nil {
				errs[pi] = shardUnavailable(m, err)
				return
			}
			if status != http.StatusOK {
				errs[pi] = shardHTTPError(m, status, respBody)
				return
			}
			var resp api.CorridorResponse
			if err := json.Unmarshal(respBody, &resp); err != nil {
				errs[pi] = shardProtocolError(m, fmt.Sprintf("unreadable corridor response: %v", err))
				return
			}
			if resp.Fingerprint != rt.sm.Fingerprint {
				errs[pi] = shardProtocolError(m, fmt.Sprintf(
					"serves fingerprint %.12s, bundle is %.12s", resp.Fingerprint, rt.sm.Fingerprint))
				return
			}
			responses[pi] = &resp
		}(pi, m)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return rt.fuse(responses, dS, dT, C, rs)
}

// fuse assembles the shard corridors and the qualifying cut edges into a
// dense sub-road-network. Shards own disjoint vertex sets, so the
// corridors are disjoint; cut edges are the only edges between them.
func (rt *Router) fuse(responses []*api.CorridorResponse, dS, dT []float64, C float64, rs resolved) (*fusedGraph, *api.Error) {
	var wireV []api.CorridorVertex
	var wireE []api.CorridorEdge
	for _, resp := range responses {
		wireV = append(wireV, resp.Vertices...)
		wireE = append(wireE, resp.Edges...)
	}
	// A cut edge joins the corridor when both endpoints can lie on a
	// bounded path; endpoints of cut edges are always boundary vertices,
	// so their exact distances are at hand.
	for _, e := range rt.sm.CutEdges {
		pu, pv := rt.bpos[e.From], rt.bpos[e.To]
		if dS[pu]+dT[pu] <= C && dS[pv]+dT[pv] <= C {
			wireE = append(wireE, api.CorridorEdge{
				ID: int64(e.ID), From: int64(e.From), To: int64(e.To),
				LengthM: e.Length, TimeS: e.Time, Category: uint8(e.Category),
			})
		}
	}
	sort.Slice(wireV, func(a, b int) bool { return wireV[a].ID < wireV[b].ID })
	sort.Slice(wireE, func(a, b int) bool { return wireE[a].ID < wireE[b].ID })

	fg := &fusedGraph{
		globalV: make([]roadnet.VertexID, len(wireV)),
		globalE: make([]roadnet.EdgeID, len(wireE)),
		local:   make(map[int64]roadnet.VertexID, len(wireV)),
	}
	vertices := make([]roadnet.Vertex, len(wireV))
	for li, v := range wireV {
		fg.globalV[li] = roadnet.VertexID(v.ID)
		fg.local[v.ID] = roadnet.VertexID(li)
		vertices[li] = roadnet.Vertex{ID: roadnet.VertexID(li), Point: geo.Point{Lon: v.Lon, Lat: v.Lat}}
	}
	edges := make([]roadnet.Edge, 0, len(wireE))
	for _, e := range wireE {
		lf, okF := fg.local[e.From]
		lt, okT := fg.local[e.To]
		if !okF || !okT {
			return nil, shardProtocolError(-1, fmt.Sprintf("corridor edge %d references vertex outside the fused corridor", e.ID))
		}
		fg.globalE[len(edges)] = roadnet.EdgeID(e.ID)
		edges = append(edges, roadnet.Edge{
			ID: roadnet.EdgeID(len(edges)), From: lf, To: lt,
			Length: e.LengthM, Time: e.TimeS, Category: roadnet.Category(e.Category),
		})
	}
	if _, ok := fg.local[rs.src]; !ok {
		return nil, shardProtocolError(int(rt.sm.Owner[rs.src]), "corridor response omits the source vertex")
	}
	if _, ok := fg.local[rs.dst]; !ok {
		return nil, shardProtocolError(int(rt.sm.Owner[rs.dst]), "corridor response omits the destination vertex")
	}
	fg.g = roadnet.NewGraphFromData(vertices, edges)
	return fg, nil
}

// enumerate runs the ordinary candidate generation on the fused corridor
// graph — the same code path a single-process server uses, with
// enumeration statistics for the certification check.
func (rt *Router) enumerate(ctx context.Context, fg *fusedGraph, rs resolved) ([]spath.Path, spath.EnumStats, error) {
	lsrc := fg.local[rs.src]
	ldst := fg.local[rs.dst]
	switch rs.cfg.Strategy {
	case dataset.TkDI:
		return spath.TopKStatsCtx(ctx, fg.g, lsrc, ldst, rs.cfg.K, rs.weight)
	case dataset.DTkDI:
		probe := rs.cfg.MaxProbe
		if probe <= 0 {
			probe = 10 * rs.cfg.K
		}
		sim := pathsim.WeightedJaccardSim(fg.g)
		return spath.DiversifiedTopKStatsCtx(ctx, fg.g, lsrc, ldst, rs.cfg.K, rs.weight, sim, rs.cfg.Threshold, probe)
	default:
		return nil, spath.EnumStats{}, fmt.Errorf("router: unknown candidate strategy %d", rs.cfg.Strategy)
	}
}
