package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/spath"
)

// resolved is a validated query with the effective candidate regime
// materialized — the router-side analogue of the serve layer's
// buildQuery plus the ranker's resolve, against the shard map instead of
// a local snapshot. The resolution rules are replicated exactly so a
// query answered by the router and the same query answered by a
// single-process server over the unpartitioned artifact agree.
type resolved struct {
	src, dst int64
	cfg      dataset.Config
	weight   spath.Weight
	wk       pathrank.WeightKind
}

// resolve validates q against the shard map and the router limits and
// materializes the effective candidate configuration.
func (rt *Router) resolve(q api.RankQuery) (resolved, *api.Error) {
	n := int64(rt.sm.NumVertices)
	if q.Src < 0 || q.Src >= n || q.Dst < 0 || q.Dst >= n {
		return resolved{}, invalidErrf("src/dst must be in [0,%d)", n)
	}
	if q.K < 0 || q.K > rt.cfg.MaxK {
		return resolved{}, invalidErrf("k must be in [0,%d]", rt.cfg.MaxK)
	}
	if q.Threshold < 0 || q.Threshold > 1 {
		return resolved{}, invalidErrf("threshold must be in (0,1], got %g", q.Threshold)
	}
	if q.MaxProbe < 0 {
		return resolved{}, invalidErrf("max_probe must be non-negative")
	}
	strategy, err := pathrank.ParseStrategyChoice(q.Strategy)
	if err != nil {
		return resolved{}, apiErrorFrom(err)
	}
	wk, err := pathrank.ParseWeightKind(q.Weight)
	if err != nil {
		return resolved{}, apiErrorFrom(err)
	}
	engine, err := pathrank.ParseEngineChoice(q.Engine)
	if err != nil {
		return resolved{}, apiErrorFrom(err)
	}
	if wk == pathrank.WeightTime && (engine == pathrank.EngineALT || engine == pathrank.EngineCH) {
		return resolved{}, invalidErrf(
			"engine %s serves the length metric; use weight=length or engine=dijkstra", engine)
	}
	// Shard workers carry CH preparation (the bundle builder always builds
	// it), never ALT — an explicit ALT request fails here exactly as it
	// would against a CH-prepared single server.
	if engine == pathrank.EngineALT {
		return resolved{}, invalidErrf("engine %s is not prepared for this snapshot", engine)
	}

	cfg := rt.sm.Candidates
	if cfg.K <= 0 {
		cfg = dataset.DefaultConfig()
	}
	switch strategy {
	case pathrank.StrategyTkDI:
		cfg.Strategy = dataset.TkDI
	case pathrank.StrategyDTkDI:
		cfg.Strategy = dataset.DTkDI
	}
	if q.K > 0 && q.K != cfg.K {
		if cfg.MaxProbe > 0 && cfg.K > 0 {
			cfg.MaxProbe = cfg.MaxProbe * q.K / cfg.K
		}
		cfg.K = q.K
	}
	if q.Threshold > 0 {
		cfg.Threshold = q.Threshold
	}
	if q.MaxProbe > 0 {
		cfg.MaxProbe = q.MaxProbe
	}

	weight := spath.ByLength
	if wk == pathrank.WeightTime {
		weight = spath.ByTime
	} else {
		wk = pathrank.WeightLength
	}
	return resolved{src: q.Src, dst: q.Dst, cfg: cfg, weight: weight, wk: wk}, nil
}

// requestContext mirrors the serve layer's deadline derivation.
func (rt *Router) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs <= 0 {
		return ctx, func() {}
	}
	d := time.Duration(timeoutMs) * time.Millisecond
	if d > rt.cfg.MaxTimeout {
		d = rt.cfg.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request) {
	rt.obs.requests.With("/v2/rank").Inc()
	var req api.RankRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRankBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		apiErr := invalidErrf("bad request body: %v", err)
		if errors.As(err, &tooBig) {
			apiErr = &api.Error{
				Status:  http.StatusRequestEntityTooLarge,
				Code:    api.CodeInvalid,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}
		}
		rt.obs.rankErrors.With(apiErr.Code).Inc()
		writeErr(w, apiErr)
		return
	}
	ctx, cancel := rt.requestContext(r, req.TimeoutMs)
	defer cancel()
	if req.Queries == nil {
		res, apiErr := rt.rankSingle(ctx, req.RankQuery)
		if apiErr != nil {
			rt.obs.rankErrors.With(apiErr.Code).Inc()
			writeErr(w, apiErr)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	rt.rankBatch(ctx, w, req.Queries)
}

// rankBatch answers a batch of queries with per-item errors; items run
// concurrently, bounded by GOMAXPROCS (each item fans out to shards on
// its own).
func (rt *Router) rankBatch(ctx context.Context, w http.ResponseWriter, queries []api.RankQuery) {
	if len(queries) > rt.cfg.MaxBatch {
		apiErr := invalidErrf("batch has %d queries, limit is %d", len(queries), rt.cfg.MaxBatch)
		rt.obs.rankErrors.With(apiErr.Code).Inc()
		writeErr(w, apiErr)
		return
	}
	items := make([]api.BatchItem, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			items[i].Index = i
			res, apiErr := rt.rankSingle(ctx, queries[i])
			if apiErr != nil {
				items[i].Error = apiErr
				return
			}
			items[i].Response = res
		}(i)
	}
	wg.Wait()
	nerr := 0
	for i := range items {
		if items[i].Error != nil {
			rt.obs.rankErrors.With(items[i].Error.Code).Inc()
			nerr++
		}
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: items, Errors: nerr})
}

// rankSingle answers one query: co-resident pairs are proxied to the
// owning shard, cross-shard pairs are corridor-stitched.
func (rt *Router) rankSingle(ctx context.Context, q api.RankQuery) (*api.RankResult, *api.Error) {
	rs, apiErr := rt.resolve(q)
	if apiErr != nil {
		return nil, apiErr
	}
	i := int(rt.sm.Owner[q.Src])
	j := int(rt.sm.Owner[q.Dst])
	if i == j {
		rt.obs.routed.With("co_shard").Inc()
		return rt.proxyRank(ctx, i, q)
	}
	rt.obs.routed.With("cross_shard").Inc()
	return rt.crossShard(ctx, q, rs, i, j)
}

// proxyRank forwards a co-resident query to the owning shard's own
// /v2/rank and stamps the routing stats in. The shard enumerates on its
// induced subgraph: the geometric partition keeps co-resident
// neighborhoods whole, so this is the intended serving semantics —
// candidates that would detour through a neighboring shard's territory
// and come back are not considered (unlike cross-shard queries, whose
// corridor stitching is exact; see docs/SHARDING.md).
func (rt *Router) proxyRank(ctx context.Context, shard int, q api.RankQuery) (*api.RankResult, *api.Error) {
	body, err := json.Marshal(api.RankRequest{RankQuery: q})
	if err != nil {
		return nil, &api.Error{Status: http.StatusInternalServerError, Code: api.CodeInternal, Message: err.Error()}
	}
	rt.obs.shardCalls.With(fmt.Sprint(shard), "proxy").Inc()
	status, respBody, meta, err := rt.callShard(ctx, shard, http.MethodPost, "/v2/rank", body)
	if err != nil {
		return nil, shardUnavailable(shard, err)
	}
	if status != http.StatusOK {
		var env api.ErrorEnvelope
		if err := json.Unmarshal(respBody, &env); err != nil || env.Error == nil {
			return nil, &api.Error{
				Status: http.StatusServiceUnavailable, Code: api.CodeShardUnavailable,
				Message: fmt.Sprintf("shard %d: HTTP %d with unreadable error body", shard, status),
			}
		}
		env.Error.Status = status
		return nil, env.Error
	}
	var res api.RankResult
	if err := json.Unmarshal(respBody, &res); err != nil {
		return nil, &api.Error{
			Status: http.StatusServiceUnavailable, Code: api.CodeShardUnavailable,
			Message: fmt.Sprintf("shard %d: unreadable rank response: %v", shard, err),
		}
	}
	if q.Explain {
		if res.Stats == nil {
			res.Stats = &api.RankStats{}
		}
		res.Stats.Route = "co_shard"
		res.Stats.Shards = append(res.Stats.Shards, api.ShardStat{
			Shard: shard, Role: "proxy", Calls: meta.calls, TotalNs: meta.totalNs, Hedged: meta.hedged,
		})
	}
	return &res, nil
}
