package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/partition"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/serve"
	"pathrank/internal/shardserve"
)

// deployment is one full sharded topology over httptest servers — shard
// workers, the router over them, and a single-process reference server
// over the same unpartitioned artifact for bit-identity checks.
type deployment struct {
	sm        *partition.ShardMap
	router    *httptest.Server
	shards    []*httptest.Server
	reference *httptest.Server
}

// buildDeployment partitions a jittered random grid into parts shards and
// stands the whole serving tier up in-process. Continuous jittered
// coordinates make edge weights continuous, so shortest paths are unique
// with probability one and exact path/score comparisons are meaningful.
func buildDeployment(t testing.TB, seed int64, parts int) *deployment {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 8, Cols: 9, SpacingM: 220, JitterFrac: 0.3,
		RemoveFrac: 0.07, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	model, err := pathrank.New(g.NumVertices(), pathrank.Config{
		EmbeddingDim: 8, Hidden: 6, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: seed,
	})
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	art := &pathrank.Artifact{
		Graph: g, Model: model,
		Candidates: dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8},
	}
	dir := t.TempDir()
	if _, err := partition.BuildBundle(art, dir, parts, nil); err != nil {
		t.Fatalf("bundle: %v", err)
	}

	d := &deployment{}
	urls := make([]string, parts)
	for i := 0; i < parts; i++ {
		sart, err := pathrank.LoadArtifactFile(dir + "/" + partition.ShardArtifactName(i))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		srv, err := serve.New(sart, serve.Config{})
		if err != nil {
			t.Fatalf("shard %d server: %v", i, err)
		}
		t.Cleanup(srv.Close)
		ss, err := shardserve.New(srv)
		if err != nil {
			t.Fatalf("shard %d worker: %v", i, err)
		}
		ts := httptest.NewServer(ss.Handler())
		t.Cleanup(ts.Close)
		d.shards = append(d.shards, ts)
		urls[i] = ts.URL
	}

	sm, err := partition.LoadShardMapFile(dir)
	if err != nil {
		t.Fatalf("shard map: %v", err)
	}
	d.sm = sm
	rt, err := New(sm, Config{Shards: urls, HedgeAfter: -1})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	d.router = httptest.NewServer(rt.Handler())
	t.Cleanup(d.router.Close)

	ref, err := serve.New(art, serve.Config{})
	if err != nil {
		t.Fatalf("reference server: %v", err)
	}
	t.Cleanup(ref.Close)
	d.reference = httptest.NewServer(ref.Handler())
	t.Cleanup(d.reference.Close)
	return d
}

// postRank POSTs one query to a server's /v2/rank and decodes either the
// result or the typed error envelope.
func postRank(t testing.TB, baseURL string, q api.RankQuery) (*api.RankResult, *api.Error, *http.Response) {
	t.Helper()
	body, err := json.Marshal(api.RankRequest{RankQuery: q})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v2/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var env api.ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
			t.Fatalf("HTTP %d with unparseable error body %q", resp.StatusCode, raw)
		}
		env.Error.Status = resp.StatusCode
		return nil, env.Error, resp
	}
	var res api.RankResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bad rank response %q: %v", raw, err)
	}
	return &res, nil, resp
}

// pairs returns deterministic OD pairs with the requested shard
// relationship (cross-shard or co-resident), up to max.
func (d *deployment) pairs(cross bool, max int) [][2]int64 {
	var out [][2]int64
	n := d.sm.NumVertices
	for src := 0; src < n && len(out) < max; src += 5 {
		for dst := 1; dst < n && len(out) < max; dst += 7 {
			if src == dst {
				continue
			}
			if (d.sm.Owner[src] != d.sm.Owner[dst]) == cross {
				out = append(out, [2]int64{int64(src), int64(dst)})
			}
		}
	}
	return out
}

// TestRouterCrossShardBitIdentity is the acceptance property: a
// cross-shard query answered by the router over corridor stitching must
// return exactly — paths AND scores, bit for bit — what a single-process
// server over the unpartitioned artifact returns, across random
// partitioned graphs, both candidate strategies, and many OD pairs.
func TestRouterCrossShardBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		parts int
	}{{5, 2}, {21, 3}} {
		t.Run(fmt.Sprintf("seed=%d/parts=%d", tc.seed, tc.parts), func(t *testing.T) {
			d := buildDeployment(t, tc.seed, tc.parts)
			pairs := d.pairs(true, 8)
			if len(pairs) < 4 {
				t.Fatalf("only %d cross-shard pairs; split degenerate", len(pairs))
			}
			nonEmpty := 0
			for _, p := range pairs {
				for _, strategy := range []string{"tkdi", "dtkdi"} {
					q := api.RankQuery{Src: p[0], Dst: p[1], K: 3, Strategy: strategy}
					got, gotErr, _ := postRank(t, d.router.URL, q)
					want, wantErr, _ := postRank(t, d.reference.URL, q)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%d->%d %s: router err %v, reference err %v", p[0], p[1], strategy, gotErr, wantErr)
					}
					if gotErr != nil {
						if gotErr.Code != wantErr.Code {
							t.Fatalf("%d->%d %s: router code %s, reference code %s", p[0], p[1], strategy, gotErr.Code, wantErr.Code)
						}
						continue
					}
					if !reflect.DeepEqual(got.Paths, want.Paths) {
						t.Fatalf("%d->%d %s: router paths diverge from single-process paths\nrouter:    %+v\nreference: %+v",
							p[0], p[1], strategy, got.Paths, want.Paths)
					}
					if len(got.Paths) > 0 {
						nonEmpty++
					}
				}
			}
			if nonEmpty == 0 {
				t.Fatal("every checked pair came back empty; test is vacuous")
			}
		})
	}
}

// TestRouterCoShardProxy checks co-resident routing: the router's answer
// is exactly the owning shard worker's own answer, and explain stats
// carry the route and the proxy call accounting.
func TestRouterCoShardProxy(t *testing.T) {
	d := buildDeployment(t, 5, 2)
	pairs := d.pairs(false, 4)
	if len(pairs) == 0 {
		t.Fatal("no co-resident pairs")
	}
	for _, p := range pairs {
		q := api.RankQuery{Src: p[0], Dst: p[1], K: 3, Explain: true}
		got, gotErr, _ := postRank(t, d.router.URL, q)
		if gotErr != nil {
			t.Fatalf("%d->%d: %v", p[0], p[1], gotErr)
		}
		shard := d.shards[d.sm.Owner[p[0]]]
		want, wantErr, _ := postRank(t, shard.URL, q)
		if wantErr != nil {
			t.Fatalf("%d->%d direct: %v", p[0], p[1], wantErr)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("%d->%d: proxied paths differ from the shard's own", p[0], p[1])
		}
		if got.Stats == nil || got.Stats.Route != "co_shard" {
			t.Fatalf("%d->%d: stats %+v, want route co_shard", p[0], p[1], got.Stats)
		}
		last := got.Stats.Shards[len(got.Stats.Shards)-1]
		if last.Role != "proxy" || last.Shard != int(d.sm.Owner[p[0]]) || last.Calls < 1 {
			t.Fatalf("%d->%d: proxy shard stat %+v", p[0], p[1], last)
		}
	}
}

// TestRouterCrossShardExplain checks the routed-stats surface of a
// stitched query: the route marker and the boundary + corridor shard
// breakdown the load generator aggregates.
func TestRouterCrossShardExplain(t *testing.T) {
	d := buildDeployment(t, 5, 2)
	pairs := d.pairs(true, 1)
	if len(pairs) == 0 {
		t.Fatal("no cross-shard pairs")
	}
	q := api.RankQuery{Src: pairs[0][0], Dst: pairs[0][1], K: 3, Explain: true}
	res, apiErr, _ := postRank(t, d.router.URL, q)
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if res.Stats == nil || res.Stats.Route != "cross_shard" {
		t.Fatalf("stats %+v, want route cross_shard", res.Stats)
	}
	roles := map[string]int{}
	for _, st := range res.Stats.Shards {
		roles[st.Role]++
		if st.Calls < 1 {
			t.Fatalf("shard stat %+v reports no calls", st)
		}
	}
	if roles["boundary"] != 2 {
		t.Fatalf("want 2 boundary sweeps (one per endpoint shard), got %+v", roles)
	}
	if roles["corridor"] < 2 {
		t.Fatalf("want corridor extraction on both endpoint shards, got %+v", roles)
	}
}

// TestRouterBatch posts a mixed batch — co-resident, cross-shard, and one
// invalid query — and checks per-item results and errors come back in
// order and match the single-query answers.
func TestRouterBatch(t *testing.T) {
	d := buildDeployment(t, 5, 2)
	co := d.pairs(false, 1)
	cross := d.pairs(true, 1)
	if len(co) == 0 || len(cross) == 0 {
		t.Fatal("degenerate split")
	}
	queries := []api.RankQuery{
		{Src: co[0][0], Dst: co[0][1], K: 3},
		{Src: cross[0][0], Dst: cross[0][1], K: 3},
		{Src: -1, Dst: 1},
	}
	body, err := json.Marshal(api.RankRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.router.URL+"/v2/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch HTTP %d", resp.StatusCode)
	}
	var batch api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 || batch.Errors != 1 {
		t.Fatalf("batch shape: %d results, %d errors", len(batch.Results), batch.Errors)
	}
	for i := 0; i < 2; i++ {
		item := batch.Results[i]
		if item.Index != i || item.Error != nil || item.Response == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		single, apiErr, _ := postRank(t, d.router.URL, queries[i])
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		if !reflect.DeepEqual(item.Response.Paths, single.Paths) {
			t.Fatalf("item %d diverges from its single-query answer", i)
		}
	}
	if bad := batch.Results[2]; bad.Error == nil || bad.Error.Code != api.CodeInvalid {
		t.Fatalf("invalid item: %+v", bad)
	}
}

// TestRouterShardDown kills one shard worker and checks the failure mode:
// queries needing it fail fast with the typed shard_unavailable code and
// a Retry-After, queries confined to live shards keep working, and the
// router's /healthz flips to degraded with the dead shard called out.
func TestRouterShardDown(t *testing.T) {
	d := buildDeployment(t, 5, 2)
	cross := d.pairs(true, 1)
	co := d.pairs(false, 8)
	if len(cross) == 0 || len(co) == 0 {
		t.Fatal("degenerate split")
	}
	d.shards[1].Close()

	_, apiErr, resp := postRank(t, d.router.URL, api.RankQuery{Src: cross[0][0], Dst: cross[0][1], K: 3})
	if apiErr == nil {
		t.Fatal("cross-shard query succeeded with a shard down")
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeShardUnavailable {
		t.Fatalf("want typed 503 %s, got %d %s: %s", api.CodeShardUnavailable, apiErr.Status, apiErr.Code, apiErr.Message)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shard_unavailable response carries no Retry-After")
	}

	// Traffic that never touches the dead shard still flows.
	served := 0
	for _, p := range co {
		if d.sm.Owner[p[0]] != 0 {
			continue
		}
		res, apiErr, _ := postRank(t, d.router.URL, api.RankQuery{Src: p[0], Dst: p[1], K: 3})
		if apiErr != nil {
			t.Fatalf("shard-0 query %d->%d failed: %v", p[0], p[1], apiErr)
		}
		_ = res
		served++
	}
	if served == 0 {
		t.Fatal("no shard-0 co-resident pairs exercised")
	}

	hresp, err := http.Get(d.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Parts  int    `json:"parts"`
		Shards []struct {
			Shard   int    `json:"shard"`
			Healthy bool   `json:"healthy"`
			Error   string `json:"error"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Parts != 2 {
		t.Fatalf("health %+v, want degraded over 2 parts", health)
	}
	for _, sh := range health.Shards {
		switch sh.Shard {
		case 0:
			if !sh.Healthy {
				t.Fatalf("live shard reported unhealthy: %+v", sh)
			}
		case 1:
			if sh.Healthy || sh.Error == "" {
				t.Fatalf("dead shard reported healthy: %+v", sh)
			}
		}
	}
}

// TestRouterValidation checks the router rejects what a single server
// rejects, with the same codes, before any shard is bothered.
func TestRouterValidation(t *testing.T) {
	d := buildDeployment(t, 5, 2)
	n := int64(d.sm.NumVertices)
	for _, tc := range []struct {
		name string
		q    api.RankQuery
	}{
		{"src out of range", api.RankQuery{Src: n, Dst: 1}},
		{"negative dst", api.RankQuery{Src: 0, Dst: -3}},
		{"k over cap", api.RankQuery{Src: 0, Dst: 1, K: 33}},
		{"bad strategy", api.RankQuery{Src: 0, Dst: 1, Strategy: "nope"}},
		{"alt not prepared", api.RankQuery{Src: 0, Dst: 1, Engine: "alt"}},
		{"time metric on ch", api.RankQuery{Src: 0, Dst: 1, Weight: "time", Engine: "ch"}},
	} {
		_, apiErr, _ := postRank(t, d.router.URL, tc.q)
		if apiErr == nil || apiErr.Code != api.CodeInvalid {
			t.Fatalf("%s: want %s, got %+v", tc.name, api.CodeInvalid, apiErr)
		}
		_, refErr, _ := postRank(t, d.reference.URL, tc.q)
		if refErr == nil || refErr.Code != apiErr.Code {
			t.Fatalf("%s: reference server disagrees: %+v vs %+v", tc.name, refErr, apiErr)
		}
	}
}

// benchDeployment builds one deployment for the routing benchmarks and
// returns a representative co-resident and cross-shard query.
func benchDeployment(b *testing.B) (*deployment, api.RankQuery, api.RankQuery) {
	d := buildDeployment(b, 5, 2)
	co := d.pairs(false, 1)
	cross := d.pairs(true, 1)
	if len(co) == 0 || len(cross) == 0 {
		b.Fatal("degenerate split")
	}
	return d,
		api.RankQuery{Src: co[0][0], Dst: co[0][1], K: 3},
		api.RankQuery{Src: cross[0][0], Dst: cross[0][1], K: 3}
}

func benchRank(b *testing.B, url string, q api.RankQuery) {
	b.Helper()
	body, err := json.Marshal(api.RankRequest{RankQuery: q})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url+"/v2/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
}

func BenchmarkRouterRankCoShard(b *testing.B) {
	d, co, _ := benchDeployment(b)
	benchRank(b, d.router.URL, co)
}

func BenchmarkRouterRankCrossShard(b *testing.B) {
	d, _, cross := benchDeployment(b)
	benchRank(b, d.router.URL, cross)
}
