// Package router implements the fan-out tier of a sharded PathRank
// deployment. A router owns no graph data beyond the shard map
// (internal/partition): vertex ownership, the boundary separator, its
// precomputed full-graph distance tables, the cut edges, and a copy of
// the ranking model. It answers the ordinary /v2/rank surface:
//
//   - co-resident queries (both endpoints on one shard) are proxied to
//     the owning shard worker's own /v2/rank, whole;
//   - cross-shard queries are stitched: boundary distance vectors from
//     the two endpoint shards, combined with the boundary-to-boundary
//     tables, give exact full-graph source/destination distances at
//     every separator vertex; a cost corridor extracted from each
//     participating shard is fused with the qualifying cut edges into a
//     sub-road-network on which the ordinary top-k enumeration runs.
//
// The corridor construction is exact, not approximate: the fused
// subgraph provably contains every vertex and edge of every loopless
// source→destination path of cost at most the corridor bound C, and the
// enumeration is accepted only when its statistics certify that no path
// outside the bound could have been accepted (otherwise C grows and the
// corridor is re-extracted). Paths and scores are therefore bit-identical
// to a single-process server over the unpartitioned graph.
//
// Shard calls are hedged: a call not answered within HedgeAfter fires a
// duplicate, and the first response wins; a shard that cannot be reached
// at all fails the query with the typed shard_unavailable code (503).
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/obsv"
	"pathrank/internal/partition"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
)

// maxRankBody mirrors internal/serve's request body bound.
const maxRankBody = 1 << 20

// maxShardResponse bounds a shard response body (corridor subgraphs of
// metro-scale shards are the large case).
const maxShardResponse = 1 << 30

// Config parameterizes a Router.
type Config struct {
	// Addr is the listen address for Run.
	Addr string
	// Shards maps shard index to the worker's base URL (e.g.
	// "http://10.0.0.3:8080"); its length must equal the bundle's Parts.
	Shards []string
	// HedgeAfter is how long a shard call may go unanswered before a
	// duplicate is fired (default 150ms; negative disables hedging).
	HedgeAfter time.Duration
	// CallTimeout bounds each individual shard call (default 10s).
	CallTimeout time.Duration
	// HealthInterval is the shard health poll period and the staleness
	// bound for /healthz's per-shard view (default 2s).
	HealthInterval time.Duration
	// MaxK, MaxBatch, MaxTimeout mirror the serve.Config limits (defaults
	// 32, 64, 30s) so a router validates exactly like a single server.
	MaxK       int
	MaxBatch   int
	MaxTimeout time.Duration
	// MaxRounds caps corridor growth rounds per cross-shard query
	// (default 8). The final round jumps the bound past the total edge
	// weight, so the enumeration is certified complete regardless.
	MaxRounds int
	// Metrics, when non-nil, is the registry the router registers its
	// metric families on; nil gives it a private one.
	Metrics *obsv.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is invoked with the bound address by Run.
	OnListen func(net.Addr)
}

// Router fans /v2/rank out over the shard workers of one bundle.
type Router struct {
	cfg   Config
	sm    *partition.ShardMap
	model *pathrank.Model
	start time.Time

	// boundary is the global separator in table order; bpos[v] is a
	// vertex's index into it (and into the D tables), -1 for non-boundary
	// vertices. shardBPos[s] lists shard s's boundary positions.
	boundary  []roadnet.VertexID
	bpos      []int32
	shardBPos [][]int32

	client *http.Client
	health []atomicHealth

	obs routerMetrics
}

type routerMetrics struct {
	reg         *obsv.Registry
	requests    *obsv.CounterVec
	rankErrors  *obsv.CounterVec
	routed      *obsv.CounterVec
	shardCalls  *obsv.CounterVec
	shardErrors *obsv.CounterVec
	hedges      *obsv.CounterVec
	rounds      *obsv.HistogramVec
}

// New builds a Router over a loaded shard map. shards in cfg.Shards must
// cover every shard of the bundle.
func New(sm *partition.ShardMap, cfg Config) (*Router, error) {
	if len(cfg.Shards) != sm.Parts {
		return nil, fmt.Errorf("router: bundle has %d shards, %d worker URLs configured", sm.Parts, len(cfg.Shards))
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	model, err := sm.Model()
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		sm:     sm,
		model:  model,
		start:  time.Now(),
		client: &http.Client{},
		health: make([]atomicHealth, sm.Parts),
	}
	rt.boundary = sm.GlobalBoundary()
	rt.bpos = make([]int32, sm.NumVertices)
	for i := range rt.bpos {
		rt.bpos[i] = -1
	}
	for i, v := range rt.boundary {
		rt.bpos[v] = int32(i)
	}
	rt.shardBPos = make([][]int32, sm.Parts)
	for s, list := range sm.Boundary {
		pos := make([]int32, len(list))
		for i, v := range list {
			pos[i] = rt.bpos[v]
		}
		rt.shardBPos[s] = pos
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	rt.obs = routerMetrics{
		reg:         reg,
		requests:    reg.Counter("pathrank_router_requests_total", "Router HTTP requests by path.", "path"),
		rankErrors:  reg.Counter("pathrank_router_rank_errors_total", "Failed rank queries by error code.", "code"),
		routed:      reg.Counter("pathrank_router_routed_total", "Rank queries by route kind.", "route"),
		shardCalls:  reg.Counter("pathrank_router_shard_calls_total", "Shard sub-query calls by shard and role.", "shard", "role"),
		shardErrors: reg.Counter("pathrank_router_shard_errors_total", "Failed shard calls by shard.", "shard"),
		hedges:      reg.Counter("pathrank_router_hedges_total", "Hedged (duplicated) shard calls by shard.", "shard"),
		rounds: reg.Histogram("pathrank_router_corridor_rounds", "Corridor growth rounds per cross-shard query.",
			[]float64{1, 2, 3, 4, 6, 8}),
	}
	return rt, nil
}

// Metrics returns the router's metric registry.
func (rt *Router) Metrics() *obsv.Registry { return rt.obs.reg }

// Handler returns the router's HTTP API: the public /v2/rank surface plus
// health and metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/rank", rt.handleRank)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		rt.obs.requests.With("/metrics").Inc()
		rt.obs.reg.ServeHTTP(w, r)
	})
	return mux
}

// Run listens on cfg.Addr and serves until ctx is canceled, polling shard
// health in the background.
func (rt *Router) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return fmt.Errorf("router: listen %s: %w", rt.cfg.Addr, err)
	}
	if rt.cfg.OnListen != nil {
		rt.cfg.OnListen(ln.Addr())
	}
	pollCtx, stopPoll := context.WithCancel(ctx)
	defer stopPoll()
	go rt.pollHealth(pollCtx)
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr := hs.Shutdown(shutCtx)
		<-errc
		return shutErr
	case err := <-errc:
		return err
	}
}

// ---- shard health ----

type shardHealth struct {
	checked time.Time
	err     string
	info    api.ShardInfoResponse
}

type atomicHealth struct {
	mu sync.Mutex
	h  *shardHealth
}

func (a *atomicHealth) load() *shardHealth {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.h
}

func (a *atomicHealth) store(h *shardHealth) {
	a.mu.Lock()
	a.h = h
	a.mu.Unlock()
}

// pollHealth refreshes every shard's health each HealthInterval.
func (rt *Router) pollHealth(ctx context.Context) {
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	rt.refreshHealth(ctx, false)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.refreshHealth(ctx, false)
		}
	}
}

// refreshHealth re-checks shards whose last check is older than the
// interval (all of them when none have been checked); onlyStale softens
// this to serve /healthz without a poller running.
func (rt *Router) refreshHealth(ctx context.Context, onlyStale bool) {
	var wg sync.WaitGroup
	for i := range rt.health {
		if onlyStale {
			if h := rt.health[i].load(); h != nil && time.Since(h.checked) < rt.cfg.HealthInterval {
				continue
			}
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rt.checkShard(ctx, shard)
		}(i)
	}
	wg.Wait()
}

func (rt *Router) checkShard(ctx context.Context, shard int) {
	cctx, cancel := context.WithTimeout(ctx, rt.cfg.CallTimeout)
	defer cancel()
	h := &shardHealth{checked: time.Now()}
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, rt.cfg.Shards[shard]+"/shard/info", nil)
	if err != nil {
		h.err = err.Error()
		rt.health[shard].store(h)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		h.err = err.Error()
		rt.health[shard].store(h)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch {
	case err != nil:
		h.err = err.Error()
	case resp.StatusCode != http.StatusOK:
		h.err = fmt.Sprintf("shard info: HTTP %d", resp.StatusCode)
	default:
		if err := json.Unmarshal(body, &h.info); err != nil {
			h.err = fmt.Sprintf("shard info: %v", err)
		} else if h.info.Shard != shard {
			h.err = fmt.Sprintf("worker identifies as shard %d, configured as %d", h.info.Shard, shard)
		} else if h.info.Fingerprint != rt.sm.Fingerprint {
			h.err = fmt.Sprintf("shard serves fingerprint %.12s, bundle is %.12s", h.info.Fingerprint, rt.sm.Fingerprint)
		}
	}
	rt.health[shard].store(h)
}

// routerHealth is the body of the router's GET /healthz: the same
// vertex/edge-bearing shape a single server reports (so clients like the
// load generator need no special casing), plus the per-shard view.
type routerHealth struct {
	Status           string        `json:"status"`
	Role             string        `json:"role"`
	APIVersions      []string      `json:"api_versions"`
	UptimeS          float64       `json:"uptime_s"`
	Vertices         int           `json:"vertices"`
	Edges            int           `json:"edges"`
	Parts            int           `json:"parts"`
	BoundaryVertices int           `json:"boundary_vertices"`
	CutEdges         int           `json:"cut_edges"`
	ModelParams      int           `json:"model_params"`
	Fingerprint      string        `json:"fingerprint"`
	Shards           []shardStatus `json:"shards"`
}

type shardStatus struct {
	Shard       int     `json:"shard"`
	URL         string  `json:"url"`
	Healthy     bool    `json:"healthy"`
	Error       string  `json:"error,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	CheckedAgoS float64 `json:"checked_ago_s,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.obs.requests.With("/healthz").Inc()
	rt.refreshHealth(r.Context(), true)
	resp := routerHealth{
		Status:           "ok",
		Role:             "router",
		APIVersions:      []string{"v2"},
		UptimeS:          time.Since(rt.start).Seconds(),
		Vertices:         rt.sm.NumVertices,
		Edges:            rt.sm.NumEdges,
		Parts:            rt.sm.Parts,
		BoundaryVertices: len(rt.boundary),
		CutEdges:         len(rt.sm.CutEdges),
		ModelParams:      rt.model.NumParams(),
		Fingerprint:      rt.sm.Fingerprint,
	}
	for i := range rt.health {
		st := shardStatus{Shard: i, URL: rt.cfg.Shards[i]}
		if h := rt.health[i].load(); h != nil {
			st.Healthy = h.err == ""
			st.Error = h.err
			st.Fingerprint = h.info.Fingerprint
			st.CheckedAgoS = time.Since(h.checked).Seconds()
		} else {
			st.Error = "not checked yet"
		}
		if !st.Healthy {
			resp.Status = "degraded"
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- shard calls with hedging ----

// callMeta accounts one logical shard call: how many HTTP attempts it
// took, their summed wall time, and whether the hedge fired.
type callMeta struct {
	calls   int
	totalNs int64
	hedged  bool
}

// callShard performs one logical call against a shard with hedged retry:
// a duplicate attempt fires when the first is still unanswered after
// HedgeAfter (or immediately, when the first fails at transport level);
// the first transport-level success wins, whatever its HTTP status.
func (rt *Router) callShard(ctx context.Context, shard int, method, path string, body []byte) (int, []byte, callMeta, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attemptResult struct {
		status int
		body   []byte
		ns     int64
		err    error
	}
	results := make(chan attemptResult, 2)
	attempt := func() {
		start := time.Now()
		actx, acancel := context.WithTimeout(cctx, rt.cfg.CallTimeout)
		defer acancel()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, method, rt.cfg.Shards[shard]+path, rd)
		if err != nil {
			results <- attemptResult{err: err, ns: time.Since(start).Nanoseconds()}
			return
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			results <- attemptResult{err: err, ns: time.Since(start).Nanoseconds()}
			return
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
		resp.Body.Close()
		if err != nil {
			results <- attemptResult{err: err, ns: time.Since(start).Nanoseconds()}
			return
		}
		results <- attemptResult{status: resp.StatusCode, body: b, ns: time.Since(start).Nanoseconds()}
	}

	meta := callMeta{calls: 1}
	inflight := 1
	go attempt()
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case r := <-results:
			inflight--
			meta.totalNs += r.ns
			if r.err == nil {
				return r.status, r.body, meta, nil
			}
			lastErr = r.err
			if meta.calls < 2 && ctx.Err() == nil {
				// The first attempt failed outright: retry immediately
				// instead of waiting for the hedge timer.
				meta.calls++
				inflight++
				hedgeC = nil
				go attempt()
				continue
			}
			if inflight == 0 {
				rt.obs.shardErrors.With(fmt.Sprint(shard)).Inc()
				return 0, nil, meta, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			meta.calls++
			meta.hedged = true
			inflight++
			rt.obs.hedges.With(fmt.Sprint(shard)).Inc()
			go attempt()
		case <-ctx.Done():
			rt.obs.shardErrors.With(fmt.Sprint(shard)).Inc()
			return 0, nil, meta, ctx.Err()
		}
	}
}

// shardUnavailable wraps a transport-level shard failure in the typed
// error clients retry on.
func shardUnavailable(shard int, err error) *api.Error {
	code := api.CodeShardUnavailable
	if errors.Is(err, context.DeadlineExceeded) {
		code = api.CodeDeadline
	} else if errors.Is(err, context.Canceled) {
		code = api.CodeCanceled
	}
	return &api.Error{
		Status:  api.HTTPStatus(code),
		Code:    code,
		Message: fmt.Sprintf("shard %d unreachable: %v", shard, err),
	}
}

// ---- shared HTTP helpers (mirroring internal/serve's v2 plumbing) ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, e *api.Error) {
	if e.Status == 0 {
		e.Status = api.HTTPStatus(e.Code)
	}
	if e.Code == api.CodeBacklog || e.Code == api.CodeShardUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}

func invalidErrf(format string, args ...any) *api.Error {
	return &api.Error{
		Status:  http.StatusBadRequest,
		Code:    api.CodeInvalid,
		Message: fmt.Sprintf(format, args...),
	}
}

func apiErrorFrom(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	code := pathrank.ErrorCodeOf(err)
	return &api.Error{Status: api.HTTPStatus(code), Code: code, Message: err.Error()}
}
