// Package dataset turns trajectories into PathRank training data.
//
// For each trajectory path P_T from s to d, a candidate set is generated
// with one of the paper's two strategies — top-k shortest paths (TkDI) or
// diversified top-k shortest paths (D-TkDI) — and every candidate P is
// labeled with its ground-truth ranking score WeightedJaccard(P, P_T). The
// trajectory path itself is included as a candidate with label 1, so the
// model sees at least one perfectly ranked example per query.
package dataset

import (
	"fmt"
	"math/rand"

	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// Strategy selects the candidate-generation scheme.
type Strategy int

// Candidate-generation strategies from the paper.
const (
	// TkDI is plain top-k shortest paths by distance.
	TkDI Strategy = iota
	// DTkDI is diversified top-k shortest paths by distance.
	DTkDI
)

// String names the strategy as in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case TkDI:
		return "TkDI"
	case DTkDI:
		return "D-TkDI"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Instance is one training/evaluation example: a candidate path with its
// ground-truth ranking score and auxiliary path statistics (used by the
// multi-task extension).
type Instance struct {
	Path  spath.Path
	Label float64 // WeightedJaccard(candidate, trajectory path)

	// Auxiliary regression targets, each normalized to (0,1]: the ratio of
	// the query's minimum to this candidate's value, so the best candidate
	// scores 1.
	LengthRatio float64
	TimeRatio   float64
}

// Query groups the candidate instances generated for one trajectory.
type Query struct {
	Source      roadnet.VertexID
	Destination roadnet.VertexID
	Truth       spath.Path
	Candidates  []Instance
}

// Config parameterizes training-data generation.
type Config struct {
	Strategy  Strategy
	K         int     // candidate-set size
	Threshold float64 // D-TkDI similarity threshold
	MaxProbe  int     // D-TkDI enumeration bound (0 = 10*K)
	// IncludeTruth appends the trajectory path itself (label 1) to the
	// candidate set when the generator did not already produce it.
	IncludeTruth bool
}

// DefaultConfig returns the paper's setup: diversified top-k with k=5.
func DefaultConfig() Config {
	return Config{Strategy: DTkDI, K: 5, Threshold: 0.8, IncludeTruth: true}
}

// Generate builds one Query per trip. Trips whose OD pair admits no path
// under the generator are skipped with an error only if all trips fail.
func Generate(g *roadnet.Graph, trips []traj.Trip, cfg Config) ([]Query, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("dataset: K must be positive, got %d", cfg.K)
	}
	sim := pathsim.WeightedJaccardSim(g)
	queries := make([]Query, 0, len(trips))
	for _, tr := range trips {
		src, dst := tr.Path.Source(), tr.Path.Destination()
		var cands []spath.Path
		var err error
		switch cfg.Strategy {
		case TkDI:
			cands, err = spath.TopK(g, src, dst, cfg.K, spath.ByLength)
		case DTkDI:
			probe := cfg.MaxProbe
			if probe <= 0 {
				probe = 10 * cfg.K
			}
			cands, err = spath.DiversifiedTopK(g, src, dst, cfg.K, spath.ByLength, sim, cfg.Threshold, probe)
		default:
			return nil, fmt.Errorf("dataset: unknown strategy %d", cfg.Strategy)
		}
		if err != nil {
			continue
		}
		if cfg.IncludeTruth {
			found := false
			for _, c := range cands {
				if c.Equal(tr.Path) {
					found = true
					break
				}
			}
			if !found {
				cands = append(cands, tr.Path)
			}
		}
		q := Query{Source: src, Destination: dst, Truth: tr.Path}
		minLen, minTime := minStats(g, cands)
		for _, c := range cands {
			inst := Instance{
				Path:        c,
				Label:       sim(c, tr.Path),
				LengthRatio: minLen / c.Length(g),
				TimeRatio:   minTime / c.Time(g),
			}
			q.Candidates = append(q.Candidates, inst)
		}
		queries = append(queries, q)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("dataset: no usable queries generated from %d trips", len(trips))
	}
	return queries, nil
}

func minStats(g *roadnet.Graph, paths []spath.Path) (minLen, minTime float64) {
	minLen, minTime = -1, -1
	for _, p := range paths {
		if l := p.Length(g); minLen < 0 || l < minLen {
			minLen = l
		}
		if t := p.Time(g); minTime < 0 || t < minTime {
			minTime = t
		}
	}
	return minLen, minTime
}

// Split partitions queries into train and test sets by query (never by
// candidate, which would leak candidates of the same trajectory across the
// split). testFrac is clamped to [0,1].
func Split(queries []Query, testFrac float64, seed int64) (train, test []Query) {
	if testFrac < 0 {
		testFrac = 0
	}
	if testFrac > 1 {
		testFrac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(queries))
	nTest := int(float64(len(queries)) * testFrac)
	for i, pi := range perm {
		if i < nTest {
			test = append(test, queries[pi])
		} else {
			train = append(train, queries[pi])
		}
	}
	return train, test
}

// Stats summarizes a query set for logging.
type Stats struct {
	Queries       int
	Candidates    int
	MeanPerQuery  float64
	MeanPathHops  float64
	MeanLabel     float64
	MeanDiversity float64 // mean pairwise weighted Jaccard within queries
}

// Describe computes Stats over queries.
func Describe(g *roadnet.Graph, queries []Query) Stats {
	var s Stats
	s.Queries = len(queries)
	var hops, labels float64
	var divSum float64
	var divCnt int
	sim := pathsim.WeightedJaccardSim(g)
	for _, q := range queries {
		s.Candidates += len(q.Candidates)
		for _, c := range q.Candidates {
			hops += float64(c.Path.Len())
			labels += c.Label
		}
		for i := range q.Candidates {
			for j := i + 1; j < len(q.Candidates); j++ {
				divSum += sim(q.Candidates[i].Path, q.Candidates[j].Path)
				divCnt++
			}
		}
	}
	if s.Candidates > 0 {
		s.MeanPerQuery = float64(s.Candidates) / float64(s.Queries)
		s.MeanPathHops = hops / float64(s.Candidates)
		s.MeanLabel = labels / float64(s.Candidates)
	}
	if divCnt > 0 {
		s.MeanDiversity = divSum / float64(divCnt)
	}
	return s
}
