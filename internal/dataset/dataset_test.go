package dataset

import (
	"math"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

func testNet(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: 10, Cols: 10, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.08, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 31,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

func testTrips(t testing.TB, g *roadnet.Graph, n int) []traj.Trip {
	t.Helper()
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: n, Seed: 32})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: 2, MinHops: 4, Seed: 33})
	if err != nil {
		t.Fatalf("trips: %v", err)
	}
	return trips
}

func TestGenerateTkDI(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 4)
	queries, err := Generate(g, trips, Config{Strategy: TkDI, K: 4, IncludeTruth: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(queries) != len(trips) {
		t.Fatalf("got %d queries for %d trips", len(queries), len(trips))
	}
	for qi, q := range queries {
		if len(q.Candidates) < 2 {
			t.Fatalf("query %d has %d candidates", qi, len(q.Candidates))
		}
		hasTruth := false
		for _, c := range q.Candidates {
			if c.Label < 0 || c.Label > 1+1e-12 {
				t.Fatalf("query %d label %v outside [0,1]", qi, c.Label)
			}
			if c.Path.Source() != q.Source || c.Path.Destination() != q.Destination {
				t.Fatalf("query %d candidate endpoints mismatch", qi)
			}
			if math.Abs(c.Label-1) < 1e-12 {
				hasTruth = true
			}
			if c.LengthRatio <= 0 || c.LengthRatio > 1+1e-12 {
				t.Fatalf("query %d LengthRatio %v outside (0,1]", qi, c.LengthRatio)
			}
			if c.TimeRatio <= 0 || c.TimeRatio > 1+1e-12 {
				t.Fatalf("query %d TimeRatio %v outside (0,1]", qi, c.TimeRatio)
			}
		}
		if !hasTruth {
			t.Fatalf("query %d lacks a label-1 candidate despite IncludeTruth", qi)
		}
	}
}

func TestGenerateDTkDIIsMoreDiverse(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 5)
	plain, err := Generate(g, trips, Config{Strategy: TkDI, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := Generate(g, trips, Config{Strategy: DTkDI, K: 5, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	sp := Describe(g, plain)
	sd := Describe(g, diverse)
	if sd.MeanDiversity > sp.MeanDiversity+1e-9 {
		t.Fatalf("D-TkDI mean pairwise similarity %.3f should be <= TkDI %.3f",
			sd.MeanDiversity, sp.MeanDiversity)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 2)
	if _, err := Generate(g, trips, Config{Strategy: TkDI, K: 0}); err == nil {
		t.Fatal("K=0 should be rejected")
	}
	if _, err := Generate(g, trips, Config{Strategy: Strategy(99), K: 3}); err == nil {
		t.Fatal("unknown strategy should be rejected")
	}
}

func TestGenerateLabelsOrderedByOverlap(t *testing.T) {
	// The trajectory path itself must have the top label in each query.
	g := testNet(t)
	trips := testTrips(t, g, 4)
	queries, err := Generate(g, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		best := -1.0
		for _, c := range q.Candidates {
			if c.Label > best {
				best = c.Label
			}
		}
		if math.Abs(best-1) > 1e-12 {
			t.Fatalf("query %d best label %v, want 1 (truth included)", qi, best)
		}
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 6)
	queries, err := Generate(g, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(queries, 0.25, 7)
	if len(train)+len(test) != len(queries) {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), len(queries))
	}
	wantTest := int(float64(len(queries)) * 0.25)
	if len(test) != wantTest {
		t.Fatalf("test size %d, want %d", len(test), wantTest)
	}
}

func TestSplitDeterministic(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 4)
	queries, _ := Generate(g, trips, DefaultConfig())
	tr1, te1 := Split(queries, 0.5, 9)
	tr2, te2 := Split(queries, 0.5, 9)
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("same seed produced different split sizes")
	}
	for i := range te1 {
		if te1[i].Source != te2[i].Source || te1[i].Destination != te2[i].Destination {
			t.Fatal("same seed produced different splits")
		}
	}
}

func TestSplitClampsFraction(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 2)
	queries, _ := Generate(g, trips, DefaultConfig())
	train, test := Split(queries, -0.5, 1)
	if len(test) != 0 || len(train) != len(queries) {
		t.Fatal("negative fraction should put everything in train")
	}
	train, test = Split(queries, 2.0, 1)
	if len(train) != 0 || len(test) != len(queries) {
		t.Fatal("fraction >1 should put everything in test")
	}
}

func TestStrategyString(t *testing.T) {
	if TkDI.String() != "TkDI" || DTkDI.String() != "D-TkDI" {
		t.Fatalf("strategy names: %s, %s", TkDI, DTkDI)
	}
}

func TestDescribeCounts(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 3)
	queries, _ := Generate(g, trips, DefaultConfig())
	s := Describe(g, queries)
	if s.Queries != len(queries) {
		t.Fatalf("stats queries %d, want %d", s.Queries, len(queries))
	}
	if s.Candidates <= 0 || s.MeanPerQuery <= 1 {
		t.Fatalf("stats candidates %d per-query %.2f", s.Candidates, s.MeanPerQuery)
	}
	if s.MeanLabel <= 0 || s.MeanLabel > 1 {
		t.Fatalf("mean label %v outside (0,1]", s.MeanLabel)
	}
}
