package dataset

import (
	"fmt"
	"math/rand"
)

// Fold is one cross-validation fold.
type Fold struct {
	Train []Query
	Test  []Query
}

// KFold partitions queries into k cross-validation folds with a
// deterministic shuffle. Every query appears in exactly one test set.
func KFold(queries []Query, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k-fold needs k >= 2, got %d", k)
	}
	if len(queries) < k {
		return nil, fmt.Errorf("dataset: %d queries cannot fill %d folds", len(queries), k)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(queries))
	folds := make([]Fold, k)
	for i, pi := range perm {
		f := i % k
		folds[f].Test = append(folds[f].Test, queries[pi])
	}
	for f := range folds {
		for other := range folds {
			if other != f {
				folds[f].Train = append(folds[f].Train, folds[other].Test...)
			}
		}
	}
	return folds, nil
}
