package dataset

import "testing"

func TestKFoldPartition(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 6)
	queries, err := Generate(g, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	folds, err := KFold(queries, k, 7)
	if err != nil {
		t.Fatalf("KFold: %v", err)
	}
	if len(folds) != k {
		t.Fatalf("got %d folds, want %d", len(folds), k)
	}
	// Every query appears in exactly one test set.
	seen := map[int]int{}
	key := func(q Query) int { return int(q.Source)<<16 | int(q.Destination) }
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != len(queries) {
			t.Fatalf("fold sizes %d+%d != %d", len(f.Train), len(f.Test), len(queries))
		}
		for _, q := range f.Test {
			seen[key(q)]++
		}
		// Train and test within a fold must be disjoint.
		inTest := map[int]bool{}
		for _, q := range f.Test {
			inTest[key(q)] = true
		}
		for _, q := range f.Train {
			if inTest[key(q)] {
				t.Fatal("query appears in both train and test of one fold")
			}
		}
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != len(queries) {
		t.Fatalf("test sets cover %d query instances, want %d", total, len(queries))
	}
}

func TestKFoldDeterministic(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 4)
	queries, _ := Generate(g, trips, DefaultConfig())
	f1, err := KFold(queries, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := KFold(queries, 2, 9)
	for i := range f1 {
		if len(f1[i].Test) != len(f2[i].Test) {
			t.Fatal("same seed produced different folds")
		}
		for j := range f1[i].Test {
			if f1[i].Test[j].Source != f2[i].Test[j].Source {
				t.Fatal("same seed produced different fold contents")
			}
		}
	}
}

func TestKFoldRejectsBadK(t *testing.T) {
	g := testNet(t)
	trips := testTrips(t, g, 2)
	queries, _ := Generate(g, trips, DefaultConfig())
	if _, err := KFold(queries, 1, 1); err == nil {
		t.Fatal("k=1 should be rejected")
	}
	if _, err := KFold(queries[:1], 2, 1); err == nil {
		t.Fatal("more folds than queries should be rejected")
	}
}
