// Package api defines the wire types and error model of the versioned
// PathRank query API. It is the single vocabulary shared by the HTTP
// server (internal/serve), the Go client SDK (pathrank.Client at the
// module root), and the CLIs — so a request marshaled by the client is by
// construction the request the server decodes, and error codes survive the
// HTTP round-trip intact.
//
// The package is a leaf: plain data types, JSON tags, and the code→status
// mapping. It imports nothing from the rest of the module.
package api

import (
	"fmt"
	"net/http"
)

// Error codes of the query API. Every failure a client can observe carries
// exactly one of these; HTTPStatus maps them onto response statuses.
const (
	// CodeInvalid reports a malformed or out-of-range request (bad vertex
	// IDs, unknown strategy, k over the server limit, ...).
	CodeInvalid = "invalid_request"
	// CodeUnroutable reports an origin-destination pair with no connecting
	// path in the road network.
	CodeUnroutable = "unroutable"
	// CodeDeadline reports a query abandoned because its deadline expired
	// mid-computation.
	CodeDeadline = "deadline_exceeded"
	// CodeCanceled reports a query abandoned because the caller canceled
	// it (e.g. the client disconnected).
	CodeCanceled = "canceled"
	// CodeBacklog reports a server too loaded to accept the work right
	// now; the client should retry after a short delay.
	CodeBacklog = "backlog"
	// CodeShardUnavailable reports that a sharded deployment's router
	// could not reach a shard the query needs (down, draining, or serving
	// a different bundle generation); the client should retry after a
	// short delay, like CodeBacklog.
	CodeShardUnavailable = "shard_unavailable"
	// CodeInternal reports an unexpected server-side failure.
	CodeInternal = "internal"
)

// HTTPStatus maps an error code onto its HTTP response status.
func HTTPStatus(code string) int {
	switch code {
	case CodeInvalid:
		return http.StatusBadRequest
	case CodeUnroutable:
		return http.StatusNotFound
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return http.StatusRequestTimeout
	case CodeBacklog, CodeShardUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Error is a typed API failure: the wire error body of v2 responses and
// the error value the client SDK returns for non-2xx responses.
type Error struct {
	// Status is the HTTP status the error traveled with; zero when the
	// error has not crossed the wire (it is derivable from Code).
	Status int `json:"-"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("pathrank api: %s (%s)", e.Message, e.Code)
}

// ErrorEnvelope is the body of a non-2xx v2 response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// RankQuery is one origin-destination ranking query of POST /v2/rank.
// Every field except Src and Dst is optional; zero values select the
// serving snapshot's defaults.
type RankQuery struct {
	Src int64 `json:"src"`
	Dst int64 `json:"dst"`
	// K overrides the candidate-set size.
	K int `json:"k,omitempty"`
	// Strategy selects the candidate generator: "tkdi" (plain top-k) or
	// "dtkdi" (diversified top-k).
	Strategy string `json:"strategy,omitempty"`
	// Threshold overrides the D-TkDI similarity threshold (0, 1].
	Threshold float64 `json:"threshold,omitempty"`
	// MaxProbe overrides the D-TkDI enumeration budget.
	MaxProbe int `json:"max_probe,omitempty"`
	// Weight selects the edge metric: "length" (meters, the default) or
	// "time" (free-flow seconds).
	Weight string `json:"weight,omitempty"`
	// Engine selects the shortest-path backend: "auto" (the snapshot's
	// prepared engine, default), "dijkstra" (no preprocessing), or the
	// prepared kind by name ("ch", "alt").
	Engine string `json:"engine,omitempty"`
	// Explain requests candidate-generation statistics in the response.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMs bounds the server-side computation in milliseconds; the
	// query fails with CodeDeadline when it expires. For batch requests
	// only the top-level timeout applies.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// RankRequest is the body of POST /v2/rank: either one inline query or a
// batch under "queries" (the inline fields are then ignored, except the
// top-level TimeoutMs). A present-but-empty "queries" array is an empty
// batch, not a single query.
type RankRequest struct {
	RankQuery
	Queries []RankQuery `json:"queries,omitempty"`
}

// RankedPath is one ranked candidate, best first.
type RankedPath struct {
	Rank     int     `json:"rank"`
	Score    float64 `json:"score"`
	LengthM  float64 `json:"length_m"`
	TimeS    float64 `json:"time_s"`
	Hops     int     `json:"hops"`
	Vertices []int64 `json:"vertices"`
}

// RankStats describes how a ranking was produced; present when the query
// set Explain and this response actually computed something — cached and
// singleflight-shared results omit stats entirely, since the responding
// request generated nothing.
type RankStats struct {
	Strategy   string  `json:"strategy"`
	K          int     `json:"k"`
	Threshold  float64 `json:"threshold,omitempty"`
	MaxProbe   int     `json:"max_probe,omitempty"`
	Weight     string  `json:"weight"`
	Engine     string  `json:"engine"`
	Candidates int     `json:"candidates"`
	GenNs      int64   `json:"generation_ns,omitempty"`
	ScoreNs    int64   `json:"score_ns,omitempty"`
	// Route classifies how a sharded deployment answered the query:
	// "co_shard" (both endpoints on one shard, proxied whole) or
	// "cross_shard" (corridor-stitched across shards). Empty outside a
	// sharded deployment.
	Route string `json:"route,omitempty"`
	// Shards is the per-shard latency breakdown of a routed query.
	Shards []ShardStat `json:"shards,omitempty"`
}

// ShardStat is one shard's contribution to a routed query: which shard,
// what it was asked for, and how long its calls took (including the
// router's queueing and network time, so the sum can exceed the shard's
// own server-side numbers).
type ShardStat struct {
	// Shard is the shard index in the bundle.
	Shard int `json:"shard"`
	// Role is what the shard computed: "proxy" (full co-resident query),
	// "boundary" (boundary distance vector), or "corridor" (corridor
	// subgraph extraction; repeated rounds accumulate).
	Role string `json:"role"`
	// Calls is the number of HTTP calls made to this shard for the query,
	// counting hedged duplicates.
	Calls int `json:"calls"`
	// TotalNs is the summed wall time of those calls as seen by the router.
	TotalNs int64 `json:"total_ns"`
	// Hedged reports whether any call to this shard fired its hedge.
	Hedged bool `json:"hedged,omitempty"`
}

// RankResult is one successful ranking: the body of a single-query v2
// response and the per-item payload of a batch response.
type RankResult struct {
	Src    int64        `json:"src"`
	Dst    int64        `json:"dst"`
	K      int          `json:"k"`
	Cached bool         `json:"cached"`
	Shared bool         `json:"shared,omitempty"`
	Paths  []RankedPath `json:"paths"`
	Stats  *RankStats   `json:"stats,omitempty"`
}

// BatchItem is one entry of a batch response: exactly one of Response and
// Error is set. Index is the query's position in the request, so clients
// can correlate even if they filter.
type BatchItem struct {
	Index    int         `json:"index"`
	Response *RankResult `json:"response,omitempty"`
	Error    *Error      `json:"error,omitempty"`
}

// BatchResponse is the body of a batch POST /v2/rank. The HTTP status is
// 200 whenever the batch itself was processed; per-item failures are
// reported inline with their own codes.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// Errors counts the items that failed.
	Errors int `json:"errors"`
}

// WALStatus describes the trajectory write-ahead log behind a live
// pipeline: segment inventory, append/sync frontier, and what crash
// recovery found at startup. Embedded in ProvenanceInfo and in the
// health response when the WAL is enabled.
type WALStatus struct {
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// LastIndex is the highest record index appended; SyncedIndex is the
	// highest known durable (fsynced). LastIndex-SyncedIndex records would
	// be lost to a crash right now.
	LastIndex   uint64 `json:"last_index"`
	SyncedIndex uint64 `json:"synced_index"`
	// FsyncPolicy is the configured durability mode ("always", "batch",
	// "interval").
	FsyncPolicy string `json:"fsync_policy"`
	// Fsyncs counts fsync calls; FsyncMeanUs is their mean latency in
	// microseconds (0 until the first fsync).
	Fsyncs      int64   `json:"fsyncs"`
	FsyncMeanUs float64 `json:"fsync_mean_us"`
	// RecoveredRecords is how many records crash recovery replayed at
	// startup; TornBytes is how many trailing bytes of a torn final write
	// it discarded.
	RecoveredRecords int   `json:"recovered_records"`
	TornBytes        int64 `json:"torn_bytes"`
	// AppendErrors counts WAL append failures; each failing observation is
	// parked for degraded-mode re-sync rather than dropped (see
	// PipelineHealth).
	AppendErrors int64 `json:"append_errors"`
}

// Pipeline health states reported in PipelineHealth.State and mirrored
// into the top-level /healthz status.
const (
	// PipelineReady means the live pipeline is fully operational.
	PipelineReady = "ready"
	// PipelineDegraded means the pipeline is running in degraded mode:
	// WAL writes are failing, accepted observations are parked in memory,
	// and a background loop is retrying until the disk recovers.
	PipelineDegraded = "degraded"
)

// PipelineHealth is the live pipeline's self-reported health, embedded in
// the /healthz response when a pipeline backs the server. The serve layer
// mirrors a degraded state into the top-level health status so ordinary
// liveness probes see it without parsing this structure.
type PipelineHealth struct {
	// State is PipelineReady or PipelineDegraded.
	State string `json:"state"`
	// Reason describes the fault behind a degraded state (e.g. the last
	// WAL append error).
	Reason string `json:"reason,omitempty"`
	// DegradedForS is how long the pipeline has been degraded, in seconds.
	DegradedForS float64 `json:"degraded_for_s,omitempty"`
	// Parked is the number of observations held in the bounded in-memory
	// buffer awaiting WAL re-sync; they are not in the training window yet
	// (the window must stay a subset of the log).
	Parked int `json:"parked_observations,omitempty"`
	// Lost counts observations dropped because the parking buffer
	// overflowed while the WAL was failing — the documented loss bound of
	// degraded mode.
	Lost int64 `json:"lost_observations,omitempty"`
	// WorkerPanics counts contained worker panics (each one recovered,
	// counted, and the worker kept running).
	WorkerPanics int64 `json:"worker_panics,omitempty"`
}

// ProvenanceInfo is the body of GET /v1/provenance without a seq
// parameter: the provenance commitments of the serving generation.
type ProvenanceInfo struct {
	// Generation is the lineage generation the roots belong to.
	Generation int `json:"generation"`
	// DataRoot is the hex Merkle root over the canonical encodings of the
	// trajectories this generation trained on; empty before the first
	// retrain (nothing committed yet).
	DataRoot string `json:"data_root,omitempty"`
	// ChainRoot chains every generation's DataRoot back to genesis; it
	// changes whenever any trajectory in the model's entire history does.
	ChainRoot string `json:"chain_root,omitempty"`
	// BatchSize is the number of trajectories under DataRoot.
	BatchSize int `json:"batch_size,omitempty"`
	// WAL reports the trajectory log, when one is configured.
	WAL *WALStatus `json:"wal,omitempty"`
}

// InclusionProof is the body of GET /v1/provenance?seq=N: a Merkle audit
// path proving trajectory N is under the serving generation's DataRoot.
// Verify with pathrank.VerifyInclusionProof.
type InclusionProof struct {
	// Seq is the ingest sequence number the proof covers.
	Seq int64 `json:"seq"`
	// Generation is the lineage generation whose training batch contains
	// the trajectory.
	Generation int `json:"generation"`
	// Index is the leaf position and BatchSize the leaf count of the
	// Merkle tree. BatchSize comes from the trusted lineage: an audit path
	// alone does not bind the tree size.
	Index     int `json:"index"`
	BatchSize int `json:"batch_size"`
	// LeafHash is the hex leaf hash of the trajectory's canonical WAL
	// encoding; Path is the audit path, leaf-adjacent first.
	LeafHash string   `json:"leaf_hash"`
	Path     []string `json:"path"`
	// DataRoot is the root the path must reproduce; ChainRoot ties it into
	// the generation chain. Both must match the artifact's lineage.
	DataRoot  string `json:"data_root"`
	ChainRoot string `json:"chain_root"`
}
