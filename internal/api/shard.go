package api

// This file defines the wire vocabulary of the shard-internal sub-query
// API — the endpoints a shard worker exposes to the fan-out router
// (/shard/info, /shard/boundary, /shard/corridor). These types never
// reach external clients: the router consumes them and answers on the
// public /v2/rank surface. They live here with the rest of the wire types
// so the router and the shard worker cannot drift apart.
//
// Distances on this surface use -1 to encode "unreachable" (+Inf), since
// JSON has no representation for infinities; both sides translate at the
// boundary. Finite distances are plain nonnegative float64 values and
// survive the round-trip bit-for-bit.

// ShardInfoResponse is the body of GET /shard/info: the worker's identity
// within the bundle and the serving snapshot's fingerprint. The router
// polls it for health and generation agreement.
type ShardInfoResponse struct {
	// Shard is this worker's shard index; Parts is the bundle's shard count.
	Shard int `json:"shard"`
	Parts int `json:"parts"`
	// Fingerprint is the serving model's hex fingerprint; all shards of
	// one bundle share it, so a mismatch means a mixed-generation fleet.
	Fingerprint string `json:"fingerprint"`
	// Vertices is the global vertex count (shards keep the full vertex
	// table); Edges counts only this shard's induced edges.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// BoundaryVertices is the size of this shard's boundary set.
	BoundaryVertices int `json:"boundary_vertices"`
}

// BoundaryRequest is the body of POST /shard/boundary: one single-source
// (or single-destination) exact distance sweep from V to every boundary
// vertex of the shard, unbounded, under the given metric.
type BoundaryRequest struct {
	// V is a global vertex ID owned by this shard: the source when Dir is
	// "fwd", the destination when Dir is "rev".
	V int64 `json:"v"`
	// Dir is "fwd" (V → boundary) or "rev" (boundary → V).
	Dir string `json:"dir"`
	// Weight selects the metric: "length" (default) or "time".
	Weight string `json:"weight,omitempty"`
}

// BoundaryResponse carries the distance vector of a boundary sweep,
// aligned to the shard's boundary list in ascending vertex order (the
// order the shard map records). Unreachable entries are -1.
type BoundaryResponse struct {
	Shard       int       `json:"shard"`
	Fingerprint string    `json:"fingerprint"`
	Dist        []float64 `json:"dist"`
}

// ShardSeed is one pre-weighted starting point of a corridor search: the
// search frontier begins at global vertex V with accumulated cost Dist.
type ShardSeed struct {
	V    int64   `json:"v"`
	Dist float64 `json:"dist"`
}

// CorridorRequest is the body of POST /shard/corridor: extract the
// vertices of this shard that can lie on some source→destination path of
// cost at most Bound, given exact entry costs (Seeds, from the source
// side) and exit costs (RSeeds, to the destination side) at the shard's
// boundary, plus the induced edges connecting them.
type CorridorRequest struct {
	// Seeds seed the forward sweep (cost from the global source); RSeeds
	// seed the backward sweep (cost to the global destination). Seeds with
	// Dist < 0 are ignored (the unreachable encoding).
	Seeds  []ShardSeed `json:"seeds"`
	RSeeds []ShardSeed `json:"rseeds"`
	// Bound is the corridor cost bound C: a vertex v is in the corridor
	// iff fwd(v) + rev(v) <= C.
	Bound float64 `json:"bound"`
	// Weight selects the metric: "length" (default) or "time".
	Weight string `json:"weight,omitempty"`
}

// CorridorVertex is one corridor member: a global vertex ID with its real
// coordinates (so the router can rebuild a valid sub-road-network).
type CorridorVertex struct {
	ID  int64   `json:"id"`
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
}

// CorridorEdge is one induced edge of the corridor with its full record:
// global edge ID, global endpoints, and the exact metrics, so any path
// cost computed on the fused corridor graph equals the full-graph value
// bit-for-bit.
type CorridorEdge struct {
	ID       int64   `json:"id"`
	From     int64   `json:"from"`
	To       int64   `json:"to"`
	LengthM  float64 `json:"length_m"`
	TimeS    float64 `json:"time_s"`
	Category uint8   `json:"category"`
}

// CorridorResponse is the corridor subgraph owned by one shard: every
// owned vertex within the bound and every induced edge with both
// endpoints inside. Cut edges belong to no shard; the router owns them.
type CorridorResponse struct {
	Shard       int              `json:"shard"`
	Fingerprint string           `json:"fingerprint"`
	Vertices    []CorridorVertex `json:"vertices"`
	Edges       []CorridorEdge   `json:"edges"`
}
