// Package experiments reproduces the paper's evaluation: every table and
// figure maps to one function here, returning rows with the paper's four
// metrics (MAE, MARE, Kendall τ, Spearman ρ) on a held-out test split. Both
// the cmd/experiments CLI and the repository's testing.B benchmarks call
// into this package, so the printed rows are identical in either harness.
//
// A World bundles the expensive shared artifacts — synthetic road network,
// simulated trip log, node2vec embeddings per dimensionality, and candidate
// sets per generation strategy — and caches them across experiments.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"pathrank/internal/baseline"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/metrics"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

// WorldConfig sizes the shared experimental substrate.
type WorldConfig struct {
	Rows, Cols     int
	NumDrivers     int
	TripsPerDriver int
	MinHops        int
	Seed           int64
	// Epochs and Hidden size every model trained by RunModel.
	Epochs int
	Hidden int
	LR     float64
	// TestFrac is the held-out query fraction.
	TestFrac float64
}

// DefaultWorldConfig is the scale used for the recorded experiment results:
// a ~500-vertex network with 360 trajectories, which trains in tens of
// seconds per configuration on one core while preserving the paper's
// comparative structure.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Rows: 20, Cols: 25,
		NumDrivers: 60, TripsPerDriver: 6, MinHops: 5,
		Seed:   1,
		Epochs: 12, Hidden: 32, LR: 0.003,
		TestFrac: 0.25,
	}
}

// QuickWorldConfig is a scaled-down variant for smoke tests.
func QuickWorldConfig() WorldConfig {
	return WorldConfig{
		Rows: 10, Cols: 10,
		NumDrivers: 12, TripsPerDriver: 3, MinHops: 4,
		Seed:   1,
		Epochs: 4, Hidden: 12, LR: 0.004,
		TestFrac: 0.25,
	}
}

// World caches the shared artifacts of the evaluation.
//
// The trip log is split once into training and test trips. Training queries
// are generated from the training trips with whatever candidate strategy an
// experiment specifies; the evaluation set is generated once from the test
// trips with a fixed protocol (D-TkDI, k=5, θ=0.8, truth included) so that
// every configuration in a table is measured against the same queries —
// matching the paper's tables, which vary the *training-data* strategy.
type World struct {
	Cfg        WorldConfig
	G          *roadnet.Graph
	Trips      []traj.Trip
	TrainTrips []traj.Trip
	TestTrips  []traj.Trip

	// Cached artifacts are built at most once even when experiment rows
	// run concurrently: each cache key owns a sync.Once, so a second row
	// needing the same embeddings or candidate sets waits for the first
	// instead of duplicating the work.
	mu       sync.Mutex
	embs     map[int]*node2vec.Embeddings
	embOnce  map[int]*sync.Once
	queries  map[string][]dataset.Query
	qErr     map[string]error
	qOnce    map[string]*sync.Once
	test     []dataset.Query
	testErr  error
	testOnce sync.Once
}

// NewWorld builds the road network and trip log.
func NewWorld(cfg WorldConfig) (*World, error) {
	gcfg := roadnet.GenConfig{
		Rows: cfg.Rows, Cols: cfg.Cols, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: cfg.Seed,
	}
	g, err := roadnet.Generate(gcfg)
	if err != nil {
		return nil, err
	}
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: cfg.NumDrivers, Seed: cfg.Seed + 1})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{
		TripsPerDriver: cfg.TripsPerDriver, MinHops: cfg.MinHops, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	w := &World{
		Cfg: cfg, G: g, Trips: trips,
		embs:    make(map[int]*node2vec.Embeddings),
		embOnce: make(map[int]*sync.Once),
		queries: make(map[string][]dataset.Query),
		qErr:    make(map[string]error),
		qOnce:   make(map[string]*sync.Once),
	}
	// Deterministic trip-level split.
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	perm := rng.Perm(len(trips))
	nTest := int(float64(len(trips)) * cfg.TestFrac)
	for i, pi := range perm {
		if i < nTest {
			w.TestTrips = append(w.TestTrips, trips[pi])
		} else {
			w.TrainTrips = append(w.TrainTrips, trips[pi])
		}
	}
	return w, nil
}

// evalConfig is the fixed evaluation protocol shared by all experiments.
func evalConfig() dataset.Config {
	return dataset.Config{Strategy: dataset.DTkDI, K: 5, Threshold: 0.8, IncludeTruth: true}
}

// TestQueries returns the (cached) common evaluation set.
func (w *World) TestQueries() ([]dataset.Query, error) {
	w.testOnce.Do(func() {
		w.test, w.testErr = dataset.Generate(w.G, w.TestTrips, evalConfig())
	})
	return w.test, w.testErr
}

// Embeddings returns (cached) node2vec embeddings of dimension m.
func (w *World) Embeddings(m int) *node2vec.Embeddings {
	w.mu.Lock()
	once, ok := w.embOnce[m]
	if !ok {
		once = new(sync.Once)
		w.embOnce[m] = once
	}
	w.mu.Unlock()
	once.Do(func() {
		wc := node2vec.DefaultWalkConfig()
		wc.Seed = w.Cfg.Seed + 3
		tc := node2vec.DefaultTrainConfig(m)
		tc.Seed = w.Cfg.Seed + 4
		e := node2vec.Embed(w.G, wc, tc)
		w.mu.Lock()
		w.embs[m] = e
		w.mu.Unlock()
	})
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.embs[m]
}

// Queries returns (cached) labeled training candidate sets for cfg,
// generated from the training trips.
func (w *World) Queries(cfg dataset.Config) ([]dataset.Query, error) {
	key := fmt.Sprintf("%d/%d/%.3f/%d/%v", cfg.Strategy, cfg.K, cfg.Threshold, cfg.MaxProbe, cfg.IncludeTruth)
	w.mu.Lock()
	once, ok := w.qOnce[key]
	if !ok {
		once = new(sync.Once)
		w.qOnce[key] = once
	}
	w.mu.Unlock()
	once.Do(func() {
		q, err := dataset.Generate(w.G, w.TrainTrips, cfg)
		w.mu.Lock()
		w.queries[key] = q
		w.qErr[key] = err
		w.mu.Unlock()
	})
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.queries[key], w.qErr[key]
}

// Row is one line of a result table.
type Row struct {
	Label  string
	Report metrics.Report
}

// String formats the row for table output.
func (r Row) String() string {
	return fmt.Sprintf("%-28s MAE=%.4f MARE=%.4f tau=%.4f rho=%.4f",
		r.Label, r.Report.MAE, r.Report.MARE, r.Report.Tau, r.Report.Rho)
}

// ModelSpec fully describes one trained configuration.
type ModelSpec struct {
	Data    dataset.Config
	M       int
	Variant pathrank.Variant
	Body    pathrank.Body
	Lambda  float64
	// TrainFrac scales the training set (1.0 = all training queries);
	// used by the training-size sweep.
	TrainFrac float64
}

// RunModel trains one PathRank configuration on training queries generated
// with spec.Data and evaluates it on the world's common evaluation set.
func (w *World) RunModel(spec ModelSpec) (metrics.Report, error) {
	train, err := w.Queries(spec.Data)
	if err != nil {
		return metrics.Report{}, err
	}
	test, err := w.TestQueries()
	if err != nil {
		return metrics.Report{}, err
	}
	if spec.TrainFrac > 0 && spec.TrainFrac < 1 {
		n := int(float64(len(train)) * spec.TrainFrac)
		if n < 1 {
			n = 1
		}
		train = train[:n]
	}
	mcfg := pathrank.Config{
		EmbeddingDim: spec.M, Hidden: w.Cfg.Hidden,
		Variant: spec.Variant, Body: spec.Body,
		MultiTaskLambda: spec.Lambda, Seed: w.Cfg.Seed + 6,
	}
	model, err := pathrank.New(w.G.NumVertices(), mcfg)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := model.InitEmbeddings(w.Embeddings(spec.M)); err != nil {
		return metrics.Report{}, err
	}
	tcfg := pathrank.TrainConfig{
		Epochs: w.Cfg.Epochs, LR: w.Cfg.LR, ClipNorm: 5, Seed: w.Cfg.Seed + 7,
	}
	if _, err := model.Train(train, tcfg); err != nil {
		return metrics.Report{}, err
	}
	return model.Evaluate(test), nil
}

// Training candidate sets deliberately exclude the trajectory path itself:
// the candidate generator alone must cover the driver's choice. This is
// what makes the generation strategy matter — diversified candidates
// overlap the (often non-shortest) driven path far more than plain top-k
// shortest paths do, which is the paper's motivation for D-TkDI.
func dataTkDI(k int) dataset.Config {
	return dataset.Config{Strategy: dataset.TkDI, K: k}
}

func dataDTkDI(k int, threshold float64) dataset.Config {
	return dataset.Config{Strategy: dataset.DTkDI, K: k, Threshold: threshold}
}

// Table1 reproduces the paper's Table 1: training-data strategies (TkDI vs
// D-TkDI) crossed with embedding size M under PR-A1 (frozen embeddings).
func Table1(w *World, ms []int) ([]Row, error) {
	return strategyTable(w, ms, pathrank.PRA1)
}

// Table2 reproduces the paper's Table 2: the same grid under PR-A2
// (fine-tuned embeddings).
func Table2(w *World, ms []int) ([]Row, error) {
	return strategyTable(w, ms, pathrank.PRA2)
}

func strategyTable(w *World, ms []int, v pathrank.Variant) ([]Row, error) {
	if len(ms) == 0 {
		ms = []int{64, 128}
	}
	type cell struct {
		strat dataset.Config
		m     int
	}
	var cells []cell
	for _, strat := range []dataset.Config{dataTkDI(5), dataDTkDI(5, 0.8)} {
		for _, m := range ms {
			cells = append(cells, cell{strat: strat, m: m})
		}
	}
	return runRows(len(cells), func(i int) (Row, error) {
		c := cells[i]
		rep, err := w.RunModel(ModelSpec{Data: c.strat, M: c.m, Variant: v, Body: pathrank.GRUBody})
		if err != nil {
			return Row{}, err
		}
		return Row{
			Label:  fmt.Sprintf("%s %s M=%d", c.strat.Strategy, v, c.m),
			Report: rep,
		}, nil
	})
}

// SweepK varies the candidate-set size k (Figure-style experiment F1).
func SweepK(w *World, ks []int, m int) ([]Row, error) {
	if len(ks) == 0 {
		ks = []int{3, 5, 8, 10}
	}
	return runRows(len(ks), func(i int) (Row, error) {
		k := ks[i]
		rep, err := w.RunModel(ModelSpec{Data: dataDTkDI(k, 0.8), M: m, Variant: pathrank.PRA2, Body: pathrank.GRUBody})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("D-TkDI k=%d M=%d", k, m), Report: rep}, nil
	})
}

// SweepDiversity varies the D-TkDI similarity threshold (F2).
func SweepDiversity(w *World, thresholds []float64, m int) ([]Row, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	return runRows(len(thresholds), func(i int) (Row, error) {
		th := thresholds[i]
		rep, err := w.RunModel(ModelSpec{Data: dataDTkDI(5, th), M: m, Variant: pathrank.PRA2, Body: pathrank.GRUBody})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("D-TkDI theta=%.1f M=%d", th, m), Report: rep}, nil
	})
}

// SweepM varies the embedding dimensionality (F3), extending the tables'
// M axis downward.
func SweepM(w *World, ms []int) ([]Row, error) {
	if len(ms) == 0 {
		ms = []int{16, 32, 64, 128}
	}
	return runRows(len(ms), func(i int) (Row, error) {
		m := ms[i]
		rep, err := w.RunModel(ModelSpec{Data: dataDTkDI(5, 0.8), M: m, Variant: pathrank.PRA2, Body: pathrank.GRUBody})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("D-TkDI PR-A2 M=%d", m), Report: rep}, nil
	})
}

// SweepTrainSize varies the training-set fraction (F4).
func SweepTrainSize(w *World, fracs []float64, m int) ([]Row, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.25, 0.5, 0.75, 1.0}
	}
	return runRows(len(fracs), func(i int) (Row, error) {
		f := fracs[i]
		rep, err := w.RunModel(ModelSpec{
			Data: dataDTkDI(5, 0.8), M: m, Variant: pathrank.PRA2,
			Body: pathrank.GRUBody, TrainFrac: f,
		})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("train=%3.0f%% M=%d", f*100, m), Report: rep}, nil
	})
}

// Baselines compares PathRank against the non-learned and shallow-learned
// rankers on the same split (B1).
func Baselines(w *World, m int) ([]Row, error) {
	data := dataDTkDI(5, 0.8)
	train, err := w.Queries(data)
	if err != nil {
		return nil, err
	}
	test, err := w.TestQueries()
	if err != nil {
		return nil, err
	}

	var rows []Row
	for _, s := range []baseline.Scorer{
		baseline.LengthRank{G: w.G},
		baseline.TimeRank{G: w.G},
	} {
		rows = append(rows, Row{Label: s.Name(), Report: baseline.Evaluate(s, test)})
	}
	lr := &baseline.LinearRegression{G: w.G}
	if err := lr.Fit(train); err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: lr.Name(), Report: baseline.Evaluate(lr, test)})

	rep, err := w.RunModel(ModelSpec{Data: data, M: m, Variant: pathrank.PRA2, Body: pathrank.GRUBody})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: fmt.Sprintf("PathRank PR-A2 M=%d", m), Report: rep})
	return rows, nil
}

// AblationBody swaps the sequence model (A1 in DESIGN.md).
func AblationBody(w *World, m int) ([]Row, error) {
	bodies := []pathrank.Body{pathrank.GRUBody, pathrank.BiGRUBody, pathrank.LSTMBody, pathrank.MeanPoolBody, pathrank.AttnGRUBody}
	return runRows(len(bodies), func(i int) (Row, error) {
		body := bodies[i]
		rep, err := w.RunModel(ModelSpec{Data: dataDTkDI(5, 0.8), M: m, Variant: pathrank.PRA2, Body: body})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("body=%s M=%d", body, m), Report: rep}, nil
	})
}

// AblationMultiTask varies the auxiliary-loss weight λ (A2 in DESIGN.md).
func AblationMultiTask(w *World, lambdas []float64, m int) ([]Row, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0, 0.25, 0.5, 1.0}
	}
	return runRows(len(lambdas), func(i int) (Row, error) {
		l := lambdas[i]
		rep, err := w.RunModel(ModelSpec{
			Data: dataDTkDI(5, 0.8), M: m, Variant: pathrank.PRA2,
			Body: pathrank.GRUBody, Lambda: l,
		})
		if err != nil {
			return Row{}, err
		}
		return Row{Label: fmt.Sprintf("lambda=%.2f M=%d", l, m), Report: rep}, nil
	})
}
