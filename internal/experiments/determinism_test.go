package experiments

import (
	"testing"
)

// TestParallelRowsBitwiseDeterministic trains the Table-1 grid on the quick
// world serially and with four row workers and asserts identical rows: the
// parallel experiment runner must not change any printed metric.
func TestParallelRowsBitwiseDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models twice")
	}
	build := func(workers int) []Row {
		t.Helper()
		w, err := NewWorld(QuickWorldConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer func() { RowWorkers = 0 }()
		RowWorkers = workers
		rows, err := Table1(w, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := build(1)
	parallel := build(4)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Label != parallel[i].Label {
			t.Fatalf("row %d label %q != %q", i, serial[i].Label, parallel[i].Label)
		}
		if serial[i].Report != parallel[i].Report {
			t.Fatalf("row %d (%s) metrics differ:\n  serial:   %+v\n  parallel: %+v",
				i, serial[i].Label, serial[i].Report, parallel[i].Report)
		}
	}
}

// TestRunRowsPropagatesError checks the bounded runner surfaces worker
// errors after draining.
func TestRunRowsPropagatesError(t *testing.T) {
	defer func() { RowWorkers = 0 }()
	RowWorkers = 3
	_, err := runRows(5, func(i int) (Row, error) {
		if i == 3 {
			return Row{}, errBoom
		}
		return Row{Label: "ok"}, nil
	})
	if err != errBoom {
		t.Fatalf("runRows error = %v, want errBoom", err)
	}
}

var errBoom = &rowError{"boom"}

type rowError struct{ s string }

func (e *rowError) Error() string { return e.s }
