package experiments

import (
	"math"
	"strings"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
)

func quickWorld(t testing.TB) *World {
	t.Helper()
	w, err := NewWorld(QuickWorldConfig())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestNewWorldDeterministic(t *testing.T) {
	w1 := quickWorld(t)
	w2 := quickWorld(t)
	if w1.G.NumVertices() != w2.G.NumVertices() || len(w1.Trips) != len(w2.Trips) {
		t.Fatal("same config produced different worlds")
	}
}

func TestEmbeddingsCached(t *testing.T) {
	w := quickWorld(t)
	e1 := w.Embeddings(8)
	e2 := w.Embeddings(8)
	if e1 != e2 {
		t.Fatal("embeddings not cached")
	}
	e3 := w.Embeddings(16)
	if e3 == e1 || e3.Dim != 16 {
		t.Fatal("different dims should produce different embeddings")
	}
}

func TestQueriesCached(t *testing.T) {
	w := quickWorld(t)
	cfg := dataset.Config{Strategy: dataset.TkDI, K: 3, IncludeTruth: true}
	q1, err := w.Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := w.Queries(cfg)
	if &q1[0] != &q2[0] {
		t.Fatal("queries not cached")
	}
}

func TestRunModelProducesFiniteReport(t *testing.T) {
	w := quickWorld(t)
	rep, err := w.RunModel(ModelSpec{
		Data: dataset.Config{Strategy: dataset.TkDI, K: 3, IncludeTruth: true},
		M:    8, Variant: pathrank.PRA2, Body: pathrank.GRUBody,
	})
	if err != nil {
		t.Fatalf("RunModel: %v", err)
	}
	if math.IsNaN(rep.MAE) || math.IsNaN(rep.Tau) {
		t.Fatalf("non-finite report: %v", rep)
	}
	if rep.NQueries == 0 {
		t.Fatal("no test queries evaluated")
	}
}

func TestTable1Shape(t *testing.T) {
	w := quickWorld(t)
	rows, err := Table1(w, []int{8, 12})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table1 has %d rows, want 4 (2 strategies x 2 Ms)", len(rows))
	}
	for _, r := range rows {
		if !strings.Contains(r.Label, "PR-A1") {
			t.Fatalf("Table1 row %q missing PR-A1", r.Label)
		}
	}
	if !strings.Contains(rows[0].Label, "TkDI") || !strings.Contains(rows[2].Label, "D-TkDI") {
		t.Fatalf("unexpected row order: %q, %q", rows[0].Label, rows[2].Label)
	}
}

func TestTable2Shape(t *testing.T) {
	w := quickWorld(t)
	rows, err := Table2(w, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table2 has %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !strings.Contains(r.Label, "PR-A2") {
			t.Fatalf("Table2 row %q missing PR-A2", r.Label)
		}
	}
}

func TestSweepsShapes(t *testing.T) {
	w := quickWorld(t)
	if rows, err := SweepK(w, []int{3, 4}, 8); err != nil || len(rows) != 2 {
		t.Fatalf("SweepK rows=%d err=%v", len(rows), err)
	}
	if rows, err := SweepDiversity(w, []float64{0.7, 0.9}, 8); err != nil || len(rows) != 2 {
		t.Fatalf("SweepDiversity rows=%d err=%v", len(rows), err)
	}
	if rows, err := SweepM(w, []int{8, 12}); err != nil || len(rows) != 2 {
		t.Fatalf("SweepM rows=%d err=%v", len(rows), err)
	}
	if rows, err := SweepTrainSize(w, []float64{0.5, 1.0}, 8); err != nil || len(rows) != 2 {
		t.Fatalf("SweepTrainSize rows=%d err=%v", len(rows), err)
	}
}

func TestBaselinesIncludePathRankAndComparators(t *testing.T) {
	w := quickWorld(t)
	rows, err := Baselines(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Baselines has %d rows, want 4", len(rows))
	}
	labels := make([]string, len(rows))
	for i, r := range rows {
		labels[i] = r.Label
	}
	joined := strings.Join(labels, ",")
	for _, want := range []string{"rank-by-length", "rank-by-time", "linear-features", "PathRank"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing baseline %q in %v", want, labels)
		}
	}
}

func TestAblationsShapes(t *testing.T) {
	w := quickWorld(t)
	rows, err := AblationBody(w, 8)
	if err != nil || len(rows) != 5 {
		t.Fatalf("AblationBody rows=%d err=%v", len(rows), err)
	}
	rows, err = AblationMultiTask(w, []float64{0, 0.5}, 8)
	if err != nil || len(rows) != 2 {
		t.Fatalf("AblationMultiTask rows=%d err=%v", len(rows), err)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Label: "test"}
	if !strings.Contains(r.String(), "test") || !strings.Contains(r.String(), "MAE") {
		t.Fatalf("row string %q", r.String())
	}
}
