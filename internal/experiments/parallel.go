package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RowWorkers bounds how many experiment rows (one trained model each) run
// concurrently. Zero (the default) means GOMAXPROCS. Every row trains with
// its own deterministic seed and writes to its own result slot, so a table
// is bitwise identical for any worker count; set RowWorkers = 1 to force
// the serial order (e.g. when another component owns the cores).
var RowWorkers int

func rowWorkerCount(n int) int {
	w := RowWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runRows evaluates f(i) for every row index in [0, n) across a bounded
// worker pool and returns the rows in index order. The first error wins and
// is returned after all workers drain.
func runRows(n int, f func(i int) (Row, error)) ([]Row, error) {
	rows := make([]Row, n)
	workers := rowWorkerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := f(i)
			if err != nil {
				return nil, err
			}
			rows[i] = r
		}
		return rows, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool // fail fast: skip unstarted rows after an error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				rows[i], errs[i] = f(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
