package nn

import (
	"fmt"
	"math/rand"
)

// Embedding is a lookup table mapping integer IDs to dense vectors. It is
// PathRank's vertex-embedding matrix B: initialized from node2vec and either
// frozen (PR-A1) or fine-tuned by backpropagation (PR-A2).
type Embedding struct {
	Table *Param // Vocab x Dim
}

// NewEmbedding allocates a vocab x dim embedding with Xavier init.
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Table: NewParam("embedding", vocab, dim)}
	e.Table.InitXavier(rng)
	return e
}

// Vocab returns the number of rows.
func (e *Embedding) Vocab() int { return e.Table.Rows }

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.Table.Cols }

// SetRow overwrites the embedding of id (used to load node2vec vectors).
func (e *Embedding) SetRow(id int, v Vec) {
	if len(v) != e.Dim() {
		panic(fmt.Sprintf("nn: SetRow dim %d != embedding dim %d", len(v), e.Dim()))
	}
	copy(e.Table.Row(id), v)
}

// Lookup returns the embedding row of id. The returned slice aliases the
// table; callers must not modify it.
func (e *Embedding) Lookup(id int) Vec { return e.Table.Row(id) }

// AccumGrad adds the gradient d to row id's gradient unless frozen.
func (e *Embedding) AccumGrad(id int, d Vec) {
	if e.Table.Frozen {
		return
	}
	AddTo(e.Table.GradRow(id), d)
}

// Params returns the trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Dense is a fully connected layer y = act(W*x + b).
type Dense struct {
	W   *Param
	B   *Param
	Act Activation
}

// Activation selects the nonlinearity of a Dense layer.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	Tanh
	SigmoidAct
	ReLU
)

// NewDense returns an in->out dense layer with Xavier init.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		W:   NewParam(name+".W", out, in),
		B:   NewParam(name+".b", 1, out),
		Act: act,
	}
	d.W.InitXavier(rng)
	return d
}

// DenseCache stores forward activations needed by Backward. The input is
// aliased, not copied: callers must keep x unchanged until Backward.
type DenseCache struct {
	x   Vec // input (aliased)
	pre Vec // pre-activation (only kept for ReLU, whose derivative needs it)
	out Vec // post-activation
}

// Forward computes the layer output and a cache for Backward.
func (d *Dense) Forward(x Vec) (Vec, *DenseCache) {
	out := NewVec(d.W.Rows)
	d.W.MatVec(x, out)
	AddTo(out, d.B.W)
	var pre Vec
	switch d.Act {
	case Tanh:
		TanhVec(out, out)
	case SigmoidAct:
		SigmoidVec(out, out)
	case ReLU:
		pre = Copy(out)
		for i := range out {
			if out[i] < 0 {
				out[i] = 0
			}
		}
	}
	return out, &DenseCache{x: x, pre: pre, out: out}
}

// ForwardInto is the inference path of Forward: it computes the layer
// output into dst (len W.Rows) without allocating a backward cache. The
// operation sequence (MatVec, bias add, activation) is identical to
// Forward, so the result is bit-identical.
func (d *Dense) ForwardInto(x, dst Vec) {
	d.W.MatVec(x, dst)
	AddTo(dst, d.B.W)
	switch d.Act {
	case Tanh:
		TanhVec(dst, dst)
	case SigmoidAct:
		SigmoidVec(dst, dst)
	case ReLU:
		for i := range dst {
			if dst[i] < 0 {
				dst[i] = 0
			}
		}
	}
}

// Backward propagates dOut, accumulating parameter gradients, and returns
// the gradient with respect to the input.
func (d *Dense) Backward(c *DenseCache, dOut Vec) Vec {
	dPre := Copy(dOut)
	switch d.Act {
	case Tanh:
		for i := range dPre {
			dPre[i] *= 1 - c.out[i]*c.out[i]
		}
	case SigmoidAct:
		for i := range dPre {
			dPre[i] *= c.out[i] * (1 - c.out[i])
		}
	case ReLU:
		for i := range dPre {
			if c.pre[i] <= 0 {
				dPre[i] = 0
			}
		}
	}
	d.W.AccumOuter(dPre, c.x)
	AddTo(d.B.G, dPre)
	dx := NewVec(d.W.Cols)
	d.W.MatTVecAdd(dPre, dx)
	return dx
}

// Params returns the trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
