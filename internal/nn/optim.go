package nn

import "math"

// Optimizer updates parameters from their accumulated gradients. Step must
// also clear the gradients it consumed. Frozen parameters are skipped.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
}

// Step applies one SGD update and zeroes gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		if s.Momentum > 0 {
			if p.v == nil {
				p.v = NewVec(len(p.W))
			}
			for i := range p.W {
				p.v[i] = s.Momentum*p.v[i] + p.G[i]
				p.W[i] -= s.LR * p.v[i]
			}
		} else {
			for i := range p.W {
				p.W[i] -= s.LR * p.G[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015), the optimizer used
// to train PathRank.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
}

// NewAdam returns Adam with the standard defaults (β1=0.9, β2=0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update and zeroes gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		if p.m == nil {
			p.m = NewVec(len(p.W))
			p.v = NewVec(len(p.W))
		}
		for i := range p.W {
			g := p.G[i]
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / bc1
			vHat := p.v[i] / bc2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
		p.ZeroGrad()
	}
}

// RMSProp implements the RMSProp optimizer.
type RMSProp struct {
	LR      float64
	Decay   float64
	Epsilon float64
}

// NewRMSProp returns RMSProp with decay 0.9.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.9, Epsilon: 1e-8}
}

// Step applies one RMSProp update and zeroes gradients.
func (r *RMSProp) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		if p.v == nil {
			p.v = NewVec(len(p.W))
		}
		for i := range p.W {
			g := p.G[i]
			p.v[i] = r.Decay*p.v[i] + (1-r.Decay)*g*g
			p.W[i] -= r.LR * g / (math.Sqrt(p.v[i]) + r.Epsilon)
		}
		p.ZeroGrad()
	}
}

// MSELoss returns 0.5*(pred-target)^2 and its derivative with respect to
// pred. The 0.5 factor makes the gradient simply (pred-target).
func MSELoss(pred, target float64) (loss, grad float64) {
	d := pred - target
	return 0.5 * d * d, d
}

// MAELoss returns |pred-target| and its subgradient.
func MAELoss(pred, target float64) (loss, grad float64) {
	d := pred - target
	if d >= 0 {
		return d, 1
	}
	return -d, -1
}

// HuberLoss returns the Huber loss with transition point delta and its
// derivative.
func HuberLoss(pred, target, delta float64) (loss, grad float64) {
	d := pred - target
	if math.Abs(d) <= delta {
		return 0.5 * d * d, d
	}
	if d > 0 {
		return delta * (d - 0.5*delta), delta
	}
	return delta * (-d - 0.5*delta), -delta
}
