package nn

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// This file is the batched kernel layer: a packed row-major matrix type and
// the matrix-matrix products that turn per-path MatVec loops into one GEMM
// per scoring batch. The kernels are deliberately order-preserving: every
// output element accumulates its inner products in ascending-k order, the
// same association the scalar dotRows kernel uses, so a fused batched
// forward pass is bit-identical to the per-path path it replaces (see the
// reproducibility note above dotRows in mat.go). What batching buys is not
// a different sum — it is instruction-level parallelism across *independent*
// output elements (a register tile holds many concurrent dot chains) and
// weight-row reuse across the batch, neither of which the per-path kernels
// can have without changing the summation order.

// Mat is a packed row-major matrix: element (i, j) lives at Data[i*Cols+j].
// It is the batch-side operand type of the kernel layer; weights stay in
// Param and are viewed via Param.AsMat without copying.
type Mat struct {
	Rows, Cols int
	Data       Vec // len Rows*Cols
}

// NewMat allocates a zeroed rows x cols matrix.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// Row returns row i as a subslice (no copy).
func (m Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// View returns a matrix sharing m's storage restricted to the first rows
// rows — the active-prefix view used by ragged batched recurrences.
func (m Mat) View(rows int) Mat {
	if rows < 0 || rows > m.Rows {
		panic(fmt.Sprintf("nn: Mat.View rows %d out of range [0,%d]", rows, m.Rows))
	}
	return Mat{Rows: rows, Cols: m.Cols, Data: m.Data[:rows*m.Cols]}
}

// ZeroRows clears the first rows rows.
func (m Mat) ZeroRows(rows int) {
	d := m.Data[:rows*m.Cols]
	for i := range d {
		d[i] = 0
	}
}

// AsMat views the parameter's weights as a packed matrix (no copy).
func (p *Param) AsMat() Mat { return Mat{Rows: p.Rows, Cols: p.Cols, Data: p.W} }

// Kernel is a pluggable batched matrix backend. The generic blocked kernel
// is the default; alternative backends (SIMD, quantized) register under
// their own names and slot in behind the same two products.
//
// Both products preserve per-element summation order: C[i,j] accumulates
// its k-terms in ascending order. Gemm folds terms directly into C[i,j]
// (C[i,j] ((+ t0) + t1) ...), matching a naive i-j-k triple loop; GemmNT
// sums each dot in a fresh accumulator and adds it to C[i,j] once,
// matching MatVec/MatVecAdd (y[r] += dot(W_r, x)).
type Kernel interface {
	// Name identifies the backend (the value of the selection knob).
	Name() string
	// Gemm computes C += A·B for A (M x K), B (K x N), C (M x N).
	Gemm(C, A, B Mat)
	// GemmNT computes C += A·Bᵀ for A (M x K), B (N x K), C (M x N) —
	// the batched MatVecAdd: row i of C accumulates B·a_i.
	GemmNT(C, A, B Mat)
}

var kernels = map[string]Kernel{
	"blocked": blockedKernel{},
	"naive":   naiveKernel{},
}

// kernelBox wraps the interface so atomic.Value sees one concrete type no
// matter which backend is active.
type kernelBox struct{ k Kernel }

var activeKernel atomic.Value // kernelBox

func init() {
	k := kernels["blocked"]
	// PATHRANK_NN_KERNEL selects the batched kernel backend at process
	// start ("blocked" is the default; "naive" is the reference backend).
	if name := os.Getenv("PATHRANK_NN_KERNEL"); name != "" {
		if alt, ok := kernels[name]; ok {
			k = alt
		}
	}
	activeKernel.Store(kernelBox{k})
}

// SetKernel selects the batched kernel backend by name. It returns an error
// naming the registered backends when name is unknown.
func SetKernel(name string) error {
	k, ok := kernels[name]
	if !ok {
		names := make([]string, 0, len(kernels))
		for n := range kernels {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("nn: unknown kernel %q (registered: %v)", name, names)
	}
	activeKernel.Store(kernelBox{k})
	return nil
}

// KernelName reports the active backend.
func KernelName() string { return activeKernel.Load().(kernelBox).k.Name() }

// Gemm computes C += A·B on the active kernel.
func Gemm(C, A, B Mat) { activeKernel.Load().(kernelBox).k.Gemm(C, A, B) }

// GemmNT computes C += A·Bᵀ on the active kernel.
func GemmNT(C, A, B Mat) { activeKernel.Load().(kernelBox).k.GemmNT(C, A, B) }

// MatMulAdd computes Y += X·Wᵀ for a Rows x Cols parameter: row b of
// Y (len Rows) accumulates W·x_b, the batched form of MatVecAdd over the
// rows of X (each len Cols). Shapes are checked like the vector kernels.
func (p *Param) MatMulAdd(X, Y Mat) {
	if X.Cols != p.Cols || Y.Cols != p.Rows || X.Rows != Y.Rows {
		panic(fmt.Sprintf("nn: MatMulAdd shape mismatch: %s is %dx%d, X=%dx%d Y=%dx%d",
			p.Name, p.Rows, p.Cols, X.Rows, X.Cols, Y.Rows, Y.Cols))
	}
	activeKernel.Load().(kernelBox).k.GemmNT(Y, X, p.AsMat())
}

func checkGemm(C, A, B Mat, nt bool) {
	bk, bn := B.Rows, B.Cols
	if nt {
		bk, bn = B.Cols, B.Rows
	}
	if A.Rows != C.Rows || A.Cols != bk || bn != C.Cols {
		op := "Gemm"
		if nt {
			op = "GemmNT"
		}
		panic(fmt.Sprintf("nn: %s shape mismatch: C=%dx%d A=%dx%d B=%dx%d",
			op, C.Rows, C.Cols, A.Rows, A.Cols, B.Rows, B.Cols))
	}
}

// naiveKernel is the reference backend: textbook triple loops with the
// documented accumulation order. It is the oracle of FuzzGemm and the
// baseline of BenchmarkGemm; the blocked kernel must match it bitwise.
type naiveKernel struct{}

func (naiveKernel) Name() string { return "naive" }

func (naiveKernel) Gemm(C, A, B Mat) {
	checkGemm(C, A, B, false)
	for i := 0; i < A.Rows; i++ {
		ai, ci := A.Row(i), C.Row(i)
		for j := 0; j < B.Cols; j++ {
			for k := 0; k < A.Cols; k++ {
				ci[j] += ai[k] * B.Data[k*B.Cols+j]
			}
		}
	}
}

func (naiveKernel) GemmNT(C, A, B Mat) {
	checkGemm(C, A, B, true)
	for i := 0; i < A.Rows; i++ {
		ai, ci := A.Row(i), C.Row(i)
		for j := 0; j < B.Rows; j++ {
			ci[j] += dotRows(B.Row(j), ai)
		}
	}
}

// blockedKernel is the generic cache-blocked backend.
type blockedKernel struct{}

func (blockedKernel) Name() string { return "blocked" }

// gemmKC is the k-panel height of the blocked Gemm: a panel of B rows small
// enough to stay cache-resident while every row of A streams across it.
// Blocking over k does not reassociate anything, because each C element
// accumulates directly in place and the panels are visited in ascending-k
// order.
const gemmKC = 64

func (blockedKernel) Gemm(C, A, B Mat) {
	checkGemm(C, A, B, false)
	K := A.Cols
	for kk := 0; kk < K; kk += gemmKC {
		kmax := kk + gemmKC
		if kmax > K {
			kmax = K
		}
		for i := 0; i < A.Rows; i++ {
			ai, ci := A.Row(i), C.Row(i)
			for k := kk; k < kmax; k++ {
				axpyUnrolled(ai[k], B.Row(k), ci)
			}
		}
	}
}

// GemmNT is the fused-scoring workhorse. A 4x2 register tile runs eight
// independent dot chains concurrently — the ILP a single dotRows cannot
// have — while each chain keeps the serial ascending-k order that makes the
// result bit-identical to eight scalar dots.
func (blockedKernel) GemmNT(C, A, B Mat) {
	checkGemm(C, A, B, true)
	K := A.Cols
	M, N := A.Rows, B.Rows
	i := 0
	for ; i+3 < M; i += 4 {
		a0 := A.Row(i)[:K]
		a1 := A.Row(i + 1)[:K]
		a2 := A.Row(i + 2)[:K]
		a3 := A.Row(i + 3)[:K]
		c0, c1, c2, c3 := C.Row(i), C.Row(i+1), C.Row(i+2), C.Row(i+3)
		j := 0
		for ; j+1 < N; j += 2 {
			b0 := B.Row(j)[:K]
			b1 := B.Row(j + 1)[:K]
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			for k := 0; k < K; k++ {
				bv0, bv1 := b0[k], b1[k]
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
				s20 += av2 * bv0
				s21 += av2 * bv1
				s30 += av3 * bv0
				s31 += av3 * bv1
			}
			c0[j] += s00
			c0[j+1] += s01
			c1[j] += s10
			c1[j+1] += s11
			c2[j] += s20
			c2[j+1] += s21
			c3[j] += s30
			c3[j+1] += s31
		}
		for ; j < N; j++ {
			bj := B.Row(j)[:K]
			var s0, s1, s2, s3 float64
			for k := 0; k < K; k++ {
				bv := bj[k]
				s0 += a0[k] * bv
				s1 += a1[k] * bv
				s2 += a2[k] * bv
				s3 += a3[k] * bv
			}
			c0[j] += s0
			c1[j] += s1
			c2[j] += s2
			c3[j] += s3
		}
	}
	for ; i < M; i++ {
		ai, ci := A.Row(i), C.Row(i)
		for j := 0; j < N; j++ {
			ci[j] += dotRows(B.Row(j), ai)
		}
	}
}
