package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigmoidProperties(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", s)
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Fatalf("Sigmoid(100) = %v, want ~1", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Fatalf("Sigmoid(-100) = %v, want ~0", s)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		// In range, monotone symmetric: σ(-x) = 1-σ(x).
		return s >= 0 && s <= 1 && math.Abs(Sigmoid(-x)-(1-s)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if d := Dot(a, b); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	y := Copy(a)
	Axpy(2, b, y)
	want := Vec{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
	h := NewVec(3)
	Hadamard(h, a, b)
	if h[0] != 4 || h[1] != 10 || h[2] != 18 {
		t.Fatalf("Hadamard = %v", h)
	}
	if n := Norm2(Vec{3, 4}); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	p := NewParam("w", 2, 3)
	copy(p.W, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 1, 1}
	y := NewVec(2)
	p.MatVec(x, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v, want [6 15]", y)
	}
	dx := NewVec(3)
	p.MatTVecAdd(Vec{1, 1}, dx)
	if dx[0] != 5 || dx[1] != 7 || dx[2] != 9 {
		t.Fatalf("MatTVecAdd = %v, want [5 7 9]", dx)
	}
}

func TestMatVecPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	p := NewParam("w", 2, 3)
	p.MatVec(NewVec(2), NewVec(2))
}

func TestAccumOuter(t *testing.T) {
	p := NewParam("w", 2, 2)
	p.AccumOuter(Vec{1, 2}, Vec{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if p.G[i] != want[i] {
			t.Fatalf("AccumOuter grad = %v, want %v", p.G, want)
		}
	}
}

func TestClipGrad(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.G[0], p.G[1] = 3, 4 // norm 5
	pre := ClipGrad([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if n := GradNorm([]*Param{p}); math.Abs(n-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", n)
	}
	// No-op when under the bound.
	q := NewParam("q", 1, 2)
	q.G[0] = 0.1
	ClipGrad([]*Param{q}, 1)
	if q.G[0] != 0.1 {
		t.Fatal("clip should not rescale small gradients")
	}
}

func TestLosses(t *testing.T) {
	l, g := MSELoss(2, 1)
	if l != 0.5 || g != 1 {
		t.Fatalf("MSE(2,1) = %v,%v want 0.5,1", l, g)
	}
	l, g = MAELoss(1, 3)
	if l != 2 || g != -1 {
		t.Fatalf("MAE(1,3) = %v,%v want 2,-1", l, g)
	}
	l, g = HuberLoss(1.1, 1, 1)
	if math.Abs(l-0.005) > 1e-12 || math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("Huber quadratic region = %v,%v", l, g)
	}
	_, g = HuberLoss(5, 0, 1)
	if g != 1 {
		t.Fatalf("Huber linear region grad = %v, want 1", g)
	}
	_, g = HuberLoss(-5, 0, 1)
	if g != -1 {
		t.Fatalf("Huber linear region grad = %v, want -1", g)
	}
}

// numGrad computes a central finite difference of f at p.W[i].
func numGrad(p *Param, i int, f func() float64) float64 {
	const eps = 1e-5
	orig := p.W[i]
	p.W[i] = orig + eps
	up := f()
	p.W[i] = orig - eps
	down := f()
	p.W[i] = orig
	return (up - down) / (2 * eps)
}

func checkParamGrads(t *testing.T, params []*Param, f func() float64, run func(), tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	run()
	for _, p := range params {
		n := len(p.W)
		stride := 1
		if n > 12 {
			stride = n / 12
		}
		for i := 0; i < n; i += stride {
			want := numGrad(p, i, f)
			got := p.G[i]
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want)/scale > tol {
				t.Fatalf("%s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []Activation{Linear, Tanh, SigmoidAct, ReLU} {
		d := NewDense("fc", 4, 3, act, rng)
		x := Vec{0.3, -0.2, 0.5, 0.9}
		target := Vec{0.1, 0.4, -0.3}
		loss := func() float64 {
			out, _ := d.Forward(x)
			var l float64
			for i := range out {
				li, _ := MSELoss(out[i], target[i])
				l += li
			}
			return l
		}
		run := func() {
			out, cache := d.Forward(x)
			dOut := NewVec(len(out))
			for i := range out {
				_, dOut[i] = MSELoss(out[i], target[i])
			}
			d.Backward(cache, dOut)
		}
		checkParamGrads(t, d.Params(), loss, run, 1e-4)
	}
}

func TestDenseInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense("fc", 3, 2, Tanh, rng)
	x := Vec{0.2, -0.4, 0.7}
	loss := func() float64 {
		out, _ := d.Forward(x)
		l0, _ := MSELoss(out[0], 0.5)
		l1, _ := MSELoss(out[1], -0.1)
		return l0 + l1
	}
	out, cache := d.Forward(x)
	dOut := NewVec(2)
	_, dOut[0] = MSELoss(out[0], 0.5)
	_, dOut[1] = MSELoss(out[1], -0.1)
	dx := d.Backward(cache, dOut)
	const eps = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(dx[i]-want) > 1e-6 {
			t.Fatalf("dx[%d] = %.8f, numeric %.8f", i, dx[i], want)
		}
	}
}

// gruLoss runs the GRU over a fixed sequence and sums squared final hidden
// state against a target, exercising every gate in the backward pass.
func gruSetup(seed int64) (*GRU, []Vec, Vec) {
	rng := rand.New(rand.NewSource(seed))
	g := NewGRU("gru", 3, 4, rng)
	xs := []Vec{
		{0.5, -0.3, 0.8},
		{-0.1, 0.9, 0.2},
		{0.4, 0.4, -0.6},
	}
	target := Vec{0.2, -0.1, 0.3, 0.05}
	return g, xs, target
}

func TestGRUGradCheck(t *testing.T) {
	g, xs, target := gruSetup(11)
	loss := func() float64 {
		hs, _ := g.Forward(xs)
		last := hs[len(hs)-1]
		var l float64
		for i := range last {
			li, _ := MSELoss(last[i], target[i])
			l += li
		}
		return l
	}
	run := func() {
		hs, cache := g.Forward(xs)
		last := hs[len(hs)-1]
		dhs := make([]Vec, len(hs))
		d := NewVec(len(last))
		for i := range last {
			_, d[i] = MSELoss(last[i], target[i])
		}
		dhs[len(hs)-1] = d
		g.Backward(cache, dhs)
	}
	checkParamGrads(t, g.Params(), loss, run, 1e-4)
}

func TestGRUGradCheckAllSteps(t *testing.T) {
	// Gradient flowing into every step's hidden state (mean pooling).
	g, xs, _ := gruSetup(12)
	loss := func() float64 {
		hs, _ := g.Forward(xs)
		var l float64
		for _, h := range hs {
			for _, v := range h {
				l += 0.5 * v * v
			}
		}
		return l
	}
	run := func() {
		hs, cache := g.Forward(xs)
		dhs := make([]Vec, len(hs))
		for t := range hs {
			dhs[t] = Copy(hs[t])
		}
		g.Backward(cache, dhs)
	}
	checkParamGrads(t, g.Params(), loss, run, 1e-4)
}

func TestGRUInputGradCheck(t *testing.T) {
	g, xs, target := gruSetup(13)
	loss := func() float64 {
		hs, _ := g.Forward(xs)
		last := hs[len(hs)-1]
		var l float64
		for i := range last {
			li, _ := MSELoss(last[i], target[i])
			l += li
		}
		return l
	}
	hs, cache := g.Forward(xs)
	last := hs[len(hs)-1]
	dhs := make([]Vec, len(hs))
	d := NewVec(len(last))
	for i := range last {
		_, d[i] = MSELoss(last[i], target[i])
	}
	dhs[len(hs)-1] = d
	dxs := g.Backward(cache, dhs)
	const eps = 1e-5
	for ti := range xs {
		for i := range xs[ti] {
			orig := xs[ti][i]
			xs[ti][i] = orig + eps
			up := loss()
			xs[ti][i] = orig - eps
			down := loss()
			xs[ti][i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(dxs[ti][i]-want) > 1e-6 {
				t.Fatalf("dxs[%d][%d] = %.8f, numeric %.8f", ti, i, dxs[ti][i], want)
			}
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLSTM("lstm", 3, 4, rng)
	xs := []Vec{
		{0.5, -0.3, 0.8},
		{-0.1, 0.9, 0.2},
	}
	target := Vec{0.2, -0.1, 0.3, 0.05}
	loss := func() float64 {
		hs, _ := l.Forward(xs)
		last := hs[len(hs)-1]
		var sum float64
		for i := range last {
			li, _ := MSELoss(last[i], target[i])
			sum += li
		}
		return sum
	}
	run := func() {
		hs, cache := l.Forward(xs)
		last := hs[len(hs)-1]
		dhs := make([]Vec, len(hs))
		d := NewVec(len(last))
		for i := range last {
			_, d[i] = MSELoss(last[i], target[i])
		}
		dhs[len(hs)-1] = d
		l.Backward(cache, dhs)
	}
	checkParamGrads(t, l.Params(), loss, run, 1e-4)
}

func TestBiGRUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBiGRU("bi", 3, 3, rng)
	xs := []Vec{
		{0.5, -0.3, 0.8},
		{-0.1, 0.9, 0.2},
		{0.7, 0.1, -0.4},
	}
	loss := func() float64 {
		hs, _ := b.Forward(xs)
		last := hs[len(hs)-1]
		var l float64
		for _, v := range last {
			l += 0.5 * v * v
		}
		return l
	}
	run := func() {
		hs, cache := b.Forward(xs)
		dhs := make([]Vec, len(hs))
		dhs[len(hs)-1] = Copy(hs[len(hs)-1])
		b.Backward(cache, dhs)
	}
	checkParamGrads(t, b.Params(), loss, run, 1e-4)
}

func TestBiGRUOutDim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBiGRU("bi", 4, 6, rng)
	if b.OutDim() != 12 {
		t.Fatalf("OutDim = %d, want 12", b.OutDim())
	}
	xs := []Vec{{1, 0, 0, 0}, {0, 1, 0, 0}}
	hs, _ := b.Forward(xs)
	if len(hs) != 2 || len(hs[0]) != 12 {
		t.Fatalf("forward shape %dx%d, want 2x12", len(hs), len(hs[0]))
	}
}

func TestEmbeddingLookupAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEmbedding(10, 4, rng)
	v := Vec{1, 2, 3, 4}
	e.SetRow(3, v)
	got := e.Lookup(3)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("Lookup(3) = %v, want %v", got, v)
		}
	}
	e.AccumGrad(3, Vec{1, 1, 1, 1})
	if e.Table.GradRow(3)[0] != 1 {
		t.Fatal("gradient not accumulated")
	}
	// Frozen embeddings accumulate nothing (PR-A1 behaviour).
	e.Table.Frozen = true
	e.AccumGrad(4, Vec{1, 1, 1, 1})
	if e.Table.GradRow(4)[0] != 0 {
		t.Fatal("frozen embedding accumulated a gradient")
	}
}

func TestFrozenParamNotUpdatedByOptimizers(t *testing.T) {
	for name, opt := range map[string]Optimizer{
		"sgd":     &SGD{LR: 0.1},
		"adam":    NewAdam(0.1),
		"rmsprop": NewRMSProp(0.1),
	} {
		p := NewParam("w", 1, 1)
		p.W[0] = 1
		p.G[0] = 5
		p.Frozen = true
		opt.Step([]*Param{p})
		if p.W[0] != 1 {
			t.Errorf("%s updated a frozen param", name)
		}
		if p.G[0] != 0 {
			t.Errorf("%s left gradient on a frozen param", name)
		}
	}
}

// TestOptimizersConvergeOnQuadratic trains w to minimize 0.5*(w-3)^2.
func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":          func() Optimizer { return &SGD{LR: 0.1} },
		"sgd+momentum": func() Optimizer { return &SGD{LR: 0.05, Momentum: 0.9} },
		"adam":         func() Optimizer { return NewAdam(0.1) },
		"rmsprop":      func() Optimizer { return NewRMSProp(0.05) },
	} {
		opt := mk()
		p := NewParam("w", 1, 1)
		for i := 0; i < 500; i++ {
			p.G[0] = p.W[0] - 3
			opt.Step([]*Param{p})
		}
		if math.Abs(p.W[0]-3) > 0.05 {
			t.Errorf("%s: w = %v after 500 steps, want ~3", name, p.W[0])
		}
	}
}

func TestGRULearnsToCountSteps(t *testing.T) {
	// A sanity end-to-end check: regress sequence length (scaled) from a
	// constant input. The GRU must use its recurrence to solve this.
	rng := rand.New(rand.NewSource(42))
	g := NewGRU("gru", 1, 8, rng)
	head := NewDense("head", 8, 1, Linear, rng)
	params := append(g.Params(), head.Params()...)
	opt := NewAdam(0.01)

	sample := func(T int) ([]Vec, float64) {
		xs := make([]Vec, T)
		for i := range xs {
			xs[i] = Vec{1}
		}
		return xs, float64(T) / 10.0
	}
	var lastLoss float64
	for epoch := 0; epoch < 300; epoch++ {
		lastLoss = 0
		for T := 2; T <= 8; T++ {
			xs, target := sample(T)
			hs, gc := g.Forward(xs)
			out, dc := head.Forward(hs[len(hs)-1])
			l, grad := MSELoss(out[0], target)
			lastLoss += l
			dh := head.Backward(dc, Vec{grad})
			dhs := make([]Vec, len(hs))
			dhs[len(hs)-1] = dh
			g.Backward(gc, dhs)
			ClipGrad(params, 5)
			opt.Step(params)
		}
		_ = rng
	}
	if lastLoss > 0.05 {
		t.Fatalf("GRU failed to learn step counting: final loss %.4f", lastLoss)
	}
}

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d1 := NewDense("fc", 4, 3, Tanh, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, d1.Params()); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	d2 := NewDense("fc", 4, 3, Tanh, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, d2.Params()); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	for i := range d1.W.W {
		if d1.W.W[i] != d2.W.W[i] {
			t.Fatal("weights differ after round trip")
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d1 := NewDense("fc", 4, 3, Tanh, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, d1.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewDense("fc", 5, 3, Tanh, rng) // wrong shape
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("LoadParams should reject shape mismatch")
	}
}
