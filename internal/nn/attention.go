package nn

import (
	"math"
	"math/rand"
)

// Attention is additive (Bahdanau-style) attention pooling over a sequence
// of hidden states:
//
//	e_t = vᵀ tanh(W·h_t)
//	α   = softmax(e)
//	s   = Σ_t α_t · h_t
//
// It provides a learned alternative to mean pooling for summarizing the
// recurrent states of a path — the attention extension discussed as future
// work for sequence summarization in PathRank-style models.
type Attention struct {
	In, Att int

	W *Param // Att x In
	V *Param // 1 x Att
}

// NewAttention returns an attention pooler over In-dimensional states with
// an Att-dimensional scoring space.
func NewAttention(name string, in, att int, rng *rand.Rand) *Attention {
	a := &Attention{
		In: in, Att: att,
		W: NewParam(name+".W", att, in),
		V: NewParam(name+".v", 1, att),
	}
	a.W.InitXavier(rng)
	a.V.InitXavier(rng)
	return a
}

// AttentionCache stores forward activations for Backward.
type AttentionCache struct {
	hs     []Vec
	us     []Vec // tanh(W h_t)
	alphas Vec
}

// Forward pools the sequence into one summary vector.
func (a *Attention) Forward(hs []Vec) (Vec, *AttentionCache) {
	T := len(hs)
	c := &AttentionCache{hs: hs, us: make([]Vec, T), alphas: NewVec(T)}
	scores := NewVec(T)
	for t, h := range hs {
		u := NewVec(a.Att)
		a.W.MatVec(h, u)
		TanhVec(u, u)
		c.us[t] = u
		scores[t] = Dot(a.V.W, u)
	}
	// Softmax with max subtraction.
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	var sum float64
	for t, s := range scores {
		c.alphas[t] = math.Exp(s - maxS)
		sum += c.alphas[t]
	}
	for t := range c.alphas {
		c.alphas[t] /= sum
	}
	out := NewVec(a.In)
	for t, h := range hs {
		Axpy(c.alphas[t], h, out)
	}
	return out, c
}

// Backward propagates the summary gradient, accumulating parameter
// gradients and returning per-step gradients on the hidden states.
func (a *Attention) Backward(c *AttentionCache, dOut Vec) []Vec {
	T := len(c.hs)
	dhs := make([]Vec, T)
	dAlpha := NewVec(T)
	for t, h := range c.hs {
		// s = Σ α_t h_t: direct path into h_t ...
		dh := NewVec(a.In)
		Axpy(c.alphas[t], dOut, dh)
		dhs[t] = dh
		// ... and into α_t.
		dAlpha[t] = Dot(dOut, h)
	}
	// Softmax backward: dE_t = α_t (dAlpha_t - Σ_k α_k dAlpha_k).
	var dot float64
	for t := range dAlpha {
		dot += c.alphas[t] * dAlpha[t]
	}
	for t := 0; t < T; t++ {
		dE := c.alphas[t] * (dAlpha[t] - dot)
		if dE == 0 {
			continue
		}
		// e_t = vᵀ u_t.
		du := NewVec(a.Att)
		Axpy(dE, a.V.W, du)
		// v gradient.
		Axpy(dE, c.us[t], a.V.G)
		// u_t = tanh(W h_t).
		dPre := NewVec(a.Att)
		for i := range du {
			dPre[i] = du[i] * (1 - c.us[t][i]*c.us[t][i])
		}
		a.W.AccumOuter(dPre, c.hs[t])
		a.W.MatTVecAdd(dPre, dhs[t])
	}
	return dhs
}

// Params returns the trainable parameters.
func (a *Attention) Params() []*Param { return []*Param{a.W, a.V} }
