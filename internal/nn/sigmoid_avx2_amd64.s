// Vectorized sigmoid for the "avx2" backend (registered in
// gemm_avx2_amd64.go). Like the GEMM microkernel, SIMD runs ACROSS
// elements: each ymm lane executes, in the same order, exactly the
// operation sequence the scalar path executes for that element —
// math.Exp's amd64 FMA path (exp_amd64.s, Shibata's method, constants
// copied verbatim) on -|x|, then num/(1+z) with num selected by the sign
// of x — so every lane's result is bit-identical to nn.Sigmoid. The
// routine is only enabled when math.Exp itself takes the FMA path
// (AVX+FMA, mirroring math's useFMA), because the two scalar Exp variants
// round differently.
//
// Lanes that need math.Exp's special-case handling (non-finite input, or
// a 2**e scale outside the normal range — |x| beyond ~708) stop the
// vector sweep; the caller finishes with scalar Sigmoid, which takes the
// identical special-case branches of math.Exp.

#include "textflag.h"

DATA sigdata<>+0(SB)/8, $1.4426950408889634073599246810018920 // LOG2E
DATA sigdata<>+8(SB)/8, $1.4426950408889634073599246810018920
DATA sigdata<>+16(SB)/8, $1.4426950408889634073599246810018920
DATA sigdata<>+24(SB)/8, $1.4426950408889634073599246810018920
DATA sigdata<>+32(SB)/8, $0.69314718055966295651160180568695068359375 // LN2U
DATA sigdata<>+40(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigdata<>+48(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigdata<>+56(SB)/8, $0.69314718055966295651160180568695068359375
DATA sigdata<>+64(SB)/8, $0.28235290563031577122588448175013436025525412068e-12 // LN2L
DATA sigdata<>+72(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigdata<>+80(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigdata<>+88(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA sigdata<>+96(SB)/8, $0.0625
DATA sigdata<>+104(SB)/8, $0.0625
DATA sigdata<>+112(SB)/8, $0.0625
DATA sigdata<>+120(SB)/8, $0.0625
DATA sigdata<>+128(SB)/8, $2.4801587301587301587e-5
DATA sigdata<>+136(SB)/8, $2.4801587301587301587e-5
DATA sigdata<>+144(SB)/8, $2.4801587301587301587e-5
DATA sigdata<>+152(SB)/8, $2.4801587301587301587e-5
DATA sigdata<>+160(SB)/8, $1.9841269841269841270e-4
DATA sigdata<>+168(SB)/8, $1.9841269841269841270e-4
DATA sigdata<>+176(SB)/8, $1.9841269841269841270e-4
DATA sigdata<>+184(SB)/8, $1.9841269841269841270e-4
DATA sigdata<>+192(SB)/8, $1.3888888888888888889e-3
DATA sigdata<>+200(SB)/8, $1.3888888888888888889e-3
DATA sigdata<>+208(SB)/8, $1.3888888888888888889e-3
DATA sigdata<>+216(SB)/8, $1.3888888888888888889e-3
DATA sigdata<>+224(SB)/8, $8.3333333333333333333e-3
DATA sigdata<>+232(SB)/8, $8.3333333333333333333e-3
DATA sigdata<>+240(SB)/8, $8.3333333333333333333e-3
DATA sigdata<>+248(SB)/8, $8.3333333333333333333e-3
DATA sigdata<>+256(SB)/8, $4.1666666666666666667e-2
DATA sigdata<>+264(SB)/8, $4.1666666666666666667e-2
DATA sigdata<>+272(SB)/8, $4.1666666666666666667e-2
DATA sigdata<>+280(SB)/8, $4.1666666666666666667e-2
DATA sigdata<>+288(SB)/8, $1.6666666666666666667e-1
DATA sigdata<>+296(SB)/8, $1.6666666666666666667e-1
DATA sigdata<>+304(SB)/8, $1.6666666666666666667e-1
DATA sigdata<>+312(SB)/8, $1.6666666666666666667e-1
DATA sigdata<>+320(SB)/8, $0.5
DATA sigdata<>+328(SB)/8, $0.5
DATA sigdata<>+336(SB)/8, $0.5
DATA sigdata<>+344(SB)/8, $0.5
DATA sigdata<>+352(SB)/8, $1.0
DATA sigdata<>+360(SB)/8, $1.0
DATA sigdata<>+368(SB)/8, $1.0
DATA sigdata<>+376(SB)/8, $1.0
DATA sigdata<>+384(SB)/8, $2.0
DATA sigdata<>+392(SB)/8, $2.0
DATA sigdata<>+400(SB)/8, $2.0
DATA sigdata<>+408(SB)/8, $2.0
DATA sigdata<>+416(SB)/8, $0x7FFFFFFFFFFFFFFF // abs mask
DATA sigdata<>+424(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA sigdata<>+432(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA sigdata<>+440(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA sigdata<>+448(SB)/8, $0x7FF0000000000000 // +Inf
DATA sigdata<>+456(SB)/8, $0x7FF0000000000000
DATA sigdata<>+464(SB)/8, $0x7FF0000000000000
DATA sigdata<>+472(SB)/8, $0x7FF0000000000000
DATA sigdata<>+480(SB)/4, $0x3FF // exponent bias, 4 x int32
DATA sigdata<>+484(SB)/4, $0x3FF
DATA sigdata<>+488(SB)/4, $0x3FF
DATA sigdata<>+492(SB)/4, $0x3FF
DATA sigdata<>+496(SB)/8, $0x8000000000000000 // sign mask
DATA sigdata<>+504(SB)/8, $0x8000000000000000
DATA sigdata<>+512(SB)/8, $0x8000000000000000
DATA sigdata<>+520(SB)/8, $0x8000000000000000
GLOBL sigdata<>+0(SB), RODATA, $528

// func sigmoidVecAVX2(dst, x []float64) int
//
// dst[i] = Sigmoid(x[i]) for i in [0, ret); dst may alias x. Processes
// four lanes per iteration and returns early (a multiple of 4) at the
// first block containing a lane Exp's fast path cannot handle.
TEXT ·sigmoidVecAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX
	XORQ BX, BX             // processed

loop:
	MOVQ CX, AX
	SUBQ BX, AX
	CMPQ AX, $4
	JLT  done

	VMOVUPD (SI)(BX*8), Y0  // x

	// finite mask: +Inf > (x &^ sign), signed 64-bit compare
	VANDPD sigdata<>+416(SB), Y0, Y6
	VMOVUPD sigdata<>+448(SB), Y7
	VPCMPGTQ Y6, Y7, Y6

	// t = -|x|; e = int32(t * LOG2E) rounded per MXCSR, like CVTSD2SL
	VORPD sigdata<>+496(SB), Y0, Y1
	VMULPD sigdata<>+0(SB), Y1, Y2
	VCVTPD2DQY Y2, X10
	VCVTDQ2PD X10, Y2

	// argument reduction: t -= e*LN2U; t -= e*LN2L; t *= 0.0625
	VFNMADD231PD sigdata<>+32(SB), Y2, Y1
	VFNMADD231PD sigdata<>+64(SB), Y2, Y1
	VMULPD sigdata<>+96(SB), Y1, Y1

	// Taylor series, identical coefficient order to exp_amd64.s
	VMOVUPD sigdata<>+128(SB), Y3
	VFMADD213PD sigdata<>+160(SB), Y1, Y3
	VFMADD213PD sigdata<>+192(SB), Y1, Y3
	VFMADD213PD sigdata<>+224(SB), Y1, Y3
	VFMADD213PD sigdata<>+256(SB), Y1, Y3
	VFMADD213PD sigdata<>+288(SB), Y1, Y3
	VFMADD213PD sigdata<>+320(SB), Y1, Y3
	VFMADD213PD sigdata<>+352(SB), Y1, Y3
	VMULPD Y3, Y1, Y3       // f = t * p

	// (1+f)**16 reconstruction: f = f*(f+2) four times, last step fused
	// with the final +1, matching the scalar avxfma tail exactly
	VADDPD sigdata<>+384(SB), Y3, Y4
	VMULPD Y4, Y3, Y3
	VADDPD sigdata<>+384(SB), Y3, Y4
	VMULPD Y4, Y3, Y3
	VADDPD sigdata<>+384(SB), Y3, Y4
	VMULPD Y4, Y3, Y3
	VADDPD sigdata<>+384(SB), Y3, Y4
	VFMADD213PD sigdata<>+352(SB), Y4, Y3

	// ldexp: e += bias; normal-range mask (e >= 1; t <= 0 rules out the
	// overflow side); bail before storing if any lane is special
	VPADDD sigdata<>+480(SB), X10, X10
	VPXOR X11, X11, X11
	VPCMPGTD X11, X10, X11
	VPMOVSXDQ X11, Y7
	VPAND Y7, Y6, Y6
	VMOVMSKPD Y6, AX
	CMPQ AX, $0xF
	JNE  done

	VPMOVSXDQ X10, Y5
	VPSLLQ $52, Y5, Y5
	VMULPD Y5, Y3, Y3       // z = f * 2**e = Exp(-|x|)

	// sigmoid: num/(1+z) with num = z where x < 0, else 1
	VADDPD sigdata<>+352(SB), Y3, Y9
	VXORPD Y4, Y4, Y4
	VCMPPD $1, Y4, Y0, Y8   // x < 0 (ordered), like the scalar branch
	VMOVUPD sigdata<>+352(SB), Y4
	VBLENDVPD Y8, Y3, Y4, Y8
	VDIVPD Y9, Y8, Y3
	VMOVUPD Y3, (DI)(BX*8)

	ADDQ $4, BX
	JMP  loop

done:
	MOVQ BX, ret+48(FP)
	VZEROUPPER
	RET
