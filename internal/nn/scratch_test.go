package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randSeq(rng *rand.Rand, T, dim int) []Vec {
	xs := make([]Vec, T)
	for t := range xs {
		xs[t] = make(Vec, dim)
		for i := range xs[t] {
			xs[t][i] = rng.NormFloat64() * 0.1
		}
	}
	return xs
}

func deepCopy(vs []Vec) []Vec {
	out := make([]Vec, len(vs))
	for i, v := range vs {
		out[i] = Copy(v)
	}
	return out
}

// TestGRUScratchReuseMatchesFresh verifies that releasing and reusing the
// pooled scratch produces bit-identical activations and gradients across
// repeated passes.
func TestGRUScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRU("t", 6, 5, rng)
	xs := randSeq(rng, 7, 6)
	dhs := make([]Vec, 7)
	dhs[6] = make(Vec, 5)
	for i := range dhs[6] {
		dhs[6][i] = rng.NormFloat64()
	}

	hs1, c1 := g.Forward(xs)
	wantHs := deepCopy(hs1)
	wantDxs := deepCopy(g.Backward(c1, dhs))
	wantGrad := Copy(g.Wz.G)
	c1.Release()
	for _, p := range g.Params() {
		p.ZeroGrad()
	}

	for pass := 0; pass < 3; pass++ {
		hs, c := g.Forward(xs)
		for t2 := range hs {
			for i := range hs[t2] {
				if hs[t2][i] != wantHs[t2][i] {
					t.Fatalf("pass %d: hidden state differs at t=%d i=%d", pass, t2, i)
				}
			}
		}
		dxs := g.Backward(c, dhs)
		for t2 := range dxs {
			for i := range dxs[t2] {
				if dxs[t2][i] != wantDxs[t2][i] {
					t.Fatalf("pass %d: input gradient differs at t=%d i=%d", pass, t2, i)
				}
			}
		}
		for i := range g.Wz.G {
			if g.Wz.G[i] != wantGrad[i] {
				t.Fatalf("pass %d: Wz gradient differs at %d", pass, i)
			}
		}
		c.Release()
		for _, p := range g.Params() {
			p.ZeroGrad()
		}
	}
}

// TestLSTMScratchReuseMatchesFresh mirrors the GRU test for the LSTM body.
func TestLSTMScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM("t", 6, 5, rng)
	xs := randSeq(rng, 7, 6)
	dhs := make([]Vec, 7)
	dhs[6] = make(Vec, 5)
	for i := range dhs[6] {
		dhs[6][i] = rng.NormFloat64()
	}
	hs1, c1 := l.Forward(xs)
	wantLast := Copy(hs1[6])
	wantDx0 := Copy(l.Backward(c1, dhs)[0])
	c1.Release()
	for _, p := range l.Params() {
		p.ZeroGrad()
	}

	hs2, c2 := l.Forward(xs)
	for i := range wantLast {
		if hs2[6][i] != wantLast[i] {
			t.Fatal("LSTM hidden state differs after scratch reuse")
		}
	}
	dx0 := l.Backward(c2, dhs)[0]
	for i := range wantDx0 {
		if dx0[i] != wantDx0[i] {
			t.Fatal("LSTM input gradient differs after scratch reuse")
		}
	}
	c2.Release()
}

// TestGRUForwardBackwardAllocs is the allocation-regression guard for the
// recurrent scratch arena: a full forward+backward step with a released
// cache performs O(1) small allocations (the cache header), not O(T).
func TestGRUForwardBackwardAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGRU("t", 16, 12, rng)
	xs := randSeq(rng, 10, 16)
	dhs := make([]Vec, 10)
	// Warm the pool and the arena.
	for i := 0; i < 3; i++ {
		hs, c := g.Forward(xs)
		dhs[9] = hs[9]
		g.Backward(c, dhs)
		c.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		hs, c := g.Forward(xs)
		dhs[9] = hs[9]
		g.Backward(c, dhs)
		c.Release()
	})
	if allocs > 3 {
		t.Fatalf("GRU forward+backward allocated %.1f times per step, want <= 3", allocs)
	}
}

// TestArenaGrowthKeepsVectors checks that vectors handed out before a slab
// grows stay valid and zero-initialized semantics hold.
func TestArenaGrowthKeepsVectors(t *testing.T) {
	var a arena
	v1 := a.vec(4)
	copy(v1, []float64{1, 2, 3, 4})
	// Force growth well past the initial slab.
	for i := 0; i < 64; i++ {
		v := a.vec(257)
		for _, x := range v {
			if x != 0 {
				t.Fatal("arena vec not zeroed")
			}
		}
	}
	if v1[0] != 1 || v1[3] != 4 {
		t.Fatal("vector from old slab corrupted by arena growth")
	}
	if math.IsNaN(v1[2]) {
		t.Fatal("unexpected NaN")
	}
}
