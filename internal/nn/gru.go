package nn

import (
	"math/rand"
	"sync"
)

// GRU is a gated recurrent unit processing a sequence of input vectors into
// a sequence of hidden states:
//
//	z_t = σ(Wz·x_t + Uz·h_{t-1} + bz)       update gate
//	r_t = σ(Wr·x_t + Ur·h_{t-1} + br)       reset gate
//	ĥ_t = tanh(Wh·x_t + Uh·(r_t⊙h_{t-1}) + bh)
//	h_t = (1-z_t)⊙h_{t-1} + z_t⊙ĥ_t
//
// This is the recurrent body of PathRank: the sequence of vertex embeddings
// of a candidate path is folded into hidden states whose summary feeds the
// regression head.
type GRU struct {
	In, Hidden int

	Wz, Uz, Wr, Ur, Wh, Uh *Param
	Bz, Br, Bh             *Param

	// scratch pools per-pass workspaces so per-timestep gate vectors and
	// caches are reused across samples. sync.Pool keeps concurrent
	// forward passes (parallel Evaluate/Rank) isolated.
	scratch sync.Pool
}

// NewGRU returns a GRU with Xavier-initialized weights.
func NewGRU(name string, in, hidden int, rng *rand.Rand) *GRU {
	g := &GRU{
		In: in, Hidden: hidden,
		Wz: NewParam(name+".Wz", hidden, in),
		Uz: NewParam(name+".Uz", hidden, hidden),
		Wr: NewParam(name+".Wr", hidden, in),
		Ur: NewParam(name+".Ur", hidden, hidden),
		Wh: NewParam(name+".Wh", hidden, in),
		Uh: NewParam(name+".Uh", hidden, hidden),
		Bz: NewParam(name+".bz", 1, hidden),
		Br: NewParam(name+".br", 1, hidden),
		Bh: NewParam(name+".bh", 1, hidden),
	}
	for _, p := range []*Param{g.Wz, g.Uz, g.Wr, g.Ur, g.Wh, g.Uh} {
		p.InitXavier(rng)
	}
	return g
}

// gruScratch is the reusable workspace of one forward(+backward) pass.
type gruScratch struct {
	ar                        arena
	hs, zs, rs, hhats, rhPrev []Vec
	dxs                       []Vec
}

// GRUCache stores per-step activations for backpropagation through time.
// Caches returned by Forward borrow memory from the GRU's scratch pool;
// call Release when the cache (and any slices obtained from it or from
// Backward) is no longer needed, so the memory is reused by the next pass.
// Releasing is optional — an unreleased cache is simply collected by the GC.
type GRUCache struct {
	xs     []Vec // inputs
	hs     []Vec // hidden states, hs[t] = h_t (hs has len T; h_{-1} is zero)
	zs     []Vec
	rs     []Vec
	hhats  []Vec
	rhPrev []Vec // r_t ⊙ h_{t-1}

	owner *GRU
	ws    *gruScratch
}

// Len returns the sequence length of the cached forward pass.
func (c *GRUCache) Len() int { return len(c.xs) }

// Hidden returns the hidden state at step t.
func (c *GRUCache) Hidden(t int) Vec { return c.hs[t] }

// Release returns the cache's scratch memory to the GRU's pool. The cache,
// the hidden states returned by Forward and the gradients returned by
// Backward must not be used afterwards.
func (c *GRUCache) Release() {
	if c.ws == nil {
		return
	}
	c.owner.scratch.Put(c.ws)
	c.ws = nil
}

// Forward runs the GRU over xs and returns the hidden-state sequence and a
// cache for Backward. The initial hidden state is zero.
func (g *GRU) Forward(xs []Vec) ([]Vec, *GRUCache) {
	ws, _ := g.scratch.Get().(*gruScratch)
	if ws == nil {
		ws = new(gruScratch)
	}
	ws.ar.reset()
	T := len(xs)
	H := g.Hidden
	ws.hs = growVecSlice(ws.hs, T)
	ws.zs = growVecSlice(ws.zs, T)
	ws.rs = growVecSlice(ws.rs, T)
	ws.hhats = growVecSlice(ws.hhats, T)
	ws.rhPrev = growVecSlice(ws.rhPrev, T)
	c := &GRUCache{
		xs: xs, hs: ws.hs, zs: ws.zs, rs: ws.rs, hhats: ws.hhats,
		rhPrev: ws.rhPrev, owner: g, ws: ws,
	}
	hPrev := ws.ar.vec(H)
	for t := 0; t < T; t++ {
		z := ws.ar.vec(H)
		r := ws.ar.vec(H)
		hh := ws.ar.vec(H)
		g.Wz.MatVec(xs[t], z)
		g.Uz.MatVecAdd(hPrev, z)
		AddTo(z, g.Bz.W)
		SigmoidVec(z, z)

		g.Wr.MatVec(xs[t], r)
		g.Ur.MatVecAdd(hPrev, r)
		AddTo(r, g.Br.W)
		SigmoidVec(r, r)

		rh := ws.ar.vec(H)
		Hadamard(rh, r, hPrev)
		g.Wh.MatVec(xs[t], hh)
		g.Uh.MatVecAdd(rh, hh)
		AddTo(hh, g.Bh.W)
		TanhVec(hh, hh)

		h := ws.ar.vec(H)
		for i := 0; i < H; i++ {
			h[i] = (1-z[i])*hPrev[i] + z[i]*hh[i]
		}
		c.zs[t], c.rs[t], c.hhats[t], c.rhPrev[t], c.hs[t] = z, r, hh, rh, h
		hPrev = h
	}
	return c.hs, c
}

// Backward propagates the hidden-state gradients dhs (one Vec per step; nil
// entries mean zero gradient at that step), accumulates parameter gradients,
// and returns gradients with respect to the inputs.
func (g *GRU) Backward(c *GRUCache, dhs []Vec) []Vec {
	T := c.Len()
	H := g.Hidden
	ws := c.ws
	if ws == nil { // released cache: fall back to a private workspace
		ws = new(gruScratch)
	}
	ws.dxs = growVecSlice(ws.dxs, T)
	dxs := ws.dxs
	ar := &ws.ar
	// Per-step temporaries, reused across all T steps.
	dh := ar.vec(H)
	dhNext := ar.vec(H) // gradient flowing back from step t+1 into h_t
	dhPrev := ar.vec(H)
	dz := ar.vec(H)
	dhh := ar.vec(H)
	dhhPre := ar.vec(H)
	dRH := ar.vec(H)
	dr := ar.vec(H)
	drPre := ar.vec(H)
	dzPre := ar.vec(H)
	hZero := ar.vec(H)

	for t := T - 1; t >= 0; t-- {
		copy(dh, dhNext)
		if t < len(dhs) && dhs[t] != nil {
			AddTo(dh, dhs[t])
		}
		hPrev := hZero
		if t > 0 {
			hPrev = c.hs[t-1]
		}
		z, r, hh := c.zs[t], c.rs[t], c.hhats[t]

		// h_t = (1-z)*hPrev + z*hh
		for i := 0; i < H; i++ {
			dz[i] = dh[i] * (hh[i] - hPrev[i])
			dhh[i] = dh[i] * z[i]
			dhPrev[i] = dh[i] * (1 - z[i])
		}

		// ĥ = tanh(Wh x + Uh (r⊙hPrev) + bh)
		for i := 0; i < H; i++ {
			dhhPre[i] = dhh[i] * (1 - hh[i]*hh[i])
			dRH[i] = 0
		}
		g.Wh.AccumOuter(dhhPre, c.xs[t])
		g.Uh.AccumOuter(dhhPre, c.rhPrev[t])
		AddTo(g.Bh.G, dhhPre)
		dx := ar.vec(g.In)
		g.Wh.MatTVecAdd(dhhPre, dx)
		g.Uh.MatTVecAdd(dhhPre, dRH)
		for i := 0; i < H; i++ {
			dr[i] = dRH[i] * hPrev[i]
			dhPrev[i] += dRH[i] * r[i]
		}

		// r = σ(Wr x + Ur hPrev + br)
		for i := 0; i < H; i++ {
			drPre[i] = dr[i] * r[i] * (1 - r[i])
		}
		g.Wr.AccumOuter(drPre, c.xs[t])
		g.Ur.AccumOuter(drPre, hPrev)
		AddTo(g.Br.G, drPre)
		g.Wr.MatTVecAdd(drPre, dx)
		g.Ur.MatTVecAdd(drPre, dhPrev)

		// z = σ(Wz x + Uz hPrev + bz)
		for i := 0; i < H; i++ {
			dzPre[i] = dz[i] * z[i] * (1 - z[i])
		}
		g.Wz.AccumOuter(dzPre, c.xs[t])
		g.Uz.AccumOuter(dzPre, hPrev)
		AddTo(g.Bz.G, dzPre)
		g.Wz.MatTVecAdd(dzPre, dx)
		g.Uz.MatTVecAdd(dzPre, dhPrev)

		dxs[t] = dx
		dhNext, dhPrev = dhPrev, dhNext
	}
	return dxs
}

// Params returns the trainable parameters.
func (g *GRU) Params() []*Param {
	return []*Param{g.Wz, g.Uz, g.Wr, g.Ur, g.Wh, g.Uh, g.Bz, g.Br, g.Bh}
}

// BiGRU runs a forward and a backward GRU over the sequence and concatenates
// their hidden states, as in PathRank's architecture sketch.
type BiGRU struct {
	Fwd, Bwd *GRU
}

// NewBiGRU returns a bidirectional GRU; each direction has the given hidden
// size, so the concatenated state has 2*hidden dimensions.
func NewBiGRU(name string, in, hidden int, rng *rand.Rand) *BiGRU {
	return &BiGRU{
		Fwd: NewGRU(name+".fwd", in, hidden, rng),
		Bwd: NewGRU(name+".bwd", in, hidden, rng),
	}
}

// OutDim returns the concatenated hidden dimensionality.
func (b *BiGRU) OutDim() int { return b.Fwd.Hidden + b.Bwd.Hidden }

// BiGRUCache holds both directions' caches.
type BiGRUCache struct {
	fc, bc *GRUCache
	T      int
}

// Release returns both directions' scratch memory to their pools.
func (c *BiGRUCache) Release() {
	c.fc.Release()
	c.bc.Release()
}

// Forward returns per-step concatenated hidden states [h_fwd_t ; h_bwd_t].
func (b *BiGRU) Forward(xs []Vec) ([]Vec, *BiGRUCache) {
	T := len(xs)
	rev := make([]Vec, T)
	for t := 0; t < T; t++ {
		rev[t] = xs[T-1-t]
	}
	hf, fc := b.Fwd.Forward(xs)
	hb, bc := b.Bwd.Forward(rev)
	out := make([]Vec, T)
	for t := 0; t < T; t++ {
		o := NewVec(b.OutDim())
		copy(o, hf[t])
		copy(o[b.Fwd.Hidden:], hb[T-1-t])
		out[t] = o
	}
	return out, &BiGRUCache{fc: fc, bc: bc, T: T}
}

// Backward propagates per-step gradients on the concatenated states and
// returns input gradients.
func (b *BiGRU) Backward(c *BiGRUCache, dhs []Vec) []Vec {
	T := c.T
	df := make([]Vec, T)
	db := make([]Vec, T)
	for t := 0; t < T; t++ {
		if t < len(dhs) && dhs[t] != nil {
			df[t] = Copy(dhs[t][:b.Fwd.Hidden])
			dbv := Copy(dhs[t][b.Fwd.Hidden:])
			db[T-1-t] = dbv
		}
	}
	dxf := b.Fwd.Backward(c.fc, df)
	dxbRev := b.Bwd.Backward(c.bc, db)
	dxs := make([]Vec, T)
	for t := 0; t < T; t++ {
		dx := Copy(dxf[t])
		AddTo(dx, dxbRev[T-1-t])
		dxs[t] = dx
	}
	return dxs
}

// Params returns the trainable parameters of both directions.
func (b *BiGRU) Params() []*Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}
