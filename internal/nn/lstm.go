package nn

import (
	"math/rand"
	"sync"
)

// LSTM is a long short-term memory cell, provided as an ablation alternative
// to the GRU body of PathRank:
//
//	i_t = σ(Wi·x_t + Ui·h_{t-1} + bi)
//	f_t = σ(Wf·x_t + Uf·h_{t-1} + bf)
//	o_t = σ(Wo·x_t + Uo·h_{t-1} + bo)
//	g_t = tanh(Wg·x_t + Ug·h_{t-1} + bg)
//	c_t = f_t⊙c_{t-1} + i_t⊙g_t
//	h_t = o_t⊙tanh(c_t)
type LSTM struct {
	In, Hidden int

	Wi, Ui, Wf, Uf, Wo, Uo, Wg, Ug *Param
	Bi, Bf, Bo, Bg                 *Param

	// scratch pools per-pass workspaces, mirroring GRU.
	scratch sync.Pool
}

// NewLSTM returns an LSTM with Xavier-initialized weights and forget-gate
// bias 1 (the standard trick that eases gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wi: NewParam(name+".Wi", hidden, in), Ui: NewParam(name+".Ui", hidden, hidden),
		Wf: NewParam(name+".Wf", hidden, in), Uf: NewParam(name+".Uf", hidden, hidden),
		Wo: NewParam(name+".Wo", hidden, in), Uo: NewParam(name+".Uo", hidden, hidden),
		Wg: NewParam(name+".Wg", hidden, in), Ug: NewParam(name+".Ug", hidden, hidden),
		Bi: NewParam(name+".bi", 1, hidden), Bf: NewParam(name+".bf", 1, hidden),
		Bo: NewParam(name+".bo", 1, hidden), Bg: NewParam(name+".bg", 1, hidden),
	}
	for _, p := range []*Param{l.Wi, l.Ui, l.Wf, l.Uf, l.Wo, l.Uo, l.Wg, l.Ug} {
		p.InitXavier(rng)
	}
	for i := range l.Bf.W {
		l.Bf.W[i] = 1
	}
	return l
}

// lstmScratch is the reusable workspace of one forward(+backward) pass.
type lstmScratch struct {
	ar                            arena
	hs, cs, is, fs, os, gs, tanhC []Vec
	dxs                           []Vec
}

// LSTMCache stores per-step activations for BPTT. Like GRUCache it borrows
// pooled scratch memory; call Release when done (optional).
type LSTMCache struct {
	xs             []Vec
	hs, cs         []Vec
	is, fs, os, gs []Vec
	tanhC          []Vec

	owner *LSTM
	ws    *lstmScratch
}

// Len returns the cached sequence length.
func (c *LSTMCache) Len() int { return len(c.xs) }

// Release returns the cache's scratch memory to the LSTM's pool. The cache
// and any slices obtained from it or Backward must not be used afterwards.
func (c *LSTMCache) Release() {
	if c.ws == nil {
		return
	}
	c.owner.scratch.Put(c.ws)
	c.ws = nil
}

// Forward runs the LSTM over xs from zero initial state.
func (l *LSTM) Forward(xs []Vec) ([]Vec, *LSTMCache) {
	ws, _ := l.scratch.Get().(*lstmScratch)
	if ws == nil {
		ws = new(lstmScratch)
	}
	ws.ar.reset()
	T := len(xs)
	H := l.Hidden
	ws.hs = growVecSlice(ws.hs, T)
	ws.cs = growVecSlice(ws.cs, T)
	ws.is = growVecSlice(ws.is, T)
	ws.fs = growVecSlice(ws.fs, T)
	ws.os = growVecSlice(ws.os, T)
	ws.gs = growVecSlice(ws.gs, T)
	ws.tanhC = growVecSlice(ws.tanhC, T)
	c := &LSTMCache{
		xs: xs,
		hs: ws.hs, cs: ws.cs,
		is: ws.is, fs: ws.fs,
		os: ws.os, gs: ws.gs,
		tanhC: ws.tanhC,
		owner: l, ws: ws,
	}
	hPrev, cPrev := ws.ar.vec(H), ws.ar.vec(H)
	for t := 0; t < T; t++ {
		i := ws.ar.vec(H)
		f := ws.ar.vec(H)
		o := ws.ar.vec(H)
		gg := ws.ar.vec(H)
		l.Wi.MatVec(xs[t], i)
		l.Ui.MatVecAdd(hPrev, i)
		AddTo(i, l.Bi.W)
		SigmoidVec(i, i)
		l.Wf.MatVec(xs[t], f)
		l.Uf.MatVecAdd(hPrev, f)
		AddTo(f, l.Bf.W)
		SigmoidVec(f, f)
		l.Wo.MatVec(xs[t], o)
		l.Uo.MatVecAdd(hPrev, o)
		AddTo(o, l.Bo.W)
		SigmoidVec(o, o)
		l.Wg.MatVec(xs[t], gg)
		l.Ug.MatVecAdd(hPrev, gg)
		AddTo(gg, l.Bg.W)
		TanhVec(gg, gg)

		ct := ws.ar.vec(H)
		ht := ws.ar.vec(H)
		tc := ws.ar.vec(H)
		for k := 0; k < H; k++ {
			ct[k] = f[k]*cPrev[k] + i[k]*gg[k]
		}
		TanhVec(tc, ct)
		for k := 0; k < H; k++ {
			ht[k] = o[k] * tc[k]
		}
		c.is[t], c.fs[t], c.os[t], c.gs[t] = i, f, o, gg
		c.cs[t], c.hs[t], c.tanhC[t] = ct, ht, tc
		hPrev, cPrev = ht, ct
	}
	return c.hs, c
}

// Backward propagates hidden-state gradients dhs (nil entries mean zero)
// and returns input gradients, accumulating parameter gradients.
func (l *LSTM) Backward(c *LSTMCache, dhs []Vec) []Vec {
	T := c.Len()
	H := l.Hidden
	ws := c.ws
	if ws == nil { // released cache: fall back to a private workspace
		ws = new(lstmScratch)
	}
	ws.dxs = growVecSlice(ws.dxs, T)
	dxs := ws.dxs
	ar := &ws.ar
	// Per-step temporaries, reused across all T steps.
	dh := ar.vec(H)
	dhNext := ar.vec(H)
	dhPrev := ar.vec(H)
	dc := ar.vec(H)
	dcNext := ar.vec(H)
	dcPrev := ar.vec(H)
	di := ar.vec(H)
	df := ar.vec(H)
	do := ar.vec(H)
	dg := ar.vec(H)
	diPre := ar.vec(H)
	dfPre := ar.vec(H)
	doPre := ar.vec(H)
	dgPre := ar.vec(H)
	zero := ar.vec(H)

	for t := T - 1; t >= 0; t-- {
		copy(dh, dhNext)
		if t < len(dhs) && dhs[t] != nil {
			AddTo(dh, dhs[t])
		}
		hPrev, cPrev := zero, zero
		if t > 0 {
			hPrev, cPrev = c.hs[t-1], c.cs[t-1]
		}
		i, f, o, g := c.is[t], c.fs[t], c.os[t], c.gs[t]
		tc := c.tanhC[t]

		copy(dc, dcNext)
		for k := 0; k < H; k++ {
			do[k] = dh[k] * tc[k]
			dc[k] += dh[k] * o[k] * (1 - tc[k]*tc[k])
		}
		for k := 0; k < H; k++ {
			di[k] = dc[k] * g[k]
			df[k] = dc[k] * cPrev[k]
			dg[k] = dc[k] * i[k]
			dcPrev[k] = dc[k] * f[k]
		}

		for k := 0; k < H; k++ {
			diPre[k] = di[k] * i[k] * (1 - i[k])
			dfPre[k] = df[k] * f[k] * (1 - f[k])
			doPre[k] = do[k] * o[k] * (1 - o[k])
			dgPre[k] = dg[k] * (1 - g[k]*g[k])
		}

		dx := ar.vec(l.In)
		for k := 0; k < H; k++ {
			dhPrev[k] = 0
		}
		step := func(W, U, B *Param, dPre Vec) {
			W.AccumOuter(dPre, c.xs[t])
			U.AccumOuter(dPre, hPrev)
			AddTo(B.G, dPre)
			W.MatTVecAdd(dPre, dx)
			U.MatTVecAdd(dPre, dhPrev)
		}
		step(l.Wi, l.Ui, l.Bi, diPre)
		step(l.Wf, l.Uf, l.Bf, dfPre)
		step(l.Wo, l.Uo, l.Bo, doPre)
		step(l.Wg, l.Ug, l.Bg, dgPre)

		dxs[t] = dx
		dhNext, dhPrev = dhPrev, dhNext
		dcNext, dcPrev = dcPrev, dcNext
	}
	return dxs
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*Param {
	return []*Param{
		l.Wi, l.Ui, l.Wf, l.Uf, l.Wo, l.Uo, l.Wg, l.Ug,
		l.Bi, l.Bf, l.Bo, l.Bg,
	}
}
