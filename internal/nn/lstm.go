package nn

import "math/rand"

// LSTM is a long short-term memory cell, provided as an ablation alternative
// to the GRU body of PathRank:
//
//	i_t = σ(Wi·x_t + Ui·h_{t-1} + bi)
//	f_t = σ(Wf·x_t + Uf·h_{t-1} + bf)
//	o_t = σ(Wo·x_t + Uo·h_{t-1} + bo)
//	g_t = tanh(Wg·x_t + Ug·h_{t-1} + bg)
//	c_t = f_t⊙c_{t-1} + i_t⊙g_t
//	h_t = o_t⊙tanh(c_t)
type LSTM struct {
	In, Hidden int

	Wi, Ui, Wf, Uf, Wo, Uo, Wg, Ug *Param
	Bi, Bf, Bo, Bg                 *Param
}

// NewLSTM returns an LSTM with Xavier-initialized weights and forget-gate
// bias 1 (the standard trick that eases gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wi: NewParam(name+".Wi", hidden, in), Ui: NewParam(name+".Ui", hidden, hidden),
		Wf: NewParam(name+".Wf", hidden, in), Uf: NewParam(name+".Uf", hidden, hidden),
		Wo: NewParam(name+".Wo", hidden, in), Uo: NewParam(name+".Uo", hidden, hidden),
		Wg: NewParam(name+".Wg", hidden, in), Ug: NewParam(name+".Ug", hidden, hidden),
		Bi: NewParam(name+".bi", 1, hidden), Bf: NewParam(name+".bf", 1, hidden),
		Bo: NewParam(name+".bo", 1, hidden), Bg: NewParam(name+".bg", 1, hidden),
	}
	for _, p := range []*Param{l.Wi, l.Ui, l.Wf, l.Uf, l.Wo, l.Uo, l.Wg, l.Ug} {
		p.InitXavier(rng)
	}
	for i := range l.Bf.W {
		l.Bf.W[i] = 1
	}
	return l
}

// LSTMCache stores per-step activations for BPTT.
type LSTMCache struct {
	xs             []Vec
	hs, cs         []Vec
	is, fs, os, gs []Vec
	tanhC          []Vec
}

// Len returns the cached sequence length.
func (c *LSTMCache) Len() int { return len(c.xs) }

// Forward runs the LSTM over xs from zero initial state.
func (l *LSTM) Forward(xs []Vec) ([]Vec, *LSTMCache) {
	T := len(xs)
	H := l.Hidden
	c := &LSTMCache{
		xs: xs,
		hs: make([]Vec, T), cs: make([]Vec, T),
		is: make([]Vec, T), fs: make([]Vec, T),
		os: make([]Vec, T), gs: make([]Vec, T),
		tanhC: make([]Vec, T),
	}
	hPrev, cPrev := NewVec(H), NewVec(H)
	for t := 0; t < T; t++ {
		i := NewVec(H)
		f := NewVec(H)
		o := NewVec(H)
		gg := NewVec(H)
		l.Wi.MatVec(xs[t], i)
		l.Ui.MatVecAdd(hPrev, i)
		AddTo(i, l.Bi.W)
		SigmoidVec(i, i)
		l.Wf.MatVec(xs[t], f)
		l.Uf.MatVecAdd(hPrev, f)
		AddTo(f, l.Bf.W)
		SigmoidVec(f, f)
		l.Wo.MatVec(xs[t], o)
		l.Uo.MatVecAdd(hPrev, o)
		AddTo(o, l.Bo.W)
		SigmoidVec(o, o)
		l.Wg.MatVec(xs[t], gg)
		l.Ug.MatVecAdd(hPrev, gg)
		AddTo(gg, l.Bg.W)
		TanhVec(gg, gg)

		ct := NewVec(H)
		ht := NewVec(H)
		tc := NewVec(H)
		for k := 0; k < H; k++ {
			ct[k] = f[k]*cPrev[k] + i[k]*gg[k]
		}
		TanhVec(tc, ct)
		for k := 0; k < H; k++ {
			ht[k] = o[k] * tc[k]
		}
		c.is[t], c.fs[t], c.os[t], c.gs[t] = i, f, o, gg
		c.cs[t], c.hs[t], c.tanhC[t] = ct, ht, tc
		hPrev, cPrev = ht, ct
	}
	return c.hs, c
}

// Backward propagates hidden-state gradients dhs (nil entries mean zero)
// and returns input gradients, accumulating parameter gradients.
func (l *LSTM) Backward(c *LSTMCache, dhs []Vec) []Vec {
	T := c.Len()
	H := l.Hidden
	dxs := make([]Vec, T)
	dhNext := NewVec(H)
	dcNext := NewVec(H)

	for t := T - 1; t >= 0; t-- {
		dh := Copy(dhNext)
		if t < len(dhs) && dhs[t] != nil {
			AddTo(dh, dhs[t])
		}
		var hPrev, cPrev Vec
		if t == 0 {
			hPrev, cPrev = NewVec(H), NewVec(H)
		} else {
			hPrev, cPrev = c.hs[t-1], c.cs[t-1]
		}
		i, f, o, g := c.is[t], c.fs[t], c.os[t], c.gs[t]
		tc := c.tanhC[t]

		do := NewVec(H)
		dc := Copy(dcNext)
		for k := 0; k < H; k++ {
			do[k] = dh[k] * tc[k]
			dc[k] += dh[k] * o[k] * (1 - tc[k]*tc[k])
		}
		di := NewVec(H)
		df := NewVec(H)
		dg := NewVec(H)
		dcPrev := NewVec(H)
		for k := 0; k < H; k++ {
			di[k] = dc[k] * g[k]
			df[k] = dc[k] * cPrev[k]
			dg[k] = dc[k] * i[k]
			dcPrev[k] = dc[k] * f[k]
		}

		diPre := NewVec(H)
		dfPre := NewVec(H)
		doPre := NewVec(H)
		dgPre := NewVec(H)
		for k := 0; k < H; k++ {
			diPre[k] = di[k] * i[k] * (1 - i[k])
			dfPre[k] = df[k] * f[k] * (1 - f[k])
			doPre[k] = do[k] * o[k] * (1 - o[k])
			dgPre[k] = dg[k] * (1 - g[k]*g[k])
		}

		dx := NewVec(l.In)
		dhPrev := NewVec(H)
		step := func(W, U, B *Param, dPre Vec) {
			W.AccumOuter(dPre, c.xs[t])
			U.AccumOuter(dPre, hPrev)
			AddTo(B.G, dPre)
			W.MatTVecAdd(dPre, dx)
			U.MatTVecAdd(dPre, dhPrev)
		}
		step(l.Wi, l.Ui, l.Bi, diPre)
		step(l.Wf, l.Uf, l.Bf, dfPre)
		step(l.Wo, l.Uo, l.Bo, doPre)
		step(l.Wg, l.Ug, l.Bg, dgPre)

		dxs[t] = dx
		dhNext = dhPrev
		dcNext = dcPrev
	}
	return dxs
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*Param {
	return []*Param{
		l.Wi, l.Ui, l.Wf, l.Uf, l.Wo, l.Uo, l.Wg, l.Ug,
		l.Bi, l.Bf, l.Bo, l.Bg,
	}
}
