package nn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// kernelsUnderTest returns every registered backend, so the bit-identity
// sweeps automatically cover arch-specific kernels (e.g. "avx2") on hosts
// that register them.
func kernelsUnderTest() []Kernel {
	ks := make([]Kernel, 0, len(kernels))
	for _, k := range kernels {
		ks = append(ks, k)
	}
	return ks
}

func randMat(rng *rand.Rand, rows, cols int) Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func cloneMat(m Mat) Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// TestKernelsBitIdentical is the contract of the kernel registry: every
// backend must produce bit-identical results to the naive reference on both
// products, including accumulation into a nonzero C, across shapes that
// exercise full register tiles, ragged tails, and single rows/columns.
func TestKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{ // M, K, N
		{1, 1, 1}, {1, 8, 16}, {3, 5, 7}, {4, 16, 16}, {5, 12, 10},
		{8, 32, 16}, {9, 32, 17}, {16, 32, 16}, {33, 24, 20}, {64, 32, 48},
		{12, 1, 16}, {8, 2, 4}, {31, 16, 3},
	}
	for _, sh := range shapes {
		M, K, N := sh[0], sh[1], sh[2]
		A := randMat(rng, M, K)
		Bn := randMat(rng, K, N) // Gemm operand
		Bt := randMat(rng, N, K) // GemmNT operand
		C0 := randMat(rng, M, N) // nonzero accumulation target

		wantG := cloneMat(C0)
		naiveKernel{}.Gemm(wantG, A, Bn)
		wantNT := cloneMat(C0)
		naiveKernel{}.GemmNT(wantNT, A, Bt)

		for _, k := range kernelsUnderTest() {
			gotG := cloneMat(C0)
			k.Gemm(gotG, A, Bn)
			for i := range wantG.Data {
				if gotG.Data[i] != wantG.Data[i] {
					t.Fatalf("%s.Gemm %dx%dx%d: elem %d = %.17g, naive %.17g",
						k.Name(), M, K, N, i, gotG.Data[i], wantG.Data[i])
				}
			}
			gotNT := cloneMat(C0)
			k.GemmNT(gotNT, A, Bt)
			for i := range wantNT.Data {
				if gotNT.Data[i] != wantNT.Data[i] {
					t.Fatalf("%s.GemmNT %dx%dx%d: elem %d = %.17g, naive %.17g",
						k.Name(), M, K, N, i, gotNT.Data[i], wantNT.Data[i])
				}
			}
		}
	}
}

// TestGemmNTMatchesMatVecAdd pins the association the fused scorer relies
// on: one GemmNT row must equal MatVecAdd into the same output.
func TestGemmNTMatchesMatVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewParam("w", 16, 32)
	for i := range p.W {
		p.W[i] = rng.NormFloat64()
	}
	X := randMat(rng, 24, 32)
	Y := NewMat(24, 16)
	p.MatMulAdd(X, Y)
	for r := 0; r < X.Rows; r++ {
		want := NewVec(16)
		p.MatVecAdd(X.Row(r), want)
		for j := range want {
			if Y.Row(r)[j] != want[j] {
				t.Fatalf("row %d col %d: MatMulAdd %.17g != MatVecAdd %.17g",
					r, j, Y.Row(r)[j], want[j])
			}
		}
	}
}

// TestSigmoidVecMatchesScalar is the bit-identity gate of the vectorized
// sigmoid sweep: across ordinary magnitudes, the exact special values the
// SIMD path must hand back to the scalar loop (non-finite, |x| past Exp's
// underflow/denormal range), signed zeros and length tails, SigmoidVec must
// equal an elementwise scalar Sigmoid loop bitwise.
func TestSigmoidVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 20, -20, 700, -700,
		708, -708, 710, -710, 745, -745, 800, -800, 1e308, -1e308,
		math.Inf(1), math.Inf(-1), 5e-324, -5e-324, 1e-300, -1e-300,
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 64, 67} {
		for trial := 0; trial < 4; trial++ {
			x := NewVec(n)
			for i := range x {
				if trial == 3 && rng.Intn(3) == 0 {
					x[i] = specials[rng.Intn(len(specials))]
				} else {
					x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
				}
			}
			want := NewVec(n)
			for i := range x {
				want[i] = Sigmoid(x[i])
			}
			got := NewVec(n)
			SigmoidVec(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d x=%g: SigmoidVec %.17g != Sigmoid %.17g",
						n, trial, x[i], got[i], want[i])
				}
			}
			// In-place application must agree too (the fused scorer
			// activates gate matrices in place).
			SigmoidVec(x, x)
			for i := range want {
				if x[i] != want[i] {
					t.Fatalf("n=%d trial=%d: in-place SigmoidVec %.17g != %.17g",
						n, trial, x[i], want[i])
				}
			}
		}
	}
	// NaN propagates.
	out := NewVec(4)
	SigmoidVec(out, Vec{math.NaN(), 0, math.NaN(), -2})
	if !math.IsNaN(out[0]) || !math.IsNaN(out[2]) || out[1] != 0.5 {
		t.Fatalf("NaN handling: got %v", out)
	}
}

// TestSetKernel covers the selection registry and its error path.
func TestSetKernel(t *testing.T) {
	orig := KernelName()
	defer func() {
		if err := SetKernel(orig); err != nil {
			t.Fatal(err)
		}
	}()
	for name := range kernels {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		if KernelName() != name {
			t.Fatalf("SetKernel(%q) left active kernel %q", name, KernelName())
		}
	}
	err := SetKernel("no-such-backend")
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown kernel error %v does not list registered backends", err)
	}
}

func wantPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

// TestShapePanics pins the unified shape checking across the kernel layer:
// the four hot vector kernels panic with their constant messages (they must
// stay inlinable — see the comment block in mat.go), the batched kernels
// name the offending shapes, and nothing silently truncates.
func TestShapePanics(t *testing.T) {
	p := NewParam("w", 4, 3)
	x3, x4 := NewVec(3), NewVec(4)
	wantPanic(t, "MatVec shape mismatch", func() { p.MatVec(x4, x4) })
	wantPanic(t, "MatVec shape mismatch", func() { p.MatVec(x3, x3) })
	wantPanic(t, "MatVecAdd shape mismatch", func() { p.MatVecAdd(x4, x4) })
	wantPanic(t, "MatTVecAdd shape mismatch", func() { p.MatTVecAdd(x3, x4) })
	wantPanic(t, "AccumOuter shape mismatch", func() { p.AccumOuter(x3, x4) })

	A := NewMat(2, 3)
	wantPanic(t, "Gemm shape mismatch", func() { Gemm(NewMat(2, 5), A, NewMat(4, 5)) })
	wantPanic(t, "GemmNT shape mismatch", func() { GemmNT(NewMat(2, 5), A, NewMat(5, 4)) })
	wantPanic(t, "MatMulAdd shape mismatch", func() { p.MatMulAdd(NewMat(2, 4), NewMat(2, 4)) })
	wantPanic(t, "out of range", func() { A.View(3) })
}

// FuzzGemm cross-checks every registered backend against the naive oracle
// bitwise on fuzzer-chosen shapes and a seeded value stream.
func FuzzGemm(f *testing.F) {
	f.Add(uint8(4), uint8(16), uint8(16), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(9), uint8(32), uint8(17), int64(3))
	f.Add(uint8(33), uint8(7), uint8(20), int64(4))
	f.Fuzz(func(t *testing.T, m, k, n uint8, seed int64) {
		M, K, N := int(m%40)+1, int(k%40)+1, int(n%40)+1
		rng := rand.New(rand.NewSource(seed))
		A := randMat(rng, M, K)
		Bn := randMat(rng, K, N)
		Bt := randMat(rng, N, K)
		C0 := randMat(rng, M, N)

		wantG := cloneMat(C0)
		naiveKernel{}.Gemm(wantG, A, Bn)
		wantNT := cloneMat(C0)
		naiveKernel{}.GemmNT(wantNT, A, Bt)

		for _, kr := range kernelsUnderTest() {
			gotG := cloneMat(C0)
			kr.Gemm(gotG, A, Bn)
			gotNT := cloneMat(C0)
			kr.GemmNT(gotNT, A, Bt)
			for i := range wantG.Data {
				if gotG.Data[i] != wantG.Data[i] {
					t.Fatalf("%s.Gemm %dx%dx%d elem %d: %.17g != %.17g",
						kr.Name(), M, K, N, i, gotG.Data[i], wantG.Data[i])
				}
			}
			for i := range wantNT.Data {
				if gotNT.Data[i] != wantNT.Data[i] {
					t.Fatalf("%s.GemmNT %dx%dx%d elem %d: %.17g != %.17g",
						kr.Name(), M, K, N, i, gotNT.Data[i], wantNT.Data[i])
				}
			}
		}
	})
}

// BenchmarkGemm measures GemmNT on the fused scorer's hoisted-gate shape
// (a chunk of packed timesteps times one gate weight) for each backend.
func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	A := randMat(rng, 256, 32)
	B := randMat(rng, 16, 32)
	C := NewMat(256, 16)
	for _, k := range kernelsUnderTest() {
		b.Run(k.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.GemmNT(C, A, B)
			}
		})
	}
}

// BenchmarkGemmNT measures the package-level entry point (whatever backend
// is active — avx2 where supported). This is the benchdiff-gated variant:
// unlike the per-backend sub-benchmarks above it has a flat name, and its
// allocs/op pins the zero-alloc steady state of the scratch-panel pool.
func BenchmarkGemmNT(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	A := randMat(rng, 256, 32)
	B := randMat(rng, 16, 32)
	C := NewMat(256, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GemmNT(C, A, B)
	}
}

// BenchmarkSigmoidVec measures the activation sweep on a gate-matrix-sized
// vector (one fused chunk of one GRU gate).
func BenchmarkSigmoidVec(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := NewVec(512)
	for i := range x {
		x[i] = rng.NormFloat64() * 3
	}
	dst := NewVec(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SigmoidVec(dst, x)
	}
}
