// Package nn is a small, dependency-free neural-network library sufficient
// to train PathRank end to end: embedding lookups, GRU/LSTM recurrent cells
// with backpropagation through time, dense layers, MSE/Huber losses and
// SGD/Adam/RMSProp optimizers. Computation is float64 on flat slices;
// training is sample-at-a-time, which matches variable-length path
// sequences and keeps the implementation auditable.
package nn

import (
	"math"
	"math/rand"
)

// Vec is a dense vector.
type Vec = []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Copy returns a copy of v.
func Copy(v Vec) Vec { return append(Vec(nil), v...) }

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b Vec) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y Vec) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v Vec) {
	for i := range v {
		v[i] *= alpha
	}
}

// AddTo computes dst += src in place.
func AddTo(dst, src Vec) {
	for i := range src {
		dst[i] += src[i]
	}
}

// Hadamard computes dst[i] = a[i]*b[i].
func Hadamard(dst, a, b Vec) {
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Param is a trainable tensor with its gradient accumulator and optimizer
// state. A Param with Rows>0 is a Rows x Cols matrix stored row-major; a
// bias vector has Rows == 1.
type Param struct {
	Name string
	Rows int
	Cols int
	W    Vec // weights, len Rows*Cols
	G    Vec // gradient accumulator, same shape

	// Optimizer slots (lazily allocated by Adam/RMSProp).
	m, v Vec

	// Frozen parameters accumulate no updates (PR-A1 freezes the
	// embedding matrix B; PR-A2 trains it).
	Frozen bool
}

// NewParam allocates a rows x cols parameter initialized to zero.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name, Rows: rows, Cols: cols,
		W: NewVec(rows * cols), G: NewVec(rows * cols),
	}
}

// InitXavier fills the parameter with Glorot-uniform noise scaled by its
// fan-in and fan-out.
func (p *Param) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(p.Rows+p.Cols))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

// InitUniform fills the parameter with uniform noise in [-r, r].
func (p *Param) InitUniform(rng *rand.Rand, r float64) {
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * r
	}
}

// Row returns the i-th row of a matrix parameter as a subslice (no copy).
func (p *Param) Row(i int) Vec { return p.W[i*p.Cols : (i+1)*p.Cols] }

// GradRow returns the i-th row of the gradient as a subslice (no copy).
func (p *Param) GradRow(i int) Vec { return p.G[i*p.Cols : (i+1)*p.Cols] }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// NumParams returns the number of scalar weights.
func (p *Param) NumParams() int { return len(p.W) }

// The four matrix kernels below are the inner loops of every forward and
// backward pass. The element-wise kernels (MatTVecAdd, AccumOuter) are
// unrolled 4-wide with slicing that lets the compiler elide bounds checks —
// measured ~1.6x on this shape. The dot-product kernels deliberately keep
// the plain range loop: a dot has a serial floating-point dependency chain,
// so single-accumulator unrolling cannot add instruction-level parallelism
// (it only adds bounds checks and measured slower), and multi-accumulator
// unrolling would change the summation order and with it every trained
// metric. Bitwise reproducibility of the paper tables wins.
//
// All four check their operand shapes with a single length compare before
// the loop (verified free in the axpy/dot benches): a wrong-shaped call
// must panic with the offending shapes, never truncate into silently wrong
// numbers.

// The shape panics below are constant strings on purpose: even a call to a
// noinline fmt helper costs ~60 points of inline budget, pushing these
// kernels past the compiler's limit, and losing their inlining into
// GRU.Forward/LSTM.Forward costs ~1.3x on the scoring hot path (measured on
// BenchmarkScoreBatchPerPath). A constant panic keeps every kernel
// inlinable — verify with `go build -gcflags=-m` when touching these — and
// still names the kernel that was misused; the batched kernels in gemm.go
// are per-batch calls, so they keep the richer fmt messages.

// dotRows returns Σ row[c]*x[c]. Lengths must match; the re-slice after
// the check hoists the bounds check out of the loop.
func dotRows(row, x Vec) float64 {
	if len(row) != len(x) {
		panic("nn: dotRows length mismatch")
	}
	row = row[:len(x)]
	var s float64
	for c, xv := range x {
		s += row[c] * xv
	}
	return s
}

// axpyUnrolled computes dst[c] += a*src[c]. Lengths must match.
func axpyUnrolled(a float64, src, dst Vec) {
	if len(dst) != len(src) {
		panic("nn: axpy length mismatch")
	}
	n := len(src)
	dst = dst[:n]
	c := 0
	for ; c+3 < n; c += 4 {
		s := src[c : c+4 : c+4]
		d := dst[c : c+4 : c+4]
		d[0] += a * s[0]
		d[1] += a * s[1]
		d[2] += a * s[2]
		d[3] += a * s[3]
	}
	for ; c < n; c++ {
		dst[c] += a * src[c]
	}
}

// MatVec computes y = W*x for a Rows x Cols parameter, writing into y
// (len Rows). x must have length Cols.
func (p *Param) MatVec(x, y Vec) {
	if len(x) != p.Cols || len(y) != p.Rows {
		panic("nn: MatVec shape mismatch")
	}
	cols := p.Cols
	for r := 0; r < p.Rows; r++ {
		y[r] = dotRows(p.W[r*cols:(r+1)*cols], x)
	}
}

// MatVecAdd computes y += W*x.
func (p *Param) MatVecAdd(x, y Vec) {
	if len(x) != p.Cols || len(y) != p.Rows {
		panic("nn: MatVecAdd shape mismatch")
	}
	cols := p.Cols
	for r := 0; r < p.Rows; r++ {
		y[r] += dotRows(p.W[r*cols:(r+1)*cols], x)
	}
}

// MatTVecAdd computes x += Wᵀ*dy, propagating a gradient through MatVec.
func (p *Param) MatTVecAdd(dy, x Vec) {
	if len(dy) != p.Rows || len(x) != p.Cols {
		panic("nn: MatTVecAdd shape mismatch")
	}
	cols := p.Cols
	for r := 0; r < p.Rows; r++ {
		d := dy[r]
		if d == 0 {
			continue
		}
		axpyUnrolled(d, p.W[r*cols:(r+1)*cols], x)
	}
}

// AccumOuter accumulates G += dy ⊗ x, the weight gradient of y = W*x.
func (p *Param) AccumOuter(dy, x Vec) {
	if len(dy) != p.Rows || len(x) != p.Cols {
		panic("nn: AccumOuter shape mismatch")
	}
	cols := p.Cols
	for r := 0; r < p.Rows; r++ {
		d := dy[r]
		if d == 0 {
			continue
		}
		axpyUnrolled(d, x, p.G[r*cols:(r+1)*cols])
	}
}

// GradNorm returns the Euclidean norm of the concatenated gradients.
func GradNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.G {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrad rescales all gradients so their global norm is at most maxNorm.
// It returns the pre-clip norm.
func ClipGrad(params []*Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}

// Sigmoid is the logistic function. Both branches feed Exp the same value
// -|x| (for x >= 0, -|x| == -x; for x < 0, -|x| == x), so hoisting the call
// above the branch is bit-identical to the classic two-call form while
// emitting a single Exp call site.
func Sigmoid(x float64) float64 {
	z := math.Exp(-math.Abs(x))
	if x >= 0 {
		return 1 / (1 + z)
	}
	return z / (1 + z)
}

// sigmoidVecArch, when non-nil, applies Sigmoid to a prefix of the vectors
// with a SIMD sweep that is bit-identical to the scalar loop (it vectorizes
// across elements, running each lane through exactly the scalar operation
// sequence — see sigmoid_avx2_amd64.s) and returns how many elements it
// handled.
var sigmoidVecArch func(dst, x Vec) int

// SigmoidVec applies Sigmoid elementwise, writing into dst (dst may alias
// x).
func SigmoidVec(dst, x Vec) {
	i := 0
	if sigmoidVecArch != nil {
		i = sigmoidVecArch(dst, x)
	}
	for ; i < len(x); i++ {
		dst[i] = Sigmoid(x[i])
	}
}

// TanhVec applies tanh elementwise, writing into dst.
func TanhVec(dst, x Vec) {
	for i := range x {
		dst[i] = math.Tanh(x[i])
	}
}
