package nn

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
)

// paramWire is the serialized form of a Param (weights only; gradients and
// optimizer state are transient).
type paramWire struct {
	Name   string
	Rows   int
	Cols   int
	W      []float64
	Frozen bool
}

// SaveParams writes the weights of params to w in gob format.
func SaveParams(w io.Writer, params []*Param) error {
	wire := make([]paramWire, len(params))
	for i, p := range params {
		wire[i] = paramWire{Name: p.Name, Rows: p.Rows, Cols: p.Cols, W: p.W, Frozen: p.Frozen}
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("nn: encode params: %w", err)
	}
	return nil
}

// LoadParams reads weights written by SaveParams into params, matching by
// position and verifying name and shape.
func LoadParams(r io.Reader, params []*Param) error {
	var wire []paramWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(wire) != len(params) {
		return fmt.Errorf("nn: stored %d params, model has %d", len(wire), len(params))
	}
	for i, p := range params {
		pw := wire[i]
		if pw.Name != p.Name || pw.Rows != p.Rows || pw.Cols != p.Cols {
			return fmt.Errorf("nn: param %d mismatch: stored %s(%dx%d), model %s(%dx%d)",
				i, pw.Name, pw.Rows, pw.Cols, p.Name, p.Rows, p.Cols)
		}
		// The declared shape and the weight slice must agree: a corrupt
		// stream whose W is short would otherwise load partially and leave
		// the tail of the parameter at its random initialization.
		if len(pw.W) != len(p.W) {
			return fmt.Errorf("nn: param %d (%s) has %d weights, shape %dx%d needs %d",
				i, pw.Name, len(pw.W), pw.Rows, pw.Cols, len(p.W))
		}
		copy(p.W, pw.W)
		p.Frozen = pw.Frozen
	}
	return nil
}

// MarshalParams returns the SaveParams encoding of params as a byte slice,
// for callers that embed model weights inside a larger container (the
// pathrank artifact bundle).
func MarshalParams(params []*Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalParams loads weights produced by MarshalParams into params,
// matching by position and verifying name and shape.
func UnmarshalParams(data []byte, params []*Param) error {
	return LoadParams(bytes.NewReader(data), params)
}

// ParamsFingerprint returns a SHA-256 digest over the names, shapes, frozen
// flags, and exact weight encodings of params. Two models have the same
// fingerprint iff their trainable state is bit-identical, which is how the
// artifact round-trip tests prove a reloaded model ranks identically.
func ParamsFingerprint(params []*Param) ([sha256.Size]byte, error) {
	data, err := MarshalParams(params)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return sha256.Sum256(data), nil
}
