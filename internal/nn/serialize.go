package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramWire is the serialized form of a Param (weights only; gradients and
// optimizer state are transient).
type paramWire struct {
	Name   string
	Rows   int
	Cols   int
	W      []float64
	Frozen bool
}

// SaveParams writes the weights of params to w in gob format.
func SaveParams(w io.Writer, params []*Param) error {
	wire := make([]paramWire, len(params))
	for i, p := range params {
		wire[i] = paramWire{Name: p.Name, Rows: p.Rows, Cols: p.Cols, W: p.W, Frozen: p.Frozen}
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("nn: encode params: %w", err)
	}
	return nil
}

// LoadParams reads weights written by SaveParams into params, matching by
// position and verifying name and shape.
func LoadParams(r io.Reader, params []*Param) error {
	var wire []paramWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(wire) != len(params) {
		return fmt.Errorf("nn: stored %d params, model has %d", len(wire), len(params))
	}
	for i, p := range params {
		pw := wire[i]
		if pw.Name != p.Name || pw.Rows != p.Rows || pw.Cols != p.Cols {
			return fmt.Errorf("nn: param %d mismatch: stored %s(%dx%d), model %s(%dx%d)",
				i, pw.Name, pw.Rows, pw.Cols, p.Name, p.Rows, p.Cols)
		}
		copy(p.W, pw.W)
		p.Frozen = pw.Frozen
	}
	return nil
}
