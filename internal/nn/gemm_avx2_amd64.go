package nn

import (
	"os"
	"sync"
)

// This file registers the "avx2" batched backend on amd64 hosts whose CPU
// and OS support AVX2. It vectorizes GemmNT across independent output
// columns (see gemm_avx2_amd64.s for the bit-identity argument); Gemm
// delegates to the generic blocked backend, whose accumulate-in-place
// association a column-vectorized kernel cannot reproduce cheaply.

//go:noescape
func gemmNTAVX2(a, bt, c []float64, m, k, n int)

//go:noescape
func sigmoidVecAVX2(dst, x []float64) int

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2 reports AVX2 with OS-managed YMM state: OSXSAVE+AVX in
// CPUID.1:ECX, XMM+YMM enabled in XCR0, and AVX2 in CPUID.7.0:EBX.
func cpuHasAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c1&osxsaveAVX != osxsaveAVX {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}

// cpuHasFMA mirrors math's useFMA gate (HasAVX && HasFMA): the vectorized
// sigmoid replicates math.Exp's FMA code path lane-wise, so it is only
// bit-identical on hosts where scalar math.Exp takes that same path.
func cpuHasFMA() bool {
	_, _, c1, _ := cpuidex(1, 0)
	const avxFMA = 1<<28 | 1<<12
	return c1&avxFMA == avxFMA
}

// avx2MinRows gates the vector path: below this row count the per-call
// transpose pack of B costs more than the vector arithmetic saves, so short
// tails of the ragged batched recurrence fall back to the blocked tile
// (bit-identical, so mixing backends by shape is safe).
const avx2MinRows = 8

type avx2Kernel struct {
	pool sync.Pool // *[]float64, the Bᵀ panel scratch
}

func (*avx2Kernel) Name() string { return "avx2" }

func (*avx2Kernel) Gemm(C, A, B Mat) { blockedKernel{}.Gemm(C, A, B) }

func (k *avx2Kernel) GemmNT(C, A, B Mat) {
	checkGemm(C, A, B, true)
	M, K, N := A.Rows, A.Cols, B.Rows
	if M < avx2MinRows || N < 4 || K == 0 {
		blockedKernel{}.GemmNT(C, A, B)
		return
	}

	p, _ := k.pool.Get().(*[]float64)
	if p == nil {
		p = new([]float64)
	}
	if cap(*p) < K*N {
		*p = make([]float64, K*N)
	}
	bt := (*p)[:K*N]
	for j := 0; j < N; j++ {
		row := B.Row(j)
		for kk := 0; kk < K; kk++ {
			bt[kk*N+j] = row[kk]
		}
	}

	gemmNTAVX2(A.Data[:M*K], bt, C.Data[:M*N], M, K, N)
	// Last N%4 columns: scalar fresh dots, same association.
	if nv := N &^ 3; nv < N {
		for i := 0; i < M; i++ {
			ai, ci := A.Row(i), C.Row(i)
			for j := nv; j < N; j++ {
				var s float64
				for kk := 0; kk < K; kk++ {
					s += ai[kk] * bt[kk*N+j]
				}
				ci[j] += s
			}
		}
	}
	k.pool.Put(p)
}

func init() {
	if !cpuHasAVX2() {
		return
	}
	if cpuHasFMA() {
		sigmoidVecArch = sigmoidVecAVX2
	}
	k := &avx2Kernel{}
	kernels["avx2"] = k
	// This init runs after gemm.go's (file order), which has already
	// honored PATHRANK_NN_KERNEL for the generic backends. Make avx2 the
	// default unless the knob pinned another backend explicitly.
	if name := os.Getenv("PATHRANK_NN_KERNEL"); name == "" || name == "avx2" {
		activeKernel.Store(kernelBox{k})
	}
}
