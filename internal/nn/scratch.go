package nn

// arena is a bump allocator for scratch vectors. One forward/backward pass
// over a sample allocates all of its per-timestep gate vectors and gradient
// temporaries from an arena; releasing the pass resets the offset so the
// next sample reuses the same slab instead of producing garbage. Vectors
// handed out before a slab grows keep referencing the old slab, so growth
// mid-pass is safe.
type arena struct {
	buf []float64
	off int
}

func (a *arena) reset() { a.off = 0 }

// vec returns a zeroed length-n vector carved from the arena.
func (a *arena) vec(n int) Vec {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < a.off+n {
			size = a.off + n
		}
		if size < 1024 {
			size = 1024
		}
		a.buf = make([]float64, size)
		a.off = 0
	}
	v := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range v {
		v[i] = 0
	}
	return v
}

// growVecSlice returns s resized to length n, reusing capacity.
func growVecSlice(s []Vec, n int) []Vec {
	if cap(s) < n {
		return make([]Vec, n)
	}
	return s[:n]
}

// Scratch is an arena-backed workspace for batched inference: the packed
// matrices of a fused scoring pass are carved from one slab that Reset
// rewinds, so a pooled Scratch makes the whole pass allocation-free in
// steady state. Vectors and matrices handed out survive a mid-pass slab
// growth (they keep referencing the old slab) but are invalidated by
// Reset. A Scratch is single-goroutine; pool one per worker.
type Scratch struct {
	ar arena
}

// Reset rewinds the arena; memory handed out earlier is reused.
func (s *Scratch) Reset() { s.ar.reset() }

// Vec returns a zeroed length-n vector carved from the arena.
func (s *Scratch) Vec(n int) Vec { return s.ar.vec(n) }

// Mat returns a zeroed rows x cols packed matrix carved from the arena.
func (s *Scratch) Mat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: s.ar.vec(rows * cols)}
}
