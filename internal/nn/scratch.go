package nn

// arena is a bump allocator for scratch vectors. One forward/backward pass
// over a sample allocates all of its per-timestep gate vectors and gradient
// temporaries from an arena; releasing the pass resets the offset so the
// next sample reuses the same slab instead of producing garbage. Vectors
// handed out before a slab grows keep referencing the old slab, so growth
// mid-pass is safe.
type arena struct {
	buf []float64
	off int
}

func (a *arena) reset() { a.off = 0 }

// vec returns a zeroed length-n vector carved from the arena.
func (a *arena) vec(n int) Vec {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < a.off+n {
			size = a.off + n
		}
		if size < 1024 {
			size = 1024
		}
		a.buf = make([]float64, size)
		a.off = 0
	}
	v := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range v {
		v[i] = 0
	}
	return v
}

// growVecSlice returns s resized to length n, reusing capacity.
func growVecSlice(s []Vec, n int) []Vec {
	if cap(s) < n {
		return make([]Vec, n)
	}
	return s[:n]
}
