package nn

import "testing"

// Kernel micro-benchmarks documenting the unrolling decision in mat.go:
// axpy-style element-wise kernels win from 4-wide unrolling, dot products
// do not (serial FP dependency chain; see the comment above dotRows).
//
// Each benchmark iteration runs a fixed batch of kernel calls rather than a
// single one. A lone ~50-100ns call is far below the timer's resolution, so
// under the bench.sh methodology (-benchtime=1x, one iteration) a
// single-call benchmark reports scheduling noise, not kernel cost — a past
// baseline recorded the unrolled kernel as 2.8x SLOWER than the naive loop
// that way, while a properly amortized run shows it ~1.7x faster. With the
// batch, even a one-iteration run measures tens of microseconds of real
// work. ns/op is therefore per batch of axpyBatch calls; the per-call cost
// is reported as the ns_per_call metric.

const (
	axpyN     = 128  // vector length, matching the hidden-layer shapes
	axpyBatch = 4096 // kernel calls per benchmark iteration (~0.25ms of work)
)

func naiveAxpy(a float64, src, dst Vec) {
	for c := range dst {
		dst[c] += a * src[c]
	}
}

func axpyBench(b *testing.B, kernel func(a float64, src, dst Vec)) {
	b.Helper()
	src := make(Vec, axpyN)
	dst := make(Vec, axpyN)
	for i := range src {
		src[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < axpyBatch; j++ {
			kernel(0.5, src, dst)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*axpyBatch), "ns_per_call")
}

func BenchmarkAxpyUnrolled(b *testing.B) {
	axpyBench(b, axpyUnrolled)
}

func BenchmarkAxpyNaive(b *testing.B) {
	axpyBench(b, naiveAxpy)
}

func BenchmarkDotRows(b *testing.B) {
	x := make(Vec, axpyN)
	row := make(Vec, axpyN)
	for i := range x {
		x[i] = float64(i)
		row[i] = 1.0 / float64(i+1)
	}
	var s float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < axpyBatch; j++ {
			s += dotRows(row, x)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*axpyBatch), "ns_per_call")
	_ = s
}
