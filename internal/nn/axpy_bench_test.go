package nn

import "testing"

// Kernel micro-benchmarks documenting the unrolling decision in mat.go:
// axpy-style element-wise kernels win from 4-wide unrolling, dot products
// do not (serial FP dependency chain; see the comment above dotRows).

func naiveAxpy(a float64, src, dst Vec) {
	for c := range dst {
		dst[c] += a * src[c]
	}
}

func BenchmarkAxpyUnrolled(b *testing.B) {
	src := make(Vec, 128)
	dst := make(Vec, 128)
	for i := range src {
		src[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpyUnrolled(0.5, src, dst)
	}
}

func BenchmarkAxpyNaive(b *testing.B) {
	src := make(Vec, 128)
	dst := make(Vec, 128)
	for i := range src {
		src[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveAxpy(0.5, src, dst)
	}
}

func BenchmarkDotRows(b *testing.B) {
	x := make(Vec, 128)
	row := make(Vec, 128)
	for i := range x {
		x[i] = float64(i)
		row[i] = 1.0 / float64(i+1)
	}
	var s float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += dotRows(row, x)
	}
	_ = s
}
