package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestAttentionAlphasSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := NewAttention("att", 4, 3, rng)
	hs := []Vec{
		{0.5, -0.3, 0.8, 0.1},
		{-0.1, 0.9, 0.2, -0.5},
		{0.4, 0.4, -0.6, 0.7},
	}
	_, c := a.Forward(hs)
	var sum float64
	for _, al := range c.alphas {
		if al < 0 {
			t.Fatalf("negative attention weight %v", al)
		}
		sum += al
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("attention weights sum %v, want 1", sum)
	}
}

func TestAttentionSummaryIsConvexCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := NewAttention("att", 2, 3, rng)
	hs := []Vec{{1, 0}, {0, 1}}
	out, _ := a.Forward(hs)
	// Output must lie in the convex hull: both coords in [0,1] and sum 1.
	if out[0] < 0 || out[0] > 1 || out[1] < 0 || out[1] > 1 {
		t.Fatalf("summary %v outside hull", out)
	}
	if math.Abs(out[0]+out[1]-1) > 1e-12 {
		t.Fatalf("summary coords sum %v, want 1", out[0]+out[1])
	}
}

func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := NewAttention("att", 4, 3, rng)
	hs := []Vec{
		{0.5, -0.3, 0.8, 0.1},
		{-0.1, 0.9, 0.2, -0.5},
		{0.4, 0.4, -0.6, 0.7},
	}
	target := Vec{0.2, -0.1, 0.3, 0.05}
	loss := func() float64 {
		out, _ := a.Forward(hs)
		var l float64
		for i := range out {
			li, _ := MSELoss(out[i], target[i])
			l += li
		}
		return l
	}
	run := func() {
		out, cache := a.Forward(hs)
		d := NewVec(len(out))
		for i := range out {
			_, d[i] = MSELoss(out[i], target[i])
		}
		a.Backward(cache, d)
	}
	checkParamGrads(t, a.Params(), loss, run, 1e-4)
}

func TestAttentionInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	a := NewAttention("att", 3, 2, rng)
	hs := []Vec{
		{0.5, -0.3, 0.8},
		{-0.1, 0.9, 0.2},
	}
	loss := func() float64 {
		out, _ := a.Forward(hs)
		var l float64
		for _, v := range out {
			l += 0.5 * v * v
		}
		return l
	}
	out, cache := a.Forward(hs)
	dhs := a.Backward(cache, Copy(out))
	const eps = 1e-5
	for ti := range hs {
		for i := range hs[ti] {
			orig := hs[ti][i]
			hs[ti][i] = orig + eps
			up := loss()
			hs[ti][i] = orig - eps
			down := loss()
			hs[ti][i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(dhs[ti][i]-want) > 1e-6 {
				t.Fatalf("dhs[%d][%d] = %.8f, numeric %.8f", ti, i, dhs[ti][i], want)
			}
		}
	}
}

func TestAttentionSingleStep(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	a := NewAttention("att", 3, 2, rng)
	hs := []Vec{{1, 2, 3}}
	out, c := a.Forward(hs)
	if math.Abs(c.alphas[0]-1) > 1e-12 {
		t.Fatalf("single-step alpha %v, want 1", c.alphas[0])
	}
	for i := range out {
		if out[i] != hs[0][i] {
			t.Fatalf("single-step summary %v, want input %v", out, hs[0])
		}
	}
}
