// AVX2 microkernel of the "avx2" batched backend (gemm_avx2_amd64.go).
//
// Bit-identity contract: SIMD here vectorizes ACROSS output columns, never
// within a dot product. Lane j of an accumulator register holds the partial
// sum of column j and is updated once per k in ascending order with a
// multiply followed by a separate add (VMULPD + VADDPD — never FMA, whose
// single rounding would change results). Each lane therefore computes
// exactly the scalar recurrence s = 0; s += a[k]*b[k] of dotRows, and the
// finished sum is added into C once, matching MatVec/MatVecAdd and the
// pure-Go GemmNT tile.

#include "textflag.h"

// func gemmNTAVX2(a, bt, c []float64, m, k, n int)
//
// c[i*n+j] += Σ_k a[i*k+k'] * bt[k'*n+j] for i in [0, m), j in [0, n-n%4);
// the caller handles the last n%4 columns. a is m x k row-major, bt is the
// k x n transposed weight panel, c is m x n row-major.
TEXT ·gemmNTAVX2(SB), NOSPLIT, $0-96
	MOVQ a_base+0(FP), SI   // a row cursor
	MOVQ bt_base+24(FP), DI // bt
	MOVQ c_base+48(FP), DX  // c row cursor
	MOVQ m+72(FP), R15      // row countdown
	MOVQ k+80(FP), R8       // K
	MOVQ n+88(FP), CX       // N = row stride of bt and c

	MOVQ CX, R9
	SHLQ $3, R9             // row stride in bytes

	TESTQ R15, R15
	JEQ   ret

row:
	XORQ BX, BX             // j

j16:
	MOVQ CX, AX
	SUBQ BX, AX             // columns left
	CMPQ AX, $16
	JLT  tail8

	// 16 columns: 4 ymm accumulators. 4 mul + 4 add per k saturates both
	// FP ports while each accumulator is reused only every 4th cycle,
	// hiding the VADDPD latency of its serial chain.
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	LEAQ (DI)(BX*8), R10    // &bt[j]
	MOVQ SI, R11            // a k-cursor
	MOVQ R8, R12            // k countdown
	TESTQ R12, R12
	JEQ  store16

k16:
	VBROADCASTSD (R11), Y4
	VMULPD (R10), Y4, Y5
	VMULPD 32(R10), Y4, Y6
	VMULPD 64(R10), Y4, Y7
	VMULPD 96(R10), Y4, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $8, R11
	ADDQ R9, R10
	DECQ R12
	JNZ  k16

store16:
	LEAQ (DX)(BX*8), R13
	VADDPD (R13), Y0, Y0
	VADDPD 32(R13), Y1, Y1
	VADDPD 64(R13), Y2, Y2
	VADDPD 96(R13), Y3, Y3
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	VMOVUPD Y2, 64(R13)
	VMOVUPD Y3, 96(R13)
	ADDQ $16, BX
	JMP  j16

tail8:
	CMPQ AX, $8
	JLT  tail4

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	LEAQ (DI)(BX*8), R10
	MOVQ SI, R11
	MOVQ R8, R12
	TESTQ R12, R12
	JEQ  store8

k8:
	VBROADCASTSD (R11), Y4
	VMULPD (R10), Y4, Y5
	VMULPD 32(R10), Y4, Y6
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	ADDQ $8, R11
	ADDQ R9, R10
	DECQ R12
	JNZ  k8

store8:
	LEAQ (DX)(BX*8), R13
	VADDPD (R13), Y0, Y0
	VADDPD 32(R13), Y1, Y1
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	ADDQ $8, BX
	SUBQ $8, AX

tail4:
	CMPQ AX, $4
	JLT  nextrow

	VXORPD Y0, Y0, Y0
	LEAQ (DI)(BX*8), R10
	MOVQ SI, R11
	MOVQ R8, R12
	TESTQ R12, R12
	JEQ  store4

k4:
	VBROADCASTSD (R11), Y4
	VMULPD (R10), Y4, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, R11
	ADDQ R9, R10
	DECQ R12
	JNZ  k4

store4:
	LEAQ (DX)(BX*8), R13
	VADDPD (R13), Y0, Y0
	VMOVUPD Y0, (R13)

nextrow:
	LEAQ (SI)(R8*8), SI     // a += K
	ADDQ R9, DX             // c += N
	DECQ R15
	JNZ  row

ret:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
