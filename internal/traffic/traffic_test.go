package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

func testNet(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 8, Cols: 8, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.05, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Times: []float64{0}, Factors: []float64{1, 1}},          // length mismatch
		{Times: []float64{1}, Factors: []float64{1}},             // not starting at 0
		{Times: []float64{0, 5, 3}, Factors: []float64{1, 1, 1}}, // not increasing
		{Times: []float64{0, 90000}, Factors: []float64{1, 1}},   // beyond a day
		{Times: []float64{0, 3600}, Factors: []float64{1, 0}},    // zero factor
		{Times: []float64{0, 3600}, Factors: []float64{1, 1.5}},  // factor > 1
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("profile %d should be invalid", i)
		}
	}
}

func TestFactorAtInterpolatesAndWraps(t *testing.T) {
	p := Profile{
		Times:   []float64{0, 6 * 3600, 12 * 3600},
		Factors: []float64{1.0, 0.5, 1.0},
	}
	if f := p.FactorAt(0); f != 1 {
		t.Fatalf("f(0) = %v", f)
	}
	if f := p.FactorAt(3 * 3600); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("f(3h) = %v, want 0.75 (interpolated)", f)
	}
	if f := p.FactorAt(6 * 3600); f != 0.5 {
		t.Fatalf("f(6h) = %v", f)
	}
	// Wrap: 18h is halfway between 12h (1.0) and 24h (back to 1.0).
	if f := p.FactorAt(18 * 3600); math.Abs(f-1.0) > 1e-12 {
		t.Fatalf("f(18h) = %v, want 1.0", f)
	}
	// Negative and >1day times wrap.
	if math.Abs(p.FactorAt(-3*3600)-p.FactorAt(21*3600)) > 1e-12 {
		t.Fatal("negative time should wrap")
	}
	if math.Abs(p.FactorAt(27*3600)-p.FactorAt(3*3600)) > 1e-12 {
		t.Fatal("time beyond one day should wrap")
	}
}

func TestFactorBoundsProperty(t *testing.T) {
	p := DefaultModel().Profiles[roadnet.Motorway]
	f := func(t64 float64) bool {
		if math.IsNaN(t64) || math.IsInf(t64, 0) {
			return true
		}
		v := p.FactorAt(t64)
		return v > 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTravelTimeAtLeastFreeFlow(t *testing.T) {
	g := testNet(t)
	m := DefaultModel()
	for i := 0; i < g.NumEdges(); i += 11 {
		e := g.Edge(roadnet.EdgeID(i))
		for _, tod := range []float64{0, 8 * 3600, 12 * 3600, 16 * 3600} {
			tt := m.TravelTime(g, e, tod)
			if tt < e.Time-1e-9 {
				t.Fatalf("edge %d at %v: TD time %.2f < free flow %.2f", i, tod, tt, e.Time)
			}
			// Congestion at most 1/0.45 of free flow in the default model.
			if tt > e.Time/0.40 {
				t.Fatalf("edge %d at %v: TD time %.2f implausibly high vs %.2f", i, tod, tt, e.Time)
			}
		}
	}
}

func TestRushHourSlowerThanNight(t *testing.T) {
	g := testNet(t)
	m := DefaultModel()
	var night, peak float64
	for i := 0; i < g.NumEdges(); i += 7 {
		e := g.Edge(roadnet.EdgeID(i))
		night += m.TravelTime(g, e, 2*3600)
		peak += m.TravelTime(g, e, 7.5*3600)
	}
	if !(peak > night*1.1) {
		t.Fatalf("peak total %.1f not clearly slower than night %.1f", peak, night)
	}
}

func TestEarliestArrivalMatchesStaticAtNight(t *testing.T) {
	// At 02:00 all factors are 1, so TD routing must match static ByTime.
	g := testNet(t)
	m := DefaultModel()
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 10; trial++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		static, errS := spath.Dijkstra(g, src, dst, spath.ByTime)
		td, errT := m.EarliestArrival(g, src, dst, 2*3600)
		if (errS == nil) != (errT == nil) {
			t.Fatalf("error mismatch: %v vs %v", errS, errT)
		}
		if errS != nil {
			continue
		}
		if math.Abs(static.Cost-td.Cost) > static.Cost*0.02+1 {
			t.Fatalf("night TD cost %.1f differs from static %.1f", td.Cost, static.Cost)
		}
		if err := td.Validate(g); err != nil {
			t.Fatalf("TD path invalid: %v", err)
		}
	}
}

func TestEarliestArrivalPeakSlower(t *testing.T) {
	g := testNet(t)
	m := DefaultModel()
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	night, err := m.EarliestArrival(g, src, dst, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := m.EarliestArrival(g, src, dst, 7.5*3600)
	if err != nil {
		t.Fatal(err)
	}
	if !(peak.Cost > night.Cost) {
		t.Fatalf("peak %.1f s not slower than night %.1f s", peak.Cost, night.Cost)
	}
}

func TestEarliestArrivalFIFOProperty(t *testing.T) {
	// Departing later never arrives earlier (FIFO networks).
	g := testNet(t)
	m := DefaultModel()
	src, dst := roadnet.VertexID(3), roadnet.VertexID(g.NumVertices()-5)
	prevArrival := -math.MaxFloat64
	for depart := 0.0; depart < 10*3600; depart += 1800 {
		p, err := m.EarliestArrival(g, src, dst, depart)
		if err != nil {
			t.Fatal(err)
		}
		arrive := depart + p.Cost
		if arrive < prevArrival-1e-6 {
			t.Fatalf("departing at %.0f arrives %.1f, earlier than a previous departure (%.1f)",
				depart, arrive, prevArrival)
		}
		prevArrival = arrive
	}
}

func TestEarliestArrivalSelfAndNoPath(t *testing.T) {
	g := testNet(t)
	m := DefaultModel()
	p, err := m.EarliestArrival(g, 4, 4, 0)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self: len=%d err=%v", p.Len(), err)
	}
	b := roadnet.NewBuilder(2, 0)
	b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	b.AddVertex(geo.Point{Lon: 10.1, Lat: 57})
	g2 := b.Build()
	if _, err := m.EarliestArrival(g2, 0, 1, 0); err != spath.ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}
