// Package traffic adds time-dependent travel times to a road network: each
// road category gets a piecewise-linear speed profile over the day (free
// flow at night, congested at the peaks), and a time-dependent Dijkstra
// computes earliest-arrival paths under the FIFO property.
//
// The paper evaluates on free-flow travel times; time-dependent costs are
// the natural extension for the trajectory data it builds on (the authors'
// broader research line models travel-time variability), so this package
// is provided as the substrate for that extension and exercised by its own
// tests and example workloads.
package traffic

import (
	"fmt"
	"math"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// SecondsPerDay is the period of all speed profiles.
const SecondsPerDay = 24 * 3600

// Profile is a piecewise-linear multiplier over the day: Times (seconds
// since midnight, strictly increasing, first at 0) and Factors (relative
// speed, 1 = free flow). The profile wraps around midnight.
type Profile struct {
	Times   []float64
	Factors []float64
}

// Validate checks structural invariants.
func (p Profile) Validate() error {
	if len(p.Times) == 0 || len(p.Times) != len(p.Factors) {
		return fmt.Errorf("traffic: profile has %d times, %d factors", len(p.Times), len(p.Factors))
	}
	if p.Times[0] != 0 {
		return fmt.Errorf("traffic: profile must start at t=0, got %v", p.Times[0])
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i] <= p.Times[i-1] {
			return fmt.Errorf("traffic: profile times not increasing at %d", i)
		}
		if p.Times[i] >= SecondsPerDay {
			return fmt.Errorf("traffic: profile time %v beyond one day", p.Times[i])
		}
	}
	for i, f := range p.Factors {
		if f <= 0 || f > 1 {
			return fmt.Errorf("traffic: factor %d = %v outside (0,1]", i, f)
		}
	}
	return nil
}

// FactorAt returns the speed multiplier at time-of-day t (seconds,
// wrapped), interpolating linearly between breakpoints.
func (p Profile) FactorAt(t float64) float64 {
	t = math.Mod(t, SecondsPerDay)
	if t < 0 {
		t += SecondsPerDay
	}
	n := len(p.Times)
	// Find the segment: last breakpoint <= t.
	i := n - 1
	for k := 0; k < n; k++ {
		if p.Times[k] > t {
			i = k - 1
			break
		}
	}
	j := (i + 1) % n
	t0 := p.Times[i]
	t1 := p.Times[j]
	if j == 0 {
		t1 = SecondsPerDay // wrap segment back to Times[0] next day
	}
	span := t1 - t0
	if span <= 0 {
		return p.Factors[i]
	}
	alpha := (t - t0) / span
	return p.Factors[i] + alpha*(p.Factors[j]-p.Factors[i])
}

// Model assigns a profile to each road category.
type Model struct {
	Profiles [roadnet.NumCategories]Profile
}

// DefaultModel returns a rush-hour model: strong morning (07–09) and
// afternoon (15–17) dips on motorways and primaries, milder dips on
// smaller roads.
func DefaultModel() *Model {
	peaky := func(depth float64) Profile {
		return Profile{
			Times:   []float64{0, 6 * 3600, 7.5 * 3600, 9 * 3600, 14 * 3600, 16 * 3600, 18 * 3600},
			Factors: []float64{1, 1, depth, 1, 1, depth, 1},
		}
	}
	m := &Model{}
	m.Profiles[roadnet.Motorway] = peaky(0.45)
	m.Profiles[roadnet.Primary] = peaky(0.55)
	m.Profiles[roadnet.Secondary] = peaky(0.7)
	m.Profiles[roadnet.Residential] = peaky(0.85)
	return m
}

// Validate checks all profiles.
func (m *Model) Validate() error {
	for c := 0; c < roadnet.NumCategories; c++ {
		if err := m.Profiles[c].Validate(); err != nil {
			return fmt.Errorf("category %s: %w", roadnet.Category(c), err)
		}
	}
	return nil
}

// TravelTime returns the time to traverse e entering at time-of-day t,
// integrating the speed profile in small steps. Under piecewise-linear
// non-zero factors this satisfies FIFO (leaving later never arrives
// earlier) because speeds are evaluated along the actual traversal.
func (m *Model) TravelTime(g *roadnet.Graph, e roadnet.Edge, t float64) float64 {
	prof := m.Profiles[e.Category]
	speedFree := e.Category.SpeedKmH() / 3.6
	remaining := e.Length
	now := t
	var total float64
	const step = 30.0 // seconds of simulated driving per integration step
	for i := 0; i < 10000; i++ {
		v := speedFree * prof.FactorAt(now)
		advance := v * step
		if advance >= remaining {
			total += remaining / v
			return total
		}
		remaining -= advance
		total += step
		now += step
	}
	// Pathological profile; fall back to worst-case constant speed.
	return total + remaining/(speedFree*0.05)
}

// EarliestArrival computes an earliest-arrival path from src to dst
// departing at time-of-day depart (seconds since midnight), using
// time-dependent Dijkstra (label-setting is exact under FIFO). The
// returned path's Cost is the total travel time in seconds.
func (m *Model) EarliestArrival(g *roadnet.Graph, src, dst roadnet.VertexID, depart float64) (spath.Path, error) {
	if src == dst {
		return spath.Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	n := g.NumVertices()
	arrival := make([]float64, n)
	for i := range arrival {
		arrival[i] = math.Inf(1)
	}
	parent := make([]roadnet.EdgeID, n)
	done := make([]bool, n)
	arrival[src] = depart

	type qitem struct {
		v roadnet.VertexID
		t float64
	}
	heap := []qitem{{v: src, t: depart}}
	push := func(it qitem) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].t <= heap[i].t {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() qitem {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l].t < heap[s].t {
				s = l
			}
			if r < last && heap[r].t < heap[s].t {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}

	for len(heap) > 0 {
		it := pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			break
		}
		for _, eid := range g.OutEdges(it.v) {
			e := g.Edge(eid)
			ta := it.t + m.TravelTime(g, e, it.t)
			if ta < arrival[e.To] {
				arrival[e.To] = ta
				parent[e.To] = eid
				push(qitem{v: e.To, t: ta})
			}
		}
	}
	if math.IsInf(arrival[dst], 1) {
		return spath.Path{}, spath.ErrNoPath
	}
	var edges []roadnet.EdgeID
	for v := dst; v != src; {
		eid := parent[v]
		edges = append(edges, eid)
		v = g.Edge(eid).From
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, g.Edge(eid).To)
	}
	return spath.Path{Vertices: vertices, Edges: edges, Cost: arrival[dst] - depart}, nil
}
