package metrics

import (
	"fmt"
	"math"
)

// RankOfBest returns the 1-based rank that pred assigns to the item with
// the highest target (the "true" item). Ties in pred count against the
// ranker (worst-case rank), and a NaN prediction ranks below every real
// score: a model that emits NaN for the true item has not ranked it at all,
// so it receives the worst rank (n) rather than accidentally the best —
// NaN comparisons are all false, so the naive loop would report rank 1.
// It returns 0 for empty input.
func RankOfBest(pred, target []float64) int {
	if len(pred) == 0 {
		return 0
	}
	if len(pred) != len(target) {
		panic(fmt.Sprintf("metrics: RankOfBest length mismatch %d vs %d", len(pred), len(target)))
	}
	bestIdx := 0
	for i := range target {
		if target[i] > target[bestIdx] {
			bestIdx = i
		}
	}
	pb := pred[bestIdx]
	rank := 1
	for i := range pred {
		if i == bestIdx {
			continue
		}
		// Worst-case tie handling: anything not strictly below pb outranks
		// the true item. A NaN pb loses to everything (including other
		// NaNs); a NaN competitor loses to a real pb.
		if math.IsNaN(pb) || pred[i] >= pb {
			rank++
		}
	}
	return rank
}

// MRR returns the mean reciprocal rank of the highest-target item over a
// set of queries.
func MRR(preds, targets [][]float64) float64 {
	if len(preds) == 0 {
		return 0
	}
	var sum float64
	var n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			sum += 1 / float64(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HitAtK returns the fraction of queries whose highest-target item is
// ranked within the top k by pred.
func HitAtK(preds, targets [][]float64, k int) float64 {
	if len(preds) == 0 || k < 1 {
		return 0
	}
	var hits, n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			n++
			if r <= k {
				hits++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// MeanRank returns the average rank of the highest-target item.
func MeanRank(preds, targets [][]float64) float64 {
	var sum float64
	var n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			sum += float64(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
