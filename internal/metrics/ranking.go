package metrics

import "fmt"

// RankOfBest returns the 1-based rank that pred assigns to the item with
// the highest target (the "true" item). Ties in pred count against the
// ranker (worst-case rank). It returns 0 for empty input.
func RankOfBest(pred, target []float64) int {
	if len(pred) == 0 {
		return 0
	}
	if len(pred) != len(target) {
		panic(fmt.Sprintf("metrics: RankOfBest length mismatch %d vs %d", len(pred), len(target)))
	}
	bestIdx := 0
	for i := range target {
		if target[i] > target[bestIdx] {
			bestIdx = i
		}
	}
	rank := 1
	for i := range pred {
		if i != bestIdx && pred[i] >= pred[bestIdx] {
			rank++
		}
	}
	return rank
}

// MRR returns the mean reciprocal rank of the highest-target item over a
// set of queries.
func MRR(preds, targets [][]float64) float64 {
	if len(preds) == 0 {
		return 0
	}
	var sum float64
	var n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			sum += 1 / float64(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HitAtK returns the fraction of queries whose highest-target item is
// ranked within the top k by pred.
func HitAtK(preds, targets [][]float64, k int) float64 {
	if len(preds) == 0 || k < 1 {
		return 0
	}
	var hits, n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			n++
			if r <= k {
				hits++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// MeanRank returns the average rank of the highest-target item.
func MeanRank(preds, targets [][]float64) float64 {
	var sum float64
	var n int
	for q := range preds {
		if r := RankOfBest(preds[q], targets[q]); r > 0 {
			sum += float64(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
