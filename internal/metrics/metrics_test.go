package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAEBasic(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("MAE identical = %v, want 0", got)
	}
	if got := MAE([]float64{2, 4}, []float64{1, 2}); got != 1.5 {
		t.Fatalf("MAE = %v, want 1.5", got)
	}
	if got := MAE(nil, nil); got != 0 {
		t.Fatalf("MAE empty = %v, want 0", got)
	}
}

func TestMAREBasic(t *testing.T) {
	if got := MARE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("MARE identical = %v", got)
	}
	// |2-1|+|4-2| over |1|+|2| = 3/3 = 1.
	if got := MARE([]float64{2, 4}, []float64{1, 2}); got != 1 {
		t.Fatalf("MARE = %v, want 1", got)
	}
	if got := MARE([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("MARE with zero targets = %v, want 0", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("RMSE identical = %v", got)
	}
	got := RMSE([]float64{3, 0}, []float64{0, 4})
	if math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("tau(a,a) = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("tau reversed = %v, want -1", got)
	}
}

func TestKendallTauConstantInput(t *testing.T) {
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("tau with constant a = %v, want 0", got)
	}
	if got := KendallTau([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("tau singleton = %v, want 0", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// a: 1 2 3 4; b: 1 3 2 4 -> pairs: 6 total, 5 concordant, 1 discordant.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 3, 2, 4}
	want := (5.0 - 1.0) / 6.0
	if got := KendallTau(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau = %v, want %v", got, want)
	}
}

func TestKendallTauWithTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 3, 4}
	got := KendallTau(a, b)
	// tau-b: C=5, D=0, tiesA=1 -> 5/sqrt(5*6).
	want := 5.0 / math.Sqrt(30)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau-b = %v, want %v", got, want)
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	a := []float64{1, 5, 2, 8}
	b := []float64{10, 50, 20, 80} // same order
	if got := SpearmanRho(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rho monotone = %v, want 1", got)
	}
	c := []float64{-1, -5, -2, -8}
	if got := SpearmanRho(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("rho anti-monotone = %v, want -1", got)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example with no ties: rho = 1 - 6*sum(d^2)/(n(n^2-1)).
	a := []float64{86, 97, 99, 100, 101, 103, 106, 110, 112, 113}
	b := []float64{0, 20, 28, 27, 50, 29, 7, 17, 6, 12}
	got := SpearmanRho(a, b)
	want := -29.0 / 165.0 // -0.17575...
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rho = %v, want %v", got, want)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 2, 3}
	if got := SpearmanRho(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rho tied identical = %v, want 1", got)
	}
	if got := SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("rho constant = %v, want 0", got)
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		tau := KendallTau(a, b)
		rho := SpearmanRho(a, b)
		return tau >= -1-1e-12 && tau <= 1+1e-12 && rho >= -1-1e-12 && rho <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		return math.Abs(KendallTau(a, b)-KendallTau(b, a)) < 1e-12 &&
			math.Abs(SpearmanRho(a, b)-SpearmanRho(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTauInvariantUnderMonotoneTransformProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		// exp is strictly monotone, so tau must not change.
		ea := make([]float64, n)
		for i := range a {
			ea[i] = math.Exp(a[i])
		}
		return math.Abs(KendallTau(a, b)-KendallTau(ea, b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNDCG(t *testing.T) {
	target := []float64{3, 2, 1}
	perfect := []float64{10, 5, 1}
	if got := NDCG(perfect, target, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v, want 1", got)
	}
	worst := []float64{1, 5, 10}
	got := NDCG(worst, target, 0)
	if got >= 1 || got <= 0 {
		t.Fatalf("reversed NDCG = %v, want in (0,1)", got)
	}
	if NDCG(nil, nil, 0) != 0 {
		t.Fatal("empty NDCG should be 0")
	}
}

func TestEvaluateAggregation(t *testing.T) {
	preds := [][]float64{{0.9, 0.5, 0.1}, {0.8, 0.3}}
	targets := [][]float64{{1.0, 0.6, 0.2}, {0.9, 0.2}}
	rep := Evaluate(preds, targets)
	if rep.NQueries != 2 || rep.NPairs != 5 {
		t.Fatalf("queries=%d pairs=%d, want 2/5", rep.NQueries, rep.NPairs)
	}
	if math.Abs(rep.Tau-1) > 1e-12 || math.Abs(rep.Rho-1) > 1e-12 {
		t.Fatalf("tau=%v rho=%v, want 1/1 for concordant queries", rep.Tau, rep.Rho)
	}
	wantMAE := (0.1 + 0.1 + 0.1 + 0.1 + 0.1) / 5
	if math.Abs(rep.MAE-wantMAE) > 1e-12 {
		t.Fatalf("MAE = %v, want %v", rep.MAE, wantMAE)
	}
}

func TestEvaluateSkipsSingletonQueriesForRankMetrics(t *testing.T) {
	preds := [][]float64{{0.5}, {0.9, 0.1}}
	targets := [][]float64{{0.7}, {1.0, 0.0}}
	rep := Evaluate(preds, targets)
	if math.Abs(rep.Tau-1) > 1e-12 {
		t.Fatalf("tau = %v, want 1 (singleton query excluded)", rep.Tau)
	}
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([][]float64{{1}}, [][]float64{{1}, {2}})
}

func TestReportString(t *testing.T) {
	r := Report{MAE: 0.1, MARE: 0.2, Tau: 0.3, Rho: 0.4, NQueries: 5, NPairs: 25}
	s := r.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}
