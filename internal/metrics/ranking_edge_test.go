package metrics

import (
	"math"
	"testing"
)

// TestRankOfBestEdgeCases pins the documented definition on degenerate
// inputs: empty rankings, single elements, full ties, and NaN scores.
func TestRankOfBestEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		pred   []float64
		target []float64
		want   int
	}{
		{"empty", nil, nil, 0},
		{"single element", []float64{0.3}, []float64{1}, 1},
		{"clear winner", []float64{0.9, 0.1, 0.5}, []float64{1, 0, 0.5}, 1},
		{"reversed", []float64{0.1, 0.5, 0.9}, []float64{1, 0.5, 0}, 3},
		// Ties count against the ranker: a constant prediction ranks the
		// true item last, not first.
		{"all pred ties", []float64{0.5, 0.5, 0.5}, []float64{0, 1, 0}, 3},
		{"tie with best only", []float64{0.7, 0.7, 0.2}, []float64{1, 0, 0}, 2},
		// Ties in target: the first maximal target is "the" true item.
		{"target ties", []float64{0.9, 0.1}, []float64{1, 1}, 1},
		// NaN predictions rank below every real score (worst case), never
		// accidentally first.
		{"nan pred on best", []float64{nan, 0.1, 0.2}, []float64{1, 0, 0}, 3},
		{"all nan preds", []float64{nan, nan, nan}, []float64{0, 1, 0}, 3},
		{"nan pred on competitor", []float64{0.4, nan, 0.2}, []float64{1, 0, 0}, 1},
		{"nan competitor beats nothing", []float64{0.1, nan, 0.9}, []float64{1, 0, 0}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RankOfBest(tc.pred, tc.target); got != tc.want {
				t.Errorf("RankOfBest(%v, %v) = %d, want %d", tc.pred, tc.target, got, tc.want)
			}
		})
	}
}

func TestMRREdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		preds   [][]float64
		targets [][]float64
		want    float64
	}{
		{"no queries", nil, nil, 0},
		{"all empty queries", [][]float64{{}, {}}, [][]float64{{}, {}}, 0},
		{"single element query", [][]float64{{0.2}}, [][]float64{{1}}, 1},
		{"perfect and worst", [][]float64{{0.9, 0.1}, {0.1, 0.9}}, [][]float64{{1, 0}, {1, 0}}, 0.75},
		// Empty queries are skipped, not averaged in as zeros.
		{"empty query skipped", [][]float64{{}, {0.9, 0.1}}, [][]float64{{}, {1, 0}}, 1},
		// A NaN scorer earns the reciprocal of the worst rank.
		{"nan best pred", [][]float64{{nan, 0.5}}, [][]float64{{1, 0}}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MRR(tc.preds, tc.targets); got != tc.want {
				t.Errorf("MRR = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestHitAtKEdgeCases(t *testing.T) {
	preds := [][]float64{{0.9, 0.1, 0.2}, {0.1, 0.2, 0.9}}
	targets := [][]float64{{1, 0, 0}, {1, 0, 0}} // ranks 1 and 3
	cases := []struct {
		name string
		k    int
		want float64
	}{
		{"k zero", 0, 0},
		{"k negative", -2, 0},
		{"k one", 1, 0.5},
		{"k two", 2, 0.5},
		{"k covers all", 3, 1},
		{"k beyond set", 10, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HitAtK(preds, targets, tc.k); got != tc.want {
				t.Errorf("HitAtK(k=%d) = %v, want %v", tc.k, got, tc.want)
			}
		})
	}
	if got := HitAtK(nil, nil, 3); got != 0 {
		t.Errorf("HitAtK on no queries = %v, want 0", got)
	}
	// All-ties: rank is worst-case (3), so only k >= 3 hits.
	tied := [][]float64{{0.5, 0.5, 0.5}}
	tt := [][]float64{{1, 0, 0}}
	if got := HitAtK(tied, tt, 2); got != 0 {
		t.Errorf("HitAtK all-ties k=2 = %v, want 0", got)
	}
	if got := HitAtK(tied, tt, 3); got != 1 {
		t.Errorf("HitAtK all-ties k=3 = %v, want 1", got)
	}
}

func TestMeanRankEdgeCases(t *testing.T) {
	nan := math.NaN()
	if got := MeanRank(nil, nil); got != 0 {
		t.Errorf("MeanRank no queries = %v, want 0", got)
	}
	if got := MeanRank([][]float64{{}}, [][]float64{{}}); got != 0 {
		t.Errorf("MeanRank empty query = %v, want 0", got)
	}
	preds := [][]float64{{0.9, 0.1}, {0.1, 0.9}, {nan, nan, nan}}
	targets := [][]float64{{1, 0}, {1, 0}, {1, 0, 0}}
	// Ranks: 1, 2, and worst-case 3 for the all-NaN scorer.
	if got, want := MeanRank(preds, targets), 2.0; got != want {
		t.Errorf("MeanRank = %v, want %v", got, want)
	}
}

// TestRankStatsDegenerate pins the tie-corrected correlation statistics on
// the degenerate inputs the streaming retrainer can produce (constant or
// sub-2-element score vectors).
func TestRankStatsDegenerate(t *testing.T) {
	if got := KendallTau([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("KendallTau single element = %v, want 0", got)
	}
	if got := KendallTau([]float64{3, 3, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("KendallTau constant vector = %v, want 0", got)
	}
	if got := SpearmanRho([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("SpearmanRho single element = %v, want 0", got)
	}
	if got := SpearmanRho([]float64{3, 3, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("SpearmanRho constant vector = %v, want 0", got)
	}
	if got := NDCG(nil, nil, 5); got != 0 {
		t.Errorf("NDCG empty = %v, want 0", got)
	}
	if got := NDCG([]float64{0.5, 0.1}, []float64{0, 0}, 2); got != 0 {
		t.Errorf("NDCG all-zero relevance = %v, want 0", got)
	}
}
