package metrics

import (
	"math"
	"testing"
)

func TestRankOfBest(t *testing.T) {
	pred := []float64{0.9, 0.5, 0.7}
	target := []float64{1.0, 0.2, 0.5} // best item is index 0
	if r := RankOfBest(pred, target); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	pred2 := []float64{0.1, 0.5, 0.7}
	if r := RankOfBest(pred2, target); r != 3 {
		t.Fatalf("rank = %d, want 3", r)
	}
	if r := RankOfBest(nil, nil); r != 0 {
		t.Fatalf("empty rank = %d, want 0", r)
	}
}

func TestRankOfBestTiesPessimistic(t *testing.T) {
	pred := []float64{0.5, 0.5, 0.5}
	target := []float64{1.0, 0.2, 0.1}
	if r := RankOfBest(pred, target); r != 3 {
		t.Fatalf("tied rank = %d, want worst-case 3", r)
	}
}

func TestRankOfBestPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RankOfBest([]float64{1}, []float64{1, 2})
}

func TestMRRPerfectAndWorst(t *testing.T) {
	preds := [][]float64{{0.9, 0.1}, {0.8, 0.2}}
	targets := [][]float64{{1, 0}, {1, 0}}
	if m := MRR(preds, targets); math.Abs(m-1) > 1e-12 {
		t.Fatalf("perfect MRR = %v, want 1", m)
	}
	worst := [][]float64{{0.1, 0.9}, {0.2, 0.8}}
	if m := MRR(worst, targets); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("worst MRR = %v, want 0.5", m)
	}
	if m := MRR(nil, nil); m != 0 {
		t.Fatalf("empty MRR = %v", m)
	}
}

func TestHitAtK(t *testing.T) {
	preds := [][]float64{{0.9, 0.5, 0.1}, {0.1, 0.5, 0.9}}
	targets := [][]float64{{1, 0, 0}, {1, 0, 0}}
	if h := HitAtK(preds, targets, 1); math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("hit@1 = %v, want 0.5", h)
	}
	if h := HitAtK(preds, targets, 3); math.Abs(h-1) > 1e-12 {
		t.Fatalf("hit@3 = %v, want 1", h)
	}
	if h := HitAtK(preds, targets, 0); h != 0 {
		t.Fatalf("hit@0 = %v, want 0", h)
	}
}

func TestMeanRank(t *testing.T) {
	preds := [][]float64{{0.9, 0.5}, {0.1, 0.9}}
	targets := [][]float64{{1, 0}, {1, 0}}
	if m := MeanRank(preds, targets); math.Abs(m-1.5) > 1e-12 {
		t.Fatalf("mean rank = %v, want 1.5", m)
	}
	if m := MeanRank(nil, nil); m != 0 {
		t.Fatalf("empty mean rank = %v", m)
	}
}
