// Package metrics implements the evaluation measures of the paper: mean
// absolute error (MAE) and mean absolute relative error (MARE) on the
// regression side, and Kendall's rank correlation coefficient (τ) and
// Spearman's rank correlation coefficient (ρ) on the ranking side. All rank
// statistics handle ties with the standard corrections (τ-b and average
// ranks).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - target[i])
	}
	return sum / float64(len(pred))
}

// MARE returns the mean absolute relative error: sum|p-t| / sum|t|. This is
// the aggregate form robust to near-zero individual targets.
func MARE(pred, target []float64) float64 {
	var num, den float64
	for i := range pred {
		num += math.Abs(pred[i] - target[i])
		den += math.Abs(target[i])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RMSE returns the root-mean-square error.
func RMSE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// KendallTau returns Kendall's τ-b between two score vectors, the
// tie-corrected form: (C - D) / sqrt((n0 - tiesA)(n0 - tiesB)) with
// n0 = n(n-1)/2. It is +1 for perfectly concordant orders, -1 for reversed
// ones, and 0 when either vector is constant.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) {
		panic(fmt.Sprintf("metrics: KendallTau length mismatch %d vs %d", n, len(b)))
	}
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da*db > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tiesA) * (n0 - tiesB))
	if den == 0 {
		return 0
	}
	return (concordant - discordant) / den
}

// ranks returns average ranks (1-based) of xs, assigning tied values the
// mean of the ranks they span.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// SpearmanRho returns Spearman's rank correlation: the Pearson correlation
// of the average ranks of a and b. It returns 0 when either input is
// constant.
func SpearmanRho(a, b []float64) float64 {
	n := len(a)
	if n != len(b) {
		panic(fmt.Sprintf("metrics: SpearmanRho length mismatch %d vs %d", n, len(b)))
	}
	if n < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// NDCG returns the normalized discounted cumulative gain at k, treating
// target as graded relevance and pred as the ranking criterion. k <= 0
// means use all items.
func NDCG(pred, target []float64, k int) float64 {
	n := len(pred)
	if n == 0 {
		return 0
	}
	if k <= 0 || k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pred[order[a]] > pred[order[b]] })
	var dcg float64
	for i := 0; i < k; i++ {
		dcg += target[order[i]] / math.Log2(float64(i)+2)
	}
	ideal := append([]float64(nil), target...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	var idcg float64
	for i := 0; i < k; i++ {
		idcg += ideal[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// Report aggregates the paper's four metrics over a set of ranking queries.
// MAE and MARE are computed over the pooled (prediction, target) pairs;
// τ and ρ are computed per query and averaged, matching the paper's
// per-candidate-set ranking evaluation.
type Report struct {
	MAE      float64
	MARE     float64
	Tau      float64
	Rho      float64
	NQueries int
	NPairs   int
}

// String formats the report as a table row.
func (r Report) String() string {
	return fmt.Sprintf("MAE=%.4f MARE=%.4f tau=%.4f rho=%.4f (queries=%d pairs=%d)",
		r.MAE, r.MARE, r.Tau, r.Rho, r.NQueries, r.NPairs)
}

// Evaluate builds a Report from per-query prediction/target slices. Queries
// with fewer than two candidates contribute to MAE/MARE but not to the rank
// correlations.
func Evaluate(preds, targets [][]float64) Report {
	if len(preds) != len(targets) {
		panic(fmt.Sprintf("metrics: Evaluate got %d pred queries, %d target queries", len(preds), len(targets)))
	}
	var allP, allT []float64
	var tauSum, rhoSum float64
	var rankQueries int
	for q := range preds {
		if len(preds[q]) != len(targets[q]) {
			panic(fmt.Sprintf("metrics: query %d has %d preds, %d targets", q, len(preds[q]), len(targets[q])))
		}
		allP = append(allP, preds[q]...)
		allT = append(allT, targets[q]...)
		if len(preds[q]) >= 2 {
			tauSum += KendallTau(preds[q], targets[q])
			rhoSum += SpearmanRho(preds[q], targets[q])
			rankQueries++
		}
	}
	rep := Report{
		MAE:      MAE(allP, allT),
		MARE:     MARE(allP, allT),
		NQueries: len(preds),
		NPairs:   len(allP),
	}
	if rankQueries > 0 {
		rep.Tau = tauSum / float64(rankQueries)
		rep.Rho = rhoSum / float64(rankQueries)
	}
	return rep
}
