//go:build race

package node2vec

// raceEnabled reports whether this binary was built with the race
// detector. Hogwild SGNS (TrainConfig.Workers > 1) updates the shared
// embedding matrices without locks on purpose — the standard word2vec
// trade — so its tests skip themselves under -race instead of reporting
// the intentional races as failures.
const raceEnabled = true
