// Package node2vec implements the node2vec graph-embedding algorithm
// (Grover & Leskovec, KDD 2016) over road networks: second-order biased
// random walks parameterized by return parameter p and in-out parameter q,
// followed by skip-gram training with negative sampling. PathRank uses the
// resulting vertex vectors to initialize its embedding layer.
package node2vec

import "math/rand"

// aliasTable samples from a discrete distribution in O(1) using the
// Vose/Walker alias method.
type aliasTable struct {
	prob  []float64
	alias []int32
}

// newAliasTable builds a sampler for the (unnormalized, non-negative)
// weights. At least one weight must be positive.
func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	if sum == 0 || n == 0 {
		for i := range t.prob {
			t.prob[i] = 1
		}
		return t
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

// sample draws an index from the distribution.
func (t *aliasTable) sample(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
