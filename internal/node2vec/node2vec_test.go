package node2vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

func TestAliasTableMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	table := newAliasTable(weights)
	rng := rand.New(rand.NewSource(1))
	const N = 200000
	counts := make([]int, len(weights))
	for i := 0; i < N; i++ {
		counts[table.sample(rng)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := float64(counts[i]) / N
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: empirical %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasTableSingleton(t *testing.T) {
	table := newAliasTable([]float64{5})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if table.sample(rng) != 0 {
			t.Fatal("singleton table must always return 0")
		}
	}
}

func TestAliasTableZeroWeights(t *testing.T) {
	// Degenerate all-zero weights fall back to uniform without panicking.
	table := newAliasTable([]float64{0, 0, 0})
	rng := rand.New(rand.NewSource(3))
	seen := make(map[int]bool)
	for i := 0; i < 300; i++ {
		seen[table.sample(rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback should reach all indices, got %v", seen)
	}
}

func TestAliasTableProbabilityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, 0, len(raw))
		for _, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			weights = append(weights, math.Abs(w))
		}
		if len(weights) == 0 {
			return true
		}
		table := newAliasTable(weights)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			s := table.sample(rng)
			if s < 0 || s >= len(weights) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func smallNet(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: 8, Cols: 8, SpacingM: 200, JitterFrac: 0.2,
		RemoveFrac: 0.05, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 11,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

func TestGenerateWalksShapeAndValidity(t *testing.T) {
	g := smallNet(t)
	cfg := WalkConfig{WalksPerVertex: 2, WalkLength: 10, P: 1, Q: 0.5, Seed: 3}
	walks := GenerateWalks(g, cfg)
	if len(walks) != 2*g.NumVertices() {
		t.Fatalf("got %d walks, want %d", len(walks), 2*g.NumVertices())
	}
	for wi, walk := range walks {
		if len(walk) == 0 || len(walk) > cfg.WalkLength {
			t.Fatalf("walk %d has length %d", wi, len(walk))
		}
		for i := 1; i < len(walk); i++ {
			if _, ok := g.FindEdge(walk[i-1], walk[i]); !ok {
				t.Fatalf("walk %d step %d: no edge %d->%d", wi, i, walk[i-1], walk[i])
			}
		}
	}
}

func TestGenerateWalksCoverAllVertices(t *testing.T) {
	g := smallNet(t)
	walks := GenerateWalks(g, WalkConfig{WalksPerVertex: 1, WalkLength: 5, P: 1, Q: 1, Seed: 4})
	started := make(map[roadnet.VertexID]bool)
	for _, w := range walks {
		started[w[0]] = true
	}
	if len(started) != g.NumVertices() {
		t.Fatalf("walks start from %d vertices, want %d", len(started), g.NumVertices())
	}
}

func TestGenerateWalksDeterministic(t *testing.T) {
	g := smallNet(t)
	cfg := WalkConfig{WalksPerVertex: 1, WalkLength: 8, P: 2, Q: 0.5, Seed: 5}
	w1 := GenerateWalks(g, cfg)
	w2 := GenerateWalks(g, cfg)
	if len(w1) != len(w2) {
		t.Fatal("walk counts differ")
	}
	for i := range w1 {
		if len(w1[i]) != len(w2[i]) {
			t.Fatalf("walk %d length differs", i)
		}
		for j := range w1[i] {
			if w1[i][j] != w2[i][j] {
				t.Fatalf("walk %d step %d differs", i, j)
			}
		}
	}
}

func TestLowQExploresFurther(t *testing.T) {
	// With Q << 1 walks should wander farther from the start than with
	// Q >> 1 (DFS-like vs BFS-like bias), measured by unique vertices.
	g := smallNet(t)
	unique := func(q float64) float64 {
		walks := GenerateWalks(g, WalkConfig{WalksPerVertex: 3, WalkLength: 25, P: 1, Q: q, Seed: 6})
		var total float64
		for _, w := range walks {
			seen := make(map[roadnet.VertexID]bool)
			for _, v := range w {
				seen[v] = true
			}
			total += float64(len(seen))
		}
		return total / float64(len(walks))
	}
	far := unique(0.25)
	near := unique(4.0)
	if far <= near {
		t.Fatalf("low Q should visit more unique vertices: q=0.25 -> %.2f, q=4 -> %.2f", far, near)
	}
}

func TestTrainProducesFiniteVectors(t *testing.T) {
	g := smallNet(t)
	walks := GenerateWalks(g, WalkConfig{WalksPerVertex: 2, WalkLength: 12, P: 1, Q: 0.5, Seed: 7})
	emb := Train(g, walks, TrainConfig{Dim: 16, Window: 3, Negatives: 3, Epochs: 1, LR: 0.025, Seed: 8})
	if emb.NumVertices() != g.NumVertices() || emb.Dim != 16 {
		t.Fatalf("embeddings %dx%d, want %dx16", emb.NumVertices(), emb.Dim, g.NumVertices())
	}
	for v := 0; v < emb.NumVertices(); v++ {
		for _, x := range emb.Vector(roadnet.VertexID(v)) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vertex %d has non-finite embedding", v)
			}
		}
	}
}

func TestEmbeddingsCaptureLocality(t *testing.T) {
	// Adjacent vertices should on average be more similar than random
	// distant pairs — the core property PathRank relies on.
	g := smallNet(t)
	emb := Embed(g,
		WalkConfig{WalksPerVertex: 6, WalkLength: 20, P: 1, Q: 0.5, Seed: 9},
		TrainConfig{Dim: 32, Window: 4, Negatives: 4, Epochs: 3, LR: 0.05, Seed: 10})

	rng := rand.New(rand.NewSource(11))
	var simAdj, simRand float64
	const trials = 300
	for i := 0; i < trials; i++ {
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		outs := g.OutEdges(v)
		if len(outs) == 0 {
			continue
		}
		nb := g.Edge(outs[rng.Intn(len(outs))]).To
		simAdj += emb.Cosine(v, nb)
		simRand += emb.Cosine(v, roadnet.VertexID(rng.Intn(g.NumVertices())))
	}
	simAdj /= trials
	simRand /= trials
	if simAdj <= simRand+0.05 {
		t.Fatalf("adjacency similarity %.4f not above random %.4f", simAdj, simRand)
	}
}

func TestCosineBounds(t *testing.T) {
	e := &Embeddings{Dim: 2, Vecs: [][]float64{{1, 0}, {0, 1}, {1, 0}, {0, 0}}}
	if c := e.Cosine(0, 2); math.Abs(c-1) > 1e-12 {
		t.Fatalf("identical vectors cosine %v, want 1", c)
	}
	if c := e.Cosine(0, 1); math.Abs(c) > 1e-12 {
		t.Fatalf("orthogonal vectors cosine %v, want 0", c)
	}
	if c := e.Cosine(0, 3); c != 0 {
		t.Fatalf("zero vector cosine %v, want 0", c)
	}
}

func TestEmbeddingsSaveLoad(t *testing.T) {
	e := &Embeddings{Dim: 3, Vecs: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	e2, err := LoadEmbeddings(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if e2.Dim != 3 || len(e2.Vecs) != 2 || e2.Vecs[1][2] != 6 {
		t.Fatalf("round trip mangled embeddings: %+v", e2)
	}
}

func TestLoadEmbeddingsRejectsGarbage(t *testing.T) {
	if _, err := LoadEmbeddings(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestNearestNeighborsOrderedAndExcludesSelf(t *testing.T) {
	e := &Embeddings{Dim: 2, Vecs: [][]float64{
		{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0},
	}}
	nn := e.NearestNeighbors(0, 2)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbors, want 2", len(nn))
	}
	if nn[0].Vertex != 1 {
		t.Fatalf("nearest to vertex 0 is %d, want 1", nn[0].Vertex)
	}
	for _, n := range nn {
		if n.Vertex == 0 {
			t.Fatal("self included in neighbors")
		}
	}
	if nn[0].Cosine < nn[1].Cosine {
		t.Fatal("neighbors not in decreasing similarity order")
	}
	if got := e.NearestNeighbors(0, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := e.NearestNeighbors(0, 100); len(got) != 3 {
		t.Fatalf("k beyond vocab should clamp to %d, got %d", 3, len(got))
	}
}

func TestNearestNeighborsOnTrainedEmbeddings(t *testing.T) {
	g := smallNet(t)
	emb := Embed(g,
		WalkConfig{WalksPerVertex: 4, WalkLength: 15, P: 1, Q: 0.5, Seed: 13},
		TrainConfig{Dim: 16, Window: 3, Negatives: 3, Epochs: 2, LR: 0.05, Seed: 14})
	// The nearest embedding neighbors of a vertex should be geographically
	// close on average (locality property).
	v := roadnet.VertexID(g.NumVertices() / 2)
	nn := emb.NearestNeighbors(v, 5)
	var nnDist, randDist float64
	for i, n := range nn {
		nnDist += geo.Distance(g.Vertex(v).Point, g.Vertex(n.Vertex).Point)
		far := roadnet.VertexID((int(v) + 7*(i+3)) % g.NumVertices())
		randDist += geo.Distance(g.Vertex(v).Point, g.Vertex(far).Point)
	}
	if nnDist >= randDist {
		t.Fatalf("embedding neighbors mean dist %.0f not below arbitrary picks %.0f", nnDist/5, randDist/5)
	}
}
