package node2vec

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathrank/internal/roadnet"
)

// TrainConfig parameterizes skip-gram-with-negative-sampling training.
type TrainConfig struct {
	Dim       int     // embedding dimensionality M
	Window    int     // context window size
	Negatives int     // negative samples per positive pair
	Epochs    int     // passes over the walk corpus
	LR        float64 // initial learning rate (linearly decayed)
	Seed      int64

	// Workers > 1 trains with that many hogwild-style workers: the walk
	// corpus is sharded and the shared embedding matrices are updated
	// without locks, which is the standard word2vec trade — sparse
	// conflicting writes cost a little accuracy noise but scale across
	// cores. The result is NOT bit-deterministic; leave Workers <= 1
	// (the default) to reproduce recorded tables exactly.
	Workers int
}

// DefaultTrainConfig returns settings adequate for road networks.
func DefaultTrainConfig(dim int) TrainConfig {
	return TrainConfig{Dim: dim, Window: 5, Negatives: 5, Epochs: 3, LR: 0.025, Seed: 1}
}

// Embeddings holds one vector per vertex.
type Embeddings struct {
	Dim  int
	Vecs [][]float64 // indexed by vertex ID
}

// Vector returns the embedding of v. The slice aliases internal storage.
func (e *Embeddings) Vector(v roadnet.VertexID) []float64 { return e.Vecs[v] }

// NumVertices returns the vocabulary size.
func (e *Embeddings) NumVertices() int { return len(e.Vecs) }

// Cosine returns the cosine similarity of the embeddings of a and b.
func (e *Embeddings) Cosine(a, b roadnet.VertexID) float64 {
	va, vb := e.Vecs[a], e.Vecs[b]
	var dot, na, nb float64
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Save writes the embeddings in gob format.
func (e *Embeddings) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(e); err != nil {
		return fmt.Errorf("node2vec: encode embeddings: %w", err)
	}
	return nil
}

// LoadEmbeddings reads embeddings written by Save.
func LoadEmbeddings(r io.Reader) (*Embeddings, error) {
	var e Embeddings
	if err := gob.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("node2vec: decode embeddings: %w", err)
	}
	return &e, nil
}

// Train runs SGNS over the walks and returns input-side embeddings for all
// g's vertices. Vertices that never appear in a walk keep their random
// initialization.
func Train(g *roadnet.Graph, walks [][]roadnet.VertexID, cfg TrainConfig) *Embeddings {
	n := g.NumVertices()
	dim := cfg.Dim
	rng := rand.New(rand.NewSource(cfg.Seed))

	in := make([][]float64, n)  // target vectors (the output of training)
	out := make([][]float64, n) // context vectors
	for v := 0; v < n; v++ {
		in[v] = make([]float64, dim)
		out[v] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			in[v][d] = (rng.Float64() - 0.5) / float64(dim)
		}
	}

	// Negative-sampling distribution: unigram^0.75 over walk occurrences.
	freq := make([]float64, n)
	var totalTokens int
	for _, walk := range walks {
		for _, v := range walk {
			freq[v]++
			totalTokens++
		}
	}
	for v := range freq {
		freq[v] = math.Pow(freq[v], 0.75)
	}
	negTable := newAliasTable(freq)

	totalPairs := estimatePairs(walks, cfg.Window) * cfg.Epochs
	if totalPairs == 0 {
		totalPairs = 1
	}

	if cfg.Workers > 1 {
		trainHogwild(walks, in, out, negTable, cfg, totalPairs)
	} else {
		trainShard(walks, in, out, negTable, rng, cfg, totalPairs, nil)
	}
	_ = totalTokens
	return &Embeddings{Dim: dim, Vecs: in}
}

// trainShard runs the SGNS update loop over walks. pairCounter, when
// non-nil, is the shared hogwild pair counter used for the global
// learning-rate decay; when nil a local counter is used (serial mode,
// bit-deterministic).
func trainShard(walks [][]roadnet.VertexID, in, out [][]float64, negTable *aliasTable,
	rng *rand.Rand, cfg TrainConfig, totalPairs int, pairCounter *atomic.Int64) {

	dim := cfg.Dim
	grad := make([]float64, dim)
	pairs := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, walk := range walks {
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctx := walk[j]
					p := pairs
					if pairCounter != nil {
						p = int(pairCounter.Add(1)) - 1
					}
					lr := cfg.LR * (1 - float64(p)/float64(totalPairs))
					if lr < cfg.LR*0.0001 {
						lr = cfg.LR * 0.0001
					}
					trainPair(in[center], out[ctx], 1, lr, grad)
					for k := 0; k < cfg.Negatives; k++ {
						neg := roadnet.VertexID(negTable.sample(rng))
						if neg == ctx {
							continue
						}
						trainPair(in[center], out[neg], 0, lr, grad)
					}
					// Apply accumulated input gradient once per context.
					for d := 0; d < dim; d++ {
						in[center][d] += grad[d]
						grad[d] = 0
					}
					pairs++
				}
			}
		}
	}
}

// trainHogwild shards the walk corpus across cfg.Workers goroutines that
// update the shared embedding matrices without synchronization (Hogwild!).
// Conflicting sparse writes are rare enough on road-network corpora that
// the embeddings converge to the same quality as the serial run.
func trainHogwild(walks [][]roadnet.VertexID, in, out [][]float64, negTable *aliasTable,
	cfg TrainConfig, totalPairs int) {

	workers := cfg.Workers
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}
	var counter atomic.Int64
	var wg sync.WaitGroup
	chunk := (len(walks) + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > len(walks) {
			hi = len(walks)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wk)*7919))
			trainShard(walks[lo:hi], in, out, negTable, rng, cfg, totalPairs, &counter)
		}(wk, lo, hi)
	}
	wg.Wait()
}

// trainPair performs one SGNS update for (target, context) with label 1 for
// a positive pair and 0 for a negative one. The input-side gradient is
// accumulated into grad; the context vector is updated in place.
func trainPair(target, context []float64, label float64, lr float64, grad []float64) {
	var dot float64
	for d := range target {
		dot += target[d] * context[d]
	}
	pred := 1 / (1 + math.Exp(-dot))
	g := lr * (label - pred)
	for d := range target {
		grad[d] += g * context[d]
		context[d] += g * target[d]
	}
}

func estimatePairs(walks [][]roadnet.VertexID, window int) int {
	total := 0
	for _, w := range walks {
		l := len(w)
		span := 2 * window
		if span > l-1 {
			span = l - 1
		}
		total += l * span
	}
	return total
}

// Embed is a convenience that generates walks and trains in one call.
func Embed(g *roadnet.Graph, wc WalkConfig, tc TrainConfig) *Embeddings {
	walks := GenerateWalks(g, wc)
	return Train(g, walks, tc)
}

// Neighbor is a vertex with its cosine similarity to a query vertex.
type Neighbor struct {
	Vertex roadnet.VertexID
	Cosine float64
}

// NearestNeighbors returns the k vertices most similar to v by cosine
// similarity, excluding v itself, in decreasing similarity order.
func (e *Embeddings) NearestNeighbors(v roadnet.VertexID, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, e.NumVertices()-1)
	for u := 0; u < e.NumVertices(); u++ {
		if roadnet.VertexID(u) == v {
			continue
		}
		out = append(out, Neighbor{Vertex: roadnet.VertexID(u), Cosine: e.Cosine(v, roadnet.VertexID(u))})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cosine > out[b].Cosine })
	if len(out) > k {
		out = out[:k]
	}
	return out
}
