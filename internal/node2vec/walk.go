package node2vec

import (
	"math/rand"
	"sort"

	"pathrank/internal/roadnet"
)

// WalkConfig parameterizes the biased random walks.
type WalkConfig struct {
	WalksPerVertex int     // r in the paper
	WalkLength     int     // l in the paper
	P              float64 // return parameter: high P discourages revisiting
	Q              float64 // in-out parameter: low Q encourages exploration (DFS-like)
	Seed           int64
}

// DefaultWalkConfig mirrors common node2vec settings scaled for road
// networks.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerVertex: 8, WalkLength: 40, P: 1, Q: 0.5, Seed: 1}
}

// walker precomputes sorted neighbor lists for O(log d) adjacency tests
// during second-order transitions.
type walker struct {
	g         *roadnet.Graph
	neighbors [][]roadnet.VertexID // sorted out-neighbors per vertex
	cfg       WalkConfig
}

func newWalker(g *roadnet.Graph, cfg WalkConfig) *walker {
	w := &walker{g: g, cfg: cfg, neighbors: make([][]roadnet.VertexID, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		outs := g.OutEdges(roadnet.VertexID(v))
		ns := make([]roadnet.VertexID, 0, len(outs))
		for _, eid := range outs {
			ns = append(ns, g.Edge(eid).To)
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		w.neighbors[v] = ns
	}
	return w
}

func (w *walker) adjacent(u, v roadnet.VertexID) bool {
	ns := w.neighbors[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// step samples the next vertex after cur, where prev is the vertex visited
// before cur (or -1 at the start of the walk).
func (w *walker) step(rng *rand.Rand, prev, cur roadnet.VertexID) (roadnet.VertexID, bool) {
	ns := w.neighbors[cur]
	if len(ns) == 0 {
		return 0, false
	}
	if prev < 0 {
		return ns[rng.Intn(len(ns))], true
	}
	weights := make([]float64, len(ns))
	for i, x := range ns {
		switch {
		case x == prev:
			weights[i] = 1 / w.cfg.P
		case w.adjacent(prev, x):
			weights[i] = 1
		default:
			weights[i] = 1 / w.cfg.Q
		}
	}
	// For small degrees a linear roulette is faster than building an alias
	// table per step.
	var sum float64
	for _, wt := range weights {
		sum += wt
	}
	r := rng.Float64() * sum
	for i, wt := range weights {
		r -= wt
		if r <= 0 {
			return ns[i], true
		}
	}
	return ns[len(ns)-1], true
}

// GenerateWalks produces cfg.WalksPerVertex walks of length cfg.WalkLength
// from every vertex of g, in a deterministic order given cfg.Seed.
func GenerateWalks(g *roadnet.Graph, cfg WalkConfig) [][]roadnet.VertexID {
	w := newWalker(g, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumVertices()
	walks := make([][]roadnet.VertexID, 0, n*cfg.WalksPerVertex)
	order := rng.Perm(n)
	for rep := 0; rep < cfg.WalksPerVertex; rep++ {
		for _, vi := range order {
			walk := make([]roadnet.VertexID, 1, cfg.WalkLength)
			walk[0] = roadnet.VertexID(vi)
			prev := roadnet.VertexID(-1)
			cur := roadnet.VertexID(vi)
			for len(walk) < cfg.WalkLength {
				next, ok := w.step(rng, prev, cur)
				if !ok {
					break
				}
				walk = append(walk, next)
				prev, cur = cur, next
			}
			walks = append(walks, walk)
		}
	}
	return walks
}
