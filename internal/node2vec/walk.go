package node2vec

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pathrank/internal/roadnet"
)

// WalkConfig parameterizes the biased random walks.
type WalkConfig struct {
	WalksPerVertex int     // r in the paper
	WalkLength     int     // l in the paper
	P              float64 // return parameter: high P discourages revisiting
	Q              float64 // in-out parameter: low Q encourages exploration (DFS-like)
	Seed           int64

	// Workers > 1 generates walks in parallel, sharded by start vertex.
	// Each walk draws from its own splitmix-derived RNG stream, so the
	// corpus is deterministic for a given Seed regardless of the worker
	// count — but it differs from the single-stream corpus produced by
	// Workers <= 1, which remains the default so recorded experiment
	// tables stay reproducible.
	Workers int
}

// DefaultWalkConfig mirrors common node2vec settings scaled for road
// networks.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerVertex: 8, WalkLength: 40, P: 1, Q: 0.5, Seed: 1}
}

// walker precomputes sorted neighbor lists for O(log d) adjacency tests
// during second-order transitions.
type walker struct {
	g         *roadnet.Graph
	neighbors [][]roadnet.VertexID // sorted out-neighbors per vertex
	cfg       WalkConfig
	maxDeg    int
}

func newWalker(g *roadnet.Graph, cfg WalkConfig) *walker {
	w := &walker{g: g, cfg: cfg, neighbors: make([][]roadnet.VertexID, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		outs := g.OutEdges(roadnet.VertexID(v))
		ns := make([]roadnet.VertexID, 0, len(outs))
		for _, eid := range outs {
			ns = append(ns, g.Edge(eid).To)
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		w.neighbors[v] = ns
		if len(ns) > w.maxDeg {
			w.maxDeg = len(ns)
		}
	}
	return w
}

func (w *walker) adjacent(u, v roadnet.VertexID) bool {
	ns := w.neighbors[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// step samples the next vertex after cur, where prev is the vertex visited
// before cur (or -1 at the start of the walk). buf is caller-owned scratch
// with capacity at least the walker's maximum out-degree, so the hot loop
// performs no allocation.
func (w *walker) step(rng *rand.Rand, prev, cur roadnet.VertexID, buf []float64) (roadnet.VertexID, bool) {
	ns := w.neighbors[cur]
	if len(ns) == 0 {
		return 0, false
	}
	if prev < 0 {
		return ns[rng.Intn(len(ns))], true
	}
	weights := buf[:len(ns)]
	for i, x := range ns {
		switch {
		case x == prev:
			weights[i] = 1 / w.cfg.P
		case w.adjacent(prev, x):
			weights[i] = 1
		default:
			weights[i] = 1 / w.cfg.Q
		}
	}
	// For small degrees a linear roulette is faster than building an alias
	// table per step.
	var sum float64
	for _, wt := range weights {
		sum += wt
	}
	r := rng.Float64() * sum
	for i, wt := range weights {
		r -= wt
		if r <= 0 {
			return ns[i], true
		}
	}
	return ns[len(ns)-1], true
}

// GenerateWalks produces cfg.WalksPerVertex walks of length cfg.WalkLength
// from every vertex of g, in a deterministic order given cfg.Seed.
func GenerateWalks(g *roadnet.Graph, cfg WalkConfig) [][]roadnet.VertexID {
	if cfg.Workers > 1 {
		return generateWalksParallel(g, cfg)
	}
	w := newWalker(g, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumVertices()
	walks := make([][]roadnet.VertexID, 0, n*cfg.WalksPerVertex)
	order := rng.Perm(n)
	buf := make([]float64, w.maxDeg)
	for rep := 0; rep < cfg.WalksPerVertex; rep++ {
		for _, vi := range order {
			walks = append(walks, w.walkFrom(rng, roadnet.VertexID(vi), cfg.WalkLength, buf))
		}
	}
	return walks
}

// walkFrom runs one biased walk of up to length steps starting at start.
func (w *walker) walkFrom(rng *rand.Rand, start roadnet.VertexID, length int, buf []float64) []roadnet.VertexID {
	walk := make([]roadnet.VertexID, 1, length)
	walk[0] = start
	prev := roadnet.VertexID(-1)
	cur := start
	for len(walk) < length {
		next, ok := w.step(rng, prev, cur, buf)
		if !ok {
			break
		}
		walk = append(walk, next)
		prev, cur = cur, next
	}
	return walk
}

// splitmix64 is the SplitMix64 finalizer, used to derive independent
// per-walk RNG seeds from (seed, walk index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// generateWalksParallel shards walk generation across cfg.Workers
// goroutines. Walk slot (rep, orderIdx) is written by exactly one worker
// and seeded from (Seed, slot), so the output is identical for any worker
// count.
func generateWalksParallel(g *roadnet.Graph, cfg WalkConfig) [][]roadnet.VertexID {
	w := newWalker(g, cfg)
	n := g.NumVertices()
	order := rand.New(rand.NewSource(cfg.Seed)).Perm(n)
	total := n * cfg.WalksPerVertex
	walks := make([][]roadnet.VertexID, total)

	workers := cfg.Workers
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := make([]float64, w.maxDeg)
			rng := rand.New(rand.NewSource(0))
			for slot := lo; slot < hi; slot++ {
				start := roadnet.VertexID(order[slot%n])
				rng.Seed(int64(splitmix64(uint64(cfg.Seed)<<32 ^ uint64(slot))))
				walks[slot] = w.walkFrom(rng, start, cfg.WalkLength, buf)
			}
		}(lo, hi)
	}
	wg.Wait()
	return walks
}
