package node2vec

import (
	"math"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

func parallelTestGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 8, Cols: 8, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.05, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestParallelWalksDeterministicAcrossWorkerCounts asserts that the sharded
// walk generator produces an identical corpus for any worker count, since
// every walk slot derives its own RNG stream from (Seed, slot).
func TestParallelWalksDeterministicAcrossWorkerCounts(t *testing.T) {
	g := parallelTestGraph(t)
	base := WalkConfig{WalksPerVertex: 3, WalkLength: 15, P: 1, Q: 0.5, Seed: 5, Workers: 2}
	want := GenerateWalks(g, base)
	for _, workers := range []int{3, 4, 8} {
		cfg := base
		cfg.Workers = workers
		got := GenerateWalks(g, cfg)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d walks, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d: walk %d has length %d, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: walk %d differs at step %d", workers, i, j)
				}
			}
		}
	}
}

// TestSerialWalksUnchangedByScratchBuffer guards the single-stream serial
// corpus: the scratch-buffer refactor must not change the RNG consumption
// pattern, so walks from the same seed must start at the same vertices and
// stay on the graph.
func TestSerialWalksUnchangedByScratchBuffer(t *testing.T) {
	g := parallelTestGraph(t)
	cfg := WalkConfig{WalksPerVertex: 2, WalkLength: 12, P: 1, Q: 0.5, Seed: 5}
	a := GenerateWalks(g, cfg)
	b := GenerateWalks(g, cfg)
	if len(a) != len(b) || len(a) != 2*g.NumVertices() {
		t.Fatalf("corpus sizes: %d vs %d, want %d", len(a), len(b), 2*g.NumVertices())
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("serial corpus not reproducible at walk %d step %d", i, j)
			}
		}
	}
}

// TestHogwildTrainingConverges checks the lock-free parallel SGNS produces
// finite, useful embeddings: neighboring vertices should be more similar
// than distant ones on average, same as the serial trainer.
func TestHogwildTrainingConverges(t *testing.T) {
	if raceEnabled {
		// Hogwild's lock-free weight updates are a documented, intentional
		// data race (see TrainConfig.Workers); under -race they would be
		// reported as a failure.
		t.Skip("hogwild SGNS races by design; skipping under -race")
	}
	g := parallelTestGraph(t)
	walks := GenerateWalks(g, WalkConfig{WalksPerVertex: 6, WalkLength: 20, P: 1, Q: 0.5, Seed: 6, Workers: 4})
	cfg := TrainConfig{Dim: 16, Window: 4, Negatives: 4, Epochs: 2, LR: 0.05, Seed: 7, Workers: 4}
	emb := Train(g, walks, cfg)
	if emb.NumVertices() != g.NumVertices() {
		t.Fatalf("embeddings cover %d vertices, want %d", emb.NumVertices(), g.NumVertices())
	}
	var adjSim, farSim float64
	var nAdj, nFar int
	for v := 0; v < g.NumVertices(); v++ {
		for d := range emb.Vector(roadnet.VertexID(v)) {
			if math.IsNaN(emb.Vecs[v][d]) || math.IsInf(emb.Vecs[v][d], 0) {
				t.Fatalf("non-finite embedding at vertex %d", v)
			}
		}
		for _, eid := range g.OutEdges(roadnet.VertexID(v)) {
			adjSim += emb.Cosine(roadnet.VertexID(v), g.Edge(eid).To)
			nAdj++
		}
		far := roadnet.VertexID((v + g.NumVertices()/2) % g.NumVertices())
		farSim += emb.Cosine(roadnet.VertexID(v), far)
		nFar++
	}
	if adjSim/float64(nAdj) <= farSim/float64(nFar) {
		t.Fatalf("hogwild embeddings carry no locality: adj %.4f <= far %.4f",
			adjSim/float64(nAdj), farSim/float64(nFar))
	}
}
