package baseline

import (
	"math"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

func testQueries(t testing.TB) (*roadnet.Graph, []dataset.Query) {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: 10, Cols: 10, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.08, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 51,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 8, Seed: 52})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: 3, MinHops: 5, Seed: 53})
	if err != nil {
		t.Fatalf("trips: %v", err)
	}
	queries, err := dataset.Generate(g, trips, dataset.DefaultConfig())
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return g, queries
}

func TestLengthRankScores(t *testing.T) {
	g, queries := testQueries(t)
	b := LengthRank{G: g}
	for _, q := range queries {
		scores := b.ScoreQuery(q)
		if len(scores) != len(q.Candidates) {
			t.Fatalf("got %d scores for %d candidates", len(scores), len(q.Candidates))
		}
		best := -1.0
		for i, s := range scores {
			if s <= 0 || s > 1+1e-12 {
				t.Fatalf("score %v outside (0,1]", s)
			}
			if s > best {
				best = s
			}
			// Shorter paths must score strictly higher.
			for j := range scores {
				li := q.Candidates[i].Path.Length(g)
				lj := q.Candidates[j].Path.Length(g)
				if li < lj && scores[i] < scores[j] {
					t.Fatal("length rank not monotone in length")
				}
			}
		}
		if math.Abs(best-1) > 1e-12 {
			t.Fatalf("best score %v, want 1", best)
		}
	}
}

func TestTimeRankScores(t *testing.T) {
	g, queries := testQueries(t)
	b := TimeRank{G: g}
	for _, q := range queries {
		scores := b.ScoreQuery(q)
		best := -1.0
		for _, s := range scores {
			if s <= 0 || s > 1+1e-12 {
				t.Fatalf("score %v outside (0,1]", s)
			}
			if s > best {
				best = s
			}
		}
		if math.Abs(best-1) > 1e-12 {
			t.Fatalf("best time score %v, want 1", best)
		}
	}
}

func TestFeaturesShapeAndBounds(t *testing.T) {
	g, queries := testQueries(t)
	q := queries[0]
	f := Features(g, q, q.Candidates[0])
	want := 4 + roadnet.NumCategories
	if len(f) != want {
		t.Fatalf("feature dim %d, want %d", len(f), want)
	}
	// Category fractions sum to ~1.
	var catSum float64
	for _, v := range f[4:] {
		catSum += v
	}
	if math.Abs(catSum-1) > 1e-9 {
		t.Fatalf("category fractions sum %v, want 1", catSum)
	}
	if f[3] != 1 {
		t.Fatalf("bias feature %v, want 1", f[3])
	}
}

func TestLinearRegressionFitsAndBeatsNothing(t *testing.T) {
	g, queries := testQueries(t)
	train, test := dataset.Split(queries, 0.3, 3)
	lr := &LinearRegression{G: g}
	if err := lr.Fit(train); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	rep := Evaluate(lr, test)
	if math.IsNaN(rep.MAE) {
		t.Fatal("NaN MAE")
	}
	// The linear model has real features; it must do clearly better than
	// chance on ranking (tau > 0).
	if rep.Tau <= 0 {
		t.Fatalf("linear baseline tau %.4f, want > 0", rep.Tau)
	}
}

func TestLinearRegressionEmptyTraining(t *testing.T) {
	lr := &LinearRegression{G: nil}
	if err := lr.Fit(nil); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestEvaluateAllBaselines(t *testing.T) {
	g, queries := testQueries(t)
	train, test := dataset.Split(queries, 0.3, 4)
	lr := &LinearRegression{G: g}
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scorer{LengthRank{G: g}, TimeRank{G: g}, lr} {
		rep := Evaluate(s, test)
		if rep.NQueries != len(test) {
			t.Fatalf("%s evaluated %d queries, want %d", s.Name(), rep.NQueries, len(test))
		}
		if rep.MAE < 0 || math.IsNaN(rep.Tau) {
			t.Fatalf("%s produced invalid report %v", s.Name(), rep)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {2, 2}}
	b := []float64{1, 2}
	if _, err := solve(a, b); err == nil {
		t.Fatal("singular system should error")
	}
}
