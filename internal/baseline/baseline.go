// Package baseline provides the non-learned and shallow-learned
// comparators PathRank is evaluated against: ranking candidates purely by
// length, purely by travel time, and a linear regression over handcrafted
// path features. These anchor the benchmark tables — PathRank's claim is
// that sequence learning over embedded vertices beats all of them.
package baseline

import (
	"fmt"
	"math"

	"pathrank/internal/dataset"
	"pathrank/internal/metrics"
	"pathrank/internal/roadnet"
)

// Scorer assigns a ranking score to a candidate path within a query; higher
// is better. All baselines implement this.
type Scorer interface {
	Name() string
	// ScoreQuery returns one score per candidate of q.
	ScoreQuery(q dataset.Query) []float64
}

// Evaluate runs a scorer over queries and aggregates the paper's metrics.
func Evaluate(s Scorer, queries []dataset.Query) metrics.Report {
	preds := make([][]float64, len(queries))
	targets := make([][]float64, len(queries))
	for qi, q := range queries {
		preds[qi] = s.ScoreQuery(q)
		targets[qi] = make([]float64, len(q.Candidates))
		for ci, c := range q.Candidates {
			targets[qi][ci] = c.Label
		}
	}
	return metrics.Evaluate(preds, targets)
}

// LengthRank scores each candidate by minLength/length, i.e. shorter paths
// rank higher with the shortest scoring 1.
type LengthRank struct{ G *roadnet.Graph }

// Name identifies the baseline.
func (LengthRank) Name() string { return "rank-by-length" }

// ScoreQuery implements Scorer.
func (b LengthRank) ScoreQuery(q dataset.Query) []float64 {
	out := make([]float64, len(q.Candidates))
	minLen := math.Inf(1)
	for _, c := range q.Candidates {
		if l := c.Path.Length(b.G); l < minLen {
			minLen = l
		}
	}
	for i, c := range q.Candidates {
		out[i] = minLen / c.Path.Length(b.G)
	}
	return out
}

// TimeRank scores each candidate by minTime/time.
type TimeRank struct{ G *roadnet.Graph }

// Name identifies the baseline.
func (TimeRank) Name() string { return "rank-by-time" }

// ScoreQuery implements Scorer.
func (b TimeRank) ScoreQuery(q dataset.Query) []float64 {
	out := make([]float64, len(q.Candidates))
	minTime := math.Inf(1)
	for _, c := range q.Candidates {
		if t := c.Path.Time(b.G); t < minTime {
			minTime = t
		}
	}
	for i, c := range q.Candidates {
		out[i] = minTime / c.Path.Time(b.G)
	}
	return out
}

// Features extracts the handcrafted feature vector of a candidate used by
// the linear baseline: length ratio, time ratio, hop count (normalized),
// and the fraction of path length on each road category.
func Features(g *roadnet.Graph, q dataset.Query, inst dataset.Instance) []float64 {
	f := make([]float64, 0, 4+roadnet.NumCategories)
	f = append(f, inst.LengthRatio, inst.TimeRatio, 1.0/float64(1+inst.Path.Len()), 1.0)
	var catLen [roadnet.NumCategories]float64
	var total float64
	for _, eid := range inst.Path.Edges {
		e := g.Edge(eid)
		catLen[e.Category] += e.Length
		total += e.Length
	}
	for c := 0; c < roadnet.NumCategories; c++ {
		if total > 0 {
			f = append(f, catLen[c]/total)
		} else {
			f = append(f, 0)
		}
	}
	return f
}

// LinearRegression fits ridge-regularized least squares on the handcrafted
// features against the ground-truth labels, solved exactly via normal
// equations. It is the "shallow learning" comparison point.
type LinearRegression struct {
	G       *roadnet.Graph
	Ridge   float64 // L2 regularization strength (default 1e-3)
	weights []float64
}

// Name identifies the baseline.
func (*LinearRegression) Name() string { return "linear-features" }

// Fit estimates the weights from training queries.
func (lr *LinearRegression) Fit(train []dataset.Query) error {
	ridge := lr.Ridge
	if ridge <= 0 {
		ridge = 1e-3
	}
	var dim int
	var xtx [][]float64
	var xty []float64
	n := 0
	for _, q := range train {
		for _, inst := range q.Candidates {
			x := Features(lr.G, q, inst)
			if xtx == nil {
				dim = len(x)
				xtx = make([][]float64, dim)
				for i := range xtx {
					xtx[i] = make([]float64, dim)
				}
				xty = make([]float64, dim)
			}
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					xtx[i][j] += x[i] * x[j]
				}
				xty[i] += x[i] * inst.Label
			}
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("baseline: no training candidates")
	}
	for i := 0; i < dim; i++ {
		xtx[i][i] += ridge
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	lr.weights = w
	return nil
}

// ScoreQuery implements Scorer. Fit must have been called.
func (lr *LinearRegression) ScoreQuery(q dataset.Query) []float64 {
	out := make([]float64, len(q.Candidates))
	for i, inst := range q.Candidates {
		x := Features(lr.G, q, inst)
		var s float64
		for j := range x {
			s += lr.weights[j] * x[j]
		}
		out[i] = s
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting on a (copied)
// square system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular normal equations at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
