package merkle

import (
	"fmt"
	"testing"
)

// testLeaves builds n distinct leaf hashes.
func testLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("record-%d", i)))
	}
	return leaves
}

func TestRootShapes(t *testing.T) {
	if Root(nil) != LeafHash(nil) {
		t.Fatal("empty root is not the empty-leaf hash")
	}
	one := testLeaves(1)
	if Root(one) != one[0] {
		t.Fatal("single-leaf root is not the leaf")
	}
	// RFC 6962 split: root(4) = node(node(l0,l1), node(l2,l3)).
	l := testLeaves(4)
	want := nodeHash(nodeHash(l[0], l[1]), nodeHash(l[2], l[3]))
	if Root(l) != want {
		t.Fatal("4-leaf root does not match the hand-built tree")
	}
	// Odd count promotes: root(3) = node(node(l0,l1), l2).
	want3 := nodeHash(nodeHash(l[0], l[1]), l[2])
	if Root(l[:3]) != want3 {
		t.Fatal("3-leaf root does not match the hand-built tree")
	}
}

func TestRootDependsOnEveryLeaf(t *testing.T) {
	l := testLeaves(7)
	base := Root(l)
	for i := range l {
		mut := append([]Hash(nil), l...)
		mut[i][0] ^= 1
		if Root(mut) == base {
			t.Fatalf("flipping leaf %d did not change the root", i)
		}
	}
	if Root(l[:6]) == base {
		t.Fatal("dropping a leaf did not change the root")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := testLeaves(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !p.Verify(leaves[i], root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			// The proof must not verify any other leaf.
			if i > 0 && p.Verify(leaves[i-1], root) {
				t.Fatalf("n=%d i=%d: proof verified the wrong leaf", n, i)
			}
			// Tampering with any path element must break it.
			for j := range p.Path {
				p.Path[j][5] ^= 1
				if p.Verify(leaves[i], root) {
					t.Fatalf("n=%d i=%d: proof verified with corrupted path[%d]", n, i, j)
				}
				p.Path[j][5] ^= 1
			}
		}
	}
}

func TestVerifyRejectsMalformedProofs(t *testing.T) {
	leaves := testLeaves(8)
	root := Root(leaves)
	p, err := Prove(leaves, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Proof{
		{Index: -1, Leaves: 8, Path: p.Path},
		{Index: 8, Leaves: 8, Path: p.Path},
		{Index: 3, Leaves: 0, Path: p.Path},
		{Index: 3, Leaves: 8, Path: p.Path[:2]},                                     // too short
		{Index: 3, Leaves: 8, Path: append(append([]Hash(nil), p.Path...), Hash{})}, // too long
		{Index: 2, Leaves: 8, Path: p.Path},                                         // wrong position
		// Note: a wrong Leaves claim is not necessarily rejected — RFC 6962
		// audit paths bind the leaf position and sibling hashes, not the
		// tree size (a size-3 proof for leaf 0 evaluates identically under
		// a claimed size 4). Verifiers must take the size from the trusted
		// lineage, which is why Verify also checks against the root.
	}
	for i, c := range cases {
		if c.Verify(leaves[3], root) {
			t.Fatalf("malformed proof %d verified", i)
		}
	}
	if _, err := Prove(leaves, 8); err == nil {
		t.Fatal("Prove out of range succeeded")
	}
	if _, err := Prove(nil, 0); err == nil {
		t.Fatal("Prove over empty leaves succeeded")
	}
}

func TestChainRootCommitsToHistory(t *testing.T) {
	var zero Hash
	r1 := Root(testLeaves(3))
	r2 := Root(testLeaves(5))
	c1 := ChainRoot(zero, r1)
	c2 := ChainRoot(c1, r2)
	if c1 == zero || c2 == zero || c1 == c2 {
		t.Fatal("chain roots degenerate")
	}
	// Same batches in a different order produce a different chain.
	if ChainRoot(ChainRoot(zero, r2), r1) == c2 {
		t.Fatal("chain root is order-independent")
	}
	// The chain domain must not collide with the node domain.
	if ChainRoot(c1, r2) == nodeHash(c1, r2) {
		t.Fatal("chain and node domains collide")
	}
}

func TestBatcher(t *testing.T) {
	var zero Hash
	b := NewBatcher(zero)
	records := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for i, r := range records {
		if idx := b.Add(r); idx != i {
			t.Fatalf("Add returned index %d, want %d", idx, i)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	batch := b.Seal()
	wantLeaves := make([]Hash, len(records))
	for i, r := range records {
		wantLeaves[i] = LeafHash(r)
	}
	if batch.Root != Root(wantLeaves) {
		t.Fatal("sealed root differs from direct computation")
	}
	if batch.Chain != ChainRoot(zero, batch.Root) {
		t.Fatal("sealed chain differs from direct computation")
	}
	for i, r := range records {
		p, err := batch.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(LeafHash(r), batch.Root) {
			t.Fatalf("batch proof %d rejected", i)
		}
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := LeafHash([]byte("x"))
	back, err := ParseHash(h.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("hex round trip lost bytes")
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("ParseHash accepted non-hex")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("ParseHash accepted short hash")
	}
}
