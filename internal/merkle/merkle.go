// Package merkle implements the binary Merkle tree that anchors PathRank's
// data provenance: the trajectories a model generation was fine-tuned on
// are hashed into leaves, the leaves into a batch root, and successive
// batch roots into a chain root that is stamped into the artifact's
// lineage. Any party holding a trajectory's canonical bytes and an
// inclusion proof can then verify — against nothing but the served
// lineage — that the trajectory really was in the generation's training
// window, and the chain root commits the entire history of batches back
// to the offline root model.
//
// The tree is the RFC 6962 (Certificate Transparency) construction:
// leaves and interior nodes are domain-separated under SHA-256 (0x00 for
// leaves, 0x01 for nodes), and a tree over n > 1 leaves splits at the
// largest power of two strictly less than n. Unlike the duplicate-last-
// leaf construction, this shape admits no second preimage built from a
// different leaf multiset.
package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// HashSize is the byte length of every hash in the package.
const HashSize = sha256.Size

// Hash is a SHA-256 digest: a leaf hash, an interior node, a batch root,
// or a chain root.
type Hash [HashSize]byte

// Hex returns the lowercase hex form used on the wire and in lineage.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// ParseHash decodes the hex form produced by Hash.Hex.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("merkle: bad hash %q: %w", s, err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("merkle: hash %q has %d bytes, want %d", s, len(b), HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// Domain-separation prefixes (RFC 6962 §2.1) plus a third domain for the
// cross-batch chain, so a chain root can never be confused with a tree
// node over the same bytes.
const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	chainPrefix = 0x02
)

// LeafHash hashes one record's canonical bytes into a leaf.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes.
func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// ChainRoot extends the batch chain: the new chain root commits to both
// the previous chain root and the new batch root. The zero Hash is the
// chain's genesis (an offline generation with no ingested data).
func ChainRoot(prev, batchRoot Hash) Hash {
	h := sha256.New()
	h.Write([]byte{chainPrefix})
	h.Write(prev[:])
	h.Write(batchRoot[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// Root computes the RFC 6962 tree root over the leaf hashes. The root of
// zero leaves is the hash of the empty string under the leaf domain, so an
// empty batch still has a well-defined, non-zero commitment.
func Root(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return LeafHash(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(Root(leaves[:k]), Root(leaves[k:]))
}

// Proof is an inclusion proof: the audit path from one leaf to the root of
// a tree with Leaves leaves. Verify recomputes the root from the leaf hash
// and the path.
type Proof struct {
	// Index is the leaf's position in the batch, 0-based.
	Index int
	// Leaves is the batch size the proof was built against.
	Leaves int
	// Path holds the sibling subtree hashes, leaf-adjacent first.
	Path []Hash
}

// Prove builds the inclusion proof for leaves[index].
func Prove(leaves []Hash, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, fmt.Errorf("merkle: index %d out of range for %d leaves", index, len(leaves))
	}
	p := Proof{Index: index, Leaves: len(leaves)}
	p.Path = auditPath(leaves, index, p.Path)
	return p, nil
}

// auditPath appends the sibling hashes for leaves[index], leaf-adjacent
// first (recursion appends on the way back up).
func auditPath(leaves []Hash, index int, path []Hash) []Hash {
	if len(leaves) <= 1 {
		return path
	}
	k := splitPoint(len(leaves))
	if index < k {
		path = auditPath(leaves[:k], index, path)
		return append(path, Root(leaves[k:]))
	}
	path = auditPath(leaves[k:], index-k, path)
	return append(path, Root(leaves[:k]))
}

// Verify reports whether the proof connects leaf to root: leaf is at
// p.Index in a tree of p.Leaves leaves whose root is root.
func (p Proof) Verify(leaf, root Hash) bool {
	if p.Index < 0 || p.Leaves <= 0 || p.Index >= p.Leaves {
		return false
	}
	// Walk back up the recursion of auditPath: at each level the leaf sits
	// in a subtree of size n at offset index; the sibling covers the rest.
	h, err := rollUp(leaf, p.Index, p.Leaves, p.Path)
	if err != nil {
		return false
	}
	return h == root
}

// rollUp recomputes the subtree root over n leaves containing the target
// leaf at index, consuming path entries from the end (the recursion in
// auditPath appends the outermost sibling last).
func rollUp(leaf Hash, index, n int, path []Hash) (Hash, error) {
	if n == 1 {
		if len(path) != 0 {
			return Hash{}, errors.New("merkle: proof path too long")
		}
		return leaf, nil
	}
	if len(path) == 0 {
		return Hash{}, errors.New("merkle: proof path too short")
	}
	k := splitPoint(n)
	sib := path[len(path)-1]
	rest := path[:len(path)-1]
	if index < k {
		l, err := rollUp(leaf, index, k, rest)
		if err != nil {
			return Hash{}, err
		}
		return nodeHash(l, sib), nil
	}
	r, err := rollUp(leaf, index-k, n-k, rest)
	if err != nil {
		return Hash{}, err
	}
	return nodeHash(sib, r), nil
}

// Batch is a sealed set of records: the leaf hashes in batch order, their
// tree root, and the chain root extending the previous batch. It can mint
// inclusion proofs for any of its leaves.
type Batch struct {
	// Leaves are the leaf hashes in batch order.
	Leaves []Hash
	// Root is the Merkle root over Leaves.
	Root Hash
	// Chain is ChainRoot(prev, Root) for the prev handed to the Batcher.
	Chain Hash
	// HashNs and SealNs record where the batching time went (the per-stage
	// timing idiom of the audit-log exemplar): leaf hashing during Add vs
	// tree construction during Seal.
	HashNs int64
	SealNs int64
}

// Prove builds the inclusion proof for the i-th record of the batch.
func (b *Batch) Prove(i int) (Proof, error) {
	return Prove(b.Leaves, i)
}

// Batcher accumulates records and seals them into a chained Batch. It is
// not safe for concurrent use; the stream retrainer drives it from a
// single goroutine per seal.
type Batcher struct {
	prev   Hash
	leaves []Hash
	hashNs int64
}

// NewBatcher starts a batch chained onto prev (the previous generation's
// chain root; the zero Hash for a generation-0 ancestor).
func NewBatcher(prev Hash) *Batcher {
	return &Batcher{prev: prev}
}

// Add hashes one record's canonical bytes into the batch and returns its
// leaf index.
func (b *Batcher) Add(data []byte) int {
	start := time.Now()
	b.leaves = append(b.leaves, LeafHash(data))
	b.hashNs += time.Since(start).Nanoseconds()
	return len(b.leaves) - 1
}

// Len returns the number of records added so far.
func (b *Batcher) Len() int { return len(b.leaves) }

// Seal computes the root and chain root over everything added and returns
// the finished Batch. The Batcher must not be reused afterwards.
func (b *Batcher) Seal() *Batch {
	start := time.Now()
	root := Root(b.leaves)
	return &Batch{
		Leaves: b.leaves,
		Root:   root,
		Chain:  ChainRoot(b.prev, root),
		HashNs: b.hashNs,
		SealNs: time.Since(start).Nanoseconds(),
	}
}
