package merkle

import (
	"encoding/binary"
	"testing"
)

// FuzzProof exercises the proof verifier with adversarial structure: build
// a genuine tree from the fuzzed data, then check that (a) the honest
// proof verifies, (b) single-bit corruption anywhere in the audit path is
// rejected, and (c) arbitrary index/size claims never panic the verifier.
func FuzzProof(f *testing.F) {
	f.Add([]byte("seed-record"), uint16(4), uint16(1), uint16(0), uint8(3))
	f.Add([]byte{}, uint16(1), uint16(0), uint16(9), uint8(0))
	f.Add([]byte("x"), uint16(300), uint16(123), uint16(7), uint8(31))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, idxRaw, badIdxRaw uint16, badByte uint8) {
		n := int(nRaw)%64 + 1
		idx := int(idxRaw) % n
		leaves := make([]Hash, n)
		for i := range leaves {
			var rec [10]byte
			copy(rec[:], data)
			binary.BigEndian.PutUint16(rec[8:], uint16(i))
			leaves[i] = LeafHash(rec[:])
		}
		root := Root(leaves)
		p, err := Prove(leaves, idx)
		if err != nil {
			t.Fatalf("Prove(%d of %d): %v", idx, n, err)
		}
		if !p.Verify(leaves[idx], root) {
			t.Fatalf("honest proof rejected (n=%d idx=%d)", n, idx)
		}
		// Corrupt one byte of one path hash: must always be rejected.
		if len(p.Path) > 0 {
			pi := int(badIdxRaw) % len(p.Path)
			bi := int(badByte) % HashSize
			p.Path[pi][bi] ^= 0x80
			if p.Verify(leaves[idx], root) {
				t.Fatalf("corrupted proof verified (n=%d idx=%d path[%d] byte %d)", n, idx, pi, bi)
			}
			p.Path[pi][bi] ^= 0x80
		}
		// Arbitrary structural claims must fail closed, never panic.
		forged := Proof{Index: int(badIdxRaw) - 100, Leaves: int(nRaw) - 30000, Path: p.Path}
		forged.Verify(leaves[idx], root)
	})
}
