package fault

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the PATHRANK_FAULTS spec parser with arbitrary
// strings: it must either reject cleanly or produce a plan whose
// normalized rendering re-parses — never panic. Parsed plans are also
// exercised once per site so trigger bookkeeping can't crash on odd
// schedules (the fuzzer will find e.g. huge after/every values).
func FuzzParseSpec(f *testing.F) {
	f.Add("wal/append:error:after=20:times=5;stream/match:panic:every=50")
	f.Add("artifact/load:error:prob=0.25")
	f.Add("wal/sync:delay=10ms")
	f.Add("x:error;;y:panic:times=1")
	f.Add("a:delay=1h:after=9999999:every=1000000")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseSpec(spec, 1)
		if err != nil {
			return
		}
		rendered := plan.String()
		again, err := ParseSpec(rendered, 1)
		if err != nil {
			t.Fatalf("String() %q of valid spec %q does not re-parse: %v", rendered, spec, err)
		}
		for site, rules := range again.rules {
			// Delay rules would make the fuzzer sleep; everything else is
			// safe to trigger. Panic rules must panic only via Check.
			skip := false
			for _, r := range rules {
				if r.Kind != KindError {
					skip = true
				}
			}
			if skip || strings.Contains(site, "\x00") {
				continue
			}
			func() {
				defer Enable(NewPlan(1))() // isolate: fresh empty plan after
				defer Enable(again)()
				_ = Check(site)
			}()
		}
	})
}
