// Package fault is the injectable failure surface behind the chaos test
// suite. Real code paths — WAL appends and fsyncs, artifact save/load,
// the map-matching and retrain workers — call Check at a named site; in
// production no plan is active and the call is a single atomic pointer
// load that returns nil. A test (or an operator experiment via the
// PATHRANK_FAULTS environment knob) enables a Plan of deterministic,
// seeded rules that make those sites return errors, sleep, or panic on a
// reproducible schedule.
//
// Determinism is the design constraint: a chaos run must be replayable
// from its seed. Rules therefore trigger off per-rule hit counters
// (After/Every/Times) and, when probabilistic, off a counter-indexed
// hash of the plan seed — never off wall-clock time or the global PRNG.
//
// The package is a leaf (stdlib only) so any layer may instrument itself
// without import cycles.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Instrumented site names. Code passes these constants to Check; specs
// (ParseSpec) and tests reference the same strings, so a typo is a
// compile error on the code side and a no-op rule on the spec side.
const (
	// SiteWALAppend fails a WAL record append before any bytes are
	// written (a clean ENOSPC, not a torn frame).
	SiteWALAppend = "wal/append"
	// SiteWALSync fails the WAL fsync path.
	SiteWALSync = "wal/sync"
	// SiteWALRotate fails creation of a fresh WAL segment.
	SiteWALRotate = "wal/rotate"
	// SiteArtifactSave fails the atomic artifact persist.
	SiteArtifactSave = "artifact/save"
	// SiteArtifactLoad fails reading an artifact bundle from disk.
	SiteArtifactLoad = "artifact/load"
	// SiteMatch is hit by every map-matching worker iteration; its panic
	// rules simulate a poisoned trajectory killing a worker.
	SiteMatch = "stream/match"
	// SiteRetrain is hit at the start of every retrain step.
	SiteRetrain = "stream/retrain"
)

// ErrInjected is the sentinel wrapped by every injected error, so callers
// and tests can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Kind is what a triggered rule does at its site.
type Kind int

const (
	// KindError makes Check return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes Check panic (exercising worker containment).
	KindPanic
	// KindDelay makes Check sleep for Rule.Delay, then continue to any
	// further rules on the site (a latency fault, not a failure).
	KindDelay
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return "error"
	}
}

// Rule is one injection: at Site, after a deterministic schedule matches,
// perform Kind. The zero schedule fires on every hit.
type Rule struct {
	// Site names the Check call the rule arms.
	Site string
	// Kind selects the effect; Delay is its duration for KindDelay.
	Kind  Kind
	Delay time.Duration
	// After skips the first After hits of the site (e.g. "let the system
	// warm up, then break the disk").
	After int
	// Every fires on every Every-th eligible hit (default 1 = all).
	Every int
	// Times stops the rule after it has fired Times times (0 = forever).
	Times int
	// Prob, in (0,1), gates each eligible hit on a deterministic coin
	// derived from the plan seed and the hit counter. 0 (and >= 1) means
	// always.
	Prob float64
}

// ruleState is a Rule plus its per-plan trigger counters.
type ruleState struct {
	Rule
	hits  atomic.Int64
	fires atomic.Int64
}

// trigger decides, deterministically, whether this hit fires the rule.
func (st *ruleState) trigger(seed uint64) bool {
	n := st.hits.Add(1) - 1 // 0-based hit number at this site for this rule
	if n < int64(st.After) {
		return false
	}
	every := int64(st.Every)
	if every <= 0 {
		every = 1
	}
	if (n-int64(st.After))%every != 0 {
		return false
	}
	if st.Prob > 0 && st.Prob < 1 && coin(seed, st.Site, n) >= st.Prob {
		return false
	}
	if st.Times > 0 {
		return st.fires.Add(1) <= int64(st.Times)
	}
	st.fires.Add(1)
	return true
}

// coin maps (seed, site, hit) onto [0,1) with a splitmix64-style hash, so
// probabilistic rules are reproducible across runs and goroutine
// schedules that preserve per-site hit order.
func coin(seed uint64, site string, hit int64) float64 {
	x := seed ^ uint64(hit)*0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		x = (x ^ uint64(site[i])) * 0x100000001b3
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Plan is an immutable set of armed rules. Build one with NewPlan or
// ParseSpec, activate it with Enable.
type Plan struct {
	seed  uint64
	rules map[string][]*ruleState
}

// NewPlan arms rules under a seed (the seed only matters for Prob rules).
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{seed: uint64(seed), rules: make(map[string][]*ruleState, len(rules))}
	for _, r := range rules {
		p.rules[r.Site] = append(p.rules[r.Site], &ruleState{Rule: r})
	}
	return p
}

// Fired reports how many times the rules armed on site have fired in
// total — the ground truth chaos tests assert their injection counts
// against.
func (p *Plan) Fired(site string) int64 {
	var n int64
	for _, st := range p.rules[site] {
		f := st.fires.Load()
		if st.Times > 0 && f > int64(st.Times) {
			f = int64(st.Times)
		}
		n += f
	}
	return n
}

// Hits reports how many times site was checked while this plan was
// active (fired or not).
func (p *Plan) Hits(site string) int64 {
	var n int64
	for _, st := range p.rules[site] {
		if h := st.hits.Load(); h > n {
			n = h
		}
	}
	return n
}

// String renders the plan in (normalized) spec syntax for logs.
func (p *Plan) String() string {
	sites := make([]string, 0, len(p.rules))
	for site := range p.rules {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var b strings.Builder
	for _, site := range sites {
		for _, st := range p.rules[site] {
			if b.Len() > 0 {
				b.WriteByte(';')
			}
			b.WriteString(site)
			b.WriteByte(':')
			b.WriteString(st.Kind.String())
			if st.Kind == KindDelay {
				b.WriteByte('=')
				b.WriteString(st.Delay.String())
			}
			if st.After > 0 {
				fmt.Fprintf(&b, ":after=%d", st.After)
			}
			if st.Every > 1 {
				fmt.Fprintf(&b, ":every=%d", st.Every)
			}
			if st.Times > 0 {
				fmt.Fprintf(&b, ":times=%d", st.Times)
			}
			if st.Prob > 0 && st.Prob < 1 {
				fmt.Fprintf(&b, ":prob=%g", st.Prob)
			}
		}
	}
	return b.String()
}

// active is the process-wide plan; nil (the default) makes every Check a
// no-op. A single global keeps the hot-path cost at one atomic load and
// lets the instrumented packages stay free of plumbing; the trade-off —
// chaos tests must not run concurrently with each other in one process —
// is enforced by keeping them in dedicated test packages.
var active atomic.Pointer[Plan]

// Enable activates p (replacing any active plan) and returns a function
// restoring the previous state. Typical test use:
//
//	defer fault.Enable(plan)()
func Enable(p *Plan) func() {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Disable deactivates any active plan.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Check consults the active plan for site: it returns an injected error,
// sleeps, or panics per the matching rules, and is a nil return at one
// atomic load when no plan is active. Sites on hot paths rely on that
// default being allocation-free.
func Check(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.check(site)
}

func (p *Plan) check(site string) error {
	for _, st := range p.rules[site] {
		if !st.trigger(p.seed) {
			continue
		}
		switch st.Kind {
		case KindDelay:
			time.Sleep(st.Delay)
		case KindPanic:
			panic(fmt.Sprintf("fault: injected panic at %s (hit %d)", site, st.hits.Load()))
		default:
			return fmt.Errorf("%w at %s (hit %d)", ErrInjected, site, st.hits.Load())
		}
	}
	return nil
}

// ParseSpec parses the textual rule syntax used by the PATHRANK_FAULTS
// environment knob and the CI chaos matrix:
//
//	rule[;rule...]
//	rule    = site ":" kind [":" option ...]
//	kind    = "error" | "panic" | "delay=<duration>"
//	option  = "after=<n>" | "every=<n>" | "times=<n>" | "prob=<f>"
//
// For example "wal/append:error:after=20:times=5;stream/match:panic:every=50"
// breaks the 21st through 25th WAL appends and panics every 50th matcher
// iteration. seed feeds the probabilistic rules.
func ParseSpec(spec string, seed int64) (*Plan, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q needs site:kind", raw)
		}
		r := Rule{Site: strings.TrimSpace(fields[0])}
		if r.Site == "" || strings.Contains(r.Site, "=") {
			return nil, fmt.Errorf("fault: rule %q has no site", raw)
		}
		kind := strings.TrimSpace(fields[1])
		switch {
		case kind == "error":
			r.Kind = KindError
		case kind == "panic":
			r.Kind = KindPanic
		case strings.HasPrefix(kind, "delay="):
			d, err := time.ParseDuration(kind[len("delay="):])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: rule %q: bad delay %q", raw, kind)
			}
			r.Kind, r.Delay = KindDelay, d
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown kind %q (want error, panic or delay=<dur>)", raw, kind)
		}
		for _, opt := range fields[2:] {
			key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: option %q is not key=value", raw, opt)
			}
			switch key {
			case "after", "every", "times":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad %s=%q", raw, key, val)
				}
				switch key {
				case "after":
					r.After = n
				case "every":
					r.Every = n
				case "times":
					r.Times = n
				}
			case "prob":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("fault: rule %q: prob=%q wants a probability in [0,1]", raw, val)
				}
				r.Prob = f
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", raw, key)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("fault: empty spec")
	}
	return NewPlan(seed, rules...), nil
}
