package fault

import (
	"errors"
	"testing"
	"time"
)

// TestNoPlanIsNoop pins the production default: without an active plan
// every Check returns nil.
func TestNoPlanIsNoop(t *testing.T) {
	Disable()
	for i := 0; i < 100; i++ {
		if err := Check(SiteWALAppend); err != nil {
			t.Fatalf("Check with no plan = %v, want nil", err)
		}
	}
}

func TestErrorRuleSchedule(t *testing.T) {
	plan := NewPlan(1, Rule{Site: "x", Kind: KindError, After: 3, Every: 2, Times: 2})
	defer Enable(plan)()
	var got []int
	for i := 0; i < 12; i++ {
		if err := Check("x"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			got = append(got, i)
		}
	}
	// Hits 0,1,2 skipped by After; eligible hits are 3,5,7,...; Times
	// caps the rule at two fires.
	want := []int{3, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", got, want)
	}
	if f := plan.Fired("x"); f != 2 {
		t.Fatalf("Fired = %d, want 2", f)
	}
	if h := plan.Hits("x"); h != 12 {
		t.Fatalf("Hits = %d, want 12", h)
	}
}

func TestPanicRule(t *testing.T) {
	plan := NewPlan(1, Rule{Site: "p", Kind: KindPanic, Times: 1})
	defer Enable(plan)()
	defer func() {
		if recover() == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	_ = Check("p")
}

func TestDelayRuleContinues(t *testing.T) {
	// A delay rule slows the site but does not fail it; a later error
	// rule on the same site still applies.
	plan := NewPlan(1,
		Rule{Site: "d", Kind: KindDelay, Delay: time.Millisecond},
		Rule{Site: "d", Kind: KindError},
	)
	defer Enable(plan)()
	start := time.Now()
	err := Check("d")
	if err == nil {
		t.Fatal("want injected error after delay")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay rule did not sleep")
	}
}

// TestProbDeterminism pins that probabilistic rules are a pure function
// of (seed, site, hit counter): two identical plans fire on identical
// hit sequences, and a different seed gives a different (but still
// plausible) sequence.
func TestProbDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		plan := NewPlan(seed, Rule{Site: "c", Kind: KindError, Prob: 0.3})
		defer Enable(plan)()
		var fired []int
		for i := 0; i < 200; i++ {
			if Check("c") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	// ~0.3 of 200 hits: loose bounds, the point is the coin is not stuck.
	if len(a) < 20 || len(a) > 120 {
		t.Fatalf("prob=0.3 fired %d/200 times — coin looks broken", len(a))
	}
}

func TestEnableRestores(t *testing.T) {
	Disable()
	restore := Enable(NewPlan(1, Rule{Site: "r", Kind: KindError}))
	if Check("r") == nil {
		t.Fatal("plan not active after Enable")
	}
	restore()
	if Check("r") != nil {
		t.Fatal("restore did not deactivate the plan")
	}
	if Enabled() {
		t.Fatal("Enabled after restore")
	}
}

func TestParseSpec(t *testing.T) {
	plan, err := ParseSpec("wal/append:error:after=20:times=5; stream/match:panic:every=50 ;x:delay=5ms:prob=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.rules[SiteWALAppend]) != 1 || len(plan.rules[SiteMatch]) != 1 || len(plan.rules["x"]) != 1 {
		t.Fatalf("parsed rules = %v", plan.String())
	}
	r := plan.rules[SiteWALAppend][0]
	if r.Kind != KindError || r.After != 20 || r.Times != 5 {
		t.Fatalf("wal/append rule = %+v", r.Rule)
	}
	d := plan.rules["x"][0]
	if d.Kind != KindDelay || d.Delay != 5*time.Millisecond || d.Prob != 0.5 {
		t.Fatalf("delay rule = %+v", d.Rule)
	}
	// The normalized rendering re-parses to the same plan.
	if _, err := ParseSpec(plan.String(), 7); err != nil {
		t.Fatalf("String() %q does not re-parse: %v", plan.String(), err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		";;",
		"siteonly",
		"x:explode",
		"x:delay=notadur",
		"x:error:after=-1",
		"x:error:prob=2",
		"x:error:bogus=1",
		"x:error:after",
		":error",
	} {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}
