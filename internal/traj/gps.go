package traj

import (
	"math"
	"math/rand"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// GPSRecord is one raw positioning sample.
type GPSRecord struct {
	Point geo.Point
	// TimeOffset is seconds since the start of the trip.
	TimeOffset float64
}

// GPSConfig parameterizes GPS sampling along a driven path.
type GPSConfig struct {
	IntervalSec float64 // sampling period (1.0 = 1 Hz, as in the paper's data)
	NoiseStdM   float64 // standard deviation of positional noise in meters
	Seed        int64
}

// DefaultGPSConfig matches typical vehicle trackers: 1 Hz, ~8 m noise.
func DefaultGPSConfig() GPSConfig {
	return GPSConfig{IntervalSec: 1.0, NoiseStdM: 8, Seed: 1}
}

// SampleGPS walks along the trip path at each edge's free-flow speed and
// emits noisy position samples every IntervalSec. The first and last points
// of the path are always sampled.
func SampleGPS(g *roadnet.Graph, p spath.Path, cfg GPSConfig) []GPSRecord {
	if p.Len() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	latPerM := 1.0 / 111320.0

	var records []GPSRecord
	emit := func(pt geo.Point, ts float64) {
		lonPerM := 1.0 / (111320.0 * math.Cos(pt.Lat*math.Pi/180))
		noisy := geo.Point{
			Lon: pt.Lon + rng.NormFloat64()*cfg.NoiseStdM*lonPerM,
			Lat: pt.Lat + rng.NormFloat64()*cfg.NoiseStdM*latPerM,
		}
		records = append(records, GPSRecord{Point: noisy, TimeOffset: ts})
	}

	elapsed := 0.0
	nextSample := 0.0
	emit(g.Vertex(p.Source()).Point, 0)
	nextSample += cfg.IntervalSec

	for _, eid := range p.Edges {
		e := g.Edge(eid)
		from := g.Vertex(e.From).Point
		to := g.Vertex(e.To).Point
		edgeEnd := elapsed + e.Time
		for nextSample < edgeEnd {
			frac := (nextSample - elapsed) / e.Time
			emit(geo.Lerp(from, to, frac), nextSample)
			nextSample += cfg.IntervalSec
		}
		elapsed = edgeEnd
	}
	emit(g.Vertex(p.Destination()).Point, elapsed)
	return records
}
