package traj

import (
	"context"
	"errors"
	"testing"

	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// TestMatchCtxCanceled: a canceled context aborts the decode with the
// context's error, and MatchCtx with a background context decodes exactly
// like Match.
func TestMatchCtxCanceled(t *testing.T) {
	g := testNet(t)
	p, err := spath.Dijkstra(g, 5, roadnet.VertexID(g.NumVertices()-10), spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	recs := SampleGPS(g, p, GPSConfig{IntervalSec: 1, NoiseStdM: 0, Seed: 9})
	m := NewMatcher(g, DefaultMatchConfig())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.MatchCtx(ctx, recs); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled MatchCtx: err = %v, want Canceled", err)
	}

	want, err := m.Match(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.MatchCtx(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("MatchCtx(Background) differs from Match")
	}
	if sim := pathsim.WeightedJaccard(g, got, p); sim < 0.95 {
		t.Fatalf("post-cancel match similarity %.3f, want >=0.95 (matcher state corrupted?)", sim)
	}
}
