package traj

import (
	"math"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

func testNet(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: 12, Cols: 12, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.08, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 21,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

func TestNewPopulationDiversity(t *testing.T) {
	drivers := NewPopulation(PopulationConfig{NumDrivers: 30, Seed: 1})
	if len(drivers) != 30 {
		t.Fatalf("got %d drivers, want 30", len(drivers))
	}
	// Preferences must actually differ across drivers.
	allSame := true
	for _, d := range drivers[1:] {
		if d.WeightLength != drivers[0].WeightLength || d.WeightTime != drivers[0].WeightTime {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("population has identical preferences")
	}
	for _, d := range drivers {
		if d.WeightLength < 0 || d.WeightTime < 0 {
			t.Fatalf("driver %d has negative preference weights", d.ID)
		}
		for c, m := range d.CategoryMult {
			if m <= 0 {
				t.Fatalf("driver %d category %d multiplier %v", d.ID, c, m)
			}
		}
	}
}

func TestDriverCostPositive(t *testing.T) {
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 5, Seed: 2})
	for _, d := range drivers {
		for i := 0; i < g.NumEdges(); i += 7 {
			if c := d.Cost(g.Edge(roadnet.EdgeID(i))); !(c > 0) {
				t.Fatalf("driver %d edge %d cost %v", d.ID, i, c)
			}
		}
	}
}

func TestFamiliarBiasReducesCost(t *testing.T) {
	g := testNet(t)
	d := &Driver{WeightLength: 1, WeightTime: 1, FamiliarBias: 0.5,
		CategoryMult: [roadnet.NumCategories]float64{1, 1, 1, 1}}
	e := g.Edge(0)
	before := d.Cost(e)
	d.recordUse(spath.Path{Vertices: []roadnet.VertexID{e.From, e.To}, Edges: []roadnet.EdgeID{0}})
	after := d.Cost(e)
	if math.Abs(after-before*0.5) > 1e-9 {
		t.Fatalf("familiar cost %v, want %v", after, before*0.5)
	}
}

func TestGenerateTripsBasic(t *testing.T) {
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 6, Seed: 3})
	trips, err := GenerateTrips(g, drivers, TripConfig{TripsPerDriver: 3, MinHops: 4, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateTrips: %v", err)
	}
	if len(trips) != 18 {
		t.Fatalf("got %d trips, want 18", len(trips))
	}
	for i, tr := range trips {
		if tr.Path.Len() < 4 {
			t.Fatalf("trip %d has %d hops, want >=4", i, tr.Path.Len())
		}
		if err := tr.Path.Validate(g); err != nil {
			t.Fatalf("trip %d invalid path: %v", i, err)
		}
	}
}

func TestTripsAreOftenNonOptimal(t *testing.T) {
	// The substitution argument: synthetic drivers, like real local
	// drivers, must frequently drive paths that are neither shortest nor
	// fastest.
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 15, Seed: 5})
	trips, err := GenerateTrips(g, drivers, TripConfig{TripsPerDriver: 4, MinHops: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	notShortest, notFastest := NonOptimalFraction(g, trips)
	if notShortest < 0.25 {
		t.Errorf("only %.0f%% of trips deviate from the shortest path; want >=25%%", notShortest*100)
	}
	if notFastest < 0.1 {
		t.Errorf("only %.0f%% of trips deviate from the fastest path; want >=10%%", notFastest*100)
	}
}

func TestSampleGPSCoversTrip(t *testing.T) {
	g := testNet(t)
	p, err := spath.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()/2), spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	recs := SampleGPS(g, p, GPSConfig{IntervalSec: 1, NoiseStdM: 5, Seed: 7})
	if len(recs) < 2 {
		t.Fatalf("only %d GPS records", len(recs))
	}
	// Timestamps strictly increase except possibly the final endpoint.
	for i := 1; i < len(recs)-1; i++ {
		if recs[i].TimeOffset <= recs[i-1].TimeOffset {
			t.Fatalf("timestamps not increasing at %d: %v then %v", i, recs[i-1].TimeOffset, recs[i].TimeOffset)
		}
	}
	// Expected count ~ trip duration / interval.
	duration := p.Time(g)
	if float64(len(recs)) < duration*0.8 || float64(len(recs)) > duration*1.5+2 {
		t.Fatalf("%d records for a %.0f s trip at 1 Hz", len(recs), duration)
	}
	// First and last samples should be near the endpoints.
	if d := geo.Distance(recs[0].Point, g.Vertex(p.Source()).Point); d > 50 {
		t.Fatalf("first sample %.0f m from source", d)
	}
	if d := geo.Distance(recs[len(recs)-1].Point, g.Vertex(p.Destination()).Point); d > 50 {
		t.Fatalf("last sample %.0f m from destination", d)
	}
}

func TestSampleGPSEmptyPath(t *testing.T) {
	g := testNet(t)
	if recs := SampleGPS(g, spath.Path{}, DefaultGPSConfig()); recs != nil {
		t.Fatalf("empty path should produce no records, got %d", len(recs))
	}
}

func TestSampleGPSNoiseScales(t *testing.T) {
	g := testNet(t)
	p, _ := spath.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), spath.ByLength)
	noiseless := SampleGPS(g, p, GPSConfig{IntervalSec: 2, NoiseStdM: 0, Seed: 8})
	noisy := SampleGPS(g, p, GPSConfig{IntervalSec: 2, NoiseStdM: 25, Seed: 8})
	if len(noiseless) != len(noisy) {
		t.Fatalf("record counts differ: %d vs %d", len(noiseless), len(noisy))
	}
	var sumD float64
	for i := range noisy {
		sumD += geo.Distance(noiseless[i].Point, noisy[i].Point)
	}
	mean := sumD / float64(len(noisy))
	if mean < 10 || mean > 60 {
		t.Fatalf("mean displacement %.1f m for sigma=25, want ~31", mean)
	}
}

func TestMapMatchRecoversCleanPath(t *testing.T) {
	g := testNet(t)
	p, err := spath.Dijkstra(g, 5, roadnet.VertexID(g.NumVertices()-10), spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	recs := SampleGPS(g, p, GPSConfig{IntervalSec: 1, NoiseStdM: 0, Seed: 9})
	m := NewMatcher(g, DefaultMatchConfig())
	got, err := m.Match(recs)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	sim := pathsim.WeightedJaccard(g, got, p)
	if sim < 0.95 {
		t.Fatalf("noise-free match similarity %.3f, want >=0.95", sim)
	}
}

func TestMapMatchRecoversNoisyPath(t *testing.T) {
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 3, Seed: 10})
	trips, err := GenerateTrips(g, drivers, TripConfig{TripsPerDriver: 2, MinHops: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, DefaultMatchConfig())
	var totalSim float64
	for i, tr := range trips {
		recs := SampleGPS(g, tr.Path, GPSConfig{IntervalSec: 1, NoiseStdM: 8, Seed: int64(100 + i)})
		got, err := m.Match(recs)
		if err != nil {
			t.Fatalf("trip %d: %v", i, err)
		}
		totalSim += pathsim.WeightedJaccard(g, got, tr.Path)
	}
	mean := totalSim / float64(len(trips))
	if mean < 0.8 {
		t.Fatalf("mean matched similarity %.3f with 8 m noise, want >=0.8", mean)
	}
}

func TestMatchEmptyStream(t *testing.T) {
	g := testNet(t)
	m := NewMatcher(g, DefaultMatchConfig())
	if _, err := m.Match(nil); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestGridIndexNearest(t *testing.T) {
	g := testNet(t)
	idx := newGridIndex(g, 300)
	for v := 0; v < g.NumVertices(); v += 13 {
		pt := g.Vertex(roadnet.VertexID(v)).Point
		near := idx.nearest(pt, 3)
		if len(near) == 0 {
			t.Fatalf("no neighbors found for vertex %d", v)
		}
		if near[0] != roadnet.VertexID(v) {
			t.Fatalf("nearest to vertex %d's location is %d", v, near[0])
		}
	}
}

func TestSubsampleKeepsEndpoints(t *testing.T) {
	m := NewMatcher(testNet(t), MatchConfig{StrideSec: 10, Candidates: 2, SigmaM: 10, BetaM: 60})
	recs := make([]GPSRecord, 50)
	for i := range recs {
		recs[i] = GPSRecord{TimeOffset: float64(i)}
	}
	out := m.subsample(recs)
	if out[0].TimeOffset != 0 || out[len(out)-1].TimeOffset != 49 {
		t.Fatal("subsample must keep first and last records")
	}
	if len(out) >= len(recs) {
		t.Fatalf("subsample did not thin: %d of %d", len(out), len(recs))
	}
	for i := 1; i < len(out)-1; i++ {
		if out[i].TimeOffset-out[i-1].TimeOffset < 10 {
			t.Fatalf("gap %v < stride", out[i].TimeOffset-out[i-1].TimeOffset)
		}
	}
}

func TestGenerateTripsHomeAreas(t *testing.T) {
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 6, Seed: 71})
	trips, err := GenerateTrips(g, drivers, TripConfig{
		TripsPerDriver: 5, MinHops: 3, HomeRadiusM: 1200, Seed: 72,
	})
	if err != nil {
		t.Fatalf("GenerateTrips with home areas: %v", err)
	}
	// All of a driver's trip origins must lie within a small disc: compute
	// the max pairwise distance between origins per driver.
	byDriver := map[int][]geo.Point{}
	for _, tr := range trips {
		byDriver[tr.DriverID] = append(byDriver[tr.DriverID], g.Vertex(tr.Path.Source()).Point)
	}
	for id, pts := range byDriver {
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if d := geo.Distance(pts[i], pts[j]); d > 2*1200+1 {
					t.Fatalf("driver %d has origins %.0f m apart, exceeding the home disc", id, d)
				}
			}
		}
	}
}

func TestGenerateTripsHomeAreasDisabledByDefault(t *testing.T) {
	g := testNet(t)
	drivers := NewPopulation(PopulationConfig{NumDrivers: 20, Seed: 73})
	trips, err := GenerateTrips(g, drivers, TripConfig{TripsPerDriver: 2, MinHops: 3, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	// Without home areas, origins should span most of the network's extent.
	bb := geo.NewBBox()
	for _, tr := range trips {
		bb.Extend(g.Vertex(tr.Path.Source()).Point)
	}
	full := g.BBox()
	if (bb.MaxLon - bb.MinLon) < 0.5*(full.MaxLon-full.MinLon) {
		t.Fatal("random origins should cover a wide longitude span")
	}
}
