package traj

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// MatchConfig parameterizes the HMM map matcher.
type MatchConfig struct {
	// Candidates is the number of nearest vertices considered per GPS
	// sample.
	Candidates int
	// SigmaM is the GPS noise standard deviation used by the emission
	// model (meters).
	SigmaM float64
	// BetaM is the scale of the transition model's penalty on the
	// difference between routed and great-circle distance (meters).
	BetaM float64
	// StrideSec subsamples the GPS stream so consecutive matched samples
	// are at least this many seconds apart; 1 Hz input with StrideSec=10
	// matches every ~10th record. Matching every high-rate sample wastes
	// work without improving the recovered path.
	StrideSec float64
}

// DefaultMatchConfig returns the Newson–Krumm-style defaults used in tests
// and examples. SigmaM is deliberately larger than the raw GPS noise: with
// vertex candidates, samples taken mid-edge sit a substantial distance from
// every candidate, and a wide emission keeps the transition model (which
// carries the road-topology information) decisive.
func DefaultMatchConfig() MatchConfig {
	return MatchConfig{Candidates: 4, SigmaM: 40, BetaM: 25, StrideSec: 10}
}

// gridIndex is a uniform spatial hash over vertices for nearest-neighbor
// queries.
type gridIndex struct {
	g        *roadnet.Graph
	cellDegs float64
	cells    map[[2]int][]roadnet.VertexID
}

func newGridIndex(g *roadnet.Graph, cellMeters float64) *gridIndex {
	idx := &gridIndex{
		g:        g,
		cellDegs: cellMeters / 111320.0,
		cells:    make(map[[2]int][]roadnet.VertexID),
	}
	for v := 0; v < g.NumVertices(); v++ {
		key := idx.key(g.Vertex(roadnet.VertexID(v)).Point)
		idx.cells[key] = append(idx.cells[key], roadnet.VertexID(v))
	}
	return idx
}

func (idx *gridIndex) key(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.Lon / idx.cellDegs)), int(math.Floor(p.Lat / idx.cellDegs))}
}

// nearest returns up to k vertices closest to p, searching expanding rings
// of cells.
func (idx *gridIndex) nearest(p geo.Point, k int) []roadnet.VertexID {
	center := idx.key(p)
	type cand struct {
		v roadnet.VertexID
		d float64
	}
	var cands []cand
	for ring := 0; ring < 8; ring++ {
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if ring > 0 && abs(dx) != ring && abs(dy) != ring {
					continue // only the new ring boundary
				}
				for _, v := range idx.cells[[2]int{center[0] + dx, center[1] + dy}] {
					cands = append(cands, cand{v: v, d: geo.Distance(p, idx.g.Vertex(v).Point)})
				}
			}
		}
		if len(cands) >= k && ring >= 1 {
			break
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]roadnet.VertexID, len(cands))
	for i, c := range cands {
		out[i] = c.v
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Matcher recovers network paths from GPS streams using a hidden Markov
// model over candidate vertices with Viterbi decoding, following
// Newson & Krumm (GIS 2009): emissions are Gaussian in the GPS-to-candidate
// distance, transitions penalize the gap between routed distance and
// great-circle displacement.
//
// Routed transition distances and path stitching run on a spath.Engine.
// NewMatcher builds a contraction hierarchy at construction — one
// preprocessing pass that every subsequent Match amortizes via the CH
// bucket many-to-many — while NewMatcherEngine accepts a prebuilt or
// alternative engine (e.g. the one persisted in a serving artifact, or
// plain Dijkstra when preprocessing is unwanted).
//
// A Matcher is immutable after construction (the spatial index and engine
// are built once and only read afterwards), so concurrent Match calls are
// safe — the streaming pipeline in internal/stream runs several matching
// workers over one Matcher.
type Matcher struct {
	g      *roadnet.Graph
	idx    *gridIndex
	cfg    MatchConfig
	engine spath.Engine
}

// NewMatcher builds a matcher over g, preprocessing g into a contraction
// hierarchy for fast transition queries.
func NewMatcher(g *roadnet.Graph, cfg MatchConfig) *Matcher {
	return NewMatcherEngine(g, cfg, nil)
}

// NewMatcherEngine builds a matcher that routes on the given engine. The
// engine must be built over g with the ByLength weight (the HMM transition
// model is metric); a nil or mismatched engine falls back to building a
// contraction hierarchy over g.
func NewMatcherEngine(g *roadnet.Graph, cfg MatchConfig, engine spath.Engine) *Matcher {
	if cfg.Candidates <= 0 {
		cfg.Candidates = 4
	}
	if cfg.SigmaM <= 0 {
		cfg.SigmaM = 10
	}
	if cfg.BetaM <= 0 {
		cfg.BetaM = 60
	}
	if engine == nil || engine.Graph() != g {
		engine = spath.NewEngine(spath.EngineCH, g, spath.ByLength, spath.EngineConfig{})
	}
	return &Matcher{g: g, idx: newGridIndex(g, 4*cfg.SigmaM+200), cfg: cfg, engine: engine}
}

// Engine returns the shortest-path engine the matcher routes on.
func (m *Matcher) Engine() spath.Engine { return m.engine }

// Match decodes the most likely vertex sequence for the GPS stream and
// stitches it into a connected path with shortest-path segments. The
// returned path starts and ends at the matched first and last samples. An
// error is returned when the stream is empty or decoding fails.
func (m *Matcher) Match(records []GPSRecord) (spath.Path, error) {
	return m.MatchCtx(context.Background(), records)
}

// MatchCtx is Match honoring ctx: cancellation aborts the decode between
// Viterbi steps and mid-stitch (the stitch segments run on the engine's
// context-aware queries) and returns ctx's error. A Background context
// decodes identically to Match.
func (m *Matcher) MatchCtx(ctx context.Context, records []GPSRecord) (spath.Path, error) {
	if len(records) == 0 {
		return spath.Path{}, fmt.Errorf("traj: empty GPS stream")
	}
	samples := m.subsample(records)

	// Candidate sets per sample.
	cands := make([][]roadnet.VertexID, len(samples))
	for i, r := range samples {
		cands[i] = m.idx.nearest(r.Point, m.cfg.Candidates)
		if len(cands[i]) == 0 {
			return spath.Path{}, fmt.Errorf("traj: no candidate vertices near sample %d", i)
		}
	}

	// Viterbi in log space.
	sigma2 := 2 * m.cfg.SigmaM * m.cfg.SigmaM
	emit := func(r GPSRecord, v roadnet.VertexID) float64 {
		d := geo.Distance(r.Point, m.g.Vertex(v).Point)
		return -d * d / sigma2
	}
	type back struct{ prev int }
	score := make([]float64, len(cands[0]))
	for i, v := range cands[0] {
		score[i] = emit(samples[0], v)
	}
	backs := make([][]back, len(samples))

	// Routed transition distances between consecutive candidate sets come
	// from one engine many-to-many query per step (on the CH engine: a
	// bucket join of |prev|+|cur| truncated upward searches) instead of one
	// bounded map-based Dijkstra per previous candidate. The bound is now
	// strict — pairs beyond gcDist*4+500 are +Inf, where the old per-source
	// Dijkstra could leak one just-over-bound distance as finite before
	// stopping; a candidate pair only connectable beyond the bound was
	// effectively unmatchable either way, and the uniform contract is what
	// every engine backend can honor. The matrix backing store is allocated
	// once per Match and re-sliced per step.
	maxC := 0
	for _, cs := range cands {
		if len(cs) > maxC {
			maxC = len(cs)
		}
	}
	routedBuf := make([]float64, maxC*maxC)
	routed := make([][]float64, maxC)
	for t := 1; t < len(samples); t++ {
		// One cancellation check per Viterbi step: each step is one
		// bounded many-to-many query, the natural abort granularity.
		if err := ctx.Err(); err != nil {
			return spath.Path{}, err
		}
		prevCands := cands[t-1]
		curCands := cands[t]
		next := make([]float64, len(curCands))
		backs[t] = make([]back, len(curCands))
		for j := range next {
			next[j] = math.Inf(-1)
		}
		gcDist := geo.Distance(samples[t-1].Point, samples[t].Point)
		rows := routed[:len(prevCands)]
		for i := range rows {
			rows[i] = routedBuf[i*maxC : i*maxC+len(curCands)]
		}
		m.engine.ManyToMany(prevCands, curCands, gcDist*4+500, rows)
		for i := range prevCands {
			if math.IsInf(score[i], -1) {
				continue
			}
			for j, cv := range curCands {
				rd := rows[i][j]
				var trans float64
				if math.IsInf(rd, 1) {
					trans = math.Inf(-1)
				} else {
					trans = -math.Abs(rd-gcDist) / m.cfg.BetaM
				}
				s := score[i] + trans + emit(samples[t], cv)
				if s > next[j] {
					next[j] = s
					backs[t][j] = back{prev: i}
				}
			}
		}
		score = next
	}

	// Best final state.
	bestJ, bestS := -1, math.Inf(-1)
	for j, s := range score {
		if s > bestS {
			bestJ, bestS = j, s
		}
	}
	if bestJ < 0 {
		return spath.Path{}, fmt.Errorf("traj: Viterbi decoding found no feasible state sequence")
	}
	seq := make([]roadnet.VertexID, len(samples))
	j := bestJ
	for t := len(samples) - 1; t >= 0; t-- {
		seq[t] = cands[t][j]
		if t > 0 {
			j = backs[t][j].prev
		}
	}
	return m.stitch(ctx, seq)
}

// subsample thins the GPS stream per StrideSec, always keeping the first
// and last records.
func (m *Matcher) subsample(records []GPSRecord) []GPSRecord {
	if m.cfg.StrideSec <= 0 || len(records) < 3 {
		return records
	}
	out := []GPSRecord{records[0]}
	lastT := records[0].TimeOffset
	for _, r := range records[1 : len(records)-1] {
		if r.TimeOffset-lastT >= m.cfg.StrideSec {
			out = append(out, r)
			lastT = r.TimeOffset
		}
	}
	out = append(out, records[len(records)-1])
	return out
}

// stitch connects the decoded vertex sequence with shortest-path segments,
// skipping consecutive duplicates. Segment queries honor ctx.
func (m *Matcher) stitch(ctx context.Context, seq []roadnet.VertexID) (spath.Path, error) {
	// Deduplicate consecutive repeats.
	uniq := seq[:1]
	for _, v := range seq[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) == 1 {
		return spath.Path{Vertices: []roadnet.VertexID{uniq[0]}}, nil
	}
	var edges []roadnet.EdgeID
	for i := 1; i < len(uniq); i++ {
		seg, err := m.engine.ShortestCtx(ctx, uniq[i-1], uniq[i])
		if err != nil {
			if ctx.Err() != nil {
				return spath.Path{}, ctx.Err()
			}
			return spath.Path{}, fmt.Errorf("traj: stitch segment %d->%d: %w", uniq[i-1], uniq[i], err)
		}
		edges = append(edges, seg.Edges...)
	}
	return m.removeCycles(uniq[0], edges), nil
}

// removeCycles walks the edge sequence from src, cutting any loop the
// decoder introduced (e.g. a brief detour to an off-path vertex and back).
// The result is a simple path.
func (m *Matcher) removeCycles(src roadnet.VertexID, edges []roadnet.EdgeID) spath.Path {
	vertices := []roadnet.VertexID{src}
	var kept []roadnet.EdgeID
	pos := map[roadnet.VertexID]int{src: 0}
	for _, eid := range edges {
		to := m.g.Edge(eid).To
		if k, seen := pos[to]; seen {
			// Loop back to an earlier vertex: drop the cycle.
			for _, v := range vertices[k+1:] {
				delete(pos, v)
			}
			vertices = vertices[:k+1]
			kept = kept[:k]
			continue
		}
		kept = append(kept, eid)
		vertices = append(vertices, to)
		pos[to] = len(vertices) - 1
	}
	var cost float64
	for _, eid := range kept {
		cost += m.g.Edge(eid).Length
	}
	return spath.Path{Vertices: vertices, Edges: kept, Cost: cost}
}
