// Package traj simulates the trajectory data PathRank learns from and
// recovers network paths from raw GPS records.
//
// The paper trains on 180M GPS records collected from 183 vehicles in North
// Jutland. That data is proprietary, so this package substitutes a driver
// population simulator: each synthetic driver carries latent route
// preferences (trade-offs between distance, travel time, road-category
// comfort and familiarity) and drives preference-optimal paths between
// random origin-destination pairs. Because the preferences differ from pure
// distance or pure time, the resulting paths are — like the paths of real
// local drivers — frequently neither shortest nor fastest, which is exactly
// the phenomenon PathRank exploits. GPS records are then sampled along the
// driven path with configurable frequency and Gaussian noise, and an
// HMM-based map matcher (Viterbi) recovers network paths, reproducing the
// preprocessing pipeline of the paper.
package traj

import (
	"fmt"
	"math/rand"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// Driver is a synthetic driver with latent route preferences.
type Driver struct {
	ID int
	// WeightLength and WeightTime trade off distance (per meter) against
	// travel time (per second) in the driver's generalized cost.
	WeightLength float64
	WeightTime   float64
	// CategoryMult scales the perceived cost of edges per road category;
	// e.g. a driver who dislikes residential streets has a multiplier > 1
	// for them.
	CategoryMult [roadnet.NumCategories]float64
	// FamiliarBias multiplies the cost of edges the driver has already
	// used (values < 1 make drivers re-use known roads).
	FamiliarBias float64

	used map[roadnet.EdgeID]bool
}

// Cost returns the driver's generalized cost of an edge, the weight
// function their routing minimizes.
func (d *Driver) Cost(e roadnet.Edge) float64 {
	c := (d.WeightLength*e.Length + d.WeightTime*e.Time) * d.CategoryMult[e.Category]
	if d.FamiliarBias != 1 && d.used[e.ID] {
		c *= d.FamiliarBias
	}
	return c
}

// recordUse marks the path's edges as familiar to the driver.
func (d *Driver) recordUse(p spath.Path) {
	if d.used == nil {
		d.used = make(map[roadnet.EdgeID]bool)
	}
	for _, e := range p.Edges {
		d.used[e] = true
	}
}

// PopulationConfig parameterizes driver generation.
type PopulationConfig struct {
	NumDrivers int
	Seed       int64
}

// NewPopulation samples a driver population that models "local drivers":
// everyone shares the region's driving conventions — a moderate
// distance/time trade-off and a strong preference for arterial roads over
// residential shortcuts — with individual variation on top. The shared
// component is what makes driver behaviour learnable from trajectories (the
// premise of PathRank); the individual noise keeps paths diverse and,
// together with the category preferences, frequently neither shortest nor
// fastest — the phenomenon the paper's introduction reports.
func NewPopulation(cfg PopulationConfig) []*Driver {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Shared regional convention: perceived per-category comfort. Values
	// above 1 penalize a category relative to its raw cost.
	// Local drivers prefer the secondary roads they know over the primary
	// corridors and the motorway ring that navigation systems favour, and
	// they avoid residential shortcuts. The category ranking deliberately
	// differs from the pure speed ranking — the routing-quality studies the
	// paper cites report exactly this gap between local behaviour and
	// shortest/fastest routing.
	base := [roadnet.NumCategories]float64{}
	base[roadnet.Motorway] = 1.10
	base[roadnet.Primary] = 1.00
	base[roadnet.Secondary] = 0.80
	base[roadnet.Residential] = 1.40

	drivers := make([]*Driver, cfg.NumDrivers)
	for i := range drivers {
		d := &Driver{
			ID:           i,
			WeightLength: 0.8 + rng.NormFloat64()*0.12,
			WeightTime:   2.5 + rng.NormFloat64()*0.4,
			FamiliarBias: 0.75 + rng.Float64()*0.15,
		}
		if d.WeightLength < 0.1 {
			d.WeightLength = 0.1
		}
		if d.WeightTime < 0.5 {
			d.WeightTime = 0.5
		}
		for c := range d.CategoryMult {
			m := base[c] * (1 + rng.NormFloat64()*0.06)
			if m < 0.3 {
				m = 0.3
			}
			d.CategoryMult[c] = m
		}
		drivers[i] = d
	}
	return drivers
}

// Trip is one driven journey: the path the driver actually took.
type Trip struct {
	DriverID int
	Path     spath.Path
}

// TripConfig parameterizes trip generation.
type TripConfig struct {
	TripsPerDriver int
	// MinHops rejects trivial OD pairs whose preference-optimal path has
	// fewer than this many edges.
	MinHops int
	// HomeRadiusM, when positive, assigns each driver a home vertex and
	// draws trip origins within this radius of it. Combined with the
	// familiarity bias this makes drivers creatures of habit whose route
	// choices carry vertex-level signal — the regularity PathRank learns
	// from real trajectories. Zero disables home areas (fully random ODs).
	HomeRadiusM float64
	Seed        int64
}

// GenerateTrips simulates trips for every driver: random OD pairs routed
// under the driver's generalized cost. Paths shorter than MinHops edges are
// rejected and resampled (bounded retries).
func GenerateTrips(g *roadnet.Graph, drivers []*Driver, cfg TripConfig) ([]Trip, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumVertices()
	if n < 2 {
		return nil, fmt.Errorf("traj: graph too small (%d vertices)", n)
	}
	// Precompute per-driver home neighborhoods when enabled.
	var homes [][]roadnet.VertexID
	if cfg.HomeRadiusM > 0 {
		homes = make([][]roadnet.VertexID, len(drivers))
		for i := range drivers {
			home := roadnet.VertexID(rng.Intn(n))
			hp := g.Vertex(home).Point
			var near []roadnet.VertexID
			for v := 0; v < n; v++ {
				if geo.Distance(hp, g.Vertex(roadnet.VertexID(v)).Point) <= cfg.HomeRadiusM {
					near = append(near, roadnet.VertexID(v))
				}
			}
			if len(near) == 0 {
				near = []roadnet.VertexID{home}
			}
			homes[i] = near
		}
	}
	trips := make([]Trip, 0, len(drivers)*cfg.TripsPerDriver)
	for di, d := range drivers {
		for t := 0; t < cfg.TripsPerDriver; t++ {
			var trip *Trip
			for attempt := 0; attempt < 20; attempt++ {
				var src roadnet.VertexID
				if homes != nil {
					src = homes[di][rng.Intn(len(homes[di]))]
				} else {
					src = roadnet.VertexID(rng.Intn(n))
				}
				dst := roadnet.VertexID(rng.Intn(n))
				if src == dst {
					continue
				}
				p, err := spath.Dijkstra(g, src, dst, d.Cost)
				if err != nil {
					continue
				}
				if p.Len() < cfg.MinHops {
					continue
				}
				trip = &Trip{DriverID: d.ID, Path: p}
				break
			}
			if trip == nil {
				return nil, fmt.Errorf("traj: driver %d could not find a trip of >=%d hops after 20 attempts", d.ID, cfg.MinHops)
			}
			d.recordUse(trip.Path)
			trips = append(trips, *trip)
		}
	}
	return trips, nil
}

// NonOptimalFraction reports the fractions of trips whose path is not the
// shortest-distance path and not the fastest path — the statistic the
// paper's introduction cites to motivate learned ranking.
func NonOptimalFraction(g *roadnet.Graph, trips []Trip) (notShortest, notFastest float64) {
	if len(trips) == 0 {
		return 0, 0
	}
	var ns, nf int
	for _, tr := range trips {
		src, dst := tr.Path.Source(), tr.Path.Destination()
		if sp, err := spath.Dijkstra(g, src, dst, spath.ByLength); err == nil && !sp.Equal(tr.Path) {
			ns++
		}
		if fp, err := spath.Dijkstra(g, src, dst, spath.ByTime); err == nil && !fp.Equal(tr.Path) {
			nf++
		}
	}
	return float64(ns) / float64(len(trips)), float64(nf) / float64(len(trips))
}
