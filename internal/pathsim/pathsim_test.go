package pathsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// ladder builds a 2 x n ladder graph so multiple distinct paths exist.
func ladder(t testing.TB, n int) *roadnet.Graph {
	t.Helper()
	b := roadnet.NewBuilder(2*n, 6*n)
	for r := 0; r < 2; r++ {
		for c := 0; c < n; c++ {
			b.AddVertex(geo.Point{Lon: 10 + float64(c)*0.002, Lat: 57 + float64(r)*0.002})
		}
	}
	id := func(r, c int) roadnet.VertexID { return roadnet.VertexID(r*n + c) }
	for c := 0; c < n-1; c++ {
		b.AddBidirectional(id(0, c), id(0, c+1), roadnet.Residential)
		b.AddBidirectional(id(1, c), id(1, c+1), roadnet.Residential)
	}
	for c := 0; c < n; c++ {
		b.AddBidirectional(id(0, c), id(1, c), roadnet.Residential)
	}
	return b.Build()
}

func twoPaths(t *testing.T) (*roadnet.Graph, spath.Path, spath.Path) {
	t.Helper()
	g := ladder(t, 5)
	paths, err := spath.TopK(g, 0, 4, 2, spath.ByLength)
	if err != nil || len(paths) < 2 {
		t.Fatalf("need 2 paths, got %d err=%v", len(paths), err)
	}
	return g, paths[0], paths[1]
}

func TestWeightedJaccardIdentity(t *testing.T) {
	g, p, _ := twoPaths(t)
	if s := WeightedJaccard(g, p, p); s != 1 {
		t.Fatalf("WeightedJaccard(p,p) = %v, want 1", s)
	}
}

func TestWeightedJaccardSymmetric(t *testing.T) {
	g, p, q := twoPaths(t)
	a, b := WeightedJaccard(g, p, q), WeightedJaccard(g, q, p)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", a, b)
	}
}

func TestWeightedJaccardDisjoint(t *testing.T) {
	g := ladder(t, 5)
	top, err := spath.Dijkstra(g, 0, 4, spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	bottom, err := spath.Dijkstra(g, 5, 9, spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if s := WeightedJaccard(g, top, bottom); s != 0 {
		t.Fatalf("disjoint paths similarity = %v, want 0", s)
	}
}

func TestWeightedJaccardEmptyPaths(t *testing.T) {
	g := ladder(t, 3)
	empty := spath.Path{Vertices: []roadnet.VertexID{0}}
	if s := WeightedJaccard(g, empty, empty); s != 1 {
		t.Fatalf("two empty paths = %v, want 1", s)
	}
	p, _ := spath.Dijkstra(g, 0, 2, spath.ByLength)
	if s := WeightedJaccard(g, empty, p); s != 0 {
		t.Fatalf("empty vs non-empty = %v, want 0", s)
	}
}

func TestWeightedJaccardBoundsProperty(t *testing.T) {
	g := ladder(t, 6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if src == dst {
			return true
		}
		paths, err := spath.TopK(g, src, dst, 3, spath.ByLength)
		if err != nil {
			return true
		}
		for i := range paths {
			for j := range paths {
				s := WeightedJaccard(g, paths[i], paths[j])
				if s < 0 || s > 1+1e-12 {
					return false
				}
				if i == j && math.Abs(s-1) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardVsWeightedOnUniformLengths(t *testing.T) {
	// On a graph where all edges have roughly equal length, plain and
	// weighted Jaccard should be close.
	g, p, q := twoPaths(t)
	pj := Jaccard(p, q)
	wj := WeightedJaccard(g, p, q)
	if math.Abs(pj-wj) > 0.25 {
		t.Fatalf("uniform-length graph: jaccard %.3f vs weighted %.3f diverge too much", pj, wj)
	}
}

func TestDiceOverlapRelations(t *testing.T) {
	g, p, q := twoPaths(t)
	_ = g
	j := Jaccard(p, q)
	d := Dice(p, q)
	o := Overlap(p, q)
	// Standard inequalities: J <= D <= O for non-degenerate sets.
	if j > d+1e-12 {
		t.Fatalf("jaccard %.4f > dice %.4f", j, d)
	}
	if d > o+1e-12 {
		t.Fatalf("dice %.4f > overlap %.4f", d, o)
	}
}

func TestDiceIdentityAndDisjoint(t *testing.T) {
	g := ladder(t, 5)
	p, _ := spath.Dijkstra(g, 0, 4, spath.ByLength)
	if Dice(p, p) != 1 {
		t.Fatal("Dice(p,p) != 1")
	}
	q, _ := spath.Dijkstra(g, 5, 9, spath.ByLength)
	if Dice(p, q) != 0 {
		t.Fatal("Dice disjoint != 0")
	}
}

func TestOverlapSubsetIsOne(t *testing.T) {
	g := ladder(t, 6)
	long, err := spath.Dijkstra(g, 0, 5, spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	// A prefix of the path is a subset of its edges.
	prefix := spath.Path{
		Vertices: long.Vertices[:3],
		Edges:    long.Edges[:2],
	}
	if o := Overlap(prefix, long); math.Abs(o-1) > 1e-12 {
		t.Fatalf("Overlap(prefix, path) = %v, want 1", o)
	}
}

func TestLCSVertexSimilarity(t *testing.T) {
	g := ladder(t, 6)
	p, _ := spath.Dijkstra(g, 0, 5, spath.ByLength)
	if s := LCSVertexSimilarity(p, p); s != 1 {
		t.Fatalf("LCS(p,p) = %v, want 1", s)
	}
	empty := spath.Path{}
	if s := LCSVertexSimilarity(empty, empty); s != 1 {
		t.Fatalf("LCS(empty,empty) = %v, want 1", s)
	}
	if s := LCSVertexSimilarity(empty, p); s != 0 {
		t.Fatalf("LCS(empty,p) = %v, want 0", s)
	}
}

func TestLCSDetectsSharedMiddle(t *testing.T) {
	a := spath.Path{Vertices: []roadnet.VertexID{1, 2, 3, 4, 5}}
	b := spath.Path{Vertices: []roadnet.VertexID{9, 2, 3, 4, 8}}
	s := LCSVertexSimilarity(a, b)
	if math.Abs(s-0.6) > 1e-12 { // common run 2,3,4 = 3 of 5
		t.Fatalf("LCS = %v, want 0.6", s)
	}
}

func TestWeightedJaccardSimAdapter(t *testing.T) {
	g, p, q := twoPaths(t)
	sim := WeightedJaccardSim(g)
	if sim(p, q) != WeightedJaccard(g, p, q) {
		t.Fatal("adapter should match direct call")
	}
}

func TestSimilaritiesSymmetricProperty(t *testing.T) {
	g := ladder(t, 6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if src == dst {
			return true
		}
		paths, err := spath.TopK(g, src, dst, 2, spath.ByLength)
		if err != nil || len(paths) < 2 {
			return true
		}
		p, q := paths[0], paths[1]
		return math.Abs(Jaccard(p, q)-Jaccard(q, p)) < 1e-12 &&
			math.Abs(Dice(p, q)-Dice(q, p)) < 1e-12 &&
			math.Abs(Overlap(p, q)-Overlap(q, p)) < 1e-12 &&
			math.Abs(LCSVertexSimilarity(p, q)-LCSVertexSimilarity(q, p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
