// Package pathsim measures similarity between paths in a road network.
//
// The central function is WeightedJaccard, which the paper uses as the
// ground-truth ranking score of a candidate path against the trajectory
// path: the ratio of the summed lengths of shared edges to the summed
// lengths of all edges in either path. The package also provides plain
// Jaccard, Dice, overlap and LCS-based similarity for diversity filtering
// and evaluation.
package pathsim

import (
	"sync"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// edgeScratch holds generation-stamped edge membership marks so the
// similarity kernels run without per-call map allocations. WeightedJaccard
// is called once per (candidate, accepted) pair inside DiversifiedTopK and
// once per candidate during dataset labeling, which made the two maps the
// old implementation allocated per call a measurable share of candidate
// generation. A scratch is acquired from a pool per call, so concurrent
// similarity evaluation (parallel experiment rows) stays safe.
type edgeScratch struct {
	stampA []uint32
	stampB []uint32
	genA   uint32
	genB   uint32
}

var edgeScratchPool = sync.Pool{New: func() any { return &edgeScratch{} }}

// begin sizes the stamp arrays for m edges and starts fresh generations
// (no edge marked), clearing only on counter wrap.
func (sc *edgeScratch) begin(m int) {
	if len(sc.stampA) < m {
		sc.stampA = make([]uint32, m)
		sc.stampB = make([]uint32, m)
		sc.genA = 0
		sc.genB = 0
	}
	sc.genA++
	if sc.genA == 0 { // stamp wrap: clear once every 2^32 uses
		clearU32(sc.stampA)
		sc.genA = 1
	}
	sc.genB++
	if sc.genB == 0 {
		clearU32(sc.stampB)
		sc.genB = 1
	}
}

// getEdgeScratch returns a pooled scratch covering m edges with fresh
// generations.
func getEdgeScratch(m int) *edgeScratch {
	sc := edgeScratchPool.Get().(*edgeScratch)
	sc.begin(m)
	return sc
}

func (sc *edgeScratch) release() { edgeScratchPool.Put(sc) }

func clearU32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

// WeightedJaccard returns sum(len(e) for e in A∩B) / sum(len(e) for e in
// A∪B) over the edge sets of a and b. It is 1 for identical edge sets, 0 for
// disjoint ones, and symmetric. Two empty paths are defined to have
// similarity 1.
//
// The accumulation order matches the historical map-based implementation
// exactly (all of a's edges, then b's in sequence), so scores — and every
// metric derived from them — are bit-identical to earlier releases.
func WeightedJaccard(g *roadnet.Graph, a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	sc := getEdgeScratch(g.NumEdges())
	defer sc.release()
	return weightedJaccardScratch(g, a, b, sc)
}

// weightedJaccardScratch is the map-free kernel; sc must cover g's edges
// with fresh generations.
func weightedJaccardScratch(g *roadnet.Graph, a, b spath.Path, sc *edgeScratch) float64 {
	for _, e := range a.Edges {
		sc.stampA[e] = sc.genA
	}
	var inter, union float64
	for _, e := range a.Edges {
		union += g.Edge(e).Length
	}
	for _, e := range b.Edges {
		if sc.stampB[e] == sc.genB {
			continue
		}
		sc.stampB[e] = sc.genB
		if sc.stampA[e] == sc.genA {
			inter += g.Edge(e).Length
		} else {
			union += g.Edge(e).Length
		}
	}
	if union == 0 {
		return 1
	}
	return inter / union
}

// Jaccard returns |A∩B| / |A∪B| over edge sets (unweighted).
func Jaccard(a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	union := len(inA)
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|A∩B| / (|A|+|B|) over edge sets.
func Dice(a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		}
	}
	den := len(inA) + len(seenB)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// Overlap returns |A∩B| / min(|A|,|B|) over edge sets.
func Overlap(a, b spath.Path) float64 {
	if len(a.Edges) == 0 || len(b.Edges) == 0 {
		if len(a.Edges) == 0 && len(b.Edges) == 0 {
			return 1
		}
		return 0
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		}
	}
	m := len(inA)
	if len(seenB) < m {
		m = len(seenB)
	}
	return float64(inter) / float64(m)
}

// LCSVertexSimilarity returns the length of the longest common contiguous
// vertex subsequence of a and b, normalized by the longer path's vertex
// count. Unlike edge-set measures it is sensitive to order and contiguity.
func LCSVertexSimilarity(a, b spath.Path) float64 {
	n, m := len(a.Vertices), len(b.Vertices)
	if n == 0 && m == 0 {
		return 1
	}
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	best := 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a.Vertices[i-1] == b.Vertices[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	longer := n
	if m > longer {
		longer = m
	}
	return float64(best) / float64(longer)
}

// WeightedJaccardSim adapts WeightedJaccard to the spath.Similarity
// signature for use with DiversifiedTopK. The returned closure owns its
// scratch buffers outright — no pool round-trip per call — so it must be
// used sequentially by one goroutine at a time. Every call site (candidate
// generation, labeling, the ranker) already creates its own closure per
// operation, which is exactly that discipline.
func WeightedJaccardSim(g *roadnet.Graph) spath.Similarity {
	sc := &edgeScratch{}
	return func(a, b spath.Path) float64 {
		if len(a.Edges) == 0 && len(b.Edges) == 0 {
			return 1
		}
		sc.begin(g.NumEdges())
		return weightedJaccardScratch(g, a, b, sc)
	}
}
