// Package pathsim measures similarity between paths in a road network.
//
// The central function is WeightedJaccard, which the paper uses as the
// ground-truth ranking score of a candidate path against the trajectory
// path: the ratio of the summed lengths of shared edges to the summed
// lengths of all edges in either path. The package also provides plain
// Jaccard, Dice, overlap and LCS-based similarity for diversity filtering
// and evaluation.
package pathsim

import (
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// WeightedJaccard returns sum(len(e) for e in A∩B) / sum(len(e) for e in
// A∪B) over the edge sets of a and b. It is 1 for identical edge sets, 0 for
// disjoint ones, and symmetric. Two empty paths are defined to have
// similarity 1.
func WeightedJaccard(g *roadnet.Graph, a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter, union float64
	for _, e := range a.Edges {
		union += g.Edge(e).Length
	}
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter += g.Edge(e).Length
		} else {
			union += g.Edge(e).Length
		}
	}
	if union == 0 {
		return 1
	}
	return inter / union
}

// Jaccard returns |A∩B| / |A∪B| over edge sets (unweighted).
func Jaccard(a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	union := len(inA)
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|A∩B| / (|A|+|B|) over edge sets.
func Dice(a, b spath.Path) float64 {
	if len(a.Edges) == 0 && len(b.Edges) == 0 {
		return 1
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		}
	}
	den := len(inA) + len(seenB)
	if den == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(den)
}

// Overlap returns |A∩B| / min(|A|,|B|) over edge sets.
func Overlap(a, b spath.Path) float64 {
	if len(a.Edges) == 0 || len(b.Edges) == 0 {
		if len(a.Edges) == 0 && len(b.Edges) == 0 {
			return 1
		}
		return 0
	}
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	seenB := make(map[roadnet.EdgeID]bool, len(b.Edges))
	for _, e := range b.Edges {
		if seenB[e] {
			continue
		}
		seenB[e] = true
		if inA[e] {
			inter++
		}
	}
	m := len(inA)
	if len(seenB) < m {
		m = len(seenB)
	}
	return float64(inter) / float64(m)
}

// LCSVertexSimilarity returns the length of the longest common contiguous
// vertex subsequence of a and b, normalized by the longer path's vertex
// count. Unlike edge-set measures it is sensitive to order and contiguity.
func LCSVertexSimilarity(a, b spath.Path) float64 {
	n, m := len(a.Vertices), len(b.Vertices)
	if n == 0 && m == 0 {
		return 1
	}
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	best := 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a.Vertices[i-1] == b.Vertices[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	longer := n
	if m > longer {
		longer = m
	}
	return float64(best) / float64(longer)
}

// WeightedJaccardSim adapts WeightedJaccard to the spath.Similarity
// signature for use with DiversifiedTopK.
func WeightedJaccardSim(g *roadnet.Graph) spath.Similarity {
	return func(a, b spath.Path) float64 { return WeightedJaccard(g, a, b) }
}
