// Package geo provides lightweight planar/spherical geometry primitives for
// spatial road networks: points in WGS84-like lon/lat coordinates, distance
// functions, bounding boxes, and polyline utilities.
//
// Distances are returned in meters. For the small regional extents used by
// road networks (tens of kilometers) the fast equirectangular approximation
// is accurate to well under 0.1% and is the default used by the rest of the
// library; Haversine is available when full great-circle accuracy is needed.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by spherical formulas.
const EarthRadiusMeters = 6371008.8

// Point is a geographic coordinate. Lon and Lat are in decimal degrees.
type Point struct {
	Lon float64
	Lat float64
}

// String renders the point as "(lon,lat)" with 6 decimals (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lon, p.Lat)
}

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Distance returns the equirectangular-approximation distance between a and
// b in meters. It is the default metric for nearby points.
func Distance(a, b Point) float64 {
	meanLat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	dx := (b.Lon - a.Lon) * math.Pi / 180 * math.Cos(meanLat)
	dy := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Hypot(dx, dy)
}

// Midpoint returns the coordinate midway between a and b (planar average,
// adequate for short segments).
func Midpoint(a, b Point) Point {
	return Point{Lon: (a.Lon + b.Lon) / 2, Lat: (a.Lat + b.Lat) / 2}
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func Lerp(a, b Point, t float64) Point {
	return Point{
		Lon: a.Lon + (b.Lon-a.Lon)*t,
		Lat: a.Lat + (b.Lat-a.Lat)*t,
	}
}

// Bearing returns the initial bearing from a to b in degrees in [0, 360).
func Bearing(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// BBox is an axis-aligned geographic bounding box.
type BBox struct {
	MinLon, MinLat, MaxLon, MaxLat float64
}

// NewBBox returns an empty (inverted) bounding box ready for Extend.
func NewBBox() BBox {
	return BBox{
		MinLon: math.Inf(1), MinLat: math.Inf(1),
		MaxLon: math.Inf(-1), MaxLat: math.Inf(-1),
	}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
}

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.Lon >= b.MinLon && p.Lon <= b.MaxLon &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// Empty reports whether the box has never been extended.
func (b BBox) Empty() bool { return b.MinLon > b.MaxLon }

// Center returns the box center. It is undefined for an empty box.
func (b BBox) Center() Point {
	return Point{Lon: (b.MinLon + b.MaxLon) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
}

// Pad returns a copy of b expanded by the given number of meters on all
// sides (converted to degrees at the box's latitude).
func (b BBox) Pad(meters float64) BBox {
	latDeg := meters / 111320.0
	lonDeg := meters / (111320.0 * math.Cos(b.Center().Lat*math.Pi/180))
	return BBox{
		MinLon: b.MinLon - lonDeg, MinLat: b.MinLat - latDeg,
		MaxLon: b.MaxLon + lonDeg, MaxLat: b.MaxLat + latDeg,
	}
}

// PolylineLength returns the total length in meters of the polyline through
// pts, using the equirectangular distance.
func PolylineLength(pts []Point) float64 {
	var sum float64
	for i := 1; i < len(pts); i++ {
		sum += Distance(pts[i-1], pts[i])
	}
	return sum
}

// ProjectOntoSegment returns the point on segment [a,b] closest to p and the
// parameter t in [0,1] such that the projection equals Lerp(a,b,t). The
// computation is planar in degree space scaled by cos(latitude), which is
// accurate for the short segments found in road networks.
func ProjectOntoSegment(p, a, b Point) (Point, float64) {
	cosLat := math.Cos((a.Lat + b.Lat) / 2 * math.Pi / 180)
	ax, ay := a.Lon*cosLat, a.Lat
	bx, by := b.Lon*cosLat, b.Lat
	px, py := p.Lon*cosLat, p.Lat
	dx, dy := bx-ax, by-ay
	den := dx*dx + dy*dy
	if den == 0 {
		return a, 0
	}
	t := ((px-ax)*dx + (py-ay)*dy) / den
	t = math.Max(0, math.Min(1, t))
	return Lerp(a, b, t), t
}

// DistanceToSegment returns the distance in meters from p to segment [a,b].
func DistanceToSegment(p, a, b Point) float64 {
	q, _ := ProjectOntoSegment(p, a, b)
	return Distance(p, q)
}
