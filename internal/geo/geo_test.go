package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineKnownDistance(t *testing.T) {
	// Aalborg to Copenhagen, roughly 223 km great-circle.
	aalborg := Point{Lon: 9.9187, Lat: 57.0488}
	copenhagen := Point{Lon: 12.5683, Lat: 55.6761}
	d := Haversine(aalborg, copenhagen)
	if d < 215_000 || d > 232_000 {
		t.Fatalf("Haversine(Aalborg, Copenhagen) = %.0f m, want ~223 km", d)
	}
}

func TestHaversineZero(t *testing.T) {
	p := Point{Lon: 9.92, Lat: 57.05}
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("Haversine(p,p) = %v, want 0", d)
	}
}

func TestDistanceMatchesHaversineNearby(t *testing.T) {
	a := Point{Lon: 9.9187, Lat: 57.0488}
	b := Point{Lon: 9.9350, Lat: 57.0600}
	h := Haversine(a, b)
	e := Distance(a, b)
	if math.Abs(h-e)/h > 0.001 {
		t.Fatalf("equirectangular %.2f vs haversine %.2f differ by >0.1%%", e, h)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2 float64) bool {
		a := Point{Lon: math.Mod(lon1, 10) + 9, Lat: math.Mod(lat1, 2) + 56}
		b := Point{Lon: math.Mod(lon2, 10) + 9, Lat: math.Mod(lat2, 2) + 56}
		return almostEqual(Distance(a, b), Distance(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		norm := func(v float64, span float64) float64 { return math.Mod(math.Abs(v), span) }
		a := Point{Lon: 9 + norm(x1, 1), Lat: 56 + norm(y1, 1)}
		b := Point{Lon: 9 + norm(x2, 1), Lat: 56 + norm(y2, 1)}
		c := Point{Lon: 9 + norm(x3, 1), Lat: 56 + norm(y3, 1)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Point{Lon: 1, Lat: 2}
	b := Point{Lon: 3, Lat: 6}
	if got := Lerp(a, b, 0); got != a {
		t.Fatalf("Lerp(t=0) = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Fatalf("Lerp(t=1) = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if !almostEqual(mid.Lon, 2, 1e-12) || !almostEqual(mid.Lat, 4, 1e-12) {
		t.Fatalf("Lerp(t=0.5) = %v, want (2,4)", mid)
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{Lon: 0, Lat: 0}
	b := Point{Lon: 2, Lat: 4}
	m := Midpoint(a, b)
	if m.Lon != 1 || m.Lat != 2 {
		t.Fatalf("Midpoint = %v, want (1,2)", m)
	}
}

func TestBearingCardinalDirections(t *testing.T) {
	origin := Point{Lon: 10, Lat: 57}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lon: 10, Lat: 57.1}, 0},
		{"east", Point{Lon: 10.1, Lat: 57}, 90},
		{"south", Point{Lon: 10, Lat: 56.9}, 180},
		{"west", Point{Lon: 9.9, Lat: 57}, 270},
	}
	for _, tc := range cases {
		got := Bearing(origin, tc.to)
		diff := math.Abs(got - tc.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 1.0 {
			t.Errorf("Bearing %s = %.2f, want ~%.0f", tc.name, got, tc.want)
		}
	}
}

func TestBBoxExtendContains(t *testing.T) {
	b := NewBBox()
	if !b.Empty() {
		t.Fatal("new bbox should be empty")
	}
	pts := []Point{{1, 1}, {3, 2}, {2, 5}}
	for _, p := range pts {
		b.Extend(p)
	}
	if b.Empty() {
		t.Fatal("bbox should not be empty after Extend")
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox should contain %v", p)
		}
	}
	if b.Contains(Point{Lon: 0, Lat: 0}) {
		t.Error("bbox should not contain (0,0)")
	}
	c := b.Center()
	if !almostEqual(c.Lon, 2, 1e-12) || !almostEqual(c.Lat, 3, 1e-12) {
		t.Errorf("center = %v, want (2,3)", c)
	}
}

func TestBBoxPad(t *testing.T) {
	b := NewBBox()
	b.Extend(Point{Lon: 10, Lat: 57})
	padded := b.Pad(1000)
	if !padded.Contains(Point{Lon: 10, Lat: 57.005}) {
		t.Error("padded box should contain a point ~550 m north")
	}
	if padded.Contains(Point{Lon: 10, Lat: 57.02}) {
		t.Error("padded box should not contain a point ~2.2 km north")
	}
}

func TestPolylineLength(t *testing.T) {
	pts := []Point{
		{Lon: 10, Lat: 57},
		{Lon: 10.01, Lat: 57},
		{Lon: 10.02, Lat: 57},
	}
	total := PolylineLength(pts)
	seg := Distance(pts[0], pts[1]) + Distance(pts[1], pts[2])
	if !almostEqual(total, seg, 1e-9) {
		t.Fatalf("polyline length %.3f != sum of segments %.3f", total, seg)
	}
	if PolylineLength(pts[:1]) != 0 {
		t.Fatal("single-point polyline should have zero length")
	}
	if PolylineLength(nil) != 0 {
		t.Fatal("nil polyline should have zero length")
	}
}

func TestProjectOntoSegment(t *testing.T) {
	a := Point{Lon: 10, Lat: 57}
	b := Point{Lon: 10.02, Lat: 57}
	// Point directly above the middle projects onto the middle.
	p := Point{Lon: 10.01, Lat: 57.001}
	q, tpar := ProjectOntoSegment(p, a, b)
	if !almostEqual(tpar, 0.5, 1e-6) {
		t.Fatalf("t = %v, want 0.5", tpar)
	}
	if !almostEqual(q.Lon, 10.01, 1e-9) || !almostEqual(q.Lat, 57, 1e-9) {
		t.Fatalf("projection = %v, want (10.01,57)", q)
	}
	// Point beyond segment end clamps to the end.
	p2 := Point{Lon: 10.05, Lat: 57}
	q2, t2 := ProjectOntoSegment(p2, a, b)
	if t2 != 1 || q2 != b {
		t.Fatalf("projection beyond end = %v t=%v, want b t=1", q2, t2)
	}
	// Degenerate segment.
	q3, t3 := ProjectOntoSegment(p, a, a)
	if t3 != 0 || q3 != a {
		t.Fatalf("degenerate segment projection = %v t=%v, want a t=0", q3, t3)
	}
}

func TestDistanceToSegmentPerpendicular(t *testing.T) {
	a := Point{Lon: 10, Lat: 57}
	b := Point{Lon: 10.02, Lat: 57}
	p := Point{Lon: 10.01, Lat: 57.001}
	d := DistanceToSegment(p, a, b)
	want := Distance(p, Point{Lon: 10.01, Lat: 57})
	if !almostEqual(d, want, 1e-6) {
		t.Fatalf("distance to segment %.3f, want %.3f", d, want)
	}
}

func TestProjectionParameterWithinBoundsProperty(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		n := func(v float64) float64 { return 9 + math.Mod(math.Abs(v), 2) }
		p := Point{Lon: n(px), Lat: n(py) + 47}
		a := Point{Lon: n(ax), Lat: n(ay) + 47}
		b := Point{Lon: n(bx), Lat: n(by) + 47}
		_, tpar := ProjectOntoSegment(p, a, b)
		return tpar >= 0 && tpar <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
