package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// record fabricates a deterministic payload for index i (variable length,
// so frames land at irregular offsets).
func record(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d:%s", i, string(make([]byte, i%7))))
}

// collect replays the whole log into a map from index to payload copy.
func collect(t *testing.T, l *Log) map[uint64][]byte {
	t.Helper()
	out := map[uint64][]byte{}
	if err := l.Replay(func(idx uint64, p []byte) error {
		out[idx] = append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		idx, err := l.Append(record(i))
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d returned index %d", i, idx)
		}
	}
	got := collect(t, l)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if string(got[uint64(i)]) != string(record(i)) {
			t.Fatalf("record %d corrupted in replay", i)
		}
	}
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	// Clean reopen: everything recovered, index sequence continues.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Records != n || rec.FirstIndex != 1 || rec.LastIndex != n || rec.TornBytes != 0 {
		t.Fatalf("recovery after clean shutdown: %+v", rec)
	}
	if idx, err := l2.Append(record(n + 1)); err != nil || idx != n+1 {
		t.Fatalf("continuation append: idx=%d err=%v", idx, err)
	}
}

func TestSegmentRotationAndStats(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 512)
	const n = 40 // ~21 KiB of frames over 4 KiB segments
	for i := 0; i < n; i++ {
		payload[0] = byte(i)
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation into >=3 segments, got %d", st.Segments)
	}
	if st.LastIndex != n || st.Appends != n {
		t.Fatalf("stats: %+v", st)
	}
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != st.Segments || !sort.StringsAreSorted(names) {
		t.Fatalf("segment files %v vs stats %d", names, st.Segments)
	}
	// Replay crosses segment boundaries in order.
	var idxs []uint64
	if err := l.Replay(func(idx uint64, _ []byte) error {
		idxs = append(idxs, idx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(idxs) != n || idxs[0] != 1 || idxs[n-1] != n {
		t.Fatalf("replay indexes truncated: %d records, first %d last %d", len(idxs), idxs[0], idxs[len(idxs)-1])
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] != idxs[i-1]+1 {
			t.Fatalf("replay indexes not contiguous at %d", i)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 1; i <= 3; i++ {
			if _, err := l.Append(record(i)); err != nil {
				t.Fatal(err)
			}
			if st := l.Stats(); st.SyncedIndex != uint64(i) {
				t.Fatalf("after append %d synced=%d", i, st.SyncedIndex)
			}
		}
		if st := l.Stats(); st.Syncs != 3 || st.SyncNanos <= 0 {
			t.Fatalf("sync counters: %+v", st)
		}
	})
	t.Run("batch", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 1; i <= 3; i++ {
			if _, err := l.Append(record(i)); err != nil {
				t.Fatal(err)
			}
		}
		if st := l.Stats(); st.SyncedIndex != 0 {
			t.Fatalf("batch policy synced eagerly: %+v", st)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.SyncedIndex != 3 || st.Syncs != 1 {
			t.Fatalf("after explicit sync: %+v", st)
		}
		// A no-op sync does not refsync.
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Syncs != 1 {
			t.Fatalf("no-op sync fsynced anyway: %+v", st)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(record(1)); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for l.Stats().SyncedIndex != 1 {
			if time.Now().After(deadline) {
				t.Fatal("interval sync never fired")
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	for _, name := range []string{"", "batch", "always", "interval"} {
		if _, err := ParseSyncPolicy(name); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", name, err)
		}
	}
}

// TestTornTailEveryOffset is the crash-recovery property test: append N
// records across two segments, then for EVERY byte offset of the final
// segment, truncate a copy of the log there, reopen it, and verify that
// exactly the records whose frames lie fully inside the truncated prefix
// are recovered — no more, no fewer — and that appending afterwards works.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fill past one rotation so the final segment is the second one.
	payload := make([]byte, 300)
	total := 0
	for l.Stats().Segments < 2 {
		payload[0] = byte(total)
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
		total++
	}
	// A few more records into the now-active final segment.
	for i := 0; i < 6; i++ {
		payload[0] = byte(total)
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
		total++
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := listSegments(master)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("want exactly 2 segments, got %v", names)
	}
	lastName := names[len(names)-1]
	lastData, err := os.ReadFile(filepath.Join(master, lastName))
	if err != nil {
		t.Fatal(err)
	}

	// How many records does a prefix of `size` bytes of the last segment
	// fully contain? Walk the frames: each frame is 8 + 300 bytes.
	recordsWithin := func(size int64) int {
		count := 0
		off := int64(segHeaderSize)
		frame := int64(frameHeader + len(payload))
		for off+frame <= size {
			off += frame
			count++
		}
		return count
	}
	// Records that live in the first (sealed) segment:
	firstSegRecords := 0
	{
		f, err := os.Open(filepath.Join(master, names[0]))
		if err != nil {
			t.Fatal(err)
		}
		_, _, firstSegRecords, _, err = scanSegment(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	for size := int64(segHeaderSize); size <= int64(len(lastData)); size++ {
		dir := t.TempDir()
		// Copy the intact first segment and the truncated last segment.
		first, err := os.ReadFile(filepath.Join(master, names[0]))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, names[0]), first, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, lastName), lastData[:size], 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir, Options{SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatalf("truncation at %d: open: %v", size, err)
		}
		wantRecords := firstSegRecords + recordsWithin(size)
		rec := l2.Recovery()
		if rec.Records != wantRecords {
			t.Fatalf("truncation at %d: recovered %d records, want %d", size, rec.Records, wantRecords)
		}
		wantTorn := size - (segHeaderSize + int64(recordsWithin(size))*int64(frameHeader+len(payload)))
		if rec.TornBytes != wantTorn {
			t.Fatalf("truncation at %d: torn bytes %d, want %d", size, rec.TornBytes, wantTorn)
		}
		// The log must be fully usable after recovery.
		idx, err := l2.Append(record(999))
		if err != nil {
			t.Fatalf("truncation at %d: append after recovery: %v", size, err)
		}
		if idx != uint64(wantRecords)+1 {
			t.Fatalf("truncation at %d: post-recovery index %d, want %d", size, idx, wantRecords+1)
		}
		n := 0
		if err := l2.Replay(func(uint64, []byte) error { n++; return nil }); err != nil {
			t.Fatalf("truncation at %d: replay: %v", size, err)
		}
		if n != wantRecords+1 {
			t.Fatalf("truncation at %d: replay sees %d records, want %d", size, n, wantRecords+1)
		}
		l2.Close()
	}
}

// TestTornTailBitFlip: corruption (not truncation) of the final frame is
// also repaired by dropping the damaged suffix.
func TestTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // inside the final record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.Records != 9 || rec.TornBytes == 0 {
		t.Fatalf("bit-flip recovery: %+v", rec)
	}
}

// Damage in a sealed (non-final) segment is corruption, not a crash: it
// must fail loudly instead of being truncated away.
func TestCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 600)
	for l.Stats().Segments < 2 {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 4 << 10}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt sealed segment: %v, want ErrCorrupt", err)
	}
	if err := ReplayDir(dir, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReplayDir over corrupt sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4 << 10, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 512)
	for i := 0; i < 60; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments > 2 {
		t.Fatalf("retention kept %d segments, want <= 2 (1 sealed + active)", st.Segments)
	}
	if st.FirstIndex <= 1 {
		t.Fatalf("retention did not advance FirstIndex: %+v", st)
	}
	// Replay only sees the retained suffix, still contiguous.
	var idxs []uint64
	if err := l.Replay(func(idx uint64, _ []byte) error {
		idxs = append(idxs, idx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 || idxs[0] != st.FirstIndex || idxs[len(idxs)-1] != st.LastIndex {
		t.Fatalf("retained replay range [%d,%d] vs stats %+v", idxs[0], idxs[len(idxs)-1], st)
	}
}

func TestReplayDirMatchesOpenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := collect(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := map[uint64][]byte{}
	if err := ReplayDir(dir, func(idx uint64, p []byte) error {
		got[idx] = append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ReplayDir saw %d records, Replay saw %d", len(got), len(want))
	}
	for idx, p := range want {
		if string(got[idx]) != string(p) {
			t.Fatalf("record %d differs between ReplayDir and Replay", idx)
		}
	}
	if err := ReplayDir(t.TempDir(), func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("ReplayDir over an empty directory should error")
	}
}
