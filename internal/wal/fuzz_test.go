package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// buildSegment assembles a valid segment image with the given payloads.
func buildSegment(first uint64, payloads ...[]byte) []byte {
	var buf bytes.Buffer
	var header [segHeaderSize]byte
	copy(header[0:8], segMagic[:])
	binary.BigEndian.PutUint32(header[8:12], walVersion)
	binary.BigEndian.PutUint64(header[12:20], first)
	buf.Write(header[:])
	for _, p := range payloads {
		var fh [frameHeader]byte
		binary.BigEndian.PutUint32(fh[0:4], uint32(len(p)))
		binary.BigEndian.PutUint32(fh[4:8], crc32.Checksum(p, castagnoli))
		buf.Write(fh[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzWALSegment drives the frame decoder (the code path under both crash
// recovery and replay) over arbitrary segment images: it must never
// panic, never report more intact bytes than the file holds, and must
// keep the frame-walk invariants (records consistent with the intact
// prefix, every delivered payload checksum-valid).
func FuzzWALSegment(f *testing.F) {
	valid := buildSegment(1, []byte("alpha"), []byte("bravo-longer"), []byte("c"))
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // torn tail
	f.Add(valid[:segHeaderSize])
	f.Add(valid[:7]) // inside the magic
	f.Add([]byte{})
	f.Add(buildSegment(900))
	// Frame claiming more bytes than the file has.
	huge := append(bytes.Clone(valid), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	f.Add(huge)
	for _, off := range []int{0, 9, 14, 21, 25, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x10
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var idxs []uint64
		first, intact, records, damage, err := scanSegmentCall(bytes.NewReader(data), func(idx uint64, payload []byte) {
			if len(payload) == 0 || len(payload) > maxRecord {
				t.Fatalf("decoder delivered an invalid payload of %d bytes", len(payload))
			}
			idxs = append(idxs, idx)
		})
		if err != nil {
			if len(idxs) != 0 {
				t.Fatal("decoder delivered records from a segment with an invalid header")
			}
			return
		}
		if records != len(idxs) {
			t.Fatalf("records=%d but callback saw %d", records, len(idxs))
		}
		for i, idx := range idxs {
			if idx != first+uint64(i) {
				t.Fatalf("record index %d out of sequence (want %d)", idx, first+uint64(i))
			}
		}
		if intact < segHeaderSize || intact > int64(len(data)) {
			t.Fatalf("intact offset %d out of range [%d,%d]", intact, segHeaderSize, len(data))
		}
		if damage < 0 || intact+damage != int64(len(data)) {
			t.Fatalf("intact %d + damage %d != size %d", intact, damage, len(data))
		}
	})
}
