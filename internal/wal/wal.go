// Package wal implements the segmented append-only write-ahead log that
// makes the live ingest→retrain→swap loop durable. Records are opaque
// byte payloads framed with a length and a CRC32C; frames are appended to
// segment files that rotate at a size threshold; and an explicit fsync
// policy bounds how much a power loss can take (one record, one batch, or
// one sync interval).
//
// Crash recovery is the point of the format: Open scans every segment,
// verifies each frame's checksum, truncates a torn tail off the final
// segment (a crash mid-write leaves a partial frame; everything before it
// is intact by construction), and reports exactly which records survived.
// A torn or corrupt frame in a non-final segment is not a crash signature
// — earlier segments were sealed by a sync before rotation — so it is
// reported as corruption instead of being silently dropped.
//
// The log knows nothing about its payloads. internal/stream encodes
// map-matched trajectory observations and retrain markers into it; replay
// tooling decodes them back out.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pathrank/internal/fault"
)

// Segment file layout (all integers big-endian):
//
//	offset  size  field
//	     0     8  magic "PRWALSEG"
//	     8     4  format version (uint32) = 1
//	    12     8  index of the segment's first record (uint64)
//	    20     *  frames
//
// Frame layout:
//
//	0     4  payload length n (uint32, 1..maxRecord)
//	4     4  CRC32C (Castagnoli) of the payload
//	8     n  payload
const (
	segHeaderSize = 20
	frameHeader   = 8
	walVersion    = 1
)

var segMagic = [8]byte{'P', 'R', 'W', 'A', 'L', 'S', 'E', 'G'}

// maxRecord bounds a single payload (16 MiB); a length field beyond it is
// treated as corruption rather than an allocation request.
const maxRecord = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Error sentinels, matchable with errors.Is.
var (
	// ErrCorrupt reports a damaged frame outside the final segment's tail
	// (where damage is a crash signature and is repaired by truncation).
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log is closed")
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncBatch fsyncs only on explicit Sync calls, rotation, and Close.
	// The caller decides the durability points (the stream retrainer syncs
	// before committing a generation); a crash loses records appended
	// since the last Sync. This is the default.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every Append. Nothing acknowledged is ever
	// lost, at the price of one fsync per record on the ingest path.
	SyncAlways
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery). A
	// crash loses at most one interval of records.
	SyncInterval
)

// String returns the flag-style name of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses the flag-style policy names "batch", "always"
// and "interval".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "batch":
		return SyncBatch, nil
	case "always", "record", "per-record":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	default:
		return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want batch, always or interval)", s)
	}
}

// Options parameterizes Open. The zero value is usable: 4 MiB segments,
// batch fsync, unlimited retention.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one reaches
	// this size (default 4 MiB, minimum 4 KiB). A record larger than the
	// threshold still fits: rotation happens between records, never inside
	// a frame.
	SegmentBytes int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 200ms).
	SyncEvery time.Duration
	// Retain, when positive, caps the number of sealed (non-active)
	// segments kept on disk: after each rotation the oldest are deleted
	// until the cap holds. 0 keeps everything — required for full-history
	// replay; see the README's retention trade-offs.
	Retain int
	// OnSync, when non-nil, observes the duration of every fsync batch as
	// it completes. The stream layer wires it into a latency histogram so
	// scrapes see the fsync distribution, not just the mean that Stats
	// reports. The callback runs with the log's lock held: it must be fast
	// and must not call back into the log.
	OnSync func(d time.Duration)
}

// Recovery describes what Open found on disk.
type Recovery struct {
	// Records is the number of intact records recovered.
	Records int
	// FirstIndex and LastIndex are the recovered record index range
	// (1-based; both 0 when the log was empty).
	FirstIndex, LastIndex uint64
	// Segments is the number of segment files after recovery.
	Segments int
	// TornBytes is the size of the torn tail truncated off the final
	// segment (0 for a clean shutdown).
	TornBytes int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Segments is the current number of segment files (including active).
	Segments int
	// FirstIndex and LastIndex bound the records currently in the log.
	FirstIndex, LastIndex uint64
	// SyncedIndex is the highest record index known to be on stable
	// storage; records above it are lost by a crash.
	SyncedIndex uint64
	// Appends counts successful Append calls since Open.
	Appends int64
	// Syncs counts fsync batches; SyncNanos accumulates their latency, so
	// SyncNanos/Syncs is the mean fsync cost under the current policy.
	Syncs     int64
	SyncNanos int64
	// Recovered and TornBytes carry the Open-time Recovery forward.
	Recovered int
	TornBytes int64
}

// Log is a segmented append-only record log. Append, Sync, Stats and
// Replay are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File // active segment
	size      int64    // bytes written to the active segment
	segs      []segInfo
	nextIndex uint64 // index the next Append receives
	synced    uint64 // highest index fsynced
	appends   int64
	syncs     int64
	syncNanos int64
	rec       Recovery
	closed    bool
	stopTick  chan struct{}
	tickDone  chan struct{}
}

// segInfo is one on-disk segment.
type segInfo struct {
	path  string
	first uint64 // index of its first record
}

// segName formats the canonical segment filename for a first index.
func segName(first uint64) string {
	return fmt.Sprintf("%016x.wal", first)
}

// Open opens (or creates) the log in dir, running crash recovery: every
// segment is scanned, a torn tail on the final segment is truncated, and
// the next append index is positioned after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SegmentBytes < 4<<10 {
		opts.SegmentBytes = 4 << 10
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 200 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, nextIndex: 1}

	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		path := filepath.Join(dir, name)
		info, err := recoverSegment(path, i == len(names)-1, &l.rec)
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, info)
	}
	l.rec.Segments = len(l.segs)
	if l.rec.Records > 0 {
		l.nextIndex = l.rec.LastIndex + 1
	} else if len(l.segs) > 0 {
		// Segments exist but hold no intact records (e.g. a crash right
		// after rotation): continue from the last segment's first index.
		l.nextIndex = l.segs[len(l.segs)-1].first
	}
	// Everything recovered is on disk by definition.
	l.synced = l.nextIndex - 1

	// Open (or create) the active segment for appending.
	if len(l.segs) == 0 {
		if err := l.openSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, st.Size()
	}

	if opts.Sync == SyncInterval {
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// listSegments returns the segment filenames in dir in index order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex first-index names sort correctly
	return names, nil
}

// recoverSegment validates one segment, accumulating intact records into
// rec. For the final segment a damaged tail is truncated off the file; for
// earlier segments any damage is ErrCorrupt.
func recoverSegment(path string, isLast bool, rec *Recovery) (segInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return segInfo{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	first, intact, records, damage, err := scanSegment(f)
	if err != nil {
		return segInfo{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if damage > 0 && !isLast {
		return segInfo{}, fmt.Errorf("%w: %s: damaged frame %d bytes before a later segment exists", ErrCorrupt, path, damage)
	}
	if damage > 0 {
		if err := f.Truncate(intact); err != nil {
			return segInfo{}, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return segInfo{}, fmt.Errorf("wal: %w", err)
		}
		rec.TornBytes += damage
	}
	if records > 0 {
		if rec.Records == 0 {
			rec.FirstIndex = first
		}
		rec.LastIndex = first + uint64(records) - 1
		rec.Records += records
	}
	return segInfo{path: path, first: first}, nil
}

// scanSegment reads a segment from its start, returning the first record
// index from the header, the byte offset after the last intact frame, the
// count of intact frames, and the number of trailing damaged bytes (0 for
// a clean segment). An unreadable header is an error.
func scanSegment(r io.ReadSeeker) (first uint64, intact int64, records int, damage int64, err error) {
	return scanSegmentCall(r, func(uint64, []byte) {})
}

// openSegmentLocked creates a fresh active segment starting at nextIndex
// and durably records its existence (file fsync + directory fsync), so a
// crash immediately after rotation cannot lose the segment itself.
func (l *Log) openSegmentLocked() error {
	if err := fault.Check(fault.SiteWALRotate); err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	path := filepath.Join(l.dir, segName(l.nextIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var header [segHeaderSize]byte
	copy(header[0:8], segMagic[:])
	binary.BigEndian.PutUint32(header[8:12], walVersion)
	binary.BigEndian.PutUint64(header[12:20], l.nextIndex)
	if _, err := f.Write(header[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.f, l.size = f, segHeaderSize
	l.segs = append(l.segs, segInfo{path: path, first: l.nextIndex})
	return nil
}

// syncDir fsyncs a directory so metadata operations (create, rename,
// remove) inside it survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}

// Append writes one record and returns its index (1-based, monotonically
// increasing across segments and restarts). Under SyncAlways the record is
// on stable storage when Append returns; under the other policies it is
// durable after the next Sync / interval tick.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// Chaos hook: an injected append failure is a clean rejection before
	// any frame bytes are written — the disk said no, the log stays intact.
	if err := fault.Check(fault.SiteWALAppend); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var fh [frameHeader]byte
	binary.BigEndian.PutUint32(fh[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(fh[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(fh[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.size += frameHeader + int64(len(payload))
	idx := l.nextIndex
	l.nextIndex++
	l.appends++
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// rotateLocked seals the active segment (fsync) and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.openSegmentLocked(); err != nil {
		return err
	}
	return l.retainLocked()
}

// retainLocked enforces Options.Retain by deleting the oldest sealed
// segments beyond the cap.
func (l *Log) retainLocked() error {
	if l.opts.Retain <= 0 {
		return nil
	}
	// Sealed segments are all but the last; keep the newest Retain of them.
	for len(l.segs)-1 > l.opts.Retain {
		victim := l.segs[0]
		if err := os.Remove(victim.path); err != nil {
			return fmt.Errorf("wal: retention: %w", err)
		}
		l.segs = l.segs[1:]
	}
	return syncDir(l.dir)
}

// Sync flushes everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.synced == l.nextIndex-1 {
		return nil // nothing new
	}
	// Chaos hook: placed after the nothing-new fast path so an injected
	// fsync failure only fires when there is genuinely unsynced data.
	if err := fault.Check(fault.SiteWALSync); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	d := time.Since(start)
	l.syncNanos += d.Nanoseconds()
	l.syncs++
	l.synced = l.nextIndex - 1
	if l.opts.OnSync != nil {
		l.opts.OnSync(d)
	}
	return nil
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer close(l.tickDone)
	tick := time.NewTicker(l.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-tick.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Replay streams every record currently in the log, in index order,
// through fn. It reads from disk, so it sees exactly what recovery after
// a clean shutdown would see. The payload slice is reused between calls —
// fn must copy anything it retains. fn returning an error stops the
// replay and propagates it. Replay must not run concurrently with Append:
// it would observe the in-progress frame as a torn tail. The stream layer
// replays once at startup, before the ingest workers exist.
func (l *Log) Replay(fn func(index uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	for _, seg := range segs {
		if err := replaySegment(seg.path, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReplayDir replays the records of a log directory without opening it for
// appending — the read-only path pathrank-train -replay uses. Damage on
// the final segment's tail is skipped (not repaired); damage anywhere else
// is ErrCorrupt.
func ReplayDir(dir string, fn func(index uint64, payload []byte) error) error {
	names, err := listSegments(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("wal: no segments in %s", dir)
	}
	for i, name := range names {
		path := filepath.Join(dir, name)
		damage, err := replaySegmentTolerant(path, fn)
		if err != nil {
			return err
		}
		if damage > 0 && i != len(names)-1 {
			return fmt.Errorf("%w: %s: damaged frame before a later segment exists", ErrCorrupt, path)
		}
	}
	return nil
}

// replaySegment replays one segment that is expected to be fully intact
// (it belongs to an open, recovered log).
func replaySegment(path string, fn func(uint64, []byte) error) error {
	damage, err := replaySegmentTolerant(path, fn)
	if err != nil {
		return err
	}
	if damage > 0 {
		return fmt.Errorf("%w: %s: damaged frame in recovered segment", ErrCorrupt, path)
	}
	return nil
}

// replaySegmentTolerant streams a segment's intact prefix through fn and
// returns how many trailing bytes were damaged.
func replaySegmentTolerant(path string, fn func(uint64, []byte) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var held error
	_, _, _, damage, err := scanSegmentCall(f, func(idx uint64, payload []byte) {
		if held == nil {
			held = fn(idx, payload)
		}
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if held != nil {
		return 0, held
	}
	return damage, nil
}

// scanSegmentCall is the one frame walk under both recovery and replay:
// it validates frames in order, invoking cb with each intact record's
// global index (header first index + offset) and a payload slice valid
// only for the duration of the call.
func scanSegmentCall(r io.ReadSeeker, cb func(uint64, []byte)) (first uint64, intact int64, records int, damage int64, err error) {
	if _, err = r.Seek(0, io.SeekStart); err != nil {
		return
	}
	end, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return
	}
	if _, err = r.Seek(0, io.SeekStart); err != nil {
		return
	}
	var header [segHeaderSize]byte
	if _, herr := io.ReadFull(r, header[:]); herr != nil {
		err = fmt.Errorf("short header: %v", herr)
		return
	}
	if [8]byte(header[0:8]) != segMagic {
		err = fmt.Errorf("bad magic %q", header[0:8])
		return
	}
	if v := binary.BigEndian.Uint32(header[8:12]); v != walVersion {
		err = fmt.Errorf("unsupported segment version %d", v)
		return
	}
	first = binary.BigEndian.Uint64(header[12:20])
	intact = segHeaderSize

	var fh [frameHeader]byte
	buf := make([]byte, 0, 4096)
	for {
		if end-intact == 0 {
			return
		}
		if end-intact < frameHeader {
			damage = end - intact
			return
		}
		if _, rerr := io.ReadFull(r, fh[:]); rerr != nil {
			damage = end - intact
			return
		}
		n := binary.BigEndian.Uint32(fh[0:4])
		if n == 0 || n > maxRecord || int64(n) > end-intact-frameHeader {
			damage = end - intact
			return
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		payload := buf[:n]
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			damage = end - intact
			return
		}
		if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(fh[4:8]) {
			damage = end - intact
			return
		}
		cb(first+uint64(records), payload)
		intact += frameHeader + int64(n)
		records++
	}
}

// LastIndex returns the index of the most recent record (0 if none).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextIndex - 1
}

// Recovery returns what Open found on disk.
func (l *Log) Recovery() Recovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:    len(l.segs),
		LastIndex:   l.nextIndex - 1,
		SyncedIndex: l.synced,
		Appends:     l.appends,
		Syncs:       l.syncs,
		SyncNanos:   l.syncNanos,
		Recovered:   l.rec.Records,
		TornBytes:   l.rec.TornBytes,
	}
	if len(l.segs) > 0 {
		st.FirstIndex = l.segs[0].first
	}
	return st
}

// Close syncs and closes the log. Further calls error with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	err := l.syncLocked()
	l.closed = true
	cerr := l.f.Close()
	stop := l.stopTick
	done := l.tickDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}
