package spath

import (
	"math"
	"math/rand"
	"testing"
)

func TestALTMatchesDijkstra(t *testing.T) {
	g := gridGraph(t, 8, 8)
	alt := BuildALT(g, ByLength, 4)
	if alt.NumLandmarks() != 4 {
		t.Fatalf("landmarks = %d, want 4", alt.NumLandmarks())
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		pd, errD := Dijkstra(g, src, dst, ByLength)
		pa, errA := alt.Query(src, dst)
		if (errD == nil) != (errA == nil) {
			t.Fatalf("src=%d dst=%d: dijkstra err=%v alt err=%v", src, dst, errD, errA)
		}
		if errD != nil {
			continue
		}
		if math.Abs(pd.Cost-pa.Cost) > 1e-6 {
			t.Fatalf("src=%d dst=%d: dijkstra %.4f vs ALT %.4f", src, dst, pd.Cost, pa.Cost)
		}
		if err := pa.Validate(g); err != nil {
			t.Fatalf("ALT path invalid: %v", err)
		}
	}
}

func TestALTByTime(t *testing.T) {
	g := gridGraph(t, 6, 6)
	alt := BuildALT(g, ByTime, 3)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		pd, errD := Dijkstra(g, src, dst, ByTime)
		pa, errA := alt.Query(src, dst)
		if errD != nil || errA != nil {
			continue
		}
		if math.Abs(pd.Cost-pa.Cost) > 1e-6 {
			t.Fatalf("time costs differ: %.4f vs %.4f", pd.Cost, pa.Cost)
		}
	}
}

func TestALTHeuristicAdmissible(t *testing.T) {
	g := gridGraph(t, 6, 6)
	alt := BuildALT(g, ByLength, 3)
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		v := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		p, err := Dijkstra(g, v, dst, ByLength)
		if err != nil {
			continue
		}
		if h := alt.heuristic(v, dst); h > p.Cost+1e-6 {
			t.Fatalf("heuristic %.4f exceeds true distance %.4f (v=%d dst=%d)", h, p.Cost, v, dst)
		}
	}
}

func TestALTSelfAndClamping(t *testing.T) {
	g := gridGraph(t, 5, 5)
	alt := BuildALT(g, ByLength, 1000) // clamped to vertex count
	if alt.NumLandmarks() > g.NumVertices() {
		t.Fatalf("landmarks %d exceed vertices %d", alt.NumLandmarks(), g.NumVertices())
	}
	p, err := alt.Query(2, 2)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self query: len=%d err=%v", p.Len(), err)
	}
	altMin := BuildALT(g, ByLength, 0) // clamped to 1
	if altMin.NumLandmarks() != 1 {
		t.Fatalf("landmarks = %d, want 1", altMin.NumLandmarks())
	}
}

func TestALTNoPath(t *testing.T) {
	g := disconnectedPair(t)
	alt := BuildALT(g, ByLength, 1)
	if _, err := alt.Query(0, 1); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}
