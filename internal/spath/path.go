// Package spath implements shortest-path search over road networks:
// Dijkstra, A* with a geographic lower bound, bidirectional Dijkstra, Yen's
// top-k shortest paths, and the diversified top-k variant (D-TkDI) used by
// PathRank to generate training candidates.
//
// All algorithms operate on a Weight function so the same code serves
// shortest-distance and fastest-time queries.
package spath

import (
	"fmt"
	"math"

	"pathrank/internal/roadnet"
)

// Weight extracts the cost of traversing an edge. Costs must be positive.
type Weight func(e roadnet.Edge) float64

// ByLength weights an edge by its length in meters.
func ByLength(e roadnet.Edge) float64 { return e.Length }

// ByTime weights an edge by its free-flow travel time in seconds.
func ByTime(e roadnet.Edge) float64 { return e.Time }

// Path is a connected sequence of edges through a graph. Vertices holds the
// visited vertex sequence (len(Edges)+1 entries) and Cost the total weight
// under the query's Weight function.
type Path struct {
	Vertices []roadnet.VertexID
	Edges    []roadnet.EdgeID
	Cost     float64
}

// Source returns the first vertex. It panics on an empty path.
func (p Path) Source() roadnet.VertexID { return p.Vertices[0] }

// Destination returns the last vertex. It panics on an empty path.
func (p Path) Destination() roadnet.VertexID { return p.Vertices[len(p.Vertices)-1] }

// Len returns the number of edges.
func (p Path) Len() int { return len(p.Edges) }

// Length returns the total geometric length of the path in meters.
func (p Path) Length(g *roadnet.Graph) float64 {
	var sum float64
	for _, eid := range p.Edges {
		sum += g.Edge(eid).Length
	}
	return sum
}

// Time returns the total free-flow travel time in seconds.
func (p Path) Time(g *roadnet.Graph) float64 {
	var sum float64
	for _, eid := range p.Edges {
		sum += g.Edge(eid).Time
	}
	return sum
}

// Equal reports whether two paths traverse the same edge sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// Validate checks that the path is connected in g, starts at its declared
// source, and is free of repeated vertices (simple).
func (p Path) Validate(g *roadnet.Graph) error {
	if len(p.Vertices) == 0 {
		return fmt.Errorf("spath: empty path")
	}
	if len(p.Vertices) != len(p.Edges)+1 {
		return fmt.Errorf("spath: %d vertices but %d edges", len(p.Vertices), len(p.Edges))
	}
	seen := make(map[roadnet.VertexID]bool, len(p.Vertices))
	for i, eid := range p.Edges {
		e := g.Edge(eid)
		if e.From != p.Vertices[i] || e.To != p.Vertices[i+1] {
			return fmt.Errorf("spath: edge %d (%d->%d) does not connect vertices %d->%d at position %d",
				eid, e.From, e.To, p.Vertices[i], p.Vertices[i+1], i)
		}
	}
	for _, v := range p.Vertices {
		if seen[v] {
			return fmt.Errorf("spath: vertex %d repeated (path is not simple)", v)
		}
		seen[v] = true
	}
	return nil
}

// Clone returns a deep copy of p.
func (p Path) Clone() Path {
	return Path{
		Vertices: append([]roadnet.VertexID(nil), p.Vertices...),
		Edges:    append([]roadnet.EdgeID(nil), p.Edges...),
		Cost:     p.Cost,
	}
}

// ErrNoPath is returned when the destination is unreachable.
var ErrNoPath = fmt.Errorf("spath: no path exists")

// item is a priority-queue entry.
type item struct {
	v    roadnet.VertexID
	dist float64
}

// minHeap is a binary min-heap over items keyed by dist. A hand-rolled heap
// avoids container/heap's interface boxing in the hottest loop of the
// library.
type minHeap struct{ a []item }

func (h *minHeap) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].dist <= h.a[i].dist {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *minHeap) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l].dist < h.a[small].dist {
			small = l
		}
		if r < last && h.a[r].dist < h.a[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

func (h *minHeap) empty() bool { return len(h.a) == 0 }

// reconstruct walks parent edge pointers from dst back to src.
func reconstruct(g *roadnet.Graph, parentEdge []roadnet.EdgeID, src, dst roadnet.VertexID, cost float64) Path {
	var edges []roadnet.EdgeID
	v := dst
	for v != src {
		eid := parentEdge[v]
		edges = append(edges, eid)
		v = g.Edge(eid).From
	}
	// Reverse in place.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, g.Edge(eid).To)
	}
	return Path{Vertices: vertices, Edges: edges, Cost: cost}
}

const unreached = math.MaxFloat64
