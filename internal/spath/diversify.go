package spath

import (
	"sort"

	"pathrank/internal/roadnet"
)

// Similarity scores the overlap of two paths in [0,1], where 1 means
// identical. Implementations live in internal/pathsim; the indirection keeps
// spath free of a dependency cycle.
type Similarity func(a, b Path) float64

// DiversifiedTopK returns up to k loopless paths from src to dst such that
// every pair of returned paths has similarity at most threshold, in
// increasing cost order. This implements the paper's D-TkDI strategy
// ("diversified top-k shortest paths w.r.t. distance"): candidates are
// enumerated in Yen order and greedily accepted if sufficiently dissimilar
// from all previously accepted paths.
//
// maxProbe bounds how many Yen paths are enumerated while looking for
// diverse ones (a multiple of k, e.g. 10*k); a loose bound keeps worst-case
// latency predictable on dense networks.
func DiversifiedTopK(g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight, sim Similarity, threshold float64, maxProbe int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	if maxProbe < k {
		maxProbe = 10 * k
	}
	all, err := TopK(g, src, dst, maxProbe, w)
	if err != nil {
		return nil, err
	}
	accepted := make([]Path, 0, k)
	for _, p := range all {
		ok := true
		for _, q := range accepted {
			if sim(p, q) > threshold {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, p)
			if len(accepted) == k {
				break
			}
		}
	}
	// Yen emits in cost order and the greedy filter preserves it, but sort
	// defensively in case a Similarity implementation mutated costs.
	sort.Slice(accepted, func(a, b int) bool { return accepted[a].Cost < accepted[b].Cost })
	return accepted, nil
}
