package spath

import (
	"context"
	"sort"

	"pathrank/internal/roadnet"
)

// Similarity scores the overlap of two paths in [0,1], where 1 means
// identical. Implementations live in internal/pathsim; the indirection keeps
// spath free of a dependency cycle.
type Similarity func(a, b Path) float64

// DiversifiedTopK returns up to k loopless paths from src to dst such that
// every pair of returned paths has similarity at most threshold, in
// increasing cost order. This implements the paper's D-TkDI strategy
// ("diversified top-k shortest paths w.r.t. distance"): candidates are
// enumerated in Yen order and greedily accepted if sufficiently dissimilar
// from all previously accepted paths.
//
// maxProbe bounds how many Yen paths are enumerated while looking for
// diverse ones (a multiple of k, e.g. 10*k); a loose bound keeps worst-case
// latency predictable on dense networks. Enumeration is lazy: it stops as
// soon as k diverse paths are accepted, so the typical query enumerates a
// small fraction of the probe budget — the accepted set is identical to
// enumerating all maxProbe paths first and filtering afterwards, because
// the greedy filter never looks ahead.
func DiversifiedTopK(g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight, sim Similarity, threshold float64, maxProbe int) ([]Path, error) {
	return DiversifiedTopKCtx(context.Background(), g, src, dst, k, w, sim, threshold, maxProbe)
}

// DiversifiedTopKCtx is DiversifiedTopK honoring ctx; see TopKCtx for the
// cancellation contract.
func DiversifiedTopKCtx(ctx context.Context, g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight, sim Similarity, threshold float64, maxProbe int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	if maxProbe < k {
		maxProbe = 10 * k
	}
	ws := GetWorkspace(g)
	defer ws.Release()
	ws.bindContext(ctx)
	first, err := ws.Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, err
	}
	ws.fillWeights(g, w)
	ws.setGoal(g, dst)
	y := newYenEnum(g, ws, w, dst, first)
	accepted := diversify(y, k, sim, threshold, maxProbe)
	if ws.ctxErr != nil {
		return nil, ws.ctxErr
	}
	return accepted, nil
}

// DiversifiedTopKEngine is DiversifiedTopK running on a prepared Engine;
// see TopKEngine for how the engine accelerates the enumeration.
func DiversifiedTopKEngine(e Engine, src, dst roadnet.VertexID, k int, sim Similarity, threshold float64, maxProbe int) ([]Path, error) {
	return DiversifiedTopKEngineCtx(context.Background(), e, src, dst, k, sim, threshold, maxProbe)
}

// DiversifiedTopKEngineCtx is DiversifiedTopKEngine honoring ctx; see
// TopKCtx for the cancellation contract.
func DiversifiedTopKEngineCtx(ctx context.Context, e Engine, src, dst roadnet.VertexID, k int, sim Similarity, threshold float64, maxProbe int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	if maxProbe < k {
		maxProbe = 10 * k
	}
	g := e.Graph()
	ws := GetWorkspace(g)
	defer ws.Release()
	first, err := e.ShortestCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	ws.bindContext(ctx)
	w := e.Weight()
	ws.fillWeights(g, w)
	ws.setGoalAux(g, dst, e.spurHeuristic(dst))
	y := newYenEnum(g, ws, w, dst, first)
	accepted := diversify(y, k, sim, threshold, maxProbe)
	if ws.ctxErr != nil {
		return nil, ws.ctxErr
	}
	return accepted, nil
}

// diversify pulls paths from the enumerator in Yen order, greedily
// accepting each one that is dissimilar from everything accepted so far,
// until k are accepted, maxProbe paths have been examined, or the
// enumeration is exhausted.
func diversify(y *yenEnum, k int, sim Similarity, threshold float64, maxProbe int) []Path {
	accepted := make([]Path, 0, k)
	p := y.paths[0]
	probes := 1
	for {
		ok := true
		for _, q := range accepted {
			if sim(p, q) > threshold {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, p)
			if len(accepted) == k {
				break
			}
		}
		if probes >= maxProbe {
			break
		}
		var more bool
		p, more = y.next()
		if !more {
			break
		}
		probes++
	}
	// Yen emits in cost order and the greedy filter preserves it, but sort
	// defensively in case a Similarity implementation mutated costs.
	sort.Slice(accepted, func(a, b int) bool { return accepted[a].Cost < accepted[b].Cost })
	return accepted
}
