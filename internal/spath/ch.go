package spath

import (
	"math"
	"sort"

	"pathrank/internal/roadnet"
)

// ContractionHierarchy is a preprocessing-based speedup for shortest-path
// queries (Geisberger et al. 2008): vertices are contracted in importance
// order, inserting shortcut edges that preserve distances, and queries run
// a bidirectional upward search in the augmented graph. It backs the
// "advanced routing" component for interactive candidate generation on
// larger networks.
//
// The hierarchy is built for one Weight function; build one hierarchy per
// metric of interest.
type ContractionHierarchy struct {
	g     *roadnet.Graph
	order []int32 // order[v] = contraction rank of v (higher = more important)

	// Augmented upward/downward adjacency. Shortcuts store the contracted
	// middle vertex for path unpacking; original edges store mid = -1 and
	// the edge ID.
	upHead, downHead []int32
	upNext, downNext []int32
	arcFrom, arcTo   []int32
	arcWeight        []float64
	arcMid           []int32
	arcEdge          []roadnet.EdgeID

	// arcIndex maps (from<<32|to) to the minimum-weight arc for shortcut
	// unpacking.
	arcIndex map[int64]int32
}

// chArc is a temporary arc during construction.
type chArc struct {
	from, to int32
	weight   float64
	mid      int32
	edge     roadnet.EdgeID
}

// BuildCH preprocesses g under w. Construction uses a lazy-update priority
// queue over the edge-difference heuristic.
func BuildCH(g *roadnet.Graph, w Weight) *ContractionHierarchy {
	n := g.NumVertices()

	// Working adjacency (mutable during contraction): out and in arc lists
	// per vertex over remaining (uncontracted) vertices.
	type dynArc struct {
		other  int32
		weight float64
		mid    int32
		edge   roadnet.EdgeID
	}
	out := make([][]dynArc, n)
	in := make([][]dynArc, n)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		wt := w(e)
		out[e.From] = append(out[e.From], dynArc{other: int32(e.To), weight: wt, mid: -1, edge: e.ID})
		in[e.To] = append(in[e.To], dynArc{other: int32(e.From), weight: wt, mid: -1, edge: e.ID})
	}
	contracted := make([]bool, n)

	// witnessSearch checks whether a path from s to t avoiding v with cost
	// <= bound exists, using a bounded Dijkstra over remaining vertices.
	witnessSearch := func(s, t, v int32, bound float64) bool {
		const maxSettle = 60
		dist := map[int32]float64{s: 0}
		h := &vertexHeapCH{}
		h.push(chItem{v: s})
		settled := 0
		for h.len() > 0 && settled < maxSettle {
			it := h.pop()
			if it.dist > dist[it.v] {
				continue
			}
			if it.v == t {
				return it.dist <= bound
			}
			if it.dist > bound {
				return false
			}
			settled++
			for _, a := range out[it.v] {
				if contracted[a.other] || a.other == v {
					continue
				}
				nd := it.dist + a.weight
				if cur, ok := dist[a.other]; !ok || nd < cur {
					dist[a.other] = nd
					h.push(chItem{v: a.other, dist: nd})
				}
			}
		}
		d, ok := dist[t]
		return ok && d <= bound
	}

	// simulate counts the shortcuts contraction of v would add.
	simulate := func(v int32, insert bool) int {
		added := 0
		for _, ia := range in[v] {
			if contracted[ia.other] {
				continue
			}
			for _, oa := range out[v] {
				if contracted[oa.other] || ia.other == oa.other {
					continue
				}
				through := ia.weight + oa.weight
				if witnessSearch(ia.other, oa.other, v, through) {
					continue
				}
				added++
				if insert {
					out[ia.other] = append(out[ia.other], dynArc{other: oa.other, weight: through, mid: v})
					in[oa.other] = append(in[oa.other], dynArc{other: ia.other, weight: through, mid: v})
				}
			}
		}
		return added
	}

	degree := func(v int32) int {
		d := 0
		for _, a := range out[v] {
			if !contracted[a.other] {
				d++
			}
		}
		for _, a := range in[v] {
			if !contracted[a.other] {
				d++
			}
		}
		return d
	}
	priority := func(v int32) int { return simulate(v, false)*2 - degree(v) }

	// Lazy priority queue.
	type pqItem struct {
		v    int32
		prio int
	}
	pq := make([]pqItem, 0, n)
	for v := 0; v < n; v++ {
		pq = append(pq, pqItem{v: int32(v), prio: priority(int32(v))})
	}
	sort.Slice(pq, func(a, b int) bool { return pq[a].prio < pq[b].prio })

	order := make([]int32, n)
	var allArcs []chArc
	rank := int32(0)
	// Collect original edges as arcs once; shortcuts appended during
	// contraction.
	for v := 0; v < n; v++ {
		for _, a := range out[v] {
			allArcs = append(allArcs, chArc{from: int32(v), to: a.other, weight: a.weight, mid: -1, edge: a.edge})
		}
	}

	heapify := func() {
		sort.Slice(pq, func(a, b int) bool { return pq[a].prio < pq[b].prio })
	}
	for len(pq) > 0 {
		top := pq[0]
		if contracted[top.v] {
			pq = pq[1:]
			continue
		}
		// Lazy update: recompute priority; if it's no longer minimal,
		// re-sort (amortized acceptable at our network sizes).
		np := priority(top.v)
		if len(pq) > 1 && np > pq[1].prio {
			pq[0].prio = np
			heapify()
			continue
		}
		pq = pq[1:]
		v := top.v
		// Insert shortcuts for v, recording them as arcs.
		for _, ia := range in[v] {
			if contracted[ia.other] {
				continue
			}
			for _, oa := range out[v] {
				if contracted[oa.other] || ia.other == oa.other {
					continue
				}
				through := ia.weight + oa.weight
				if witnessSearch(ia.other, oa.other, v, through) {
					continue
				}
				out[ia.other] = append(out[ia.other], dynArc{other: oa.other, weight: through, mid: v})
				in[oa.other] = append(in[oa.other], dynArc{other: ia.other, weight: through, mid: v})
				allArcs = append(allArcs, chArc{from: ia.other, to: oa.other, weight: through, mid: v})
			}
		}
		contracted[v] = true
		order[v] = rank
		rank++
	}

	ch := &ContractionHierarchy{g: g, order: order}
	ch.buildAdjacency(allArcs)
	return ch
}

// buildAdjacency splits arcs into upward (rank increases) and downward
// (rank decreases, stored reversed) linked adjacency lists.
func (ch *ContractionHierarchy) buildAdjacency(arcs []chArc) {
	n := ch.g.NumVertices()
	ch.upHead = make([]int32, n)
	ch.downHead = make([]int32, n)
	for i := range ch.upHead {
		ch.upHead[i] = -1
		ch.downHead[i] = -1
	}
	ch.arcIndex = make(map[int64]int32, len(arcs))
	for _, a := range arcs {
		idx := int32(len(ch.arcFrom))
		ch.arcFrom = append(ch.arcFrom, a.from)
		ch.arcTo = append(ch.arcTo, a.to)
		ch.arcWeight = append(ch.arcWeight, a.weight)
		ch.arcMid = append(ch.arcMid, a.mid)
		ch.arcEdge = append(ch.arcEdge, a.edge)
		key := int64(a.from)<<32 | int64(uint32(a.to))
		if prev, ok := ch.arcIndex[key]; !ok || a.weight < ch.arcWeight[prev] {
			ch.arcIndex[key] = idx
		}
		if ch.order[a.to] > ch.order[a.from] {
			ch.upNext = append(ch.upNext, ch.upHead[a.from])
			ch.downNext = append(ch.downNext, -1)
			ch.upHead[a.from] = idx
		} else {
			ch.downNext = append(ch.downNext, ch.downHead[a.to])
			ch.upNext = append(ch.upNext, -1)
			ch.downHead[a.to] = idx
		}
	}
}

// NumShortcuts returns the number of shortcut arcs added by preprocessing.
func (ch *ContractionHierarchy) NumShortcuts() int {
	n := 0
	for _, m := range ch.arcMid {
		if m >= 0 {
			n++
		}
	}
	return n
}

// chItem / vertexHeapCH: small map-backed binary heap for CH searches.
type chItem struct {
	v    int32
	dist float64
}

type vertexHeapCH struct{ a []chItem }

func (h *vertexHeapCH) len() int { return len(h.a) }

func (h *vertexHeapCH) push(it chItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].dist <= h.a[i].dist {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *vertexHeapCH) pop() chItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l].dist < h.a[s].dist {
			s = l
		}
		if r < last && h.a[r].dist < h.a[s].dist {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// Query returns a minimum-cost path from src to dst, unpacking shortcuts
// into original edges. Costs equal Dijkstra's on the original graph.
func (ch *ContractionHierarchy) Query(src, dst roadnet.VertexID) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	distF := map[int32]float64{int32(src): 0}
	distB := map[int32]float64{int32(dst): 0}
	parentF := map[int32]int32{} // vertex -> arc index
	parentB := map[int32]int32{}
	hf, hb := &vertexHeapCH{}, &vertexHeapCH{}
	hf.push(chItem{v: int32(src)})
	hb.push(chItem{v: int32(dst)})

	best := math.Inf(1)
	meet := int32(-1)
	relax := func(h *vertexHeapCH, dist map[int32]float64, parent map[int32]int32, head []int32, next []int32, forward bool) {
		it := h.pop()
		if it.dist > dist[it.v] {
			return
		}
		if other, ok := otherDist(forward, distF, distB, it.v); ok && it.dist+other < best {
			best = it.dist + other
			meet = it.v
		}
		for ai := head[it.v]; ai >= 0; ai = next[ai] {
			var to int32
			if forward {
				to = ch.arcTo[ai]
			} else {
				to = ch.arcFrom[ai]
			}
			nd := it.dist + ch.arcWeight[ai]
			if cur, ok := dist[to]; !ok || nd < cur {
				dist[to] = nd
				parent[to] = ai
				h.push(chItem{v: to, dist: nd})
			}
		}
	}
	for hf.len() > 0 || hb.len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if hf.len() > 0 {
			topF = hf.a[0].dist
		}
		if hb.len() > 0 {
			topB = hb.a[0].dist
		}
		if math.Min(topF, topB) >= best {
			break
		}
		if topF <= topB {
			relax(hf, distF, parentF, ch.upHead, ch.upNext, true)
		} else {
			relax(hb, distB, parentB, ch.downHead, ch.downNext, false)
		}
	}
	if meet < 0 {
		return Path{}, ErrNoPath
	}

	// Reconstruct arc sequences to/from the meeting vertex.
	var upArcs []int32
	for v := meet; v != int32(src); {
		ai := parentF[v]
		upArcs = append(upArcs, ai)
		v = ch.arcFrom[ai]
	}
	for i, j := 0, len(upArcs)-1; i < j; i, j = i+1, j-1 {
		upArcs[i], upArcs[j] = upArcs[j], upArcs[i]
	}
	var downArcs []int32
	for v := meet; v != int32(dst); {
		ai := parentB[v]
		downArcs = append(downArcs, ai)
		v = ch.arcTo[ai]
	}

	var edges []roadnet.EdgeID
	for _, ai := range upArcs {
		ch.unpack(ai, &edges)
	}
	for _, ai := range downArcs {
		ch.unpack(ai, &edges)
	}
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, ch.g.Edge(eid).To)
	}
	return Path{Vertices: vertices, Edges: edges, Cost: best}, nil
}

func otherDist(forward bool, distF, distB map[int32]float64, v int32) (float64, bool) {
	if forward {
		d, ok := distB[v]
		return d, ok
	}
	d, ok := distF[v]
	return d, ok
}

// unpack recursively expands a (possibly shortcut) arc into original edges.
func (ch *ContractionHierarchy) unpack(ai int32, edges *[]roadnet.EdgeID) {
	mid := ch.arcMid[ai]
	if mid < 0 {
		*edges = append(*edges, ch.arcEdge[ai])
		return
	}
	from, to := ch.arcFrom[ai], ch.arcTo[ai]
	ch.unpack(ch.arcIndex[int64(from)<<32|int64(uint32(mid))], edges)
	ch.unpack(ch.arcIndex[int64(mid)<<32|int64(uint32(to))], edges)
}
