package spath

import (
	"context"
	"math"
	"sort"
	"sync"

	"pathrank/internal/roadnet"
)

// ContractionHierarchy is a preprocessing-based speedup for shortest-path
// queries (Geisberger et al. 2008): vertices are contracted in importance
// order, inserting shortcut edges that preserve distances, and queries run
// a bidirectional upward search in the augmented graph. It backs the
// "advanced routing" component for interactive candidate generation on
// larger networks.
//
// The hierarchy is built for one Weight function; build one hierarchy per
// metric of interest. A built hierarchy is immutable and safe for
// concurrent queries: per-query state lives in a pooled chWorkspace, so
// Query and ManyToMany allocate only their results.
type ContractionHierarchy struct {
	g     *roadnet.Graph
	order []int32 // order[v] = contraction rank of v (higher = more important)

	// Augmented arc set. Shortcuts store the contracted middle vertex for
	// path unpacking; original edges store mid = -1 and the edge ID.
	arcFrom, arcTo []int32
	arcWeight      []float64
	arcMid         []int32
	arcEdge        []roadnet.EdgeID

	// CSR adjacency over the augmented arcs: upward arcs (rank increases)
	// grouped by tail for the forward search, downward arcs (rank
	// decreases) grouped by head for the backward search.
	upStart, upArcs     []int32
	downStart, downArcs []int32

	// arcIndex maps (from<<32|to) to the minimum-weight arc for shortcut
	// unpacking. Hierarchies assembled from a persisted artifact use the
	// sorted idxKeys/idxVals pair instead (binary search, no O(arcs) map
	// build at load time); exactly one of the two representations is set.
	arcIndex map[int64]int32
	idxKeys  []int64
	idxVals  []int32
}

// chArc is a temporary arc during construction.
type chArc struct {
	from, to int32
	weight   float64
	mid      int32
	edge     roadnet.EdgeID
}

// BuildCH preprocesses g under w. Construction uses a lazy-update priority
// queue over the edge-difference heuristic.
func BuildCH(g *roadnet.Graph, w Weight) *ContractionHierarchy {
	n := g.NumVertices()

	// Working adjacency (mutable during contraction): out and in arc lists
	// per vertex over remaining (uncontracted) vertices.
	type dynArc struct {
		other  int32
		weight float64
		mid    int32
		edge   roadnet.EdgeID
	}
	out := make([][]dynArc, n)
	in := make([][]dynArc, n)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		wt := w(e)
		out[e.From] = append(out[e.From], dynArc{other: int32(e.To), weight: wt, mid: -1, edge: e.ID})
		in[e.To] = append(in[e.To], dynArc{other: int32(e.From), weight: wt, mid: -1, edge: e.ID})
	}
	contracted := make([]bool, n)

	// witnessSearch checks whether a path from s to t avoiding v with cost
	// <= bound exists, using a bounded Dijkstra over remaining vertices.
	witnessSearch := func(s, t, v int32, bound float64) bool {
		const maxSettle = 60
		dist := map[int32]float64{s: 0}
		h := &vertexHeapCH{}
		h.push(chItem{v: s})
		settled := 0
		for h.len() > 0 && settled < maxSettle {
			it := h.pop()
			if it.dist > dist[it.v] {
				continue
			}
			if it.v == t {
				return it.dist <= bound
			}
			if it.dist > bound {
				return false
			}
			settled++
			for _, a := range out[it.v] {
				if contracted[a.other] || a.other == v {
					continue
				}
				nd := it.dist + a.weight
				if cur, ok := dist[a.other]; !ok || nd < cur {
					dist[a.other] = nd
					h.push(chItem{v: a.other, dist: nd})
				}
			}
		}
		d, ok := dist[t]
		return ok && d <= bound
	}

	// simulate counts the shortcuts contraction of v would add.
	simulate := func(v int32, insert bool) int {
		added := 0
		for _, ia := range in[v] {
			if contracted[ia.other] {
				continue
			}
			for _, oa := range out[v] {
				if contracted[oa.other] || ia.other == oa.other {
					continue
				}
				through := ia.weight + oa.weight
				if witnessSearch(ia.other, oa.other, v, through) {
					continue
				}
				added++
				if insert {
					out[ia.other] = append(out[ia.other], dynArc{other: oa.other, weight: through, mid: v})
					in[oa.other] = append(in[oa.other], dynArc{other: ia.other, weight: through, mid: v})
				}
			}
		}
		return added
	}

	degree := func(v int32) int {
		d := 0
		for _, a := range out[v] {
			if !contracted[a.other] {
				d++
			}
		}
		for _, a := range in[v] {
			if !contracted[a.other] {
				d++
			}
		}
		return d
	}
	priority := func(v int32) int { return simulate(v, false)*2 - degree(v) }

	// Lazy priority queue.
	type pqCH struct {
		v    int32
		prio int
	}
	pq := make([]pqCH, 0, n)
	for v := 0; v < n; v++ {
		pq = append(pq, pqCH{v: int32(v), prio: priority(int32(v))})
	}
	sort.Slice(pq, func(a, b int) bool { return pq[a].prio < pq[b].prio })

	order := make([]int32, n)
	var allArcs []chArc
	rank := int32(0)
	// Collect original edges as arcs once; shortcuts appended during
	// contraction.
	for v := 0; v < n; v++ {
		for _, a := range out[v] {
			allArcs = append(allArcs, chArc{from: int32(v), to: a.other, weight: a.weight, mid: -1, edge: a.edge})
		}
	}

	heapify := func() {
		sort.Slice(pq, func(a, b int) bool { return pq[a].prio < pq[b].prio })
	}
	for len(pq) > 0 {
		top := pq[0]
		if contracted[top.v] {
			pq = pq[1:]
			continue
		}
		// Lazy update: recompute priority; if it's no longer minimal,
		// re-sort (amortized acceptable at our network sizes).
		np := priority(top.v)
		if len(pq) > 1 && np > pq[1].prio {
			pq[0].prio = np
			heapify()
			continue
		}
		pq = pq[1:]
		v := top.v
		// Insert shortcuts for v, recording them as arcs.
		for _, ia := range in[v] {
			if contracted[ia.other] {
				continue
			}
			for _, oa := range out[v] {
				if contracted[oa.other] || ia.other == oa.other {
					continue
				}
				through := ia.weight + oa.weight
				if witnessSearch(ia.other, oa.other, v, through) {
					continue
				}
				out[ia.other] = append(out[ia.other], dynArc{other: oa.other, weight: through, mid: v})
				in[oa.other] = append(in[oa.other], dynArc{other: ia.other, weight: through, mid: v})
				allArcs = append(allArcs, chArc{from: ia.other, to: oa.other, weight: through, mid: v})
			}
		}
		contracted[v] = true
		order[v] = rank
		rank++
	}

	ch := &ContractionHierarchy{g: g, order: order}
	ch.setArcs(allArcs)
	return ch
}

// setArcs installs the augmented arc set and derives the CSR upward and
// downward adjacency plus the unpacking index. It is shared by BuildCH and
// the Prep deserializer.
func (ch *ContractionHierarchy) setArcs(arcs []chArc) {
	m := len(arcs)
	ch.arcFrom = make([]int32, m)
	ch.arcTo = make([]int32, m)
	ch.arcWeight = make([]float64, m)
	ch.arcMid = make([]int32, m)
	ch.arcEdge = make([]roadnet.EdgeID, m)
	for i, a := range arcs {
		ch.arcFrom[i] = a.from
		ch.arcTo[i] = a.to
		ch.arcWeight[i] = a.weight
		ch.arcMid[i] = a.mid
		ch.arcEdge[i] = a.edge
	}
	ch.buildAdjacency()
}

// buildAdjacency splits the installed arcs into upward (rank increases,
// grouped by tail) and downward (rank decreases, grouped by head) CSR
// adjacency and rebuilds the unpacking index.
func (ch *ContractionHierarchy) buildAdjacency() {
	n := ch.g.NumVertices()
	m := len(ch.arcFrom)
	ch.upStart = make([]int32, n+1)
	ch.downStart = make([]int32, n+1)
	ch.arcIndex = make(map[int64]int32, m)
	for i := 0; i < m; i++ {
		from, to := ch.arcFrom[i], ch.arcTo[i]
		key := int64(from)<<32 | int64(uint32(to))
		if prev, ok := ch.arcIndex[key]; !ok || ch.arcWeight[i] < ch.arcWeight[prev] {
			ch.arcIndex[key] = int32(i)
		}
		if ch.order[to] > ch.order[from] {
			ch.upStart[from+1]++
		} else {
			ch.downStart[to+1]++
		}
	}
	for v := 0; v < n; v++ {
		ch.upStart[v+1] += ch.upStart[v]
		ch.downStart[v+1] += ch.downStart[v]
	}
	ch.upArcs = make([]int32, ch.upStart[n])
	ch.downArcs = make([]int32, ch.downStart[n])
	upPos := make([]int32, n)
	downPos := make([]int32, n)
	copy(upPos, ch.upStart[:n])
	copy(downPos, ch.downStart[:n])
	for i := 0; i < m; i++ {
		from, to := ch.arcFrom[i], ch.arcTo[i]
		if ch.order[to] > ch.order[from] {
			ch.upArcs[upPos[from]] = int32(i)
			upPos[from]++
		} else {
			ch.downArcs[downPos[to]] = int32(i)
			downPos[to]++
		}
	}
}

// NumShortcuts returns the number of shortcut arcs added by preprocessing.
func (ch *ContractionHierarchy) NumShortcuts() int {
	n := 0
	for _, m := range ch.arcMid {
		if m >= 0 {
			n++
		}
	}
	return n
}

// NumArcs returns the total number of arcs (original edges + shortcuts) in
// the augmented search graph.
func (ch *ContractionHierarchy) NumArcs() int { return len(ch.arcFrom) }

// chItem / vertexHeapCH: small map-backed binary heap used only during
// construction's witness searches (sparse, short-lived).
type chItem struct {
	v    int32
	dist float64
}

type vertexHeapCH struct{ a []chItem }

func (h *vertexHeapCH) len() int { return len(h.a) }

func (h *vertexHeapCH) push(it chItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].dist <= h.a[i].dist {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *vertexHeapCH) pop() chItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l].dist < h.a[s].dist {
			s = l
		}
		if r < last && h.a[r].dist < h.a[s].dist {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// --- Pooled query workspace ---

// chWorkspace holds the per-query state of CH searches: forward/backward
// distance, parent-arc and reach-stamp arrays plus the two indexed heaps,
// and the bucket store for many-to-many queries. Starting a new search
// bumps a generation counter instead of clearing the arrays, so query setup
// is O(1) regardless of graph size and steady-state queries do not allocate.
type chWorkspace struct {
	distF, distB     []float64
	parentF, parentB []int32 // arc index per vertex
	reachF, reachB   []uint32
	gen              uint32
	heapF, heapB     heap4

	// Bucket store for ManyToMany: per-vertex singly linked lists of
	// (target index, distance) entries, stamped by bGen.
	bucketHead  []int32
	bucketStamp []uint32
	bGen        uint32
	entries     []chBucketEntry

	// arcStack is reconstruction scratch.
	arcStack []int32

	// Cancellation state; the amortized-poll contract shared with
	// Workspace (see ctxPoller in workspace.go).
	ctxPoller
}

type chBucketEntry struct {
	next int32
	tgt  int32
	dist float64
}

var chwsPool = sync.Pool{New: func() any { return &chWorkspace{} }}

func getCHWorkspace(n int) *chWorkspace {
	ws := chwsPool.Get().(*chWorkspace)
	ws.ensure(n)
	return ws
}

func (ws *chWorkspace) release() {
	ws.clearContext() // do not retain request contexts in the pool
	chwsPool.Put(ws)
}

func (ws *chWorkspace) ensure(n int) {
	if len(ws.distF) < n {
		ws.distF = make([]float64, n)
		ws.distB = make([]float64, n)
		ws.parentF = make([]int32, n)
		ws.parentB = make([]int32, n)
		ws.reachF = make([]uint32, n)
		ws.reachB = make([]uint32, n)
		ws.bucketHead = make([]int32, n)
		ws.bucketStamp = make([]uint32, n)
		ws.gen = 0
		ws.bGen = 0
	}
	ws.heapF.ensure(n)
	ws.heapB.ensure(n)
}

func (ws *chWorkspace) begin() {
	ws.gen++
	if ws.gen == 0 { // stamp wrap: clear once every 2^32 queries
		clearU32(ws.reachF)
		clearU32(ws.reachB)
		ws.gen = 1
	}
	ws.heapF.reset()
	ws.heapB.reset()
}

func (ws *chWorkspace) resetBuckets() {
	ws.bGen++
	if ws.bGen == 0 {
		clearU32(ws.bucketStamp)
		ws.bGen = 1
	}
	ws.entries = ws.entries[:0]
}

func (ws *chWorkspace) addBucket(v int32, tgt int32, dist float64) {
	next := int32(-1)
	if ws.bucketStamp[v] == ws.bGen {
		next = ws.bucketHead[v]
	} else {
		ws.bucketStamp[v] = ws.bGen
	}
	ws.entries = append(ws.entries, chBucketEntry{next: next, tgt: tgt, dist: dist})
	ws.bucketHead[v] = int32(len(ws.entries) - 1)
}

// --- Queries ---

// Query returns a minimum-cost path from src to dst, unpacking shortcuts
// into original edges. Costs equal Dijkstra's on the original graph. State
// comes from a pooled workspace, so the query allocates only the result.
func (ch *ContractionHierarchy) Query(src, dst roadnet.VertexID) (Path, error) {
	return ch.QueryCtx(context.Background(), src, dst)
}

// QueryCtx is Query honoring ctx: cancellation aborts the bidirectional
// search and returns ctx's error. The poll is amortized over heap pops, so
// a never-canceled context leaves results and cost unchanged.
func (ch *ContractionHierarchy) QueryCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	ws := getCHWorkspace(ch.g.NumVertices())
	defer ws.release()
	ws.bindContext(ctx)
	ws.begin()
	gen := ws.gen

	ws.distF[src] = 0
	ws.reachF[src] = gen
	ws.distB[dst] = 0
	ws.reachB[dst] = gen
	ws.heapF.push(src, 0)
	ws.heapB.push(dst, 0)

	best := math.Inf(1)
	meet := int32(-1)
	for !ws.heapF.empty() || !ws.heapB.empty() {
		if ws.canceled() {
			return Path{}, ws.ctxErr
		}
		topF, topB := math.Inf(1), math.Inf(1)
		if !ws.heapF.empty() {
			topF = ws.heapF.topKey()
		}
		if !ws.heapB.empty() {
			topB = ws.heapB.topKey()
		}
		if math.Min(topF, topB) >= best {
			break
		}
		if topF <= topB {
			v, d := ws.heapF.pop()
			if ws.reachB[v] == gen && d+ws.distB[v] < best {
				best = d + ws.distB[v]
				meet = int32(v)
			}
			for s, e := ch.upStart[v], ch.upStart[v+1]; s < e; s++ {
				ai := ch.upArcs[s]
				to := ch.arcTo[ai]
				nd := d + ch.arcWeight[ai]
				if ws.reachF[to] != gen || nd < ws.distF[to] {
					ws.distF[to] = nd
					ws.reachF[to] = gen
					ws.parentF[to] = ai
					ws.heapF.update(roadnet.VertexID(to), nd)
				}
			}
		} else {
			v, d := ws.heapB.pop()
			if ws.reachF[v] == gen && d+ws.distF[v] < best {
				best = d + ws.distF[v]
				meet = int32(v)
			}
			for s, e := ch.downStart[v], ch.downStart[v+1]; s < e; s++ {
				ai := ch.downArcs[s]
				from := ch.arcFrom[ai]
				nd := d + ch.arcWeight[ai]
				if ws.reachB[from] != gen || nd < ws.distB[from] {
					ws.distB[from] = nd
					ws.reachB[from] = gen
					ws.parentB[from] = ai
					ws.heapB.update(roadnet.VertexID(from), nd)
				}
			}
		}
	}
	if meet < 0 {
		return Path{}, ErrNoPath
	}

	// Reconstruct arc sequences to/from the meeting vertex.
	up := ws.arcStack[:0]
	for v := meet; v != int32(src); {
		ai := ws.parentF[v]
		up = append(up, ai)
		v = ch.arcFrom[ai]
	}
	for i, j := 0, len(up)-1; i < j; i, j = i+1, j-1 {
		up[i], up[j] = up[j], up[i]
	}
	var edges []roadnet.EdgeID
	for _, ai := range up {
		ch.unpack(ai, &edges)
	}
	ws.arcStack = up[:0]
	for v := meet; v != int32(dst); {
		ai := ws.parentB[v]
		ch.unpack(ai, &edges)
		v = ch.arcTo[ai]
	}
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, ch.g.Edge(eid).To)
	}
	return Path{Vertices: vertices, Edges: edges, Cost: best}, nil
}

// unpack recursively expands a (possibly shortcut) arc into original edges.
func (ch *ContractionHierarchy) unpack(ai int32, edges *[]roadnet.EdgeID) {
	mid := ch.arcMid[ai]
	if mid < 0 {
		*edges = append(*edges, ch.arcEdge[ai])
		return
	}
	from, to := ch.arcFrom[ai], ch.arcTo[ai]
	ch.unpack(ch.lookupArc(from, mid), edges)
	ch.unpack(ch.lookupArc(mid, to), edges)
}

// lookupArc returns the minimum-weight arc from→to through whichever
// unpacking index this hierarchy carries: the construction-time map, or
// the sorted key array of an assembled (persisted) hierarchy.
func (ch *ContractionHierarchy) lookupArc(from, to int32) int32 {
	key := int64(from)<<32 | int64(uint32(to))
	if ch.arcIndex != nil {
		return ch.arcIndex[key]
	}
	i := sort.Search(len(ch.idxKeys), func(i int) bool { return ch.idxKeys[i] >= key })
	return ch.idxVals[i]
}

// ManyToMany fills out[i][j] with the exact minimum cost from sources[i] to
// targets[j] for every pair whose cost is at most bound; pairs farther than
// bound (and unreachable pairs) are +Inf. out must have len(sources) rows
// of len(targets) columns.
//
// It runs the bucket algorithm (Knopp et al. 2007): one reverse upward
// search per target deposits (target, distance) entries at every vertex it
// settles, then one forward upward search per source scans the buckets of
// the vertices it settles. The cost is |S|+|T| truncated CH searches
// instead of |S| full Dijkstras, which is what makes HMM map-matching
// transitions cheap. Pass bound = +Inf for unbounded queries.
func (ch *ContractionHierarchy) ManyToMany(sources, targets []roadnet.VertexID, bound float64, out [][]float64) {
	inf := math.Inf(1)
	for i := range out {
		row := out[i]
		for j := range row {
			row[j] = inf
		}
	}
	if len(sources) == 0 || len(targets) == 0 {
		return
	}
	ws := getCHWorkspace(ch.g.NumVertices())
	defer ws.release()
	ws.resetBuckets()

	// Backward phase: reverse upward search from each target. Every settled
	// vertex v with final distance db gets a bucket entry (j, db).
	for j, t := range targets {
		ws.begin()
		gen := ws.gen
		ws.distB[t] = 0
		ws.reachB[t] = gen
		ws.heapB.push(t, 0)
		for !ws.heapB.empty() {
			v, d := ws.heapB.pop()
			ws.addBucket(int32(v), int32(j), d)
			for s, e := ch.downStart[v], ch.downStart[v+1]; s < e; s++ {
				ai := ch.downArcs[s]
				from := ch.arcFrom[ai]
				nd := d + ch.arcWeight[ai]
				if nd > bound {
					continue
				}
				if ws.reachB[from] != gen || nd < ws.distB[from] {
					ws.distB[from] = nd
					ws.reachB[from] = gen
					ws.heapB.update(roadnet.VertexID(from), nd)
				}
			}
		}
	}

	// Forward phase: upward search from each source; bucket scans join the
	// two half-paths.
	for i, s := range sources {
		row := out[i]
		ws.begin()
		gen := ws.gen
		ws.distF[s] = 0
		ws.reachF[s] = gen
		ws.heapF.push(s, 0)
		for !ws.heapF.empty() {
			v, d := ws.heapF.pop()
			if ws.bucketStamp[v] == ws.bGen {
				for bi := ws.bucketHead[v]; bi >= 0; bi = ws.entries[bi].next {
					ent := ws.entries[bi]
					if cand := d + ent.dist; cand < row[ent.tgt] {
						row[ent.tgt] = cand
					}
				}
			}
			for st, e := ch.upStart[v], ch.upStart[v+1]; st < e; st++ {
				ai := ch.upArcs[st]
				to := ch.arcTo[ai]
				nd := d + ch.arcWeight[ai]
				if nd > bound {
					continue
				}
				if ws.reachF[to] != gen || nd < ws.distF[to] {
					ws.distF[to] = nd
					ws.reachF[to] = gen
					ws.heapF.update(roadnet.VertexID(to), nd)
				}
			}
		}
		// A pair joined through pruned half-searches can only be proven
		// within bound when its total is; anything above the bound reports
		// +Inf, matching a bounded Dijkstra's contract.
		for j := range row {
			if row[j] > bound {
				row[j] = inf
			}
		}
	}
}

// OneToMany fills out[j] with the exact minimum cost from src to targets[j]
// for targets within bound, +Inf otherwise. It is ManyToMany with a single
// source.
func (ch *ContractionHierarchy) OneToMany(src roadnet.VertexID, targets []roadnet.VertexID, bound float64, out []float64) {
	rows := [][]float64{out}
	ch.ManyToMany([]roadnet.VertexID{src}, targets, bound, rows)
}
