//go:build race

package spath

// raceEnabled reports whether this binary was built with the race
// detector. Race instrumentation adds allocations inside sync.Pool's fast
// path, so the allocation-regression guards (which assert pooled queries
// allocate only their results) skip themselves under -race rather than
// report the instrumentation as a regression.
const raceEnabled = true
