package spath

import (
	"math"
	"math/rand"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

func randVertex(rng *rand.Rand, n int) roadnet.VertexID {
	return roadnet.VertexID(rng.Intn(n))
}

func disconnectedPair(t *testing.T) *roadnet.Graph {
	t.Helper()
	b := roadnet.NewBuilder(2, 0)
	b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	b.AddVertex(geo.Point{Lon: 10.1, Lat: 57})
	return b.Build()
}

func TestCHMatchesDijkstraByLength(t *testing.T) {
	g := gridGraph(t, 8, 8)
	ch := BuildCH(g, ByLength)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		pd, errD := Dijkstra(g, src, dst, ByLength)
		pc, errC := ch.Query(src, dst)
		if (errD == nil) != (errC == nil) {
			t.Fatalf("src=%d dst=%d: dijkstra err=%v ch err=%v", src, dst, errD, errC)
		}
		if errD != nil {
			continue
		}
		if math.Abs(pd.Cost-pc.Cost) > 1e-6 {
			t.Fatalf("src=%d dst=%d: dijkstra %.4f vs CH %.4f", src, dst, pd.Cost, pc.Cost)
		}
		if err := pc.Validate(g); err != nil {
			t.Fatalf("CH path invalid: %v", err)
		}
		if pc.Source() != src || pc.Destination() != dst {
			t.Fatalf("CH endpoints %d->%d, want %d->%d", pc.Source(), pc.Destination(), src, dst)
		}
	}
}

func TestCHMatchesDijkstraByTime(t *testing.T) {
	g := gridGraph(t, 7, 7)
	ch := BuildCH(g, ByTime)
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		pd, errD := Dijkstra(g, src, dst, ByTime)
		pc, errC := ch.Query(src, dst)
		if (errD == nil) != (errC == nil) {
			t.Fatalf("error mismatch: %v vs %v", errD, errC)
		}
		if errD != nil {
			continue
		}
		if math.Abs(pd.Cost-pc.Cost) > 1e-6 {
			t.Fatalf("time costs differ: %.4f vs %.4f", pd.Cost, pc.Cost)
		}
	}
}

func TestCHSelfQuery(t *testing.T) {
	g := gridGraph(t, 5, 5)
	ch := BuildCH(g, ByLength)
	p, err := ch.Query(3, 3)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self query: len=%d err=%v", p.Len(), err)
	}
}

func TestCHAddsShortcuts(t *testing.T) {
	g := gridGraph(t, 8, 8)
	ch := BuildCH(g, ByLength)
	if ch.NumShortcuts() == 0 {
		t.Fatal("grid contraction should add shortcuts")
	}
}

func TestCHDisconnectedReturnsErrNoPath(t *testing.T) {
	g := disconnectedPair(t)
	ch := BuildCH(g, ByLength)
	if _, err := ch.Query(0, 1); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}
