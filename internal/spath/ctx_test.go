package spath

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// flipCtx is a context whose Err starts returning context.Canceled after
// its nth poll — a deterministic way to cancel "mid-search" without
// timers. Done returns a non-nil (never-closed) channel so bindContext
// treats it as cancelable.
type flipCtx struct {
	context.Context
	polls, after int
	done         chan struct{}
}

func newFlipCtx(after int) *flipCtx {
	return &flipCtx{Context: context.Background(), after: after, done: make(chan struct{})}
}

func (c *flipCtx) Done() <-chan struct{} { return c.done }

func (c *flipCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// TestCtxVariantsBitIdentical checks that the context-aware entry points
// with a live (cancelable, never-canceled) context return exactly the
// paths of their context-free counterparts across random queries — the
// guarantee that lets the serving layer thread request contexts through
// the hot path without re-validating rankings.
func TestCtxVariantsBitIdentical(t *testing.T) {
	g := workspaceTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sim := func(a, b Path) float64 { return jaccard(a, b) }
	rng := rand.New(rand.NewSource(5))
	engines := []Engine{
		NewDijkstraEngine(g, ByLength),
		NewEngine(EngineALT, g, ByLength, EngineConfig{}),
		NewEngine(EngineCH, g, ByLength, EngineConfig{}),
	}
	for i := 0; i < 30; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))

		want, errWant := TopK(g, src, dst, 5, ByLength)
		got, errGot := TopKCtx(ctx, g, src, dst, 5, ByLength)
		requireSamePaths(t, "TopKCtx", want, got, errWant, errGot)

		want, errWant = DiversifiedTopK(g, src, dst, 4, ByLength, sim, 0.8, 40)
		got, errGot = DiversifiedTopKCtx(ctx, g, src, dst, 4, ByLength, sim, 0.8, 40)
		requireSamePaths(t, "DiversifiedTopKCtx", want, got, errWant, errGot)

		for _, e := range engines {
			want, errWant = TopKEngine(e, src, dst, 5)
			got, errGot = TopKEngineCtx(ctx, e, src, dst, 5)
			requireSamePaths(t, "TopKEngineCtx/"+e.Kind().String(), want, got, errWant, errGot)

			pw, ew := e.Shortest(src, dst)
			pg, eg := e.ShortestCtx(ctx, src, dst)
			requireSamePaths(t, "ShortestCtx/"+e.Kind().String(), []Path{pw}, []Path{pg}, ew, eg)
		}
	}
}

func requireSamePaths(t *testing.T, what string, want, got []Path, errWant, errGot error) {
	t.Helper()
	if (errWant == nil) != (errGot == nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", what, errWant, errGot)
	}
	if errWant != nil {
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d paths", what, len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) || want[i].Cost != got[i].Cost {
			t.Fatalf("%s: path %d differs", what, i)
		}
	}
}

// jaccard is a cheap unweighted edge-overlap similarity for tests.
func jaccard(a, b Path) float64 {
	seen := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		seen[e] = true
	}
	inter := 0
	for _, e := range b.Edges {
		if seen[e] {
			inter++
		}
	}
	union := len(a.Edges) + len(b.Edges) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestCtxPreCanceled checks that an already-canceled context fails every
// entry point with the context's error.
func TestCtxPreCanceled(t *testing.T) {
	g := workspaceTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)

	if _, err := DijkstraCtx(ctx, g, src, dst, ByLength); !errors.Is(err, context.Canceled) {
		t.Fatalf("DijkstraCtx: err = %v, want Canceled", err)
	}
	if _, err := TopKCtx(ctx, g, src, dst, 5, ByLength); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx: err = %v, want Canceled", err)
	}
	for _, kind := range []EngineKind{EngineDijkstra, EngineALT, EngineCH} {
		e := NewEngine(kind, g, ByLength, EngineConfig{})
		if _, err := e.ShortestCtx(ctx, src, dst); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s ShortestCtx: err = %v, want Canceled", kind, err)
		}
		if _, err := TopKEngineCtx(ctx, e, src, dst, 5); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s TopKEngineCtx: err = %v, want Canceled", kind, err)
		}
	}
}

// TestCtxCancelMidEnumerationLeavesPoolClean cancels a Yen enumeration
// mid-flight (deterministically, after a fixed number of context polls)
// and then re-runs the same query uncanceled on the shared pool: the
// result must be bit-identical to a fresh workspace's, proving a canceled
// search cannot corrupt pooled state.
func TestCtxCancelMidEnumerationLeavesPoolClean(t *testing.T) {
	g := workspaceTestGraph(t)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)

	want, err := TopK(g, src, dst, 8, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	canceledAtLeastOnce := false
	// Flip after varying poll counts so cancellation lands in different
	// phases of the enumeration (first Dijkstra, early spur, late spur).
	for _, after := range []int{0, 1, 2, 3, 5, 8} {
		_, err := TopKCtx(newFlipCtx(after), g, src, dst, 8, ByLength)
		if err == nil {
			// Enumeration finished before the flip; still a valid round.
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want Canceled", after, err)
		}
		canceledAtLeastOnce = true
		got, err := TopK(g, src, dst, 8, ByLength)
		if err != nil {
			t.Fatalf("after=%d: rerun: %v", after, err)
		}
		requireSamePaths(t, "post-cancel rerun", want, got, nil, nil)
	}
	if !canceledAtLeastOnce {
		t.Fatal("no flip context canceled the enumeration; test shape broken")
	}
}

// TestCtxCancelStopsSlowQuery is the wall-clock acceptance check: a
// genuinely slow Yen enumeration on a large network returns promptly with
// the context's error when the context is canceled mid-flight.
func TestCtxCancelStopsSlowQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-query cancellation test")
	}
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 40, Cols: 40, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	// k=3000 enumerates for >1.5s uncanceled on a fast machine; the
	// cancellation at 20ms must cut that to near-nothing.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = TopKCtx(ctx, g, src, dst, 3000, ByLength)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v after %v, want Canceled (query completed too fast to observe cancellation?)", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestCtxVariantAllocsMatch guards the zero-extra-alloc promise: TopKCtx
// with a live cancelable context allocates exactly what TopK does.
func TestCtxVariantAllocsMatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	g := workspaceTestGraph(t)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := TopK(g, src, dst, 5, ByLength); err != nil { // warm the pool
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(30, func() {
		if _, err := TopK(g, src, dst, 5, ByLength); err != nil {
			t.Fatal(err)
		}
	})
	withCtx := testing.AllocsPerRun(30, func() {
		if _, err := TopKCtx(ctx, g, src, dst, 5, ByLength); err != nil {
			t.Fatal(err)
		}
	})
	if withCtx > base {
		t.Fatalf("TopKCtx allocates %.1f/op vs TopK %.1f/op; ctx threading must not allocate", withCtx, base)
	}
}
