package spath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// gridGraph builds an r x c grid with bidirectional residential edges.
func gridGraph(t testing.TB, rows, cols int) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: rows, Cols: cols, SpacingM: 200, JitterFrac: 0.2,
		RemoveFrac: 0.05, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 7,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate grid: %v", err)
	}
	return g
}

// lineGraph builds a simple 0-1-2-...-n line.
func lineGraph(t *testing.T, n int) *roadnet.Graph {
	t.Helper()
	b := roadnet.NewBuilder(n, 2*(n-1))
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: 10 + float64(i)*0.001, Lat: 57})
	}
	for i := 0; i < n-1; i++ {
		b.AddBidirectional(roadnet.VertexID(i), roadnet.VertexID(i+1), roadnet.Residential)
	}
	return b.Build()
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 5)
	p, err := Dijkstra(g, 0, 4, ByLength)
	if err != nil {
		t.Fatalf("Dijkstra: %v", err)
	}
	if p.Len() != 4 {
		t.Fatalf("path has %d edges, want 4", p.Len())
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("invalid path: %v", err)
	}
	if p.Source() != 0 || p.Destination() != 4 {
		t.Fatalf("endpoints %d->%d, want 0->4", p.Source(), p.Destination())
	}
}

func TestDijkstraSameVertex(t *testing.T) {
	g := lineGraph(t, 3)
	p, err := Dijkstra(g, 1, 1, ByLength)
	if err != nil {
		t.Fatalf("Dijkstra: %v", err)
	}
	if p.Len() != 0 || p.Cost != 0 {
		t.Fatalf("self path should be empty with zero cost, got %d edges cost %v", p.Len(), p.Cost)
	}
}

func TestDijkstraNoPath(t *testing.T) {
	// Two disconnected vertices.
	b := roadnet.NewBuilder(2, 0)
	b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	b.AddVertex(geo.Point{Lon: 10.1, Lat: 57})
	g := b.Build()
	if _, err := Dijkstra(g, 0, 1, ByLength); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestDijkstraPrefersFastRoadUnderTimeWeight(t *testing.T) {
	// 0 -> 1 -> 3 via motorway (longer), 0 -> 2 -> 3 via residential
	// (shorter). Time weighting must pick the motorway, length weighting
	// the residential route.
	b := roadnet.NewBuilder(4, 8)
	b.AddVertex(geo.Point{Lon: 10.00, Lat: 57.000})
	b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.012}) // detour north
	b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.000}) // straight
	b.AddVertex(geo.Point{Lon: 10.02, Lat: 57.000})
	b.AddEdge(0, 1, roadnet.Motorway)
	b.AddEdge(1, 3, roadnet.Motorway)
	b.AddEdge(0, 2, roadnet.Residential)
	b.AddEdge(2, 3, roadnet.Residential)
	g := b.Build()

	byTime, err := Dijkstra(g, 0, 3, ByTime)
	if err != nil {
		t.Fatal(err)
	}
	if byTime.Vertices[1] != 1 {
		t.Errorf("time-weighted path goes via %d, want motorway via 1", byTime.Vertices[1])
	}
	byLen, err := Dijkstra(g, 0, 3, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if byLen.Vertices[1] != 2 {
		t.Errorf("length-weighted path goes via %d, want direct via 2", byLen.Vertices[1])
	}
}

// bellmanFord is an independent O(VE) oracle for property tests.
func bellmanFord(g *roadnet.Graph, src roadnet.VertexID, w Weight) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(roadnet.EdgeID(i))
			if dist[e.From]+w(e) < dist[e.To] {
				dist[e.To] = dist[e.From] + w(e)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	g := gridGraph(t, 6, 6)
	oracle := bellmanFord(g, 0, ByLength)
	got := DijkstraAll(g, 0, ByLength)
	for v := range got {
		if math.Abs(got[v]-oracle[v]) > 1e-6 {
			t.Fatalf("vertex %d: dijkstra %.3f vs bellman-ford %.3f", v, got[v], oracle[v])
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g := gridGraph(t, 8, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		for _, w := range []Weight{ByLength, ByTime} {
			pd, errD := Dijkstra(g, src, dst, w)
			pa, errA := AStar(g, src, dst, w)
			if (errD == nil) != (errA == nil) {
				t.Fatalf("src=%d dst=%d: dijkstra err=%v astar err=%v", src, dst, errD, errA)
			}
			if errD != nil {
				continue
			}
			if math.Abs(pd.Cost-pa.Cost) > 1e-6 {
				t.Fatalf("src=%d dst=%d: dijkstra cost %.4f, astar cost %.4f", src, dst, pd.Cost, pa.Cost)
			}
			if err := pa.Validate(g); err != nil {
				t.Fatalf("astar path invalid: %v", err)
			}
		}
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g := gridGraph(t, 8, 8)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		pd, errD := Dijkstra(g, src, dst, ByLength)
		pb, errB := BidirectionalDijkstra(g, src, dst, ByLength)
		if (errD == nil) != (errB == nil) {
			t.Fatalf("src=%d dst=%d: dijkstra err=%v bidi err=%v", src, dst, errD, errB)
		}
		if errD != nil {
			continue
		}
		if math.Abs(pd.Cost-pb.Cost) > 1e-6 {
			t.Fatalf("src=%d dst=%d: dijkstra %.4f vs bidi %.4f", src, dst, pd.Cost, pb.Cost)
		}
		if err := pb.Validate(g); err != nil {
			t.Fatalf("bidi path invalid: %v", err)
		}
	}
}

func TestTopKOrderingAndUniqueness(t *testing.T) {
	g := gridGraph(t, 7, 7)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	k := 8
	paths, err := TopK(g, src, dst, k, ByLength)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("expected at least one path")
	}
	seen := map[string]bool{}
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		if p.Source() != src || p.Destination() != dst {
			t.Fatalf("path %d endpoints %d->%d", i, p.Source(), p.Destination())
		}
		if i > 0 && paths[i].Cost < paths[i-1].Cost-1e-9 {
			t.Fatalf("paths out of order: cost[%d]=%.3f < cost[%d]=%.3f", i, paths[i].Cost, i-1, paths[i-1].Cost)
		}
		key := pathKey(p)
		if seen[key] {
			t.Fatalf("duplicate path at index %d", i)
		}
		seen[key] = true
	}
	// The first path must be the Dijkstra optimum.
	best, _ := Dijkstra(g, src, dst, ByLength)
	if math.Abs(paths[0].Cost-best.Cost) > 1e-9 {
		t.Fatalf("first TopK path cost %.4f != optimum %.4f", paths[0].Cost, best.Cost)
	}
}

func TestTopKZeroAndOne(t *testing.T) {
	g := lineGraph(t, 4)
	if paths, err := TopK(g, 0, 3, 0, ByLength); err != nil || len(paths) != 0 {
		t.Fatalf("k=0: paths=%d err=%v, want 0,nil", len(paths), err)
	}
	paths, err := TopK(g, 0, 3, 1, ByLength)
	if err != nil || len(paths) != 1 {
		t.Fatalf("k=1: paths=%d err=%v", len(paths), err)
	}
}

func TestTopKFewerThanKWhenGraphThin(t *testing.T) {
	g := lineGraph(t, 4)
	// A line graph has exactly one simple path 0->3.
	paths, err := TopK(g, 0, 3, 5, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("line graph should yield 1 simple path, got %d", len(paths))
	}
}

func TestTopKNoPath(t *testing.T) {
	b := roadnet.NewBuilder(2, 0)
	b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	b.AddVertex(geo.Point{Lon: 10.1, Lat: 57})
	g := b.Build()
	if _, err := TopK(g, 0, 1, 3, ByLength); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestTopKPathsAreSimpleProperty(t *testing.T) {
	g := gridGraph(t, 6, 6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if src == dst {
			return true
		}
		paths, err := TopK(g, src, dst, 4, ByLength)
		if err != nil {
			return err == ErrNoPath
		}
		for _, p := range paths {
			if p.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// overlapSim is a simple similarity for diversify tests: fraction of shared
// edges relative to the smaller path.
func overlapSim(a, b Path) float64 {
	inA := make(map[roadnet.EdgeID]bool, len(a.Edges))
	for _, e := range a.Edges {
		inA[e] = true
	}
	var inter int
	for _, e := range b.Edges {
		if inA[e] {
			inter++
		}
	}
	m := len(a.Edges)
	if len(b.Edges) < m {
		m = len(b.Edges)
	}
	if m == 0 {
		return 1
	}
	return float64(inter) / float64(m)
}

func TestDiversifiedTopKRespectsThreshold(t *testing.T) {
	g := gridGraph(t, 7, 7)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	threshold := 0.8
	paths, err := DiversifiedTopK(g, src, dst, 5, ByLength, overlapSim, threshold, 50)
	if err != nil {
		t.Fatalf("DiversifiedTopK: %v", err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least 2 diverse paths, got %d", len(paths))
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if s := overlapSim(paths[i], paths[j]); s > threshold {
				t.Fatalf("paths %d and %d have similarity %.3f > %.2f", i, j, s, threshold)
			}
		}
	}
}

func TestDiversifiedTopKMoreDiverseThanTopK(t *testing.T) {
	g := gridGraph(t, 7, 7)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	k := 5
	plain, err := TopK(g, src, dst, k, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := DiversifiedTopK(g, src, dst, k, ByLength, overlapSim, 0.7, 80)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(ps []Path) float64 {
		var sum float64
		var cnt int
		for i := range ps {
			for j := i + 1; j < len(ps); j++ {
				sum += overlapSim(ps[i], ps[j])
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	if len(diverse) >= 2 && len(plain) >= 2 && avg(diverse) > avg(plain)+1e-9 {
		t.Fatalf("diversified mean similarity %.3f should not exceed plain %.3f", avg(diverse), avg(plain))
	}
}

func TestDiversifiedTopKFirstPathIsShortest(t *testing.T) {
	g := gridGraph(t, 6, 6)
	src, dst := roadnet.VertexID(0), roadnet.VertexID(g.NumVertices()-1)
	paths, err := DiversifiedTopK(g, src, dst, 3, ByLength, overlapSim, 0.8, 40)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := Dijkstra(g, src, dst, ByLength)
	if math.Abs(paths[0].Cost-best.Cost) > 1e-9 {
		t.Fatalf("first diversified path cost %.3f != shortest %.3f", paths[0].Cost, best.Cost)
	}
}

func TestPathEqualAndClone(t *testing.T) {
	g := lineGraph(t, 4)
	p, _ := Dijkstra(g, 0, 3, ByLength)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone should equal original")
	}
	q.Edges[0] = q.Edges[0] + 1
	if p.Equal(q) {
		t.Fatal("mutated clone should differ")
	}
}

func TestPathLengthTimeAccessors(t *testing.T) {
	g := lineGraph(t, 4)
	p, _ := Dijkstra(g, 0, 3, ByLength)
	if math.Abs(p.Length(g)-p.Cost) > 1e-9 {
		t.Fatalf("Length %.3f != ByLength cost %.3f", p.Length(g), p.Cost)
	}
	wantTime := p.Length(g) / (roadnet.Residential.SpeedKmH() / 3.6)
	if math.Abs(p.Time(g)-wantTime) > 1e-6 {
		t.Fatalf("Time %.3f, want %.3f", p.Time(g), wantTime)
	}
}

func TestMinHeapOrderingProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := &minHeap{}
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.push(item{dist: v})
		}
		prev := math.Inf(-1)
		for !h.empty() {
			it := h.pop()
			if it.dist < prev {
				return false
			}
			prev = it.dist
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
