package spath

import (
	"context"
	"math"
	"sync"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// Workspace holds the per-query state of a shortest-path search — distance
// and parent arrays, settled marks and the priority queue — so that repeated
// queries on the same graph reuse memory instead of allocating O(n) fresh
// state each time. Visited marks are generation-stamped: starting a new
// query bumps a counter instead of clearing the arrays, so query setup is
// O(1) regardless of graph size.
//
// A Workspace is not safe for concurrent use; acquire one per goroutine with
// GetWorkspace. Yen's TopK issues hundreds of Dijkstra calls per candidate
// set through a single Workspace, which is where the reuse pays off most.
type Workspace struct {
	// Forward search state, indexed by vertex.
	dist   []float64
	parent []roadnet.EdgeID
	reach  []uint32 // dist/parent valid iff reach[v] == gen

	// Backward search state for bidirectional queries.
	distB   []float64
	parentB []roadnet.EdgeID
	reachB  []uint32

	gen uint32

	heap  heap4
	heapB heap4

	// wts caches the weight of every edge for the current query's Weight
	// function, so the relaxation loop pays one array load instead of an
	// indirect call with an Edge-struct argument. Yen's TopK fills it once
	// and shares it across all spur queries.
	wts []float64

	// Ban stamps for constrained (Yen spur) queries.
	banV   []uint32
	banE   []uint32
	banGen uint32

	// Goal-heuristic cache for constrained A* spur queries: all spur
	// queries of one TopK call share the same destination, so the scaled
	// straight-line lower bound is memoized per vertex. heurAux, when
	// non-nil, is an additional admissible bound (e.g. ALT landmark
	// distances) combined with the geometric one by max.
	heurV     []float64
	heurStamp []uint32
	heurGen   uint32
	heurPt    geo.Point
	heurScale float64
	heurAux   func(roadnet.VertexID) float64

	// Target stamps for bounded multi-target searches.
	tgtStamp []uint32
	tgtGen   uint32

	// Cancellation state shared with the CH query workspace.
	ctxPoller
}

// ctxCheckEvery is the heap-pop interval between context polls; a power of
// two so the check compiles to a mask test. 1024 pops is microseconds of
// search work, far below any useful request deadline.
const ctxCheckEvery = 1024

// ctxPoller is the amortized cancellation check embedded in the search
// workspaces (Workspace and chWorkspace). The bound ctx, when non-nil, is
// polled every ctxCheckEvery heap pops across all searches bound to it;
// once a poll observes cancellation, ctxErr latches the context's error
// and every subsequent search on the workspace fails immediately until
// the next bindContext. The amortized poll keeps the per-pop cost to a
// counter increment and a mask test, so hot loops stay within the
// zero-alloc and <2% time budget when ctx is never canceled.
type ctxPoller struct {
	ctx     context.Context
	ctxErr  error
	ctxTick uint32
}

// bindContext attaches ctx for subsequent searches. A nil context, or one
// that can never be canceled (context.Background()), disables polling
// entirely. One eager poll catches already-expired contexts even when the
// query would finish under the amortized poll interval.
func (p *ctxPoller) bindContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	p.ctx = ctx
	p.ctxErr = nil
	p.ctxTick = 0
	if ctx != nil {
		p.ctxErr = ctx.Err()
	}
}

// clearContext drops the bound context so pooled workspaces do not retain
// request state.
func (p *ctxPoller) clearContext() {
	p.ctx = nil
	p.ctxErr = nil
}

// canceled reports whether the bound context has been canceled, polling it
// at most once every ctxCheckEvery calls. The tick counter deliberately
// persists across the many short spur searches of one Yen enumeration, so
// the poll interval is global to the query rather than per search.
func (p *ctxPoller) canceled() bool {
	if p.ctx == nil {
		return false
	}
	if p.ctxErr != nil {
		return true
	}
	p.ctxTick++
	if p.ctxTick&(ctxCheckEvery-1) != 0 {
		return false
	}
	if err := p.ctx.Err(); err != nil {
		p.ctxErr = err
		return true
	}
	return false
}

// NewWorkspace returns an empty workspace; its arrays are sized lazily to
// whichever graph is queried first. Use it when one goroutine owns a
// long-lived workspace; otherwise prefer GetWorkspace/Release.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool recycles workspaces across package-level query functions.
var wsPool = sync.Pool{New: func() any { return &Workspace{} }}

// GetWorkspace returns a pooled Workspace sized for g. Call Release when
// done to return it to the pool.
func GetWorkspace(g *roadnet.Graph) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.ensure(g)
	return ws
}

// Release returns the workspace to the shared pool. The workspace must not
// be used after Release.
func (ws *Workspace) Release() {
	ws.heurAux = nil // do not retain engine closures in the pool
	ws.clearContext()
	wsPool.Put(ws)
}

// ensure grows the vertex-indexed arrays to cover g.
func (ws *Workspace) ensure(g *roadnet.Graph) {
	n := g.NumVertices()
	if len(ws.dist) < n {
		ws.dist = make([]float64, n)
		ws.parent = make([]roadnet.EdgeID, n)
		ws.reach = make([]uint32, n)
		ws.distB = make([]float64, n)
		ws.parentB = make([]roadnet.EdgeID, n)
		ws.reachB = make([]uint32, n)
		ws.banV = make([]uint32, n)
		ws.tgtStamp = make([]uint32, n)
		ws.tgtGen = 0
		ws.gen = 0
		// banV and banE share banGen: resetting it invalidates stamps in
		// the fresh banV, so the retained banE must be cleared too or its
		// stale stamps would read as banned once the counter climbs back.
		clearU32(ws.banE)
		ws.banGen = 0
	}
	ws.heap.ensure(n)
	ws.heapB.ensure(n)
}

// begin starts a new query generation: O(1) instead of clearing the arrays.
func (ws *Workspace) begin() {
	ws.gen++
	if ws.gen == 0 { // stamp wrap: clear once every 2^32 queries
		clearU32(ws.reach)
		clearU32(ws.reachB)
		ws.gen = 1
	}
	ws.heap.reset()
}

func (ws *Workspace) beginBidirectional() {
	ws.begin()
	ws.heapB.reset()
}

func clearU32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

// fillWeights evaluates w once per edge into the workspace's weight cache
// and records the best cost-per-meter ratio, which makes the straight-line
// distance an admissible, consistent lower bound under w (the same
// construction the package-level AStar uses).
func (ws *Workspace) fillWeights(g *roadnet.Graph, w Weight) {
	m := g.NumEdges()
	if cap(ws.wts) < m {
		ws.wts = make([]float64, m)
	}
	ws.wts = ws.wts[:m]
	scale := math.Inf(1)
	for i := 0; i < m; i++ {
		e := g.Edge(roadnet.EdgeID(i))
		wt := w(e)
		ws.wts[i] = wt
		if r := wt / e.Length; r < scale {
			scale = r
		}
	}
	if math.IsInf(scale, 1) {
		scale = 0
	}
	ws.heurScale = scale
}

// setGoal points the heuristic cache at dst, invalidating memoized bounds.
func (ws *Workspace) setGoal(g *roadnet.Graph, dst roadnet.VertexID) {
	ws.setGoalAux(g, dst, nil)
}

// setGoalAux points the heuristic cache at dst with an optional auxiliary
// admissible bound (an Engine's landmark tables); the memoized value is the
// max of the geometric and auxiliary bounds, which stays admissible.
func (ws *Workspace) setGoalAux(g *roadnet.Graph, dst roadnet.VertexID, aux func(roadnet.VertexID) float64) {
	n := g.NumVertices()
	if len(ws.heurV) < n {
		ws.heurV = make([]float64, n)
		ws.heurStamp = make([]uint32, n)
		ws.heurGen = 0
	}
	ws.heurGen++
	if ws.heurGen == 0 {
		clearU32(ws.heurStamp)
		ws.heurGen = 1
	}
	ws.heurPt = g.Vertex(dst).Point
	ws.heurAux = aux
}

// heurTo returns the memoized admissible lower bound from v to the goal.
func (ws *Workspace) heurTo(g *roadnet.Graph, v roadnet.VertexID) float64 {
	if ws.heurStamp[v] != ws.heurGen {
		ws.heurStamp[v] = ws.heurGen
		h := geo.Distance(g.Vertex(v).Point, ws.heurPt) * ws.heurScale
		if ws.heurAux != nil {
			if a := ws.heurAux(v); a > h {
				h = a
			}
		}
		ws.heurV[v] = h
	}
	return ws.heurV[v]
}

// --- Ban stamps (Yen spur queries) ---

// resetBans starts a fresh banned set; the edge-stamp array is grown lazily
// because it is indexed by edge, not vertex.
func (ws *Workspace) resetBans(g *roadnet.Graph) {
	if len(ws.banE) < g.NumEdges() {
		ws.banE = make([]uint32, g.NumEdges())
		// Same invariant as ensure: a banGen reset must invalidate the
		// stamps in the retained banV as well.
		clearU32(ws.banV)
		ws.banGen = 0
	}
	ws.banGen++
	if ws.banGen == 0 {
		clearU32(ws.banV)
		clearU32(ws.banE)
		ws.banGen = 1
	}
}

func (ws *Workspace) banVertex(v roadnet.VertexID) { ws.banV[v] = ws.banGen }
func (ws *Workspace) banEdge(e roadnet.EdgeID)     { ws.banE[e] = ws.banGen }

func (ws *Workspace) vertexBanned(v roadnet.VertexID) bool { return ws.banV[v] == ws.banGen }
func (ws *Workspace) edgeBanned(e roadnet.EdgeID) bool     { return ws.banE[e] == ws.banGen }

// --- Searches ---

// Dijkstra is the workspace-backed equivalent of the package-level Dijkstra.
// Weights are evaluated inline: a single early-terminating query touches
// each edge at most once, so the O(E) weight cache would cost more than it
// saves (TopK and DijkstraAll do use the cache, where it is reused).
func (ws *Workspace) Dijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	ws.ensure(g)
	ws.begin()
	gen := ws.gen
	ws.dist[src] = 0
	ws.reach[src] = gen
	ws.heap.push(src, 0)
	for !ws.heap.empty() {
		if ws.canceled() {
			return Path{}, ws.ctxErr
		}
		v, d := ws.heap.pop()
		if v == dst {
			return reconstruct(g, ws.parent, src, dst, d), nil
		}
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			to := tos[i]
			nd := d + w(g.Edge(eid))
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.parent[to] = eid
				ws.heap.update(to, nd)
			}
		}
	}
	return Path{}, ErrNoPath
}

// dijkstraCore runs the relaxation loop using the cached edge weights,
// stopping when dst is settled (pass dst < 0 to settle the whole graph).
// It reports whether dst was reached; distances and parents are left in the
// workspace arrays under the current generation.
func (ws *Workspace) dijkstraCore(g *roadnet.Graph, src, dst roadnet.VertexID) bool {
	ws.begin()
	ws.dist[src] = 0
	ws.reach[src] = ws.gen
	ws.heap.push(src, 0)
	gen := ws.gen
	for !ws.heap.empty() {
		v, d := ws.heap.pop()
		if v == dst {
			return true
		}
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			to := tos[i]
			nd := d + ws.wts[eid]
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.parent[to] = eid
				ws.heap.update(to, nd)
			}
		}
	}
	return false
}

// DijkstraAll computes minimum costs from src to every vertex, writing into
// a freshly allocated result slice (the API contract of the package-level
// DijkstraAll); intermediate search state is reused.
func (ws *Workspace) DijkstraAll(g *roadnet.Graph, src roadnet.VertexID, w Weight) []float64 {
	ws.ensure(g)
	ws.fillWeights(g, w)
	ws.dijkstraCore(g, src, -1)
	n := g.NumVertices()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if ws.reach[i] == ws.gen {
			out[i] = ws.dist[i]
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// BoundedDistances computes exact minimum costs from src to every target
// under w, treating targets farther than bound as unreachable: out[j] is
// the cost to targets[j] when that cost is at most bound and +Inf
// otherwise. The search stops as soon as every target is settled or the
// frontier passes bound, so its cost is proportional to the bounded ball
// around src rather than the graph. It is the one-to-many primitive of the
// Dijkstra and ALT engines (CH has its own bucket-based ManyToMany).
func (ws *Workspace) BoundedDistances(g *roadnet.Graph, src roadnet.VertexID, targets []roadnet.VertexID, bound float64, w Weight, out []float64) {
	ws.ensure(g)
	ws.begin()
	gen := ws.gen
	ws.tgtGen++
	if ws.tgtGen == 0 {
		clearU32(ws.tgtStamp)
		ws.tgtGen = 1
	}
	tgen := ws.tgtGen
	remaining := 0
	for _, t := range targets {
		if ws.tgtStamp[t] != tgen {
			ws.tgtStamp[t] = tgen
			remaining++
		}
	}
	ws.dist[src] = 0
	ws.reach[src] = gen
	ws.heap.push(src, 0)
	for !ws.heap.empty() && remaining > 0 {
		v, d := ws.heap.pop()
		if d > bound {
			break
		}
		if ws.tgtStamp[v] == tgen {
			ws.tgtStamp[v] = tgen - 1
			remaining--
		}
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			to := tos[i]
			nd := d + w(g.Edge(eid))
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.parent[to] = eid
				ws.heap.update(to, nd)
			}
		}
	}
	for j, t := range targets {
		if ws.reach[t] == gen && ws.dist[t] <= bound {
			out[j] = ws.dist[t]
		} else {
			out[j] = math.Inf(1)
		}
	}
}

// AStar is the workspace-backed equivalent of the package-level AStar. It
// shares the weight cache, admissible scale, and memoized goal heuristic
// with Yen's spur searches.
func (ws *Workspace) AStar(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	return ws.AStarAux(g, src, dst, w, nil)
}

// AStarAux is AStar with an additional admissible per-vertex lower bound on
// the cost to dst (e.g. ALT landmark bounds), combined with the geometric
// heuristic by max. A nil aux degrades to plain AStar. The heuristic must
// be admissible for optimality; landmark triangle bounds and the scaled
// straight-line distance both are, and so is their max.
func (ws *Workspace) AStarAux(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight, aux func(roadnet.VertexID) float64) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	ws.ensure(g)
	ws.fillWeights(g, w)
	ws.setGoalAux(g, dst, aux)
	ws.begin()
	gen := ws.gen
	ws.dist[src] = 0
	ws.reach[src] = gen
	ws.heap.push(src, ws.heurTo(g, src))
	for !ws.heap.empty() {
		if ws.canceled() {
			return Path{}, ws.ctxErr
		}
		v, _ := ws.heap.pop()
		if v == dst {
			return reconstruct(g, ws.parent, src, dst, ws.dist[dst]), nil
		}
		dv := ws.dist[v]
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			to := tos[i]
			nd := dv + ws.wts[eid]
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.parent[to] = eid
				ws.heap.update(to, nd+ws.heurTo(g, to))
			}
		}
	}
	return Path{}, ErrNoPath
}

// BidirectionalDijkstra is the workspace-backed equivalent of the
// package-level BidirectionalDijkstra.
func (ws *Workspace) BidirectionalDijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	ws.ensure(g)
	ws.beginBidirectional()
	gen := ws.gen
	ws.dist[src] = 0
	ws.reach[src] = gen
	ws.distB[dst] = 0
	ws.reachB[dst] = gen
	ws.heap.push(src, 0)
	ws.heapB.push(dst, 0)

	best := math.Inf(1)
	var meet roadnet.VertexID = -1

	for !ws.heap.empty() || !ws.heapB.empty() {
		if ws.canceled() {
			return Path{}, ws.ctxErr
		}
		topF, topB := math.Inf(1), math.Inf(1)
		if !ws.heap.empty() {
			topF = ws.heap.topKey()
		}
		if !ws.heapB.empty() {
			topB = ws.heapB.topKey()
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			v, d := ws.heap.pop()
			if ws.reachB[v] == gen && d+ws.distB[v] < best {
				best = d + ws.distB[v]
				meet = v
			}
			outs := g.OutEdges(v)
			tos := g.OutNeighbors(v)
			for i, eid := range outs {
				to := tos[i]
				nd := d + w(g.Edge(eid))
				if ws.reach[to] != gen || nd < ws.dist[to] {
					ws.dist[to] = nd
					ws.reach[to] = gen
					ws.parent[to] = eid
					ws.heap.update(to, nd)
				}
				if ws.reachB[to] == gen && nd+ws.distB[to] < best {
					best = nd + ws.distB[to]
					meet = to
				}
			}
		} else {
			v, d := ws.heapB.pop()
			if ws.reach[v] == gen && d+ws.dist[v] < best {
				best = d + ws.dist[v]
				meet = v
			}
			ins := g.InEdges(v)
			froms := g.InNeighbors(v)
			for i, eid := range ins {
				from := froms[i]
				nd := d + w(g.Edge(eid))
				if ws.reachB[from] != gen || nd < ws.distB[from] {
					ws.distB[from] = nd
					ws.reachB[from] = gen
					ws.parentB[from] = eid
					ws.heapB.update(from, nd)
				}
				if ws.reach[from] == gen && nd+ws.dist[from] < best {
					best = nd + ws.dist[from]
					meet = from
				}
			}
		}
	}
	if meet < 0 {
		return Path{}, ErrNoPath
	}

	forward := reconstruct(g, ws.parent, src, meet, ws.dist[meet])
	var backEdges []roadnet.EdgeID
	v := meet
	for v != dst {
		eid := ws.parentB[v]
		backEdges = append(backEdges, eid)
		v = g.Edge(eid).To
	}
	edges := append(forward.Edges, backEdges...)
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, g.Edge(eid).To)
	}
	return Path{Vertices: vertices, Edges: edges, Cost: best}, nil
}

// dijkstraConstrained finds a minimum-cost path avoiding the workspace's
// current banned vertex/edge set. It is the spur-path primitive of Yen's
// algorithm and relies on the weight cache and goal heuristic filled by the
// enclosing query: the search is goal-directed A* toward the memoized goal,
// which settles far fewer vertices than a full Dijkstra while returning the
// same optimal cost. A canceled bound context makes it report "no path";
// the enclosing enumeration distinguishes cancellation via ws.ctxErr.
func (ws *Workspace) dijkstraConstrained(g *roadnet.Graph, src, dst roadnet.VertexID) (Path, bool) {
	if ws.ctxErr != nil || ws.vertexBanned(src) || ws.vertexBanned(dst) {
		return Path{}, false
	}
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, true
	}
	ws.begin()
	gen := ws.gen
	ws.dist[src] = 0
	ws.reach[src] = gen
	ws.heap.push(src, 0)
	for !ws.heap.empty() {
		if ws.canceled() {
			return Path{}, false
		}
		v, _ := ws.heap.pop()
		if v == dst {
			return reconstruct(g, ws.parent, src, dst, ws.dist[dst]), true
		}
		d := ws.dist[v]
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			if ws.edgeBanned(eid) {
				continue
			}
			to := tos[i]
			if ws.vertexBanned(to) {
				continue
			}
			nd := d + ws.wts[eid]
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.parent[to] = eid
				ws.heap.update(to, nd+ws.heurTo(g, to))
			}
		}
	}
	return Path{}, false
}

// --- Indexed 4-ary min-heap with decrease-key ---

type pqItem struct {
	key float64
	v   roadnet.VertexID
}

// heap4 is an indexed 4-ary min-heap keyed by float64. The position index
// enables decrease-key, so each vertex appears at most once and the lazy
// "done" re-check of a binary heap with duplicate entries disappears. 4-ary
// layout halves the tree depth and keeps sift-down children in one or two
// cache lines.
type heap4 struct {
	it   []pqItem
	pos  []int32
	pgen []uint32 // pos valid iff pgen[v] == gen
	gen  uint32
}

func (h *heap4) ensure(n int) {
	if len(h.pos) < n {
		h.pos = make([]int32, n)
		h.pgen = make([]uint32, n)
		h.gen = 0
	}
}

func (h *heap4) reset() {
	h.it = h.it[:0]
	h.gen++
	if h.gen == 0 {
		clearU32(h.pgen)
		h.gen = 1
	}
}

func (h *heap4) empty() bool     { return len(h.it) == 0 }
func (h *heap4) topKey() float64 { return h.it[0].key }

// push inserts v, assuming it is not present.
func (h *heap4) push(v roadnet.VertexID, key float64) {
	h.it = append(h.it, pqItem{key: key, v: v})
	h.pgen[v] = h.gen
	h.up(len(h.it) - 1)
}

// update inserts v or decreases its key; larger keys are ignored.
func (h *heap4) update(v roadnet.VertexID, key float64) {
	if h.pgen[v] == h.gen {
		i := int(h.pos[v])
		if key >= h.it[i].key {
			return
		}
		h.it[i].key = key
		h.up(i)
		return
	}
	h.push(v, key)
}

func (h *heap4) pop() (roadnet.VertexID, float64) {
	top := h.it[0]
	last := len(h.it) - 1
	h.it[0] = h.it[last]
	h.it = h.it[:last]
	if last > 0 {
		h.pos[h.it[0].v] = 0
		h.down(0)
	}
	h.pgen[top.v] = h.gen - 1 // mark absent (any stamp != gen)
	return top.v, top.key
}

func (h *heap4) up(i int) {
	it := h.it[i]
	for i > 0 {
		p := (i - 1) >> 2
		if h.it[p].key <= it.key {
			break
		}
		h.it[i] = h.it[p]
		h.pos[h.it[i].v] = int32(i)
		i = p
	}
	h.it[i] = it
	h.pos[it.v] = int32(i)
}

func (h *heap4) down(i int) {
	n := len(h.it)
	it := h.it[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.it[j].key < h.it[best].key {
				best = j
			}
		}
		if h.it[best].key >= it.key {
			break
		}
		h.it[i] = h.it[best]
		h.pos[h.it[i].v] = int32(i)
		i = best
	}
	h.it[i] = it
	h.pos[it.v] = int32(i)
}
