package spath

import (
	"math"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// Dijkstra returns a minimum-cost path from src to dst under w, or ErrNoPath
// if dst is unreachable.
func Dijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unreached
	}
	parentEdge := make([]roadnet.EdgeID, n)
	done := make([]bool, n)

	dist[src] = 0
	h := &minHeap{}
	h.push(item{v: src})
	for !h.empty() {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			return reconstruct(g, parentEdge, src, dst, dist[dst]), nil
		}
		for _, eid := range g.OutEdges(it.v) {
			e := g.Edge(eid)
			nd := it.dist + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				parentEdge[e.To] = eid
				h.push(item{v: e.To, dist: nd})
			}
		}
	}
	return Path{}, ErrNoPath
}

// DijkstraAll computes minimum costs from src to every vertex. Unreachable
// vertices have cost math.Inf(1). It is used as a test oracle and for
// landmark-style heuristics.
func DijkstraAll(g *roadnet.Graph, src roadnet.VertexID, w Weight) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unreached
	}
	done := make([]bool, n)
	dist[src] = 0
	h := &minHeap{}
	h.push(item{v: src})
	for !h.empty() {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, eid := range g.OutEdges(it.v) {
			e := g.Edge(eid)
			nd := it.dist + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				h.push(item{v: e.To, dist: nd})
			}
		}
	}
	for i := range dist {
		if dist[i] == unreached {
			dist[i] = math.Inf(1)
		}
	}
	return dist
}

// AStar returns a minimum-cost path using a consistent geographic heuristic.
// For ByLength the heuristic is straight-line distance; for other weights it
// is straight-line distance divided by the network's maximum speed, which
// remains admissible. The result is optimal and equal in cost to Dijkstra.
func AStar(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	dstPt := g.Vertex(dst).Point

	// Scale the straight-line heuristic so it never overestimates: find the
	// best cost-per-meter across edges (e.g. 1.0 for ByLength, 1/maxSpeed
	// for ByTime).
	scale := math.Inf(1)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		if r := w(e) / e.Length; r < scale {
			scale = r
		}
	}
	if math.IsInf(scale, 1) {
		scale = 0
	}
	heur := func(v roadnet.VertexID) float64 {
		return geo.Distance(g.Vertex(v).Point, dstPt) * scale
	}

	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unreached
	}
	parentEdge := make([]roadnet.EdgeID, n)
	done := make([]bool, n)
	dist[src] = 0
	h := &minHeap{}
	h.push(item{v: src, dist: heur(src)})
	for !h.empty() {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			return reconstruct(g, parentEdge, src, dst, dist[dst]), nil
		}
		for _, eid := range g.OutEdges(it.v) {
			e := g.Edge(eid)
			nd := dist[it.v] + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				parentEdge[e.To] = eid
				h.push(item{v: e.To, dist: nd + heur(e.To)})
			}
		}
	}
	return Path{}, ErrNoPath
}

// BidirectionalDijkstra searches simultaneously from src forward and dst
// backward, meeting in the middle. It returns a path with the same optimal
// cost as Dijkstra while settling roughly half as many vertices on large
// graphs.
func BidirectionalDijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, nil
	}
	n := g.NumVertices()
	distF := make([]float64, n)
	distB := make([]float64, n)
	for i := range distF {
		distF[i] = unreached
		distB[i] = unreached
	}
	parentF := make([]roadnet.EdgeID, n)
	parentB := make([]roadnet.EdgeID, n)
	doneF := make([]bool, n)
	doneB := make([]bool, n)
	distF[src] = 0
	distB[dst] = 0
	hf, hb := &minHeap{}, &minHeap{}
	hf.push(item{v: src})
	hb.push(item{v: dst})

	best := math.Inf(1)
	var meet roadnet.VertexID = -1

	relaxF := func(v roadnet.VertexID, d float64) {
		for _, eid := range g.OutEdges(v) {
			e := g.Edge(eid)
			nd := d + w(e)
			if nd < distF[e.To] {
				distF[e.To] = nd
				parentF[e.To] = eid
				hf.push(item{v: e.To, dist: nd})
			}
			if distB[e.To] != unreached && nd+distB[e.To] < best {
				best = nd + distB[e.To]
				meet = e.To
			}
		}
	}
	relaxB := func(v roadnet.VertexID, d float64) {
		for _, eid := range g.InEdges(v) {
			e := g.Edge(eid)
			nd := d + w(e)
			if nd < distB[e.From] {
				distB[e.From] = nd
				parentB[e.From] = eid
				hb.push(item{v: e.From, dist: nd})
			}
			if distF[e.From] != unreached && nd+distF[e.From] < best {
				best = nd + distF[e.From]
				meet = e.From
			}
		}
	}

	for !hf.empty() || !hb.empty() {
		var topF, topB float64 = math.Inf(1), math.Inf(1)
		if !hf.empty() {
			topF = hf.a[0].dist
		}
		if !hb.empty() {
			topB = hb.a[0].dist
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			it := hf.pop()
			if doneF[it.v] {
				continue
			}
			doneF[it.v] = true
			if distB[it.v] != unreached && it.dist+distB[it.v] < best {
				best = it.dist + distB[it.v]
				meet = it.v
			}
			relaxF(it.v, it.dist)
		} else {
			it := hb.pop()
			if doneB[it.v] {
				continue
			}
			doneB[it.v] = true
			if distF[it.v] != unreached && it.dist+distF[it.v] < best {
				best = it.dist + distF[it.v]
				meet = it.v
			}
			relaxB(it.v, it.dist)
		}
	}
	if meet < 0 {
		return Path{}, ErrNoPath
	}

	forward := reconstruct(g, parentF, src, meet, distF[meet])
	// Walk backward parents from meet to dst.
	var backEdges []roadnet.EdgeID
	v := meet
	for v != dst {
		eid := parentB[v]
		backEdges = append(backEdges, eid)
		v = g.Edge(eid).To
	}
	edges := append(forward.Edges, backEdges...)
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, src)
	for _, eid := range edges {
		vertices = append(vertices, g.Edge(eid).To)
	}
	return Path{Vertices: vertices, Edges: edges, Cost: best}, nil
}
