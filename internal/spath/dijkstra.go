package spath

import (
	"context"

	"pathrank/internal/roadnet"
)

// Dijkstra returns a minimum-cost path from src to dst under w, or ErrNoPath
// if dst is unreachable. Search state comes from a pooled Workspace, so
// repeated queries do not reallocate O(n) arrays; callers issuing many
// queries in a row can hold their own Workspace and call its methods
// directly to also skip the pool round-trip.
func Dijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	ws := GetWorkspace(g)
	defer ws.Release()
	return ws.Dijkstra(g, src, dst, w)
}

// DijkstraCtx is Dijkstra honoring ctx: cancellation aborts the search and
// returns ctx's error. See Workspace.bindContext for the amortized-poll
// contract (bit-identical results and no extra allocations when ctx is
// never canceled).
func DijkstraCtx(ctx context.Context, g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	ws := GetWorkspace(g)
	defer ws.Release()
	ws.bindContext(ctx)
	return ws.Dijkstra(g, src, dst, w)
}

// DijkstraAll computes minimum costs from src to every vertex. Unreachable
// vertices have cost math.Inf(1). It is used as a test oracle and for
// landmark-style heuristics.
func DijkstraAll(g *roadnet.Graph, src roadnet.VertexID, w Weight) []float64 {
	ws := GetWorkspace(g)
	defer ws.Release()
	return ws.DijkstraAll(g, src, w)
}

// AStar returns a minimum-cost path using a consistent geographic heuristic.
// For ByLength the heuristic is straight-line distance; for other weights it
// is straight-line distance divided by the network's maximum speed, which
// remains admissible. The result is optimal and equal in cost to Dijkstra.
func AStar(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	ws := GetWorkspace(g)
	defer ws.Release()
	return ws.AStar(g, src, dst, w)
}

// BidirectionalDijkstra searches simultaneously from src forward and dst
// backward, meeting in the middle. It returns a path with the same optimal
// cost as Dijkstra while settling roughly half as many vertices on large
// graphs.
func BidirectionalDijkstra(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight) (Path, error) {
	ws := GetWorkspace(g)
	defer ws.Release()
	return ws.BidirectionalDijkstra(g, src, dst, w)
}
