package spath

import (
	"math"
	"math/rand"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

func workspaceTestGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 12, Cols: 12, SpacingM: 250, JitterFrac: 0.25,
		RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
		Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkspaceMatchesFreshQueries checks that reusing one Workspace across
// many queries returns exactly the same paths as pool-fresh package calls.
func TestWorkspaceMatchesFreshQueries(t *testing.T) {
	g := workspaceTestGraph(t)
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		src := roadnet.VertexID(rng.Intn(g.NumVertices()))
		dst := roadnet.VertexID(rng.Intn(g.NumVertices()))
		for _, w := range []Weight{ByLength, ByTime} {
			want, errWant := Dijkstra(g, src, dst, w)
			got, errGot := ws.Dijkstra(g, src, dst, w)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("q%d: err mismatch: %v vs %v", i, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !want.Equal(got) || math.Abs(want.Cost-got.Cost) > 1e-9 {
				t.Fatalf("q%d: reused workspace returned a different path", i)
			}
			a, errA := ws.AStar(g, src, dst, w)
			if errA != nil {
				t.Fatalf("q%d: AStar: %v", i, errA)
			}
			if math.Abs(a.Cost-want.Cost) > 1e-6 {
				t.Fatalf("q%d: AStar cost %v != Dijkstra cost %v", i, a.Cost, want.Cost)
			}
			b, errB := ws.BidirectionalDijkstra(g, src, dst, w)
			if errB != nil {
				t.Fatalf("q%d: Bidirectional: %v", i, errB)
			}
			if math.Abs(b.Cost-want.Cost) > 1e-6 {
				t.Fatalf("q%d: Bidirectional cost %v != Dijkstra cost %v", i, b.Cost, want.Cost)
			}
		}
	}
}

// TestWorkspaceGenerationWrap exercises stamp-wrap clearing by forcing the
// generation counter near overflow.
func TestWorkspaceGenerationWrap(t *testing.T) {
	g := workspaceTestGraph(t)
	ws := NewWorkspace()
	want, err := ws.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), ByLength)
	if err != nil {
		t.Fatal(err)
	}
	ws.gen = math.MaxUint32 - 1
	ws.heap.gen = math.MaxUint32 - 1
	for i := 0; i < 4; i++ {
		got, err := ws.Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), ByLength)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("wrap iteration %d: path changed after generation wrap", i)
		}
	}
}

// TestDijkstraAllocs is the allocation-regression guard for the pooled
// workspace: after warmup, a repeated Dijkstra query allocates only the
// returned Path (edge slice + vertex slice + reconstruct temporaries).
func TestDijkstraAllocs(t *testing.T) {
	g := workspaceTestGraph(t)
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(g.NumVertices() - 1)
	ws := NewWorkspace()
	if _, err := ws.Dijkstra(g, src, dst, ByLength); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.Dijkstra(g, src, dst, ByLength); err != nil {
			t.Fatal(err)
		}
	})
	// reconstructed Path: edges append-growth (~4) + vertices (1).
	if allocs > 8 {
		t.Fatalf("workspace Dijkstra allocated %.1f times per query, want <= 8 (result-path only)", allocs)
	}
}

// TestWorkspaceBanStampsAcrossGraphs guards the ban-stamp invariant:
// reusing a workspace on a graph that resizes only one of the two ban
// arrays resets the shared generation counter, and stale stamps in the
// retained array must not read as banned once the counter climbs back.
func TestWorkspaceBanStampsAcrossGraphs(t *testing.T) {
	// The line graph has more vertices but fewer edges than the grid —
	// the shape that resizes only one of the two ban arrays.
	grid := workspaceTestGraph(t)
	line := lineGraph(t, grid.NumVertices()+50)
	if line.NumEdges() >= grid.NumEdges() {
		t.Fatalf("test shape broken: line graph must have fewer edges (%d >= %d)",
			line.NumEdges(), grid.NumEdges())
	}

	// Grid then line: ensure() reallocates banV, banE is retained.
	ws := NewWorkspace()
	ws.ensure(grid)
	ws.resetBans(grid)
	ws.banEdge(0)
	ws.ensure(line)
	ws.resetBans(line)
	if ws.edgeBanned(0) {
		t.Fatal("stale edge-ban stamp survived graph switch (banV reallocated, banE retained)")
	}

	// Line then grid: resetBans() reallocates banE, banV is retained.
	ws2 := NewWorkspace()
	ws2.ensure(line)
	ws2.resetBans(line)
	ws2.banVertex(0)
	ws2.ensure(grid)
	ws2.resetBans(grid)
	if ws2.vertexBanned(0) {
		t.Fatal("stale vertex-ban stamp survived graph switch (banE reallocated, banV retained)")
	}

	// End-to-end: TopK through the shared pool across both graphs agrees
	// with itself on a fresh process state.
	for _, g := range []*roadnet.Graph{grid, line, grid} {
		paths, err := TopK(g, 0, roadnet.VertexID(g.NumVertices()-1), 3, ByLength)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Dijkstra(g, 0, roadnet.VertexID(g.NumVertices()-1), ByLength)
		if err != nil {
			t.Fatal(err)
		}
		if !paths[0].Equal(want) {
			t.Fatal("TopK shortest path diverged after cross-graph workspace reuse")
		}
	}
}

// TestTopKReusedWorkspaceDeterminism runs TopK twice and checks identical
// output, guarding the stamped ban-set reuse inside Yen's loop.
func TestTopKReusedWorkspaceDeterminism(t *testing.T) {
	g := workspaceTestGraph(t)
	src := roadnet.VertexID(1)
	dst := roadnet.VertexID(g.NumVertices() - 2)
	first, err := TopK(g, src, dst, 5, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	second, err := TopK(g, src, dst, 5, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("TopK returned %d then %d paths", len(first), len(second))
	}
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatalf("TopK path %d differs between runs", i)
		}
	}
}
