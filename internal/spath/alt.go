package spath

import (
	"context"
	"math"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// ALT is A* with landmark lower bounds (Goldberg & Harrelson 2005): a set
// of landmark vertices is chosen, exact distances to and from every
// landmark are precomputed, and queries use the triangle inequality
// |d(L,t) - d(L,v)| as an admissible heuristic. On road networks ALT
// typically settles far fewer vertices than plain Dijkstra while remaining
// exactly optimal.
type ALT struct {
	g         *roadnet.Graph
	w         Weight
	landmarks []roadnet.VertexID
	// fromLM[l][v] = d(landmark_l, v); toLM[l][v] = d(v, landmark_l).
	fromLM [][]float64
	toLM   [][]float64
}

// BuildALT preprocesses g with numLandmarks landmarks selected by the
// farthest-point heuristic under w.
func BuildALT(g *roadnet.Graph, w Weight, numLandmarks int) *ALT {
	if numLandmarks < 1 {
		numLandmarks = 1
	}
	if numLandmarks > g.NumVertices() {
		numLandmarks = g.NumVertices()
	}
	a := &ALT{g: g, w: w}

	// Farthest-point selection: start from the vertex farthest from the
	// geographic center, then repeatedly add the vertex maximizing the
	// minimum distance to chosen landmarks.
	center := g.BBox().Center()
	first := roadnet.VertexID(0)
	bestD := -1.0
	for v := 0; v < g.NumVertices(); v++ {
		if d := geo.Distance(g.Vertex(roadnet.VertexID(v)).Point, center); d > bestD {
			bestD = d
			first = roadnet.VertexID(v)
		}
	}
	a.addLandmark(first)
	for len(a.landmarks) < numLandmarks {
		next := roadnet.VertexID(-1)
		nextD := -1.0
		for v := 0; v < g.NumVertices(); v++ {
			minD := math.Inf(1)
			for li := range a.landmarks {
				if d := a.fromLM[li][v]; d < minD {
					minD = d
				}
			}
			if !math.IsInf(minD, 1) && minD > nextD {
				nextD = minD
				next = roadnet.VertexID(v)
			}
		}
		if next < 0 {
			break
		}
		a.addLandmark(next)
	}
	return a
}

func (a *ALT) addLandmark(l roadnet.VertexID) {
	a.landmarks = append(a.landmarks, l)
	a.fromLM = append(a.fromLM, DijkstraAll(a.g, l, a.w))
	// Distances to the landmark: Dijkstra on the reverse graph.
	a.toLM = append(a.toLM, a.reverseDijkstraAll(l))
}

func (a *ALT) reverseDijkstraAll(src roadnet.VertexID) []float64 {
	n := a.g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unreached
	}
	done := make([]bool, n)
	dist[src] = 0
	h := &minHeap{}
	h.push(item{v: src})
	for !h.empty() {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, eid := range a.g.InEdges(it.v) {
			e := a.g.Edge(eid)
			nd := it.dist + a.w(e)
			if nd < dist[e.From] {
				dist[e.From] = nd
				h.push(item{v: e.From, dist: nd})
			}
		}
	}
	for i := range dist {
		if dist[i] == unreached {
			dist[i] = math.Inf(1)
		}
	}
	return dist
}

// NumLandmarks returns the number of landmarks chosen.
func (a *ALT) NumLandmarks() int { return len(a.landmarks) }

// heuristic returns an admissible lower bound on d(v, dst).
func (a *ALT) heuristic(v, dst roadnet.VertexID) float64 {
	var best float64
	for li := range a.landmarks {
		// d(v,t) >= d(L,t) - d(L,v)  and  d(v,t) >= d(v,L) - d(t,L).
		if h := a.fromLM[li][dst] - a.fromLM[li][v]; h > best {
			best = h
		}
		if h := a.toLM[li][v] - a.toLM[li][dst]; h > best {
			best = h
		}
	}
	return best
}

// boundTo returns the landmark lower bound on d(v, dst) as a closure
// suitable for Workspace.setGoalAux. The bound stays admissible when edges
// or vertices are banned (bans only increase true distances), which is what
// lets Yen spur searches stay goal-directed on an ALT engine.
func (a *ALT) boundTo(dst roadnet.VertexID) func(roadnet.VertexID) float64 {
	return func(v roadnet.VertexID) float64 { return a.heuristic(v, dst) }
}

// Query returns a minimum-cost path from src to dst. Costs equal
// Dijkstra's; the landmark heuristic only prunes the search. Search state
// comes from a pooled Workspace, so repeated queries do not reallocate the
// O(n) arrays the previous implementation built per call.
func (a *ALT) Query(src, dst roadnet.VertexID) (Path, error) {
	ws := GetWorkspace(a.g)
	defer ws.Release()
	return ws.AStarAux(a.g, src, dst, a.w, a.boundTo(dst))
}

// QueryCtx is Query honoring ctx; cancellation aborts the search and
// returns ctx's error.
func (a *ALT) QueryCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error) {
	ws := GetWorkspace(a.g)
	defer ws.Release()
	ws.bindContext(ctx)
	return ws.AStarAux(a.g, src, dst, a.w, a.boundTo(dst))
}
