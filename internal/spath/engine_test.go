package spath

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// randomTestGraph generates a jittered grid with removed edges, so random
// vertex pairs include unreachable ones (RemoveFrac strands some corners).
func randomTestGraph(t testing.TB, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := roadnet.GenConfig{
		Rows: 5 + rng.Intn(6), Cols: 5 + rng.Intn(6),
		SpacingM: 150 + 100*rng.Float64(), JitterFrac: 0.3 * rng.Float64(),
		RemoveFrac: 0.25 * rng.Float64(), ArterialEvery: 3 + rng.Intn(3),
		Motorway: rng.Intn(2) == 0,
		Origin:   geo.Point{Lon: 10, Lat: 57}, Seed: seed,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate graph (seed %d): %v", seed, err)
	}
	return g
}

func testEngines(t testing.TB, g *roadnet.Graph, w Weight) []Engine {
	t.Helper()
	return []Engine{
		NewDijkstraEngine(g, w),
		NewEngine(EngineALT, g, w, EngineConfig{Landmarks: 4}),
		NewEngine(EngineCH, g, w, EngineConfig{}),
	}
}

// TestEngineDistancesMatchDijkstra is the core equivalence property: on
// random graphs, every engine returns exactly the distances plain Dijkstra
// returns — including agreeing on unreachable pairs — and structurally
// valid paths with bit-identical costs.
func TestEngineDistancesMatchDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomTestGraph(t, seed)
		engines := testEngines(t, g, ByLength)
		rng := rand.New(rand.NewSource(seed * 97))
		for trial := 0; trial < 30; trial++ {
			src := randVertex(rng, g.NumVertices())
			dst := randVertex(rng, g.NumVertices())
			want, wantErr := Dijkstra(g, src, dst, ByLength)
			for _, e := range engines {
				got, gotErr := e.Shortest(src, dst)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d %s %d->%d: dijkstra err=%v, engine err=%v",
						seed, e.Kind(), src, dst, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				// Exact-distance engines must agree bit for bit: every
				// backend re-sums its unpacked path left to right, the same
				// association Dijkstra's relaxation uses.
				if got.Cost != want.Cost {
					t.Fatalf("seed %d %s %d->%d: cost %v != dijkstra %v",
						seed, e.Kind(), src, dst, got.Cost, want.Cost)
				}
				if err := got.Validate(g); err != nil {
					t.Fatalf("seed %d %s %d->%d: invalid path: %v", seed, e.Kind(), src, dst, err)
				}
				if got.Source() != src || got.Destination() != dst {
					t.Fatalf("seed %d %s: endpoints %d->%d, want %d->%d",
						seed, e.Kind(), got.Source(), got.Destination(), src, dst)
				}
			}
		}
	}
}

// TestEngineManyToManyMatchesDijkstraAll checks the many-to-many matrix of
// every engine against the DijkstraAll oracle, over several bounds
// including +Inf: within the bound the distances are exact, beyond it +Inf.
//
// "Exact" here means up to floating-point association: CH joins a pair's
// distance as upward-half + downward-half over precomputed shortcut sums,
// which can differ from Dijkstra's strictly sequential accumulation in the
// last ulp. Point-to-point queries re-sum the unpacked path and are
// bit-identical (TestEngineDistancesMatchDijkstra); the matrix is compared
// with a relative tolerance of a few ulps. Pairs whose oracle distance sits
// within that tolerance of the bound are skipped — an ulp decides which
// side of the cutoff they land on.
func TestEngineManyToManyMatchesDijkstraAll(t *testing.T) {
	const relTol = 1e-12
	for seed := int64(1); seed <= 4; seed++ {
		g := randomTestGraph(t, seed+10)
		engines := testEngines(t, g, ByLength)
		rng := rand.New(rand.NewSource(seed * 131))
		nsrc, ntgt := 3+rng.Intn(3), 3+rng.Intn(3)
		sources := make([]roadnet.VertexID, nsrc)
		targets := make([]roadnet.VertexID, ntgt)
		for i := range sources {
			sources[i] = randVertex(rng, g.NumVertices())
		}
		for j := range targets {
			targets[j] = randVertex(rng, g.NumVertices())
		}
		oracle := make([][]float64, nsrc)
		for i, s := range sources {
			oracle[i] = DijkstraAll(g, s, ByLength)
		}
		for _, bound := range []float64{500, 2000, math.Inf(1)} {
			for _, e := range engines {
				out := make([][]float64, nsrc)
				for i := range out {
					out[i] = make([]float64, ntgt)
				}
				e.ManyToMany(sources, targets, bound, out)
				for i := range sources {
					for j, tv := range targets {
						want := oracle[i][tv]
						if !math.IsInf(bound, 1) && math.Abs(want-bound) <= relTol*bound {
							continue // an ulp decides the cutoff side
						}
						if want > bound {
							want = math.Inf(1)
						}
						got := out[i][j]
						if math.IsInf(got, 1) != math.IsInf(want, 1) {
							t.Fatalf("seed %d %s bound %v: d(%d,%d) = %v, oracle %v",
								seed, e.Kind(), bound, sources[i], tv, got, want)
						}
						if !math.IsInf(want, 1) && math.Abs(got-want) > relTol*want {
							t.Fatalf("seed %d %s bound %v: d(%d,%d) = %v, oracle %v (beyond ulp tolerance)",
								seed, e.Kind(), bound, sources[i], tv, got, want)
						}
					}
				}
			}
		}
	}
}

// TestEngineTopKMatchesPlain checks that Yen enumeration on a prepared
// engine returns exactly the plain TopK paths, and the diversified variant
// exactly the plain DiversifiedTopK paths.
func TestEngineTopKMatchesPlain(t *testing.T) {
	g := randomTestGraph(t, 3)
	sim := func(a, b Path) float64 { // unweighted Jaccard stand-in, no import cycle
		seen := map[roadnet.EdgeID]bool{}
		for _, e := range a.Edges {
			seen[e] = true
		}
		inter, union := 0, len(seen)
		for _, e := range b.Edges {
			if seen[e] {
				inter++
			} else {
				union++
			}
		}
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	}
	engines := testEngines(t, g, ByLength)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		wantTop, errTop := TopK(g, src, dst, 5, ByLength)
		wantDiv, errDiv := DiversifiedTopK(g, src, dst, 4, ByLength, sim, 0.8, 40)
		for _, e := range engines {
			gotTop, err := TopKEngine(e, src, dst, 5)
			if (errTop == nil) != (err == nil) {
				t.Fatalf("%s TopK err=%v, plain err=%v", e.Kind(), err, errTop)
			}
			if errTop == nil {
				comparePathSets(t, e.Kind().String()+" TopK", gotTop, wantTop)
			}
			gotDiv, err := DiversifiedTopKEngine(e, src, dst, 4, sim, 0.8, 40)
			if (errDiv == nil) != (err == nil) {
				t.Fatalf("%s DiversifiedTopK err=%v, plain err=%v", e.Kind(), err, errDiv)
			}
			if errDiv == nil {
				comparePathSets(t, e.Kind().String()+" DiversifiedTopK", gotDiv, wantDiv)
			}
		}
	}
}

func comparePathSets(t *testing.T, label string, got, want []Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d paths, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: path %d differs: %v vs %v", label, i, got[i].Edges, want[i].Edges)
		}
		if got[i].Cost != want[i].Cost {
			t.Fatalf("%s: path %d cost %v != %v", label, i, got[i].Cost, want[i].Cost)
		}
	}
}

// TestEngineDisconnected checks unreachable-pair agreement on a graph with
// no edges at all.
func TestEngineDisconnected(t *testing.T) {
	g := disconnectedPair(t)
	for _, e := range testEngines(t, g, ByLength) {
		if _, err := e.Shortest(0, 1); err != ErrNoPath {
			t.Fatalf("%s: err = %v, want ErrNoPath", e.Kind(), err)
		}
		out := [][]float64{{0}}
		e.ManyToMany([]roadnet.VertexID{0}, []roadnet.VertexID{1}, math.Inf(1), out)
		if !math.IsInf(out[0][0], 1) {
			t.Fatalf("%s: many-to-many over a gap = %v, want +Inf", e.Kind(), out[0][0])
		}
		out = [][]float64{{1}}
		e.ManyToMany([]roadnet.VertexID{0}, []roadnet.VertexID{0}, math.Inf(1), out)
		if out[0][0] != 0 {
			t.Fatalf("%s: self distance = %v, want 0", e.Kind(), out[0][0])
		}
	}
}

// TestPrepRoundTrip checks that a serialized Prep reloads into structures
// answering every query identically, and that a prep bound to the wrong
// graph is rejected at load time.
func TestPrepRoundTrip(t *testing.T) {
	g := randomTestGraph(t, 5)
	prep := BuildPrep(g, PrepConfig{Landmarks: 4})
	var buf bytes.Buffer
	if err := prep.Save(&buf); err != nil {
		t.Fatalf("save prep: %v", err)
	}
	loaded, err := LoadPrep(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("load prep: %v", err)
	}
	if loaded.CH == nil || loaded.ALT == nil {
		t.Fatalf("loaded prep missing structures: CH=%v ALT=%v", loaded.CH != nil, loaded.ALT != nil)
	}
	if loaded.CH.NumShortcuts() != prep.CH.NumShortcuts() {
		t.Fatalf("shortcuts %d != %d", loaded.CH.NumShortcuts(), prep.CH.NumShortcuts())
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		src := randVertex(rng, g.NumVertices())
		dst := randVertex(rng, g.NumVertices())
		want, wantErr := prep.CH.Query(src, dst)
		got, gotErr := loaded.CH.Query(src, dst)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%d->%d: err %v vs %v", src, dst, wantErr, gotErr)
		}
		if wantErr == nil && (!got.Equal(want) || got.Cost != want.Cost) {
			t.Fatalf("%d->%d: reloaded CH path differs", src, dst)
		}
		wa, _ := EngineFromALT(prep.ALT).Shortest(src, dst)
		ga, _ := EngineFromALT(loaded.ALT).Shortest(src, dst)
		if wa.Cost != ga.Cost {
			t.Fatalf("%d->%d: reloaded ALT cost %v != %v", src, dst, ga.Cost, wa.Cost)
		}
	}

	// A prep saved for one graph must not bind to a different one.
	other := randomTestGraph(t, 6)
	if other.NumVertices() != g.NumVertices() || other.NumEdges() != g.NumEdges() {
		if _, err := LoadPrep(bytes.NewReader(buf.Bytes()), other); err == nil {
			t.Fatal("prep bound to mismatched graph, want error")
		}
	}

	// Truncated payloads are rejected, not panicked on.
	if _, err := LoadPrep(bytes.NewReader(buf.Bytes()[:buf.Len()/3]), g); err == nil {
		t.Fatal("truncated prep loaded, want error")
	}
}

// TestPrepRejectsBadShortcut checks that a prep whose shortcut arcs cannot
// be unpacked safely — missing half-arcs or a rank-invariant violation that
// could make unpacking recurse forever — is rejected at load time rather
// than crashing a query.
func TestPrepRejectsBadShortcut(t *testing.T) {
	g := gridGraph(t, 6, 6)
	prep := BuildPrep(g, PrepConfig{SkipALT: true})
	sc := -1
	for i, mid := range prep.CH.arcMid {
		if mid >= 0 {
			sc = i
			break
		}
	}
	if sc < 0 {
		t.Fatal("no shortcut to corrupt")
	}

	// Re-point the shortcut's middle vertex at the highest-ranked vertex:
	// that breaks order[mid] < min(order[from], order[to]).
	savedMid := prep.CH.arcMid[sc]
	var top int32
	for v, r := range prep.CH.order {
		if r == int32(g.NumVertices()-1) {
			top = int32(v)
		}
	}
	prep.CH.arcMid[sc] = top
	var buf bytes.Buffer
	if err := prep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPrep(bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Fatal("prep with rank-violating shortcut loaded, want error")
	}
	prep.CH.arcMid[sc] = savedMid

	// Re-point the middle at a low-ranked vertex with no connecting
	// half-arcs: unpacking would silently read arcIndex's zero value.
	from := prep.CH.arcFrom[sc]
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if prep.CH.order[v] == 0 {
			if _, ok := prep.CH.arcIndex[int64(from)<<32|int64(uint32(v))]; !ok {
				prep.CH.arcMid[sc] = v
				break
			}
		}
	}
	buf.Reset()
	if err := prep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPrep(bytes.NewReader(buf.Bytes()), g); err == nil {
		t.Fatal("prep with dangling shortcut half-arc loaded, want error")
	}
}

// TestPrepEngineSelection checks the engine materialization rules.
func TestPrepEngineSelection(t *testing.T) {
	g := gridGraph(t, 5, 5)
	full := BuildPrep(g, PrepConfig{Landmarks: 2})
	if e := full.Engine(EngineCH, g); e == nil || e.Kind() != EngineCH {
		t.Fatalf("full prep CH engine = %v", e)
	}
	if e := full.BestEngine(g); e == nil || e.Kind() != EngineCH {
		t.Fatalf("full prep best engine = %v", e)
	}
	altOnly := BuildPrep(g, PrepConfig{Landmarks: 2, SkipCH: true})
	if e := altOnly.Engine(EngineCH, g); e != nil {
		t.Fatalf("ALT-only prep produced a CH engine")
	}
	if e := altOnly.BestEngine(g); e == nil || e.Kind() != EngineALT {
		t.Fatalf("ALT-only prep best engine = %v", e)
	}
	var nilPrep *Prep
	if e := nilPrep.Engine(EngineCH, g); e != nil {
		t.Fatalf("nil prep produced a CH engine")
	}
	if e := nilPrep.Engine(EngineDijkstra, g); e == nil || e.Kind() != EngineDijkstra {
		t.Fatalf("nil prep dijkstra engine = %v", e)
	}
}

// TestCHQueryAllocs locks in the zero-alloc CH query contract: steady-state
// queries allocate only the returned path.
func TestCHQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g := gridGraph(t, 8, 8)
	ch := BuildCH(g, ByLength)
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]roadnet.VertexID, 16)
	for i := range pairs {
		pairs[i] = [2]roadnet.VertexID{randVertex(rng, g.NumVertices()), randVertex(rng, g.NumVertices())}
	}
	// Warm the workspace pool.
	for _, p := range pairs {
		_, _ = ch.Query(p[0], p[1])
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, p := range pairs {
			_, _ = ch.Query(p[0], p[1])
		}
	})
	perQuery := avg / float64(len(pairs))
	// The path result needs up to ~4 allocations (edges, vertices, and
	// growth); search state must contribute none.
	if perQuery > 5 {
		t.Fatalf("CH query allocates %.1f allocs/op, want <= 5 (result only)", perQuery)
	}
}
