package spath

import (
	"encoding/gob"
	"fmt"
	"io"

	"pathrank/internal/roadnet"
)

// Prep bundles the precomputed speedup structures for one road network
// under the ByLength weight — the metric every candidate-generation and
// map-matching consumer routes with. Building a Prep once (at training
// time) and persisting it in the serving artifact is what lets
// pathrank-serve cold-start without any preprocessing.
//
// Either structure may be nil: a Prep carries whatever was built, and
// consumers fall back to construction on demand for the kinds it lacks.
type Prep struct {
	CH  *ContractionHierarchy
	ALT *ALT
}

// PrepConfig parameterizes BuildPrep.
type PrepConfig struct {
	// Landmarks is the ALT landmark count (default DefaultLandmarks).
	Landmarks int
	// SkipCH / SkipALT omit the respective structure.
	SkipCH  bool
	SkipALT bool
}

// BuildPrep preprocesses g under ByLength according to cfg.
func BuildPrep(g *roadnet.Graph, cfg PrepConfig) *Prep {
	p := &Prep{}
	if !cfg.SkipCH {
		p.CH = BuildCH(g, ByLength)
	}
	if !cfg.SkipALT {
		lm := cfg.Landmarks
		if lm <= 0 {
			lm = DefaultLandmarks
		}
		p.ALT = BuildALT(g, ByLength, lm)
	}
	return p
}

// Engine wires the prep's structure of the requested kind into an Engine
// over g, or returns nil when the prep does not carry that structure (the
// caller then builds one with NewEngine). EngineDijkstra always succeeds —
// it needs no preprocessing.
func (p *Prep) Engine(kind EngineKind, g *roadnet.Graph) Engine {
	if p == nil {
		if kind == EngineDijkstra {
			return NewDijkstraEngine(g, ByLength)
		}
		return nil
	}
	switch kind {
	case EngineCH:
		if p.CH != nil {
			return EngineFromCH(p.CH, g, ByLength)
		}
	case EngineALT:
		if p.ALT != nil {
			return EngineFromALT(p.ALT)
		}
	case EngineDijkstra:
		return NewDijkstraEngine(g, ByLength)
	}
	return nil
}

// BestEngine returns the fastest engine the prep can wire without any
// building: CH when present, else ALT, else nil.
func (p *Prep) BestEngine(g *roadnet.Graph) Engine {
	if e := p.Engine(EngineCH, g); e != nil {
		return e
	}
	return p.Engine(EngineALT, g)
}

// prepWire is the gob payload of a serialized Prep. The CH is stored as
// its contraction order plus the full augmented arc set (original edges and
// shortcuts); adjacency and the unpacking index are derived on load. The
// ALT is its landmark list and both distance tables.
type prepWire struct {
	NumVertices int32
	NumEdges    int32

	// CH section; empty Order means no CH.
	Order     []int32
	ArcFrom   []int32
	ArcTo     []int32
	ArcWeight []float64
	ArcMid    []int32
	ArcEdge   []int32

	// ALT section; empty Landmarks means no ALT.
	Landmarks []int32
	FromLM    [][]float64
	ToLM      [][]float64
}

// Save writes the prep in a self-describing binary form. The graph itself
// is not stored — LoadPrep re-binds the structures to the caller's graph
// and validates shape compatibility.
func (p *Prep) Save(w io.Writer) error {
	var wire prepWire
	if p.CH != nil {
		ch := p.CH
		wire.NumVertices = int32(ch.g.NumVertices())
		wire.NumEdges = int32(ch.g.NumEdges())
		wire.Order = ch.order
		wire.ArcFrom = ch.arcFrom
		wire.ArcTo = ch.arcTo
		wire.ArcWeight = ch.arcWeight
		wire.ArcMid = ch.arcMid
		wire.ArcEdge = make([]int32, len(ch.arcEdge))
		for i, e := range ch.arcEdge {
			wire.ArcEdge[i] = int32(e)
		}
	}
	if p.ALT != nil {
		a := p.ALT
		wire.NumVertices = int32(a.g.NumVertices())
		wire.NumEdges = int32(a.g.NumEdges())
		wire.Landmarks = make([]int32, len(a.landmarks))
		for i, l := range a.landmarks {
			wire.Landmarks[i] = int32(l)
		}
		wire.FromLM = a.fromLM
		wire.ToLM = a.toLM
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("spath: encode prep: %w", err)
	}
	return nil
}

// LoadPrep reads a prep written by Save and re-binds it to g, validating
// every index against g's shape first — a prep decoded from a corrupt or
// mismatched payload fails here instead of panicking at query time.
func LoadPrep(r io.Reader, g *roadnet.Graph) (*Prep, error) {
	var wire prepWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("spath: decode prep: %w", err)
	}
	n, m := int32(g.NumVertices()), int32(g.NumEdges())
	if len(wire.Order) > 0 || len(wire.Landmarks) > 0 {
		if wire.NumVertices != n || wire.NumEdges != m {
			return nil, fmt.Errorf("spath: prep built for %dv/%de graph, loading against %dv/%de",
				wire.NumVertices, wire.NumEdges, n, m)
		}
	}
	p := &Prep{}

	if len(wire.Order) > 0 {
		if int32(len(wire.Order)) != n {
			return nil, fmt.Errorf("spath: prep order covers %d of %d vertices", len(wire.Order), n)
		}
		na := len(wire.ArcFrom)
		if len(wire.ArcTo) != na || len(wire.ArcWeight) != na || len(wire.ArcMid) != na || len(wire.ArcEdge) != na {
			return nil, fmt.Errorf("spath: prep arc sections have inconsistent lengths")
		}
		if na < int(m) {
			return nil, fmt.Errorf("spath: prep carries %d arcs for a %d-edge graph", na, m)
		}
		for i := 0; i < na; i++ {
			from, to, mid := wire.ArcFrom[i], wire.ArcTo[i], wire.ArcMid[i]
			if from < 0 || from >= n || to < 0 || to >= n {
				return nil, fmt.Errorf("spath: prep arc %d endpoints (%d,%d) out of range", i, from, to)
			}
			if mid < -1 || mid >= n {
				return nil, fmt.Errorf("spath: prep arc %d middle vertex %d out of range", i, mid)
			}
			if mid < 0 && (wire.ArcEdge[i] < 0 || wire.ArcEdge[i] >= m) {
				return nil, fmt.Errorf("spath: prep arc %d edge %d out of range", i, wire.ArcEdge[i])
			}
			if !(wire.ArcWeight[i] >= 0) { // also rejects NaN
				return nil, fmt.Errorf("spath: prep arc %d has invalid weight %v", i, wire.ArcWeight[i])
			}
		}
		ch := &ContractionHierarchy{g: g, order: wire.Order}
		ch.arcFrom = wire.ArcFrom
		ch.arcTo = wire.ArcTo
		ch.arcWeight = wire.ArcWeight
		ch.arcMid = wire.ArcMid
		ch.arcEdge = make([]roadnet.EdgeID, na)
		for i, e := range wire.ArcEdge {
			ch.arcEdge[i] = roadnet.EdgeID(e)
		}
		ch.buildAdjacency()
		// Unpackability check, after the index exists: every shortcut must
		// (a) have both half-arcs present in the index — a missing key
		// would silently unpack through arc 0 — and (b) satisfy the CH rank
		// invariant order[mid] < min(order[from], order[to]). The invariant
		// is what makes unpacking terminate (each recursion strictly
		// decreases the endpoints' rank sum), so a crafted payload that
		// wires shortcuts into a cycle is rejected here instead of
		// overflowing the stack at query time.
		for i := 0; i < na; i++ {
			mid := ch.arcMid[i]
			if mid < 0 {
				continue
			}
			from, to := ch.arcFrom[i], ch.arcTo[i]
			if ch.order[mid] >= ch.order[from] || ch.order[mid] >= ch.order[to] {
				return nil, fmt.Errorf("spath: prep shortcut %d violates rank invariant (mid %d not below %d/%d)",
					i, mid, from, to)
			}
			if _, ok := ch.arcIndex[int64(from)<<32|int64(uint32(mid))]; !ok {
				return nil, fmt.Errorf("spath: prep shortcut %d has no half-arc %d->%d", i, from, mid)
			}
			if _, ok := ch.arcIndex[int64(mid)<<32|int64(uint32(to))]; !ok {
				return nil, fmt.Errorf("spath: prep shortcut %d has no half-arc %d->%d", i, mid, to)
			}
		}
		p.CH = ch
	}

	if len(wire.Landmarks) > 0 {
		nl := len(wire.Landmarks)
		if len(wire.FromLM) != nl || len(wire.ToLM) != nl {
			return nil, fmt.Errorf("spath: prep landmark tables cover %d/%d of %d landmarks",
				len(wire.FromLM), len(wire.ToLM), nl)
		}
		a := &ALT{g: g, w: ByLength}
		for i, l := range wire.Landmarks {
			if l < 0 || l >= n {
				return nil, fmt.Errorf("spath: prep landmark %d vertex %d out of range", i, l)
			}
			if int32(len(wire.FromLM[i])) != n || int32(len(wire.ToLM[i])) != n {
				return nil, fmt.Errorf("spath: prep landmark %d table sized %d/%d, want %d",
					i, len(wire.FromLM[i]), len(wire.ToLM[i]), n)
			}
			a.landmarks = append(a.landmarks, roadnet.VertexID(l))
		}
		a.fromLM = wire.FromLM
		a.toLM = wire.ToLM
		p.ALT = a
	}
	return p, nil
}
