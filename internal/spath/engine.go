package spath

import (
	"context"
	"fmt"
	"strings"

	"pathrank/internal/roadnet"
)

// EngineKind names a shortest-path backend.
type EngineKind uint8

const (
	// EngineDijkstra is plain workspace-backed Dijkstra: no preprocessing.
	EngineDijkstra EngineKind = iota
	// EngineALT is A* with landmark lower bounds: light preprocessing (two
	// Dijkstras per landmark), goal-directed exact queries.
	EngineALT
	// EngineCH is contraction hierarchies: the heaviest preprocessing and
	// the fastest exact point-to-point and many-to-many queries.
	EngineCH
)

// String names the kind as accepted by ParseEngineKind.
func (k EngineKind) String() string {
	switch k {
	case EngineDijkstra:
		return "dijkstra"
	case EngineALT:
		return "alt"
	case EngineCH:
		return "ch"
	default:
		return fmt.Sprintf("engine(%d)", uint8(k))
	}
}

// ParseEngineKind parses an engine name ("dijkstra", "alt", "ch").
func ParseEngineKind(s string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "dijkstra", "":
		return EngineDijkstra, nil
	case "alt":
		return EngineALT, nil
	case "ch":
		return EngineCH, nil
	default:
		return EngineDijkstra, fmt.Errorf("spath: unknown engine %q (want dijkstra, alt or ch)", s)
	}
}

// DefaultLandmarks is the ALT landmark count used when a configuration
// leaves it zero.
const DefaultLandmarks = 8

// EngineConfig parameterizes engine construction.
type EngineConfig struct {
	// Landmarks is the ALT landmark count (default DefaultLandmarks).
	Landmarks int
}

// Engine answers exact shortest-path queries over one (graph, weight)
// pair. Every backend returns minimum-cost results — the choice of kind
// affects preprocessing and query time, never optimality — so consumers
// (candidate generation, map matching, serving) can switch engines without
// changing outputs beyond floating-point tie-breaking among equal-cost
// paths.
//
// Engines are immutable after construction and safe for concurrent use;
// per-query state lives in pooled workspaces.
type Engine interface {
	// Kind reports the backend.
	Kind() EngineKind
	// Graph returns the road network the engine was built for.
	Graph() *roadnet.Graph
	// Weight returns the edge-weight function the engine was built for.
	Weight() Weight
	// Shortest returns a minimum-cost path from src to dst, or ErrNoPath.
	Shortest(src, dst roadnet.VertexID) (Path, error)
	// ShortestCtx is Shortest honoring ctx: cancellation aborts the
	// search and returns ctx's error. The check is amortized over heap
	// pops, so a never-canceled context changes neither the result nor,
	// measurably, the cost.
	ShortestCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error)
	// ManyToMany fills out[i][j] with the exact cost from sources[i] to
	// targets[j] for every pair within bound; pairs farther than bound
	// (and unreachable pairs) get +Inf. out must have len(sources) rows of
	// len(targets) columns. Pass math.Inf(1) for an unbounded query.
	ManyToMany(sources, targets []roadnet.VertexID, bound float64, out [][]float64)

	// spurHeuristic returns an admissible per-vertex lower bound on the
	// cost to dst that remains valid under edge/vertex bans (bans only
	// increase distances), or nil when the engine adds nothing beyond the
	// geometric default. Unexported: engines are built by this package.
	spurHeuristic(dst roadnet.VertexID) func(roadnet.VertexID) float64
}

// NewEngine builds an engine of the requested kind over g and w,
// performing whatever preprocessing the kind needs (none for Dijkstra,
// landmark tables for ALT, contraction for CH). Prebuilt structures can be
// wrapped directly with EngineFromALT / EngineFromCH instead.
func NewEngine(kind EngineKind, g *roadnet.Graph, w Weight, cfg EngineConfig) Engine {
	switch kind {
	case EngineALT:
		lm := cfg.Landmarks
		if lm <= 0 {
			lm = DefaultLandmarks
		}
		return EngineFromALT(BuildALT(g, w, lm))
	case EngineCH:
		return EngineFromCH(BuildCH(g, w), g, w)
	default:
		return NewDijkstraEngine(g, w)
	}
}

// --- Dijkstra backend ---

type dijkstraEngine struct {
	g *roadnet.Graph
	w Weight
}

// NewDijkstraEngine wraps plain workspace Dijkstra as an Engine. It is the
// no-preprocessing baseline every other engine must agree with.
func NewDijkstraEngine(g *roadnet.Graph, w Weight) Engine {
	return &dijkstraEngine{g: g, w: w}
}

func (e *dijkstraEngine) Kind() EngineKind      { return EngineDijkstra }
func (e *dijkstraEngine) Graph() *roadnet.Graph { return e.g }
func (e *dijkstraEngine) Weight() Weight        { return e.w }

func (e *dijkstraEngine) Shortest(src, dst roadnet.VertexID) (Path, error) {
	return Dijkstra(e.g, src, dst, e.w)
}

func (e *dijkstraEngine) ShortestCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error) {
	return DijkstraCtx(ctx, e.g, src, dst, e.w)
}

func (e *dijkstraEngine) ManyToMany(sources, targets []roadnet.VertexID, bound float64, out [][]float64) {
	boundedManyToMany(e.g, e.w, sources, targets, bound, out)
}

func (e *dijkstraEngine) spurHeuristic(roadnet.VertexID) func(roadnet.VertexID) float64 {
	return nil
}

// boundedManyToMany runs one bounded multi-target search per source on a
// shared pooled workspace; the Dijkstra and ALT engines both use it.
func boundedManyToMany(g *roadnet.Graph, w Weight, sources, targets []roadnet.VertexID, bound float64, out [][]float64) {
	ws := GetWorkspace(g)
	defer ws.Release()
	for i, s := range sources {
		ws.BoundedDistances(g, s, targets, bound, w, out[i])
	}
}

// --- ALT backend ---

type altEngine struct {
	a *ALT
}

// EngineFromALT wraps a prebuilt ALT structure as an Engine.
func EngineFromALT(a *ALT) Engine { return &altEngine{a: a} }

func (e *altEngine) Kind() EngineKind      { return EngineALT }
func (e *altEngine) Graph() *roadnet.Graph { return e.a.g }
func (e *altEngine) Weight() Weight        { return e.a.w }

func (e *altEngine) Shortest(src, dst roadnet.VertexID) (Path, error) {
	return e.a.Query(src, dst)
}

func (e *altEngine) ShortestCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error) {
	return e.a.QueryCtx(ctx, src, dst)
}

func (e *altEngine) ManyToMany(sources, targets []roadnet.VertexID, bound float64, out [][]float64) {
	// Landmark bounds are goal-directed and do not compose across a target
	// set, so many-to-many falls back to bounded multi-target Dijkstra.
	boundedManyToMany(e.a.g, e.a.w, sources, targets, bound, out)
}

func (e *altEngine) spurHeuristic(dst roadnet.VertexID) func(roadnet.VertexID) float64 {
	return e.a.boundTo(dst)
}

// --- CH backend ---

type chEngine struct {
	ch *ContractionHierarchy
	g  *roadnet.Graph
	w  Weight
}

// EngineFromCH wraps a prebuilt contraction hierarchy as an Engine. w must
// be the weight function the hierarchy was built with.
func EngineFromCH(ch *ContractionHierarchy, g *roadnet.Graph, w Weight) Engine {
	return &chEngine{ch: ch, g: g, w: w}
}

func (e *chEngine) Kind() EngineKind      { return EngineCH }
func (e *chEngine) Graph() *roadnet.Graph { return e.g }
func (e *chEngine) Weight() Weight        { return e.w }

func (e *chEngine) Shortest(src, dst roadnet.VertexID) (Path, error) {
	return e.ShortestCtx(context.Background(), src, dst)
}

func (e *chEngine) ShortestCtx(ctx context.Context, src, dst roadnet.VertexID) (Path, error) {
	p, err := e.ch.QueryCtx(ctx, src, dst)
	if err != nil {
		return p, err
	}
	// The bidirectional search accumulates the cost through shortcut sums,
	// whose floating-point rounding can differ from Dijkstra's sequential
	// accumulation in the last ulp. Re-sum the unpacked edges left to right
	// — exactly Dijkstra's association — so costs are bit-identical across
	// engines.
	var cost float64
	for _, eid := range p.Edges {
		cost += e.w(e.g.Edge(eid))
	}
	p.Cost = cost
	return p, nil
}

func (e *chEngine) ManyToMany(sources, targets []roadnet.VertexID, bound float64, out [][]float64) {
	e.ch.ManyToMany(sources, targets, bound, out)
}

func (e *chEngine) spurHeuristic(roadnet.VertexID) func(roadnet.VertexID) float64 {
	return nil
}
