package spath

import (
	"math"
	"testing"

	"pathrank/internal/roadnet"
)

func TestDiversifiedTopKOne(t *testing.T) {
	g := gridGraph(t, 5, 5)
	paths, err := DiversifiedTopK(g, 0, 12, 1, ByLength, overlapSim, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("k=1 returned %d paths", len(paths))
	}
	best, _ := Dijkstra(g, 0, 12, ByLength)
	if math.Abs(paths[0].Cost-best.Cost) > 1e-9 {
		t.Fatal("k=1 diversified path should be the shortest path")
	}
}

func TestDiversifiedTopKZero(t *testing.T) {
	g := gridGraph(t, 5, 5)
	paths, err := DiversifiedTopK(g, 0, 12, 0, ByLength, overlapSim, 0.5, 10)
	if err != nil || paths != nil {
		t.Fatalf("k=0: paths=%v err=%v", paths, err)
	}
}

func TestDiversifiedTopKThresholdZeroDisjointOnly(t *testing.T) {
	// threshold 0 accepts only fully disjoint paths.
	g := gridGraph(t, 6, 6)
	paths, err := DiversifiedTopK(g, 0, roadnet.VertexID(g.NumVertices()-1), 4, ByLength, overlapSim, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if s := overlapSim(paths[i], paths[j]); s > 0 {
				t.Fatalf("paths %d,%d share edges (sim %.3f) despite threshold 0", i, j, s)
			}
		}
	}
}

func TestBidirectionalSelfQuery(t *testing.T) {
	g := gridGraph(t, 4, 4)
	p, err := BidirectionalDijkstra(g, 2, 2, ByLength)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self query: len=%d err=%v", p.Len(), err)
	}
}

func TestAStarSelfQuery(t *testing.T) {
	g := gridGraph(t, 4, 4)
	p, err := AStar(g, 2, 2, ByLength)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self query: len=%d err=%v", p.Len(), err)
	}
}

func TestPathValidateRejectsBrokenChain(t *testing.T) {
	g := gridGraph(t, 4, 4)
	p, err := Dijkstra(g, 0, 5, ByLength)
	if err != nil || p.Len() < 2 {
		t.Skip("need a multi-edge path")
	}
	broken := p.Clone()
	broken.Vertices[1] = broken.Vertices[1] + 1 // corrupt the chain
	if broken.Validate(g) == nil {
		t.Fatal("Validate should reject a broken vertex chain")
	}
	short := Path{Vertices: p.Vertices[:1], Edges: p.Edges}
	if short.Validate(g) == nil {
		t.Fatal("Validate should reject vertex/edge count mismatch")
	}
	empty := Path{}
	if empty.Validate(g) == nil {
		t.Fatal("Validate should reject an empty path")
	}
}
