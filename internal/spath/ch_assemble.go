package spath

import (
	"sort"

	"pathrank/internal/roadnet"
)

// CHData is the complete flat representation of a built
// ContractionHierarchy: every query structure as plain arrays, including
// the unpacking index in its sorted (IdxKeys/IdxVals) form. It is what
// the artifact raw section persists, and what AssembleCH rewraps without
// copying — the slices may alias a memory-mapped file.
type CHData struct {
	Order     []int32
	ArcFrom   []int32
	ArcTo     []int32
	ArcWeight []float64
	ArcMid    []int32
	ArcEdge   []roadnet.EdgeID
	UpStart   []int32
	UpArcs    []int32
	DownStart []int32
	DownArcs  []int32
	// IdxKeys is sorted ascending; IdxVals[i] is the minimum-weight arc
	// for key IdxKeys[i] (key = from<<32 | uint32(to)).
	IdxKeys []int64
	IdxVals []int32
}

// RawData returns the hierarchy's flat arrays. The adjacency and arc
// arrays alias internal storage; the index arrays are derived (sorted)
// from the construction-time map when the hierarchy was built rather
// than assembled, which costs O(arcs log arcs) once at save time.
func (ch *ContractionHierarchy) RawData() CHData {
	d := CHData{
		Order:     ch.order,
		ArcFrom:   ch.arcFrom,
		ArcTo:     ch.arcTo,
		ArcWeight: ch.arcWeight,
		ArcMid:    ch.arcMid,
		ArcEdge:   ch.arcEdge,
		UpStart:   ch.upStart,
		UpArcs:    ch.upArcs,
		DownStart: ch.downStart,
		DownArcs:  ch.downArcs,
		IdxKeys:   ch.idxKeys,
		IdxVals:   ch.idxVals,
	}
	if ch.arcIndex != nil {
		keys := make([]int64, 0, len(ch.arcIndex))
		for k := range ch.arcIndex {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		vals := make([]int32, len(keys))
		for i, k := range keys {
			vals[i] = ch.arcIndex[k]
		}
		d.IdxKeys, d.IdxVals = keys, vals
	}
	return d
}

// AssembleCH wraps pre-built arrays as a queryable ContractionHierarchy
// without copying, rebuilding adjacency, or constructing the unpacking
// map — load cost is O(1) regardless of arc count, which is what makes a
// memory-mapped shard artifact cold-start in O(open). The arrays must
// satisfy RawData's layout for g (the artifact loader trusts its own
// writer); queries resolve shortcut unpacking by binary search over
// IdxKeys.
func AssembleCH(g *roadnet.Graph, d CHData) *ContractionHierarchy {
	return &ContractionHierarchy{
		g:         g,
		order:     d.Order,
		arcFrom:   d.ArcFrom,
		arcTo:     d.ArcTo,
		arcWeight: d.ArcWeight,
		arcMid:    d.ArcMid,
		arcEdge:   d.ArcEdge,
		upStart:   d.UpStart,
		upArcs:    d.UpArcs,
		downStart: d.DownStart,
		downArcs:  d.DownArcs,
		idxKeys:   d.IdxKeys,
		idxVals:   d.IdxVals,
	}
}
