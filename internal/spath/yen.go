package spath

import (
	"context"
	"sort"

	"pathrank/internal/roadnet"
)

// yenEnum enumerates loopless shortest paths from a fixed source to a fixed
// destination in increasing cost order (Yen's algorithm), one path per next
// call. The enumerator form is what makes DiversifiedTopK lazy: it pulls
// paths only until enough diverse ones are accepted, instead of eagerly
// enumerating the full probe budget and filtering afterwards.
//
// All spur queries share the enclosing pooled Workspace: the banned
// vertex/edge sets are generation-stamped arrays rather than per-iteration
// maps, the edge-weight cache is filled once, and the goal heuristic
// (geometric, optionally strengthened by an engine's landmark bounds) is
// memoized per destination.
type yenEnum struct {
	g          *roadnet.Graph
	ws         *Workspace
	w          Weight
	dst        roadnet.VertexID
	paths      []Path // emitted so far, increasing cost
	candidates []Path
	seen       map[string]bool
}

// newYenEnum starts an enumeration whose first emitted path is first. The
// caller must have filled ws's weight cache and goal heuristic for (w, dst).
func newYenEnum(g *roadnet.Graph, ws *Workspace, w Weight, dst roadnet.VertexID, first Path) *yenEnum {
	return &yenEnum{
		g: g, ws: ws, w: w, dst: dst,
		paths: []Path{first},
		seen:  map[string]bool{pathKey(first): true},
	}
}

// next computes the cheapest loopless path after the ones already emitted,
// reporting false when the path set is exhausted or the workspace's bound
// context has been canceled (the caller distinguishes the two via
// ws.ctxErr).
func (y *yenEnum) next() (Path, bool) {
	if y.ws.ctxErr != nil {
		return Path{}, false
	}
	prev := y.paths[len(y.paths)-1]
	// Each vertex of the previous path except the last is a spur node.
	for i := 0; i < len(prev.Vertices)-1; i++ {
		spur := prev.Vertices[i]
		rootVertices := prev.Vertices[:i+1]
		rootEdges := prev.Edges[:i]

		y.ws.resetBans(y.g)
		// Ban the next edge of every accepted path sharing this root.
		for _, p := range y.paths {
			if sharesRoot(p, rootVertices) && len(p.Edges) > i {
				y.ws.banEdge(p.Edges[i])
			}
		}
		// Ban root vertices (except the spur) to keep paths loopless.
		for _, v := range rootVertices[:i] {
			y.ws.banVertex(v)
		}

		spurPath, ok := y.ws.dijkstraConstrained(y.g, spur, y.dst)
		if !ok {
			continue
		}
		total := joinPaths(y.g, rootVertices, rootEdges, spurPath, y.w)
		key := pathKey(total)
		if y.seen[key] {
			continue
		}
		y.seen[key] = true
		y.candidates = append(y.candidates, total)
	}
	if len(y.candidates) == 0 {
		return Path{}, false
	}
	sort.Slice(y.candidates, func(a, b int) bool { return y.candidates[a].Cost < y.candidates[b].Cost })
	p := y.candidates[0]
	y.candidates = y.candidates[1:]
	y.paths = append(y.paths, p)
	return p, true
}

// TopK returns up to k loopless shortest paths from src to dst in increasing
// cost order, using Yen's algorithm. This implements the paper's TkDI
// candidate-generation strategy ("top-k shortest paths w.r.t. distance").
// It returns ErrNoPath if even the shortest path does not exist.
func TopK(g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight) ([]Path, error) {
	return TopKCtx(context.Background(), g, src, dst, k, w)
}

// TopKCtx is TopK honoring ctx: cancellation stops the enumeration —
// including a spur search in flight — and returns ctx's error. The check is
// amortized over heap pops, so with a never-canceled (or Background)
// context results are bit-identical to TopK at indistinguishable cost.
func TopKCtx(ctx context.Context, g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	ws := GetWorkspace(g)
	defer ws.Release()
	ws.bindContext(ctx)

	first, err := ws.Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, err
	}
	// One weight evaluation per edge and one goal-heuristic cache, shared
	// by every spur query below.
	ws.fillWeights(g, w)
	ws.setGoal(g, dst)
	y := newYenEnum(g, ws, w, dst, first)
	for len(y.paths) < k {
		if _, ok := y.next(); !ok {
			break
		}
	}
	if ws.ctxErr != nil {
		return nil, ws.ctxErr
	}
	return y.paths, nil
}

// TopKEngine is TopK running on a prepared Engine: the first path comes
// from the engine's point-to-point query (a CH bidirectional upward search
// or goal-directed ALT A*), and spur searches are strengthened by the
// engine's admissible heuristic when it has one. Results equal TopK's —
// distances are exact on every backend.
func TopKEngine(e Engine, src, dst roadnet.VertexID, k int) ([]Path, error) {
	return TopKEngineCtx(context.Background(), e, src, dst, k)
}

// TopKEngineCtx is TopKEngine honoring ctx; see TopKCtx for the
// cancellation contract.
func TopKEngineCtx(ctx context.Context, e Engine, src, dst roadnet.VertexID, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	g := e.Graph()
	ws := GetWorkspace(g)
	defer ws.Release()

	first, err := e.ShortestCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	ws.bindContext(ctx)
	w := e.Weight()
	ws.fillWeights(g, w)
	ws.setGoalAux(g, dst, e.spurHeuristic(dst))
	y := newYenEnum(g, ws, w, dst, first)
	for len(y.paths) < k {
		if _, ok := y.next(); !ok {
			break
		}
	}
	if ws.ctxErr != nil {
		return nil, ws.ctxErr
	}
	return y.paths, nil
}

func sharesRoot(p Path, root []roadnet.VertexID) bool {
	if len(p.Vertices) < len(root) {
		return false
	}
	for i, v := range root {
		if p.Vertices[i] != v {
			return false
		}
	}
	return true
}

func joinPaths(g *roadnet.Graph, rootVertices []roadnet.VertexID, rootEdges []roadnet.EdgeID, spur Path, w Weight) Path {
	edges := make([]roadnet.EdgeID, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, rootVertices...)
	vertices = append(vertices, spur.Vertices[1:]...)
	var cost float64
	for _, eid := range edges {
		cost += w(g.Edge(eid))
	}
	return Path{Vertices: vertices, Edges: edges, Cost: cost}
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Edges)*4)
	for _, e := range p.Edges {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}
