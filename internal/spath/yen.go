package spath

import (
	"sort"

	"pathrank/internal/roadnet"
)

// TopK returns up to k loopless shortest paths from src to dst in increasing
// cost order, using Yen's algorithm. This implements the paper's TkDI
// candidate-generation strategy ("top-k shortest paths w.r.t. distance").
// It returns ErrNoPath if even the shortest path does not exist.
//
// All spur queries share one pooled Workspace: the banned vertex/edge sets
// are generation-stamped arrays rather than per-iteration maps, so a k=5
// enumeration on a large network performs no per-query O(n) allocation.
func TopK(g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	ws := GetWorkspace(g)
	defer ws.Release()

	first, err := ws.Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, err
	}
	// One weight evaluation per edge and one goal-heuristic cache, shared
	// by every spur query below.
	ws.fillWeights(g, w)
	ws.setGoal(g, dst)
	paths := []Path{first}
	type candidate struct {
		p Path
	}
	var candidates []candidate

	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Each vertex of the previous path except the last is a spur node.
		for i := 0; i < len(prev.Vertices)-1; i++ {
			spur := prev.Vertices[i]
			rootVertices := prev.Vertices[:i+1]
			rootEdges := prev.Edges[:i]

			ws.resetBans(g)
			// Ban the next edge of every accepted path sharing this root.
			for _, p := range paths {
				if sharesRoot(p, rootVertices) && len(p.Edges) > i {
					ws.banEdge(p.Edges[i])
				}
			}
			// Ban root vertices (except the spur) to keep paths loopless.
			for _, v := range rootVertices[:i] {
				ws.banVertex(v)
			}

			spurPath, ok := ws.dijkstraConstrained(g, spur, dst)
			if !ok {
				continue
			}
			total := joinPaths(g, rootVertices, rootEdges, spurPath, w)
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidate{p: total})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].p.Cost < candidates[b].p.Cost })
		paths = append(paths, candidates[0].p)
		candidates = candidates[1:]
	}
	return paths, nil
}

func sharesRoot(p Path, root []roadnet.VertexID) bool {
	if len(p.Vertices) < len(root) {
		return false
	}
	for i, v := range root {
		if p.Vertices[i] != v {
			return false
		}
	}
	return true
}

func joinPaths(g *roadnet.Graph, rootVertices []roadnet.VertexID, rootEdges []roadnet.EdgeID, spur Path, w Weight) Path {
	edges := make([]roadnet.EdgeID, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, rootVertices...)
	vertices = append(vertices, spur.Vertices[1:]...)
	var cost float64
	for _, eid := range edges {
		cost += w(g.Edge(eid))
	}
	return Path{Vertices: vertices, Edges: edges, Cost: cost}
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Edges)*4)
	for _, e := range p.Edges {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}
