package spath

import (
	"sort"

	"pathrank/internal/roadnet"
)

// dijkstraConstrained runs Dijkstra avoiding banned vertices and edges. It
// is the spur-path primitive of Yen's algorithm.
func dijkstraConstrained(g *roadnet.Graph, src, dst roadnet.VertexID, w Weight,
	bannedVertex map[roadnet.VertexID]bool, bannedEdge map[roadnet.EdgeID]bool) (Path, bool) {

	if bannedVertex[src] || bannedVertex[dst] {
		return Path{}, false
	}
	if src == dst {
		return Path{Vertices: []roadnet.VertexID{src}}, true
	}
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = unreached
	}
	parentEdge := make([]roadnet.EdgeID, n)
	done := make([]bool, n)
	dist[src] = 0
	h := &minHeap{}
	h.push(item{v: src})
	for !h.empty() {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			return reconstruct(g, parentEdge, src, dst, dist[dst]), true
		}
		for _, eid := range g.OutEdges(it.v) {
			if bannedEdge[eid] {
				continue
			}
			e := g.Edge(eid)
			if bannedVertex[e.To] {
				continue
			}
			nd := it.dist + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				parentEdge[e.To] = eid
				h.push(item{v: e.To, dist: nd})
			}
		}
	}
	return Path{}, false
}

// TopK returns up to k loopless shortest paths from src to dst in increasing
// cost order, using Yen's algorithm. This implements the paper's TkDI
// candidate-generation strategy ("top-k shortest paths w.r.t. distance").
// It returns ErrNoPath if even the shortest path does not exist.
func TopK(g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	type candidate struct {
		p Path
	}
	var candidates []candidate

	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Each vertex of the previous path except the last is a spur node.
		for i := 0; i < len(prev.Vertices)-1; i++ {
			spur := prev.Vertices[i]
			rootVertices := prev.Vertices[:i+1]
			rootEdges := prev.Edges[:i]

			bannedEdge := make(map[roadnet.EdgeID]bool)
			// Ban the next edge of every accepted path sharing this root.
			for _, p := range paths {
				if sharesRoot(p, rootVertices) && len(p.Edges) > i {
					bannedEdge[p.Edges[i]] = true
				}
			}
			// Ban root vertices (except the spur) to keep paths loopless.
			bannedVertex := make(map[roadnet.VertexID]bool, i)
			for _, v := range rootVertices[:i] {
				bannedVertex[v] = true
			}

			spurPath, ok := dijkstraConstrained(g, spur, dst, w, bannedVertex, bannedEdge)
			if !ok {
				continue
			}
			total := joinPaths(g, rootVertices, rootEdges, spurPath, w)
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidate{p: total})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].p.Cost < candidates[b].p.Cost })
		paths = append(paths, candidates[0].p)
		candidates = candidates[1:]
	}
	return paths, nil
}

func sharesRoot(p Path, root []roadnet.VertexID) bool {
	if len(p.Vertices) < len(root) {
		return false
	}
	for i, v := range root {
		if p.Vertices[i] != v {
			return false
		}
	}
	return true
}

func joinPaths(g *roadnet.Graph, rootVertices []roadnet.VertexID, rootEdges []roadnet.EdgeID, spur Path, w Weight) Path {
	edges := make([]roadnet.EdgeID, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	vertices := make([]roadnet.VertexID, 0, len(edges)+1)
	vertices = append(vertices, rootVertices...)
	vertices = append(vertices, spur.Vertices[1:]...)
	var cost float64
	for _, eid := range edges {
		cost += w(g.Edge(eid))
	}
	return Path{Vertices: vertices, Edges: edges, Cost: cost}
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p.Edges)*4)
	for _, e := range p.Edges {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}
