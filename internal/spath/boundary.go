package spath

import (
	"context"
	"math"
	"sort"

	"pathrank/internal/roadnet"
)

// This file holds the boundary-set search primitives of the sharded
// serving tier. A shard worker answers two kinds of sub-queries for the
// router: boundary distance vectors (src → every boundary vertex, or
// every boundary vertex → dst, under a cost bound) and corridor
// extraction (which owned vertices lie on some src→dst path of cost at
// most C, given exact entry distances at the shard's boundary). Both
// reduce to bounded Dijkstra variants over the pooled Workspace: a
// reverse counterpart of BoundedDistances, and multi-source searches
// whose frontier starts from pre-weighted Seeds instead of a single
// zero-cost source.

// Seed is one starting point of a seeded multi-source search: the search
// frontier begins at V with accumulated cost Dist, as if V had been
// reached from an external origin at that cost. Duplicate vertices are
// allowed; the cheapest seed wins.
type Seed struct {
	V    roadnet.VertexID
	Dist float64
}

// BoundedDistancesRev is the reverse counterpart of BoundedDistances: it
// computes exact minimum costs from every source to dst under w, writing
// out[j] = cost(sources[j] → dst) when that cost is at most bound and
// +Inf otherwise. The search is a single backward Dijkstra from dst over
// the in-adjacency, so its cost is proportional to the bounded ball
// around dst rather than the number of sources.
func (ws *Workspace) BoundedDistancesRev(g *roadnet.Graph, dst roadnet.VertexID, sources []roadnet.VertexID, bound float64, w Weight, out []float64) {
	ws.ensure(g)
	ws.beginBidirectional()
	gen := ws.gen
	ws.tgtGen++
	if ws.tgtGen == 0 {
		clearU32(ws.tgtStamp)
		ws.tgtGen = 1
	}
	tgen := ws.tgtGen
	remaining := 0
	for _, s := range sources {
		if ws.tgtStamp[s] != tgen {
			ws.tgtStamp[s] = tgen
			remaining++
		}
	}
	ws.distB[dst] = 0
	ws.reachB[dst] = gen
	ws.heapB.push(dst, 0)
	for !ws.heapB.empty() && remaining > 0 {
		v, d := ws.heapB.pop()
		if d > bound {
			break
		}
		if ws.tgtStamp[v] == tgen {
			ws.tgtStamp[v] = tgen - 1
			remaining--
		}
		ins := g.InEdges(v)
		froms := g.InNeighbors(v)
		for i, eid := range ins {
			from := froms[i]
			nd := d + w(g.Edge(eid))
			if ws.reachB[from] != gen || nd < ws.distB[from] {
				ws.distB[from] = nd
				ws.reachB[from] = gen
				ws.parentB[from] = eid
				ws.heapB.update(from, nd)
			}
		}
	}
	for j, s := range sources {
		if ws.reachB[s] == gen && ws.distB[s] <= bound {
			out[j] = ws.distB[s]
		} else {
			out[j] = math.Inf(1)
		}
	}
}

// SeededDistances runs a multi-source forward Dijkstra whose frontier
// starts from the given seeds, writing out[v] = min over seeds of
// seed.Dist + cost(seed.V → v) for every vertex reached at cost at most
// bound, and +Inf for the rest. out must have length g.NumVertices().
// It is the corridor-extraction primitive: with seeds carrying exact
// full-graph distances dist(s, b) at a shard's boundary, out[v] is the
// exact full-graph dist(s, v) for every owned v inside the bound.
func (ws *Workspace) SeededDistances(g *roadnet.Graph, seeds []Seed, bound float64, w Weight, out []float64) {
	ws.ensure(g)
	ws.begin()
	gen := ws.gen
	for _, s := range seeds {
		if s.Dist > bound || math.IsInf(s.Dist, 1) {
			continue
		}
		if ws.reach[s.V] != gen || s.Dist < ws.dist[s.V] {
			ws.dist[s.V] = s.Dist
			ws.reach[s.V] = gen
			ws.heap.update(s.V, s.Dist)
		}
	}
	for !ws.heap.empty() {
		v, d := ws.heap.pop()
		if d > bound {
			break
		}
		outs := g.OutEdges(v)
		tos := g.OutNeighbors(v)
		for i, eid := range outs {
			to := tos[i]
			nd := d + w(g.Edge(eid))
			if ws.reach[to] != gen || nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.reach[to] = gen
				ws.heap.update(to, nd)
			}
		}
	}
	for v := range out {
		if ws.reach[v] == gen && ws.dist[v] <= bound {
			out[v] = ws.dist[v]
		} else {
			out[v] = math.Inf(1)
		}
	}
}

// SeededDistancesRev is the backward counterpart of SeededDistances: it
// writes out[v] = min over seeds of cost(v → seed.V) + seed.Dist for
// every vertex within bound, +Inf otherwise. With seeds carrying exact
// distances dist(b, t) at a shard's boundary, out[v] is the exact
// full-graph dist(v, t) for every owned v inside the bound.
func (ws *Workspace) SeededDistancesRev(g *roadnet.Graph, seeds []Seed, bound float64, w Weight, out []float64) {
	ws.ensure(g)
	ws.beginBidirectional()
	gen := ws.gen
	for _, s := range seeds {
		if s.Dist > bound || math.IsInf(s.Dist, 1) {
			continue
		}
		if ws.reachB[s.V] != gen || s.Dist < ws.distB[s.V] {
			ws.distB[s.V] = s.Dist
			ws.reachB[s.V] = gen
			ws.heapB.update(s.V, s.Dist)
		}
	}
	for !ws.heapB.empty() {
		v, d := ws.heapB.pop()
		if d > bound {
			break
		}
		ins := g.InEdges(v)
		froms := g.InNeighbors(v)
		for i, eid := range ins {
			from := froms[i]
			nd := d + w(g.Edge(eid))
			if ws.reachB[from] != gen || nd < ws.distB[from] {
				ws.distB[from] = nd
				ws.reachB[from] = gen
				ws.heapB.update(from, nd)
			}
		}
	}
	for v := range out {
		if ws.reachB[v] == gen && ws.distB[v] <= bound {
			out[v] = ws.distB[v]
		} else {
			out[v] = math.Inf(1)
		}
	}
}

// EnumStats describes one Yen enumeration run: how many paths were
// examined, the largest cost among them, and whether the loopless path
// set was exhausted before the caller's budget. The sharded router uses
// it to certify corridor-restricted enumerations: a run whose MaxCost
// stayed strictly inside the corridor bound and that did not exhaust the
// (restricted) path set is bit-identical to the same run on the full
// graph.
type EnumStats struct {
	// Probes is the number of paths pulled from the enumerator,
	// including the initial shortest path.
	Probes int
	// MaxCost is the largest cost among the examined paths (Yen emits in
	// increasing cost order, so this is the cost of the last one); 0 when
	// nothing was examined.
	MaxCost float64
	// Exhausted reports that the enumerator ran out of loopless paths
	// before the probe/k budget was spent.
	Exhausted bool
}

// TopKStatsCtx is TopKCtx additionally reporting enumeration statistics.
func TopKStatsCtx(ctx context.Context, g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight) ([]Path, EnumStats, error) {
	var st EnumStats
	if k <= 0 {
		return nil, st, nil
	}
	ws := GetWorkspace(g)
	defer ws.Release()
	ws.bindContext(ctx)

	first, err := ws.Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, st, err
	}
	ws.fillWeights(g, w)
	ws.setGoal(g, dst)
	y := newYenEnum(g, ws, w, dst, first)
	st.Probes = 1
	st.MaxCost = first.Cost
	for len(y.paths) < k {
		p, ok := y.next()
		if !ok {
			st.Exhausted = ws.ctxErr == nil
			break
		}
		st.Probes++
		st.MaxCost = p.Cost
	}
	if ws.ctxErr != nil {
		return nil, st, ws.ctxErr
	}
	return y.paths, st, nil
}

// DiversifiedTopKStatsCtx is DiversifiedTopKCtx additionally reporting
// enumeration statistics. The accepted set is identical to
// DiversifiedTopKCtx's on the same inputs: the probe loop below mirrors
// diversify exactly, it only observes the paths flowing through it.
func DiversifiedTopKStatsCtx(ctx context.Context, g *roadnet.Graph, src, dst roadnet.VertexID, k int, w Weight, sim Similarity, threshold float64, maxProbe int) ([]Path, EnumStats, error) {
	var st EnumStats
	if k <= 0 {
		return nil, st, nil
	}
	if maxProbe < k {
		maxProbe = 10 * k
	}
	ws := GetWorkspace(g)
	defer ws.Release()
	ws.bindContext(ctx)
	first, err := ws.Dijkstra(g, src, dst, w)
	if err != nil {
		return nil, st, err
	}
	ws.fillWeights(g, w)
	ws.setGoal(g, dst)
	y := newYenEnum(g, ws, w, dst, first)

	accepted := make([]Path, 0, k)
	p := y.paths[0]
	st.Probes = 1
	st.MaxCost = p.Cost
	for {
		ok := true
		for _, q := range accepted {
			if sim(p, q) > threshold {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, p)
			if len(accepted) == k {
				break
			}
		}
		if st.Probes >= maxProbe {
			break
		}
		var more bool
		p, more = y.next()
		if !more {
			st.Exhausted = ws.ctxErr == nil
			break
		}
		st.Probes++
		st.MaxCost = p.Cost
	}
	sort.Slice(accepted, func(a, b int) bool { return accepted[a].Cost < accepted[b].Cost })
	if ws.ctxErr != nil {
		return nil, st, ws.ctxErr
	}
	return accepted, st, nil
}
