package pathrank

import (
	"bytes"
	"math"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// testWorld builds a small network, trips, and labeled queries shared by
// the integration tests in this package.
type testWorld struct {
	g       *roadnet.Graph
	trips   []traj.Trip
	queries []dataset.Query
}

func newTestWorld(t testing.TB, nDrivers, tripsPer int) *testWorld {
	t.Helper()
	cfg := roadnet.GenConfig{
		Rows: 10, Cols: 10, SpacingM: 250, JitterFrac: 0.2,
		RemoveFrac: 0.08, ArterialEvery: 4, Motorway: false,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 41,
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: nDrivers, Seed: 42})
	trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: tripsPer, MinHops: 4, Seed: 43})
	if err != nil {
		t.Fatalf("trips: %v", err)
	}
	queries, err := dataset.Generate(g, trips, dataset.Config{
		Strategy: dataset.DTkDI, K: 4, Threshold: 0.8, IncludeTruth: true,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return &testWorld{g: g, trips: trips, queries: queries}
}

// smallConfig returns a model small enough for fast unit tests.
func smallConfig() Config {
	return Config{EmbeddingDim: 12, Hidden: 10, Variant: PRA2, Body: GRUBody, Seed: 7}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(10, Config{EmbeddingDim: 0, Hidden: 4}); err == nil {
		t.Fatal("zero embedding dim should be rejected")
	}
	if _, err := New(0, smallConfig()); err == nil {
		t.Fatal("zero vocabulary should be rejected")
	}
	bad := smallConfig()
	bad.Body = Body(99)
	if _, err := New(10, bad); err == nil {
		t.Fatal("unknown body should be rejected")
	}
}

func TestVariantControlsEmbeddingFreezing(t *testing.T) {
	cfg := smallConfig()
	cfg.Variant = PRA1
	m1, err := New(20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.emb.Table.Frozen {
		t.Fatal("PR-A1 embedding should be frozen")
	}
	cfg.Variant = PRA2
	m2, _ := New(20, cfg)
	if m2.emb.Table.Frozen {
		t.Fatal("PR-A2 embedding should be trainable")
	}
}

func TestScoreInUnitInterval(t *testing.T) {
	w := newTestWorld(t, 3, 2)
	m, err := New(w.g.NumVertices(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.queries {
		for _, c := range q.Candidates {
			s := m.Score(c.Path)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("score %v outside [0,1]", s)
			}
		}
	}
	if s := m.Score(spath.Path{}); s != 0 {
		t.Fatalf("empty path score %v, want 0", s)
	}
}

func TestInitEmbeddingsDimMismatch(t *testing.T) {
	m, _ := New(10, smallConfig())
	emb := &node2vec.Embeddings{Dim: 99, Vecs: make([][]float64, 10)}
	if err := m.InitEmbeddings(emb); err == nil {
		t.Fatal("dim mismatch should error")
	}
	emb2 := &node2vec.Embeddings{Dim: 12, Vecs: make([][]float64, 3)}
	if err := m.InitEmbeddings(emb2); err == nil {
		t.Fatal("vocab mismatch should error")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	w := newTestWorld(t, 4, 2)
	m, err := New(w.g.NumVertices(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	losses, err := m.Train(w.queries, TrainConfig{Epochs: 8, LR: 0.005, ClipNorm: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(losses) != 8 {
		t.Fatalf("got %d loss entries, want 8", len(losses))
	}
	first, last := losses[0], losses[len(losses)-1]
	if !(last < first) {
		t.Fatalf("loss did not decrease: first %.5f last %.5f", first, last)
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss %v", l)
		}
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	m, _ := New(w.g.NumVertices(), smallConfig())
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 0, LR: 0.01}); err == nil {
		t.Fatal("zero epochs should error")
	}
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 1, LR: 0}); err == nil {
		t.Fatal("zero LR should error")
	}
	if _, err := m.Train(nil, TrainConfig{Epochs: 1, LR: 0.01}); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestTrainedModelBeatsUntrained(t *testing.T) {
	if testing.Short() {
		t.Skip("generalization test skipped in -short mode")
	}
	w := newTestWorld(t, 16, 4)
	train, test := dataset.Split(w.queries, 0.25, 5)

	cfg := smallConfig()
	m, err := New(w.g.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := node2vec.Embed(w.g,
		node2vec.WalkConfig{WalksPerVertex: 6, WalkLength: 20, P: 1, Q: 0.5, Seed: 2},
		node2vec.TrainConfig{Dim: cfg.EmbeddingDim, Window: 4, Negatives: 4, Epochs: 2, LR: 0.05, Seed: 3})
	if err := m.InitEmbeddings(emb); err != nil {
		t.Fatal(err)
	}
	before := m.Evaluate(test)
	if _, err := m.Train(train, TrainConfig{Epochs: 15, LR: 0.003, ClipNorm: 5, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	after := m.Evaluate(test)
	if !(after.MAE < before.MAE) {
		t.Fatalf("training did not reduce test MAE: before %.4f after %.4f", before.MAE, after.MAE)
	}
	if !(after.Tau > 0.1) {
		t.Fatalf("trained tau %.4f, want > 0.1", after.Tau)
	}
}

func TestRankOrdersByScore(t *testing.T) {
	w := newTestWorld(t, 3, 2)
	m, _ := New(w.g.NumVertices(), smallConfig())
	q := w.queries[0]
	paths := make([]spath.Path, len(q.Candidates))
	for i, c := range q.Candidates {
		paths[i] = c.Path
	}
	ranked := m.Rank(paths)
	if len(ranked) != len(paths) {
		t.Fatalf("ranked %d of %d", len(ranked), len(paths))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score+1e-12 {
			t.Fatal("ranked output not in descending score order")
		}
	}
}

func TestMultiTaskModelTrains(t *testing.T) {
	w := newTestWorld(t, 3, 2)
	cfg := smallConfig()
	cfg.MultiTaskLambda = 0.5
	m, err := New(w.g.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.auxLen == nil || m.auxTime == nil {
		t.Fatal("multi-task heads missing")
	}
	losses, err := m.Train(w.queries, TrainConfig{Epochs: 5, LR: 0.005, ClipNorm: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(losses[len(losses)-1] < losses[0]) {
		t.Fatalf("multi-task loss did not decrease: %v", losses)
	}
}

func TestAllBodiesTrain(t *testing.T) {
	w := newTestWorld(t, 3, 1)
	for _, body := range []Body{GRUBody, BiGRUBody, LSTMBody, MeanPoolBody, AttnGRUBody} {
		cfg := smallConfig()
		cfg.Body = body
		m, err := New(w.g.NumVertices(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		losses, err := m.Train(w.queries, TrainConfig{Epochs: 3, LR: 0.005, ClipNorm: 5, Seed: 1})
		if err != nil {
			t.Fatalf("%s train: %v", body, err)
		}
		if math.IsNaN(losses[len(losses)-1]) {
			t.Fatalf("%s produced NaN loss", body)
		}
	}
}

func TestSaveLoadPreservesScores(t *testing.T) {
	w := newTestWorld(t, 3, 1)
	m, _ := New(w.g.NumVertices(), smallConfig())
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, _ := New(w.g.NumVertices(), smallConfig())
	if err := m2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	p := w.queries[0].Candidates[0].Path
	if math.Abs(m.Score(p)-m2.Score(p)) > 1e-12 {
		t.Fatal("loaded model scores differ")
	}
}

func TestRankerQuery(t *testing.T) {
	w := newTestWorld(t, 4, 2)
	m, _ := New(w.g.NumVertices(), smallConfig())
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r := NewRanker(w.g, m)
	q := w.queries[0]
	ranked, err := r.Query(q.Source, q.Destination)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked candidates")
	}
	for _, rk := range ranked {
		if rk.Path.Source() != q.Source || rk.Path.Destination() != q.Destination {
			t.Fatal("ranked path has wrong endpoints")
		}
	}
	// TkDI strategy path too.
	r.Candidates = dataset.Config{Strategy: dataset.TkDI, K: 3}
	ranked2, err := r.Query(q.Source, q.Destination)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked2) == 0 {
		t.Fatal("TkDI query returned nothing")
	}
}

func TestBuildPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	w := newTestWorld(t, 5, 2)
	cfg := PipelineConfig{
		Walk: node2vec.WalkConfig{WalksPerVertex: 3, WalkLength: 12, P: 1, Q: 0.5, Seed: 1},
		SGNS: node2vec.TrainConfig{Dim: 12, Window: 3, Negatives: 3, Epochs: 1, LR: 0.05, Seed: 1},
		Data: dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8, IncludeTruth: true},
		Model: Config{
			EmbeddingDim: 12, Hidden: 10, Variant: PRA2, Body: GRUBody, Seed: 1,
		},
		Train:     TrainConfig{Epochs: 6, LR: 0.005, ClipNorm: 5, Seed: 1},
		TestFrac:  0.3,
		SplitSeed: 2,
	}
	pipe, err := BuildPipeline(w.g, w.trips, cfg)
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	if len(pipe.Test) == 0 || len(pipe.Train) == 0 {
		t.Fatal("empty split")
	}
	rep := pipe.Model.Evaluate(pipe.Test)
	if rep.NQueries != len(pipe.Test) {
		t.Fatalf("evaluated %d queries, want %d", rep.NQueries, len(pipe.Test))
	}
	if math.IsNaN(rep.MAE) || rep.MAE > 0.6 {
		t.Fatalf("pipeline MAE %.4f looks broken", rep.MAE)
	}
}

func TestBuildPipelineRejectsDimMismatch(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	cfg := DefaultPipelineConfig(16)
	cfg.Model.EmbeddingDim = 32 // now SGNS.Dim=16 != model 32
	if _, err := BuildPipeline(w.g, w.trips, cfg); err == nil {
		t.Fatal("dim mismatch should be rejected")
	}
}

func TestVariantAndBodyStrings(t *testing.T) {
	if PRA1.String() != "PR-A1" || PRA2.String() != "PR-A2" {
		t.Fatal("variant names wrong")
	}
	if GRUBody.String() != "gru" || MeanPoolBody.String() != "meanpool" || AttnGRUBody.String() != "attn-gru" {
		t.Fatal("body names wrong")
	}
}

func TestNumParamsPositiveAndGrowsWithM(t *testing.T) {
	small, _ := New(50, Config{EmbeddingDim: 8, Hidden: 8, Variant: PRA2, Body: GRUBody})
	big, _ := New(50, Config{EmbeddingDim: 16, Hidden: 8, Variant: PRA2, Body: GRUBody})
	if small.NumParams() <= 0 || big.NumParams() <= small.NumParams() {
		t.Fatalf("param counts: small %d big %d", small.NumParams(), big.NumParams())
	}
}
