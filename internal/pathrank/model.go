// Package pathrank implements the paper's primary contribution: a
// data-driven framework that ranks candidate paths between an origin and a
// destination the way local drivers would, learned from historical
// trajectories.
//
// Ranking is modeled as regression. A candidate path — a sequence of
// vertices — is embedded vertex-by-vertex with a node2vec-initialized
// embedding matrix B, folded by a (bi)directional GRU, summarized, and
// passed through a fully connected head that outputs an estimated
// similarity score in [0,1]. Training minimizes the squared error against
// the ground-truth score WeightedJaccard(candidate, trajectory path).
//
// Two variants from the paper are supported:
//
//   - PR-A1 keeps the embedding matrix B frozen at its node2vec values.
//   - PR-A2 fine-tunes B with backpropagation (the paper's best variant).
//
// The multi-task extension (PR-M) attaches auxiliary heads that regress the
// candidate's length and travel-time ratios, sharing the recurrent body.
package pathrank

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"pathrank/internal/nn"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// Variant selects how the embedding matrix is treated during training.
type Variant int

// Model variants from the paper's evaluation.
const (
	// PRA1 freezes the node2vec embeddings.
	PRA1 Variant = iota
	// PRA2 fine-tunes the embeddings end to end.
	PRA2
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case PRA1:
		return "PR-A1"
	case PRA2:
		return "PR-A2"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Body selects the sequence model folding the embedded path.
type Body int

// Sequence-model bodies. GRUBody is the paper's architecture; the others
// exist for the ablation study.
const (
	GRUBody Body = iota
	BiGRUBody
	LSTMBody
	MeanPoolBody
	// AttnGRUBody is a GRU body summarized with additive attention pooling
	// instead of mean pooling.
	AttnGRUBody
)

// String names the body.
func (b Body) String() string {
	switch b {
	case GRUBody:
		return "gru"
	case BiGRUBody:
		return "bigru"
	case LSTMBody:
		return "lstm"
	case MeanPoolBody:
		return "meanpool"
	case AttnGRUBody:
		return "attn-gru"
	default:
		return fmt.Sprintf("body(%d)", int(b))
	}
}

// Config parameterizes a PathRank model.
type Config struct {
	EmbeddingDim int     // M in the paper (64 or 128 in the tables)
	Hidden       int     // GRU hidden size per direction
	Variant      Variant // PR-A1 or PR-A2
	Body         Body    // sequence model (GRUBody reproduces the paper)

	// MultiTaskLambda weights the auxiliary length/time-ratio losses; 0
	// disables the multi-task extension.
	MultiTaskLambda float64

	Seed int64
}

// DefaultConfig mirrors the paper's best configuration (PR-A2, M=128)
// scaled to a trainable-on-one-core hidden size.
func DefaultConfig() Config {
	return Config{EmbeddingDim: 128, Hidden: 64, Variant: PRA2, Body: GRUBody, Seed: 1}
}

// Model is a trained or trainable PathRank scorer.
type Model struct {
	cfg Config

	emb     *nn.Embedding
	gru     *nn.GRU
	bigru   *nn.BiGRU
	lstm    *nn.LSTM
	attn    *nn.Attention
	head    *nn.Dense
	auxLen  *nn.Dense // multi-task heads (nil unless MultiTaskLambda > 0)
	auxTime *nn.Dense

	params []*nn.Param

	// fwdPool recycles forwardState headers and their id/embedding/summary
	// buffers across Score and training steps; fusedPool recycles the
	// packed-matrix workspaces of ScoreBatchFused. Both keep the scoring
	// hot paths allocation-free in steady state (see the alloc-regression
	// tests) and are safe for the concurrent Score calls the serving layer
	// issues against a model that is not being trained.
	fwdPool   sync.Pool
	fusedPool sync.Pool
}

// New builds an untrained model for a graph with numVertices vertices.
func New(numVertices int, cfg Config) (*Model, error) {
	if cfg.EmbeddingDim <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("pathrank: embedding dim %d and hidden %d must be positive",
			cfg.EmbeddingDim, cfg.Hidden)
	}
	if numVertices <= 0 {
		return nil, fmt.Errorf("pathrank: vocabulary must be positive, got %d", numVertices)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}
	m.emb = nn.NewEmbedding(numVertices, cfg.EmbeddingDim, rng)
	m.emb.Table.Frozen = cfg.Variant == PRA1

	var outDim int
	switch cfg.Body {
	case GRUBody:
		m.gru = nn.NewGRU("gru", cfg.EmbeddingDim, cfg.Hidden, rng)
		outDim = cfg.Hidden
	case BiGRUBody:
		m.bigru = nn.NewBiGRU("bigru", cfg.EmbeddingDim, cfg.Hidden, rng)
		outDim = m.bigru.OutDim()
	case LSTMBody:
		m.lstm = nn.NewLSTM("lstm", cfg.EmbeddingDim, cfg.Hidden, rng)
		outDim = cfg.Hidden
	case MeanPoolBody:
		outDim = cfg.EmbeddingDim
	case AttnGRUBody:
		m.gru = nn.NewGRU("gru", cfg.EmbeddingDim, cfg.Hidden, rng)
		att := cfg.Hidden / 2
		if att < 4 {
			att = 4
		}
		m.attn = nn.NewAttention("attn", cfg.Hidden, att, rng)
		outDim = cfg.Hidden
	default:
		return nil, fmt.Errorf("pathrank: unknown body %d", cfg.Body)
	}
	m.head = nn.NewDense("head", outDim, 1, nn.SigmoidAct, rng)

	m.params = append(m.params, m.emb.Params()...)
	switch cfg.Body {
	case GRUBody:
		m.params = append(m.params, m.gru.Params()...)
	case BiGRUBody:
		m.params = append(m.params, m.bigru.Params()...)
	case LSTMBody:
		m.params = append(m.params, m.lstm.Params()...)
	case AttnGRUBody:
		m.params = append(m.params, m.gru.Params()...)
		m.params = append(m.params, m.attn.Params()...)
	}
	m.params = append(m.params, m.head.Params()...)

	if cfg.MultiTaskLambda > 0 {
		m.auxLen = nn.NewDense("aux.len", outDim, 1, nn.SigmoidAct, rng)
		m.auxTime = nn.NewDense("aux.time", outDim, 1, nn.SigmoidAct, rng)
		m.params = append(m.params, m.auxLen.Params()...)
		m.params = append(m.params, m.auxTime.Params()...)
	}
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// NumParams returns the number of scalar trainable weights.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.NumParams()
	}
	return n
}

// InitEmbeddings loads node2vec vectors into the embedding matrix B. The
// embedding dimensionality must match cfg.EmbeddingDim.
func (m *Model) InitEmbeddings(emb *node2vec.Embeddings) error {
	if emb.Dim != m.cfg.EmbeddingDim {
		return fmt.Errorf("pathrank: node2vec dim %d != model embedding dim %d", emb.Dim, m.cfg.EmbeddingDim)
	}
	if emb.NumVertices() != m.emb.Vocab() {
		return fmt.Errorf("pathrank: node2vec has %d vertices, model vocabulary is %d",
			emb.NumVertices(), m.emb.Vocab())
	}
	for v := 0; v < emb.NumVertices(); v++ {
		m.emb.SetRow(v, emb.Vector(roadnet.VertexID(v)))
	}
	return nil
}

// forwardState carries the activations of one forward pass for backprop.
// States come from the model's fwdPool: the id/embedding-pointer slices,
// the mean-pool summary and the inference head output live in buffers that
// are reused across passes, so a released state makes the next Score
// allocation-free in steady state.
type forwardState struct {
	ids          []int
	xs           []nn.Vec
	hs           []nn.Vec
	gruCache     *nn.GRUCache
	biCache      *nn.BiGRUCache
	lstmCache    *nn.LSTMCache
	attnCache    *nn.AttentionCache
	summary      nn.Vec
	headOut      nn.Vec
	headCache    *nn.DenseCache
	auxLenOut    nn.Vec
	auxLenCache  *nn.DenseCache
	auxTimeOut   nn.Vec
	auxTimeCache *nn.DenseCache

	// Reusable buffers backing summary (mean-pool bodies) and headOut
	// (inference passes); owner is the pool the state returns to.
	summaryBuf nn.Vec
	headBuf    nn.Vec
	owner      *Model
}

// release returns pooled scratch memory held by the state's caches and the
// state itself to the model's pool. The state and any activations or
// gradients derived from it must not be used afterwards.
func (st *forwardState) release() {
	if st.gruCache != nil {
		st.gruCache.Release()
		st.gruCache = nil
	}
	if st.biCache != nil {
		st.biCache.Release()
		st.biCache = nil
	}
	if st.lstmCache != nil {
		st.lstmCache.Release()
		st.lstmCache = nil
	}
	st.attnCache = nil
	st.hs = nil
	st.headCache, st.auxLenCache, st.auxTimeCache = nil, nil, nil
	if st.owner != nil {
		st.owner.fwdPool.Put(st)
	}
}

// forward runs the network over the path's vertex sequence. Training passes
// (train=true) build the backward caches of every head; inference passes
// compute only the main head, into pooled buffers.
func (m *Model) forward(p spath.Path, train bool) *forwardState {
	st, _ := m.fwdPool.Get().(*forwardState)
	if st == nil {
		st = &forwardState{}
	}
	st.owner = m
	n := len(p.Vertices)
	st.ids = growInts(st.ids, n)
	st.xs = growVecs(st.xs, n)
	for i, v := range p.Vertices {
		st.ids[i] = int(v)
		// Alias the embedding rows: weights do not change between one
		// sample's forward and backward passes (optimizer steps happen
		// after), so the defensive copy would only produce garbage.
		st.xs[i] = m.emb.Lookup(int(v))
	}
	switch m.cfg.Body {
	case GRUBody:
		st.hs, st.gruCache = m.gru.Forward(st.xs)
	case BiGRUBody:
		st.hs, st.biCache = m.bigru.Forward(st.xs)
	case LSTMBody:
		st.hs, st.lstmCache = m.lstm.Forward(st.xs)
	case MeanPoolBody:
		st.hs = st.xs
	case AttnGRUBody:
		st.hs, st.gruCache = m.gru.Forward(st.xs)
	}
	// Summary over the hidden states. Mean pooling is robust to the large
	// variation in path lengths (a candidate can have 5 or 80 vertices)
	// and matches the paper's use of all hidden states H_i; AttnGRUBody
	// learns the pooling weights instead.
	if m.cfg.Body == AttnGRUBody {
		st.summary, st.attnCache = m.attn.Forward(st.hs)
	} else {
		st.summaryBuf = growVec(st.summaryBuf, len(st.hs[0]))
		meanVecsInto(st.summaryBuf, st.hs)
		st.summary = st.summaryBuf
	}
	if train {
		st.headOut, st.headCache = m.head.Forward(st.summary)
		if m.auxLen != nil {
			st.auxLenOut, st.auxLenCache = m.auxLen.Forward(st.summary)
			st.auxTimeOut, st.auxTimeCache = m.auxTime.Forward(st.summary)
		}
		return st
	}
	st.headBuf = growVec(st.headBuf, m.head.W.Rows)
	m.head.ForwardInto(st.summary, st.headBuf)
	st.headOut = st.headBuf
	return st
}

// meanVecsInto computes the elementwise mean of vs into dst, with the same
// accumulation order (ascending index, then one scale) as every scoring
// path in this package — the order is part of the bit-reproducibility
// contract.
func meanVecsInto(dst nn.Vec, vs []nn.Vec) {
	for i := range dst {
		dst[i] = 0
	}
	for _, v := range vs {
		nn.AddTo(dst, v)
	}
	nn.Scale(1/float64(len(vs)), dst)
}

// growInts returns s resized to length n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growVecs returns s resized to length n, reusing capacity.
func growVecs(s []nn.Vec, n int) []nn.Vec {
	if cap(s) < n {
		return make([]nn.Vec, n)
	}
	return s[:n]
}

// growVec returns v resized to length n, reusing capacity.
func growVec(v nn.Vec, n int) nn.Vec {
	if cap(v) < n {
		return nn.NewVec(n)
	}
	return v[:n]
}

// backward propagates the loss gradients (dScore on the main head; dLen and
// dTime on the auxiliary heads, ignored when multi-task is off) and
// accumulates parameter gradients.
func (m *Model) backward(st *forwardState, dScore, dLen, dTime float64) {
	dSummary := m.head.Backward(st.headCache, nn.Vec{dScore})
	if m.auxLen != nil {
		nn.AddTo(dSummary, m.auxLen.Backward(st.auxLenCache, nn.Vec{dLen}))
		nn.AddTo(dSummary, m.auxTime.Backward(st.auxTimeCache, nn.Vec{dTime}))
	}
	T := len(st.hs)
	var dhs []nn.Vec
	if m.cfg.Body == AttnGRUBody {
		// Attention pooling computes its own per-step gradients.
		dhs = m.attn.Backward(st.attnCache, dSummary)
	} else {
		// Mean pooling distributes the summary gradient uniformly.
		perStep := nn.Copy(dSummary)
		nn.Scale(1/float64(T), perStep)
		dhs = make([]nn.Vec, T)
		for t := range dhs {
			dhs[t] = perStep
		}
	}
	var dxs []nn.Vec
	switch m.cfg.Body {
	case GRUBody, AttnGRUBody:
		dxs = m.gru.Backward(st.gruCache, dhs)
	case BiGRUBody:
		dxs = m.bigru.Backward(st.biCache, dhs)
	case LSTMBody:
		dxs = m.lstm.Backward(st.lstmCache, dhs)
	case MeanPoolBody:
		dxs = dhs
	}
	for t, id := range st.ids {
		m.emb.AccumGrad(id, dxs[t])
	}
}

// Score returns the model's estimated ranking score for p in [0,1]. It is
// safe for concurrent use on a model that is not being trained.
func (m *Model) Score(p spath.Path) float64 {
	if len(p.Vertices) == 0 {
		return 0
	}
	st := m.forward(p, false)
	score := st.headOut[0]
	st.release()
	return score
}

// Clone returns a model with an identical configuration and bit-identical
// weights that shares no mutable state with m. It is how the incremental
// trainer fine-tunes a new generation while the original keeps serving
// concurrent Score calls.
func (m *Model) Clone() (*Model, error) {
	c, err := New(m.emb.Vocab(), m.cfg)
	if err != nil {
		return nil, err
	}
	data, err := nn.MarshalParams(m.params)
	if err != nil {
		return nil, err
	}
	if err := nn.UnmarshalParams(data, c.params); err != nil {
		return nil, err
	}
	return c, nil
}

// Save writes the model weights.
func (m *Model) Save(w io.Writer) error { return nn.SaveParams(w, m.params) }

// Load reads weights saved from a model with an identical configuration.
func (m *Model) Load(r io.Reader) error { return nn.LoadParams(r, m.params) }
