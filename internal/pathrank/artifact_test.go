package pathrank

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// trainedArtifact builds a small trained pipeline and wraps it in an
// Artifact, shared by the round-trip tests.
func trainedArtifact(t testing.TB) *Artifact {
	t.Helper()
	w := newTestWorld(t, 6, 2)
	cfg := smallConfig()
	m, err := New(w.g.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := node2vec.Embed(w.g, node2vec.DefaultWalkConfig(), node2vec.DefaultTrainConfig(cfg.EmbeddingDim))
	if err := m.InitEmbeddings(emb); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Graph:      w.g,
		Embeddings: emb,
		Model:      m,
		Candidates: dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8},
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	art := trainedArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	if got.Graph.NumVertices() != art.Graph.NumVertices() || got.Graph.NumEdges() != art.Graph.NumEdges() {
		t.Fatalf("graph shape changed: %d/%d -> %d/%d",
			art.Graph.NumVertices(), art.Graph.NumEdges(),
			got.Graph.NumVertices(), got.Graph.NumEdges())
	}
	if got.Candidates != art.Candidates {
		t.Fatalf("candidate config changed: %+v -> %+v", art.Candidates, got.Candidates)
	}
	if got.Model.Config() != art.Model.Config() {
		t.Fatalf("model config changed: %+v -> %+v", art.Model.Config(), got.Model.Config())
	}
	if got.Embeddings == nil || got.Embeddings.Dim != art.Embeddings.Dim {
		t.Fatal("embeddings not round-tripped")
	}

	// Weights must be bit-identical.
	fa, err := art.Model.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := got.Model.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatal("reloaded model weights are not bit-identical")
	}

	// And therefore rankings must be bit-identical too.
	ra := art.NewRanker()
	rb := got.NewRanker()
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(art.Graph.NumVertices() - 1)
	wantRanked, err := ra.Query(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	gotRanked, err := rb.Query(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRanked) != len(gotRanked) {
		t.Fatalf("ranked %d paths, want %d", len(gotRanked), len(wantRanked))
	}
	for i := range wantRanked {
		if wantRanked[i].Score != gotRanked[i].Score {
			t.Fatalf("rank %d score %v != %v", i, gotRanked[i].Score, wantRanked[i].Score)
		}
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	art := trainedArtifact(t)
	path := filepath.Join(t.TempDir(), "model.prart")
	if err := SaveArtifactFile(path, art); err != nil {
		t.Fatalf("save file: %v", err)
	}
	got, err := LoadArtifactFile(path)
	if err != nil {
		t.Fatalf("load file: %v", err)
	}
	fa, _ := art.Model.Fingerprint()
	fb, _ := got.Model.Fingerprint()
	if fa != fb {
		t.Fatal("file round-trip changed model weights")
	}
}

// artifactWithoutEmbeddings proves the embeddings section is optional.
func TestArtifactWithoutEmbeddings(t *testing.T) {
	art := trainedArtifact(t)
	art.Embeddings = nil
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Embeddings != nil {
		t.Fatal("expected nil embeddings after reload")
	}
}

func TestArtifactRejectsGarbage(t *testing.T) {
	_, err := LoadArtifact(bytes.NewReader([]byte("this is not an artifact at all")))
	if !errors.Is(err, ErrArtifactFormat) {
		t.Fatalf("want ErrArtifactFormat, got %v", err)
	}
	_, err = LoadArtifact(bytes.NewReader(nil))
	if !errors.Is(err, ErrArtifactFormat) {
		t.Fatalf("want ErrArtifactFormat for empty input, got %v", err)
	}
}

func TestArtifactRejectsVersionMismatch(t *testing.T) {
	art := trainedArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[8:12], artifactVersion+41)
	_, err := LoadArtifact(bytes.NewReader(data))
	if !errors.Is(err, ErrArtifactVersion) {
		t.Fatalf("want ErrArtifactVersion, got %v", err)
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	art := trainedArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte: checksum must catch it.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] ^= 0x40
	if _, err := LoadArtifact(bytes.NewReader(data)); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("want ErrArtifactCorrupt for flipped byte, got %v", err)
	}

	// Truncate the payload: must be reported as corrupt, not EOF panic.
	data = buf.Bytes()[:len(buf.Bytes())/2]
	if _, err := LoadArtifact(bytes.NewReader(data)); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("want ErrArtifactCorrupt for truncation, got %v", err)
	}

	// An absurd length field must not cause a huge allocation attempt.
	data = append([]byte(nil), buf.Bytes()...)
	binary.BigEndian.PutUint64(data[44:52], 1<<62)
	if _, err := LoadArtifact(bytes.NewReader(data)); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("want ErrArtifactCorrupt for oversized length, got %v", err)
	}
}

func TestArtifactCorruptFileOnDisk(t *testing.T) {
	art := trainedArtifact(t)
	path := filepath.Join(t.TempDir(), "model.prart")
	if err := SaveArtifactFile(path, art); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[60] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifactFile(path); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("want ErrArtifactCorrupt, got %v", err)
	}
}

// TestArtifactLineageRoundTrip proves lineage metadata survives the bundle
// format and that Child chains generations correctly.
func TestArtifactLineageRoundTrip(t *testing.T) {
	art := trainedArtifact(t)
	art.Lineage = Lineage{Generation: 0, TrainedOn: 12, TotalObserved: 12, Note: "offline"}
	parent, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	art.Lineage = art.Lineage.Child(parent, 5, "stream")
	if art.Lineage.Generation != 1 || art.Lineage.Parent != parent ||
		art.Lineage.TrainedOn != 5 || art.Lineage.TotalObserved != 17 {
		t.Fatalf("Child lineage wrong: %+v", art.Lineage)
	}

	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lineage != art.Lineage {
		t.Fatalf("lineage changed across round trip: %+v -> %+v", art.Lineage, got.Lineage)
	}
}

// TestModelClone proves a clone is bit-identical but fully independent:
// training the clone must not move the original's weights.
func TestModelClone(t *testing.T) {
	art := trainedArtifact(t)
	orig, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := art.Model.Clone()
	if err != nil {
		t.Fatal(err)
	}
	cfp, err := clone.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if cfp != orig {
		t.Fatal("clone weights differ from original")
	}
	w := newTestWorld(t, 6, 2)
	if _, err := clone.FineTune(w.queries, TrainConfig{Epochs: 1, LR: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	after, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if after != orig {
		t.Fatal("fine-tuning the clone mutated the original model")
	}
	cafter, err := clone.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if cafter == orig {
		t.Fatal("fine-tune did not change the clone")
	}
}

// TestArtifactRejectsImplausibleShape: a crafted config whose tensors could
// not fit the params payload must be rejected before allocation.
func TestArtifactRejectsImplausibleShape(t *testing.T) {
	if err := checkModelShape(10, Config{EmbeddingDim: 1 << 30, Hidden: 4, Body: GRUBody}, 100); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("huge embedding dim: want ErrArtifactCorrupt, got %v", err)
	}
	if err := checkModelShape(10, Config{EmbeddingDim: 4, Hidden: 1 << 22, Body: LSTMBody}, 100); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("huge hidden dim: want ErrArtifactCorrupt, got %v", err)
	}
	if err := checkModelShape(4, Config{EmbeddingDim: 3, Hidden: 2, Body: GRUBody}, 4096); err != nil {
		t.Fatalf("plausible shape rejected: %v", err)
	}
}

// TestArtifactPrepRoundTrip checks that the precomputed speedup structures
// survive a save/load cycle and come back answering queries identically.
func TestArtifactPrepRoundTrip(t *testing.T) {
	art := trainedArtifact(t)
	art.Prep = spath.BuildPrep(art.Graph, spath.PrepConfig{Landmarks: 3})
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Prep == nil || got.Prep.CH == nil || got.Prep.ALT == nil {
		t.Fatalf("prep not restored: %+v", got.Prep)
	}
	if got.Prep.CH.NumShortcuts() != art.Prep.CH.NumShortcuts() {
		t.Fatalf("shortcuts %d != %d", got.Prep.CH.NumShortcuts(), art.Prep.CH.NumShortcuts())
	}
	// The restored ranker must run on the restored prep's engine and agree
	// with the original on a query.
	r := got.NewRanker()
	if r.Engine == nil || r.Engine.Kind() != spath.EngineCH {
		t.Fatalf("restored ranker engine = %v, want CH", r.Engine)
	}
	src := roadnet.VertexID(0)
	dst := roadnet.VertexID(got.Graph.NumVertices() - 1)
	want, err1 := art.NewRanker().Query(src, dst)
	have, err2 := r.Query(src, dst)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("query errs: %v vs %v", err1, err2)
	}
	if err1 == nil {
		if len(want) != len(have) {
			t.Fatalf("ranked %d vs %d paths", len(have), len(want))
		}
		for i := range want {
			if want[i].Score != have[i].Score || !want[i].Path.Equal(have[i].Path) {
				t.Fatalf("ranked path %d differs after round trip", i)
			}
		}
	}
}

// TestArtifactVersion1StillLoads guards backward compatibility: a bundle
// whose header says version 1 (written before the prep section existed)
// must load, with Prep simply absent.
func TestArtifactVersion1StillLoads(t *testing.T) {
	art := trainedArtifact(t) // no prep: matches what a v1 writer produced
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.BigEndian.PutUint32(data[8:12], 1)
	got, err := LoadArtifact(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("version-1 bundle rejected: %v", err)
	}
	if got.Prep != nil {
		t.Fatalf("version-1 bundle grew a prep section")
	}
	if got.Graph.NumVertices() != art.Graph.NumVertices() {
		t.Fatalf("graph shape changed across version-1 load")
	}
	// Without a prep the ranker has no prebuilt engine; consumers build on
	// demand.
	if r := got.NewRanker(); r.Engine != nil {
		t.Fatalf("prep-less artifact produced a prebuilt engine")
	}
}

// TestArtifactRejectsCorruptPrep checks that a mangled prep section fails
// checksum-first, and a checksum-valid but graph-incompatible prep is
// rejected by the prep validator rather than panicking later.
func TestArtifactRejectsCorruptPrep(t *testing.T) {
	art := trainedArtifact(t)
	art.Prep = spath.BuildPrep(art.Graph, spath.PrepConfig{Landmarks: 2, SkipALT: true})
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-7] ^= 0x40 // flip a bit inside the payload tail (prep bytes)
	_, err := LoadArtifact(bytes.NewReader(data))
	if !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("want ErrArtifactCorrupt, got %v", err)
	}
}
