package pathrank

import (
	"math"
	"os"

	"pathrank/internal/nn"
	"pathrank/internal/spath"
)

// This file is the fused batched inference path: one /v2/rank batch becomes
// a handful of GEMMs instead of thousands of per-path dot products.
//
// Candidate paths are packed into a ragged batch sorted by length
// (descending), so at every timestep the still-active sequences form a
// prefix of the batch. Each recurrent gate then runs as one GemmNT across
// the whole active prefix — W·x_t for every path at once — on
// scratch-arena-backed matrices, with no allocations in steady state.
//
// Correctness contract: fused scores are BIT-IDENTICAL to the per-path
// path. The kernels preserve per-element accumulation order (see
// internal/nn/gemm.go), the gate/bias/activation sequence mirrors
// GRU.Forward / LSTM.Forward / Dense.Forward op for op, and summaries
// accumulate hidden states in the same per-path order (ascending t for
// forward directions, descending for the BiGRU backward half, exactly as
// BiGRU.Forward + meanVecs compose). TestScoreBatchFusedMatchesPerPath
// enforces this across every Body kind and path length.

// fusedChunk bounds the paths packed into one fused slab. Chunks are scored
// independently (parallelFor across chunks), so the bound keeps scratch
// slabs modest while still amortizing each weight row across dozens of
// sequences.
const fusedChunk = 32

// fusedScoringEnabled is the process-wide escape hatch back to per-path
// scoring: set PATHRANK_FUSED_SCORING=0 to make ScoreBatch dispatch to
// ScoreBatchPerPath. The serving layer exposes the same switch as
// serve.Config.DisableFusedScoring.
var fusedScoringEnabled = os.Getenv("PATHRANK_FUSED_SCORING") != "0"

// fusedWS is the reusable workspace of one fused chunk: the packed-matrix
// arena plus the chunk-local ordering/length bookkeeping.
type fusedWS struct {
	sc     nn.Scratch
	order  []int // chunk-local candidate indices, longest path first
	lens   []int // path length per order entry
	active []int // active[t] = #paths still running at step t
	steps  []nn.Mat
}

// sortByLenDesc orders ws.order/ws.lens by descending length, breaking ties
// by ascending candidate index. Insertion sort: chunks are small (≤
// fusedChunk) and this allocates nothing. Scores are per-path deterministic,
// so the order affects only packing, never results.
func (ws *fusedWS) sortByLenDesc() {
	for i := 1; i < len(ws.order); i++ {
		oi, li := ws.order[i], ws.lens[i]
		j := i - 1
		for j >= 0 && (ws.lens[j] < li || (ws.lens[j] == li && ws.order[j] > oi)) {
			ws.order[j+1], ws.lens[j+1] = ws.order[j], ws.lens[j]
			j--
		}
		ws.order[j+1], ws.lens[j+1] = oi, li
	}
}

// ScoreBatchFused scores the candidates through the batched GEMM kernels
// and returns the raw scores in input order, bit-identical to
// ScoreBatchPerPath. Chunks of fusedChunk paths are scored independently
// (in parallel when workers are available); empty paths score 0, exactly
// like Score.
func (m *Model) ScoreBatchFused(cands []spath.Path) []float64 {
	out := make([]float64, len(cands))
	nchunks := (len(cands) + fusedChunk - 1) / fusedChunk
	parallelFor(nchunks, func(c int) {
		lo := c * fusedChunk
		hi := lo + fusedChunk
		if hi > len(cands) {
			hi = len(cands)
		}
		m.scoreFusedChunk(cands[lo:hi], out[lo:hi])
	})
	return out
}

// scoreFusedChunk packs one chunk of candidates into a ragged batch and
// runs the fused forward pass for the model's body, scattering scores into
// out (indexed like cands).
func (m *Model) scoreFusedChunk(cands []spath.Path, out []float64) {
	ws, _ := m.fusedPool.Get().(*fusedWS)
	if ws == nil {
		ws = new(fusedWS)
	}
	defer m.fusedPool.Put(ws)
	ws.sc.Reset()
	ws.order = ws.order[:0]
	ws.lens = ws.lens[:0]
	for i, p := range cands {
		if len(p.Vertices) > 0 {
			ws.order = append(ws.order, i)
			ws.lens = append(ws.lens, len(p.Vertices))
		}
	}
	if len(ws.order) == 0 {
		return
	}
	ws.sortByLenDesc()
	B := len(ws.order)
	maxT := ws.lens[0]

	// active[t]: paths are sorted longest-first, so the sequences still
	// running at step t are exactly the first active[t] rows.
	ws.active = growInts(ws.active, maxT)
	ptr := B
	for t := 0; t < maxT; t++ {
		for ptr > 0 && ws.lens[ptr-1] <= t {
			ptr--
		}
		ws.active[t] = ptr
	}

	outDim := m.head.W.Cols
	sumH := ws.sc.Mat(B, outDim)
	switch m.cfg.Body {
	case GRUBody:
		m.fusedGRU(m.gru, ws, cands, false, false, sumH, 0)
		m.scaleMeanRows(ws, sumH)
	case BiGRUBody:
		m.fusedGRU(m.bigru.Fwd, ws, cands, false, false, sumH, 0)
		steps := m.fusedGRU(m.bigru.Bwd, ws, cands, true, true, nn.Mat{}, 0)
		// The per-path summary adds the backward half in descending step
		// order (out[t] carries hb[T-1-t]; meanVecs walks t ascending), so
		// the fused accumulation replays the steps backwards.
		off := m.bigru.Fwd.Hidden
		for t := maxT - 1; t >= 0; t-- {
			for b := 0; b < ws.active[t]; b++ {
				row := sumH.Row(b)[off:]
				nn.AddTo(row, steps[t].Row(b))
			}
		}
		m.scaleMeanRows(ws, sumH)
	case LSTMBody:
		m.fusedLSTM(ws, cands, sumH)
		m.scaleMeanRows(ws, sumH)
	case MeanPoolBody:
		X := ws.sc.Mat(B, m.emb.Dim())
		for t := 0; t < maxT; t++ {
			ba := ws.active[t]
			m.gatherEmb(X, ws, cands, t, false, ba)
			for b := 0; b < ba; b++ {
				nn.AddTo(sumH.Row(b), X.Row(b))
			}
		}
		m.scaleMeanRows(ws, sumH)
	case AttnGRUBody:
		steps := m.fusedGRU(m.gru, ws, cands, false, true, nn.Mat{}, 0)
		m.fusedAttention(ws, steps, sumH)
	}

	// Regression head: one GEMM over the batch of summaries, then the same
	// bias add and sigmoid Dense.Forward applies.
	scores := ws.sc.Mat(B, m.head.W.Rows)
	m.head.W.MatMulAdd(sumH, scores)
	for b := 0; b < B; b++ {
		s := scores.Row(b)[0] + m.head.B.W[0]
		out[ws.order[b]] = nn.Sigmoid(s)
	}
}

// scaleMeanRows divides each summary row by its own sequence length —
// the per-row counterpart of meanVecs' final Scale.
func (m *Model) scaleMeanRows(ws *fusedWS, sumH nn.Mat) {
	for b := range ws.order {
		nn.Scale(1/float64(ws.lens[b]), sumH.Row(b))
	}
}

// gatherEmb copies the step-t embedding of every active sequence into the
// first ba rows of X. reversed selects the mirrored timestep (the BiGRU
// backward direction), per sequence length.
func (m *Model) gatherEmb(X nn.Mat, ws *fusedWS, cands []spath.Path, t int, reversed bool, ba int) {
	for b := 0; b < ba; b++ {
		p := cands[ws.order[b]]
		idx := t
		if reversed {
			idx = ws.lens[b] - 1 - t
		}
		copy(X.Row(b), m.emb.Lookup(int(p.Vertices[idx])))
	}
}

// addBiasRows adds the bias vector to the first ba rows.
func addBiasRows(M nn.Mat, bias nn.Vec, ba int) {
	for b := 0; b < ba; b++ {
		nn.AddTo(M.Row(b), bias)
	}
}

// sigmoidRows / tanhRows apply the activation to the first ba rows.
func sigmoidRows(M nn.Mat, ba int) {
	d := M.Data[:ba*M.Cols]
	nn.SigmoidVec(d, d)
}

func tanhRows(M nn.Mat, ba int) {
	d := M.Data[:ba*M.Cols]
	nn.TanhVec(d, d)
}

// packEmbAll packs every (path, timestep) embedding of the chunk into one
// timestep-major matrix: rows [off[t], off[t]+active[t]) hold step t of
// every active sequence, where off[t] = Σ_{s<t} active[s]. Packing the whole
// chunk lets the input-side gate products run as ONE tall GEMM per gate
// instead of maxT small ones — full register tiles, no per-step tails.
func (m *Model) packEmbAll(ws *fusedWS, cands []spath.Path, reversed bool) nn.Mat {
	maxT := ws.lens[0]
	total := 0
	for t := 0; t < maxT; t++ {
		total += ws.active[t]
	}
	X := ws.sc.Mat(total, m.emb.Dim())
	row := 0
	for t := 0; t < maxT; t++ {
		ba := ws.active[t]
		m.gatherEmb(nn.Mat{Rows: ba, Cols: X.Cols, Data: X.Data[row*X.Cols:]}, ws, cands, t, reversed, ba)
		row += ba
	}
	return X
}

// stepView returns rows [off, off+rows) of M as a matrix view.
func stepView(M nn.Mat, off, rows int) nn.Mat {
	return nn.Mat{Rows: rows, Cols: M.Cols, Data: M.Data[off*M.Cols : (off+rows)*M.Cols]}
}

// fusedGRU runs one GRU direction over the ragged batch. The input-side
// gate products W{z,r,h}·x_t are hoisted into one whole-chunk GEMM per gate
// over the timestep-major embedding pack; the recurrent products U·h_{t-1}
// then accumulate into the per-step slab of that result, mirroring
// GRU.Forward's MatVec → MatVecAdd → bias → activation sequence exactly
// (each gate element is 0 + dotX + dotH + bias in both layouts). When sumH
// has storage, hidden states accumulate into sumH[:, off:off+H] as they are
// produced (the ascending-t half of mean pooling); when keepSteps is set,
// the per-step hidden-state matrices are returned for pooling that needs
// them (BiGRU backward half, attention).
func (m *Model) fusedGRU(g *nn.GRU, ws *fusedWS, cands []spath.Path, reversed, keepSteps bool, sumH nn.Mat, off int) []nn.Mat {
	maxT := ws.lens[0]
	H := g.Hidden
	sc := &ws.sc
	X := m.packEmbAll(ws, cands, reversed)
	XZ := sc.Mat(X.Rows, H)
	XR := sc.Mat(X.Rows, H)
	XH := sc.Mat(X.Rows, H)
	g.Wz.MatMulAdd(X, XZ)
	g.Wr.MatMulAdd(X, XR)
	g.Wh.MatMulAdd(X, XH)
	B := len(ws.order)
	Hp := sc.Mat(B, H) // h_{t-1}; zero initial state
	RH := sc.Mat(B, H)
	var steps []nn.Mat
	if keepSteps {
		ws.steps = growMats(ws.steps, maxT)
		steps = ws.steps
	}
	row := 0
	for t := 0; t < maxT; t++ {
		ba := ws.active[t]
		Hpv := Hp.View(ba)

		Z := stepView(XZ, row, ba)
		g.Uz.MatMulAdd(Hpv, Z)
		addBiasRows(Z, g.Bz.W, ba)
		sigmoidRows(Z, ba)

		R := stepView(XR, row, ba)
		g.Ur.MatMulAdd(Hpv, R)
		addBiasRows(R, g.Br.W, ba)
		sigmoidRows(R, ba)

		for b := 0; b < ba; b++ {
			nn.Hadamard(RH.Row(b), R.Row(b), Hp.Row(b))
		}
		Hh := stepView(XH, row, ba)
		g.Uh.MatMulAdd(RH.View(ba), Hh)
		addBiasRows(Hh, g.Bh.W, ba)
		tanhRows(Hh, ba)
		row += ba

		var stepM nn.Mat
		if keepSteps {
			stepM = sc.Mat(ba, H)
			steps[t] = stepM
		}
		for b := 0; b < ba; b++ {
			hp, z, hh := Hp.Row(b), Z.Row(b), Hh.Row(b)
			var sum nn.Vec
			if sumH.Data != nil {
				sum = sumH.Row(b)[off : off+H]
			}
			var keep nn.Vec
			if keepSteps {
				keep = stepM.Row(b)
			}
			for i := 0; i < H; i++ {
				h := (1-z[i])*hp[i] + z[i]*hh[i]
				hp[i] = h
				if sum != nil {
					sum[i] += h
				}
				if keep != nil {
					keep[i] = h
				}
			}
		}
	}
	return steps
}

// fusedLSTM mirrors LSTM.Forward over the ragged batch with the same
// input-side hoist as fusedGRU: the four W·x_t products run as whole-chunk
// GEMMs, the recurrent U·h_{t-1} products accumulate per step, and hidden
// states sum into sumH as they are produced.
func (m *Model) fusedLSTM(ws *fusedWS, cands []spath.Path, sumH nn.Mat) {
	l := m.lstm
	B := len(ws.order)
	maxT := ws.lens[0]
	H := l.Hidden
	sc := &ws.sc
	X := m.packEmbAll(ws, cands, false)
	XI := sc.Mat(X.Rows, H)
	XF := sc.Mat(X.Rows, H)
	XO := sc.Mat(X.Rows, H)
	XG := sc.Mat(X.Rows, H)
	l.Wi.MatMulAdd(X, XI)
	l.Wf.MatMulAdd(X, XF)
	l.Wo.MatMulAdd(X, XO)
	l.Wg.MatMulAdd(X, XG)
	Hp := sc.Mat(B, H)
	Cp := sc.Mat(B, H)
	row := 0
	for t := 0; t < maxT; t++ {
		ba := ws.active[t]
		Hpv := Hp.View(ba)
		gate := func(U, bias *nn.Param, XW nn.Mat) nn.Mat {
			M := stepView(XW, row, ba)
			U.MatMulAdd(Hpv, M)
			addBiasRows(M, bias.W, ba)
			return M
		}
		I := gate(l.Ui, l.Bi, XI)
		sigmoidRows(I, ba)
		F := gate(l.Uf, l.Bf, XF)
		sigmoidRows(F, ba)
		O := gate(l.Uo, l.Bo, XO)
		sigmoidRows(O, ba)
		G := gate(l.Ug, l.Bg, XG)
		tanhRows(G, ba)
		row += ba
		for b := 0; b < ba; b++ {
			hp, cp := Hp.Row(b), Cp.Row(b)
			iv, fv, ov, gv := I.Row(b), F.Row(b), O.Row(b), G.Row(b)
			sum := sumH.Row(b)
			for k := 0; k < H; k++ {
				ct := fv[k]*cp[k] + iv[k]*gv[k]
				cp[k] = ct
				h := ov[k] * math.Tanh(ct)
				hp[k] = h
				sum[k] += h
			}
		}
	}
}

// fusedAttention replays Attention.Forward over the stored per-step hidden
// states: u_t = tanh(W h_t) and e_t = vᵀu_t run as GEMMs per step, the
// softmax and the weighted sum replicate the per-path op order per row.
func (m *Model) fusedAttention(ws *fusedWS, steps []nn.Mat, sumH nn.Mat) {
	a := m.attn
	B := len(ws.order)
	maxT := ws.lens[0]
	sc := &ws.sc
	U := sc.Mat(B, a.Att)
	E := sc.Mat(B, 1)
	scoresM := sc.Mat(B, maxT)
	for t := 0; t < maxT; t++ {
		ba := ws.active[t]
		Uv := U.View(ba)
		U.ZeroRows(ba)
		a.W.MatMulAdd(steps[t], Uv)
		tanhRows(Uv, ba)
		Ev := E.View(ba)
		E.ZeroRows(ba)
		a.V.MatMulAdd(Uv, Ev)
		for b := 0; b < ba; b++ {
			scoresM.Row(b)[t] = Ev.Row(b)[0]
		}
	}
	for b := 0; b < B; b++ {
		T := ws.lens[b]
		alphas := scoresM.Row(b)[:T]
		// Softmax with max subtraction, in Attention.Forward's op order.
		maxS := math.Inf(-1)
		for _, s := range alphas {
			if s > maxS {
				maxS = s
			}
		}
		var sum float64
		for t, s := range alphas {
			alphas[t] = math.Exp(s - maxS)
			sum += alphas[t]
		}
		for t := range alphas {
			alphas[t] /= sum
		}
		row := sumH.Row(b)
		for t := 0; t < T; t++ {
			nn.Axpy(alphas[t], steps[t].Row(b), row)
		}
	}
}

// growMats returns s resized to length n, reusing capacity.
func growMats(s []nn.Mat, n int) []nn.Mat {
	if cap(s) < n {
		return make([]nn.Mat, n)
	}
	return s[:n]
}
