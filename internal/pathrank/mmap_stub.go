//go:build !unix

package pathrank

import (
	"io"
	"os"
)

// mapFile on platforms without mmap support reads the whole file into an
// aligned buffer. Loading still avoids deserialization (the raw arrays
// are reinterpreted in place), but the page-cache sharing and O(open)
// cold start of the real mapping are lost.
func mapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data := alignedBytes(int(fi.Size()))
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
