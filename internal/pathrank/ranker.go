package pathrank

import (
	"context"
	"fmt"

	"pathrank/internal/dataset"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// Ranker is the end-user facade: given an origin and a destination it
// generates candidate paths with the advanced-routing component and returns
// them ranked by the trained model, mirroring the paper's deployment
// scenario (a navigation service proposing ranked alternatives).
type Ranker struct {
	Graph *roadnet.Graph
	Model *Model
	// Candidates controls candidate generation for queries; defaults are
	// used when zero-valued.
	Candidates dataset.Config
	// Engine, when non-nil, runs candidate generation on a prepared
	// shortest-path engine (CH or ALT): the first path of every Yen
	// enumeration comes from the engine's point-to-point query and spur
	// searches use its admissible heuristic when it has one. The engine
	// must be built over the same road network (Artifact.NewRanker wires
	// the one persisted in the artifact). Distances are exact on every
	// engine, so rankings match the nil-engine (plain Dijkstra) path.
	Engine spath.Engine
}

// NewRanker wraps a trained model for query-time use.
func NewRanker(g *roadnet.Graph, m *Model) *Ranker {
	return &Ranker{Graph: g, Model: m, Candidates: dataset.DefaultConfig()}
}

// CandidatePaths generates the unranked candidate set between src and dst
// with the ranker's configured strategy. It is a compatibility wrapper over
// CandidatesFor with default options and no cancellation.
func (r *Ranker) CandidatePaths(src, dst roadnet.VertexID) ([]spath.Path, error) {
	cands, _, err := r.CandidatesFor(context.Background(), RankRequest{Src: src, Dst: dst})
	return cands, err
}

// Query generates candidates between src and dst and returns them with
// model scores, best first. It is the pre-RankRequest entry point, kept as
// a compatibility wrapper: Rank with a zero-valued override set returns
// bit-identical rankings.
func (r *Ranker) Query(src, dst roadnet.VertexID) ([]Ranked, error) {
	cands, err := r.CandidatePaths(src, dst)
	if err != nil {
		return nil, err
	}
	return r.Model.Rank(cands), nil
}

// PipelineConfig bundles every stage of the end-to-end PathRank build: the
// spatial-network embedding, training-data generation, the model, and the
// training loop.
type PipelineConfig struct {
	Walk      node2vec.WalkConfig
	SGNS      node2vec.TrainConfig
	Data      dataset.Config
	Model     Config
	Train     TrainConfig
	TestFrac  float64
	SplitSeed int64
}

// DefaultPipelineConfig returns a complete medium-scale configuration with
// embedding size m.
func DefaultPipelineConfig(m int) PipelineConfig {
	sg := node2vec.DefaultTrainConfig(m)
	mc := DefaultConfig()
	mc.EmbeddingDim = m
	return PipelineConfig{
		Walk:      node2vec.DefaultWalkConfig(),
		SGNS:      sg,
		Data:      dataset.DefaultConfig(),
		Model:     mc,
		Train:     DefaultTrainConfig(),
		TestFrac:  0.25,
		SplitSeed: 1,
	}
}

// Pipeline holds the artifacts of an end-to-end build.
type Pipeline struct {
	Embeddings *node2vec.Embeddings
	Model      *Model
	Train      []dataset.Query
	Test       []dataset.Query
	Losses     []float64
}

// BuildPipeline runs the full PathRank construction from a road network and
// a trip log: node2vec embedding, candidate generation and labeling,
// query-level train/test split, and model training.
func BuildPipeline(g *roadnet.Graph, trips []traj.Trip, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.SGNS.Dim != cfg.Model.EmbeddingDim {
		return nil, fmt.Errorf("pathrank: node2vec dim %d != model embedding dim %d",
			cfg.SGNS.Dim, cfg.Model.EmbeddingDim)
	}
	emb := node2vec.Embed(g, cfg.Walk, cfg.SGNS)
	queries, err := dataset.Generate(g, trips, cfg.Data)
	if err != nil {
		return nil, err
	}
	train, test := dataset.Split(queries, cfg.TestFrac, cfg.SplitSeed)
	model, err := New(g.NumVertices(), cfg.Model)
	if err != nil {
		return nil, err
	}
	if err := model.InitEmbeddings(emb); err != nil {
		return nil, err
	}
	losses, err := model.Train(train, cfg.Train)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Embeddings: emb, Model: model, Train: train, Test: test, Losses: losses}, nil
}
