package pathrank

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// EvalWorkers bounds the number of goroutines used by the data-parallel
// Evaluate and Rank scoring paths. Zero (the default) means GOMAXPROCS.
// Scoring is read-only on the model, and every worker writes to disjoint
// result indices, so the output is bitwise identical for any worker count;
// the knob exists for tests and for callers that want to co-schedule
// several evaluations.
var EvalWorkers int

func evalWorkerCount(n int) int {
	w := EvalWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs f(i) for i in [0, n), fanning out across a bounded
// worker pool. With one worker it degenerates to a plain loop.
func parallelFor(n int, f func(i int)) {
	workers := evalWorkerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
