package pathrank

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// randomPaths builds n random candidate paths over a vocab-vertex graph with
// lengths drawn from [1, maxLen], plus the edge cases the fused packer must
// handle: an empty path, a single-vertex path, and duplicated lengths (ties
// in the length sort).
func randomPaths(rng *rand.Rand, n, vocab, maxLen int) []spath.Path {
	paths := make([]spath.Path, 0, n+2)
	for i := 0; i < n; i++ {
		T := 1 + rng.Intn(maxLen)
		vs := make([]roadnet.VertexID, T)
		for t := range vs {
			vs[t] = roadnet.VertexID(rng.Intn(vocab))
		}
		paths = append(paths, spath.Path{Vertices: vs})
	}
	// Edge cases at fixed positions: empty (scores 0 on both paths) and
	// single-vertex.
	paths = append(paths, spath.Path{})
	paths = append(paths, spath.Path{Vertices: []roadnet.VertexID{roadnet.VertexID(rng.Intn(vocab))}})
	rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
	return paths
}

// TestScoreBatchFusedMatchesPerPath is the correctness gate of the fused
// batched scorer: across every Body kind (with and without the multi-task
// heads), random path lengths from 1 to 80, empty paths, single-vertex
// paths, and batches spanning several fused chunks, the fused scores must be
// BIT-IDENTICAL (==, not approximately equal) to the per-path reference.
func TestScoreBatchFusedMatchesPerPath(t *testing.T) {
	bodies := []Body{GRUBody, BiGRUBody, LSTMBody, MeanPoolBody, AttnGRUBody}
	for _, body := range bodies {
		for _, lambda := range []float64{0, 0.3} {
			name := fmt.Sprintf("%v/lambda=%v", body, lambda)
			t.Run(name, func(t *testing.T) {
				const vocab = 60
				cfg := Config{
					EmbeddingDim: 12, Hidden: 10, Variant: PRA2, Body: body,
					MultiTaskLambda: lambda, Seed: int64(17 + int(body)),
				}
				m, err := New(vocab, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(99 + int64(body)))
				for round := 0; round < 3; round++ {
					// 70 paths span 3 fused chunks; max length 80 exercises
					// the longest sequences the ranking core sees.
					paths := randomPaths(rng, 70, vocab, 80)
					want := m.ScoreBatchPerPath(paths)
					got := m.ScoreBatchFused(paths)
					if len(got) != len(want) {
						t.Fatalf("fused returned %d scores, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("round %d path %d (len %d): fused %.17g != per-path %.17g",
								round, i, len(paths[i].Vertices), got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestScoreBatchDispatch checks the env escape hatch's dispatch logic and
// that both dispatch targets agree on tiny batches.
func TestScoreBatchDispatch(t *testing.T) {
	m, err := New(30, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	paths := randomPaths(rng, 8, 30, 20)

	old := fusedScoringEnabled
	defer func() { fusedScoringEnabled = old }()

	fusedScoringEnabled = true
	fused := m.ScoreBatch(paths)
	fusedScoringEnabled = false
	perPath := m.ScoreBatch(paths)
	for i := range perPath {
		if fused[i] != perPath[i] {
			t.Fatalf("path %d: fused dispatch %v != per-path dispatch %v", i, fused[i], perPath[i])
		}
	}

	// Single-element batches stay on the per-path path even when fused
	// scoring is on (nothing to batch).
	fusedScoringEnabled = true
	one := m.ScoreBatch(paths[:1])
	if one[0] != perPath[0] {
		t.Fatalf("single-path batch: %v != %v", one[0], perPath[0])
	}
}

// TestRankScoredLengthMismatchPanics pins the bugfix: a scoring layer that
// returns the wrong number of scores must fail loudly, not zip candidates
// against the wrong scores.
func TestRankScoredLengthMismatchPanics(t *testing.T) {
	cands := []spath.Path{
		{Vertices: []roadnet.VertexID{1, 2}},
		{Vertices: []roadnet.VertexID{3}},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RankScored accepted 1 score for 2 candidates")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "1 scores for 2 candidates") {
			t.Fatalf("panic message %q does not name the mismatch", msg)
		}
	}()
	RankScored(cands, []float64{0.5})
}

func TestRankScoredMatchedLengths(t *testing.T) {
	cands := []spath.Path{
		{Vertices: []roadnet.VertexID{1, 2}},
		{Vertices: []roadnet.VertexID{3}},
	}
	ranked := RankScored(cands, []float64{0.2, 0.9})
	if len(ranked) != 2 || ranked[0].Score != 0.9 || ranked[1].Score != 0.2 {
		t.Fatalf("unexpected ranking %+v", ranked)
	}
}

// TestScoreSteadyStateAllocs pins the pooled-forward-state bugfix: a warm
// Score must not allocate per-call id/embedding/summary buffers.
func TestScoreSteadyStateAllocs(t *testing.T) {
	m, err := New(40, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	paths := randomPaths(rng, 16, 40, 30)

	oldWorkers := EvalWorkers
	EvalWorkers = 1
	defer func() { EvalWorkers = oldWorkers }()

	// Warm the pools.
	for i := 0; i < 4; i++ {
		for _, p := range paths {
			m.Score(p)
		}
	}
	p := paths[0]
	if len(p.Vertices) == 0 {
		p = paths[1]
	}
	avg := testing.AllocsPerRun(50, func() { m.Score(p) })
	// The GRU cache header is the one steady-state allocation left; give it
	// one slack slot so the test pins the regression, not the GC's mood.
	if avg > 2 {
		t.Fatalf("Score allocates %.1f objects/op steady-state, want <= 2", avg)
	}
}

// TestScoreBatchFusedSteadyStateAllocs verifies the fused path runs on
// pooled scratch: a warm chunk-sized batch costs only the result slice.
func TestScoreBatchFusedSteadyStateAllocs(t *testing.T) {
	m, err := New(40, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	paths := randomPaths(rng, fusedChunk-2, 40, 30)

	oldWorkers := EvalWorkers
	EvalWorkers = 1
	defer func() { EvalWorkers = oldWorkers }()

	for i := 0; i < 4; i++ {
		m.ScoreBatchFused(paths)
	}
	avg := testing.AllocsPerRun(50, func() { m.ScoreBatchFused(paths) })
	// One result slice per call, plus slack for a pool header.
	if avg > 3 {
		t.Fatalf("ScoreBatchFused allocates %.1f objects/op steady-state, want <= 3", avg)
	}
}

func benchScoreBatch(b *testing.B, fused bool) {
	m, err := New(200, Config{
		EmbeddingDim: 32, Hidden: 16, Variant: PRA2, Body: GRUBody, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	paths := make([]spath.Path, 0, 24)
	for i := 0; i < 24; i++ {
		T := 8 + rng.Intn(40)
		vs := make([]roadnet.VertexID, T)
		for t := range vs {
			vs[t] = roadnet.VertexID(rng.Intn(200))
		}
		paths = append(paths, spath.Path{Vertices: vs})
	}
	score := m.ScoreBatchFused
	if !fused {
		score = m.ScoreBatchPerPath
	}
	score(paths) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		score(paths)
	}
}

// BenchmarkScoreBatchFused measures the fused batched scorer on a
// serving-shaped batch (24 paths, lengths 8-48, the BenchmarkRankQuery
// model size). Compare against BenchmarkScoreBatchPerPath.
func BenchmarkScoreBatchFused(b *testing.B) { benchScoreBatch(b, true) }

// BenchmarkScoreBatchPerPath is the per-path reference for
// BenchmarkScoreBatchFused.
func BenchmarkScoreBatchPerPath(b *testing.B) { benchScoreBatch(b, false) }
