package pathrank

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// v3Artifact is trainedArtifact plus the CH prep the raw section carries.
func v3Artifact(t testing.TB) *Artifact {
	t.Helper()
	art := trainedArtifact(t)
	art.Prep = spath.BuildPrep(art.Graph, spath.PrepConfig{})
	return art
}

// TestArtifactV3RoundTrip saves format v3 and reloads it both ways,
// demanding bit-identical graph, CH, and model behavior.
func TestArtifactV3RoundTrip(t *testing.T) {
	art := v3Artifact(t)
	path := filepath.Join(t.TempDir(), "v3.prar")
	if err := SaveArtifactV3File(path, art); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		load func(string) (*Artifact, error)
	}{
		{"deserialized", LoadArtifactFile},
		{"mapped", LoadArtifactFileMapped},
	} {
		got, err := mode.load(path)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if got.Graph.NumVertices() != art.Graph.NumVertices() || got.Graph.NumEdges() != art.Graph.NumEdges() {
			t.Fatalf("%s: graph shape changed", mode.name)
		}
		for i := 0; i < art.Graph.NumEdges(); i++ {
			e, w := art.Graph.Edge(roadnet.EdgeID(i)), got.Graph.Edge(roadnet.EdgeID(i))
			if e != w {
				t.Fatalf("%s: edge %d differs: %+v vs %+v", mode.name, i, e, w)
			}
		}
		if got.Prep == nil || got.Prep.CH == nil {
			t.Fatalf("%s: CH prep lost", mode.name)
		}
		// CH answers must match a fresh Dijkstra on the reloaded graph.
		ws := spath.GetWorkspace(got.Graph)
		n := got.Graph.NumVertices()
		targets := []roadnet.VertexID{roadnet.VertexID(n - 1), roadnet.VertexID(n / 2)}
		want := make([]float64, len(targets))
		ws.BoundedDistances(got.Graph, 0, targets, math.Inf(1), spath.ByLength, want)
		ws.Release()
		eng := got.Prep.BestEngine(got.Graph)
		rows := [][]float64{make([]float64, len(targets))}
		eng.ManyToMany([]roadnet.VertexID{0}, targets, math.Inf(1), rows)
		for j := range targets {
			if rows[0][j] != want[j] {
				t.Fatalf("%s: CH distance 0->%d = %g, dijkstra says %g", mode.name, targets[j], rows[0][j], want[j])
			}
		}
		wantFP, err := art.Model.FingerprintHex()
		if err != nil {
			t.Fatal(err)
		}
		gotFP, err := got.Model.FingerprintHex()
		if err != nil {
			t.Fatal(err)
		}
		if wantFP != gotFP {
			t.Fatalf("%s: model fingerprint changed", mode.name)
		}
		if err := got.Close(); err != nil {
			t.Fatalf("%s: close: %v", mode.name, err)
		}
	}
}

// TestArtifactV3MappedColdStartSkipsArrays is the mmap acceptance test: a
// mapped open must not deserialize the CSR and CH arrays — its heap
// allocations must stay far below the raw section it maps, while a
// regular load pays for every array. The graph is sized so the raw
// arrays dominate the file and the model gob is noise.
func TestArtifactV3MappedColdStartSkipsArrays(t *testing.T) {
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 28, Cols: 28, SpacingM: 200, JitterFrac: 0.2,
		RemoveFrac: 0.05, ArterialEvery: 5, Motorway: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g.NumVertices(), Config{EmbeddingDim: 2, Hidden: 2, Variant: PRA1, Body: MeanPoolBody, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	art := &Artifact{Graph: g, Model: m, Prep: spath.BuildPrep(g, spath.PrepConfig{Landmarks: 1})}
	path := filepath.Join(t.TempDir(), "v3.prar")
	if err := SaveArtifactV3File(path, art); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	allocBytes := func(load func(string) (*Artifact, error)) uint64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		a, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		defer a.Close()
		return after.TotalAlloc - before.TotalAlloc
	}

	full := allocBytes(LoadArtifactFile)
	mapped := allocBytes(LoadArtifactFileMapped)
	t.Logf("file %d bytes, deserialized load allocated %d, mapped load allocated %d", fi.Size(), full, mapped)
	// A deserialized load reads and decodes the whole file (gob inflates
	// it further); a mapped load must allocate no more than roughly the
	// model/metadata gob — well under half the file, and far under the
	// full load.
	if mapped >= uint64(fi.Size())/2 {
		t.Fatalf("mapped load allocated %d bytes for a %d-byte file: raw arrays are being copied", mapped, fi.Size())
	}
	if mapped*2 >= full {
		t.Fatalf("mapped load allocated %d bytes vs %d deserialized: mapping saves nothing", mapped, full)
	}
}

// TestArtifactV3ShardInfoRoundTrip checks the shard identity block
// survives both load paths.
func TestArtifactV3ShardInfoRoundTrip(t *testing.T) {
	art := v3Artifact(t)
	art.Shard = &ShardInfo{
		Index: 1, Parts: 3,
		Boundary:   []roadnet.VertexID{0, 3, roadnet.VertexID(art.Graph.NumVertices() - 1)},
		EdgeGlobal: make([]roadnet.EdgeID, art.Graph.NumEdges()),
	}
	for i := range art.Shard.EdgeGlobal {
		art.Shard.EdgeGlobal[i] = roadnet.EdgeID(i)
	}
	path := filepath.Join(t.TempDir(), "shard.prar")
	if err := SaveArtifactV3File(path, art); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(string) (*Artifact, error){LoadArtifactFile, LoadArtifactFileMapped} {
		got, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Shard == nil || got.Shard.Index != 1 || got.Shard.Parts != 3 {
			t.Fatalf("shard identity lost: %+v", got.Shard)
		}
		if len(got.Shard.Boundary) != 3 || len(got.Shard.EdgeGlobal) != art.Graph.NumEdges() {
			t.Fatalf("shard tables lost: %d boundary, %d edges", len(got.Shard.Boundary), len(got.Shard.EdgeGlobal))
		}
		got.Close()
	}
}
