package pathrank

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"unsafe"

	"pathrank/internal/nn"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// Artifact format version 3: the mappable shard format. The 52-byte
// header and gob payload are exactly version 2's, except that the graph
// and the CH half of the prep move OUT of the gob payload into a raw
// section appended after it:
//
//	offset            content
//	0                 52-byte header (version 3; checksum covers the gob
//	                  payload only, as in v2)
//	52                gob payload (model config/params, candidates,
//	                  lineage, shard info, embeddings, ALT-only prep)
//	align8(52+plen)   raw section: directory + flat arrays
//
// The raw section is the byte image of the graph's CSR arrays
// (roadnet.GraphData) and, when the artifact carries a CH, the CH query
// arrays (spath.CHData), each 8-byte aligned. A directory names every
// array by offset and element count:
//
//	8   magic "PRRAWSEC"
//	4   byte-order probe (0x01020304, native endianness)
//	4   array count (8 = graph only, 20 = graph + CH)
//	16n per array: file offset (uint64), element count (uint64)
//
// Array order and element types are fixed (see rawGraphArrays /
// rawCHArrays below), so the directory needs no type tags. Loading is
// reinterpretation, not deserialization: LoadArtifactFileMapped mmaps
// the file and wraps the arrays in place (O(open) cold start, page
// cache shared across replicas on one box), and the io.Reader path
// reads the section into one buffer and wraps that.
//
// Deliberate non-goals, traded for the O(open) cold start:
//
//   - The raw section is NOT covered by the header checksum — verifying
//     it would fault in every page, which is exactly what mapping avoids.
//     The gob payload (model weights) stays checksummed.
//   - The byte image is native-endian and uses the writing build's struct
//     layout; the probe rejects a cross-endian file, and shard bundles
//     are expected to be built and served on the same architecture.
const artifactVersionRaw = 3

var rawSectionMagic = [8]byte{'P', 'R', 'R', 'A', 'W', 'S', 'E', 'C'}

const rawEndianProbe uint32 = 0x01020304

// rawGraphArrayCount and rawCHArrayCount are the fixed directory sizes.
const (
	rawGraphArrayCount = 8
	rawCHArrayCount    = 12
)

// ShardInfo identifies an artifact as one shard of a partitioned
// deployment. A shard artifact keeps the FULL vertex table under global
// IDs (so the model's vertex vocabulary — and therefore its scores — are
// unchanged) but only the edges induced by its owned vertex set,
// renumbered densely; EdgeGlobal maps them back to full-graph edge IDs
// so the router can stitch shard answers into full-graph terms.
type ShardInfo struct {
	// Index is this shard's position in [0, Parts).
	Index int
	// Parts is the partition count of the bundle this shard belongs to.
	Parts int
	// Boundary lists this shard's boundary vertices (owned vertices
	// incident to at least one cut edge), ascending, as global vertex IDs.
	Boundary []roadnet.VertexID
	// EdgeGlobal maps local (induced-subgraph) edge IDs to the full
	// graph's edge IDs; len equals the shard graph's edge count.
	EdgeGlobal []roadnet.EdgeID
}

func align8(n int) int { return (n + 7) &^ 7 }

// alignedBytes returns a zeroed buffer of length n whose base address is
// 8-byte aligned (backed by a []uint64), so raw arrays reinterpreted out
// of it satisfy their alignment no matter where the allocator would have
// placed a plain []byte.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// rawArray is one directory entry being written.
type rawArray struct {
	bytes []byte
	elems uint64
}

func rawBytesOf[T any](s []T) rawArray {
	if len(s) == 0 {
		return rawArray{}
	}
	return rawArray{
		bytes: unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0]))),
		elems: uint64(len(s)),
	}
}

// rawGraphArrays flattens g into the fixed directory order.
func rawGraphArrays(g *roadnet.Graph) []rawArray {
	d := g.RawData()
	return []rawArray{
		rawBytesOf(d.Vertices),
		rawBytesOf(d.Edges),
		rawBytesOf(d.OutStart),
		rawBytesOf(d.OutEdges),
		rawBytesOf(d.OutTo),
		rawBytesOf(d.InStart),
		rawBytesOf(d.InEdges),
		rawBytesOf(d.InFrom),
	}
}

// rawCHArrays flattens a CH into the fixed directory order.
func rawCHArrays(d spath.CHData) []rawArray {
	return []rawArray{
		rawBytesOf(d.Order),
		rawBytesOf(d.ArcFrom),
		rawBytesOf(d.ArcTo),
		rawBytesOf(d.ArcWeight),
		rawBytesOf(d.ArcMid),
		rawBytesOf(d.ArcEdge),
		rawBytesOf(d.UpStart),
		rawBytesOf(d.UpArcs),
		rawBytesOf(d.DownStart),
		rawBytesOf(d.DownArcs),
		rawBytesOf(d.IdxKeys),
		rawBytesOf(d.IdxVals),
	}
}

// SaveArtifactV3 writes the artifact in format version 3: gob payload
// (without the graph and CH, which go to the raw section) followed by
// the raw flat arrays. Prefer SaveArtifactV3File; this form exists for
// in-memory round-trip tests.
func SaveArtifactV3(w io.Writer, a *Artifact) error {
	if a == nil || a.Graph == nil || a.Model == nil {
		return fmt.Errorf("pathrank: artifact needs a graph and a model")
	}
	var wire artifactWire
	wire.ModelConfig = a.Model.Config()
	wire.Candidates = a.Candidates
	wire.Lineage = a.Lineage
	wire.Shard = a.Shard

	if a.Embeddings != nil {
		var ebuf bytes.Buffer
		if err := a.Embeddings.Save(&ebuf); err != nil {
			return fmt.Errorf("pathrank: artifact embeddings: %w", err)
		}
		wire.Embeddings = ebuf.Bytes()
	}
	params, err := nn.MarshalParams(a.Model.params)
	if err != nil {
		return fmt.Errorf("pathrank: artifact weights: %w", err)
	}
	wire.Params = params
	// The ALT tables (when present) stay in the gob payload; only the CH
	// moves to the raw section.
	if a.Prep != nil && a.Prep.ALT != nil {
		var pbuf bytes.Buffer
		if err := (&spath.Prep{ALT: a.Prep.ALT}).Save(&pbuf); err != nil {
			return fmt.Errorf("pathrank: artifact prep: %w", err)
		}
		wire.Prep = pbuf.Bytes()
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(wire); err != nil {
		return fmt.Errorf("pathrank: encode artifact: %w", err)
	}

	arrays := rawGraphArrays(a.Graph)
	if a.Prep != nil && a.Prep.CH != nil {
		arrays = append(arrays, rawCHArrays(a.Prep.CH.RawData())...)
	}

	// Layout: directory right after the (aligned) payload, arrays after
	// the directory, each 8-byte aligned.
	rawStart := align8(52 + payload.Len())
	dirLen := len(rawSectionMagic) + 4 + 4 + len(arrays)*16
	off := align8(rawStart + dirLen)
	offsets := make([]uint64, len(arrays))
	for i, arr := range arrays {
		offsets[i] = uint64(off)
		off = align8(off + len(arr.bytes))
	}

	var header [52]byte
	copy(header[0:8], artifactMagic[:])
	binary.BigEndian.PutUint32(header[8:12], artifactVersionRaw)
	sum := sha256.Sum256(payload.Bytes())
	copy(header[12:44], sum[:])
	binary.BigEndian.PutUint64(header[44:52], uint64(payload.Len()))

	var pad [8]byte
	pos := 0
	emit := func(b []byte) error {
		if err != nil {
			return err
		}
		if _, werr := w.Write(b); werr != nil {
			err = werr
			return err
		}
		pos += len(b)
		return nil
	}
	padTo := func(n int) error { return emit(pad[:n-pos]) }

	err = nil
	emit(header[:])
	emit(payload.Bytes())
	padTo(rawStart)
	emit(rawSectionMagic[:])
	var u32 [4]byte
	binary.NativeEndian.PutUint32(u32[:], rawEndianProbe)
	emit(u32[:])
	binary.NativeEndian.PutUint32(u32[:], uint32(len(arrays)))
	emit(u32[:])
	var u64 [8]byte
	for i, arr := range arrays {
		binary.NativeEndian.PutUint64(u64[:], offsets[i])
		emit(u64[:])
		binary.NativeEndian.PutUint64(u64[:], arr.elems)
		emit(u64[:])
	}
	for i, arr := range arrays {
		padTo(int(offsets[i]))
		emit(arr.bytes)
	}
	if err != nil {
		return fmt.Errorf("pathrank: write artifact raw section: %w", err)
	}
	return nil
}

// SaveArtifactV3File writes a version-3 artifact to the named file (not
// atomic; shard bundles are built offline into a fresh directory).
func SaveArtifactV3File(path string, a *Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pathrank: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := SaveArtifactV3(bw, a); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pathrank: flush %s: %w", path, err)
	}
	return f.Close()
}

// rawDirEntry is one parsed directory entry.
type rawDirEntry struct {
	off, elems uint64
}

// parseRawDirectory reads and bounds-checks the raw-section directory.
// Every per-array check needed to make slice reinterpretation safe
// happens here: offset alignment, element-size products, and end-of-file
// bounds — so a truncated or corrupt file fails with a typed error
// instead of faulting.
func parseRawDirectory(data []byte, rawStart int) ([]rawDirEntry, error) {
	hdrLen := len(rawSectionMagic) + 8
	if rawStart < 0 || rawStart+hdrLen > len(data) {
		return nil, fmt.Errorf("%w: raw section truncated", ErrArtifactCorrupt)
	}
	d := data[rawStart:]
	if !bytes.Equal(d[:8], rawSectionMagic[:]) {
		return nil, fmt.Errorf("%w: bad raw-section magic", ErrArtifactCorrupt)
	}
	if probe := binary.NativeEndian.Uint32(d[8:12]); probe != rawEndianProbe {
		return nil, fmt.Errorf("%w: artifact written on a different byte order", ErrArtifactFormat)
	}
	count := binary.NativeEndian.Uint32(d[12:16])
	if count != rawGraphArrayCount && count != rawGraphArrayCount+rawCHArrayCount {
		return nil, fmt.Errorf("%w: raw section has %d arrays", ErrArtifactCorrupt, count)
	}
	if rawStart+hdrLen+int(count)*16 > len(data) {
		return nil, fmt.Errorf("%w: raw directory truncated", ErrArtifactCorrupt)
	}
	entries := make([]rawDirEntry, count)
	for i := range entries {
		base := hdrLen + i*16
		entries[i] = rawDirEntry{
			off:   binary.NativeEndian.Uint64(d[base : base+8]),
			elems: binary.NativeEndian.Uint64(d[base+8 : base+16]),
		}
	}
	return entries, nil
}

// sliceOf reinterprets a directory entry as a []T, after verifying the
// entry lies inside data, is 8-byte aligned, and its byte length matches
// elems*sizeof(T) without overflow.
func sliceOf[T any](data []byte, e rawDirEntry) ([]T, error) {
	if e.elems == 0 {
		return nil, nil
	}
	size := uint64(unsafe.Sizeof(*new(T)))
	if e.off%8 != 0 {
		return nil, fmt.Errorf("%w: misaligned raw array at %d", ErrArtifactCorrupt, e.off)
	}
	if e.elems > (uint64(len(data))-e.off)/size || e.off > uint64(len(data)) {
		return nil, fmt.Errorf("%w: raw array out of bounds (off %d, %d elems)", ErrArtifactCorrupt, e.off, e.elems)
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[e.off])), e.elems), nil
}

// decodeArtifactV3 reconstructs an artifact from the complete byte image
// of a version-3 file. The caller has already verified magic and
// version. data may be a memory mapping (the returned artifact's graph
// and CH alias it) or an ordinary buffer. deep additionally validates
// the graph and CH content (endpoint ranges, CSR consistency, shortcut
// unpackability) — the io.Reader path runs it because arbitrary bytes
// reach it (fuzzing, foreign files); the mapped path trusts its own
// writer to keep cold starts O(open).
func decodeArtifactV3(data []byte, deep bool) (*Artifact, error) {
	if len(data) < 52 {
		return nil, fmt.Errorf("%w: short header", ErrArtifactFormat)
	}
	plen := binary.BigEndian.Uint64(data[44:52])
	if plen > maxArtifactPayload || 52+plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: payload length %d exceeds file", ErrArtifactCorrupt, plen)
	}
	payload := data[52 : 52+plen]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], data[12:44]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrArtifactCorrupt)
	}
	var wire artifactWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decode payload: %v", ErrArtifactCorrupt, err)
	}

	entries, err := parseRawDirectory(data, align8(52+int(plen)))
	if err != nil {
		return nil, err
	}
	var gd roadnet.GraphData
	if gd.Vertices, err = sliceOf[roadnet.Vertex](data, entries[0]); err != nil {
		return nil, err
	}
	if gd.Edges, err = sliceOf[roadnet.Edge](data, entries[1]); err != nil {
		return nil, err
	}
	if gd.OutStart, err = sliceOf[int32](data, entries[2]); err != nil {
		return nil, err
	}
	if gd.OutEdges, err = sliceOf[roadnet.EdgeID](data, entries[3]); err != nil {
		return nil, err
	}
	if gd.OutTo, err = sliceOf[roadnet.VertexID](data, entries[4]); err != nil {
		return nil, err
	}
	if gd.InStart, err = sliceOf[int32](data, entries[5]); err != nil {
		return nil, err
	}
	if gd.InEdges, err = sliceOf[roadnet.EdgeID](data, entries[6]); err != nil {
		return nil, err
	}
	if gd.InFrom, err = sliceOf[roadnet.VertexID](data, entries[7]); err != nil {
		return nil, err
	}
	nv, ne := len(gd.Vertices), len(gd.Edges)
	if nv == 0 || len(gd.OutStart) != nv+1 || len(gd.InStart) != nv+1 ||
		len(gd.OutEdges) != ne || len(gd.OutTo) != ne || len(gd.InEdges) != ne || len(gd.InFrom) != ne {
		return nil, fmt.Errorf("%w: raw graph arrays inconsistent (%d vertices, %d edges)", ErrArtifactCorrupt, nv, ne)
	}

	var chd *spath.CHData
	if len(entries) > rawGraphArrayCount {
		ce := entries[rawGraphArrayCount:]
		chd = &spath.CHData{}
		if chd.Order, err = sliceOf[int32](data, ce[0]); err != nil {
			return nil, err
		}
		if chd.ArcFrom, err = sliceOf[int32](data, ce[1]); err != nil {
			return nil, err
		}
		if chd.ArcTo, err = sliceOf[int32](data, ce[2]); err != nil {
			return nil, err
		}
		if chd.ArcWeight, err = sliceOf[float64](data, ce[3]); err != nil {
			return nil, err
		}
		if chd.ArcMid, err = sliceOf[int32](data, ce[4]); err != nil {
			return nil, err
		}
		if chd.ArcEdge, err = sliceOf[roadnet.EdgeID](data, ce[5]); err != nil {
			return nil, err
		}
		if chd.UpStart, err = sliceOf[int32](data, ce[6]); err != nil {
			return nil, err
		}
		if chd.UpArcs, err = sliceOf[int32](data, ce[7]); err != nil {
			return nil, err
		}
		if chd.DownStart, err = sliceOf[int32](data, ce[8]); err != nil {
			return nil, err
		}
		if chd.DownArcs, err = sliceOf[int32](data, ce[9]); err != nil {
			return nil, err
		}
		if chd.IdxKeys, err = sliceOf[int64](data, ce[10]); err != nil {
			return nil, err
		}
		if chd.IdxVals, err = sliceOf[int32](data, ce[11]); err != nil {
			return nil, err
		}
		m := len(chd.ArcFrom)
		if len(chd.Order) != nv || len(chd.ArcTo) != m || len(chd.ArcWeight) != m ||
			len(chd.ArcMid) != m || len(chd.ArcEdge) != m ||
			len(chd.UpStart) != nv+1 || len(chd.DownStart) != nv+1 ||
			len(chd.UpArcs)+len(chd.DownArcs) != m ||
			len(chd.IdxKeys) != len(chd.IdxVals) {
			return nil, fmt.Errorf("%w: raw CH arrays inconsistent", ErrArtifactCorrupt)
		}
	}

	if deep {
		if err := validateRawGraph(gd); err != nil {
			return nil, err
		}
		if chd != nil {
			if err := validateRawCH(gd, *chd); err != nil {
				return nil, err
			}
		}
	}

	g := roadnet.AssembleGraph(gd)
	if deep {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("%w: raw graph: %v", ErrArtifactCorrupt, err)
		}
	}
	if err := checkModelShape(nv, wire.ModelConfig, len(wire.Params)); err != nil {
		return nil, err
	}
	model, err := New(nv, wire.ModelConfig)
	if err != nil {
		return nil, fmt.Errorf("pathrank: artifact model config: %w", err)
	}
	if err := nn.UnmarshalParams(wire.Params, model.params); err != nil {
		return nil, fmt.Errorf("pathrank: artifact weights: %w", err)
	}
	a := &Artifact{Graph: g, Model: model, Candidates: wire.Candidates, Lineage: wire.Lineage, Shard: wire.Shard}
	if len(wire.Prep) > 0 {
		prep, err := spath.LoadPrep(bytes.NewReader(wire.Prep), g)
		if err != nil {
			return nil, fmt.Errorf("%w: prep section: %v", ErrArtifactCorrupt, err)
		}
		a.Prep = prep
	}
	if chd != nil {
		if a.Prep == nil {
			a.Prep = &spath.Prep{}
		}
		a.Prep.CH = spath.AssembleCH(g, *chd)
	}
	if len(wire.Embeddings) > 0 {
		emb, err := node2vec.LoadEmbeddings(bytes.NewReader(wire.Embeddings))
		if err != nil {
			return nil, fmt.Errorf("pathrank: artifact embeddings: %w", err)
		}
		a.Embeddings = emb
	}
	return a, nil
}

// validateRawGraph checks that the CSR start arrays are monotone and
// in-bounds, so Graph accessors cannot panic on slicing; Graph.Validate
// (run by the caller afterwards) covers the per-edge invariants.
func validateRawGraph(gd roadnet.GraphData) error {
	ne := int32(len(gd.Edges))
	for _, starts := range [][]int32{gd.OutStart, gd.InStart} {
		if starts[0] != 0 || starts[len(starts)-1] != ne {
			return fmt.Errorf("%w: CSR start array does not span the edge set", ErrArtifactCorrupt)
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				return fmt.Errorf("%w: CSR start array not monotone at %d", ErrArtifactCorrupt, i)
			}
		}
	}
	for _, eid := range gd.OutEdges {
		if eid < 0 || int32(eid) >= ne {
			return fmt.Errorf("%w: out-adjacency edge %d out of range", ErrArtifactCorrupt, eid)
		}
	}
	for _, eid := range gd.InEdges {
		if eid < 0 || int32(eid) >= ne {
			return fmt.Errorf("%w: in-adjacency edge %d out of range", ErrArtifactCorrupt, eid)
		}
	}
	nv := int32(len(gd.Vertices))
	for _, v := range gd.OutTo {
		if v < 0 || int32(v) >= nv {
			return fmt.Errorf("%w: out-neighbor %d out of range", ErrArtifactCorrupt, v)
		}
	}
	for _, v := range gd.InFrom {
		if v < 0 || int32(v) >= nv {
			return fmt.Errorf("%w: in-neighbor %d out of range", ErrArtifactCorrupt, v)
		}
	}
	return nil
}

// validateRawCH is the assembled-CH counterpart of spath.LoadPrep's
// validation: index ranges, monotone adjacency, the rank invariant that
// makes shortcut unpacking terminate, and half-arc presence in the
// sorted unpacking index.
func validateRawCH(gd roadnet.GraphData, d spath.CHData) error {
	nv := int32(len(gd.Vertices))
	ne := int32(len(gd.Edges))
	m := int32(len(d.ArcFrom))
	for _, starts := range [][]int32{d.UpStart, d.DownStart} {
		if starts[0] != 0 {
			return fmt.Errorf("%w: CH adjacency does not start at 0", ErrArtifactCorrupt)
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				return fmt.Errorf("%w: CH adjacency not monotone at %d", ErrArtifactCorrupt, i)
			}
		}
	}
	if int32(d.UpStart[nv]) != int32(len(d.UpArcs)) || int32(d.DownStart[nv]) != int32(len(d.DownArcs)) {
		return fmt.Errorf("%w: CH adjacency does not span its arc lists", ErrArtifactCorrupt)
	}
	for _, ai := range d.UpArcs {
		if ai < 0 || ai >= m {
			return fmt.Errorf("%w: CH up-arc %d out of range", ErrArtifactCorrupt, ai)
		}
	}
	for _, ai := range d.DownArcs {
		if ai < 0 || ai >= m {
			return fmt.Errorf("%w: CH down-arc %d out of range", ErrArtifactCorrupt, ai)
		}
	}
	for i := range d.IdxKeys {
		if i > 0 && d.IdxKeys[i] <= d.IdxKeys[i-1] {
			return fmt.Errorf("%w: CH unpacking index not strictly sorted at %d", ErrArtifactCorrupt, i)
		}
		if d.IdxVals[i] < 0 || d.IdxVals[i] >= m {
			return fmt.Errorf("%w: CH unpacking index value %d out of range", ErrArtifactCorrupt, d.IdxVals[i])
		}
	}
	findIdx := func(from, to int32) bool {
		key := int64(from)<<32 | int64(uint32(to))
		lo, hi := 0, len(d.IdxKeys)
		for lo < hi {
			mid := (lo + hi) / 2
			if d.IdxKeys[mid] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(d.IdxKeys) && d.IdxKeys[lo] == key
	}
	for i := int32(0); i < m; i++ {
		from, to, mid := d.ArcFrom[i], d.ArcTo[i], d.ArcMid[i]
		if from < 0 || from >= nv || to < 0 || to >= nv {
			return fmt.Errorf("%w: CH arc %d endpoints out of range", ErrArtifactCorrupt, i)
		}
		if mid < -1 || mid >= nv {
			return fmt.Errorf("%w: CH arc %d middle vertex out of range", ErrArtifactCorrupt, i)
		}
		if !(d.ArcWeight[i] >= 0) {
			return fmt.Errorf("%w: CH arc %d has invalid weight", ErrArtifactCorrupt, i)
		}
		if mid < 0 {
			if d.ArcEdge[i] < 0 || int32(d.ArcEdge[i]) >= ne {
				return fmt.Errorf("%w: CH arc %d edge out of range", ErrArtifactCorrupt, i)
			}
			continue
		}
		if d.Order[mid] >= d.Order[from] || d.Order[mid] >= d.Order[to] {
			return fmt.Errorf("%w: CH shortcut %d violates the rank invariant", ErrArtifactCorrupt, i)
		}
		if !findIdx(from, mid) || !findIdx(mid, to) {
			return fmt.Errorf("%w: CH shortcut %d has no half-arc in the unpacking index", ErrArtifactCorrupt, i)
		}
	}
	return nil
}

// LoadArtifactFileMapped opens a version-3 artifact by memory-mapping it:
// the graph's CSR arrays and the CH query arrays are used in place, so
// load cost is independent of their size and N replicas on one machine
// share the page cache. The returned artifact's Close must be called
// when it is retired; until then the graph and prep alias the mapping.
// A version-1/2 file falls back to the ordinary deserializing load (and
// needs no Close, though calling it is harmless).
func LoadArtifactFileMapped(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathrank: %w", err)
	}
	defer f.Close()
	data, closeMap, err := mapFile(f)
	if err != nil {
		return nil, fmt.Errorf("pathrank: map %s: %w", path, err)
	}
	if len(data) < 12 || !bytes.Equal(data[0:8], artifactMagic[:]) {
		closeMap()
		return nil, fmt.Errorf("%w: bad magic", ErrArtifactFormat)
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != artifactVersionRaw {
		// Not a raw-format file: deserialize the ordinary way and drop
		// the mapping — nothing in the result aliases it.
		a, err := LoadArtifact(bytes.NewReader(data))
		closeMap()
		return a, err
	}
	a, err := decodeArtifactV3(data, false)
	if err != nil {
		closeMap()
		return nil, err
	}
	a.closeFn = closeMap
	return a, nil
}

// Close releases the memory mapping backing a mapped artifact. It is a
// no-op (and returns nil) for artifacts loaded any other way. After
// Close, the artifact's graph and prep must not be used.
func (a *Artifact) Close() error {
	if a.closeFn == nil {
		return nil
	}
	fn := a.closeFn
	a.closeFn = nil
	return fn()
}
