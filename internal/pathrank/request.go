package pathrank

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/pathsim"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// StrategyChoice optionally overrides the ranker's candidate-generation
// strategy for one request. The zero value keeps the configured default.
type StrategyChoice uint8

// Per-request strategy choices.
const (
	// StrategyAuto keeps the ranker's configured strategy.
	StrategyAuto StrategyChoice = iota
	// StrategyTkDI forces plain top-k shortest paths.
	StrategyTkDI
	// StrategyDTkDI forces diversified top-k shortest paths.
	StrategyDTkDI
)

// String names the choice as accepted by ParseStrategyChoice.
func (s StrategyChoice) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyTkDI:
		return "tkdi"
	case StrategyDTkDI:
		return "dtkdi"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategyChoice parses a strategy name ("", "auto", "tkdi", "dtkdi").
func ParseStrategyChoice(s string) (StrategyChoice, error) {
	switch s {
	case "", "auto":
		return StrategyAuto, nil
	case "tkdi", "topk":
		return StrategyTkDI, nil
	case "dtkdi", "diversified":
		return StrategyDTkDI, nil
	default:
		return StrategyAuto, rankErrf(api.CodeInvalid, "unknown strategy %q (want tkdi or dtkdi)", s)
	}
}

// WeightKind optionally overrides the edge metric for one request. The
// zero value keeps the configured default (length).
type WeightKind uint8

// Per-request weight kinds.
const (
	// WeightAuto keeps the default metric (length).
	WeightAuto WeightKind = iota
	// WeightLength ranks by geometric length in meters.
	WeightLength
	// WeightTime ranks by free-flow travel time in seconds.
	WeightTime
)

// String names the kind as accepted by ParseWeightKind.
func (w WeightKind) String() string {
	switch w {
	case WeightAuto:
		return "auto"
	case WeightLength:
		return "length"
	case WeightTime:
		return "time"
	default:
		return fmt.Sprintf("weight(%d)", uint8(w))
	}
}

// ParseWeightKind parses a weight name ("", "auto", "length", "time").
func ParseWeightKind(s string) (WeightKind, error) {
	switch s {
	case "", "auto":
		return WeightAuto, nil
	case "length", "distance":
		return WeightLength, nil
	case "time":
		return WeightTime, nil
	default:
		return WeightAuto, rankErrf(api.CodeInvalid, "unknown weight %q (want length or time)", s)
	}
}

// EngineChoice optionally overrides the shortest-path backend for one
// request. The zero value keeps the ranker's configured engine.
type EngineChoice uint8

// Per-request engine choices.
const (
	// EngineAuto keeps the ranker's configured engine (its prepared CH or
	// ALT structure when it has one, plain Dijkstra otherwise).
	EngineAuto EngineChoice = iota
	// EngineNone bypasses any prepared engine and runs plain pooled
	// Dijkstra searches.
	EngineNone
	// EngineALT requires the ranker's prepared ALT engine.
	EngineALT
	// EngineCH requires the ranker's prepared CH engine.
	EngineCH
)

// String names the choice as accepted by ParseEngineChoice.
func (e EngineChoice) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineNone:
		return "dijkstra"
	case EngineALT:
		return "alt"
	case EngineCH:
		return "ch"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngineChoice parses an engine name ("", "auto", "dijkstra", "alt",
// "ch").
func ParseEngineChoice(s string) (EngineChoice, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "dijkstra", "none":
		return EngineNone, nil
	case "alt":
		return EngineALT, nil
	case "ch":
		return EngineCH, nil
	default:
		return EngineAuto, rankErrf(api.CodeInvalid, "unknown engine %q (want auto, dijkstra, alt or ch)", s)
	}
}

// RankRequest is a first-class ranking query: an origin-destination pair
// plus per-request overrides of the candidate regime. Every field except
// Src and Dst is optional — the zero value of each override keeps the
// ranker's configured default, so RankRequest{Src: s, Dst: d} reproduces
// Ranker.Query(s, d) exactly.
type RankRequest struct {
	Src roadnet.VertexID
	Dst roadnet.VertexID
	// K overrides the candidate-set size when positive. A D-TkDI probe
	// budget configured on the ranker is scaled proportionally, so the
	// probe-to-k ratio the model was built with is preserved.
	K int
	// Strategy overrides the candidate-generation strategy.
	Strategy StrategyChoice
	// Threshold overrides the D-TkDI similarity threshold when positive;
	// it must lie in (0, 1].
	Threshold float64
	// MaxProbe overrides the D-TkDI enumeration budget when positive.
	MaxProbe int
	// Weight overrides the edge metric. WeightTime bypasses a prepared
	// engine (prepared structures are built for the length metric).
	Weight WeightKind
	// Engine overrides the shortest-path backend. Requesting a prepared
	// kind (EngineALT, EngineCH) the ranker does not hold is an
	// invalid-request error; EngineNone always works.
	Engine EngineChoice
	// Explain asks the serving layer to include RankStats in its
	// response; the in-process Rank fills stats regardless.
	Explain bool
}

// RankStats describes how a ranking was produced: the fully resolved
// candidate configuration and where the time went.
type RankStats struct {
	// Strategy, K, Threshold and MaxProbe are the effective candidate
	// configuration after overrides.
	Strategy  dataset.Strategy
	K         int
	Threshold float64
	MaxProbe  int
	// Weight is the effective edge metric (never WeightAuto).
	Weight WeightKind
	// Engine is the backend candidate generation ran on; EngineDijkstra
	// covers both a Dijkstra engine and the engineless pooled search.
	Engine spath.EngineKind
	// Candidates is the number of candidate paths generated.
	Candidates int
	// GenNanos and ScoreNanos split the query cost into candidate
	// generation and NN scoring.
	GenNanos   int64
	ScoreNanos int64
}

// RankResponse is the result of one Rank call: the scored candidates, best
// first, plus generation statistics.
type RankResponse struct {
	Paths []Ranked
	Stats RankStats
}

// RankError is a typed ranking failure; Code is one of the api.Code*
// constants, so the serving layer can map it onto an HTTP status without
// string matching.
type RankError struct {
	Code    string
	Message string
	// Err is the wrapped cause, when any.
	Err error
}

// Error implements the error interface.
func (e *RankError) Error() string {
	return "pathrank: " + e.Message
}

// Unwrap returns the wrapped cause.
func (e *RankError) Unwrap() error { return e.Err }

// rankErrf builds a RankError with a formatted message.
func rankErrf(code, format string, args ...any) *RankError {
	return &RankError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorCodeOf classifies err into an api error code: a RankError carries
// its own code; spath.ErrNoPath is unroutable; context expiry maps to the
// deadline/cancel codes; anything else is internal.
func ErrorCodeOf(err error) string {
	var re *RankError
	if errors.As(err, &re) {
		return re.Code
	}
	switch {
	case errors.Is(err, spath.ErrNoPath):
		return api.CodeUnroutable
	case errors.Is(err, context.DeadlineExceeded):
		return api.CodeDeadline
	case errors.Is(err, context.Canceled):
		return api.CodeCanceled
	}
	return api.CodeInternal
}

// resolve validates req against the ranker and materializes the effective
// candidate configuration, weight, and engine.
func (r *Ranker) resolve(req RankRequest) (dataset.Config, spath.Weight, spath.Engine, RankStats, error) {
	var stats RankStats
	n := roadnet.VertexID(r.Graph.NumVertices())
	if req.Src < 0 || req.Src >= n || req.Dst < 0 || req.Dst >= n {
		return dataset.Config{}, nil, nil, stats,
			rankErrf(api.CodeInvalid, "src/dst must be in [0,%d)", n)
	}
	if req.K < 0 {
		return dataset.Config{}, nil, nil, stats, rankErrf(api.CodeInvalid, "k must be non-negative")
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		return dataset.Config{}, nil, nil, stats,
			rankErrf(api.CodeInvalid, "threshold must be in (0,1], got %g", req.Threshold)
	}
	if req.MaxProbe < 0 {
		return dataset.Config{}, nil, nil, stats, rankErrf(api.CodeInvalid, "max_probe must be non-negative")
	}

	cfg := r.Candidates
	if cfg.K <= 0 {
		cfg = dataset.DefaultConfig()
	}
	switch req.Strategy {
	case StrategyAuto:
	case StrategyTkDI:
		cfg.Strategy = dataset.TkDI
	case StrategyDTkDI:
		cfg.Strategy = dataset.DTkDI
	default:
		return dataset.Config{}, nil, nil, stats, rankErrf(api.CodeInvalid, "unknown strategy %d", req.Strategy)
	}
	// A k equal to the configured K is a no-op by definition; a genuine
	// override scales a configured probe budget proportionally so the
	// probe-to-k ratio is preserved (the serving layer has always done
	// this for its per-request k).
	if req.K > 0 && req.K != cfg.K {
		if cfg.MaxProbe > 0 && cfg.K > 0 {
			cfg.MaxProbe = cfg.MaxProbe * req.K / cfg.K
		}
		cfg.K = req.K
	}
	if req.Threshold > 0 {
		cfg.Threshold = req.Threshold
	}
	if req.MaxProbe > 0 {
		cfg.MaxProbe = req.MaxProbe
	}

	weight := spath.ByLength
	wk := WeightLength
	if req.Weight == WeightTime {
		weight = spath.ByTime
		wk = WeightTime
	}

	engine := r.Engine
	switch req.Engine {
	case EngineAuto:
	case EngineNone:
		engine = nil
	case EngineALT, EngineCH:
		want := spath.EngineALT
		if req.Engine == EngineCH {
			want = spath.EngineCH
		}
		if engine == nil || engine.Kind() != want {
			return dataset.Config{}, nil, nil, stats,
				rankErrf(api.CodeInvalid, "engine %s is not prepared for this snapshot", req.Engine)
		}
	default:
		return dataset.Config{}, nil, nil, stats, rankErrf(api.CodeInvalid, "unknown engine %d", req.Engine)
	}
	// Prepared engines are built for the length metric; a time-weighted
	// query must run on the plain pooled search. An explicit prepared-kind
	// request combined with the time metric is contradictory.
	if wk == WeightTime && engine != nil {
		if req.Engine == EngineALT || req.Engine == EngineCH {
			return dataset.Config{}, nil, nil, stats,
				rankErrf(api.CodeInvalid, "engine %s serves the length metric; use weight=length or engine=dijkstra", req.Engine)
		}
		engine = nil
	}

	stats.Strategy = cfg.Strategy
	stats.K = cfg.K
	stats.Threshold = cfg.Threshold
	stats.MaxProbe = cfg.MaxProbe
	stats.Weight = wk
	stats.Engine = spath.EngineDijkstra
	if engine != nil {
		stats.Engine = engine.Kind()
	}
	return cfg, weight, engine, stats, nil
}

// CandidatesFor generates the candidate set for req, honoring ctx, and
// reports the resolved configuration. It is the candidate-generation half
// of Rank, exposed so the serving layer can score through its own path
// (the micro-batcher) while producing exactly the same candidates.
func (r *Ranker) CandidatesFor(ctx context.Context, req RankRequest) ([]spath.Path, RankStats, error) {
	cfg, weight, engine, stats, err := r.resolve(req)
	if err != nil {
		return nil, stats, err
	}
	var cands []spath.Path
	switch cfg.Strategy {
	case dataset.TkDI:
		if engine != nil {
			cands, err = spath.TopKEngineCtx(ctx, engine, req.Src, req.Dst, cfg.K)
		} else {
			cands, err = spath.TopKCtx(ctx, r.Graph, req.Src, req.Dst, cfg.K, weight)
		}
	case dataset.DTkDI:
		probe := cfg.MaxProbe
		if probe <= 0 {
			probe = 10 * cfg.K
		}
		sim := pathsim.WeightedJaccardSim(r.Graph)
		if engine != nil {
			cands, err = spath.DiversifiedTopKEngineCtx(ctx, engine, req.Src, req.Dst, cfg.K, sim, cfg.Threshold, probe)
		} else {
			cands, err = spath.DiversifiedTopKCtx(ctx, r.Graph, req.Src, req.Dst, cfg.K, weight, sim, cfg.Threshold, probe)
		}
	default:
		return nil, stats, rankErrf(api.CodeInvalid, "unknown candidate strategy %d", cfg.Strategy)
	}
	if err != nil {
		return nil, stats, fmt.Errorf("pathrank: candidate generation %d->%d: %w", req.Src, req.Dst, err)
	}
	stats.Candidates = len(cands)
	return cands, stats, nil
}

// Rank is the core query entry point: it generates candidates for req
// under ctx and returns them with model scores, best first. With a
// zero-valued override set the ranking is bit-identical to
// Ranker.Query(req.Src, req.Dst); canceling ctx stops an in-flight
// enumeration and returns ctx's error (ErrorCodeOf maps it to a deadline
// or cancellation code).
func (r *Ranker) Rank(ctx context.Context, req RankRequest) (RankResponse, error) {
	genStart := time.Now()
	cands, stats, err := r.CandidatesFor(ctx, req)
	if err != nil {
		return RankResponse{}, err
	}
	stats.GenNanos = time.Since(genStart).Nanoseconds()
	scoreStart := time.Now()
	ranked := r.Model.Rank(cands)
	stats.ScoreNanos = time.Since(scoreStart).Nanoseconds()
	return RankResponse{Paths: ranked, Stats: stats}, nil
}
