package pathrank

import (
	"math"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

func TestScoreSingleVertexPath(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	for _, body := range []Body{GRUBody, BiGRUBody, LSTMBody, MeanPoolBody, AttnGRUBody} {
		cfg := smallConfig()
		cfg.Body = body
		m, err := New(w.g.NumVertices(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := spath.Path{Vertices: []roadnet.VertexID{3}}
		s := m.Score(p)
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("%s: single-vertex score %v", body, s)
		}
	}
}

func TestModelDeterministicAcrossRuns(t *testing.T) {
	w := newTestWorld(t, 3, 1)
	build := func() float64 {
		m, err := New(w.g.NumVertices(), smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(w.queries, TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		return m.Score(w.queries[0].Candidates[0].Path)
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same seeds produced different scores: %v vs %v", a, b)
	}
}

func TestRankerDefaultsWhenUnconfigured(t *testing.T) {
	w := newTestWorld(t, 3, 1)
	m, _ := New(w.g.NumVertices(), smallConfig())
	r := &Ranker{Graph: w.g, Model: m} // zero-valued Candidates
	q := w.queries[0]
	ranked, err := r.Query(q.Source, q.Destination)
	if err != nil {
		t.Fatalf("Query with defaults: %v", err)
	}
	if len(ranked) == 0 {
		t.Fatal("default ranker returned no candidates")
	}
}

func TestRankerUnreachableDestination(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	m, _ := New(w.g.NumVertices()+1, smallConfig())
	// Same-vertex query: K candidates degenerate to the empty path set; the
	// generator returns a single zero-length path.
	r := NewRanker(w.g, m)
	ranked, err := r.Query(0, 0)
	if err != nil {
		t.Fatalf("self query: %v", err)
	}
	if len(ranked) == 0 {
		t.Fatal("self query should return the trivial path")
	}
}

func TestTrainLogfCallback(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	m, _ := New(w.g.NumVertices(), smallConfig())
	var lines int
	_, err := m.Train(w.queries, TrainConfig{
		Epochs: 3, LR: 0.005, ClipNorm: 5, Seed: 1,
		Logf: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 3 {
		t.Fatalf("Logf called %d times, want 3", lines)
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	w := newTestWorld(t, 4, 2)
	train, val := dataset.Split(w.queries, 0.3, 11)
	m, _ := New(w.g.NumVertices(), smallConfig())
	losses, err := m.Train(train, TrainConfig{
		Epochs: 50, LR: 0.01, ClipNorm: 5, Seed: 1,
		Validation: val, Patience: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) >= 50 {
		t.Fatalf("early stopping never triggered: ran all %d epochs", len(losses))
	}
}

func TestTrainLRDecayStillConverges(t *testing.T) {
	w := newTestWorld(t, 3, 2)
	m, _ := New(w.g.NumVertices(), smallConfig())
	losses, err := m.Train(w.queries, TrainConfig{
		Epochs: 8, LR: 0.01, ClipNorm: 5, Seed: 1, LRDecay: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(losses[len(losses)-1] < losses[0]) {
		t.Fatalf("loss did not decrease with LR decay: %v", losses)
	}
}
