//go:build unix

package pathrank

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the whole file read-only and shared, so every process
// serving the same shard artifact on a machine shares one copy of its
// pages. The returned release function unmaps; the bytes must not be
// touched after calling it.
func mapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
