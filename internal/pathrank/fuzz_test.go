package pathrank

import (
	"bytes"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
)

// fuzzSeedArtifact builds and serializes a minimal valid artifact bundle.
func fuzzSeedArtifact(f *testing.F) []byte {
	f.Helper()
	b := roadnet.NewBuilder(4, 8)
	v0 := b.AddVertex(geo.Point{Lon: 10.00, Lat: 57.00})
	v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.00})
	v2 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.01})
	b.AddBidirectional(v0, v1, roadnet.Residential)
	b.AddBidirectional(v1, v2, roadnet.Residential)
	b.AddBidirectional(v2, v0, roadnet.Secondary)
	g := b.Build()
	model, err := New(g.NumVertices(), Config{
		EmbeddingDim: 3, Hidden: 2, Variant: PRA2, Body: GRUBody, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	art := &Artifact{
		Graph:      g,
		Model:      model,
		Candidates: dataset.Config{Strategy: dataset.TkDI, K: 2},
		Lineage:    Lineage{Note: "fuzz seed"},
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadArtifact asserts the artifact parser never panics: arbitrary
// bytes either reconstruct a complete artifact or return an error. The
// header checksum screens random corruption, so the corpus also seeds
// variants with a recomputed-checksum path disabled: truncations (caught
// by the length field) and header-field flips exercise the explicit
// format/version/corrupt branches, while the valid bundle lets the fuzzer
// mutate its way into the gob payload.
func FuzzLoadArtifact(f *testing.F) {
	valid := fuzzSeedArtifact(f)
	f.Add(valid)
	f.Add(valid[:20]) // inside the header
	f.Add(valid[:len(valid)-5] /* truncated payload */)
	f.Add([]byte{})
	for _, off := range []int{0, 9, 20, 45, 60, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x01
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := LoadArtifact(bytes.NewReader(data))
		if err != nil {
			return
		}
		if art == nil || art.Graph == nil || art.Model == nil {
			t.Fatal("LoadArtifact returned success with an incomplete artifact")
		}
		// The loaded model must be usable: fingerprinting touches every
		// parameter tensor.
		if _, ferr := art.Model.Fingerprint(); ferr != nil {
			t.Fatalf("loaded artifact cannot be fingerprinted: %v", ferr)
		}
	})
}
