package pathrank

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pathrank/internal/dataset"
	"pathrank/internal/fault"
	"pathrank/internal/nn"
	"pathrank/internal/node2vec"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// Artifact is a complete trained PathRank deployment: the road network the
// model was trained on, the node2vec embeddings (optional — the trained
// model already contains them in its embedding matrix), the model itself,
// and the candidate-generation configuration used at query time. It is the
// unit of persistence between training (pathrank-train) and serving
// (pathrank-serve).
type Artifact struct {
	Graph      *roadnet.Graph
	Embeddings *node2vec.Embeddings // may be nil
	Model      *Model
	Candidates dataset.Config
	// Prep carries the precomputed shortest-path speedup structures
	// (contraction hierarchy, ALT landmark tables) built for Graph under
	// the candidate-generation metric. It may be nil — consumers then
	// preprocess on demand — but persisting it is what makes serving
	// cold-starts preprocessing-free. An incremental retrain on an
	// unchanged road network carries the parent's Prep forward untouched.
	Prep *spath.Prep
	// Lineage records where this artifact came from in an incremental
	// training chain; the zero value denotes an unstamped (pre-lineage or
	// externally assembled) artifact.
	Lineage Lineage
	// Shard is set when this artifact is one shard of a partitioned
	// deployment (see internal/partition); nil for whole-graph artifacts.
	Shard *ShardInfo
	// closeFn releases the memory mapping backing a mapped artifact; see
	// Close. Nil for ordinarily loaded artifacts.
	closeFn func() error
}

// Lineage is the provenance of an artifact in an incremental-training
// chain. Generation 0 is an offline (from-scratch) training run; each
// incremental fine-tune bumps Generation and records the parent model's
// fingerprint, so a chain of artifacts can be audited back to its root.
type Lineage struct {
	// Generation counts fine-tune steps since the offline root (0 = root).
	Generation int
	// Parent is the hex SHA-256 fingerprint of the model this one was
	// warm-started from; empty for generation 0.
	Parent string
	// TrainedOn is the number of observations (trajectory paths) in the
	// window this generation was fine-tuned on; for generation 0 it is the
	// offline training-query count.
	TrainedOn int
	// TotalObserved accumulates TrainedOn across the whole chain.
	TotalObserved int
	// Note is a free-form provenance annotation ("offline", "stream", …).
	Note string
	// DataRoot is the hex Merkle root (internal/merkle, RFC 6962 shape)
	// over the canonical WAL encodings of the trajectory observations this
	// generation was fine-tuned on, in training (ingest-sequence) order.
	// Together with a per-trajectory inclusion proof it makes the training
	// set verifiable; empty for offline generations and pre-provenance
	// artifacts. Like Lineage itself, the field is a gob-compatible wire
	// addition: older readers ignore it, older files decode it empty.
	DataRoot string
	// ChainRoot is the hex chained commitment over the whole generation
	// history: merkle.ChainRoot(parent ChainRoot, DataRoot), with the zero
	// hash as genesis. Two artifacts with equal ChainRoot were trained on
	// byte-identical data histories.
	ChainRoot string
}

// Child returns the lineage of an artifact fine-tuned from a model with
// fingerprint parentFP on trainedOn new observations.
func (l Lineage) Child(parentFP string, trainedOn int, note string) Lineage {
	return Lineage{
		Generation:    l.Generation + 1,
		Parent:        parentFP,
		TrainedOn:     trainedOn,
		TotalObserved: l.TotalObserved + trainedOn,
		Note:          note,
	}
}

// NewRanker wraps the artifact's model and graph for query-time use, with
// the artifact's candidate configuration. When the artifact carries
// precomputed speedup structures, the ranker's candidate generation runs
// on the fastest engine they back (CH, else ALT).
func (a *Artifact) NewRanker() *Ranker {
	r := NewRanker(a.Graph, a.Model)
	if a.Candidates.K > 0 {
		r.Candidates = a.Candidates
	}
	if a.Prep != nil {
		r.Engine = a.Prep.BestEngine(a.Graph)
	}
	return r
}

// Fingerprint returns a SHA-256 digest of the model's trainable state.
// Bit-identical weights produce identical fingerprints.
func (m *Model) Fingerprint() ([sha256.Size]byte, error) {
	return nn.ParamsFingerprint(m.params)
}

// FingerprintHex returns the model fingerprint as a lowercase hex string,
// the form used in lineage records and the serving API.
func (m *Model) FingerprintHex() (string, error) {
	fp, err := m.Fingerprint()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(fp[:]), nil
}

// Artifact file format (all integers big-endian):
//
//	offset  size  field
//	     0     8  magic "PRARTFCT"
//	     8     4  format version (uint32)
//	    12    32  SHA-256 of the payload
//	    44     8  payload length in bytes (uint64)
//	    52     n  payload: gob(artifactWire)
//
// The checksum covers every payload byte, so any torn write or bit flip is
// detected before gob decoding is attempted.
//
// Version history:
//
//	1  initial format (graph + embeddings + model + candidate config;
//	   lineage added later as a gob-compatible field)
//	2  adds the precomputed speedup structures (CH + ALT landmark tables)
//	   as a nested Prep section
//	3  the mappable shard format: the graph and CH move out of the gob
//	   payload into a raw flat-array section after it (see artifact_v3.go)
//
// Readers accept every version up to artifactVersionRaw — the Prep
// section of a version-1 file decodes as absent and consumers preprocess
// on demand. Ordinary saves still write version 2; version 3 is written
// only by SaveArtifactV3 (shard bundles and anything else that wants the
// memory-mapped load path).
const (
	artifactVersion    = 2
	minArtifactVersion = 1
)

var artifactMagic = [8]byte{'P', 'R', 'A', 'R', 'T', 'F', 'C', 'T'}

// maxArtifactPayload bounds the payload Load will accept; together with
// the streamed read below it guarantees a corrupt header cannot make the
// server allocate more than the actual file size at startup.
const maxArtifactPayload = 1 << 32

// Artifact error sentinels, matchable with errors.Is.
var (
	// ErrArtifactFormat reports a file that is not a pathrank artifact.
	ErrArtifactFormat = errors.New("pathrank: not an artifact file")
	// ErrArtifactVersion reports an artifact written by an incompatible
	// format version.
	ErrArtifactVersion = errors.New("pathrank: unsupported artifact version")
	// ErrArtifactCorrupt reports a checksum mismatch or truncated payload.
	ErrArtifactCorrupt = errors.New("pathrank: artifact corrupt")
)

// artifactWire is the gob payload of an artifact bundle. The graph,
// embeddings, and weights reuse their packages' own serializers as nested
// byte sections, so each layer's format can evolve independently.
type artifactWire struct {
	ModelConfig Config
	Candidates  dataset.Config
	// Lineage was added after version 1 shipped; gob decodes files written
	// without it to the zero value, so the format version is unchanged.
	Lineage    Lineage
	Graph      []byte
	Embeddings []byte // empty when the artifact carries no embeddings
	Params     []byte
	// Prep is the serialized spath.Prep (version 2); empty when the
	// artifact carries no precomputed structures. In a version-3 file it
	// holds at most the ALT tables — the CH lives in the raw section.
	Prep []byte
	// Shard marks a partitioned-deployment shard; nil otherwise. A
	// gob-compatible addition like Lineage.
	Shard *ShardInfo
}

// SaveArtifact writes a versioned, checksummed bundle of the artifact to w.
func SaveArtifact(w io.Writer, a *Artifact) error {
	if a == nil || a.Graph == nil || a.Model == nil {
		return fmt.Errorf("pathrank: artifact needs a graph and a model")
	}
	var wire artifactWire
	wire.ModelConfig = a.Model.Config()
	wire.Candidates = a.Candidates
	wire.Lineage = a.Lineage
	wire.Shard = a.Shard

	var gbuf bytes.Buffer
	if err := a.Graph.Save(&gbuf); err != nil {
		return fmt.Errorf("pathrank: artifact graph: %w", err)
	}
	wire.Graph = gbuf.Bytes()

	if a.Embeddings != nil {
		var ebuf bytes.Buffer
		if err := a.Embeddings.Save(&ebuf); err != nil {
			return fmt.Errorf("pathrank: artifact embeddings: %w", err)
		}
		wire.Embeddings = ebuf.Bytes()
	}

	params, err := nn.MarshalParams(a.Model.params)
	if err != nil {
		return fmt.Errorf("pathrank: artifact weights: %w", err)
	}
	wire.Params = params

	if a.Prep != nil {
		var pbuf bytes.Buffer
		if err := a.Prep.Save(&pbuf); err != nil {
			return fmt.Errorf("pathrank: artifact prep: %w", err)
		}
		wire.Prep = pbuf.Bytes()
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(wire); err != nil {
		return fmt.Errorf("pathrank: encode artifact: %w", err)
	}

	var header [52]byte
	copy(header[0:8], artifactMagic[:])
	binary.BigEndian.PutUint32(header[8:12], artifactVersion)
	sum := sha256.Sum256(payload.Bytes())
	copy(header[12:44], sum[:])
	binary.BigEndian.PutUint64(header[44:52], uint64(payload.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("pathrank: write artifact header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("pathrank: write artifact payload: %w", err)
	}
	return nil
}

// LoadArtifact reads a bundle written by SaveArtifact, verifying the magic,
// format version, and payload checksum before reconstructing the graph and
// model. The returned model's weights are bit-identical to the saved ones.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	var header [52]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrArtifactFormat, err)
	}
	if !bytes.Equal(header[0:8], artifactMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrArtifactFormat, header[0:8])
	}
	v := binary.BigEndian.Uint32(header[8:12])
	if v < minArtifactVersion || v > artifactVersionRaw {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d-%d",
			ErrArtifactVersion, v, minArtifactVersion, artifactVersionRaw)
	}
	if v == artifactVersionRaw {
		// The raw flat-array section follows the payload; slurp the whole
		// image into an 8-byte-aligned buffer so the arrays can be
		// reinterpreted in place, and validate deeply — arbitrary bytes
		// reach this path (foreign files, fuzzing).
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("%w: read raw section: %v", ErrArtifactCorrupt, err)
		}
		data := alignedBytes(52 + len(rest))
		copy(data, header[:])
		copy(data[52:], rest)
		return decodeArtifactV3(data, true)
	}
	n := binary.BigEndian.Uint64(header[44:52])
	if n > maxArtifactPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrArtifactCorrupt, n)
	}
	// Stream the payload instead of make([]byte, n): the buffer grows only
	// as data actually arrives, so a corrupt length field in a small file
	// fails fast at EOF instead of attempting a huge allocation up front.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r, int64(n)); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrArtifactCorrupt, err)
	}
	if sum := sha256.Sum256(payload.Bytes()); !bytes.Equal(sum[:], header[12:44]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrArtifactCorrupt)
	}

	var wire artifactWire
	if err := gob.NewDecoder(&payload).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decode payload: %v", ErrArtifactCorrupt, err)
	}

	g, err := roadnet.Load(bytes.NewReader(wire.Graph))
	if err != nil {
		return nil, fmt.Errorf("pathrank: artifact graph: %w", err)
	}
	if err := checkModelShape(g.NumVertices(), wire.ModelConfig, len(wire.Params)); err != nil {
		return nil, err
	}
	model, err := New(g.NumVertices(), wire.ModelConfig)
	if err != nil {
		return nil, fmt.Errorf("pathrank: artifact model config: %w", err)
	}
	if err := nn.UnmarshalParams(wire.Params, model.params); err != nil {
		return nil, fmt.Errorf("pathrank: artifact weights: %w", err)
	}
	a := &Artifact{Graph: g, Model: model, Candidates: wire.Candidates, Lineage: wire.Lineage, Shard: wire.Shard}
	if len(wire.Prep) > 0 {
		prep, err := spath.LoadPrep(bytes.NewReader(wire.Prep), g)
		if err != nil {
			return nil, fmt.Errorf("%w: prep section: %v", ErrArtifactCorrupt, err)
		}
		a.Prep = prep
	}
	if len(wire.Embeddings) > 0 {
		emb, err := node2vec.LoadEmbeddings(bytes.NewReader(wire.Embeddings))
		if err != nil {
			return nil, fmt.Errorf("pathrank: artifact embeddings: %w", err)
		}
		a.Embeddings = emb
	}
	return a, nil
}

// checkModelShape rejects a decoded model configuration whose weight
// tensors could not possibly be backed by the params payload, BEFORE any
// allocation happens. gob encodes a float64 in at least one byte, so a
// genuine artifact always satisfies paramsLen >= parameter count; a
// corrupt or adversarial config (e.g. EmbeddingDim 1<<40 in a 100-byte
// file) fails here instead of attempting a giant allocation in New.
func checkModelShape(numVertices int, cfg Config, paramsLen int) error {
	const maxDim = 1 << 24 // keeps the int64 products below overflow
	if cfg.EmbeddingDim <= 0 || cfg.EmbeddingDim > maxDim ||
		cfg.Hidden <= 0 || cfg.Hidden > maxDim {
		return fmt.Errorf("%w: implausible model dims %dx%d", ErrArtifactCorrupt, cfg.EmbeddingDim, cfg.Hidden)
	}
	v, d, h := int64(numVertices), int64(cfg.EmbeddingDim), int64(cfg.Hidden)
	// A lower bound on the parameter count: the embedding table plus, for
	// recurrent bodies, one input and one recurrent weight matrix (real
	// bodies have 3-4 gates, so this undercounts — which is the safe
	// direction for a rejection threshold).
	min := v * d
	switch cfg.Body {
	case GRUBody, BiGRUBody, LSTMBody, AttnGRUBody:
		min += d*h + h*h
	}
	if min > int64(paramsLen) {
		return fmt.Errorf("%w: config needs >=%d weights but payload carries %d bytes",
			ErrArtifactCorrupt, min, paramsLen)
	}
	return nil
}

// SaveArtifactFile writes the artifact to the named file. The write is
// NOT atomic and not fsynced: a crash mid-write leaves a truncated file
// (rejected by the checksum on load), and a concurrent reader can observe
// it. Publishing into a path a live server watches or power-loss-sensitive
// deployments must use SaveArtifactFileAtomic.
func SaveArtifactFile(path string, a *Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pathrank: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := SaveArtifact(bw, a); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pathrank: flush %s: %w", path, err)
	}
	return f.Close()
}

// SaveArtifactFileAtomic writes the artifact to a temporary file in the
// destination directory and renames it into place, so concurrent readers —
// in particular the serve layer's artifact-file watcher — never observe a
// partially written bundle. The publish is also durable: the temp file is
// fsynced before the rename and the parent directory after it, so a power
// loss cannot leave the path pointing at a bundle whose bytes never
// reached stable storage (rename-before-data is the classic hole: the
// metadata journal commits the new name while the data pages are still
// dirty, and the "published" artifact is garbage after the crash).
func SaveArtifactFileAtomic(path string, a *Artifact) error {
	// Chaos hook: an injected save failure rejects the persist before the
	// temp file exists, like a disk that refuses the create.
	if err := fault.Check(fault.SiteArtifactSave); err != nil {
		return fmt.Errorf("pathrank: save %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("pathrank: %w", err)
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	if err := SaveArtifact(bw, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pathrank: flush %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pathrank: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pathrank: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pathrank: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		derr := d.Sync()
		d.Close()
		if derr != nil {
			return fmt.Errorf("pathrank: fsync %s: %w", dir, derr)
		}
	}
	return nil
}

// LoadArtifactFile reads an artifact from the named file.
func LoadArtifactFile(path string) (*Artifact, error) {
	if err := fault.Check(fault.SiteArtifactLoad); err != nil {
		return nil, fmt.Errorf("pathrank: load %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathrank: %w", err)
	}
	defer f.Close()
	return LoadArtifact(bufio.NewReader(f))
}
