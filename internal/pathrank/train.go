package pathrank

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pathrank/internal/dataset"
	"pathrank/internal/metrics"
	"pathrank/internal/nn"
	"pathrank/internal/spath"
)

// TrainConfig parameterizes the training loop.
type TrainConfig struct {
	Epochs   int
	LR       float64
	ClipNorm float64
	Seed     int64
	// LRDecay multiplies the learning rate after each epoch when in (0,1);
	// zero disables decay.
	LRDecay float64
	// Validation, when non-empty, is evaluated after each epoch; together
	// with Patience it enables early stopping on validation MAE.
	Validation []dataset.Query
	// Patience stops training after this many consecutive epochs without
	// validation-MAE improvement (0 disables early stopping).
	Patience int
	// Verbose emits one progress line per epoch via the Logf callback.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig returns the paper-style optimizer settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, LR: 0.003, ClipNorm: 5, Seed: 1}
}

// Train fits the model to the training queries with Adam, one candidate at
// a time (sequences have variable length). It returns the per-epoch mean
// training loss.
func (m *Model) Train(queries []dataset.Query, cfg TrainConfig) ([]float64, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("pathrank: epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("pathrank: learning rate must be positive, got %v", cfg.LR)
	}
	type sample struct {
		inst dataset.Instance
	}
	var samples []sample
	for _, q := range queries {
		for _, c := range q.Candidates {
			if len(c.Path.Vertices) == 0 {
				continue
			}
			samples = append(samples, sample{inst: c})
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("pathrank: no non-empty training candidates")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	losses := make([]float64, 0, cfg.Epochs)
	lambda := m.cfg.MultiTaskLambda

	bestValMAE := math.Inf(1)
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		var epochLoss float64
		for _, s := range samples {
			st := m.forward(s.inst.Path, true)
			loss, dScore := nn.MSELoss(st.headOut[0], s.inst.Label)
			var dLen, dTime float64
			if m.auxLen != nil {
				lLen, gLen := nn.MSELoss(st.auxLenOut[0], s.inst.LengthRatio)
				lTime, gTime := nn.MSELoss(st.auxTimeOut[0], s.inst.TimeRatio)
				loss += lambda * (lLen + lTime)
				dLen = lambda * gLen
				dTime = lambda * gTime
			}
			m.backward(st, dScore, dLen, dTime)
			st.release()
			if cfg.ClipNorm > 0 {
				nn.ClipGrad(m.params, cfg.ClipNorm)
			}
			opt.Step(m.params)
			epochLoss += loss
		}
		epochLoss /= float64(len(samples))
		losses = append(losses, epochLoss)

		var valNote string
		if len(cfg.Validation) > 0 {
			rep := m.Evaluate(cfg.Validation)
			valNote = fmt.Sprintf(" val MAE %.5f", rep.MAE)
			if rep.MAE < bestValMAE-1e-9 {
				bestValMAE = rep.MAE
				sinceBest = 0
			} else {
				sinceBest++
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d loss %.5f%s", epoch+1, cfg.Epochs, epochLoss, valNote)
		}
		if cfg.Patience > 0 && len(cfg.Validation) > 0 && sinceBest >= cfg.Patience {
			if cfg.Logf != nil {
				cfg.Logf("early stop after epoch %d (no val improvement for %d epochs)", epoch+1, sinceBest)
			}
			break
		}
		if cfg.LRDecay > 0 && cfg.LRDecay < 1 {
			opt.LR *= cfg.LRDecay
		}
	}
	return losses, nil
}

// DefaultFineTuneConfig returns the incremental-training settings: a short
// warm-start schedule with a reduced learning rate, so a fine-tune nudges
// the model toward the new observation window without forgetting the
// offline training run it grew from.
func DefaultFineTuneConfig() TrainConfig {
	return TrainConfig{Epochs: 3, LR: 0.001, ClipNorm: 5, Seed: 1}
}

// FineTune continues training from the model's current weights on a new
// batch of queries — the incremental entry point used by the streaming
// retrainer. Zero-valued Epochs/LR/ClipNorm fall back to
// DefaultFineTuneConfig; the optimizer state is fresh (Adam moments are not
// carried across fine-tunes), and with a fixed cfg.Seed the result is a
// deterministic function of (current weights, queries, cfg). It returns the
// per-epoch mean training loss.
func (m *Model) FineTune(queries []dataset.Query, cfg TrainConfig) ([]float64, error) {
	def := DefaultFineTuneConfig()
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.ClipNorm <= 0 {
		cfg.ClipNorm = def.ClipNorm
	}
	return m.Train(queries, cfg)
}

// Evaluate scores every candidate of every query and aggregates the paper's
// four metrics (MAE, MARE, Kendall τ, Spearman ρ). Queries are scored in
// parallel across a bounded worker pool (see EvalWorkers); every worker
// writes disjoint indices, so the report is bitwise identical to a serial
// evaluation.
func (m *Model) Evaluate(queries []dataset.Query) metrics.Report {
	preds := make([][]float64, len(queries))
	targets := make([][]float64, len(queries))
	parallelFor(len(queries), func(qi int) {
		q := queries[qi]
		preds[qi] = make([]float64, len(q.Candidates))
		targets[qi] = make([]float64, len(q.Candidates))
		for ci, c := range q.Candidates {
			preds[qi][ci] = m.Score(c.Path)
			targets[qi][ci] = c.Label
		}
	})
	return metrics.Evaluate(preds, targets)
}

// Ranked pairs a candidate path with its model score.
type Ranked struct {
	Path  spath.Path
	Score float64
}

// ScoreBatch scores the candidates and returns the raw scores in input
// order. It dispatches to the fused batched path (ScoreBatchFused) unless
// fused scoring is disabled via PATHRANK_FUSED_SCORING=0 or the batch is
// too small to pack; both paths produce bit-identical scores, so the
// dispatch is a pure performance decision.
func (m *Model) ScoreBatch(cands []spath.Path) []float64 {
	if fusedScoringEnabled && len(cands) > 1 {
		return m.ScoreBatchFused(cands)
	}
	return m.ScoreBatchPerPath(cands)
}

// ScoreBatchPerPath scores each candidate independently (in parallel) and
// returns the raw scores in input order — the reference implementation the
// fused path is tested against. Each worker writes a disjoint index, so the
// result is bitwise identical for any worker count.
func (m *Model) ScoreBatchPerPath(cands []spath.Path) []float64 {
	out := make([]float64, len(cands))
	parallelFor(len(cands), func(i int) {
		out[i] = m.Score(cands[i])
	})
	return out
}

// RankScored pairs candidates with externally computed scores and sorts
// them in descending score order. The stable sort keeps the result
// deterministic under ties. It is the ordering half of Rank, shared with
// callers that score through a batching layer. The slices must pair up:
// a mismatch means the scoring layer dropped or duplicated entries, and
// silently zipping them would rank candidates under the wrong scores.
func RankScored(cands []spath.Path, scores []float64) []Ranked {
	if len(scores) != len(cands) {
		panic(fmt.Sprintf("pathrank: RankScored got %d scores for %d candidates — the scoring layer returned a mismatched batch",
			len(scores), len(cands)))
	}
	out := make([]Ranked, len(cands))
	for i := range cands {
		out[i] = Ranked{Path: cands[i], Score: scores[i]}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// Rank scores the candidates in parallel and returns them in descending
// score order.
func (m *Model) Rank(cands []spath.Path) []Ranked {
	return RankScored(cands, m.ScoreBatch(cands))
}
