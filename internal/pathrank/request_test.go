package pathrank

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// trainedRanker builds a small trained ranker shared by the request tests.
func trainedRanker(t testing.TB) (*testWorld, *Ranker) {
	t.Helper()
	w := newTestWorld(t, 4, 2)
	m, err := New(w.g.NumVertices(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(w.queries, TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return w, NewRanker(w.g, m)
}

// TestRankDefaultsMatchQuery is the compatibility property: over random OD
// pairs and both configured strategies, Rank(ctx, RankRequest{Src, Dst})
// with default options returns rankings bit-identical to Ranker.Query —
// scores, order, and paths.
func TestRankDefaultsMatchQuery(t *testing.T) {
	_, r := trainedRanker(t)
	configs := []dataset.Config{
		{}, // empty: both paths must fall back to the same default
		{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8},
		{Strategy: dataset.TkDI, K: 3},
		{Strategy: dataset.DTkDI, K: 5, Threshold: 0.6, MaxProbe: 30},
	}
	rng := rand.New(rand.NewSource(17))
	n := r.Graph.NumVertices()
	for _, cfg := range configs {
		r.Candidates = cfg
		for i := 0; i < 10; i++ {
			src := roadnet.VertexID(rng.Intn(n))
			dst := roadnet.VertexID(rng.Intn(n))
			want, errWant := r.Query(src, dst)
			resp, errGot := r.Rank(context.Background(), RankRequest{Src: src, Dst: dst})
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("cfg %+v %d->%d: err mismatch: %v vs %v", cfg, src, dst, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if len(want) != len(resp.Paths) {
				t.Fatalf("cfg %+v %d->%d: %d vs %d ranked", cfg, src, dst, len(want), len(resp.Paths))
			}
			for j := range want {
				if want[j].Score != resp.Paths[j].Score || !want[j].Path.Equal(resp.Paths[j].Path) {
					t.Fatalf("cfg %+v %d->%d: rank %d differs", cfg, src, dst, j)
				}
			}
			if resp.Stats.Candidates != len(want) {
				t.Fatalf("stats candidates %d != %d", resp.Stats.Candidates, len(want))
			}
		}
	}
}

// TestRankOverrides checks that each per-request override actually changes
// candidate generation the way it claims.
func TestRankOverrides(t *testing.T) {
	w, r := trainedRanker(t)
	r.Candidates = dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8}
	q := w.queries[0]
	ctx := context.Background()

	// K override bounds the candidate count.
	resp, err := r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Paths) > 2 || resp.Stats.K != 2 {
		t.Fatalf("k=2 override: %d paths, stats.K=%d", len(resp.Paths), resp.Stats.K)
	}

	// Strategy override switches the generator: TkDI ignores diversity,
	// so it must match a plain TopK run.
	resp, err = r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Strategy: StrategyTkDI})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Strategy != dataset.TkDI {
		t.Fatalf("strategy override not resolved: %v", resp.Stats.Strategy)
	}
	want, err := spath.TopK(w.g, q.Source, q.Destination, 4, spath.ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Paths) != len(want) {
		t.Fatalf("TkDI override: %d paths, want %d", len(resp.Paths), len(want))
	}

	// Weight override reroutes by travel time: the top-ranked candidate
	// set must equal a ByTime TopK's path set.
	respTime, err := r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Strategy: StrategyTkDI, Weight: WeightTime})
	if err != nil {
		t.Fatal(err)
	}
	wantTime, err := spath.TopK(w.g, q.Source, q.Destination, 4, spath.ByTime)
	if err != nil {
		t.Fatal(err)
	}
	if !samePathSet(respTime.Paths, wantTime) {
		t.Fatal("weight=time override did not produce the ByTime candidate set")
	}
	if respTime.Stats.Weight != WeightTime {
		t.Fatalf("stats weight = %v, want time", respTime.Stats.Weight)
	}

	// Threshold override loosens/tightens diversity; resolved into stats.
	resp, err = r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Threshold != 0.3 {
		t.Fatalf("threshold override not resolved: %g", resp.Stats.Threshold)
	}
}

func samePathSet(got []Ranked, want []spath.Path) bool {
	if len(got) != len(want) {
		return false
	}
	for _, g := range got {
		found := false
		for _, w := range want {
			if g.Path.Equal(w) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestRankEngineChoices checks the per-request engine selection rules on a
// ranker holding a prepared CH engine.
func TestRankEngineChoices(t *testing.T) {
	w, r := trainedRanker(t)
	r.Candidates = dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8}
	r.Engine = spath.NewEngine(spath.EngineCH, w.g, spath.ByLength, spath.EngineConfig{})
	q := w.queries[0]
	ctx := context.Background()

	onEngine, err := r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination})
	if err != nil {
		t.Fatal(err)
	}
	if onEngine.Stats.Engine != spath.EngineCH {
		t.Fatalf("auto engine = %v, want ch", onEngine.Stats.Engine)
	}

	// EngineNone bypasses the prepared structure; distances are exact on
	// both, so rankings must be identical.
	plain, err := r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Engine: EngineNone})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Engine != spath.EngineDijkstra {
		t.Fatalf("engine=none ran on %v", plain.Stats.Engine)
	}
	if len(plain.Paths) != len(onEngine.Paths) {
		t.Fatalf("engine none vs ch: %d vs %d paths", len(plain.Paths), len(onEngine.Paths))
	}
	for i := range plain.Paths {
		if !plain.Paths[i].Path.Equal(onEngine.Paths[i].Path) || plain.Paths[i].Score != onEngine.Paths[i].Score {
			t.Fatalf("engine none vs ch: rank %d differs", i)
		}
	}

	// Requesting a prepared kind the ranker does not hold is invalid.
	_, err = r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Engine: EngineALT})
	if ErrorCodeOf(err) != api.CodeInvalid {
		t.Fatalf("alt on ch ranker: code %q, want invalid", ErrorCodeOf(err))
	}

	// An explicit prepared engine with the time metric is contradictory.
	_, err = r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Engine: EngineCH, Weight: WeightTime})
	if ErrorCodeOf(err) != api.CodeInvalid {
		t.Fatalf("ch+time: code %q, want invalid", ErrorCodeOf(err))
	}

	// Auto engine with the time metric silently bypasses the prepared
	// structure (it serves the length metric).
	resp, err := r.Rank(ctx, RankRequest{Src: q.Source, Dst: q.Destination, Weight: WeightTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Engine != spath.EngineDijkstra {
		t.Fatalf("time-metric query ran on %v, want dijkstra", resp.Stats.Engine)
	}
}

// TestRankErrorCodes checks the typed error classification.
func TestRankErrorCodes(t *testing.T) {
	_, r := trainedRanker(t)
	ctx := context.Background()
	n := roadnet.VertexID(r.Graph.NumVertices())

	cases := []struct {
		name string
		req  RankRequest
		code string
	}{
		{"src out of range", RankRequest{Src: n, Dst: 0}, api.CodeInvalid},
		{"negative dst", RankRequest{Src: 0, Dst: -1}, api.CodeInvalid},
		{"negative k", RankRequest{Src: 0, Dst: 1, K: -1}, api.CodeInvalid},
		{"threshold > 1", RankRequest{Src: 0, Dst: 1, Threshold: 1.5}, api.CodeInvalid},
	}
	for _, tc := range cases {
		_, err := r.Rank(ctx, tc.req)
		if err == nil || ErrorCodeOf(err) != tc.code {
			t.Errorf("%s: err=%v code=%q, want %q", tc.name, err, ErrorCodeOf(err), tc.code)
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Errorf("%s: error is not a *RankError", tc.name)
		}
	}

	// Unroutable: two islands.
	b := roadnet.NewBuilder(4, 4)
	v0 := b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57})
	v2 := b.AddVertex(geo.Point{Lon: 10.02, Lat: 57})
	v3 := b.AddVertex(geo.Point{Lon: 10.03, Lat: 57})
	b.AddBidirectional(v0, v1, roadnet.Residential)
	b.AddBidirectional(v2, v3, roadnet.Residential)
	g := b.Build()
	m, err := New(g.NumVertices(), Config{EmbeddingDim: 4, Hidden: 4, Variant: PRA2, Body: GRUBody, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	island := NewRanker(g, m)
	_, err = island.Rank(ctx, RankRequest{Src: v0, Dst: v2})
	if ErrorCodeOf(err) != api.CodeUnroutable {
		t.Fatalf("disconnected pair: code %q, want unroutable", ErrorCodeOf(err))
	}

	// Canceled and deadline-expired contexts classify distinctly.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = r.Rank(canceled, RankRequest{Src: 0, Dst: 1})
	if ErrorCodeOf(err) != api.CodeCanceled {
		t.Fatalf("canceled ctx: code %q, want canceled", ErrorCodeOf(err))
	}
	expired, cancel2 := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel2()
	_, err = r.Rank(expired, RankRequest{Src: 0, Dst: 1})
	if ErrorCodeOf(err) != api.CodeDeadline {
		t.Fatalf("expired ctx: code %q, want deadline", ErrorCodeOf(err))
	}
}
