package pathrank

import (
	"math/rand"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

func detWorld(t *testing.T) (*roadnet.Graph, []dataset.Query) {
	t.Helper()
	w := newTestWorld(t, 8, 3)
	return w.g, w.queries
}

// TestEvaluateParallelBitwiseDeterministic asserts the data-parallel
// Evaluate path produces bitwise-identical metrics to the serial path.
func TestEvaluateParallelBitwiseDeterministic(t *testing.T) {
	g, queries := detWorld(t)
	cfg := Config{EmbeddingDim: 12, Hidden: 8, Variant: PRA2, Body: GRUBody, Seed: 3}
	m, err := New(g.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Random weights are fine: determinism is about scheduling, not fit.
	rng := rand.New(rand.NewSource(9))
	for _, p := range m.params {
		p.InitUniform(rng, 0.3)
	}

	defer func() { EvalWorkers = 0 }()
	EvalWorkers = 1
	serial := m.Evaluate(queries)
	for _, workers := range []int{2, 4, 8} {
		EvalWorkers = workers
		got := m.Evaluate(queries)
		if got != serial {
			t.Fatalf("Evaluate with %d workers = %+v, serial = %+v", workers, got, serial)
		}
	}
}

// TestRankParallelBitwiseDeterministic asserts parallel Rank ordering and
// scores match the serial path exactly.
func TestRankParallelBitwiseDeterministic(t *testing.T) {
	g, queries := detWorld(t)
	cfg := Config{EmbeddingDim: 12, Hidden: 8, Variant: PRA2, Body: GRUBody, Seed: 3}
	m, err := New(g.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for _, p := range m.params {
		p.InitUniform(rng, 0.3)
	}
	var cands []spath.Path
	for _, q := range queries {
		for _, c := range q.Candidates {
			cands = append(cands, c.Path)
		}
	}

	defer func() { EvalWorkers = 0 }()
	EvalWorkers = 1
	serial := m.Rank(cands)
	EvalWorkers = 4
	parallel := m.Rank(cands)
	if len(serial) != len(parallel) {
		t.Fatalf("rank lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Score != parallel[i].Score || !serial[i].Path.Equal(parallel[i].Path) {
			t.Fatalf("rank entry %d differs between serial and parallel", i)
		}
	}
}
