// Package shardserve wraps a serving Server whose artifact is one shard
// of a partitioned bundle (internal/partition) with the shard-internal
// sub-query endpoints the fan-out router needs:
//
//	GET  /shard/info      — identity, generation, boundary size (health)
//	POST /shard/boundary  — exact distances src→boundary or boundary→dst
//	POST /shard/corridor  — corridor subgraph extraction under a bound
//
// Everything else — /v2/rank for co-resident queries, hot swap, canary
// gating, /healthz, /metrics — is the wrapped serve.Server's handler,
// unchanged: a shard worker is an ordinary PathRank server whose graph
// happens to contain only its shard's induced edges, plus three sidecar
// endpoints computed on the same pinned snapshot.
package shardserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/serve"
	"pathrank/internal/spath"
)

// maxShardBody bounds shard sub-query request bodies. Corridor seed lists
// scale with the boundary-set size, not with k, so the bound is the
// ingest-sized one rather than the rank-sized one.
const maxShardBody = 8 << 20

// Server mounts the shard sub-query endpoints next to a serve.Server's
// own handler. The wrapped server must be serving a shard artifact (one
// carrying pathrank.ShardInfo); New rejects anything else.
type Server struct {
	srv *serve.Server
}

// New wraps srv as a shard worker.
func New(srv *serve.Server) (*Server, error) {
	sn := srv.PinSnapshot()
	defer sn.Release()
	if sn.Artifact().Shard == nil {
		return nil, errors.New("shardserve: artifact carries no shard metadata (not built by -partition)")
	}
	return &Server{srv: srv}, nil
}

// Serve returns the wrapped serve.Server (for Reload, Close, metrics).
func (s *Server) Serve() *serve.Server { return s.srv }

// Handler returns the combined HTTP API: the wrapped server's routes plus
// the shard sub-query endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.srv.Handler())
	mux.HandleFunc("GET /shard/info", s.handleInfo)
	mux.HandleFunc("POST /shard/boundary", s.handleBoundary)
	mux.HandleFunc("POST /shard/corridor", s.handleCorridor)
	return mux
}

// Run listens on addr and serves the combined handler until ctx is
// canceled, mirroring serve.Server.Run (graceful drain, artifact watch).
func (s *Server) Run(ctx context.Context, addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shardserve: listen %s: %w", addr, err)
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go s.srv.WatchArtifact(watchCtx)
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr := hs.Shutdown(shutCtx)
		<-errc
		s.srv.Close()
		return shutErr
	case err := <-errc:
		s.srv.Close()
		return err
	}
}

// shardView pins the serving snapshot and extracts the shard metadata;
// the caller must call release() when done with the graph.
func (s *Server) shardView() (serve.Snapshot, *pathrank.Artifact, *pathrank.ShardInfo, *api.Error) {
	sn := s.srv.PinSnapshot()
	art := sn.Artifact()
	if art.Shard == nil {
		sn.Release()
		return serve.Snapshot{}, nil, nil, &api.Error{
			Status: http.StatusInternalServerError, Code: api.CodeInternal,
			Message: "serving artifact carries no shard metadata",
		}
	}
	return sn, art, art.Shard, nil
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	sn, art, sh, apiErr := s.shardView()
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	defer sn.Release()
	writeJSON(w, http.StatusOK, api.ShardInfoResponse{
		Shard:            sh.Index,
		Parts:            sh.Parts,
		Fingerprint:      sn.Fingerprint(),
		Vertices:         art.Graph.NumVertices(),
		Edges:            art.Graph.NumEdges(),
		BoundaryVertices: len(sh.Boundary),
	})
}

// parseWeight maps the wire weight name onto the edge metric; "length"
// and "" are the default.
func parseWeight(name string) (spath.Weight, *api.Error) {
	wk, err := pathrank.ParseWeightKind(name)
	if err != nil {
		return nil, apiErrorFrom(err)
	}
	if wk == pathrank.WeightTime {
		return spath.ByTime, nil
	}
	return spath.ByLength, nil
}

func (s *Server) handleBoundary(w http.ResponseWriter, r *http.Request) {
	var req api.BoundaryRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	weight, apiErr := parseWeight(req.Weight)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	sn, art, sh, apiErr := s.shardView()
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	defer sn.Release()
	g := art.Graph
	if req.V < 0 || req.V >= int64(g.NumVertices()) {
		writeErr(w, invalidErrf("v must be in [0,%d)", g.NumVertices()))
		return
	}
	v := roadnet.VertexID(req.V)
	out := make([]float64, len(sh.Boundary))
	ws := spath.GetWorkspace(g)
	switch req.Dir {
	case "fwd":
		ws.BoundedDistances(g, v, sh.Boundary, math.Inf(1), weight, out)
	case "rev":
		ws.BoundedDistancesRev(g, v, sh.Boundary, math.Inf(1), weight, out)
	default:
		ws.Release()
		writeErr(w, invalidErrf("dir must be fwd or rev, got %q", req.Dir))
		return
	}
	ws.Release()
	for i, d := range out {
		if math.IsInf(d, 1) {
			out[i] = -1
		}
	}
	writeJSON(w, http.StatusOK, api.BoundaryResponse{
		Shard: sh.Index, Fingerprint: sn.Fingerprint(), Dist: out,
	})
}

// wireSeeds converts wire seeds to search seeds, dropping unreachable
// entries (Dist < 0, the wire encoding of +Inf) and rejecting IDs outside
// the vertex table.
func wireSeeds(in []api.ShardSeed, n int) ([]spath.Seed, *api.Error) {
	seeds := make([]spath.Seed, 0, len(in))
	for _, s := range in {
		if s.Dist < 0 {
			continue
		}
		if s.V < 0 || s.V >= int64(n) {
			return nil, invalidErrf("seed vertex %d out of range [0,%d)", s.V, n)
		}
		seeds = append(seeds, spath.Seed{V: roadnet.VertexID(s.V), Dist: s.Dist})
	}
	return seeds, nil
}

func (s *Server) handleCorridor(w http.ResponseWriter, r *http.Request) {
	var req api.CorridorRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	weight, apiErr := parseWeight(req.Weight)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	if req.Bound < 0 || math.IsInf(req.Bound, 0) || math.IsNaN(req.Bound) {
		writeErr(w, invalidErrf("bound must be finite and non-negative, got %g", req.Bound))
		return
	}
	sn, art, sh, apiErr := s.shardView()
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	defer sn.Release()
	g := art.Graph
	n := g.NumVertices()
	seeds, apiErr := wireSeeds(req.Seeds, n)
	if apiErr == nil {
		var rseeds []spath.Seed
		rseeds, apiErr = wireSeeds(req.RSeeds, n)
		if apiErr == nil {
			writeJSON(w, http.StatusOK, corridor(g, sh, sn.Fingerprint(), seeds, rseeds, req.Bound, weight))
			return
		}
	}
	writeErr(w, apiErr)
}

// corridor runs the two seeded sweeps and extracts the corridor subgraph:
// every vertex v with fwd(v)+rev(v) <= bound (these are exact full-graph
// source/destination distances when the seeds carry exact boundary
// distances — see internal/partition's separator property) and every
// induced edge with both endpoints inside. The sweeps run on the shard's
// induced subgraph, so every vertex they reach beyond the seeds is owned
// by this shard.
func corridor(g *roadnet.Graph, sh *pathrank.ShardInfo, fp string, seeds, rseeds []spath.Seed, bound float64, weight spath.Weight) api.CorridorResponse {
	n := g.NumVertices()
	fwd := make([]float64, n)
	rev := make([]float64, n)
	ws := spath.GetWorkspace(g)
	ws.SeededDistances(g, seeds, bound, weight, fwd)
	ws.SeededDistancesRev(g, rseeds, bound, weight, rev)
	ws.Release()

	resp := api.CorridorResponse{Shard: sh.Index, Fingerprint: fp}
	in := make([]bool, n)
	for v := 0; v < n; v++ {
		if fwd[v]+rev[v] <= bound {
			in[v] = true
			vert := g.Vertex(roadnet.VertexID(v))
			resp.Vertices = append(resp.Vertices, api.CorridorVertex{
				ID: int64(v), Lon: vert.Point.Lon, Lat: vert.Point.Lat,
			})
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		if in[e.From] && in[e.To] {
			resp.Edges = append(resp.Edges, api.CorridorEdge{
				ID:   int64(sh.EdgeGlobal[e.ID]),
				From: int64(e.From), To: int64(e.To),
				LengthM: e.Length, TimeS: e.Time, Category: uint8(e.Category),
			})
		}
	}
	return resp
}

// The helpers below mirror internal/serve's unexported v2 error plumbing;
// the shard sub-query surface speaks the same envelope.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, e *api.Error) {
	if e.Status == 0 {
		e.Status = api.HTTPStatus(e.Code)
	}
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}

func invalidErrf(format string, args ...any) *api.Error {
	return &api.Error{
		Status:  http.StatusBadRequest,
		Code:    api.CodeInvalid,
		Message: fmt.Sprintf(format, args...),
	}
}

func apiErrorFrom(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	code := pathrank.ErrorCodeOf(err)
	return &api.Error{Status: api.HTTPStatus(code), Code: code, Message: err.Error()}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) *api.Error {
	r.Body = http.MaxBytesReader(w, r.Body, maxShardBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &api.Error{
				Status:  http.StatusRequestEntityTooLarge,
				Code:    api.CodeInvalid,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}
		}
		return invalidErrf("bad request body: %v", err)
	}
	return nil
}
