package roadnet

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var vbuf, ebuf bytes.Buffer
	if err := g.ExportCSV(&vbuf, &ebuf); err != nil {
		t.Fatalf("ExportCSV: %v", err)
	}
	g2, err := ImportCSV(&vbuf, &ebuf)
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size %d/%d, want %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
		if a.From != b.From || a.To != b.To || a.Category != b.Category {
			t.Fatalf("edge %d changed: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Length-b.Length) > 0.01 {
			t.Fatalf("edge %d length %.3f vs %.3f", i, a.Length, b.Length)
		}
	}
	for i := 0; i < g.NumVertices(); i++ {
		a, b := g.Vertex(VertexID(i)), g2.Vertex(VertexID(i))
		if a.Point != b.Point {
			t.Fatalf("vertex %d moved: %v vs %v", i, a.Point, b.Point)
		}
	}
}

func TestExportCSVNilWriters(t *testing.T) {
	g := tinyGraph(t)
	if err := g.ExportCSV(nil, nil); err != nil {
		t.Fatalf("nil writers should be a no-op, got %v", err)
	}
	var ebuf bytes.Buffer
	if err := g.ExportCSV(nil, &ebuf); err != nil {
		t.Fatalf("edges-only export: %v", err)
	}
	if !strings.Contains(ebuf.String(), "length_m") {
		t.Fatal("edges CSV missing header")
	}
}

func TestParseCategory(t *testing.T) {
	for _, c := range []Category{Motorway, Primary, Secondary, Residential} {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("autobahn"); err == nil {
		t.Fatal("unknown category should error")
	}
}

func TestImportCSVRejectsBadInput(t *testing.T) {
	goodV := "id,lon,lat\n0,10,57\n1,10.01,57\n"
	goodE := "id,from,to,length_m,time_s,category\n0,0,1,100,9,primary\n1,1,0,100,9,primary\n"
	cases := []struct {
		name string
		v, e string
	}{
		{"non-dense vertex ids", "id,lon,lat\n5,10,57\n", goodE},
		{"bad lon", "id,lon,lat\n0,abc,57\n1,10,57\n", goodE},
		{"edge out of range", goodV, "id,from,to,length_m,time_s,category\n0,0,9,100,9,primary\n"},
		{"negative length", goodV, "id,from,to,length_m,time_s,category\n0,0,1,-5,9,primary\n"},
		{"bad category", goodV, "id,from,to,length_m,time_s,category\n0,0,1,100,9,dirt\n"},
		{"short row", goodV, "id,from,to,length_m,time_s,category\n0,0,1\n"},
	}
	for _, tc := range cases {
		if _, err := ImportCSV(strings.NewReader(tc.v), strings.NewReader(tc.e)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestImportCSVValidGraphQueryable(t *testing.T) {
	v := "id,lon,lat\n0,10,57\n1,10.01,57\n2,10.02,57\n"
	e := "id,from,to,length_m,time_s,category\n" +
		"0,0,1,700,31.5,secondary\n1,1,0,700,31.5,secondary\n" +
		"2,1,2,700,31.5,secondary\n3,2,1,700,31.5,secondary\n"
	g, err := ImportCSV(strings.NewReader(v), strings.NewReader(e))
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Fatalf("imported %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if _, ok := g.FindEdge(0, 1); !ok {
		t.Fatal("edge 0->1 missing after import")
	}
}
