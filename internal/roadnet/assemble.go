package roadnet

// This file provides the flat-array views of a Graph used by the sharded
// serving tier: NewGraphFromData builds a graph from complete vertex and
// edge tables (partition extraction, router corridor assembly — both need
// explicit Edge.Time, which Builder derives from the category), and
// RawData/AssembleGraph expose and rewrap the internal CSR arrays so an
// artifact can persist them verbatim and reconstruct the graph from a
// memory-mapped file without deserializing.

// GraphData is the complete flat representation of a Graph: the vertex
// and edge tables plus the CSR adjacency arrays. The slices alias the
// graph's internal storage and must not be modified.
type GraphData struct {
	Vertices []Vertex
	Edges    []Edge
	OutStart []int32
	OutEdges []EdgeID
	OutTo    []VertexID
	InStart  []int32
	InEdges  []EdgeID
	InFrom   []VertexID
}

// NewGraphFromData builds a Graph from complete vertex and edge tables,
// constructing CSR adjacency exactly like Builder.Build. Unlike the
// Builder methods, the caller supplies finished Edge structs — explicit
// lengths, times, and IDs — so a subgraph extracted from another graph
// keeps its original metrics bit-for-bit. Edge IDs must be dense in input
// order and vertex IDs dense ascending (Validate's invariants); the
// tables are retained, not copied.
func NewGraphFromData(vertices []Vertex, edges []Edge) *Graph {
	b := &Builder{vertices: vertices, edges: edges}
	return b.Build()
}

// RawData returns the graph's flat arrays without copying.
func (g *Graph) RawData() GraphData {
	return GraphData{
		Vertices: g.vertices,
		Edges:    g.edges,
		OutStart: g.outStart,
		OutEdges: g.outEdges,
		OutTo:    g.outTo,
		InStart:  g.inStart,
		InEdges:  g.inEdges,
		InFrom:   g.inFrom,
	}
}

// AssembleGraph wraps pre-built arrays as a Graph without copying,
// rebuilding, or validating. It is the zero-deserialization load path:
// the arrays may alias a memory-mapped artifact, in which case the graph
// is read-only and valid only while the mapping is. The caller is
// responsible for the arrays satisfying RawData's layout (the artifact
// loader trusts its own writer; foreign data must go through Validate).
func AssembleGraph(d GraphData) *Graph {
	return &Graph{
		vertices: d.Vertices,
		edges:    d.Edges,
		outStart: d.OutStart,
		outEdges: d.OutEdges,
		outTo:    d.OutTo,
		inStart:  d.InStart,
		inEdges:  d.InEdges,
		inFrom:   d.InFrom,
	}
}
