package roadnet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pathrank/internal/geo"
)

// tinyGraph builds a 4-vertex diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, both ways.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 8)
	p := []geo.Point{
		{Lon: 10.00, Lat: 57.00},
		{Lon: 10.01, Lat: 57.01},
		{Lon: 10.01, Lat: 56.99},
		{Lon: 10.02, Lat: 57.00},
	}
	for _, pt := range p {
		b.AddVertex(pt)
	}
	b.AddBidirectional(0, 1, Primary)
	b.AddBidirectional(1, 3, Primary)
	b.AddBidirectional(0, 2, Residential)
	b.AddBidirectional(2, 3, Residential)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("tiny graph invalid: %v", err)
	}
	return g
}

func TestBuilderCounts(t *testing.T) {
	g := tinyGraph(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", g.NumEdges())
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g := tinyGraph(t)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for _, eid := range g.OutEdges(v) {
			if g.Edge(eid).From != v {
				t.Errorf("edge %d listed as out-edge of %d but From=%d", eid, v, g.Edge(eid).From)
			}
		}
		for _, eid := range g.InEdges(v) {
			if g.Edge(eid).To != v {
				t.Errorf("edge %d listed as in-edge of %d but To=%d", eid, v, g.Edge(eid).To)
			}
		}
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 2 {
		t.Errorf("vertex 0 degrees out=%d in=%d, want 2/2", g.OutDegree(0), g.InDegree(0))
	}
}

func TestFindEdge(t *testing.T) {
	g := tinyGraph(t)
	if _, ok := g.FindEdge(0, 1); !ok {
		t.Error("expected edge 0->1")
	}
	if _, ok := g.FindEdge(0, 3); ok {
		t.Error("unexpected edge 0->3")
	}
}

func TestEdgeTimeConsistentWithCategorySpeed(t *testing.T) {
	g := tinyGraph(t)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		wantTime := e.Length / (e.Category.SpeedKmH() / 3.6)
		if diff := e.Time - wantTime; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("edge %d time %.6f, want %.6f", i, e.Time, wantTime)
		}
	}
}

func TestCategorySpeedOrdering(t *testing.T) {
	if !(Motorway.SpeedKmH() > Primary.SpeedKmH() &&
		Primary.SpeedKmH() > Secondary.SpeedKmH() &&
		Secondary.SpeedKmH() > Residential.SpeedKmH()) {
		t.Fatal("category speeds should strictly decrease from Motorway to Residential")
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		Motorway: "motorway", Primary: "primary",
		Secondary: "secondary", Residential: "residential",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	b.AddVertex(geo.Point{Lon: 10.01, Lat: 57})
	b.AddEdge(0, 1, Primary)
	g := b.Build()
	g.edges[0].Length = -5
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject negative edge length")
	}
	g.edges[0].Length = 100
	g.edges[0].Time = 0
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject zero travel time")
	}
}

func TestGenerateDefaultIsValidAndConnected(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 15 // keep the unit test fast
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumVertices() < cfg.Rows*cfg.Cols {
		t.Fatalf("expected at least %d vertices, got %d", cfg.Rows*cfg.Cols, g.NumVertices())
	}
	seen := g.StronglyConnectedFrom(0)
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d unreachable from 0", v)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []GenConfig{
		{Rows: 1, Cols: 5, SpacingM: 100},
		{Rows: 5, Cols: 5, SpacingM: 0},
		{Rows: 5, Cols: 5, SpacingM: 100, JitterFrac: 0.9},
		{Rows: 5, Cols: 5, SpacingM: 100, RemoveFrac: 0.9},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d/%d vs %d/%d vertices/edges",
			g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs between runs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g1, _ := Generate(cfg)
	cfg.Seed = 99
	g2, _ := Generate(cfg)
	same := g1.NumEdges() == g2.NumEdges()
	if same {
		for i := 0; i < g1.NumEdges(); i++ {
			if g1.Edge(EdgeID(i)).Length != g2.Edge(EdgeID(i)).Length {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateHasCategoryMix(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 15, 15
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[Category]int)
	for i := 0; i < g.NumEdges(); i++ {
		counts[g.Edge(EdgeID(i)).Category]++
	}
	for _, c := range []Category{Motorway, Primary, Secondary, Residential} {
		if counts[c] == 0 {
			t.Errorf("generated network has no %s edges", c)
		}
	}
	if counts[Residential] < counts[Motorway] {
		t.Error("residential edges should dominate motorway edges")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed graph size")
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Fatalf("edge %d changed in round trip", i)
		}
	}
	for i := 0; i < g.NumVertices(); i++ {
		if g.Vertex(VertexID(i)) != g2.Vertex(VertexID(i)) {
			t.Fatalf("vertex %d changed in round trip", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := tinyGraph(t)
	path := t.TempDir() + "/net.gob"
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip changed edge count")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("Load should fail on garbage input")
	}
}

func TestNearestVertex(t *testing.T) {
	g := tinyGraph(t)
	for v := 0; v < g.NumVertices(); v++ {
		got := g.NearestVertex(g.Vertex(VertexID(v)).Point)
		if got != VertexID(v) {
			t.Errorf("NearestVertex of vertex %d's own point = %d", v, got)
		}
	}
}

func TestBBoxCoversAllVertices(t *testing.T) {
	g := tinyGraph(t)
	bb := g.BBox()
	for v := 0; v < g.NumVertices(); v++ {
		if !bb.Contains(g.Vertex(VertexID(v)).Point) {
			t.Errorf("bbox misses vertex %d", v)
		}
	}
}

// Property: for any random graph built through the Builder, CSR adjacency
// partitions the edge set exactly.
func TestBuilderAdjacencyPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		b := NewBuilder(n, n*3)
		for i := 0; i < n; i++ {
			b.AddVertex(geo.Point{Lon: 10 + rng.Float64()*0.1, Lat: 57 + rng.Float64()*0.1})
		}
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			b.AddEdge(u, v, Category(rng.Intn(NumCategories)))
		}
		g := b.Build()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
