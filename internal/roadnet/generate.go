package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"pathrank/internal/geo"
)

// GenConfig parameterizes the synthetic road-network generator.
//
// The generator substitutes for the North Jutland OpenStreetMap extract used
// in the paper. It produces a perturbed grid of residential streets overlaid
// with a sparser arterial (primary/secondary) lattice and a motorway ring,
// which matches the hierarchy of real regional road networks: most vertices
// have degree 3-4, a small fraction of high-speed edges carries long-range
// traffic, and shortest-distance and shortest-time paths frequently differ —
// the property PathRank's training data relies on.
type GenConfig struct {
	Rows, Cols    int     // grid dimensions (vertices = Rows*Cols minus removals)
	SpacingM      float64 // mean spacing between adjacent grid vertices, meters
	JitterFrac    float64 // positional jitter as a fraction of SpacingM, in [0,0.45]
	RemoveFrac    float64 // fraction of interior edges randomly removed, in [0,0.3]
	ArterialEvery int     // every k-th row/column is upgraded to Primary/Secondary
	Motorway      bool    // add a motorway ring with sparse on-ramps
	Origin        geo.Point
	Seed          int64
}

// DefaultGenConfig returns a medium-sized network (~Rows*Cols vertices)
// centered near Aalborg, Denmark — the paper's study region.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Rows:          40,
		Cols:          50,
		SpacingM:      250,
		JitterFrac:    0.25,
		RemoveFrac:    0.12,
		ArterialEvery: 5,
		Motorway:      true,
		Origin:        geo.Point{Lon: 9.9187, Lat: 57.0488},
		Seed:          1,
	}
}

// Generate builds a synthetic road network per cfg. The result is validated
// and guaranteed to be strongly connected (unreachable pockets created by
// edge removal are reconnected).
func Generate(cfg GenConfig) (*Graph, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid must be at least 2x2, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.SpacingM <= 0 {
		return nil, fmt.Errorf("roadnet: spacing must be positive, got %v", cfg.SpacingM)
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac > 0.45 {
		return nil, fmt.Errorf("roadnet: jitter fraction %v outside [0,0.45]", cfg.JitterFrac)
	}
	if cfg.RemoveFrac < 0 || cfg.RemoveFrac > 0.3 {
		return nil, fmt.Errorf("roadnet: remove fraction %v outside [0,0.3]", cfg.RemoveFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	latPerM := 1.0 / 111320.0
	lonPerM := 1.0 / (111320.0 * math.Cos(cfg.Origin.Lat*math.Pi/180))

	b := NewBuilder(cfg.Rows*cfg.Cols, cfg.Rows*cfg.Cols*4)
	ids := make([][]VertexID, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]VertexID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.JitterFrac * cfg.SpacingM
			jy := (rng.Float64()*2 - 1) * cfg.JitterFrac * cfg.SpacingM
			p := geo.Point{
				Lon: cfg.Origin.Lon + (float64(c)*cfg.SpacingM+jx)*lonPerM,
				Lat: cfg.Origin.Lat + (float64(r)*cfg.SpacingM+jy)*latPerM,
			}
			ids[r][c] = b.AddVertex(p)
		}
	}

	category := func(r, c int, horizontal bool) Category {
		if cfg.ArterialEvery > 0 {
			if horizontal && r%cfg.ArterialEvery == 0 {
				if r%(2*cfg.ArterialEvery) == 0 {
					return Primary
				}
				return Secondary
			}
			if !horizontal && c%cfg.ArterialEvery == 0 {
				if c%(2*cfg.ArterialEvery) == 0 {
					return Primary
				}
				return Secondary
			}
		}
		return Residential
	}

	// Grid edges with random removals. Boundary edges are never removed so
	// the perimeter stays intact.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				interior := r > 0 && r < cfg.Rows-1
				if !(interior && rng.Float64() < cfg.RemoveFrac) {
					b.AddBidirectional(ids[r][c], ids[r][c+1], category(r, c, true))
				}
			}
			if r+1 < cfg.Rows {
				interior := c > 0 && c < cfg.Cols-1
				if !(interior && rng.Float64() < cfg.RemoveFrac) {
					b.AddBidirectional(ids[r][c], ids[r+1][c], category(r, c, false))
				}
			}
		}
	}

	// Motorway ring: a fast loop just outside the grid with on-ramps at the
	// arterial intersections on the perimeter.
	if cfg.Motorway {
		addMotorwayRing(b, ids, cfg, lonPerM, latPerM)
	}

	g := b.Build()

	// Reconnect pockets isolated by removal: link each unreachable vertex to
	// its nearest reachable grid neighbor.
	g = reconnect(g, b, rng)

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("roadnet: generated graph invalid: %w", err)
	}
	return g, nil
}

func addMotorwayRing(b *Builder, ids [][]VertexID, cfg GenConfig, lonPerM, latPerM float64) {
	rows, cols := cfg.Rows, cfg.Cols
	off := 2.5 * cfg.SpacingM
	corner := func(dLonM, dLatM float64) geo.Point {
		return geo.Point{
			Lon: cfg.Origin.Lon + dLonM*lonPerM,
			Lat: cfg.Origin.Lat + dLatM*latPerM,
		}
	}
	w := float64(cols-1) * cfg.SpacingM
	h := float64(rows-1) * cfg.SpacingM

	// Ring vertices: several per side so on-ramps are local.
	perSide := 4
	var ring []VertexID
	side := func(a, bp geo.Point) {
		for i := 0; i < perSide; i++ {
			t := float64(i) / float64(perSide)
			ring = append(ring, b.AddVertex(geo.Lerp(a, bp, t)))
		}
	}
	sw := corner(-off, -off)
	se := corner(w+off, -off)
	ne := corner(w+off, h+off)
	nw := corner(-off, h+off)
	side(sw, se)
	side(se, ne)
	side(ne, nw)
	side(nw, sw)
	for i := range ring {
		b.AddBidirectional(ring[i], ring[(i+1)%len(ring)], Motorway)
	}

	// On-ramps from each ring vertex to the nearest perimeter arterial.
	arterial := make([]VertexID, 0, rows+cols)
	for c := 0; c < cols; c += maxInt(1, cfg.ArterialEvery) {
		arterial = append(arterial, ids[0][c], ids[rows-1][c])
	}
	for r := 0; r < rows; r += maxInt(1, cfg.ArterialEvery) {
		arterial = append(arterial, ids[r][0], ids[r][cols-1])
	}
	for _, rv := range ring {
		best, bestD := VertexID(-1), math.Inf(1)
		for _, av := range arterial {
			d := geo.Distance(b.Vertex(rv).Point, b.Vertex(av).Point)
			if d < bestD {
				best, bestD = av, d
			}
		}
		if best >= 0 {
			b.AddBidirectional(rv, best, Primary)
		}
	}
}

// reconnect ensures strong connectivity by linking every vertex not
// reachable from vertex 0 to its nearest reachable neighbor, then rebuilds.
func reconnect(g *Graph, b *Builder, rng *rand.Rand) *Graph {
	for iter := 0; iter < 32; iter++ {
		seen := g.StronglyConnectedFrom(0)
		var unreachable []VertexID
		for v := 0; v < g.NumVertices(); v++ {
			if !seen[v] {
				unreachable = append(unreachable, VertexID(v))
			}
		}
		if len(unreachable) == 0 {
			// Forward-reachable everywhere; because all edges are added in
			// pairs the graph is strongly connected.
			return g
		}
		for _, u := range unreachable {
			best, bestD := VertexID(-1), math.Inf(1)
			for v := 0; v < g.NumVertices(); v++ {
				if !seen[v] {
					continue
				}
				d := geo.Distance(g.Vertex(u).Point, g.Vertex(VertexID(v)).Point)
				if d < bestD {
					best, bestD = VertexID(v), d
				}
			}
			if best >= 0 {
				b.AddBidirectional(u, best, Residential)
			}
		}
		g = b.Build()
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
