package roadnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"pathrank/internal/geo"
)

// ExportCSV writes the graph as two CSV streams in an interchange format
// compatible with common road-network dumps:
//
//	vertices: id,lon,lat
//	edges:    id,from,to,length_m,time_s,category
//
// Either writer may be nil to skip that stream.
func (g *Graph) ExportCSV(vertices, edges io.Writer) error {
	if vertices != nil {
		w := csv.NewWriter(vertices)
		if err := w.Write([]string{"id", "lon", "lat"}); err != nil {
			return fmt.Errorf("roadnet: write vertex header: %w", err)
		}
		for _, v := range g.vertices {
			rec := []string{
				strconv.Itoa(int(v.ID)),
				strconv.FormatFloat(v.Point.Lon, 'f', -1, 64),
				strconv.FormatFloat(v.Point.Lat, 'f', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return fmt.Errorf("roadnet: write vertex %d: %w", v.ID, err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("roadnet: flush vertices: %w", err)
		}
	}
	if edges != nil {
		w := csv.NewWriter(edges)
		if err := w.Write([]string{"id", "from", "to", "length_m", "time_s", "category"}); err != nil {
			return fmt.Errorf("roadnet: write edge header: %w", err)
		}
		for _, e := range g.edges {
			rec := []string{
				strconv.Itoa(int(e.ID)),
				strconv.Itoa(int(e.From)),
				strconv.Itoa(int(e.To)),
				strconv.FormatFloat(e.Length, 'f', 3, 64),
				strconv.FormatFloat(e.Time, 'f', 3, 64),
				e.Category.String(),
			}
			if err := w.Write(rec); err != nil {
				return fmt.Errorf("roadnet: write edge %d: %w", e.ID, err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("roadnet: flush edges: %w", err)
		}
	}
	return nil
}

// ParseCategory parses a category name as produced by Category.String.
func ParseCategory(s string) (Category, error) {
	switch s {
	case "motorway":
		return Motorway, nil
	case "primary":
		return Primary, nil
	case "secondary":
		return Secondary, nil
	case "residential":
		return Residential, nil
	default:
		return 0, fmt.Errorf("roadnet: unknown category %q", s)
	}
}

// ImportCSV reads a graph from CSV streams written by ExportCSV (or an
// external tool producing the same columns). Vertex IDs must be dense and
// in order; edge IDs are reassigned densely in input order.
func ImportCSV(vertices, edges io.Reader) (*Graph, error) {
	return ImportCSVProgress(vertices, edges, nil)
}

// importProgressEvery is the row interval between progress callbacks; a
// power of two so the check is a mask test on the hot row loop.
const importProgressEvery = 1 << 16

// ImportCSVProgress is ImportCSV with progress reporting for metro-scale
// files: rows are streamed one at a time (memory stays bounded by the
// graph under construction, never the raw CSV text), and progress, when
// non-nil, is called with the running row count of each stage ("vertices"
// or "edges") every 64k rows and once at the end of each stage.
func ImportCSVProgress(vertices, edges io.Reader, progress func(stage string, rows int)) (*Graph, error) {
	vr := csv.NewReader(vertices)
	vr.ReuseRecord = true
	vr.FieldsPerRecord = 3
	if _, err := vr.Read(); err != nil {
		return nil, fmt.Errorf("roadnet: read vertex header: %w", err)
	}
	b := NewBuilder(0, 0)
	for i := 0; ; i++ {
		rec, err := vr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("roadnet: read vertices: %w", err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil || id != i {
			return nil, fmt.Errorf("roadnet: vertex row %d: id %q not dense/in order", i+1, rec[0])
		}
		lon, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("roadnet: vertex %d lon: %w", id, err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("roadnet: vertex %d lat: %w", id, err)
		}
		b.AddVertex(geo.Point{Lon: lon, Lat: lat})
		if progress != nil && (i+1)%importProgressEvery == 0 {
			progress("vertices", i+1)
		}
	}
	if progress != nil {
		progress("vertices", b.NumVertices())
	}

	er := csv.NewReader(edges)
	er.ReuseRecord = true
	er.FieldsPerRecord = 6
	if _, err := er.Read(); err != nil {
		return nil, fmt.Errorf("roadnet: read edge header: %w", err)
	}
	n := b.NumVertices()
	rows := 0
	for i := 0; ; i++ {
		rec, err := er.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("roadnet: read edges: %w", err)
		}
		from, err1 := strconv.Atoi(rec[1])
		to, err2 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || from < 0 || from >= n || to < 0 || to >= n {
			return nil, fmt.Errorf("roadnet: edge row %d: bad endpoints %q -> %q", i+1, rec[1], rec[2])
		}
		length, err := strconv.ParseFloat(rec[3], 64)
		if err != nil || length <= 0 {
			return nil, fmt.Errorf("roadnet: edge row %d: bad length %q", i+1, rec[3])
		}
		cat, err := ParseCategory(rec[5])
		if err != nil {
			return nil, fmt.Errorf("roadnet: edge row %d: %w", i+1, err)
		}
		b.AddEdgeWithLength(VertexID(from), VertexID(to), cat, length)
		rows = i + 1
		if progress != nil && rows%importProgressEvery == 0 {
			progress("edges", rows)
		}
	}
	if progress != nil {
		progress("edges", rows)
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("roadnet: imported graph invalid: %w", err)
	}
	return g, nil
}
