package roadnet

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"pathrank/internal/geo"
)

// TestSaveLoadGeneratedNetwork round-trips a full generated network and
// checks that the rebuilt adjacency is identical, not just the vertex and
// edge tables.
func TestSaveLoadGeneratedNetwork(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 12
	cfg.Seed = 99
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("loaded graph invalid: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed graph size")
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if g.Vertex(v) != g2.Vertex(v) {
			t.Fatalf("vertex %d changed", v)
		}
		a, b := g.OutEdges(v), g2.OutEdges(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d out-degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d out-adjacency changed", v)
			}
		}
		ia, ib := g.InEdges(v), g2.InEdges(v)
		if len(ia) != len(ib) {
			t.Fatalf("vertex %d in-degree changed", v)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("vertex %d in-adjacency changed", v)
			}
		}
	}
}

// TestLoadTruncated cuts a saved stream at several points; every prefix
// must produce an error, never a panic or a silently partial graph.
func TestLoadTruncated(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("Load of %d/%d bytes should fail", n, len(data))
		}
	}
}

// TestLoadRejectsInvalidGraph feeds a well-formed gob stream whose graph
// violates the structural invariants; Load must run Validate and reject it.
func TestLoadRejectsInvalidGraph(t *testing.T) {
	bad := struct {
		Vertices []Vertex
		Edges    []Edge
	}{
		Vertices: []Vertex{
			{ID: 0, Point: geo.Point{Lon: 10, Lat: 57}},
			{ID: 1, Point: geo.Point{Lon: 10.01, Lat: 57}},
		},
		Edges: []Edge{
			// Endpoint 7 is out of range for a 2-vertex graph.
			{ID: 0, From: 0, To: 7, Category: Primary, Length: 100, Time: 10},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load should reject a structurally invalid graph")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("LoadFile of a missing file should fail")
	}
}

func TestSaveFileBadPath(t *testing.T) {
	g := tinyGraph(t)
	if err := g.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "net.gob")); err == nil {
		t.Fatal("SaveFile into a missing directory should fail")
	}
}

// TestLoadCorruptFileOnDisk flips a byte mid-stream; gob must notice.
func TestLoadCorruptFileOnDisk(t *testing.T) {
	g := tinyGraph(t)
	path := filepath.Join(t.TempDir(), "net.gob")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the type descriptor near the head of the stream, which gob
	// cannot interpret (flips deep in the value section may survive and
	// merely change coordinates — that level of integrity is what the
	// checksummed artifact bundle adds on top).
	data[2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile should fail on a corrupted stream")
	}
}
