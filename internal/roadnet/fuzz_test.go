package roadnet

import (
	"bytes"
	"testing"

	"pathrank/internal/geo"
)

// fuzzSeedGraph serializes a small valid graph so the fuzzer starts from
// well-formed gob rather than random bytes.
func fuzzSeedGraph(f *testing.F) []byte {
	f.Helper()
	b := NewBuilder(4, 8)
	v0 := b.AddVertex(geo.Point{Lon: 10.00, Lat: 57.00})
	v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.00})
	v2 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.01})
	v3 := b.AddVertex(geo.Point{Lon: 10.00, Lat: 57.01})
	b.AddBidirectional(v0, v1, Residential)
	b.AddBidirectional(v1, v2, Secondary)
	b.AddBidirectional(v2, v3, Residential)
	b.AddBidirectional(v3, v0, Primary)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad asserts the graph deserializer never panics: arbitrary bytes
// either decode to a structurally valid graph or return an error. The
// corpus seeds a valid encoding plus truncations and bit flips of it, so
// the fuzzer explores the gob structure instead of bouncing off the first
// byte.
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedGraph(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	for _, off := range []int{1, len(valid) / 3, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful load must uphold every structural invariant — the
		// adjacency accessors index unchecked on the strength of them.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Load accepted a graph that fails Validate: %v", verr)
		}
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			_ = g.OutEdges(v)
			_ = g.InEdges(v)
		}
	})
}
