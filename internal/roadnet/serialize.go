package roadnet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// graphWire is the serialized form of a Graph. Only vertices and edges are
// stored; adjacency is rebuilt on load.
type graphWire struct {
	Vertices []Vertex
	Edges    []Edge
}

// Save writes the graph to w in gob format.
func (g *Graph) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(graphWire{Vertices: g.vertices, Edges: g.edges}); err != nil {
		return fmt.Errorf("roadnet: encode graph: %w", err)
	}
	return nil
}

// Load reads a graph previously written with Save and rebuilds adjacency.
func Load(r io.Reader) (*Graph, error) {
	var wire graphWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("roadnet: decode graph: %w", err)
	}
	// Bounds-check edge endpoints before Build: adjacency construction
	// indexes by endpoint and would panic on a corrupt stream that gob
	// happened to decode. Validate re-checks this along with the rest of
	// the invariants once the graph is assembled.
	n := VertexID(len(wire.Vertices))
	for i, e := range wire.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("roadnet: loaded graph invalid: edge %d endpoints (%d,%d) out of range [0,%d)",
				i, e.From, e.To, n)
		}
	}
	b := &Builder{vertices: wire.Vertices, edges: wire.Edges}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("roadnet: loaded graph invalid: %w", err)
	}
	return g, nil
}

// SaveFile writes the graph to the named file.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("roadnet: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := g.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("roadnet: flush %s: %w", path, err)
	}
	return f.Close()
}

// LoadFile reads a graph from the named file.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("roadnet: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
