// Package roadnet models a spatial road network as a weighted directed
// graph and provides a synthetic generator that produces networks with the
// structural characteristics of regional road systems (grid-like residential
// streets, arterial roads, ring connections, varying speed limits).
//
// Vertices carry geographic coordinates; edges carry a length in meters, a
// travel time in seconds derived from the road category's speed limit, and
// the category itself. The graph is the substrate for shortest-path search
// (internal/spath), trajectory simulation (internal/traj) and network
// embedding (internal/node2vec).
package roadnet

import (
	"fmt"
	"math"

	"pathrank/internal/geo"
)

// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
type VertexID int32

// EdgeID identifies an edge; IDs are dense in [0, NumEdges).
type EdgeID int32

// Category classifies a road segment. Categories determine speed limits and
// are used by the driver-preference model in internal/traj.
type Category uint8

// Road categories, ordered from fastest to slowest.
const (
	Motorway Category = iota
	Primary
	Secondary
	Residential
	numCategories
)

// NumCategories is the number of distinct road categories.
const NumCategories = int(numCategories)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Motorway:
		return "motorway"
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	case Residential:
		return "residential"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// SpeedKmH returns the category's free-flow speed in km/h.
func (c Category) SpeedKmH() float64 {
	switch c {
	case Motorway:
		return 110
	case Primary:
		return 80
	case Secondary:
		return 60
	default:
		return 40
	}
}

// Vertex is a road intersection or shape node.
type Vertex struct {
	ID    VertexID
	Point geo.Point
}

// Edge is a directed road segment from Vertex From to Vertex To.
type Edge struct {
	ID       EdgeID
	From     VertexID
	To       VertexID
	Length   float64 // meters
	Time     float64 // free-flow travel seconds
	Category Category
}

// Graph is a directed spatial graph with CSR-style adjacency for fast
// traversal. Construct with NewBuilder; a Graph is immutable afterwards and
// safe for concurrent readers.
type Graph struct {
	vertices []Vertex
	edges    []Edge

	// CSR out-adjacency: outEdges[outStart[v]:outStart[v+1]] are edge IDs
	// leaving v. Same layout for in-adjacency. outTo/inFrom mirror the
	// opposite endpoint of each adjacency slot so shortest-path inner loops
	// can relax neighbors without loading whole Edge structs.
	outStart []int32
	outEdges []EdgeID
	outTo    []VertexID
	inStart  []int32
	inEdges  []EdgeID
	inFrom   []VertexID
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) Vertex { return g.vertices[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// OutEdges returns the IDs of edges leaving v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutEdges(v VertexID) []EdgeID {
	return g.outEdges[g.outStart[v]:g.outStart[v+1]]
}

// InEdges returns the IDs of edges entering v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InEdges(v VertexID) []EdgeID {
	return g.inEdges[g.inStart[v]:g.inStart[v+1]]
}

// OutNeighbors returns, aligned slot for slot with OutEdges(v), the head
// vertex of each edge leaving v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outTo[g.outStart[v]:g.outStart[v+1]]
}

// InNeighbors returns, aligned slot for slot with InEdges(v), the tail
// vertex of each edge entering v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inFrom[g.inStart[v]:g.inStart[v+1]]
}

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// FindEdge returns the ID of an edge from u to v and true if one exists.
// If parallel edges exist the one with the smallest length is returned.
func (g *Graph) FindEdge(u, v VertexID) (EdgeID, bool) {
	best := EdgeID(-1)
	bestLen := math.Inf(1)
	for _, eid := range g.OutEdges(u) {
		e := g.edges[eid]
		if e.To == v && e.Length < bestLen {
			best, bestLen = eid, e.Length
		}
	}
	return best, best >= 0
}

// BBox returns the bounding box of all vertices.
func (g *Graph) BBox() geo.BBox {
	b := geo.NewBBox()
	for _, v := range g.vertices {
		b.Extend(v.Point)
	}
	return b
}

// NearestVertex returns the vertex closest to p by linear scan. It is
// intended for test/tool use; hot paths should use a spatial Index.
func (g *Graph) NearestVertex(p geo.Point) VertexID {
	best := VertexID(0)
	bestD := math.Inf(1)
	for _, v := range g.vertices {
		if d := geo.Distance(p, v.Point); d < bestD {
			best, bestD = v.ID, d
		}
	}
	return best
}

// Validate checks structural invariants: endpoint IDs in range, strictly
// positive lengths and times, consistent adjacency. It returns the first
// violation found.
func (g *Graph) Validate() error {
	n := VertexID(len(g.vertices))
	for i, v := range g.vertices {
		if v.ID != VertexID(i) {
			return fmt.Errorf("vertex %d has ID %d", i, v.ID)
		}
	}
	for i, e := range g.edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("edge %d has ID %d", i, e.ID)
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("edge %d endpoints (%d,%d) out of range [0,%d)", i, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("edge %d is a self-loop at vertex %d", i, e.From)
		}
		if !(e.Length > 0) {
			return fmt.Errorf("edge %d has non-positive length %v", i, e.Length)
		}
		if !(e.Time > 0) {
			return fmt.Errorf("edge %d has non-positive time %v", i, e.Time)
		}
	}
	var outCount int
	for v := VertexID(0); v < n; v++ {
		for _, eid := range g.OutEdges(v) {
			if g.edges[eid].From != v {
				return fmt.Errorf("out-adjacency of %d lists edge %d with From=%d", v, eid, g.edges[eid].From)
			}
			outCount++
		}
	}
	if outCount != len(g.edges) {
		return fmt.Errorf("out-adjacency covers %d edges, graph has %d", outCount, len(g.edges))
	}
	var inCount int
	for v := VertexID(0); v < n; v++ {
		for _, eid := range g.InEdges(v) {
			if g.edges[eid].To != v {
				return fmt.Errorf("in-adjacency of %d lists edge %d with To=%d", v, eid, g.edges[eid].To)
			}
			inCount++
		}
	}
	if inCount != len(g.edges) {
		return fmt.Errorf("in-adjacency covers %d edges, graph has %d", inCount, len(g.edges))
	}
	return nil
}

// StronglyConnectedFrom returns the set of vertices reachable from src by a
// forward BFS, as a boolean slice indexed by vertex ID.
func (g *Graph) StronglyConnectedFrom(src VertexID) []bool {
	seen := make([]bool, g.NumVertices())
	queue := []VertexID{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.OutEdges(v) {
			to := g.edges[eid].To
			if !seen[to] {
				seen[to] = true
				queue = append(queue, to)
			}
		}
	}
	return seen
}

// Builder accumulates vertices and edges and produces an immutable Graph.
type Builder struct {
	vertices []Vertex
	edges    []Edge
}

// NewBuilder returns a Builder with capacity hints.
func NewBuilder(vertexHint, edgeHint int) *Builder {
	return &Builder{
		vertices: make([]Vertex, 0, vertexHint),
		edges:    make([]Edge, 0, edgeHint),
	}
}

// AddVertex appends a vertex at p and returns its ID.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	id := VertexID(len(b.vertices))
	b.vertices = append(b.vertices, Vertex{ID: id, Point: p})
	return id
}

// AddEdge appends a directed edge. Length is computed from vertex
// coordinates; travel time from the category speed. It returns the edge ID.
func (b *Builder) AddEdge(from, to VertexID, cat Category) EdgeID {
	length := geo.Distance(b.vertices[from].Point, b.vertices[to].Point)
	if length <= 0 {
		length = 1 // guard against coincident points
	}
	return b.AddEdgeWithLength(from, to, cat, length)
}

// AddEdgeWithLength appends a directed edge with an explicit length in
// meters (e.g. for curved roads longer than the straight-line distance).
func (b *Builder) AddEdgeWithLength(from, to VertexID, cat Category, length float64) EdgeID {
	id := EdgeID(len(b.edges))
	speed := cat.SpeedKmH() / 3.6 // m/s
	b.edges = append(b.edges, Edge{
		ID:       id,
		From:     from,
		To:       to,
		Length:   length,
		Time:     length / speed,
		Category: cat,
	})
	return id
}

// AddBidirectional adds edges in both directions and returns their IDs.
func (b *Builder) AddBidirectional(u, v VertexID, cat Category) (EdgeID, EdgeID) {
	return b.AddEdge(u, v, cat), b.AddEdge(v, u, cat)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vertices) }

// Vertex returns vertex metadata for an already-added vertex.
func (b *Builder) Vertex(id VertexID) Vertex { return b.vertices[id] }

// Build finalizes the graph, constructing CSR adjacency.
func (b *Builder) Build() *Graph {
	g := &Graph{vertices: b.vertices, edges: b.edges}
	n := len(b.vertices)
	g.outStart = make([]int32, n+1)
	g.inStart = make([]int32, n+1)
	for _, e := range b.edges {
		g.outStart[e.From+1]++
		g.inStart[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	g.outEdges = make([]EdgeID, len(b.edges))
	g.outTo = make([]VertexID, len(b.edges))
	g.inEdges = make([]EdgeID, len(b.edges))
	g.inFrom = make([]VertexID, len(b.edges))
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	copy(outPos, g.outStart[:n])
	copy(inPos, g.inStart[:n])
	for _, e := range b.edges {
		g.outEdges[outPos[e.From]] = e.ID
		g.outTo[outPos[e.From]] = e.To
		outPos[e.From]++
		g.inEdges[inPos[e.To]] = e.ID
		g.inFrom[inPos[e.To]] = e.From
		inPos[e.To]++
	}
	return g
}
