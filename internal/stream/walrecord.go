// WAL record codec. Two record types flow through the trajectory log:
//
//   - observation records: one accepted (map-matched) trajectory each,
//     in a canonical binary form. These bytes are also the Merkle leaves
//     of the provenance batches, so the encoding must be deterministic —
//     same observation, same bytes, forever.
//   - retrain markers: one per committed generation, recording exactly
//     which observations (by ingest seq) the generation trained on, the
//     effective fine-tune configuration, and the resulting fingerprint
//     and Merkle roots. A marker is everything deterministic replay
//     needs beyond the base artifact and the observation records.
//
// Observation layout (integers big-endian):
//
//	offset  size  field
//	     0     1  record type walRecObservation
//	     1     8  ingest sequence number (int64)
//	     9     8  path cost (IEEE-754 float64 bits)
//	    17     4  vertex count nv (uint32)
//	    21     4  edge count ne (uint32; must be nv-1)
//	    25  4*nv  vertex IDs (int32)
//	     +  4*ne  edge IDs (int32)
//
// Markers are gob-encoded behind their type byte: they are rare (one per
// generation), carry variable-length fields, and never serve as Merkle
// leaves, so gob's flexibility costs nothing.
package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

const (
	walRecObservation byte = 0x01
	walRecRetrain     byte = 0x02
)

// maxWALPathLen bounds the vertex/edge counts a decoded record may claim,
// mirroring the ingest-side record cap: a corrupt count fails decoding
// instead of attempting a giant allocation.
const maxWALPathLen = 1 << 20

// obsHeaderSize is the fixed prefix of an observation record.
const obsHeaderSize = 1 + 8 + 8 + 4 + 4

// encodeObservation renders o in the canonical WAL/Merkle-leaf form.
func encodeObservation(o observation) []byte {
	nv, ne := len(o.path.Vertices), len(o.path.Edges)
	buf := make([]byte, obsHeaderSize+4*nv+4*ne)
	buf[0] = walRecObservation
	binary.BigEndian.PutUint64(buf[1:9], uint64(o.seq))
	binary.BigEndian.PutUint64(buf[9:17], math.Float64bits(o.path.Cost))
	binary.BigEndian.PutUint32(buf[17:21], uint32(nv))
	binary.BigEndian.PutUint32(buf[21:25], uint32(ne))
	off := obsHeaderSize
	for _, v := range o.path.Vertices {
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(v))
		off += 4
	}
	for _, e := range o.path.Edges {
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(e))
		off += 4
	}
	return buf
}

// decodeObservation parses an observation record. It validates structure
// only; validateObservation checks the path against a concrete graph.
func decodeObservation(payload []byte) (observation, error) {
	var o observation
	if len(payload) < obsHeaderSize || payload[0] != walRecObservation {
		return o, fmt.Errorf("stream: malformed observation record (%d bytes)", len(payload))
	}
	o.seq = int64(binary.BigEndian.Uint64(payload[1:9]))
	o.path.Cost = math.Float64frombits(binary.BigEndian.Uint64(payload[9:17]))
	nv := binary.BigEndian.Uint32(payload[17:21])
	ne := binary.BigEndian.Uint32(payload[21:25])
	if nv > maxWALPathLen || ne != nv-1 {
		return o, fmt.Errorf("stream: observation record claims %d vertices, %d edges", nv, ne)
	}
	if want := obsHeaderSize + 4*int(nv) + 4*int(ne); len(payload) != want {
		return o, fmt.Errorf("stream: observation record is %d bytes, want %d", len(payload), want)
	}
	o.path.Vertices = make([]roadnet.VertexID, nv)
	o.path.Edges = make([]roadnet.EdgeID, ne)
	off := obsHeaderSize
	for i := range o.path.Vertices {
		o.path.Vertices[i] = roadnet.VertexID(binary.BigEndian.Uint32(payload[off : off+4]))
		off += 4
	}
	for i := range o.path.Edges {
		o.path.Edges[i] = roadnet.EdgeID(binary.BigEndian.Uint32(payload[off : off+4]))
		off += 4
	}
	return o, nil
}

// validateObservation rejects a decoded record whose path cannot belong to
// g — the signature of replaying a WAL against the wrong artifact.
func validateObservation(o observation, g *roadnet.Graph) error {
	if o.seq <= 0 {
		return fmt.Errorf("stream: observation has non-positive seq %d", o.seq)
	}
	nv, ne := int64(g.NumVertices()), int64(g.NumEdges())
	for _, v := range o.path.Vertices {
		if int64(v) < 0 || int64(v) >= nv {
			return fmt.Errorf("stream: observation %d references vertex %d outside the graph (%d vertices)", o.seq, v, nv)
		}
	}
	for _, e := range o.path.Edges {
		if int64(e) < 0 || int64(e) >= ne {
			return fmt.Errorf("stream: observation %d references edge %d outside the graph (%d edges)", o.seq, e, ne)
		}
	}
	return nil
}

// retrainMarker is the per-generation commit record. Everything replay
// needs that is not in the base artifact or the observation records lives
// here; WindowSeqs pins the exact training set, so replay is independent
// of the window's eviction policy.
type retrainMarker struct {
	// Generation is the lineage generation the retrain produced.
	Generation int
	// Parent and Result are the model fingerprints (hex) before and after
	// the fine-tune.
	Parent string
	Result string
	// DataRoot and ChainRoot are the Merkle commitments stamped into the
	// generation's lineage.
	DataRoot  string
	ChainRoot string
	// WindowSeqs lists the ingest seqs of the training window in training
	// order (sorted ascending).
	WindowSeqs []int64
	// Effective fine-tune configuration (zero Epochs/LR fall back to
	// pathrank.DefaultFineTuneConfig inside FineTune, identically on
	// replay). Seed is the already-adjusted per-generation seed.
	Epochs   int
	LR       float64
	ClipNorm float64
	LRDecay  float64
	Seed     int64
}

// encodeRetrainMarker renders m as a WAL record.
func encodeRetrainMarker(m retrainMarker) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(walRecRetrain)
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("stream: encode retrain marker: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRetrainMarker parses a WAL retrain marker.
func decodeRetrainMarker(payload []byte) (retrainMarker, error) {
	var m retrainMarker
	if len(payload) < 1 || payload[0] != walRecRetrain {
		return m, fmt.Errorf("stream: malformed retrain marker (%d bytes)", len(payload))
	}
	if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&m); err != nil {
		return m, fmt.Errorf("stream: decode retrain marker: %w", err)
	}
	if m.Generation <= 0 || len(m.WindowSeqs) == 0 {
		return m, fmt.Errorf("stream: implausible retrain marker (generation %d, %d window seqs)", m.Generation, len(m.WindowSeqs))
	}
	return m, nil
}

// pathEqual reports whether two decoded paths are identical; codec tests
// use it for round-trip checks.
func pathEqual(a, b spath.Path) bool {
	if a.Cost != b.Cost || len(a.Vertices) != len(b.Vertices) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}
