// Deterministic WAL replay: reconstructing model generations from the
// trajectory log alone. Replay reads every observation and retrain marker
// out of a WAL directory and re-executes each marked retrain against the
// base artifact — same observations (pinned by the marker's seq list, so
// the live window's eviction policy is irrelevant), same training order,
// same effective fine-tune configuration, same seed. Because the live
// pipeline is deterministic, the reconstructed model of every generation
// must match the marker's recorded fingerprint bit-for-bit; Replay
// verifies that, along with the Merkle data and chain roots, and reports
// any divergence instead of silently producing a different model.
package stream

import (
	"fmt"
	"sort"

	"pathrank/internal/dataset"
	"pathrank/internal/merkle"
	"pathrank/internal/pathrank"
	"pathrank/internal/traj"
	"pathrank/internal/wal"
)

// ReplayResult summarizes a deterministic replay.
type ReplayResult struct {
	// Artifact is the last generation reconstructed (the base artifact if
	// the log held no replayable markers).
	Artifact *pathrank.Artifact
	// Generations is how many retrain steps were re-executed.
	Generations int
	// Observations is how many observation records the log held.
	Observations int
	// SkippedMarkers counts markers that could not be chained onto the
	// replay state (generations below the base artifact's, or duplicates
	// from a run that restarted against a stale artifact).
	SkippedMarkers int
	// Verified is true when every reconstructed generation reproduced its
	// marker's model fingerprint and Merkle roots exactly.
	Verified bool
	// Mismatches describes each divergence (empty when Verified).
	Mismatches []string
}

// Replay reconstructs model generations from the WAL in walDir, starting
// from base. Markers for generations at or below base's are skipped (they
// were trained before base existed); replay stops after targetGen when
// targetGen > 0, otherwise it runs to the end of the log. base is not
// mutated. An error means replay could not proceed at all (unreadable or
// corrupt log, missing observations, wrong base artifact); a fingerprint
// divergence is reported through Verified/Mismatches instead, with the
// reconstructed chain still returned.
func Replay(walDir string, base *pathrank.Artifact, targetGen int, logf func(format string, args ...any)) (*ReplayResult, error) {
	if base == nil || base.Graph == nil || base.Model == nil {
		return nil, fmt.Errorf("stream: replay needs a base artifact with a graph and a model")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// One pass over the log: observations keyed by seq, markers in order.
	obs := make(map[int64]observation)
	var markers []retrainMarker
	err := wal.ReplayDir(walDir, func(idx uint64, payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("stream: WAL record %d is empty", idx)
		}
		switch payload[0] {
		case walRecObservation:
			o, err := decodeObservation(payload)
			if err != nil {
				return fmt.Errorf("stream: WAL record %d: %w", idx, err)
			}
			if err := validateObservation(o, base.Graph); err != nil {
				return fmt.Errorf("stream: WAL record %d: %w (wrong base artifact?)", idx, err)
			}
			obs[o.seq] = o
		case walRecRetrain:
			m, err := decodeRetrainMarker(payload)
			if err != nil {
				return fmt.Errorf("stream: WAL record %d: %w", idx, err)
			}
			markers = append(markers, m)
		default:
			return fmt.Errorf("stream: WAL record %d has unknown type 0x%02x", idx, payload[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	logf("replay: %d observations, %d retrain markers in %s", len(obs), len(markers), walDir)

	res := &ReplayResult{Artifact: base, Observations: len(obs), Verified: true}
	chain := merkle.Hash{}
	if base.Lineage.ChainRoot != "" {
		if chain, err = merkle.ParseHash(base.Lineage.ChainRoot); err != nil {
			return nil, fmt.Errorf("stream: base artifact lineage ChainRoot: %w", err)
		}
	}
	cur := base
	for _, m := range markers {
		if targetGen > 0 && m.Generation > targetGen {
			break
		}
		if m.Generation != cur.Lineage.Generation+1 {
			// Below or equal to the current generation: trained before the
			// base artifact (already embodied in its weights) or a duplicate
			// from a restart against a stale artifact. Ahead by more than
			// one: a marker in between is missing and the chain cannot
			// continue.
			if m.Generation > cur.Lineage.Generation+1 {
				return res, fmt.Errorf("stream: replay reached generation %d but the next marker is for generation %d (segment pruned by retention?)",
					cur.Lineage.Generation, m.Generation)
			}
			res.SkippedMarkers++
			logf("replay: skipping marker for generation %d (already at %d)", m.Generation, cur.Lineage.Generation)
			continue
		}
		next, err := replayStep(cur, m, obs, chain, res)
		if err != nil {
			return res, err
		}
		chainHex := next.Lineage.ChainRoot
		if chainHex != "" {
			chain, _ = merkle.ParseHash(chainHex)
		}
		cur = next
		res.Artifact = cur
		res.Generations++
		logf("replay: generation %d reconstructed (fingerprint %.12s…)", m.Generation, m.Result)
	}
	return res, nil
}

// replayStep re-executes one marked retrain: cur + marker → the next
// generation's artifact, verifying fingerprints and Merkle roots against
// the marker as it goes. Divergences that indicate nondeterminism (wrong
// result fingerprint, wrong roots) are recorded in res; conditions that
// make replay impossible (missing observation, wrong parent) are errors.
func replayStep(cur *pathrank.Artifact, m retrainMarker, obs map[int64]observation, chain merkle.Hash, res *ReplayResult) (*pathrank.Artifact, error) {
	parent, err := cur.Model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("stream: fingerprint parent: %w", err)
	}
	if parent != m.Parent {
		return nil, fmt.Errorf("stream: marker for generation %d was trained from parent %.12s… but replay is at %.12s… (wrong base artifact?)",
			m.Generation, m.Parent, parent)
	}

	// Pin the training set from the marker, not from any window
	// reconstruction: the seq list is the window the live retrain saw.
	window := make([]observation, len(m.WindowSeqs))
	for i, seq := range m.WindowSeqs {
		o, ok := obs[seq]
		if !ok {
			return nil, fmt.Errorf("stream: generation %d trained on observation %d which is not in the log (segment pruned by retention?)", m.Generation, seq)
		}
		window[i] = o
	}
	// The marker stores seqs in training order (sorted); sorting again is a
	// no-op on a well-formed marker and reproduces the live ordering on any
	// other.
	sort.Slice(window, func(a, b int) bool { return window[a].seq < window[b].seq })

	trips := make([]traj.Trip, len(window))
	batcher := merkle.NewBatcher(chain)
	for i, o := range window {
		trips[i] = traj.Trip{Path: o.path}
		batcher.Add(encodeObservation(o))
	}
	batch := batcher.Seal()
	if got := batch.Root.Hex(); got != m.DataRoot {
		res.Verified = false
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("generation %d: data root %s, marker recorded %s", m.Generation, got, m.DataRoot))
	}
	if got := batch.Chain.Hex(); got != m.ChainRoot {
		res.Verified = false
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("generation %d: chain root %s, marker recorded %s", m.Generation, got, m.ChainRoot))
	}

	dcfg := cur.Candidates
	if dcfg.K <= 0 {
		dcfg = dataset.DefaultConfig()
	}
	queries, err := dataset.Generate(cur.Graph, trips, dcfg)
	if err != nil {
		return nil, fmt.Errorf("stream: label generation %d window: %w", m.Generation, err)
	}
	model, err := cur.Model.Clone()
	if err != nil {
		return nil, fmt.Errorf("stream: clone model: %w", err)
	}
	tcfg := pathrank.TrainConfig{
		Epochs:   m.Epochs,
		LR:       m.LR,
		ClipNorm: m.ClipNorm,
		LRDecay:  m.LRDecay,
		Seed:     m.Seed,
	}
	if _, err := model.FineTune(queries, tcfg); err != nil {
		return nil, fmt.Errorf("stream: fine-tune generation %d: %w", m.Generation, err)
	}
	result, err := model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("stream: fingerprint generation %d: %w", m.Generation, err)
	}
	if result != m.Result {
		res.Verified = false
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("generation %d: model fingerprint %s, marker recorded %s", m.Generation, result, m.Result))
	}

	lin := cur.Lineage.Child(parent, len(window), "stream")
	lin.DataRoot = batch.Root.Hex()
	lin.ChainRoot = batch.Chain.Hex()
	return &pathrank.Artifact{
		Graph:      cur.Graph,
		Embeddings: cur.Embeddings,
		Model:      model,
		Candidates: cur.Candidates,
		Prep:       cur.Prep,
		Lineage:    lin,
	}, nil
}
