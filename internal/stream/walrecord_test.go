package stream

import (
	"testing"

	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

func TestObservationCodecRoundTrip(t *testing.T) {
	o := observation{
		seq: 42,
		path: spath.Path{
			Vertices: []roadnet.VertexID{3, 7, 1, 9},
			Edges:    []roadnet.EdgeID{11, 5, 2},
			Cost:     1234.5625,
		},
	}
	enc := encodeObservation(o)
	got, err := decodeObservation(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.seq != o.seq || !pathEqual(got.path, o.path) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, o)
	}
	// Canonical: encoding the decoded observation reproduces the bytes.
	if string(encodeObservation(got)) != string(enc) {
		t.Fatal("re-encoding is not canonical")
	}
}

func TestObservationCodecRejectsMalformed(t *testing.T) {
	o := observation{
		seq:  7,
		path: spath.Path{Vertices: []roadnet.VertexID{1, 2}, Edges: []roadnet.EdgeID{0}, Cost: 5},
	}
	enc := encodeObservation(o)
	cases := map[string][]byte{
		"empty":       {},
		"short":       enc[:obsHeaderSize-1],
		"wrong type":  append([]byte{walRecRetrain}, enc[1:]...),
		"truncated":   enc[:len(enc)-1],
		"extra bytes": append(append([]byte{}, enc...), 0),
	}
	for name, data := range cases {
		if _, err := decodeObservation(data); err == nil {
			t.Errorf("%s: decode accepted malformed record", name)
		}
	}
	// Edge/vertex count relation: nv must be ne+1.
	bad := append([]byte{}, enc...)
	bad[24]++ // bump ne
	if _, err := decodeObservation(bad); err == nil {
		t.Error("decode accepted ne != nv-1")
	}
}

func TestRetrainMarkerRoundTrip(t *testing.T) {
	m := retrainMarker{
		Generation: 3,
		Parent:     "aa11",
		Result:     "bb22",
		DataRoot:   "cc33",
		ChainRoot:  "dd44",
		WindowSeqs: []int64{1, 2, 5, 9},
		Epochs:     2,
		LR:         0.004,
		ClipNorm:   5,
		LRDecay:    0.9,
		Seed:       17,
	}
	enc, err := encodeRetrainMarker(m)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != walRecRetrain {
		t.Fatalf("marker type byte = 0x%02x", enc[0])
	}
	got, err := decodeRetrainMarker(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != m.Generation || got.Result != m.Result || got.Seed != m.Seed ||
		len(got.WindowSeqs) != len(m.WindowSeqs) || got.WindowSeqs[3] != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := decodeRetrainMarker(enc[:1]); err == nil {
		t.Error("decode accepted truncated marker")
	}
	if _, err := decodeRetrainMarker([]byte{walRecObservation}); err == nil {
		t.Error("decode accepted wrong type byte")
	}
}
