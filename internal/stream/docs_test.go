package stream

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"pathrank/internal/obsv"
	"pathrank/internal/serve"
)

// TestOperationsDocCoversMetrics diffs the metrics reference table in
// docs/OPERATIONS.md against the live registry. It builds the same
// process-wide registry pathrank-serve does (server + pipeline on one
// registry), scrapes the family names from the exposition, and requires
// the documented set and the registered set to be identical — a metric
// added without a doc row, or a doc row for a renamed metric, fails here.
func TestOperationsDocCoversMetrics(t *testing.T) {
	art, _ := testWorld(t)
	reg := obsv.NewRegistry()

	svc, err := New(art, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(art, serve.Config{Metrics: reg, Ingest: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Family names come from the TYPE lines: every family renders its
	// HELP/TYPE header even before any traffic, so one scrape of a fresh
	// registry enumerates the full surface.
	var scrape strings.Builder
	reg.WritePrometheus(&scrape)
	registered := make(map[string]bool)
	for _, line := range strings.Split(scrape.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
		if len(fields) != 2 {
			t.Fatalf("malformed TYPE line %q", line)
		}
		registered[fields[0]] = true
	}
	if len(registered) == 0 {
		t.Fatal("fresh registry rendered no metric families")
	}

	documented := docMetricNames(t, "../../docs/OPERATIONS.md")

	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is registered but missing from the docs/OPERATIONS.md reference table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/OPERATIONS.md documents %s, which is not in the registry", name)
		}
	}
}

// docMetricNames extracts the metric names from the reference table in
// the runbook: table rows whose first cell is a backticked identifier.
func docMetricNames(t *testing.T, path string) map[string]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	names := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cell := strings.TrimPrefix(line, "| `")
		name, _, ok := strings.Cut(cell, "`")
		if !ok {
			t.Fatalf("unterminated backtick in table row %q", line)
		}
		// The flag-reference tables use the same shape; their first cells
		// start with '-', metric names never do.
		if strings.HasPrefix(name, "-") || !strings.Contains(line, "|") {
			continue
		}
		// Only rows from the metrics table: four columns whose second cell
		// is a metric type.
		cols := strings.Split(line, "|")
		if len(cols) < 4 {
			continue
		}
		typ := strings.TrimSpace(cols[2])
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			continue
		}
		names[name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no metric rows found in %s — table format changed?", path)
	}
	return names
}
